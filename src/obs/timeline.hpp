#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "util/cache_line.hpp"

namespace cab::obs {

/// Monotonic nanoseconds (steady clock). All trace timestamps are stored
/// relative to an epoch captured at Runtime construction so they fit
/// comfortably in 64 bits and are directly comparable across workers.
inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// What one timeline entry describes. Spans carry [t0, t1]; instants have
/// t0 == t1. The `a`/`b` payload is kind-specific (see each comment).
enum class EventKind : std::uint8_t {
  kTaskExec = 0,  ///< span: task body + implicit sync; a=level, b=inter?1:0
  kStealIntra,    ///< span: one intra steal attempt; a=victim worker, b=hit
  kStealInter,    ///< span: one inter-squad steal round; a=victim squad, b=hit
  kInterAcquire,  ///< span: own squad inter-pool take; a=squad id, b=hit
  kSpawnIntra,    ///< instant: intra child pushed; a=child level
  kSpawnInter,    ///< instant: inter child pushed; a=child level
  kActiveInter,   ///< instant: squad busy_state transition; a=squad, b=new count
  kSyncWait,      ///< span: blocked at a sync; a=help iterations, b=tasks run
  kIdle,          ///< span: free worker found nothing; a=failed acquires
};

inline constexpr int kEventKindCount = 9;

const char* to_string(EventKind k);

/// True for kinds whose [t0, t1] is a duration (vs. a point event).
inline bool is_span(EventKind k) {
  switch (k) {
    case EventKind::kTaskExec:
    case EventKind::kStealIntra:
    case EventKind::kStealInter:
    case EventKind::kInterAcquire:
    case EventKind::kSyncWait:
    case EventKind::kIdle:
      return true;
    default:
      return false;
  }
}

/// One timeline entry. 24 bytes; a worker's buffer is append-only and the
/// entries are ordered by *completion* time (spans are recorded when they
/// end), so a nested task span appears before its enclosing span.
struct TraceEvent {
  std::uint64_t t0 = 0;  ///< ns since trace epoch
  std::uint64_t t1 = 0;  ///< ns since trace epoch; == t0 for instants
  std::int32_t a = -1;
  std::int32_t b = -1;
  EventKind kind = EventKind::kTaskExec;
};

/// Per-worker timeline buffer. Lock-free by construction rather than by
/// cleverness: only the owning worker thread ever appends, and readers
/// (Runtime::trace()) run strictly after run() has returned and the
/// workers are parked — the same single-writer/quiescent-reader discipline
/// WorkerStats uses. Cache-line aligned so adjacent workers' write
/// cursors never share a line.
///
/// Cost when disabled: one predictable branch per emit site, no clock
/// reads. When enabled, events past `capacity` are counted in `dropped`
/// and discarded (the head of the run is kept, which is where schedule
/// shape lives).
struct alignas(util::kCacheLineSize) TimelineBuffer {
  bool enabled = false;
  std::uint64_t epoch_ns = 0;
  std::size_t capacity = 0;
  std::uint64_t dropped = 0;
  std::vector<TraceEvent> events;

  void configure(bool on, std::size_t cap, std::uint64_t epoch) {
    enabled = on;
    capacity = cap;
    epoch_ns = epoch;
    events.clear();
    dropped = 0;
    if (on) events.reserve(cap < 4096 ? cap : 4096);
  }

  void clear() {
    events.clear();
    dropped = 0;
  }

  /// Appends one event with absolute steady-clock stamps `t0`/`t1`.
  void record(EventKind k, std::uint64_t t0, std::uint64_t t1,
              std::int32_t a, std::int32_t b) {
    if (events.size() >= capacity) {
      ++dropped;
      return;
    }
    TraceEvent e;
    e.t0 = t0 - epoch_ns;
    e.t1 = t1 - epoch_ns;
    e.a = a;
    e.b = b;
    e.kind = k;
    events.push_back(e);
  }

  /// Instant-event convenience: stamps the clock itself.
  void mark(EventKind k, std::int32_t a, std::int32_t b) {
    const std::uint64_t t = now_ns();
    record(k, t, t, a, b);
  }
};

/// One worker's collected timeline plus its identity.
struct WorkerTimeline {
  std::int32_t worker = 0;
  std::int32_t squad = 0;
  bool is_head = false;
  std::uint64_t dropped = 0;
  std::vector<TraceEvent> events;
};

/// A full scheduler trace: every worker's timeline plus the machine shape
/// needed to interpret squad/worker ids. Produced by Runtime::trace() and
/// reconstructed from disk by obs::parse_chrome_trace().
struct Trace {
  std::int32_t sockets = 0;
  std::int32_t cores_per_socket = 0;
  std::string scheduler;  ///< to_string(SchedulerKind)
  std::vector<WorkerTimeline> workers;

  std::size_t event_count() const {
    std::size_t n = 0;
    for (const WorkerTimeline& w : workers) n += w.events.size();
    return n;
  }
  std::uint64_t dropped_count() const {
    std::uint64_t n = 0;
    for (const WorkerTimeline& w : workers) n += w.dropped;
    return n;
  }
};

}  // namespace cab::obs
