#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "util/cache_line.hpp"

namespace cab::obs {

/// Monotonic nanoseconds (steady clock). All trace timestamps are stored
/// relative to an epoch captured at Runtime construction so they fit
/// comfortably in 64 bits and are directly comparable across workers.
inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// What one timeline entry describes. Spans carry [t0, t1]; instants have
/// t0 == t1. The `a`/`b` payload is kind-specific (see each comment).
enum class EventKind : std::uint8_t {
  kTaskExec = 0,  ///< span: task body + implicit sync; a=level, b=inter?1:0
  kStealIntra,    ///< span: one intra steal attempt; a=victim worker, b=hit
  kStealInter,    ///< span: one inter-squad steal round; a=victim squad, b=hit
  kInterAcquire,  ///< span: own squad inter-pool take; a=squad id, b=hit
  kSpawnIntra,    ///< instant: intra child pushed; a=child level
  kSpawnInter,    ///< instant: inter child pushed; a=child level
  kActiveInter,   ///< instant: squad busy_state transition; a=squad, b=new count
  kSyncWait,      ///< span: blocked at a sync; a=help iterations, b=tasks run
  kIdle,          ///< span: free worker found nothing; a=failed acquires
  kTaskNode,      ///< instant: DAG identity of the enclosing kTaskExec span;
                  ///< a=dag::NodeId (emitted at body start by run_graph /
                  ///< Runtime::mark_task_node — joins the trace to the
                  ///< TaskGraph for realized-critical-path attribution)
};

inline constexpr int kEventKindCount = 10;

const char* to_string(EventKind k);

/// True for kinds whose [t0, t1] is a duration (vs. a point event).
inline bool is_span(EventKind k) {
  switch (k) {
    case EventKind::kTaskExec:
    case EventKind::kStealIntra:
    case EventKind::kStealInter:
    case EventKind::kInterAcquire:
    case EventKind::kSyncWait:
    case EventKind::kIdle:
      return true;
    default:
      return false;
  }
}

/// One timeline entry. 24 bytes; a worker's buffer is append-only and the
/// entries are ordered by *completion* time (spans are recorded when they
/// end), so a nested task span appears before its enclosing span.
struct TraceEvent {
  std::uint64_t t0 = 0;  ///< ns since trace epoch
  std::uint64_t t1 = 0;  ///< ns since trace epoch; == t0 for instants
  std::int32_t a = -1;
  std::int32_t b = -1;
  EventKind kind = EventKind::kTaskExec;
};

/// Per-worker timeline buffer. Lock-free by construction rather than by
/// cleverness: only the owning worker thread ever appends, and readers
/// (Runtime::trace()) run strictly after run() has returned and the
/// workers are parked — the same single-writer/quiescent-reader discipline
/// WorkerStats uses. Cache-line aligned so adjacent workers' write
/// cursors never share a line.
///
/// Cost when disabled: one predictable branch per emit site, no clock
/// reads. When enabled, memory is bounded by `capacity` events, with two
/// drop policies (Options::trace vs Options::trace_ring):
///
///   head-keep (ring == false, default): events past `capacity` are
///     counted in `dropped` and discarded — the *head* of the run is
///     kept, which is where schedule shape lives. Attribution over a
///     truncated trace under-explains the tail, so the untracked-share
///     gate flags it.
///   ring (ring == true): the buffer wraps and the *oldest* event is
///     overwritten, so the most recent `capacity` events survive — the
///     always-on / flight-recorder mode, where the interesting window is
///     the one just before a stall or gate trip. Every overwrite counts
///     in `dropped`; snapshot() unrolls the ring back to chronological
///     (append) order.
///
/// Either way `dropped` is the exact number of events not present, so a
/// reader can tell a complete trace (dropped == 0) from a windowed one.
struct alignas(util::kCacheLineSize) TimelineBuffer {
  bool enabled = false;
  bool ring = false;
  std::uint64_t epoch_ns = 0;
  std::size_t capacity = 0;
  std::size_t next_overwrite = 0;  ///< ring mode: oldest entry's index
  std::uint64_t dropped = 0;
  std::vector<TraceEvent> events;

  void configure(bool on, std::size_t cap, std::uint64_t epoch,
                 bool ring_mode = false) {
    enabled = on;
    capacity = cap;
    epoch_ns = epoch;
    ring = ring_mode;
    events.clear();
    next_overwrite = 0;
    dropped = 0;
    if (on) events.reserve(cap < 4096 ? cap : 4096);
  }

  void clear() {
    events.clear();
    next_overwrite = 0;
    dropped = 0;
  }

  /// Appends one event with absolute steady-clock stamps `t0`/`t1`.
  void record(EventKind k, std::uint64_t t0, std::uint64_t t1,
              std::int32_t a, std::int32_t b) {
    TraceEvent e;
    e.t0 = t0 - epoch_ns;
    e.t1 = t1 - epoch_ns;
    e.a = a;
    e.b = b;
    e.kind = k;
    if (events.size() < capacity) {
      events.push_back(e);
      return;
    }
    ++dropped;
    if (!ring || capacity == 0) return;  // head-keep: discard the tail
    events[next_overwrite] = e;          // ring: overwrite the oldest
    if (++next_overwrite == capacity) next_overwrite = 0;
  }

  /// Instant-event convenience: stamps the clock itself.
  void mark(EventKind k, std::int32_t a, std::int32_t b) {
    const std::uint64_t t = now_ns();
    record(k, t, t, a, b);
  }

  /// The buffered events in chronological (append) order — identity for
  /// the head-keep policy, the unrolled ring for ring mode.
  std::vector<TraceEvent> snapshot() const {
    if (!ring || dropped == 0 || events.empty()) return events;
    // The buffer has wrapped: events[next_overwrite..) are the oldest
    // surviving entries, events[..next_overwrite) the newest.
    const auto split =
        events.begin() + static_cast<std::ptrdiff_t>(next_overwrite);
    std::vector<TraceEvent> out;
    out.reserve(events.size());
    out.insert(out.end(), split, events.end());
    out.insert(out.end(), events.begin(), split);
    return out;
  }
};

/// One worker's collected timeline plus its identity.
struct WorkerTimeline {
  std::int32_t worker = 0;
  std::int32_t squad = 0;
  bool is_head = false;
  std::uint64_t dropped = 0;
  std::vector<TraceEvent> events;
};

/// A full scheduler trace: every worker's timeline plus the machine shape
/// needed to interpret squad/worker ids. Produced by Runtime::trace() and
/// reconstructed from disk by obs::parse_chrome_trace().
struct Trace {
  std::int32_t sockets = 0;
  std::int32_t cores_per_socket = 0;
  std::string scheduler;  ///< to_string(SchedulerKind)
  std::string workload;   ///< bundle/app name, "" when unknown
  std::vector<WorkerTimeline> workers;

  std::size_t event_count() const {
    std::size_t n = 0;
    for (const WorkerTimeline& w : workers) n += w.events.size();
    return n;
  }
  std::uint64_t dropped_count() const {
    std::uint64_t n = 0;
    for (const WorkerTimeline& w : workers) n += w.dropped;
    return n;
  }
};

}  // namespace cab::obs
