#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace cab::obs::json {

/// Minimal JSON document model — just enough to read back the Chrome
/// traces this library writes (and any hand-edited variant of them).
/// Numbers are kept as double, which is exact for the integer ids and
/// microsecond stamps we emit.
class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Value>;
  using Object = std::map<std::string, Value>;

  Value() = default;
  explicit Value(bool b) : type_(Type::kBool), bool_(b) {}
  explicit Value(double n) : type_(Type::kNumber), num_(n) {}
  explicit Value(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  explicit Value(Array a) : type_(Type::kArray), arr_(std::move(a)) {}
  explicit Value(Object o) : type_(Type::kObject), obj_(std::move(o)) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return num_; }
  const std::string& as_string() const { return str_; }
  const Array& as_array() const { return arr_; }
  const Object& as_object() const { return obj_; }

  /// Object member access; returns a shared null for missing keys so
  /// chained lookups (`v["args"]["victim"]`) never throw.
  const Value& operator[](const std::string& key) const;

  /// Numeric member with default — the workhorse for event decoding.
  double number_or(const std::string& key, double fallback) const {
    const Value& v = (*this)[key];
    return v.is_number() ? v.as_number() : fallback;
  }
  std::string string_or(const std::string& key,
                        const std::string& fallback) const {
    const Value& v = (*this)[key];
    return v.is_string() ? v.as_string() : fallback;
  }

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  Array arr_;
  Object obj_;
};

/// Parses a complete JSON document. Throws std::runtime_error with a
/// byte offset on malformed input.
Value parse(std::string_view text);

}  // namespace cab::obs::json
