#pragma once

#include <iosfwd>
#include <string>

#include "obs/attrib/attrib.hpp"
#include "obs/metrics/registry.hpp"
#include "obs/timeline.hpp"

namespace cab::obs {

/// Writes a trace in the Chrome Trace Event ("Trace Event Format") JSON
/// layout, loadable in chrome://tracing and Perfetto:
///   - pid = squad id (one "process" lane group per socket),
///   - tid = worker id,
///   - spans as "X" complete events (ts/dur in microseconds),
///   - instants as "i", squad busy_state as "C" counter tracks,
///   - metadata "M" events naming every squad and worker,
///   - machine shape + scheduler + drop counts under "otherData".
///
/// When a metrics snapshot is supplied, its counters and gauges are
/// merged in as "C" counter tracks named "metric:<name>" — one per squad
/// (using the snapshot's writer->squad map) stamped at the trace end, so
/// registry totals line up against the timeline lanes in the viewer.
/// Likewise an attribution (obs::attrib::attribute over the same trace)
/// adds per-squad "attrib:<bucket>" counter tracks (nanoseconds) so the
/// cycle-accounting breakdown is visible next to the lanes it explains.
/// parse_chrome_trace skips both (a Trace has nowhere to hold them).
void write_chrome_trace(const Trace& trace, std::ostream& out,
                        const metrics::Snapshot* metrics = nullptr,
                        const attrib::Attribution* attribution = nullptr);

/// Convenience: write_chrome_trace to a file. Returns false (and writes
/// nothing) when the file cannot be opened.
bool write_chrome_trace_file(const Trace& trace, const std::string& path,
                             const metrics::Snapshot* metrics = nullptr,
                             const attrib::Attribution* attribution = nullptr);

/// Reconstructs a Trace from Chrome-trace JSON produced by
/// write_chrome_trace (the exporter's exact inverse: timestamps round-trip
/// to the nanosecond, events regain their worker timelines). Throws
/// std::runtime_error on malformed JSON or ids that reference workers or
/// squads outside the declared machine shape.
Trace parse_chrome_trace(const std::string& json_text);

/// Reads a whole file and parses it. Throws std::runtime_error when the
/// file cannot be read.
Trace parse_chrome_trace_file(const std::string& path);

}  // namespace cab::obs
