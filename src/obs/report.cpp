#include "obs/report.hpp"

#include <algorithm>
#include <cstdio>

#include "util/format.hpp"

namespace cab::obs {

namespace {

LatencySummary summarize(std::vector<std::uint64_t>& durations) {
  LatencySummary s;
  s.count = durations.size();
  if (durations.empty()) return s;
  std::sort(durations.begin(), durations.end());
  auto pct = [&](double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(durations.size() - 1) + 0.5);
    return durations[std::min(idx, durations.size() - 1)];
  };
  s.p50_ns = pct(0.50);
  s.p90_ns = pct(0.90);
  s.p99_ns = pct(0.99);
  s.max_ns = durations.back();
  double sum = 0;
  for (std::uint64_t d : durations) sum += static_cast<double>(d);
  s.mean_ns = sum / static_cast<double>(durations.size());
  return s;
}

int log2_bucket(std::uint64_t ns) {
  int b = 0;
  while (ns > 1 && b < 63) {
    ns >>= 1;
    ++b;
  }
  return b;
}

std::string ns_str(std::uint64_t ns) {
  char buf[32];
  if (ns >= 1000000) {
    std::snprintf(buf, sizeof(buf), "%.2fms", static_cast<double>(ns) / 1e6);
  } else if (ns >= 1000) {
    std::snprintf(buf, sizeof(buf), "%.2fus", static_cast<double>(ns) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lluns",
                  static_cast<unsigned long long>(ns));
  }
  return buf;
}

void add_summary_row(util::TablePrinter& t, const char* label,
                     const LatencySummary& s) {
  if (s.count == 0) {
    t.add_row({label, "0", "-", "-", "-", "-", "-"});
    return;
  }
  t.add_row({label, util::human_count(s.count),
             ns_str(static_cast<std::uint64_t>(s.mean_ns)), ns_str(s.p50_ns),
             ns_str(s.p90_ns), ns_str(s.p99_ns), ns_str(s.max_ns)});
}

/// Total coverage of a set of (possibly nested/overlapping) spans.
std::uint64_t merged_span_ns(std::vector<std::pair<std::uint64_t, std::uint64_t>>& iv) {
  if (iv.empty()) return 0;
  std::sort(iv.begin(), iv.end());
  std::uint64_t covered = 0;
  std::uint64_t lo = iv[0].first, hi = iv[0].second;
  for (std::size_t i = 1; i < iv.size(); ++i) {
    if (iv[i].first > hi) {
      covered += hi - lo;
      lo = iv[i].first;
      hi = iv[i].second;
    } else {
      hi = std::max(hi, iv[i].second);
    }
  }
  covered += hi - lo;
  return covered;
}

}  // namespace

std::size_t StealLatencyReport::total_attempts() const {
  return intra_hit.count + intra_miss.count + inter_steal_hit.count +
         inter_steal_miss.count + inter_acquire_hit.count +
         inter_acquire_miss.count;
}

StealLatencyReport steal_latency(const Trace& trace) {
  StealLatencyReport r;
  std::vector<std::uint64_t> intra_hit, intra_miss, is_hit, is_miss, ia_hit,
      ia_miss;
  r.histogram.assign(40, 0);
  for (const WorkerTimeline& w : trace.workers) {
    for (const TraceEvent& e : w.events) {
      std::vector<std::uint64_t>* dst = nullptr;
      switch (e.kind) {
        case EventKind::kStealIntra:
          dst = e.b != 0 ? &intra_hit : &intra_miss;
          break;
        case EventKind::kStealInter:
          dst = e.b != 0 ? &is_hit : &is_miss;
          break;
        case EventKind::kInterAcquire:
          dst = e.b != 0 ? &ia_hit : &ia_miss;
          break;
        default:
          break;
      }
      if (!dst) continue;
      const std::uint64_t d = e.t1 >= e.t0 ? e.t1 - e.t0 : 0;
      dst->push_back(d);
      const int b = log2_bucket(d);
      if (static_cast<std::size_t>(b) < r.histogram.size()) {
        ++r.histogram[static_cast<std::size_t>(b)];
      }
    }
  }
  r.intra_hit = summarize(intra_hit);
  r.intra_miss = summarize(intra_miss);
  r.inter_steal_hit = summarize(is_hit);
  r.inter_steal_miss = summarize(is_miss);
  r.inter_acquire_hit = summarize(ia_hit);
  r.inter_acquire_miss = summarize(ia_miss);
  return r;
}

std::string StealLatencyReport::to_string() const {
  util::TablePrinter t(
      {"steal path", "count", "mean", "p50", "p90", "p99", "max"});
  add_summary_row(t, "intra hit", intra_hit);
  add_summary_row(t, "intra miss", intra_miss);
  add_summary_row(t, "inter steal hit", inter_steal_hit);
  add_summary_row(t, "inter steal miss", inter_steal_miss);
  add_summary_row(t, "inter acquire hit", inter_acquire_hit);
  add_summary_row(t, "inter acquire miss", inter_acquire_miss);
  std::string out = t.to_string();
  // Compact log2 histogram: print only the populated range.
  std::size_t lo = histogram.size(), hi = 0;
  for (std::size_t i = 0; i < histogram.size(); ++i) {
    if (histogram[i] > 0) {
      lo = std::min(lo, i);
      hi = i;
    }
  }
  if (lo <= hi && lo < histogram.size()) {
    std::uint64_t peak = 0;
    for (std::size_t i = lo; i <= hi; ++i) peak = std::max(peak, histogram[i]);
    out += "latency histogram (all steal attempts, log2 ns buckets):\n";
    for (std::size_t i = lo; i <= hi; ++i) {
      const int bar = peak == 0 ? 0
                                : static_cast<int>(
                                      (histogram[i] * 40 + peak - 1) / peak);
      char line[128];
      std::snprintf(line, sizeof(line), "  %8s | %-40.*s %s\n",
                    ns_str(1ull << i).c_str(), bar,
                    "########################################",
                    util::human_count(histogram[i]).c_str());
      out += line;
    }
  }
  return out;
}

OccupancyReport squad_occupancy(const Trace& trace) {
  OccupancyReport r;
  std::uint64_t t_min = ~0ull, t_max = 0;
  for (const WorkerTimeline& w : trace.workers) {
    for (const TraceEvent& e : w.events) {
      t_min = std::min(t_min, e.t0);
      t_max = std::max(t_max, e.t1);
    }
  }
  if (t_max <= t_min) return r;
  r.wall_ns = t_max - t_min;

  // busy_state occupancy: merge every squad's counter samples from all
  // workers (a worker can release another squad's busy_state at an inter
  // task's completion), sort by time, integrate value > 0.
  std::int32_t squad_count = 0;
  for (const WorkerTimeline& w : trace.workers) {
    squad_count = std::max(squad_count, w.squad + 1);
  }
  std::vector<std::vector<std::pair<std::uint64_t, std::int32_t>>> samples(
      static_cast<std::size_t>(squad_count));
  for (const WorkerTimeline& w : trace.workers) {
    for (const TraceEvent& e : w.events) {
      if (e.kind != EventKind::kActiveInter) continue;
      if (e.a < 0 || e.a >= squad_count) continue;
      samples[static_cast<std::size_t>(e.a)].push_back({e.t0, e.b});
    }
  }
  for (std::int32_t sq = 0; sq < squad_count; ++sq) {
    auto& sv = samples[static_cast<std::size_t>(sq)];
    std::sort(sv.begin(), sv.end());
    SquadOccupancy o;
    o.squad = sq;
    std::uint64_t busy = 0, prev_t = t_min;
    std::int32_t value = 0;
    for (const auto& [t, v] : sv) {
      if (value > 0) busy += t - prev_t;
      prev_t = t;
      value = v;
      o.max_active = std::max(o.max_active, v);
    }
    if (value > 0) busy += t_max - prev_t;
    o.busy_fraction =
        static_cast<double>(busy) / static_cast<double>(r.wall_ns);
    r.squads.push_back(o);
  }

  // Per-worker execution coverage: union of (nested) task spans.
  std::vector<double> squad_exec_sum(static_cast<std::size_t>(squad_count), 0);
  std::vector<int> squad_workers(static_cast<std::size_t>(squad_count), 0);
  for (const WorkerTimeline& w : trace.workers) {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> iv;
    std::uint64_t tasks = 0;
    for (const TraceEvent& e : w.events) {
      if (e.kind != EventKind::kTaskExec) continue;
      ++tasks;
      iv.push_back({e.t0, std::max(e.t1, e.t0)});
    }
    WorkerOccupancy o;
    o.worker = w.worker;
    o.squad = w.squad;
    o.is_head = w.is_head;
    o.tasks = tasks;
    o.exec_fraction = static_cast<double>(merged_span_ns(iv)) /
                      static_cast<double>(r.wall_ns);
    r.workers.push_back(o);
    if (w.squad >= 0 && w.squad < squad_count) {
      squad_exec_sum[static_cast<std::size_t>(w.squad)] += o.exec_fraction;
      ++squad_workers[static_cast<std::size_t>(w.squad)];
    }
  }
  for (SquadOccupancy& o : r.squads) {
    const int n = squad_workers[static_cast<std::size_t>(o.squad)];
    if (n > 0) {
      o.mean_exec_fraction =
          squad_exec_sum[static_cast<std::size_t>(o.squad)] / n;
    }
  }
  return r;
}

std::string OccupancyReport::to_string() const {
  std::string out;
  out += "wall span: " + ns_str(wall_ns) + "\n";
  util::TablePrinter squads_t(
      {"squad", "busy_state occupancy", "peak active_inter", "mean exec occ"});
  for (const SquadOccupancy& o : squads) {
    squads_t.add_row({std::to_string(o.squad),
                      util::format_fixed(o.busy_fraction * 100.0, 1) + "%",
                      std::to_string(o.max_active),
                      util::format_fixed(o.mean_exec_fraction * 100.0, 1) +
                          "%"});
  }
  out += squads_t.to_string();
  util::TablePrinter workers_t({"worker", "squad", "head", "tasks", "exec occ"});
  for (const WorkerOccupancy& o : workers) {
    workers_t.add_row({std::to_string(o.worker), std::to_string(o.squad),
                       o.is_head ? "*" : "", util::human_count(o.tasks),
                       util::format_fixed(o.exec_fraction * 100.0, 1) + "%"});
  }
  out += workers_t.to_string();
  return out;
}

}  // namespace cab::obs
