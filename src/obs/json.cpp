#include "obs/json.hpp"

#include <cctype>
#include <cstdlib>

namespace cab::obs::json {

const Value& Value::operator[](const std::string& key) const {
  static const Value kNull;
  if (type_ != Type::kObject) return kNull;
  auto it = obj_.find(key);
  return it == obj_.end() ? kNull : it->second;
}

namespace {

/// Recursive-descent parser over a string_view with a cursor. The
/// grammar is full JSON; the only liberty taken is accepting any IEEE
/// double for numbers (strtod), which covers every value we emit.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) {
    throw std::runtime_error("json parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Value(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Value(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value();
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value::Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[std::move(key)] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Value(std::move(obj));
    }
  }

  Value parse_array() {
    expect('[');
    Value::Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Value(std::move(arr));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // UTF-8 encode (BMP only — all we ever write is ASCII).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Value parse_number() {
    // Copy the token before strtod: the string_view need not be
    // null-terminated.
    std::size_t end = pos_;
    while (end < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[end])) ||
            text_[end] == '-' || text_[end] == '+' || text_[end] == '.' ||
            text_[end] == 'e' || text_[end] == 'E')) {
      ++end;
    }
    std::string token(text_.substr(pos_, end - pos_));
    char* parsed_end = nullptr;
    double v = std::strtod(token.c_str(), &parsed_end);
    if (parsed_end != token.c_str() + token.size() || token.empty()) {
      fail("bad number");
    }
    pos_ = end;
    return Value(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace cab::obs::json
