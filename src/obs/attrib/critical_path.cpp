#include "obs/attrib/critical_path.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "util/format.hpp"

namespace cab::obs::attrib {

namespace {

/// One exec span under the join sweep.
struct ExecSpan {
  std::uint64_t t0 = 0;
  std::uint64_t t1 = 0;
  std::uint64_t child_ns = 0;      ///< directly nested span time
  dag::NodeId node = dag::kNoNode; ///< joined kTaskNode tag
  bool is_exec = false;            ///< false: nesting-only (sync etc.)
};

/// Joins each worker's kTaskNode tags to the innermost enclosing
/// kTaskExec span and accumulates that span's self time per node.
/// Spans and tags are swept together in start order with a nesting
/// stack (a worker's spans are laminar), so the join is O(n log n).
void realized_per_node(const WorkerTimeline& w,
                       std::vector<std::uint64_t>& node_ns) {
  struct Tag {
    std::uint64_t t = 0;
    dag::NodeId node = dag::kNoNode;
  };
  std::vector<ExecSpan> spans;
  std::vector<Tag> tags;
  for (const TraceEvent& e : w.events) {
    if (e.kind == EventKind::kTaskNode) {
      tags.push_back({e.t0, e.a});
    } else if (is_span(e.kind) && e.t1 > e.t0) {
      ExecSpan s;
      s.t0 = e.t0;
      s.t1 = e.t1;
      s.is_exec = e.kind == EventKind::kTaskExec;
      spans.push_back(s);
    }
  }
  std::sort(spans.begin(), spans.end(),
            [](const ExecSpan& a, const ExecSpan& b) {
              if (a.t0 != b.t0) return a.t0 < b.t0;
              return a.t1 > b.t1;
            });
  std::sort(tags.begin(), tags.end(),
            [](const Tag& a, const Tag& b) { return a.t < b.t; });

  std::vector<ExecSpan> stack;
  auto settle = [&](const ExecSpan& s) {
    if (!s.is_exec || s.node == dag::kNoNode) return;
    const std::uint64_t len = s.t1 - s.t0;
    const std::uint64_t self = len > s.child_ns ? len - s.child_ns : 0;
    if (static_cast<std::size_t>(s.node) < node_ns.size()) {
      node_ns[static_cast<std::size_t>(s.node)] += self;
    }
  };
  std::size_t ti = 0;
  for (const ExecSpan& s : spans) {
    // Tags before this span's start belong to spans already on the stack.
    for (; ti < tags.size() && tags[ti].t < s.t0; ++ti) {
      for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
        if (it->is_exec && it->t1 >= tags[ti].t &&
            it->node == dag::kNoNode) {
          it->node = tags[ti].node;
          break;
        }
      }
    }
    while (!stack.empty() && stack.back().t1 <= s.t0) {
      settle(stack.back());
      stack.pop_back();
    }
    if (!stack.empty()) stack.back().child_ns += s.t1 - s.t0;
    stack.push_back(s);
  }
  for (; ti < tags.size(); ++ti) {
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      if (it->is_exec && it->t1 >= tags[ti].t && it->node == dag::kNoNode) {
        it->node = tags[ti].node;
        break;
      }
    }
  }
  while (!stack.empty()) {
    settle(stack.back());
    stack.pop_back();
  }
}

}  // namespace

RealizedPath realized_critical_path(const Trace& trace,
                                    const dag::TaskGraph& graph) {
  RealizedPath out;
  out.dag_t1 = graph.total_work();
  out.dag_tinf = graph.critical_path();
  out.dag_speedup_bound =
      out.dag_tinf > 0 ? static_cast<double>(out.dag_t1) /
                             static_cast<double>(out.dag_tinf)
                       : 0.0;
  if (graph.empty()) return out;

  const std::size_t n = graph.size();
  std::vector<std::uint64_t> node_ns(n, 0);
  for (const WorkerTimeline& w : trace.workers) {
    realized_per_node(w, node_ns);
  }

  // Measured rate for filling in untagged nodes (dropped events, nodes
  // inlined without a span): realized ns per declared work unit.
  std::uint64_t joined_ns = 0, joined_work = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const dag::TaskGraph::Node& nd = graph.node(static_cast<dag::NodeId>(i));
    if (node_ns[i] > 0) {
      ++out.joined_tasks;
      joined_ns += node_ns[i];
      joined_work += nd.pre_work + nd.post_work;
    }
  }
  const double ns_per_work =
      joined_work > 0
          ? static_cast<double>(joined_ns) / static_cast<double>(joined_work)
          : 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (node_ns[i] > 0) continue;
    const dag::TaskGraph::Node& nd = graph.node(static_cast<dag::NodeId>(i));
    node_ns[i] = static_cast<std::uint64_t>(
        static_cast<double>(nd.pre_work + nd.post_work) * ns_per_work);
    ++out.estimated_tasks;
  }

  // Pre/post split by declared work ratio (a span covers body + merge);
  // all-zero-work nodes put their overhead in pre.
  std::vector<std::uint64_t> pre_ns(n, 0), post_ns(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const dag::TaskGraph::Node& nd = graph.node(static_cast<dag::NodeId>(i));
    const std::uint64_t work = nd.pre_work + nd.post_work;
    if (work == 0) {
      pre_ns[i] = node_ns[i];
    } else {
      pre_ns[i] = static_cast<std::uint64_t>(
          static_cast<double>(node_ns[i]) *
          (static_cast<double>(nd.pre_work) / static_cast<double>(work)));
      post_ns[i] = node_ns[i] - pre_ns[i];
    }
    out.realized_t1_ns += node_ns[i];
  }

  // Bottom-up realized span, mirroring TaskGraph::critical_path: ids are
  // topological so a reverse sweep sees children before parents.
  std::vector<std::uint64_t> span(n, 0);
  for (std::size_t r = n; r-- > 0;) {
    const dag::TaskGraph::Node& nd = graph.node(static_cast<dag::NodeId>(r));
    std::uint64_t child_part = 0;
    for (dag::NodeId c : nd.children) {
      const std::uint64_t cs = span[static_cast<std::size_t>(c)];
      if (nd.sequential) {
        child_part += cs;
      } else if (cs > child_part) {
        child_part = cs;
      }
    }
    span[r] = pre_ns[r] + child_part + post_ns[r];
  }
  out.realized_tinf_ns = span[0];
  out.speedup_bound = out.realized_tinf_ns > 0
                          ? static_cast<double>(out.realized_t1_ns) /
                                static_cast<double>(out.realized_tinf_ns)
                          : 0.0;
  out.bound_ratio = out.dag_speedup_bound > 0
                        ? out.speedup_bound / out.dag_speedup_bound
                        : 0.0;

  // Per-level shares along the realized path: the path holds the root and,
  // recursively, every child of a sequential node / the max child of a
  // parallel node; each path node contributes its own pre+post.
  std::map<std::int32_t, std::uint64_t> by_level;
  std::vector<dag::NodeId> walk{graph.root()};
  while (!walk.empty()) {
    const dag::NodeId id = walk.back();
    walk.pop_back();
    const std::size_t i = static_cast<std::size_t>(id);
    const dag::TaskGraph::Node& nd = graph.node(id);
    by_level[nd.level] += pre_ns[i] + post_ns[i];
    if (nd.children.empty()) continue;
    if (nd.sequential) {
      for (dag::NodeId c : nd.children) walk.push_back(c);
    } else {
      dag::NodeId best = nd.children.front();
      for (dag::NodeId c : nd.children) {
        if (span[static_cast<std::size_t>(c)] >
            span[static_cast<std::size_t>(best)]) {
          best = c;
        }
      }
      walk.push_back(best);
    }
  }
  for (const auto& [level, ns] : by_level) {
    LevelShare ls;
    ls.level = level;
    ls.ns = ns;
    ls.share = out.realized_tinf_ns > 0
                   ? static_cast<double>(ns) /
                         static_cast<double>(out.realized_tinf_ns)
                   : 0.0;
    out.levels.push_back(ls);
  }
  return out;
}

std::string RealizedPath::to_json() const {
  std::string j = "{\"schema\":\"cab-critpath-v1\"";
  j += ",\"realized_t1_ns\":" + std::to_string(realized_t1_ns);
  j += ",\"realized_tinf_ns\":" + std::to_string(realized_tinf_ns);
  j += ",\"speedup_bound\":" + util::format_fixed(speedup_bound, 4);
  j += ",\"dag_t1\":" + std::to_string(dag_t1);
  j += ",\"dag_tinf\":" + std::to_string(dag_tinf);
  j += ",\"dag_speedup_bound\":" + util::format_fixed(dag_speedup_bound, 4);
  j += ",\"bound_ratio\":" + util::format_fixed(bound_ratio, 4);
  j += ",\"joined_tasks\":" + std::to_string(joined_tasks);
  j += ",\"estimated_tasks\":" + std::to_string(estimated_tasks);
  j += ",\"levels\":[";
  for (std::size_t i = 0; i < levels.size(); ++i) {
    if (i) j += ',';
    j += "{\"level\":" + std::to_string(levels[i].level);
    j += ",\"ns\":" + std::to_string(levels[i].ns);
    j += ",\"share\":" + util::format_fixed(levels[i].share, 4) + "}";
  }
  j += "]}";
  return j;
}

std::string RealizedPath::to_string() const {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "realized T1 %.3f ms, T-inf %.3f ms -> speedup bound %.2f "
                "(DAG bound %.2f, ratio %.3f)\n",
                static_cast<double>(realized_t1_ns) / 1e6,
                static_cast<double>(realized_tinf_ns) / 1e6, speedup_bound,
                dag_speedup_bound, bound_ratio);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  tasks joined %zu, estimated from work model %zu\n",
                joined_tasks, estimated_tasks);
  out += buf;
  for (const LevelShare& l : levels) {
    std::snprintf(buf, sizeof(buf),
                  "  level %2d: %8.3f ms on the path (%.1f%%)\n", l.level,
                  static_cast<double>(l.ns) / 1e6, 100.0 * l.share);
    out += buf;
  }
  return out;
}

}  // namespace cab::obs::attrib
