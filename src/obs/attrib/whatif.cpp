#include "obs/attrib/whatif.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/attrib/critical_path.hpp"
#include "simsched/sim_scheduler.hpp"
#include "util/format.hpp"

namespace cab::obs::attrib {

namespace {

std::uint64_t median(std::vector<std::uint64_t>& v) {
  if (v.empty()) return 0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  return v[mid];
}

std::uint64_t run_once(const dag::TaskGraph& graph,
                       const cachesim::TraceStore& store,
                       const hw::Topology& topo, std::int32_t bl,
                       const simsched::CostModel& cost) {
  simsched::SimOptions opts;
  opts.topo = topo;
  opts.policy = simsched::SimPolicy::kCab;
  opts.boundary_level = bl;
  opts.cost = cost;
  return static_cast<std::uint64_t>(
      simsched::Simulator(opts).run(graph, store).makespan);
}

}  // namespace

Calibration calibrate(const Trace& trace, const dag::TaskGraph& graph) {
  Calibration cal;
  const RealizedPath rp = realized_critical_path(trace, graph);
  cal.ns_per_work = rp.dag_t1 > 0 ? static_cast<double>(rp.realized_t1_ns) /
                                        static_cast<double>(rp.dag_t1)
                                  : 1.0;

  std::vector<std::uint64_t> intra, inter, proto;
  for (const WorkerTimeline& w : trace.workers) {
    for (const TraceEvent& e : w.events) {
      if (e.t1 <= e.t0) continue;
      const std::uint64_t len = e.t1 - e.t0;
      switch (e.kind) {
        case EventKind::kStealIntra: intra.push_back(len); break;
        case EventKind::kStealInter: inter.push_back(len); break;
        case EventKind::kInterAcquire: proto.push_back(len); break;
        default: break;
      }
    }
  }
  cal.sample_spans = intra.size() + inter.size();
  cal.intra_steal_median_ns = median(intra);
  cal.inter_steal_median_ns = median(inter);
  cal.protocol_median_ns = median(proto);

  simsched::CostModel& c = cal.cost;
  c.cycles_per_work = cal.ns_per_work > 0 ? cal.ns_per_work : 1.0;
  // Memory time is folded into the measured spans; see Calibration docs.
  c.l1_hit_cycles = 0.0;
  c.l2_hit_cycles = 0.0;
  c.l3_hit_cycles = 0.0;
  c.memory_cycles = 0.0;
  if (cal.intra_steal_median_ns > 0) {
    c.intra_steal_cycles = static_cast<double>(cal.intra_steal_median_ns);
  }
  if (cal.inter_steal_median_ns > 0) {
    c.inter_steal_cycles = static_cast<double>(cal.inter_steal_median_ns);
  }
  return cal;
}

const std::vector<std::string>& what_if_components() {
  static const std::vector<std::string> kComponents = {
      "exec", "steal_intra", "steal_inter", "spawn"};
  return kComponents;
}

WhatIfProfile what_if_sweep(const dag::TaskGraph& graph,
                            const cachesim::TraceStore& store,
                            const hw::Topology& topo,
                            std::int32_t boundary_level,
                            const Calibration& cal,
                            const std::vector<double>& factors) {
  WhatIfProfile out;
  out.baseline_ns = run_once(graph, store, topo, boundary_level, cal.cost);
  for (const std::string& component : what_if_components()) {
    for (double k : factors) {
      simsched::CostModel cost = cal.cost;
      if (component == "exec") {
        cost.cycles_per_work *= k;
      } else if (component == "steal_intra") {
        cost.intra_steal_cycles *= k;
      } else if (component == "steal_inter") {
        cost.inter_steal_cycles *= k;
      } else if (component == "spawn") {
        cost.spawn_cycles *= k;
      }
      WhatIfEntry e;
      e.component = component;
      e.factor = k;
      e.projected_ns = run_once(graph, store, topo, boundary_level, cost);
      e.delta = out.baseline_ns > 0
                    ? (static_cast<double>(e.projected_ns) -
                       static_cast<double>(out.baseline_ns)) /
                          static_cast<double>(out.baseline_ns)
                    : 0.0;
      out.entries.push_back(std::move(e));
    }
  }
  return out;
}

std::string WhatIfProfile::to_json() const {
  std::string j = "{\"schema\":\"cab-whatif-v1\"";
  j += ",\"baseline_ns\":" + std::to_string(baseline_ns);
  j += ",\"entries\":[";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const WhatIfEntry& e = entries[i];
    if (i) j += ',';
    j += "{\"component\":\"" + e.component + "\"";
    j += ",\"factor\":" + util::format_fixed(e.factor, 3);
    j += ",\"projected_ns\":" + std::to_string(e.projected_ns);
    j += ",\"delta\":" + util::format_fixed(e.delta, 4) + "}";
  }
  j += "]}";
  return j;
}

std::string WhatIfProfile::to_string() const {
  std::string out;
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "what-if baseline (calibrated replay): %.3f ms\n",
                static_cast<double>(baseline_ns) / 1e6);
  out += buf;
  for (const WhatIfEntry& e : entries) {
    std::snprintf(buf, sizeof(buf),
                  "  %-12s x%.2f -> %9.3f ms (%+.2f%%)\n",
                  e.component.c_str(), e.factor,
                  static_cast<double>(e.projected_ns) / 1e6, 100.0 * e.delta);
    out += buf;
  }
  return out;
}

}  // namespace cab::obs::attrib
