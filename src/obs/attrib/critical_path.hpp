#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dag/task_graph.hpp"
#include "obs/timeline.hpp"

namespace cab::obs::attrib {

/// Realized time spent on one level of the realized critical path.
struct LevelShare {
  std::int32_t level = 0;
  std::uint64_t ns = 0;  ///< pre+post self time of path nodes at this level
  double share = 0.0;    ///< ns / realized_tinf_ns
};

/// The critical path a run *actually* executed, measured from the trace
/// rather than derived from declared work units.
///
/// kTaskNode instants join each kTaskExec span to its dag::NodeId; the
/// span's *self* time (body minus nested sync waits and helping) is the
/// node's realized duration, split pre/post by the declared work ratio.
/// Realized T1 is the sum over all nodes, realized T-infinity the longest
/// pre -> children -> post chain under the graph's fork-join structure
/// (sequential nodes sum their child phases, parallel nodes take the max)
/// — the same recursion as TaskGraph::critical_path, with measured
/// nanoseconds in place of work units.
struct RealizedPath {
  std::uint64_t realized_t1_ns = 0;    ///< Σ realized node self time
  std::uint64_t realized_tinf_ns = 0;  ///< realized span of the graph
  /// Achievable-speedup bound implied by the *measured* run: T1/T∞. No
  /// scheduler can beat this with the task grains the run actually had.
  double speedup_bound = 0.0;

  std::uint64_t dag_t1 = 0;    ///< declared total work (units)
  std::uint64_t dag_tinf = 0;  ///< declared critical path (units)
  double dag_speedup_bound = 0.0;
  /// speedup_bound / dag_speedup_bound — 1.0 when measured grains match
  /// the declared work model (the acceptance check asks for within 10%
  /// on a deterministic app).
  double bound_ratio = 0.0;

  std::size_t joined_tasks = 0;     ///< nodes matched to an exec span
  std::size_t estimated_tasks = 0;  ///< nodes filled from the work model
  std::vector<LevelShare> levels;   ///< critical-path share per task level

  std::string to_json() const;    ///< byte-stable "cab-critpath-v1" object
  std::string to_string() const;  ///< human summary
};

/// Extracts the realized critical path of `trace` against the graph that
/// produced it. Nodes whose kTaskNode tag was dropped (ring wrap,
/// capacity) are estimated from the declared work model at the realized
/// ns-per-work-unit rate and counted in `estimated_tasks`, so a truncated
/// trace degrades gracefully instead of reporting a bogus bound.
RealizedPath realized_critical_path(const Trace& trace,
                                    const dag::TaskGraph& graph);

}  // namespace cab::obs::attrib
