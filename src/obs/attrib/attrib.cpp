#include "obs/attrib/attrib.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/json.hpp"
#include "util/format.hpp"

namespace cab::obs::attrib {

Buckets& Buckets::operator+=(const Buckets& o) {
  exec_intra += o.exec_intra;
  exec_inter += o.exec_inter;
  steal_intra += o.steal_intra;
  steal_inter += o.steal_inter;
  protocol += o.protocol;
  idle += o.idle;
  untracked += o.untracked;
  wall += o.wall;
  return *this;
}

namespace {

/// One span under self-time accounting: its extent, kind payload, and the
/// total length of its *directly* nested spans (subtracted at finalize).
struct OpenSpan {
  std::uint64_t t0 = 0;
  std::uint64_t t1 = 0;
  std::uint64_t child_ns = 0;
  EventKind kind = EventKind::kTaskExec;
  std::int32_t b = 0;
};

void charge(Buckets& out, const OpenSpan& s) {
  const std::uint64_t len = s.t1 - s.t0;
  const std::uint64_t self = len > s.child_ns ? len - s.child_ns : 0;
  switch (s.kind) {
    case EventKind::kTaskExec:
      (s.b != 0 ? out.exec_inter : out.exec_intra) += self;
      break;
    case EventKind::kStealIntra:
      out.steal_intra += self;
      break;
    case EventKind::kStealInter:
      out.steal_inter += self;
      break;
    case EventKind::kInterAcquire:
      out.protocol += self;
      break;
    case EventKind::kSyncWait:  // spin-at-sync between helping attempts
    case EventKind::kIdle:
      out.idle += self;
      break;
    default:
      break;
  }
}

/// Self-time decomposition of one worker's spans. The spans of a single
/// worker form a laminar family (see test_obs TaskSpansNestPerWorker):
/// sorted by (t0 asc, t1 desc) a stack sweep reconstructs the nesting,
/// each span's full length is charged to its direct parent's child_ns,
/// and its own bucket receives length − child_ns.
Buckets worker_buckets(const WorkerTimeline& w) {
  std::vector<OpenSpan> spans;
  spans.reserve(w.events.size());
  for (const TraceEvent& e : w.events) {
    if (!is_span(e.kind) || e.t1 <= e.t0) continue;  // zero-length: no time
    OpenSpan s;
    s.t0 = e.t0;
    s.t1 = e.t1;
    s.kind = e.kind;
    s.b = e.b;
    spans.push_back(s);
  }
  std::sort(spans.begin(), spans.end(),
            [](const OpenSpan& a, const OpenSpan& b) {
              if (a.t0 != b.t0) return a.t0 < b.t0;
              return a.t1 > b.t1;  // outer span first at equal starts
            });
  Buckets out;
  std::vector<OpenSpan> stack;
  for (const OpenSpan& s : spans) {
    while (!stack.empty() && stack.back().t1 <= s.t0) {
      charge(out, stack.back());
      stack.pop_back();
    }
    if (!stack.empty()) stack.back().child_ns += s.t1 - s.t0;
    stack.push_back(s);
  }
  while (!stack.empty()) {
    charge(out, stack.back());
    stack.pop_back();
  }
  return out;
}

void append_buckets(std::string& j, const Buckets& b) {
  j += "{\"exec_intra\":" + std::to_string(b.exec_intra);
  j += ",\"exec_inter\":" + std::to_string(b.exec_inter);
  j += ",\"steal_intra\":" + std::to_string(b.steal_intra);
  j += ",\"steal_inter\":" + std::to_string(b.steal_inter);
  j += ",\"protocol\":" + std::to_string(b.protocol);
  j += ",\"idle\":" + std::to_string(b.idle);
  j += ",\"untracked\":" + std::to_string(b.untracked);
  j += ",\"wall\":" + std::to_string(b.wall);
  j += "}";
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
}

double share(std::uint64_t part, std::uint64_t whole) {
  return whole > 0 ? static_cast<double>(part) / static_cast<double>(whole)
                   : 0.0;
}

bool read_buckets(const json::Value& v, Buckets& b) {
  if (!v.is_object()) return false;
  b.exec_intra = static_cast<std::uint64_t>(v.number_or("exec_intra", 0));
  b.exec_inter = static_cast<std::uint64_t>(v.number_or("exec_inter", 0));
  b.steal_intra = static_cast<std::uint64_t>(v.number_or("steal_intra", 0));
  b.steal_inter = static_cast<std::uint64_t>(v.number_or("steal_inter", 0));
  b.protocol = static_cast<std::uint64_t>(v.number_or("protocol", 0));
  b.idle = static_cast<std::uint64_t>(v.number_or("idle", 0));
  b.untracked = static_cast<std::uint64_t>(v.number_or("untracked", 0));
  b.wall = static_cast<std::uint64_t>(v.number_or("wall", 0));
  return true;
}

}  // namespace

Attribution attribute(const Trace& trace) {
  Attribution a;
  a.sockets = trace.sockets;
  a.cores_per_socket = trace.cores_per_socket;
  a.scheduler = trace.scheduler;
  a.workload = trace.workload;
  a.dropped_events = trace.dropped_count();

  // Common analysis window: hull of every span across all workers, so
  // each worker is charged the same wall and aggregates are comparable.
  std::uint64_t t0 = ~std::uint64_t{0}, t1 = 0;
  for (const WorkerTimeline& w : trace.workers) {
    for (const TraceEvent& e : w.events) {
      if (e.t0 < t0) t0 = e.t0;
      if (e.t1 > t1) t1 = e.t1;
    }
  }
  if (t1 <= t0) return a;  // empty trace: all-zero attribution
  a.window_t0 = t0;
  a.window_t1 = t1;
  const std::uint64_t wall = t1 - t0;

  a.squads.resize(static_cast<std::size_t>(
      trace.sockets > 0 ? trace.sockets : 0));
  for (std::size_t s = 0; s < a.squads.size(); ++s) {
    a.squads[s].squad = static_cast<std::int32_t>(s);
  }
  for (const WorkerTimeline& w : trace.workers) {
    WorkerAttrib wa;
    wa.worker = w.worker;
    wa.squad = w.squad;
    wa.is_head = w.is_head;
    wa.b = worker_buckets(w);
    wa.b.wall = wall;
    const std::uint64_t explained = wa.b.explained();
    wa.b.untracked = wall > explained ? wall - explained : 0;
    a.total += wa.b;
    if (w.squad >= 0 && static_cast<std::size_t>(w.squad) < a.squads.size()) {
      a.squads[static_cast<std::size_t>(w.squad)].b += wa.b;
    }
    a.workers.push_back(std::move(wa));
  }
  return a;
}

std::string Attribution::to_json() const {
  std::string j = "{\"schema\":\"cab-attrib-v1\"";
  j += ",\"sockets\":" + std::to_string(sockets);
  j += ",\"cores_per_socket\":" + std::to_string(cores_per_socket);
  j += ",\"scheduler\":";
  append_escaped(j, scheduler);
  j += ",\"workload\":";
  append_escaped(j, workload);
  j += ",\"window_t0_ns\":" + std::to_string(window_t0);
  j += ",\"window_t1_ns\":" + std::to_string(window_t1);
  j += ",\"window_ns\":" + std::to_string(window_ns());
  j += ",\"dropped_events\":" + std::to_string(dropped_events);
  j += ",\"total\":";
  append_buckets(j, total);
  j += ",\"shares\":{\"exec\":" + util::format_fixed(
                                      share(total.exec(), total.wall), 6);
  j += ",\"steal_intra\":" +
       util::format_fixed(share(total.steal_intra, total.wall), 6);
  j += ",\"steal_inter\":" +
       util::format_fixed(share(total.steal_inter, total.wall), 6);
  j += ",\"protocol\":" +
       util::format_fixed(share(total.protocol, total.wall), 6);
  j += ",\"idle\":" + util::format_fixed(share(total.idle, total.wall), 6);
  j += ",\"untracked\":" +
       util::format_fixed(share(total.untracked, total.wall), 6);
  j += ",\"scheduler_overhead\":" +
       util::format_fixed(total.overhead_share(), 6);
  j += "},\"tiers\":{\"intra_ns\":" +
       std::to_string(total.exec_intra + total.steal_intra);
  j += ",\"inter_ns\":" + std::to_string(total.exec_inter +
                                         total.steal_inter + total.protocol);
  j += "},\"workers\":[";
  for (std::size_t i = 0; i < workers.size(); ++i) {
    const WorkerAttrib& w = workers[i];
    if (i) j += ',';
    j += "\n{\"worker\":" + std::to_string(w.worker);
    j += ",\"squad\":" + std::to_string(w.squad);
    j += ",\"head\":";
    j += w.is_head ? "true" : "false";
    j += ",\"buckets\":";
    append_buckets(j, w.b);
    j += "}";
  }
  j += "],\"squads\":[";
  for (std::size_t i = 0; i < squads.size(); ++i) {
    if (i) j += ',';
    j += "\n{\"squad\":" + std::to_string(squads[i].squad);
    j += ",\"buckets\":";
    append_buckets(j, squads[i].b);
    j += "}";
  }
  j += "]}";
  return j;
}

std::string Attribution::to_string() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "attribution window: %.3f ms across %zu workers "
                "(%d socket(s) x %d core(s), %s)\n",
                static_cast<double>(window_ns()) / 1e6, workers.size(),
                sockets, cores_per_socket, scheduler.c_str());
  out += buf;
  auto pct = [&](std::uint64_t ns) {
    return 100.0 * share(ns, total.wall);
  };
  std::snprintf(buf, sizeof(buf),
                "  exec %.2f%% (intra %.2f%%, inter %.2f%%)  "
                "steal intra %.2f%%  steal inter %.2f%%\n"
                "  protocol %.2f%%  idle %.2f%%  untracked %.2f%%  "
                "(explained %.2f%%, sched overhead %.2f%%)\n",
                pct(total.exec()), pct(total.exec_intra),
                pct(total.exec_inter), pct(total.steal_intra),
                pct(total.steal_inter), pct(total.protocol), pct(total.idle),
                pct(total.untracked), 100.0 * explained_share(),
                100.0 * total.overhead_share());
  out += buf;
  for (const SquadAttrib& s : squads) {
    std::snprintf(buf, sizeof(buf),
                  "  squad %d: exec %.2f%% steal %.2f%% protocol %.2f%% "
                  "idle %.2f%% untracked %.2f%%\n",
                  s.squad, 100.0 * share(s.b.exec(), s.b.wall),
                  100.0 * share(s.b.steal_intra + s.b.steal_inter, s.b.wall),
                  100.0 * share(s.b.protocol, s.b.wall),
                  100.0 * share(s.b.idle, s.b.wall),
                  100.0 * share(s.b.untracked, s.b.wall));
    out += buf;
  }
  if (dropped_events > 0) {
    std::snprintf(buf, sizeof(buf),
                  "  WARNING: %llu timeline events dropped — untracked "
                  "share includes the unrecorded time\n",
                  static_cast<unsigned long long>(dropped_events));
    out += buf;
  }
  return out;
}

bool parse_attrib_json(const std::string& text, Attribution& out) {
  json::Value doc;
  try {
    doc = json::parse(text);
  } catch (const std::exception&) {
    return false;
  }
  if (!doc.is_object() ||
      doc.string_or("schema", "") != "cab-attrib-v1") {
    return false;
  }
  Attribution a;
  a.sockets = static_cast<std::int32_t>(doc.number_or("sockets", 0));
  a.cores_per_socket =
      static_cast<std::int32_t>(doc.number_or("cores_per_socket", 0));
  a.scheduler = doc.string_or("scheduler", "");
  a.workload = doc.string_or("workload", "");
  a.window_t0 = static_cast<std::uint64_t>(doc.number_or("window_t0_ns", 0));
  a.window_t1 = static_cast<std::uint64_t>(doc.number_or("window_t1_ns", 0));
  a.dropped_events =
      static_cast<std::uint64_t>(doc.number_or("dropped_events", 0));
  if (!read_buckets(doc["total"], a.total)) return false;
  const json::Value& workers = doc["workers"];
  if (!workers.is_array()) return false;
  for (const json::Value& w : workers.as_array()) {
    WorkerAttrib wa;
    wa.worker = static_cast<std::int32_t>(w.number_or("worker", -1));
    wa.squad = static_cast<std::int32_t>(w.number_or("squad", -1));
    wa.is_head = w["head"].type() == json::Value::Type::kBool
                     ? w["head"].as_bool()
                     : false;
    if (!read_buckets(w["buckets"], wa.b)) return false;
    a.workers.push_back(std::move(wa));
  }
  const json::Value& squads = doc["squads"];
  if (!squads.is_array()) return false;
  for (const json::Value& s : squads.as_array()) {
    SquadAttrib sa;
    sa.squad = static_cast<std::int32_t>(s.number_or("squad", -1));
    if (!read_buckets(s["buckets"], sa.b)) return false;
    a.squads.push_back(std::move(sa));
  }
  out = std::move(a);
  return true;
}

}  // namespace cab::obs::attrib
