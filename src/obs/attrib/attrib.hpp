#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/timeline.hpp"

namespace cab::obs::attrib {

/// Where one worker's (or squad's, or the machine's) wall time went, in
/// nanoseconds. The decomposition is exhaustive by construction:
///
///   exec       self time inside kTaskExec spans — task bodies, excluding
///              everything nested in them (sync waits, helping, steal
///              attempts made while helping). Split by tier below.
///   steal_intra / steal_inter
///              self time of kStealIntra / kStealInter attempt spans,
///              hits and misses alike — the cost of *looking* for work.
///   protocol   self time of kInterAcquire spans: the own-squad
///              inter-pool take, including the busy_state binding — the
///              paper's Algorithm I bookkeeping that is neither work nor
///              search.
///   idle       kIdle spans (failed-acquire streaks, including their
///              backoff sleeps) plus kSyncWait *self* time (spinning at a
///              sync between helping attempts) — time with provably
///              nothing useful to do.
///   untracked  wall − everything above: spawn/push/pop costs, occupancy
///              mask maintenance, clock-read overhead, and OS descheduling
///              that lands between spans. Kept explicit (not smeared into
///              the other buckets) so "attribution explains ≥95% of the
///              epoch" is a checkable gate: a large untracked share means
///              the timeline is lying by omission (dropped events, ring
///              truncation, or an untraced hot path).
///
/// Invariant: exec_intra + exec_inter + steal_intra + steal_inter +
/// protocol + idle + untracked == wall (per worker; aggregates sum).
struct Buckets {
  std::uint64_t exec_intra = 0;
  std::uint64_t exec_inter = 0;
  std::uint64_t steal_intra = 0;
  std::uint64_t steal_inter = 0;
  std::uint64_t protocol = 0;
  std::uint64_t idle = 0;
  std::uint64_t untracked = 0;
  std::uint64_t wall = 0;

  std::uint64_t exec() const { return exec_intra + exec_inter; }
  std::uint64_t explained() const {
    return exec() + steal_intra + steal_inter + protocol + idle;
  }
  /// Scheduler-overhead share of this scope's wall time: steal attempts
  /// plus protocol bookkeeping (the tripwire quantity).
  double overhead_share() const {
    return wall > 0
               ? static_cast<double>(steal_intra + steal_inter + protocol) /
                     static_cast<double>(wall)
               : 0.0;
  }
  Buckets& operator+=(const Buckets& o);
};

struct WorkerAttrib {
  std::int32_t worker = 0;
  std::int32_t squad = 0;
  bool is_head = false;
  Buckets b;
};

struct SquadAttrib {
  std::int32_t squad = 0;
  Buckets b;
};

/// Cycle-accounting attribution of one trace: per worker, per squad, and
/// whole-machine, over the common analysis window [window_t0, window_t1]
/// (first span start to last span end across all workers — every worker
/// is charged the same wall so squad/machine aggregates are comparable).
/// Serialized as the byte-stable `cab-attrib-v1` record.
struct Attribution {
  std::int32_t sockets = 0;
  std::int32_t cores_per_socket = 0;
  std::string scheduler;
  std::string workload;
  std::uint64_t window_t0 = 0;  ///< ns since trace epoch
  std::uint64_t window_t1 = 0;
  std::uint64_t dropped_events = 0;  ///< total timeline drops (see gate note)

  Buckets total;  ///< sum over workers; total.wall == workers * window
  std::vector<WorkerAttrib> workers;
  std::vector<SquadAttrib> squads;

  std::uint64_t window_ns() const {
    return window_t1 > window_t0 ? window_t1 - window_t0 : 0;
  }
  /// Fraction of total wall time the buckets explain, in [0, 1].
  double explained_share() const {
    return total.wall > 0 ? static_cast<double>(total.explained()) /
                                static_cast<double>(total.wall)
                          : 1.0;
  }
  double untracked_share() const { return 1.0 - explained_share(); }

  /// Byte-stable `cab-attrib-v1` JSON record (integers plus fixed-point
  /// shares — identical input trace => identical bytes).
  std::string to_json() const;
  /// Human summary: machine shares, per-tier table, per-squad rows.
  std::string to_string() const;
};

/// Decomposes a trace into the bucket breakdown above. Pure function of
/// the trace: per worker, spans are sorted and nested (a worker's spans
/// form a laminar family), each span's *self* time — its length minus its
/// directly nested spans — is charged to its kind's bucket, and the
/// remainder of the window is untracked.
Attribution attribute(const Trace& trace);

/// Parses a `cab-attrib-v1` record produced by Attribution::to_json.
/// Returns false on anything that is not such a record (wrong schema,
/// malformed JSON, missing fields).
bool parse_attrib_json(const std::string& text, Attribution& out);

}  // namespace cab::obs::attrib
