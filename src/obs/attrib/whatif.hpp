#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cachesim/trace.hpp"
#include "dag/task_graph.hpp"
#include "hw/topology.hpp"
#include "obs/timeline.hpp"
#include "simsched/cost_model.hpp"

namespace cab::obs::attrib {

/// A simsched cost model fitted to one measured trace, so what-if runs
/// replay the *measured* run rather than the paper-default machine:
///  - 1 virtual cycle ≡ 1 ns; cycles_per_work = realized T1 / declared
///    total work, so a plain replay reproduces the measured exec time;
///  - cache latencies are zeroed — the memory time a real task paid is
///    already inside its measured span, so charging model latencies on
///    top would double-count it;
///  - steal/acquire costs come from the measured span medians (median,
///    not mean: steal attempts have a heavy backoff tail).
struct Calibration {
  simsched::CostModel cost;
  double ns_per_work = 0.0;
  std::uint64_t intra_steal_median_ns = 0;
  std::uint64_t inter_steal_median_ns = 0;
  std::uint64_t protocol_median_ns = 0;  ///< kInterAcquire (reported only)
  std::uint64_t sample_spans = 0;        ///< steal spans the medians saw
};

/// Fits a Calibration from a trace and the graph that produced it.
Calibration calibrate(const Trace& trace, const dag::TaskGraph& graph);

/// One virtual-speedup experiment: `component` scaled by `factor`.
struct WhatIfEntry {
  std::string component;  ///< "exec" | "steal_intra" | "steal_inter" | "spawn"
  double factor = 1.0;    ///< cost multiplier (0.5 = twice as fast)
  std::uint64_t projected_ns = 0;  ///< simulated makespan under the change
  /// (projected - baseline) / baseline: negative = epoch gets faster.
  double delta = 0.0;
};

/// COZ-style causal profile: for each (component, factor) the projected
/// epoch-time change had that component alone been that much faster or
/// slower. The profile answers "which knob is worth optimizing" — a
/// component whose ×0.5 row barely moves the makespan is off the critical
/// path no matter how large its attribution share is.
struct WhatIfProfile {
  std::uint64_t baseline_ns = 0;  ///< calibrated replay, nothing scaled
  std::vector<WhatIfEntry> entries;

  std::string to_json() const;    ///< byte-stable "cab-whatif-v1" object
  std::string to_string() const;  ///< human table
};

/// Components what_if_sweep scales, in sweep order.
const std::vector<std::string>& what_if_components();

/// Replays `graph` through the deterministic simulator once per
/// (component, factor) pair — every listed component at every factor —
/// plus one unscaled baseline. `boundary_level` < 0 means Eq. 4 default
/// is not computed here; pass the BL the measured run used.
WhatIfProfile what_if_sweep(const dag::TaskGraph& graph,
                            const cachesim::TraceStore& store,
                            const hw::Topology& topo,
                            std::int32_t boundary_level,
                            const Calibration& cal,
                            const std::vector<double>& factors);

}  // namespace cab::obs::attrib
