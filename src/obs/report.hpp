#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/timeline.hpp"

namespace cab::obs {

/// Order statistics over one class of steal-attempt durations.
struct LatencySummary {
  std::size_t count = 0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p90_ns = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t max_ns = 0;
  double mean_ns = 0;
};

/// Steal-attempt latencies split the way the protocol splits them: by
/// tier (intra deque steal vs. inter pool steal/acquire) and by outcome.
/// The histogram is log2-bucketed over all attempts together (bucket i
/// covers [2^i, 2^(i+1)) ns).
struct StealLatencyReport {
  LatencySummary intra_hit, intra_miss;
  LatencySummary inter_steal_hit, inter_steal_miss;
  LatencySummary inter_acquire_hit, inter_acquire_miss;
  std::vector<std::uint64_t> histogram;  ///< log2 buckets, all attempts

  std::size_t total_attempts() const;
  std::string to_string() const;
};

StealLatencyReport steal_latency(const Trace& trace);

/// How occupied one squad was, integrated over the trace's wall span.
struct SquadOccupancy {
  std::int32_t squad = 0;
  double busy_fraction = 0;   ///< time with active_inter > 0 / wall time
  std::int32_t max_active = 0;  ///< peak active_inter observed
  double mean_exec_fraction = 0;  ///< avg over workers of task-span coverage
};

/// Per-worker task-execution coverage (union of task spans / wall time).
struct WorkerOccupancy {
  std::int32_t worker = 0;
  std::int32_t squad = 0;
  bool is_head = false;
  double exec_fraction = 0;
  std::uint64_t tasks = 0;
};

/// The per-squad `busy_state` occupancy report of the paper's Section III
/// argument: where inter-socket work sat over time, and how busy each
/// worker's lane actually was.
struct OccupancyReport {
  std::uint64_t wall_ns = 0;  ///< [first event, last event] span
  std::vector<SquadOccupancy> squads;
  std::vector<WorkerOccupancy> workers;

  std::string to_string() const;
};

OccupancyReport squad_occupancy(const Trace& trace);

}  // namespace cab::obs
