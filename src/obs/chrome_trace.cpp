#include "obs/chrome_trace.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"

namespace cab::obs {

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::kTaskExec: return "task";
    case EventKind::kStealIntra: return "steal:intra";
    case EventKind::kStealInter: return "steal:inter";
    case EventKind::kInterAcquire: return "inter:acquire";
    case EventKind::kSpawnIntra: return "spawn:intra";
    case EventKind::kSpawnInter: return "spawn:inter";
    case EventKind::kActiveInter: return "active_inter";
    case EventKind::kSyncWait: return "sync:wait";
    case EventKind::kIdle: return "idle";
    case EventKind::kTaskNode: return "task:node";
  }
  return "?";
}

namespace {

bool kind_from_name(const std::string& name, EventKind& out) {
  for (int i = 0; i < kEventKindCount; ++i) {
    auto k = static_cast<EventKind>(i);
    if (name == to_string(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

/// ns -> chrome microseconds with 3 decimals (exact round trip).
void append_us(std::string& out, std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out += buf;
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
}

/// Emits one traceEvents entry for `e` owned by worker `w`.
void append_event(std::string& out, const WorkerTimeline& w,
                  const TraceEvent& e) {
  char buf[64];
  // Counter events live on the lane of the squad they describe (e.a),
  // which the emitting worker need not belong to (an inter task's final
  // busy_state release runs on the acquiring squad's worker).
  const std::int32_t pid = e.kind == EventKind::kActiveInter ? e.a : w.squad;
  out += "{\"name\":\"";
  out += to_string(e.kind);
  std::snprintf(buf, sizeof(buf), "\",\"pid\":%d,\"tid\":%d,\"ts\":",
                pid, w.worker);
  out += buf;
  append_us(out, e.t0);
  if (e.kind == EventKind::kActiveInter) {
    std::snprintf(buf, sizeof(buf), ",\"ph\":\"C\",\"args\":{\"value\":%d}}",
                  e.b);
    out += buf;
    return;
  }
  if (is_span(e.kind)) {
    out += ",\"ph\":\"X\",\"dur\":";
    append_us(out, e.t1 >= e.t0 ? e.t1 - e.t0 : 0);
  } else {
    out += ",\"ph\":\"i\",\"s\":\"t\"";
  }
  out += ",\"args\":{";
  switch (e.kind) {
    case EventKind::kTaskExec:
      std::snprintf(buf, sizeof(buf), "\"level\":%d,\"inter\":%d", e.a, e.b);
      break;
    case EventKind::kStealIntra:
      std::snprintf(buf, sizeof(buf), "\"victim\":%d,\"ok\":%d", e.a, e.b);
      break;
    case EventKind::kStealInter:
      std::snprintf(buf, sizeof(buf), "\"victim_squad\":%d,\"ok\":%d", e.a,
                    e.b);
      break;
    case EventKind::kInterAcquire:
      std::snprintf(buf, sizeof(buf), "\"squad\":%d,\"ok\":%d", e.a, e.b);
      break;
    case EventKind::kSpawnIntra:
    case EventKind::kSpawnInter:
      std::snprintf(buf, sizeof(buf), "\"level\":%d", e.a);
      break;
    case EventKind::kSyncWait:
      std::snprintf(buf, sizeof(buf), "\"help_iters\":%d,\"tasks\":%d", e.a,
                    e.b);
      break;
    case EventKind::kIdle:
      std::snprintf(buf, sizeof(buf), "\"fails\":%d", e.a);
      break;
    case EventKind::kTaskNode:
      std::snprintf(buf, sizeof(buf), "\"node\":%d", e.a);
      break;
    case EventKind::kActiveInter:
      buf[0] = '\0';
      break;
  }
  out += buf;
  out += "}}";
}

/// "metric:<name>" plus the registration labels as "k=v" suffixes, e.g.
/// "metric:hw.llc_load_misses tier=inter" — one counter track per name.
std::string metric_track_name(const metrics::MetricSnapshot& m) {
  std::string name = "metric:" + m.name;
  for (const auto& [k, v] : m.labels) {
    name += ' ';
    name += k;
    name += '=';
    name += v;
  }
  return name;
}

/// Largest event end stamp — where the merged metric counter events sit.
std::uint64_t trace_end_ns(const Trace& trace) {
  std::uint64_t end = 0;
  for (const WorkerTimeline& w : trace.workers) {
    for (const TraceEvent& e : w.events) {
      if (e.t1 > end) end = e.t1;
    }
  }
  return end;
}

void append_metric_events(std::string& s, const Trace& trace,
                          const metrics::Snapshot& metrics, bool& first) {
  const std::uint64_t end = trace_end_ns(trace);
  for (const metrics::MetricSnapshot& m : metrics.metrics) {
    if (m.kind == metrics::Kind::kHistogram) continue;  // no counter form
    const std::vector<std::int64_t> by_squad = metrics.squad_totals(m);
    const std::string track = metric_track_name(m);
    auto emit = [&](std::int32_t pid, std::int64_t value) {
      if (!first) s += ",\n";
      first = false;
      s += "{\"name\":";
      append_escaped(s, track);
      char buf[96];
      std::snprintf(buf, sizeof(buf), ",\"ph\":\"C\",\"pid\":%d,\"ts\":",
                    pid);
      s += buf;
      append_us(s, end);
      std::snprintf(buf, sizeof(buf), ",\"args\":{\"value\":%lld}}",
                    static_cast<long long>(value));
      s += buf;
    };
    if (by_squad.empty()) {
      emit(0, m.total);  // no squad map: one whole-machine track
    } else {
      for (std::size_t sq = 0; sq < by_squad.size(); ++sq) {
        emit(static_cast<std::int32_t>(sq), by_squad[sq]);
      }
    }
  }
}

/// Per-squad "attrib:<bucket>" counter tracks (values in nanoseconds) at
/// the trace end — the cycle-accounting decomposition rendered where the
/// viewer shows the lanes it explains.
void append_attrib_events(std::string& s, const Trace& trace,
                          const attrib::Attribution& a, bool& first) {
  const std::uint64_t end = trace_end_ns(trace);
  const std::pair<const char*, std::uint64_t attrib::Buckets::*> tracks[] = {
      {"attrib:exec_intra", &attrib::Buckets::exec_intra},
      {"attrib:exec_inter", &attrib::Buckets::exec_inter},
      {"attrib:steal_intra", &attrib::Buckets::steal_intra},
      {"attrib:steal_inter", &attrib::Buckets::steal_inter},
      {"attrib:protocol", &attrib::Buckets::protocol},
      {"attrib:idle", &attrib::Buckets::idle},
      {"attrib:untracked", &attrib::Buckets::untracked},
  };
  for (const attrib::SquadAttrib& sq : a.squads) {
    for (const auto& [name, field] : tracks) {
      if (!first) s += ",\n";
      first = false;
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"%s\",\"ph\":\"C\",\"pid\":%d,\"ts\":", name,
                    sq.squad);
      s += buf;
      append_us(s, end);
      std::snprintf(buf, sizeof(buf), ",\"args\":{\"value\":%llu}}",
                    static_cast<unsigned long long>(sq.b.*field));
      s += buf;
    }
  }
}

}  // namespace

void write_chrome_trace(const Trace& trace, std::ostream& out,
                        const metrics::Snapshot* metrics,
                        const attrib::Attribution* attribution) {
  std::string s;
  s.reserve(256 + trace.event_count() * 96);
  s += "{\"displayTimeUnit\":\"ns\",\"otherData\":{";
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "\"sockets\":%d,\"cores_per_socket\":%d,\"dropped_events\":%llu,"
                "\"scheduler\":",
                trace.sockets, trace.cores_per_socket,
                static_cast<unsigned long long>(trace.dropped_count()));
  s += buf;
  append_escaped(s, trace.scheduler);
  s += ",\"workload\":";
  append_escaped(s, trace.workload);
  s += "},\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) s += ",\n";
    first = false;
  };
  // Metadata: squad process names once, then one display name plus one
  // machine-readable "cab_worker" record per worker (the latter is what
  // parse_chrome_trace enumerates workers from, so even an event-less
  // worker survives a round trip).
  for (std::int32_t sq = 0; sq < trace.sockets; ++sq) {
    sep();
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
                  "\"args\":{\"name\":\"squad %d\"}}",
                  sq, sq);
    s += buf;
  }
  for (const WorkerTimeline& w : trace.workers) {
    sep();
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,"
                  "\"tid\":%d,\"args\":{\"name\":\"worker %d%s\"}}",
                  w.squad, w.worker, w.worker, w.is_head ? " (head)" : "");
    s += buf;
    sep();
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"cab_worker\",\"ph\":\"M\",\"pid\":%d,"
                  "\"tid\":%d,\"args\":{\"head\":%d,\"dropped\":%llu}}",
                  w.squad, w.worker, w.is_head ? 1 : 0,
                  static_cast<unsigned long long>(w.dropped));
    s += buf;
  }
  for (const WorkerTimeline& w : trace.workers) {
    for (const TraceEvent& e : w.events) {
      sep();
      append_event(s, w, e);
    }
  }
  if (metrics != nullptr) append_metric_events(s, trace, *metrics, first);
  if (attribution != nullptr) {
    append_attrib_events(s, trace, *attribution, first);
  }
  s += "]}\n";
  out << s;
}

bool write_chrome_trace_file(const Trace& trace, const std::string& path,
                             const metrics::Snapshot* metrics,
                             const attrib::Attribution* attribution) {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_trace(trace, out, metrics, attribution);
  return out.good();
}

namespace {

std::uint64_t us_to_ns(double us) {
  if (us < 0) throw std::runtime_error("negative timestamp in trace");
  return static_cast<std::uint64_t>(std::llround(us * 1000.0));
}

}  // namespace

Trace parse_chrome_trace(const std::string& json_text) {
  const json::Value doc = json::parse(json_text);
  if (!doc.is_object()) throw std::runtime_error("trace: not a JSON object");

  Trace t;
  const json::Value& other = doc["otherData"];
  t.sockets = static_cast<std::int32_t>(other.number_or("sockets", 0));
  t.cores_per_socket =
      static_cast<std::int32_t>(other.number_or("cores_per_socket", 0));
  t.scheduler = other.string_or("scheduler", "");
  t.workload = other.string_or("workload", "");
  if (t.sockets <= 0 || t.cores_per_socket <= 0) {
    throw std::runtime_error("trace: missing or invalid machine shape");
  }
  const std::int32_t worker_count = t.sockets * t.cores_per_socket;

  const json::Value& events = doc["traceEvents"];
  if (!events.is_array()) throw std::runtime_error("trace: no traceEvents");

  auto check_worker = [&](std::int32_t w) {
    if (w < 0 || w >= worker_count) {
      throw std::runtime_error("trace: worker id out of range: " +
                               std::to_string(w));
    }
  };
  auto check_squad = [&](std::int32_t s) {
    if (s < 0 || s >= t.sockets) {
      throw std::runtime_error("trace: squad id out of range: " +
                               std::to_string(s));
    }
  };

  std::vector<WorkerTimeline> workers(
      static_cast<std::size_t>(worker_count));
  std::vector<bool> seen(static_cast<std::size_t>(worker_count), false);

  for (const json::Value& ev : events.as_array()) {
    const std::string ph = ev.string_or("ph", "");
    const std::string name = ev.string_or("name", "");
    const auto tid = static_cast<std::int32_t>(ev.number_or("tid", -1));
    const auto pid = static_cast<std::int32_t>(ev.number_or("pid", -1));
    if (ph == "M") {
      if (name != "cab_worker") continue;  // display-only metadata
      check_worker(tid);
      check_squad(pid);
      WorkerTimeline& w = workers[static_cast<std::size_t>(tid)];
      w.worker = tid;
      w.squad = pid;
      w.is_head = ev["args"].number_or("head", 0) != 0;
      w.dropped =
          static_cast<std::uint64_t>(ev["args"].number_or("dropped", 0));
      seen[static_cast<std::size_t>(tid)] = true;
      continue;
    }
    if (name.rfind("metric:", 0) == 0) continue;  // merged registry tracks
    if (name.rfind("attrib:", 0) == 0) continue;  // derived counter tracks
    EventKind kind;
    if (!kind_from_name(name, kind)) {
      throw std::runtime_error("trace: unknown event name: " + name);
    }
    check_worker(tid);
    check_squad(pid);
    TraceEvent e;
    e.kind = kind;
    e.t0 = us_to_ns(ev.number_or("ts", -1));
    e.t1 = is_span(kind) ? e.t0 + us_to_ns(ev.number_or("dur", 0)) : e.t0;
    const json::Value& args = ev["args"];
    switch (kind) {
      case EventKind::kTaskExec:
        e.a = static_cast<std::int32_t>(args.number_or("level", -1));
        e.b = static_cast<std::int32_t>(args.number_or("inter", 0));
        break;
      case EventKind::kStealIntra:
        e.a = static_cast<std::int32_t>(args.number_or("victim", -1));
        e.b = static_cast<std::int32_t>(args.number_or("ok", 0));
        break;
      case EventKind::kStealInter:
        e.a = static_cast<std::int32_t>(args.number_or("victim_squad", -1));
        e.b = static_cast<std::int32_t>(args.number_or("ok", 0));
        break;
      case EventKind::kInterAcquire:
        e.a = static_cast<std::int32_t>(args.number_or("squad", -1));
        e.b = static_cast<std::int32_t>(args.number_or("ok", 0));
        break;
      case EventKind::kSpawnIntra:
      case EventKind::kSpawnInter:
        e.a = static_cast<std::int32_t>(args.number_or("level", -1));
        e.b = 0;
        break;
      case EventKind::kActiveInter:
        e.a = pid;  // the squad whose counter this samples
        e.b = static_cast<std::int32_t>(args.number_or("value", 0));
        check_squad(e.a);
        break;
      case EventKind::kSyncWait:
        e.a = static_cast<std::int32_t>(args.number_or("help_iters", 0));
        e.b = static_cast<std::int32_t>(args.number_or("tasks", 0));
        break;
      case EventKind::kIdle:
        e.a = static_cast<std::int32_t>(args.number_or("fails", 0));
        e.b = 0;
        break;
      case EventKind::kTaskNode:
        e.a = static_cast<std::int32_t>(args.number_or("node", -1));
        e.b = 0;
        break;
    }
    workers[static_cast<std::size_t>(tid)].events.push_back(e);
    if (!seen[static_cast<std::size_t>(tid)]) {
      // Event before (or without) its cab_worker metadata: identify the
      // worker from the event itself.
      WorkerTimeline& w = workers[static_cast<std::size_t>(tid)];
      w.worker = tid;
      if (kind != EventKind::kActiveInter) w.squad = pid;
      seen[static_cast<std::size_t>(tid)] = true;
    }
  }

  for (std::int32_t w = 0; w < worker_count; ++w) {
    if (seen[static_cast<std::size_t>(w)]) {
      t.workers.push_back(std::move(workers[static_cast<std::size_t>(w)]));
    }
  }
  return t;
}

Trace parse_chrome_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_chrome_trace(ss.str());
}

}  // namespace cab::obs
