#include "obs/metrics/registry.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "obs/json.hpp"
#include "util/assert.hpp"

namespace cab::obs::metrics {

const char* to_string(Kind k) {
  switch (k) {
    case Kind::kCounter: return "counter";
    case Kind::kGauge: return "gauge";
    case Kind::kHistogram: return "histogram";
  }
  return "?";
}

bool kind_from_string(const std::string& s, Kind& out) {
  for (Kind k : {Kind::kCounter, Kind::kGauge, Kind::kHistogram}) {
    if (s == to_string(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

std::int64_t Counter::total() const {
  std::int64_t t = 0;
  for (const Slot& s : slots_) t += s.load();
  return t;
}

std::int64_t Gauge::total() const {
  std::int64_t t = 0;
  for (const Slot& s : slots_) t += s.load();
  return t;
}

Histogram::Histogram(int writers, std::vector<std::int64_t> bounds)
    : bounds_(std::move(bounds)), writers_(writers) {
  CAB_CHECK(!bounds_.empty(), "histogram needs at least one bucket bound");
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    CAB_CHECK(bounds_[i] > bounds_[i - 1],
              "histogram bounds must be strictly increasing");
  }
  // Row: buckets (bounds + overflow) + count + sum, padded to a whole
  // number of cache lines so writers never false-share.
  const std::size_t used = bounds_.size() + 3;
  const std::size_t per_line =
      util::kCacheLineSize >= sizeof(Slot)
          ? util::kCacheLineSize / sizeof(Slot)
          : 1;
  stride_ = (used + per_line - 1) / per_line * per_line;
  cells_ = std::vector<Slot>(static_cast<std::size_t>(writers_) * stride_);
}

std::size_t Histogram::bucket_index(std::int64_t v) const {
  // First bound >= v; strictly increasing bounds => lower_bound.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  return static_cast<std::size_t>(it - bounds_.begin());
}

std::int64_t Histogram::bucket_total(std::size_t b) const {
  std::int64_t t = 0;
  for (int w = 0; w < writers_; ++w) t += row_ptr(w)[b].load();
  return t;
}

std::int64_t Histogram::count() const {
  std::int64_t t = 0;
  for (int w = 0; w < writers_; ++w)
    t += row_ptr(w)[bounds_.size() + 1].load();
  return t;
}

std::int64_t Histogram::sum() const {
  std::int64_t t = 0;
  for (int w = 0; w < writers_; ++w)
    t += row_ptr(w)[bounds_.size() + 2].load();
  return t;
}

Registry::Registry(int writers) : writers_(writers) {
  CAB_CHECK(writers >= 1, "registry needs at least one writer slot");
}

void Registry::set_writer_squads(std::vector<std::int32_t> squads) {
  std::lock_guard<std::mutex> lk(mu_);
  CAB_CHECK(static_cast<int>(squads.size()) == writers_,
            "writer_squad size must equal writer count");
  writer_squad_ = std::move(squads);
}

void Registry::set_hw_status(bool available, std::string reason) {
  std::lock_guard<std::mutex> lk(mu_);
  hw_available_ = available;
  hw_reason_ = std::move(reason);
}

Registry::Entry* Registry::find_entry(const std::string& name,
                                      const Labels& labels) {
  for (auto& e : entries_) {
    if (e->name == name && e->labels == labels) return e.get();
  }
  return nullptr;
}

Counter& Registry::counter(const std::string& name, const Labels& labels) {
  std::lock_guard<std::mutex> lk(mu_);
  if (Entry* e = find_entry(name, labels)) {
    CAB_CHECK(e->kind == Kind::kCounter,
              "metric re-registered under a different kind");
    return *e->counter;
  }
  auto e = std::make_unique<Entry>();
  e->name = name;
  e->labels = labels;
  e->kind = Kind::kCounter;
  e->counter.reset(new Counter(writers_));
  Counter& ref = *e->counter;
  entries_.push_back(std::move(e));
  return ref;
}

Gauge& Registry::gauge(const std::string& name, const Labels& labels) {
  std::lock_guard<std::mutex> lk(mu_);
  if (Entry* e = find_entry(name, labels)) {
    CAB_CHECK(e->kind == Kind::kGauge,
              "metric re-registered under a different kind");
    return *e->gauge;
  }
  auto e = std::make_unique<Entry>();
  e->name = name;
  e->labels = labels;
  e->kind = Kind::kGauge;
  e->gauge.reset(new Gauge(writers_));
  Gauge& ref = *e->gauge;
  entries_.push_back(std::move(e));
  return ref;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<std::int64_t> bounds,
                               const Labels& labels) {
  std::lock_guard<std::mutex> lk(mu_);
  if (Entry* e = find_entry(name, labels)) {
    CAB_CHECK(e->kind == Kind::kHistogram,
              "metric re-registered under a different kind");
    CAB_CHECK(e->histogram->bounds() == bounds,
              "histogram re-registered under different bounds");
    return *e->histogram;
  }
  auto e = std::make_unique<Entry>();
  e->name = name;
  e->labels = labels;
  e->kind = Kind::kHistogram;
  e->histogram.reset(new Histogram(writers_, std::move(bounds)));
  Histogram& ref = *e->histogram;
  entries_.push_back(std::move(e));
  return ref;
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  Snapshot s;
  s.writers = writers_;
  s.writer_squad = writer_squad_;
  s.hw_available = hw_available_;
  s.hw_reason = hw_reason_;
  s.metrics.reserve(entries_.size());
  for (const auto& e : entries_) {
    MetricSnapshot m;
    m.name = e->name;
    m.kind = e->kind;
    m.labels = e->labels;
    switch (e->kind) {
      case Kind::kCounter:
      case Kind::kGauge: {
        m.per_writer.reserve(static_cast<std::size_t>(writers_));
        for (int w = 0; w < writers_; ++w) {
          const std::int64_t v = e->kind == Kind::kCounter
                                     ? e->counter->value(w)
                                     : e->gauge->value(w);
          m.per_writer.push_back(v);
          m.total += v;
        }
        break;
      }
      case Kind::kHistogram: {
        const Histogram& h = *e->histogram;
        m.bounds = h.bounds();
        m.buckets.reserve(m.bounds.size() + 1);
        for (std::size_t b = 0; b <= m.bounds.size(); ++b) {
          m.buckets.push_back(h.bucket_total(b));
        }
        m.count = h.count();
        m.sum = h.sum();
        m.total = m.count;
        break;
      }
    }
    s.metrics.push_back(std::move(m));
  }
  return s;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& e : entries_) {
    switch (e->kind) {
      case Kind::kCounter:
        for (Slot& s : e->counter->slots_) s.store(0);
        break;
      case Kind::kGauge:
        for (Slot& s : e->gauge->slots_) s.store(0);
        break;
      case Kind::kHistogram:
        for (Slot& s : e->histogram->cells_) s.store(0);
        break;
    }
  }
}

const MetricSnapshot* Snapshot::find(const std::string& name,
                                     const Labels& labels) const {
  for (const MetricSnapshot& m : metrics) {
    if (m.name == name && m.labels == labels) return &m;
  }
  return nullptr;
}

std::vector<std::int64_t> Snapshot::squad_totals(
    const MetricSnapshot& m) const {
  std::vector<std::int64_t> out;
  if (writer_squad.empty() || m.per_writer.size() != writer_squad.size()) {
    return out;
  }
  std::int32_t squads = 0;
  for (std::int32_t s : writer_squad) squads = std::max(squads, s + 1);
  out.assign(static_cast<std::size_t>(squads), 0);
  for (std::size_t w = 0; w < m.per_writer.size(); ++w) {
    out[static_cast<std::size_t>(writer_squad[w])] += m.per_writer[w];
  }
  return out;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
}

void append_i64_array(std::string& out, const std::vector<std::int64_t>& v) {
  out += '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) out += ',';
    out += std::to_string(v[i]);
  }
  out += ']';
}

std::vector<std::int64_t> i64_array(const json::Value& v) {
  std::vector<std::int64_t> out;
  if (!v.is_array()) return out;
  out.reserve(v.as_array().size());
  for (const json::Value& x : v.as_array()) {
    out.push_back(static_cast<std::int64_t>(x.as_number()));
  }
  return out;
}

}  // namespace

std::string Snapshot::to_json() const {
  std::string j;
  j.reserve(256 + metrics.size() * 160);
  j += "{\"schema\":\"";
  j += kSchema;
  j += "\",\"writers\":" + std::to_string(writers);
  j += ",\"writer_squad\":";
  std::vector<std::int64_t> squads(writer_squad.begin(), writer_squad.end());
  append_i64_array(j, squads);
  j += ",\"hw\":{\"available\":";
  j += hw_available ? "true" : "false";
  j += ",\"reason\":";
  append_escaped(j, hw_reason);
  j += "},\"metrics\":[";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    const MetricSnapshot& m = metrics[i];
    if (i) j += ',';
    j += "\n{\"name\":";
    append_escaped(j, m.name);
    j += ",\"kind\":\"";
    j += to_string(m.kind);
    j += "\",\"labels\":{";
    bool first = true;
    for (const auto& [k, v] : m.labels) {
      if (!first) j += ',';
      first = false;
      append_escaped(j, k);
      j += ':';
      append_escaped(j, v);
    }
    j += "},\"total\":" + std::to_string(m.total);
    if (m.kind == Kind::kHistogram) {
      j += ",\"bounds\":";
      append_i64_array(j, m.bounds);
      j += ",\"buckets\":";
      append_i64_array(j, m.buckets);
      j += ",\"count\":" + std::to_string(m.count);
      j += ",\"sum\":" + std::to_string(m.sum);
    } else {
      j += ",\"per_writer\":";
      append_i64_array(j, m.per_writer);
    }
    j += '}';
  }
  j += "]}";
  return j;
}

Snapshot Snapshot::from_json(const std::string& text) {
  const json::Value doc = json::parse(text);
  if (!doc.is_object()) {
    throw std::runtime_error("metrics snapshot: not a JSON object");
  }
  if (doc.string_or("schema", "") != kSchema) {
    throw std::runtime_error("metrics snapshot: unknown schema: " +
                             doc.string_or("schema", "(missing)"));
  }
  Snapshot s;
  s.writers = static_cast<int>(doc.number_or("writers", 0));
  for (std::int64_t v : i64_array(doc["writer_squad"])) {
    s.writer_squad.push_back(static_cast<std::int32_t>(v));
  }
  const json::Value& hw = doc["hw"];
  s.hw_available = hw["available"].type() == json::Value::Type::kBool &&
                   hw["available"].as_bool();
  s.hw_reason = hw.string_or("reason", "");
  const json::Value& ms = doc["metrics"];
  if (!ms.is_array()) {
    throw std::runtime_error("metrics snapshot: no metrics array");
  }
  for (const json::Value& mv : ms.as_array()) {
    MetricSnapshot m;
    m.name = mv.string_or("name", "");
    if (!kind_from_string(mv.string_or("kind", ""), m.kind)) {
      throw std::runtime_error("metrics snapshot: unknown kind for " +
                               m.name);
    }
    const json::Value& labels = mv["labels"];
    if (labels.is_object()) {
      for (const auto& [k, v] : labels.as_object()) {
        if (v.is_string()) m.labels[k] = v.as_string();
      }
    }
    m.total = static_cast<std::int64_t>(mv.number_or("total", 0));
    if (m.kind == Kind::kHistogram) {
      m.bounds = i64_array(mv["bounds"]);
      m.buckets = i64_array(mv["buckets"]);
      m.count = static_cast<std::int64_t>(mv.number_or("count", 0));
      m.sum = static_cast<std::int64_t>(mv.number_or("sum", 0));
    } else {
      m.per_writer = i64_array(mv["per_writer"]);
    }
    s.metrics.push_back(std::move(m));
  }
  return s;
}

}  // namespace cab::obs::metrics
