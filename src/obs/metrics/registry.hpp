#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/cache_line.hpp"

namespace cab::obs::metrics {

/// Label set attached to a metric at registration (squad, tier, ...).
/// The *worker* dimension is not a label: every metric holds one padded
/// slot per writer (worker), and per-worker values survive into the
/// snapshot, so worker/squad breakdowns come for free.
using Labels = std::map<std::string, std::string>;

enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

const char* to_string(Kind k);
bool kind_from_string(const std::string& s, Kind& out);

/// One single-writer cell, padded so adjacent writers never share a cache
/// line. Writers update with plain load/store (no RMW): only the owning
/// worker thread writes, any thread may read a snapshot concurrently.
struct alignas(util::kCacheLineSize) Slot {
  std::atomic<std::int64_t> v{0};

  std::int64_t load() const { return v.load(std::memory_order_relaxed); }
  void add(std::int64_t d) {
    v.store(v.load(std::memory_order_relaxed) + d,
            std::memory_order_relaxed);
  }
  void store(std::int64_t x) { v.store(x, std::memory_order_relaxed); }
};

class Registry;

/// Monotonic counter: one slot per writer.
class Counter {
 public:
  /// Single-writer increment: only writer `w`'s owning thread may call.
  void add(int w, std::int64_t delta = 1) {
    slots_[static_cast<std::size_t>(w)].add(delta);
  }
  /// Sync-point overwrite — for flushing an externally accumulated
  /// cumulative value (e.g. WorkerStats) while writers are quiescent.
  void store(int w, std::int64_t value) {
    slots_[static_cast<std::size_t>(w)].store(value);
  }
  std::int64_t value(int w) const {
    return slots_[static_cast<std::size_t>(w)].load();
  }
  std::int64_t total() const;

 private:
  friend class Registry;
  explicit Counter(int writers) : slots_(static_cast<std::size_t>(writers)) {}
  std::vector<Slot> slots_;
};

/// Last-value gauge: one slot per writer; total() sums (which is the
/// aggregation the HW counter source wants: per-squad = sum of workers).
class Gauge {
 public:
  void set(int w, std::int64_t value) {
    slots_[static_cast<std::size_t>(w)].store(value);
  }
  std::int64_t value(int w) const {
    return slots_[static_cast<std::size_t>(w)].load();
  }
  std::int64_t total() const;

 private:
  friend class Registry;
  explicit Gauge(int writers) : slots_(static_cast<std::size_t>(writers)) {}
  std::vector<Slot> slots_;
};

/// Fixed-bucket histogram. Bucket i counts observations v with
/// bounds[i-1] < v <= bounds[i]; one overflow bucket counts v > last
/// bound. Per writer the bucket row also tracks count and sum, and the
/// row is padded out to a cache-line multiple so writers never share.
class Histogram {
 public:
  void observe(int w, std::int64_t v) {
    Slot* row = row_ptr(w);
    row[bucket_index(v)].add(1);
    row[bounds_.size() + 1].add(1);  // count
    row[bounds_.size() + 2].add(v);  // sum
  }
  const std::vector<std::int64_t>& bounds() const { return bounds_; }
  /// Index of the bucket `v` falls into (== bounds().size() => overflow).
  std::size_t bucket_index(std::int64_t v) const;
  std::int64_t bucket_total(std::size_t b) const;
  std::int64_t count() const;
  std::int64_t sum() const;

 private:
  friend class Registry;
  Histogram(int writers, std::vector<std::int64_t> bounds);
  Slot* row_ptr(int w) {
    return cells_.data() + static_cast<std::size_t>(w) * stride_;
  }
  const Slot* row_ptr(int w) const {
    return cells_.data() + static_cast<std::size_t>(w) * stride_;
  }

  std::vector<std::int64_t> bounds_;  ///< strictly increasing
  std::size_t stride_ = 0;            ///< slots per writer row
  int writers_ = 0;
  std::vector<Slot> cells_;
};

/// Point-in-time copy of one metric, name + labels + values.
struct MetricSnapshot {
  std::string name;
  Kind kind = Kind::kCounter;
  Labels labels;
  std::vector<std::int64_t> per_writer;  ///< counters and gauges
  std::int64_t total = 0;
  /// Histograms only: aggregated buckets (size bounds.size() + 1).
  std::vector<std::int64_t> bounds;
  std::vector<std::int64_t> buckets;
  std::int64_t count = 0;
  std::int64_t sum = 0;
};

/// A full registry snapshot: every metric, plus the writer -> squad map
/// needed to aggregate per-worker values per socket. Serializes to a
/// schema-versioned JSON object and parses back exactly (all values are
/// integers well below 2^53, so the double-backed JSON model is lossless).
struct Snapshot {
  static constexpr const char* kSchema = "cab-metrics-v1";

  int writers = 0;
  std::vector<std::int32_t> writer_squad;  ///< empty when unknown
  bool hw_available = false;
  std::string hw_reason;  ///< why HW counters are unavailable ("" if available)
  std::vector<MetricSnapshot> metrics;

  const MetricSnapshot* find(const std::string& name,
                             const Labels& labels = {}) const;
  /// Per-squad sums of a counter/gauge snapshot (needs writer_squad).
  std::vector<std::int64_t> squad_totals(const MetricSnapshot& m) const;

  std::string to_json() const;
  static Snapshot from_json(const std::string& text);
};

/// The metrics registry: named metrics with padded per-writer slots.
/// Registration (and snapshotting) takes a mutex; the write paths touch
/// only the returned metric's own slots and never synchronize. Metrics
/// live as long as the registry; returned references are stable.
class Registry {
 public:
  explicit Registry(int writers);

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  int writers() const { return writers_; }

  /// Worker -> squad mapping used by Snapshot::squad_totals.
  void set_writer_squads(std::vector<std::int32_t> squads);
  /// Recorded verdict of the HW counter source (Snapshot carries it).
  void set_hw_status(bool available, std::string reason);

  /// Registration is idempotent: the same (name, labels) returns the same
  /// metric. Registering a name+labels that exists under a different kind
  /// (or a histogram under different bounds) aborts via CAB_CHECK.
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  Histogram& histogram(const std::string& name,
                       std::vector<std::int64_t> bounds,
                       const Labels& labels = {});

  /// Point-in-time copy. Safe to call while writers are active (relaxed
  /// reads of single-writer slots — each value is internally consistent,
  /// the set is approximate, exact once writers are quiescent).
  Snapshot snapshot() const;

  /// Zeroes every slot. Callers must ensure writers are quiescent.
  void reset();

 private:
  struct Entry {
    std::string name;
    Labels labels;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Entry* find_entry(const std::string& name, const Labels& labels);

  int writers_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;
  std::vector<std::int32_t> writer_squad_;
  bool hw_available_ = false;
  std::string hw_reason_ = "hardware counter source not attached";
};

}  // namespace cab::obs::metrics
