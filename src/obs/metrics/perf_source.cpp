#include "obs/metrics/perf_source.hpp"

#include <cstdlib>
#include <cstring>

namespace cab::obs::metrics {

const char* to_string(HwCounter c) {
  switch (c) {
    case HwCounter::kCycles: return "cycles";
    case HwCounter::kInstructions: return "instructions";
    case HwCounter::kCacheReferences: return "cache_references";
    case HwCounter::kLlcLoads: return "llc_loads";
    case HwCounter::kLlcLoadMisses: return "llc_load_misses";
  }
  return "?";
}

namespace {

/// CAB_PERF=off|0 force-disables the source — the supported way to test
/// (and CI-pin) the fallback path on hosts where perf would work.
bool env_disabled() {
  const char* v = std::getenv("CAB_PERF");
  return v != nullptr &&
         (std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0);
}

}  // namespace

}  // namespace cab::obs::metrics

#if defined(CAB_HAVE_PERF)

#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <mutex>

namespace cab::obs::metrics {

namespace {

long sys_perf_event_open(perf_event_attr* attr, pid_t pid, int cpu,
                         int group_fd, unsigned long flags) {
  return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags);
}

perf_event_attr make_attr(HwCounter c) {
  perf_event_attr a;
  std::memset(&a, 0, sizeof a);
  a.size = sizeof a;
  a.disabled = c == HwCounter::kCycles ? 1 : 0;  // leader gates the group
  a.exclude_kernel = 1;
  a.exclude_hv = 1;
  a.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                  PERF_FORMAT_TOTAL_TIME_RUNNING;
  switch (c) {
    case HwCounter::kCycles:
      a.type = PERF_TYPE_HARDWARE;
      a.config = PERF_COUNT_HW_CPU_CYCLES;
      break;
    case HwCounter::kInstructions:
      a.type = PERF_TYPE_HARDWARE;
      a.config = PERF_COUNT_HW_INSTRUCTIONS;
      break;
    case HwCounter::kCacheReferences:
      a.type = PERF_TYPE_HARDWARE;
      a.config = PERF_COUNT_HW_CACHE_REFERENCES;
      break;
    case HwCounter::kLlcLoads:
      a.type = PERF_TYPE_HW_CACHE;
      a.config = PERF_COUNT_HW_CACHE_LL |
                 (PERF_COUNT_HW_CACHE_OP_READ << 8) |
                 (PERF_COUNT_HW_CACHE_RESULT_ACCESS << 16);
      break;
    case HwCounter::kLlcLoadMisses:
      a.type = PERF_TYPE_HW_CACHE;
      a.config = PERF_COUNT_HW_CACHE_LL |
                 (PERF_COUNT_HW_CACHE_OP_READ << 8) |
                 (PERF_COUNT_HW_CACHE_RESULT_MISS << 16);
      break;
  }
  return a;
}

/// One-time probe: can this process open a plain cycles counter? Cached
/// because the answer cannot change within a process (short of privilege
/// changes); the CAB_PERF override is checked separately on every call.
struct Probe {
  bool ok = false;
  std::string reason;
};

const Probe& probe() {
  static Probe p = [] {
    Probe out;
    perf_event_attr a = make_attr(HwCounter::kCycles);
    a.read_format = 0;  // standalone probe, no group
    const long fd = sys_perf_event_open(&a, 0, -1, -1, 0);
    if (fd >= 0) {
      ::close(static_cast<int>(fd));
      out.ok = true;
      return out;
    }
    const int err = errno;
    out.reason = std::string("perf_event_open failed: ") + std::strerror(err);
    if (err == EACCES || err == EPERM) {
      out.reason +=
          " (check /proc/sys/kernel/perf_event_paranoid; <= 2 is needed "
          "for user-space counting)";
    }
    return out;
  }();
  return p;
}

}  // namespace

bool perf_supported() { return true; }

bool perf_available() { return !env_disabled() && probe().ok; }

std::string perf_unavailable_reason() {
  if (env_disabled()) return "disabled via CAB_PERF environment variable";
  return probe().ok ? std::string() : probe().reason;
}

PerfGroup::~PerfGroup() { close(); }

bool PerfGroup::open() {
  if (open_) return true;
  if (!perf_available()) return false;
  for (int i = 0; i < kHwCounterCount; ++i) {
    const auto c = static_cast<HwCounter>(i);
    perf_event_attr a = make_attr(c);
    const int group = c == HwCounter::kCycles
                          ? -1
                          : fd_[static_cast<std::size_t>(HwCounter::kCycles)];
    const long fd = sys_perf_event_open(&a, 0, -1, group, 0);
    if (fd < 0) {
      if (c == HwCounter::kCycles) return false;  // no leader, no group
      continue;  // e.g. LLC events unsupported on this PMU: count without
    }
    fd_[static_cast<std::size_t>(i)] = static_cast<int>(fd);
  }
  open_ = true;
  return true;
}

void PerfGroup::enable() {
  // No RESET: counts accumulate across enable/disable windows, mirroring
  // the cumulative WorkerStats the registry flushes.
  if (!open_) return;
  const int leader = fd_[static_cast<std::size_t>(HwCounter::kCycles)];
  ioctl(leader, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
}

void PerfGroup::disable() {
  if (!open_) return;
  const int leader = fd_[static_cast<std::size_t>(HwCounter::kCycles)];
  ioctl(leader, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
}

HwSample PerfGroup::read() const {
  HwSample s;
  if (!open_) return s;
  const int leader = fd_[static_cast<std::size_t>(HwCounter::kCycles)];
  // Layout (PERF_FORMAT_GROUP + both times): nr, time_enabled,
  // time_running, value[nr] — values in group-creation order, which is
  // the order of the opened subset of HwCounter.
  std::uint64_t buf[3 + kHwCounterCount];
  const ssize_t n = ::read(leader, buf, sizeof buf);
  if (n < static_cast<ssize_t>(3 * sizeof(std::uint64_t))) return s;
  const std::uint64_t nr = buf[0];
  const std::uint64_t enabled = buf[1];
  const std::uint64_t running = buf[2];
  const double scale =
      running > 0 ? static_cast<double>(enabled) / static_cast<double>(running)
                  : 0.0;
  std::uint64_t slot = 0;
  for (int i = 0; i < kHwCounterCount && slot < nr; ++i) {
    if (fd_[static_cast<std::size_t>(i)] < 0) continue;
    const std::uint64_t raw = buf[3 + slot++];
    s.value[static_cast<std::size_t>(i)] =
        running > 0 && running != enabled
            ? static_cast<std::uint64_t>(static_cast<double>(raw) * scale)
            : raw;
    s.opened |= 1u << static_cast<unsigned>(i);
  }
  s.valid = true;
  return s;
}

void PerfGroup::close() {
  // Members first, leader last (the kernel frees member events with the
  // group, but explicit close keeps fd accounting exact).
  for (int i = kHwCounterCount - 1; i >= 0; --i) {
    int& fd = fd_[static_cast<std::size_t>(i)];
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
  open_ = false;
}

}  // namespace cab::obs::metrics

#else  // !CAB_HAVE_PERF — stub: everything reports unavailable.

namespace cab::obs::metrics {

bool perf_supported() { return false; }

bool perf_available() { return false; }

std::string perf_unavailable_reason() {
  if (env_disabled()) return "disabled via CAB_PERF environment variable";
  return "built without perf support (<linux/perf_event.h> not found)";
}

PerfGroup::~PerfGroup() = default;
bool PerfGroup::open() { return false; }
void PerfGroup::enable() {}
void PerfGroup::disable() {}
HwSample PerfGroup::read() const { return HwSample{}; }
void PerfGroup::close() {}

}  // namespace cab::obs::metrics

#endif  // CAB_HAVE_PERF
