#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace cab::obs::metrics {

/// The fixed hardware counter set read per worker: enough to compute IPC
/// and the shared-cache (LLC) miss picture of the paper's Table IV on a
/// real machine. LLC-loads/LLC-load-misses are the load-side last-level
/// events (perf's LLC-loads / LLC-load-misses); cache-references is the
/// all-level reference count used as the denominator for miss ratios.
enum class HwCounter : int {
  kCycles = 0,
  kInstructions,
  kCacheReferences,
  kLlcLoads,
  kLlcLoadMisses,
};

inline constexpr int kHwCounterCount = 5;

const char* to_string(HwCounter c);

/// One read of a counter group. Values are scaled for kernel multiplexing
/// (value * time_enabled / time_running) so they stay comparable when the
/// PMU is oversubscribed. A counter the host could not open reads as 0
/// with its bit cleared in `opened`.
struct HwSample {
  std::array<std::uint64_t, kHwCounterCount> value{};
  std::uint32_t opened = 0;  ///< bit i set => counter i was opened
  bool valid = false;        ///< leader opened and the read succeeded

  std::uint64_t operator[](HwCounter c) const {
    return value[static_cast<std::size_t>(c)];
  }
  bool has(HwCounter c) const {
    return (opened >> static_cast<unsigned>(c)) & 1u;
  }
};

/// Compile-time support: true when the build saw <linux/perf_event.h>
/// (CMake defines CAB_HAVE_PERF). When false every PerfGroup::open fails
/// with a "built without perf support" reason.
bool perf_supported();

/// Runtime availability: perf_supported(), not force-disabled via the
/// CAB_PERF=off environment variable, and a probe perf_event_open of a
/// cycles counter succeeded (the syscall is often blocked in containers
/// or restricted by kernel.perf_event_paranoid). The probe result is
/// cached; the environment variable is re-read on every call so tests
/// can toggle it.
bool perf_available();

/// Human-readable reason why perf_available() is false ("" when true).
/// Mentions perf_event_paranoid when the probe failed with EACCES.
std::string perf_unavailable_reason();

/// A per-thread group of the kHwCounterCount events above, led by the
/// cycles counter so one read() returns a consistent set. Counters
/// measure the *opening thread* only (pid = 0, cpu = -1): each worker
/// owns one group, and per-squad / per-machine totals are sums over
/// workers. Open/enable/disable/read are all no-ops returning failure
/// when perf is unavailable — callers need no platform branches.
class PerfGroup {
 public:
  PerfGroup() = default;
  ~PerfGroup();

  PerfGroup(const PerfGroup&) = delete;
  PerfGroup& operator=(const PerfGroup&) = delete;

  /// Opens the group for the calling thread, counters created disabled.
  /// Partial success is success: any subset containing the cycles leader
  /// works (unsupported LLC events just stay closed). Returns false and
  /// leaves the group closed when the leader cannot be opened.
  bool open();
  bool is_open() const { return open_; }

  void enable();
  void disable();
  /// Reads the group (scaled for multiplexing). Invalid when closed.
  HwSample read() const;
  void close();

 private:
  std::array<int, kHwCounterCount> fd_{{-1, -1, -1, -1, -1}};
  bool open_ = false;
};

}  // namespace cab::obs::metrics
