#include "adapt/profile.hpp"

#include <cmath>

namespace cab::adapt {

WorkloadProfile profile_epoch(const EpochSample& s,
                              std::uint32_t cache_line_bytes,
                              std::uint64_t min_tasks) {
  WorkloadProfile p;
  p.tasks = s.tasks;
  p.spawns = s.spawns;
  p.depth = s.max_level;

  if (s.spawning_tasks > 0) {
    p.effective_branching = static_cast<double>(s.spawns) /
                            static_cast<double>(s.spawning_tasks);
    const auto rounded =
        static_cast<std::int32_t>(std::llround(p.effective_branching));
    p.branching = rounded < 2 ? 2 : (rounded > 64 ? 64 : rounded);
  }

  if (s.hw_valid && s.llc_misses > 0) {
    // Compulsory LLC line traffic approximates the epoch footprint: every
    // byte of the working set crosses the LLC boundary at least once.
    p.working_set_bytes =
        s.llc_misses * static_cast<std::uint64_t>(cache_line_bytes);
    p.working_set_from_hw = true;
  } else {
    p.working_set_bytes = s.working_set_hint;
  }

  if (s.hw_valid && s.llc_loads > 0) {
    p.llc_miss_rate = static_cast<double>(s.llc_misses) /
                      static_cast<double>(s.llc_loads);
    if (s.llc_loads_inter > 0) {
      p.llc_miss_rate_inter = static_cast<double>(s.llc_misses_inter) /
                              static_cast<double>(s.llc_loads_inter);
    }
    const std::uint64_t intra_loads =
        s.llc_loads > s.llc_loads_inter ? s.llc_loads - s.llc_loads_inter : 0;
    const std::uint64_t intra_misses =
        s.llc_misses > s.llc_misses_inter ? s.llc_misses - s.llc_misses_inter
                                          : 0;
    if (intra_loads > 0) {
      p.llc_miss_rate_intra = static_cast<double>(intra_misses) /
                              static_cast<double>(intra_loads);
    }
  }

  if (s.coh_valid && s.cache_accesses > 0) {
    p.coherence_miss_rate = static_cast<double>(s.coherence_misses) /
                            static_cast<double>(s.cache_accesses);
    const std::uint64_t classified =
        s.true_sharing_invalidations + s.false_sharing_invalidations;
    if (classified > 0) {
      p.false_sharing_fraction =
          static_cast<double>(s.false_sharing_invalidations) /
          static_cast<double>(classified);
    }
  }

  p.sufficient = s.signal_ok && s.wall_ns > 0 && s.tasks >= min_tasks &&
                 s.spawning_tasks > 0 && s.max_level >= 1;
  return p;
}

}  // namespace cab::adapt
