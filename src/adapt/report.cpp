#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "adapt/controller.hpp"
#include "obs/json.hpp"

namespace cab::adapt {
namespace {

// Same convention as the bench JSON writers: integral values print as
// integers, everything else as %.9g. Deterministic formatting is what
// makes to_json(from_json(x)) == x hold at the byte level.
void append_number(std::string& out, double v) {
  char buf[64];
  if (std::isfinite(v) && v == std::floor(v) &&
      std::fabs(v) < 9007199254740992.0) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.9g", v);
  }
  out += buf;
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_field(std::string& out, const char* key, double v,
                  bool comma = true) {
  out += '"';
  out += key;
  out += "\":";
  append_number(out, v);
  if (comma) out += ',';
}

void append_bool(std::string& out, const char* key, bool v,
                 bool comma = true) {
  out += '"';
  out += key;
  out += "\":";
  out += v ? "true" : "false";
  if (comma) out += ',';
}

double require_number(const obs::json::Value& obj, const char* key) {
  const obs::json::Value& v = obj[key];
  if (!v.is_number()) {
    throw std::runtime_error(std::string("cab-adapt-v1: missing number '") +
                             key + "'");
  }
  return v.as_number();
}

std::uint64_t require_u64(const obs::json::Value& obj, const char* key) {
  return static_cast<std::uint64_t>(require_number(obj, key));
}

std::int32_t require_i32(const obs::json::Value& obj, const char* key) {
  return static_cast<std::int32_t>(require_number(obj, key));
}

}  // namespace

std::string Report::to_json() const {
  std::string out;
  out.reserve(256 + decisions.size() * 512);
  out += "{\"schema\":\"";
  out += kSchema;
  out += "\",\"policy\":";
  append_escaped(out, policy);
  out += ',';
  append_field(out, "sockets", sockets);
  append_field(out, "cores_per_socket", cores_per_socket);
  out += "\"decisions\":[";
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    const Decision& d = decisions[i];
    if (i) out += ',';
    out += '{';
    append_field(out, "epoch", static_cast<double>(d.epoch));
    append_field(out, "prev_bl", d.prev_bl);
    append_field(out, "next_bl", d.next_bl);
    append_field(out, "best_bl", d.best_bl);
    append_field(out, "static_bl", d.static_bl);
    append_field(out, "score", d.score);
    append_field(out, "best_score", d.best_score);
    out += "\"reason\":";
    append_escaped(out, d.reason);
    out += ",\"profile\":{";
    const WorkloadProfile& p = d.profile;
    append_field(out, "effective_branching", p.effective_branching);
    append_field(out, "branching", p.branching);
    append_field(out, "depth", p.depth);
    append_field(out, "tasks", static_cast<double>(p.tasks));
    append_field(out, "spawns", static_cast<double>(p.spawns));
    append_field(out, "working_set_bytes",
                 static_cast<double>(p.working_set_bytes));
    append_bool(out, "working_set_from_hw", p.working_set_from_hw);
    append_field(out, "llc_miss_rate", p.llc_miss_rate);
    append_field(out, "llc_miss_rate_inter", p.llc_miss_rate_inter);
    append_field(out, "llc_miss_rate_intra", p.llc_miss_rate_intra);
    append_field(out, "coherence_miss_rate", p.coherence_miss_rate);
    append_field(out, "false_sharing_fraction", p.false_sharing_fraction);
    append_bool(out, "sufficient", p.sufficient, /*comma=*/false);
    out += "}}";
  }
  out += "]}";
  return out;
}

Report Report::from_json(const std::string& text) {
  const obs::json::Value doc = obs::json::parse(text);
  if (!doc.is_object()) {
    throw std::runtime_error("cab-adapt-v1: document is not an object");
  }
  if (doc.string_or("schema", "") != kSchema) {
    throw std::runtime_error("cab-adapt-v1: wrong or missing schema tag");
  }
  Report r;
  r.policy = doc.string_or("policy", "static");
  r.sockets = require_i32(doc, "sockets");
  r.cores_per_socket = require_i32(doc, "cores_per_socket");
  const obs::json::Value& decisions = doc["decisions"];
  if (!decisions.is_array()) {
    throw std::runtime_error("cab-adapt-v1: 'decisions' is not an array");
  }
  for (const obs::json::Value& v : decisions.as_array()) {
    if (!v.is_object()) {
      throw std::runtime_error("cab-adapt-v1: decision is not an object");
    }
    Decision d;
    d.epoch = require_u64(v, "epoch");
    d.prev_bl = require_i32(v, "prev_bl");
    d.next_bl = require_i32(v, "next_bl");
    d.best_bl = require_i32(v, "best_bl");
    d.static_bl = require_i32(v, "static_bl");
    d.score = require_number(v, "score");
    d.best_score = require_number(v, "best_score");
    d.reason = v.string_or("reason", "");
    const obs::json::Value& prof = v["profile"];
    if (!prof.is_object()) {
      throw std::runtime_error("cab-adapt-v1: decision without profile");
    }
    WorkloadProfile& p = d.profile;
    p.effective_branching = require_number(prof, "effective_branching");
    p.branching = require_i32(prof, "branching");
    p.depth = require_i32(prof, "depth");
    p.tasks = require_u64(prof, "tasks");
    p.spawns = require_u64(prof, "spawns");
    p.working_set_bytes = require_u64(prof, "working_set_bytes");
    p.working_set_from_hw = prof["working_set_from_hw"].as_bool();
    p.llc_miss_rate = require_number(prof, "llc_miss_rate");
    p.llc_miss_rate_inter = require_number(prof, "llc_miss_rate_inter");
    p.llc_miss_rate_intra = require_number(prof, "llc_miss_rate_intra");
    p.coherence_miss_rate = require_number(prof, "coherence_miss_rate");
    p.false_sharing_fraction = require_number(prof, "false_sharing_fraction");
    p.sufficient = prof["sufficient"].as_bool();
    r.decisions.push_back(std::move(d));
  }
  return r;
}

}  // namespace cab::adapt
