#include "adapt/controller.hpp"

#include <cstdlib>

#include "dag/partition.hpp"
#include "util/assert.hpp"

namespace cab::adapt {

bool parse_policy(const std::string& text, Policy& out) {
  Policy p = out;  // keep the caller's tuning knobs; set mode/fixed_bl only
  if (text == "static") {
    p.mode = Mode::kStatic;
  } else if (text == "adaptive") {
    p.mode = Mode::kAdaptive;
  } else if (text.rfind("fixed:", 0) == 0) {
    const std::string num = text.substr(6);
    if (num.empty()) return false;
    char* end = nullptr;
    const long v = std::strtol(num.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || v < 0 || v > 64) return false;
    p.mode = Mode::kFixed;
    p.fixed_bl = static_cast<std::int32_t>(v);
  } else {
    return false;
  }
  out = p;
  return true;
}

std::string to_string(const Policy& p) {
  switch (p.mode) {
    case Mode::kStatic: return "static";
    case Mode::kAdaptive: return "adaptive";
    case Mode::kFixed: return "fixed:" + std::to_string(p.fixed_bl);
  }
  return "static";
}

Controller::Controller(Policy policy, hw::Topology topo)
    : policy_(policy), topo_(topo) {
  report_.policy = to_string(policy_);
  report_.sockets = topo_.sockets();
  report_.cores_per_socket = topo_.cores_per_socket();
}

void Controller::reset() {
  report_.decisions.clear();
  phase_ = Phase::kWarmup;
  dir_ = 1;
  failed_probes_ = 0;
  resume_probe_ = false;
  hold_left_ = 0;
  best_bl_ = 0;
  best_score_ = 0.0;
}

void Controller::enter_hold() {
  phase_ = Phase::kHold;
  hold_left_ = policy_.hold_epochs;
  resume_probe_ = false;
}

std::int32_t Controller::static_bl(const WorkloadProfile& p) const {
  if (topo_.sockets() <= 1) return 0;
  dag::PartitionParams pp;
  pp.branching = p.branching;
  pp.sockets = topo_.sockets();
  pp.input_bytes = p.working_set_bytes;
  const std::uint64_t sc = topo_.shared_cache_bytes();
  pp.shared_cache_bytes = sc >= 1 ? sc : 1;
  const std::int32_t bl = dag::boundary_level(pp);
  const std::int32_t depth = p.depth > 0 ? p.depth : bl;
  return dag::clamp_boundary_level(bl, depth, topo_.cores_per_socket(),
                                   topo_.sockets(), pp.branching);
}

std::int32_t Controller::clamp_candidate(std::int32_t from,
                                         std::int32_t candidate,
                                         const WorkloadProfile& p) const {
  if (from <= 0) return from;  // BL 0 only leaves via the bootstrap jump
  const std::int32_t lo_step = from - policy_.max_step;
  const std::int32_t hi_step = from + policy_.max_step;
  if (candidate < lo_step) candidate = lo_step;
  if (candidate > hi_step) candidate = hi_step;
  if (candidate < 1) candidate = 1;
  // Guard rails: Eq. 1 floor and the third-constraint cap, both computed
  // from the *observed* depth and branching.
  const std::int32_t depth = p.depth > 0 ? p.depth : from;
  const std::int32_t clamped = dag::clamp_boundary_level(
      candidate, depth, topo_.cores_per_socket(), topo_.sockets(),
      p.branching);
  // Rails narrow the climb; they never teleport it. A clamp landing
  // outside the step window means "no legal move": stay put.
  if (clamped < lo_step || clamped > hi_step) return from;
  return clamped;
}

std::int32_t Controller::decide_adaptive(const EpochSample& s, Decision& d) {
  const WorkloadProfile& p = d.profile;
  std::int32_t next = s.bl;

  if (topo_.sockets() <= 1) {
    d.reason = "single-socket-static";
    return 0;
  }
  if (!s.signal_ok) {
    // Metrics pipeline off: no profiling signal — hold the statically
    // configured (Eq. 4) boundary level, never climb blind.
    d.reason = "fallback-static";
    return s.bl;
  }
  if (!p.sufficient) {
    d.reason = "insufficient-signal";
    return s.bl;
  }

  switch (phase_) {
    case Phase::kWarmup: {
      best_bl_ = s.bl;
      best_score_ = d.score;
      phase_ = Phase::kClimb;
      dir_ = 1;
      failed_probes_ = 0;
      if (s.bl == 0) {
        // Seeded on the classic path: bootstrap straight to the profiled
        // Eq. 4 level (the one deliberate exception to max_step).
        next = d.static_bl;
        if (next == 0) {
          enter_hold();
          d.reason = "static-zero";
        } else {
          d.reason = "bootstrap-static";
        }
        return next;
      }
      next = clamp_candidate(s.bl, s.bl + dir_, p);
      if (next == s.bl) {
        dir_ = -dir_;
        next = clamp_candidate(s.bl, s.bl + dir_, p);
      }
      if (next == s.bl) {
        enter_hold();
        d.reason = "converged";
      } else {
        d.reason = "warmup-probe";
      }
      return next;
    }

    case Phase::kClimb: {
      const bool improved =
          d.score < best_score_ * (1.0 - policy_.improve_threshold);
      if (improved) {
        best_bl_ = s.bl;
        best_score_ = d.score;
        failed_probes_ = 0;
        resume_probe_ = false;
        next = clamp_candidate(best_bl_, best_bl_ + dir_, p);
        if (next == best_bl_) {
          dir_ = -dir_;
          next = clamp_candidate(best_bl_, best_bl_ + dir_, p);
        }
        if (next == best_bl_) {
          enter_hold();
          d.reason = "converged";
        } else {
          d.reason = "climb";
        }
        return next;
      }
      if (s.bl != best_bl_) {
        // Probe rejected: step back to the best-known BL (the bounded
        // step never allows jumping past it to the other neighbour) and
        // flag the opposite direction for the next epoch's probe.
        ++failed_probes_;
        dir_ = -dir_;
        const std::int32_t cand =
            clamp_candidate(best_bl_, best_bl_ + dir_, p);
        if (failed_probes_ >= 2 || cand == best_bl_) {
          enter_hold();
          d.reason = "revert-hold";
          return best_bl_;
        }
        resume_probe_ = true;
        d.reason = "revert";
        return best_bl_;
      }
      // Re-measured the best BL without improvement: refresh the score
      // estimate (EMA absorbs run-to-run noise) and probe the other side
      // — unless a revert already flipped dir_, in which case probe it
      // directly and keep the failed-probe count (so the second failed
      // direction still converges the climb).
      best_score_ = 0.5 * (best_score_ + d.score);
      if (!resume_probe_) {
        dir_ = -dir_;
        failed_probes_ = 0;
      }
      resume_probe_ = false;
      const std::int32_t cand = clamp_candidate(best_bl_, best_bl_ + dir_, p);
      if (cand == best_bl_) {
        enter_hold();
        d.reason = "converged";
        return best_bl_;
      }
      d.reason = "probe";
      return cand;
    }

    case Phase::kHold: {
      next = best_bl_;
      if (s.bl == best_bl_ &&
          d.score > best_score_ * (1.0 + policy_.drift_threshold)) {
        // The workload drifted under the held BL: reopen the climb.
        phase_ = Phase::kClimb;
        failed_probes_ = 0;
        best_score_ = d.score;
        const std::int32_t cand =
            clamp_candidate(best_bl_, best_bl_ + dir_, p);
        if (cand == best_bl_) {
          enter_hold();
          d.reason = "hold";
          return best_bl_;
        }
        d.reason = "drift-reprobe";
        return cand;
      }
      if (s.bl == best_bl_) {
        best_score_ = 0.5 * (best_score_ + d.score);
      }
      if (--hold_left_ <= 0) {
        // Periodic single-sided re-probe; a failure re-holds immediately
        // (failed_probes_ starts at 1).
        phase_ = Phase::kClimb;
        failed_probes_ = 1;
        dir_ = -dir_;
        const std::int32_t cand =
            clamp_candidate(best_bl_, best_bl_ + dir_, p);
        if (cand == best_bl_) {
          enter_hold();
          d.reason = "hold";
          return best_bl_;
        }
        d.reason = "periodic-reprobe";
        return cand;
      }
      d.reason = "hold";
      return next;
    }
  }
  return next;
}

std::int32_t Controller::on_epoch_end(const EpochSample& s) {
  CAB_CHECK(s.bl >= 0, "epoch sample carries a negative boundary level");
  Decision d;
  d.epoch = s.epoch;
  d.prev_bl = s.bl;
  d.score = static_cast<double>(s.wall_ns);
  d.profile = profile_epoch(s, topo_.l3().line_bytes, policy_.min_epoch_tasks);
  d.static_bl = static_bl(d.profile);

  std::int32_t next = s.bl;
  switch (policy_.mode) {
    case Mode::kStatic:
      d.reason = "static";
      break;
    case Mode::kFixed:
      next = policy_.fixed_bl >= 0 ? policy_.fixed_bl : 0;
      d.reason = "pinned";
      break;
    case Mode::kAdaptive:
      next = decide_adaptive(s, d);
      break;
  }
  CAB_CHECK(next >= 0, "controller produced a negative boundary level");
  d.next_bl = next;
  d.best_bl = best_bl_;
  d.best_score = best_score_;
  report_.decisions.push_back(std::move(d));
  return next;
}

}  // namespace cab::adapt
