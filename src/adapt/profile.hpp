#pragma once

#include <cstdint>

namespace cab::adapt {

/// Raw per-epoch observations handed to the adaptive controller after a
/// Runtime::run() epoch completes. All counters are *deltas over the
/// epoch* (the runtime keeps cumulative WorkerStats; the adapt layer
/// subtracts the previous epoch's totals). Plain data — the adapt
/// subsystem must not depend on cab::runtime, so the runtime (and the
/// benches, which drive the controller from simulator results) fill this
/// struct themselves.
struct EpochSample {
  /// 1-based run() epoch index this sample describes.
  std::uint64_t epoch = 0;
  /// Boundary level the epoch executed under.
  std::int32_t bl = 0;
  /// Wall time of the epoch — the controller's score (lower is better).
  std::uint64_t wall_ns = 0;

  /// Spawn-tree shape counters (from WorkerStats deltas).
  std::uint64_t tasks = 0;           ///< tasks executed
  std::uint64_t spawns = 0;          ///< children spawned (intra + inter)
  std::uint64_t spawning_tasks = 0;  ///< tasks that spawned >= 1 child
  std::int32_t max_level = 0;        ///< deepest task level observed

  /// Steal traffic (informational; surfaced in the decision record).
  std::uint64_t intra_steals = 0;
  std::uint64_t inter_steals = 0;
  std::uint64_t failed_steals = 0;

  /// Working-set hint in bytes (e.g. the bundle's Sd) used when hardware
  /// LLC counters are unavailable. 0 = unknown.
  std::uint64_t working_set_hint = 0;

  /// False when the metrics pipeline is off (Options::metrics = false):
  /// the controller must fall back to the statically configured Eq. 4 BL
  /// instead of hill-climbing on unprofiled epochs.
  bool signal_ok = true;

  /// Hardware LLC counters for the epoch (deltas), split by tier. Only
  /// meaningful when hw_valid (perf open and counting).
  bool hw_valid = false;
  std::uint64_t llc_loads = 0;
  std::uint64_t llc_misses = 0;
  std::uint64_t llc_loads_inter = 0;
  std::uint64_t llc_misses_inter = 0;

  /// Coherence counters for the epoch (deltas), from the cachesim
  /// hierarchy's MESI-lite directory when the epoch ran under the
  /// simulator. Only meaningful when coh_valid; the real runtime leaves
  /// this false (hardware exposes no per-epoch sharing classification).
  bool coh_valid = false;
  std::uint64_t cache_accesses = 0;  ///< denominator for the miss rate
  std::uint64_t coherence_misses = 0;
  std::uint64_t true_sharing_invalidations = 0;
  std::uint64_t false_sharing_invalidations = 0;
};

/// Derived picture of the running workload: the profiler's replacement
/// for the user-supplied `B`/`Sd` guesses feeding Eq. 4.
struct WorkloadProfile {
  /// spawns / spawning_tasks — the measured branching degree.
  double effective_branching = 0.0;
  /// effective_branching rounded and clamped to [2, 64]: the `B` fed to
  /// boundary_level()/clamp_boundary_level().
  std::int32_t branching = 2;
  /// Observed spawn-tree depth (deepest task level) — the `leaf_level`
  /// fed to clamp_boundary_level().
  std::int32_t depth = 0;

  std::uint64_t tasks = 0;
  std::uint64_t spawns = 0;

  /// Working-set estimate in bytes — the `Sd` fed to boundary_level().
  /// From LLC-miss line traffic when hardware counters ran, else the
  /// caller's hint, else 0 (Eq. 4 then reduces to the Eq. 1 socket
  /// constraint).
  std::uint64_t working_set_bytes = 0;
  bool working_set_from_hw = false;

  /// LLC miss rates (misses / loads) for the epoch; < 0 = unavailable.
  double llc_miss_rate = -1.0;
  double llc_miss_rate_inter = -1.0;
  double llc_miss_rate_intra = -1.0;

  /// Coherence signal (simulated epochs only); < 0 = unavailable.
  /// coherence_miss_rate = coherence misses / cache accesses — the share
  /// of traffic caused by invalidations rather than capacity.
  /// false_sharing_fraction = false-sharing invalidations / classified
  /// invalidations — how much of that traffic is pure layout waste a BL
  /// change cannot fix (the controller should not chase it).
  double coherence_miss_rate = -1.0;
  double false_sharing_fraction = -1.0;

  /// True when the sample carries enough signal to hill-climb on: the
  /// metrics pipeline was up, the epoch ran a meaningful number of tasks,
  /// a wall time was measured, and the spawn tree had real depth.
  bool sufficient = false;
};

/// Derives a WorkloadProfile from one epoch's raw counters.
/// `cache_line_bytes` converts LLC miss counts into a byte footprint;
/// `min_tasks` is the signal floor below which `sufficient` stays false.
WorkloadProfile profile_epoch(const EpochSample& s,
                              std::uint32_t cache_line_bytes = 64,
                              std::uint64_t min_tasks = 64);

}  // namespace cab::adapt
