#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "adapt/profile.hpp"
#include "hw/topology.hpp"

namespace cab::adapt {

/// How the boundary level is chosen across run() epochs.
enum class Mode : std::uint8_t {
  kStatic,    ///< Options::boundary_level, never retuned (the default).
  kAdaptive,  ///< guarded hill-climb between epochs, Eq. 4 fallback.
  kFixed,     ///< pinned to Policy::fixed_bl for every epoch.
};

/// Adaptive-scheduling policy: the mode plus the controller's guard
/// rails. The defaults are the hysteresis constants documented in
/// DESIGN.md ("Adaptive BL").
struct Policy {
  Mode mode = Mode::kStatic;

  /// BL every epoch runs under when mode == kFixed.
  std::int32_t fixed_bl = 0;

  /// Hill-climb step bound per epoch boundary (Decision::next_bl differs
  /// from prev_bl by at most this much, before guard-rail clamping).
  std::int32_t max_step = 1;

  /// Relative score improvement required to *accept* a probe (hysteresis
  /// against measurement noise; score is epoch wall time, lower better).
  double improve_threshold = 0.03;

  /// Relative score degradation at the held BL that re-opens probing
  /// (the workload changed under us).
  double drift_threshold = 0.25;

  /// Epochs to sit at a converged BL before re-probing a neighbor.
  int hold_epochs = 16;

  /// Signal floor: epochs executing fewer tasks than this are treated as
  /// insufficient signal (no hill-climb move).
  std::uint64_t min_epoch_tasks = 64;

  /// `Sd` hint in bytes for the profiler when hardware LLC counters are
  /// unavailable (e.g. the bundle's input size). 0 = unknown.
  std::uint64_t input_bytes_hint = 0;
};

/// Parses "static" | "adaptive" | "fixed:<bl>" (the Options::adapt /
/// bench --adapt syntax). Returns false on anything else; `out` is only
/// written on success.
bool parse_policy(const std::string& text, Policy& out);

/// "static", "adaptive" or "fixed:<bl>" — parse_policy's exact inverse.
std::string to_string(const Policy& p);

/// One epoch-boundary decision: every input the controller saw and what
/// it chose. Serialized verbatim into the cab-adapt-v1 report.
struct Decision {
  std::uint64_t epoch = 0;     ///< epoch the sample came from
  std::int32_t prev_bl = 0;    ///< BL that epoch ran under
  std::int32_t next_bl = 0;    ///< BL chosen for the next epoch
  std::int32_t best_bl = 0;    ///< controller's best-known BL so far
  std::int32_t static_bl = 0;  ///< Eq. 4 (+ clamp) from the profile
  double score = 0.0;          ///< epoch score (wall ns; lower better)
  double best_score = 0.0;     ///< best accepted score so far
  std::string reason;          ///< state-machine edge taken (DESIGN.md)
  WorkloadProfile profile;     ///< profiler output for the epoch
};

/// The machine-readable adaptive-control record: schema cab-adapt-v1.
/// Round-trips through JSON exactly (to_json(from_json(x)) == x for any
/// x this library wrote).
struct Report {
  static constexpr const char* kSchema = "cab-adapt-v1";

  std::string policy = "static";
  std::int32_t sockets = 0;
  std::int32_t cores_per_socket = 0;
  std::vector<Decision> decisions;

  /// BL in force after the last decision (`fallback` when no decisions).
  std::int32_t final_bl(std::int32_t fallback) const {
    return decisions.empty() ? fallback : decisions.back().next_bl;
  }

  std::string to_json() const;
  /// Throws std::runtime_error on malformed input or a wrong schema tag.
  static Report from_json(const std::string& text);
};

/// The feedback controller: consumes one EpochSample per run() epoch and
/// returns the boundary level for the *next* epoch. Implements a guarded
/// hill-climb over BL (see DESIGN.md "Adaptive BL"):
///
///   - bounded step: next_bl moves by at most Policy::max_step per epoch;
///   - hysteresis: a probe is accepted only when it improves the score by
///     improve_threshold; two consecutive failed probes converge the
///     climb, and the controller then holds for hold_epochs;
///   - guard rails: every candidate passes through
///     dag::clamp_boundary_level (Eq. 1 floor, third-constraint cap from
///     the *observed* depth and branching);
///   - hard fallbacks: single-socket topologies pin BL = 0; epochs with
///     no metrics signal or too few tasks hold the current BL; a BL-0
///     seed bootstraps to the profiled Eq. 4 level.
///
/// Single-threaded by design: the runtime calls it between epochs, while
/// workers are parked; benches drive it directly from simulator scores.
class Controller {
 public:
  Controller(Policy policy, hw::Topology topo);

  /// Consumes the finished epoch's sample; returns next epoch's BL
  /// (always >= 0) and appends one Decision to the report.
  std::int32_t on_epoch_end(const EpochSample& s);

  const Report& report() const { return report_; }
  const Policy& policy() const { return policy_; }

  /// Forgets all climb state and decisions (new workload).
  void reset();

 private:
  enum class Phase : std::uint8_t { kWarmup, kClimb, kHold };

  std::int32_t static_bl(const WorkloadProfile& p) const;
  std::int32_t clamp_candidate(std::int32_t from, std::int32_t candidate,
                               const WorkloadProfile& p) const;
  std::int32_t decide_adaptive(const EpochSample& s, Decision& d);
  void enter_hold();

  Policy policy_;
  hw::Topology topo_;
  Report report_;

  Phase phase_ = Phase::kWarmup;
  int dir_ = 1;               ///< current probe direction (+1 / -1)
  int failed_probes_ = 0;     ///< consecutive rejected probes
  bool resume_probe_ = false; ///< a revert queued a probe in dir_
  int hold_left_ = 0;
  std::int32_t best_bl_ = 0;
  double best_score_ = 0.0;
};

}  // namespace cab::adapt
