#pragma once

#include "cachesim/hierarchy.hpp"

namespace cab::simsched {

/// Converts abstract work units and cache-hierarchy events into virtual
/// cycles. Latencies are in the ballpark of the paper's AMD Opteron 8380
/// ("Shanghai"): L2 ~3ns, L3 ~15-20ns, DRAM ~100ns at 2.5 GHz. Absolute
/// values only scale the virtual clock; the CAB-vs-Cilk *ratios* the
/// benches report are driven by hit/miss counts and load balance.
struct CostModel {
  double cycles_per_work = 1.0;     ///< compute cost per work unit
  double l1_hit_cycles = 2.0;       ///< line found in the core's L1 (if on)
  double l2_hit_cycles = 8.0;       ///< line found in the core's L2
  double l3_hit_cycles = 40.0;      ///< line found in the socket's L3
  double memory_cycles = 250.0;     ///< line filled from DRAM
  double spawn_cycles = 30.0;       ///< per child pushed
  double pop_cycles = 10.0;         ///< task from own pool
  double intra_steal_cycles = 150.0;  ///< steal within the squad
  double inter_steal_cycles = 600.0;  ///< steal across sockets

  /// Per-socket DRAM channel occupancy per line filled from memory, in
  /// cycles (0 = unlimited bandwidth). When set, all memory fills issued
  /// by one socket's cores serialize on the socket's channel: k
  /// concurrent streaming tasks each see ~k-fold fill latency once the
  /// channel saturates — the bandwidth wall that makes memory-bound
  /// leaves stop scaling with cores (and softens the penalty of CAB's
  /// one-inter-task-per-socket rule at large inputs). ~64 B / 12.8 GB/s
  /// at 2.5 GHz is ~12.5 cycles; the default 0 keeps the figure benches
  /// on the latency-only model.
  double socket_bandwidth_cycles_per_line = 0.0;

  /// Multiplicative task-duration noise: each piece's duration is scaled
  /// by a factor uniform in [1 - j, 1 + j], drawn from the executing
  /// worker's seeded RNG (runs stay bit-reproducible). Real machines have
  /// this jitter (interrupts, DVFS, DRAM refresh); in the simulator it is
  /// what keeps a *random-victim* scheduler from accidentally locking
  /// into a stable placement — the figure benches enable it for the Cilk
  /// baseline (kScrambleJitter) and leave CAB jitter-free, representing
  /// the two fixed points the paper's measurements exhibit (see
  /// DESIGN.md "Victim selection").
  double duration_jitter = 0.0;

  /// How long an idle worker takes to *notice* newly pushed work, as a
  /// fraction of the corresponding steal cost (intra/inter). 0 (default)
  /// models continuously spinning thieves with instant notice — pool
  /// owners still win simultaneous races because their wake is queued
  /// first. Values > 0 delay remote thieves by scale * steal_cycles,
  /// which strengthens owner locality but lets slow ("straggler") squads
  /// lose their usual partition at iteration boundaries; measured by
  /// bench_ablation_protocol. See DESIGN.md "Victim selection".
  double steal_notice_scale = 0.0;

  /// Default jitter the experiment helpers apply to the random-stealing
  /// baseline (2%).
  static constexpr double kScrambleJitter = 0.02;

  double stream_cost(const cachesim::StreamCost& c) const {
    return l1_hit_cycles * static_cast<double>(c.l1_hits) +
           l2_hit_cycles * static_cast<double>(c.l2_hits) +
           l3_hit_cycles * static_cast<double>(c.l3_hits) +
           memory_cycles * static_cast<double>(c.memory_fills);
  }
};

}  // namespace cab::simsched
