#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cachesim/hierarchy.hpp"
#include "simsched/event_sim.hpp"

namespace cab::simsched {

/// Per-worker activity summary from one simulated run.
struct SimWorkerReport {
  SimTime busy = 0;          ///< cycles spent executing task pieces
  std::uint64_t pieces = 0;  ///< pre/post pieces executed
  std::uint64_t intra_steals = 0;
  std::uint64_t inter_acquires = 0;
  std::uint64_t inter_steals = 0;
};

/// Result of simulating one TaskGraph under one policy.
struct SimResult {
  SimTime makespan = 0;
  cachesim::LevelStats cache;                 ///< whole-machine totals
  std::vector<cachesim::LevelStats> socket_cache;  ///< per socket
  std::vector<SimWorkerReport> workers;

  SimTime total_busy = 0;
  SimTime inter_tier_busy = 0;  ///< busy cycles inside inter-tier pieces
  std::uint64_t tasks = 0;

  /// Mean worker utilization over the makespan, in [0, 1].
  double utilization() const;
  /// Fraction of busy cycles spent in the inter-socket tier (the paper's
  /// "often less than 5%" observation, Section III-E).
  double inter_tier_fraction() const;

  std::string summary() const;

  /// Compact JSON object with the headline metrics and per-socket cache
  /// stats — the machine-readable form (cab_explore --json).
  std::string to_json() const;
};

}  // namespace cab::simsched
