#include "simsched/sim_scheduler.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace cab::simsched {

const char* to_string(SimPolicy p) {
  switch (p) {
    case SimPolicy::kCab: return "CAB";
    case SimPolicy::kRandomStealing: return "random-stealing";
  }
  return "?";
}

const char* to_string(VictimSelection v) {
  switch (v) {
    case VictimSelection::kRoundRobin: return "round-robin";
    case VictimSelection::kUniformRandom: return "uniform-random";
  }
  return "?";
}

Simulator::Simulator(SimOptions opts) : opts_(opts) {
  tier_.bl =
      opts_.policy == SimPolicy::kCab ? opts_.boundary_level : 0;
  caches_ =
      std::make_unique<cachesim::CacheHierarchy>(opts_.topo, opts_.hierarchy);
}

bool Simulator::is_inter_node(dag::NodeId n) const {
  if (opts_.policy != SimPolicy::kCab) return false;
  if (opts_.flexible_tiers != nullptr) return opts_.flexible_tiers->inter(n);
  return tier_.is_inter(graph_->node(n).level);
}

bool Simulator::is_leaf_inter_node(dag::NodeId n) const {
  if (opts_.policy != SimPolicy::kCab) return false;
  if (opts_.flexible_tiers != nullptr)
    return opts_.flexible_tiers->leaf_inter(n);
  return tier_.is_leaf_inter(graph_->node(n).level);
}

bool Simulator::cab_tiers() const {
  return opts_.policy == SimPolicy::kCab &&
         (tier_.bl > 0 || opts_.flexible_tiers != nullptr);
}

SimResult Simulator::run(const dag::TaskGraph& graph,
                         const cachesim::TraceStore& store) {
  CAB_CHECK(!graph.empty(), "cannot simulate an empty graph");
  CAB_CHECK(graph.validate(), "task graph failed validation");
  graph_ = &graph;
  store_ = &store;

  const int total = opts_.topo.total_cores();
  const int per_socket = opts_.topo.cores_per_socket();

  workers_.assign(static_cast<std::size_t>(total), SimWorker{});
  std::uint64_t seed_state = opts_.seed;
  for (int i = 0; i < total; ++i) {
    SimWorker& w = workers_[static_cast<std::size_t>(i)];
    w.id = i;
    w.socket = opts_.topo.socket_of(i);
    w.is_head = (i == opts_.topo.first_core_of(w.socket));
    w.rng = util::Xorshift64(util::splitmix64(seed_state));
  }
  squads_.assign(static_cast<std::size_t>(opts_.topo.sockets()), SimSquad{});
  for (int s = 0; s < opts_.topo.sockets(); ++s) {
    SimSquad& sq = squads_[static_cast<std::size_t>(s)];
    sq.id = s;
    sq.first_worker = opts_.topo.first_core_of(s);
    sq.worker_count = per_socket;
  }
  states_.assign(graph.size(), NodeState{});
  mem_free_at_.assign(static_cast<std::size_t>(opts_.topo.sockets()), 0.0);
  events_ = EventQueue<Event>{};
  finish_time_ = 0;
  total_busy_ = 0;
  inter_tier_busy_ = 0;
  pieces_done_ = 0;
  root_complete_ = false;

  if (opts_.cold_caches) caches_->invalidate_all();
  caches_->reset_stats();

  // Inject the root (Algorithm II step 3: worker 0 begins the initial
  // task): route it through worker 0's spawn path so the policy decides
  // the pool, then wake everyone.
  push_child(graph.root(), /*spawner=*/0, /*now=*/0);
  wake_all(0, /*home_socket=*/0);

  while (!events_.empty()) {
    SimTime now = 0;
    Event e = events_.pop(now);
    SimWorker& w = workers_[static_cast<std::size_t>(e.worker)];
    switch (e.kind) {
      case Event::Kind::kTryAcquire:
        handle_try_acquire(w, now);
        break;
      case Event::Kind::kPieceDone:
        handle_piece_done(w, e.node, e.piece, now);
        break;
    }
  }
  CAB_CHECK(root_complete_, "simulation stalled before the root completed");

  SimResult r;
  r.makespan = finish_time_;
  r.cache = caches_->totals();
  for (int s = 0; s < opts_.topo.sockets(); ++s)
    r.socket_cache.push_back(caches_->socket_stats(s));
  for (const SimWorker& w : workers_) r.workers.push_back(w.report);
  r.total_busy = total_busy_;
  r.inter_tier_busy = inter_tier_busy_;
  r.tasks = graph.size();
  return r;
}

// --------------------------------------------------------------------------
// Event handling

void Simulator::handle_try_acquire(SimWorker& w, SimTime now) {
  if (w.free_at > now) return;  // stale wake; completion will re-acquire
  Acquired a = acquire(w);
  if (a.node == dag::kNoNode) {
    w.idle = true;
    return;
  }
  start_piece(w, a, now);
}

void Simulator::handle_piece_done(SimWorker& w, dag::NodeId n, Piece piece,
                                  SimTime now) {
  ++pieces_done_;
  const dag::TaskGraph::Node& node = graph_->node(n);
  NodeState& s = states_[static_cast<std::size_t>(n)];

  if (piece == Piece::kPre) {
    // The body has run to its sync. A *non-leaf* inter-socket task is now
    // suspended and no longer executing on the squad, so it releases the
    // busy-state (Algorithm II(c) semantics; see DESIGN.md). Leaf
    // inter-socket tasks keep it until their whole intra-socket subtree
    // completes — that subtree is the shared-cache residency unit CAB
    // protects.
    if (s.busy_squad >= 0 && !is_leaf_inter_node(n)) {
      SimSquad& sq = squads_[static_cast<std::size_t>(s.busy_squad)];
      CAB_CHECK(sq.active_inter >= 1, "squad busy-state underflow (sim)");
      --sq.active_inter;
      s.busy_squad = -1;
      wake_heads(now, sq.id);
    }
    const bool has_post = node.post_work > 0 || node.post_trace >= 0;
    if (node.children.empty()) {
      if (has_post) {
        // Body continues straight into the merge part.
        w.continuations.push_back(n);
      } else {
        node_subtree_complete(n, w.id, now);
      }
    } else {
      s.remaining_children = static_cast<std::int32_t>(node.children.size());
      if (node.sequential) {
        s.next_child = 1;
        push_child(node.children[0], w.id, now);
      } else {
        for (dag::NodeId c : node.children) push_child(c, w.id, now);
      }
    }
  } else {
    s.post_done = true;
    node_subtree_complete(n, w.id, now);
  }

  // The worker is free at `now`. It may take *local* work (continuations,
  // its own deque, its own squad's inter pool) with only pop latency, but
  // reaching a remote pool costs the same probe round-trip every other
  // idle thief pays — finishing a piece grants no priority on remote
  // work. Without this, the last-completing worker of an iteration would
  // snatch the next iteration's root from the owning squad and placement
  // stability would oscillate.
  w.idle = true;
  const bool tiers_on = cab_tiers();
  const bool has_local =
      !w.continuations.empty() || !w.intra.empty() ||
      (tiers_on && w.is_head &&
       !squads_[static_cast<std::size_t>(w.socket)].inter_pool.empty());
  double delay = 0;
  if (!has_local) {
    // A worker without local work is just another probing thief: it gets
    // no completion-granted priority on remote pools.
    delay = opts_.cost.steal_notice_scale *
            ((tiers_on && w.is_head) ? opts_.cost.inter_steal_cycles
                                     : opts_.cost.intra_steal_cycles);
  }
  wake_worker(w.id, now, delay);
}

void Simulator::node_subtree_complete(dag::NodeId n, std::int32_t worker,
                                      SimTime now) {
  NodeState& s = states_[static_cast<std::size_t>(n)];
  if (s.busy_squad >= 0) {
    SimSquad& sq = squads_[static_cast<std::size_t>(s.busy_squad)];
    CAB_CHECK(sq.active_inter >= 1, "squad busy-state underflow (sim)");
    --sq.active_inter;
    s.busy_squad = -1;
    // The squad's head may now initiate inter-socket work again.
    wake_heads(now, sq.id);
  }

  const dag::TaskGraph::Node& node = graph_->node(n);
  if (node.parent == dag::kNoNode) {
    root_complete_ = true;
    finish_time_ = now;
    return;
  }

  NodeState& ps = states_[static_cast<std::size_t>(node.parent)];
  const dag::TaskGraph::Node& parent = graph_->node(node.parent);
  CAB_CHECK(ps.remaining_children >= 1, "parent join-counter underflow");
  --ps.remaining_children;
  if (parent.sequential &&
      ps.next_child < static_cast<std::int32_t>(parent.children.size())) {
    // Release the next phase through the worker that ran the parent's
    // body (it is the one spinning at the phase's sync in the runtime).
    dag::NodeId next = parent.children[static_cast<std::size_t>(ps.next_child)];
    ++ps.next_child;
    push_child(next, ps.ran_pre_on >= 0 ? ps.ran_pre_on : worker, now);
  }
  if (ps.remaining_children == 0) {
    const bool parent_has_post =
        parent.post_work > 0 || parent.post_trace >= 0;
    if (parent_has_post) {
      std::int32_t target = ps.ran_pre_on >= 0 ? ps.ran_pre_on : worker;
      workers_[static_cast<std::size_t>(target)].continuations.push_back(
          node.parent);
      // The continuation binds to the worker that ran the pre piece; if
      // another worker completed the last child, the owner notices at its
      // next probe.
      wake_worker(target, now,
                  target == worker ? 0.0
                                   : opts_.cost.steal_notice_scale *
                                         opts_.cost.intra_steal_cycles);
    } else {
      node_subtree_complete(node.parent,
                            ps.ran_pre_on >= 0 ? ps.ran_pre_on : worker, now);
    }
  }
}

void Simulator::push_child(dag::NodeId child, std::int32_t spawner,
                           SimTime now) {
  if (is_inter_node(child)) {
    const int socket = workers_[static_cast<std::size_t>(spawner)].socket;
    squads_[static_cast<std::size_t>(socket)].inter_pool.push_back(child);
    wake_heads(now, socket);
  } else {
    workers_[static_cast<std::size_t>(spawner)].intra.push_back(child);
    if (cab_tiers()) {
      // Intra-socket tasks are only visible within the squad.
      wake_squad(workers_[static_cast<std::size_t>(spawner)].socket, now);
    } else {
      // Classic stealing (and CAB degenerated to BL == 0): any worker may
      // steal the task.
      wake_all(now, workers_[static_cast<std::size_t>(spawner)].socket);
    }
  }
}

// --------------------------------------------------------------------------
// Acquisition policies

Simulator::Acquired Simulator::acquire(SimWorker& w) {
  if (cab_tiers()) return acquire_cab(w);
  return acquire_random(w);
}

Simulator::Acquired Simulator::acquire_cab(SimWorker& w) {
  // Continuations (a task resuming past its sync) bind to this worker.
  if (!w.continuations.empty()) {
    Acquired a{w.continuations.front(), Piece::kPost, opts_.cost.pop_cycles};
    w.continuations.pop_front();
    return a;
  }
  // Step 1: own intra-socket pool (LIFO).
  if (!w.intra.empty()) {
    Acquired a{w.intra.back(), Piece::kPre, opts_.cost.pop_cycles};
    w.intra.pop_back();
    return a;
  }
  SimSquad& sq = squads_[static_cast<std::size_t>(w.socket)];
  auto take_own_inter = [&]() -> Acquired {
    if (sq.inter_pool.empty()) return {};
    Acquired a{sq.inter_pool.front(), Piece::kPre, opts_.cost.pop_cycles};
    sq.inter_pool.pop_front();
    ++sq.active_inter;
    states_[static_cast<std::size_t>(a.node)].busy_squad = sq.id;
    return a;
  };

  const bool busy = sq.active_inter > 0;
  if (busy || opts_.ignore_busy_state) {
    // Step 3 / 6(a): steal intra-socket within the squad (rotation over
    // squad mates; failed probes cost no virtual time).
    if (sq.worker_count > 1) {
      int start = probe_start(w, sq.worker_count);
      for (int i = 0; i < sq.worker_count; ++i) {
        int v = sq.first_worker + (start + i) % sq.worker_count;
        if (v == w.id) continue;
        SimWorker& victim = workers_[static_cast<std::size_t>(v)];
        if (!victim.intra.empty()) {
          Acquired a{victim.intra.front(), Piece::kPre,
                     opts_.cost.intra_steal_cycles};
          victim.intra.pop_front();
          ++w.report.intra_steals;
          return a;
        }
      }
    }
    // Step 2: a busy squad initiates no new inter-socket work (unless the
    // busy_state ablation disables the guard).
    if (busy && !opts_.ignore_busy_state) return {};
  }

  // Step 2 (cont.): non-head workers go back to Step 1 (unless the
  // head-worker ablation opens inter-socket stealing to everyone).
  if (!w.is_head && !opts_.any_worker_inter_steal) return {};

  // Step 4: own inter-socket pool.
  {
    Acquired a = take_own_inter();
    if (a.node != dag::kNoNode) {
      ++w.report.inter_acquires;
      return a;
    }
  }
  // Step 5 / 6(b): steal from another squad's inter pool.
  const int m = static_cast<int>(squads_.size());
  if (m > 1) {
    int start = probe_start(w, m);
    for (int i = 0; i < m; ++i) {
      int v = (start + i) % m;
      if (v == sq.id) continue;
      SimSquad& victim = squads_[static_cast<std::size_t>(v)];
      if (!victim.inter_pool.empty()) {
        Acquired a{victim.inter_pool.front(), Piece::kPre,
                   opts_.cost.inter_steal_cycles};
        victim.inter_pool.pop_front();
        ++sq.active_inter;
        states_[static_cast<std::size_t>(a.node)].busy_squad = sq.id;
        ++w.report.inter_steals;
        return a;
      }
    }
  }
  return {};
}

Simulator::Acquired Simulator::acquire_random(SimWorker& w) {
  if (!w.continuations.empty()) {
    Acquired a{w.continuations.front(), Piece::kPost, opts_.cost.pop_cycles};
    w.continuations.pop_front();
    return a;
  }
  if (!w.intra.empty()) {
    Acquired a{w.intra.back(), Piece::kPre, opts_.cost.pop_cycles};
    w.intra.pop_back();
    return a;
  }
  const int n = static_cast<int>(workers_.size());
  if (n > 1) {
    int start = probe_start(w, n);
    for (int i = 0; i < n; ++i) {
      int v = (start + i) % n;
      if (v == w.id) continue;
      SimWorker& victim = workers_[static_cast<std::size_t>(v)];
      if (!victim.intra.empty()) {
        // Cross-socket steals pay the remote-cache transfer cost.
        double overhead = victim.socket == w.socket
                              ? opts_.cost.intra_steal_cycles
                              : opts_.cost.inter_steal_cycles;
        Acquired a{victim.intra.front(), Piece::kPre, overhead};
        victim.intra.pop_front();
        ++w.report.intra_steals;
        return a;
      }
    }
  }
  return {};
}

int Simulator::probe_start(SimWorker& w, int count) {
  if (opts_.victims == VictimSelection::kRoundRobin)
    return (w.id + 1) % count;
  return static_cast<int>(
      w.rng.next_below(static_cast<std::uint64_t>(count)));
}

// --------------------------------------------------------------------------
// Execution

Simulator::PieceCost Simulator::piece_duration(SimWorker& w, dag::NodeId n,
                                               Piece piece) {
  const dag::TaskGraph::Node& node = graph_->node(n);
  PieceCost cost;
  if (piece == Piece::kPre) {
    cost.cycles +=
        static_cast<double>(node.pre_work) * opts_.cost.cycles_per_work;
    cost.cycles +=
        static_cast<double>(node.children.size()) * opts_.cost.spawn_cycles;
    if (store_->has(node.pre_trace)) {
      cachesim::StreamCost sc =
          caches_->stream(w.id, store_->get(node.pre_trace));
      cost.cycles += opts_.cost.stream_cost(sc);
      cost.memory_fills += sc.memory_fills;
    }
  } else {
    cost.cycles +=
        static_cast<double>(node.post_work) * opts_.cost.cycles_per_work;
    if (store_->has(node.post_trace)) {
      cachesim::StreamCost sc =
          caches_->stream(w.id, store_->get(node.post_trace));
      cost.cycles += opts_.cost.stream_cost(sc);
      cost.memory_fills += sc.memory_fills;
    }
  }
  return cost;
}

void Simulator::start_piece(SimWorker& w, const Acquired& a, SimTime now) {
  if (a.piece == Piece::kPre)
    states_[static_cast<std::size_t>(a.node)].ran_pre_on = w.id;
  if (opts_.on_piece_start)
    opts_.on_piece_start(a.node, w.id, now, a.piece == Piece::kPost);
  PieceCost pc = piece_duration(w, a.node, a.piece);
  double duration = pc.cycles;
  if (opts_.cost.duration_jitter > 0) {
    duration *= 1.0 + opts_.cost.duration_jitter *
                          (2.0 * w.rng.next_double() - 1.0);
  }
  double busy = a.overhead + duration;
  if (opts_.cost.socket_bandwidth_cycles_per_line > 0 &&
      pc.memory_fills > 0) {
    // All of the socket's memory fills serialize on its DRAM channel:
    // the piece cannot retire before the channel has shipped its lines.
    SimTime& channel = mem_free_at_[static_cast<std::size_t>(w.socket)];
    const double ship = static_cast<double>(pc.memory_fills) *
                        opts_.cost.socket_bandwidth_cycles_per_line;
    const SimTime channel_done = std::max(channel, now) + ship;
    channel = channel_done;
    busy = std::max(busy, channel_done - now);
  }
  w.idle = false;
  w.free_at = now + busy;
  w.report.busy += busy;
  ++w.report.pieces;
  total_busy_ += busy;
  if (is_inter_node(a.node)) inter_tier_busy_ += busy;
  events_.push(w.free_at,
               Event{Event::Kind::kPieceDone, w.id, a.node, a.piece});
}

// --------------------------------------------------------------------------
// Wakeups

void Simulator::wake_worker(std::int32_t id, SimTime now, double delay) {
  SimWorker& w = workers_[static_cast<std::size_t>(id)];
  if (!w.idle) return;
  w.idle = false;
  // Simultaneous acquisitions arbitrate *after* all same-time completions
  // have published their pushes (priority >= 1), so the race outcome is a
  // property of the machine model, not of which task happened to finish
  // last. The arbitration order follows the victim-selection mode:
  //  - kRoundRobin: fixed worker-id order — the deterministic fixed point
  //    a real CAB system settles into across iterative phases;
  //  - kUniformRandom: random order — the per-phase scramble of a truly
  //    random-stealing scheduler on a noisy machine.
  std::uint32_t priority;
  if (opts_.victims == VictimSelection::kUniformRandom) {
    priority = 1 + static_cast<std::uint32_t>(w.rng.next_below(
                       1024 * workers_.size()));
  } else {
    priority = 1 + static_cast<std::uint32_t>(id);
  }
  events_.push(now + delay,
               Event{Event::Kind::kTryAcquire, id, dag::kNoNode, Piece::kPre},
               priority);
}

void Simulator::wake_squad(int squad, SimTime now) {
  // Squad mates notice an intra-socket push after a scaled steal
  // round-trip (0 by default: spinning thieves, instant notice).
  const double d = opts_.cost.steal_notice_scale * opts_.cost.intra_steal_cycles;
  const SimSquad& sq = squads_[static_cast<std::size_t>(squad)];
  for (int i = 0; i < sq.worker_count; ++i)
    wake_worker(sq.first_worker + i, now, d);
}

void Simulator::wake_heads(SimTime now, int home_squad) {
  // The home squad's own head is woken first (and with pop latency), so
  // it wins simultaneous races on its own pool; remote heads pay the
  // scaled cross-socket notice delay.
  const double remote =
      opts_.cost.steal_notice_scale * opts_.cost.inter_steal_cycles;
  const SimSquad* home = &squads_[static_cast<std::size_t>(home_squad)];
  wake_worker(home->first_worker, now,
              opts_.cost.steal_notice_scale * opts_.cost.pop_cycles);
  for (const SimSquad& sq : squads_) {
    if (sq.id != home_squad) wake_worker(sq.first_worker, now, remote);
  }
}

void Simulator::wake_all(SimTime now, int home_socket) {
  for (const SimWorker& w : workers_) {
    const double base = w.socket == home_socket
                            ? opts_.cost.intra_steal_cycles
                            : opts_.cost.inter_steal_cycles;
    wake_worker(w.id, now, opts_.cost.steal_notice_scale * base);
  }
}

}  // namespace cab::simsched
