#pragma once

#include <cstdint>
#include <queue>
#include <vector>

namespace cab::simsched {

/// Virtual time in cycles.
using SimTime = double;

/// Deterministic discrete-event core: a min-heap of events ordered by
/// (time, priority, sequence). The priority lets the scheduler model fix
/// an arbitration rule for simultaneous events (e.g. "all completions
/// publish their pushes, then idle workers probe in worker-id order"),
/// so race outcomes do not depend on incidental insertion order. The
/// sequence number makes the remaining ties bit-reproducible.
template <typename Payload>
class EventQueue {
 public:
  void push(SimTime at, Payload p, std::uint32_t priority = 0) {
    heap_.push(Entry{at, priority, seq_++, std::move(p)});
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  SimTime next_time() const { return heap_.top().at; }

  Payload pop(SimTime& at) {
    Entry e = heap_.top();
    heap_.pop();
    at = e.at;
    return std::move(e.payload);
  }

 private:
  struct Entry {
    SimTime at;
    std::uint32_t priority;
    std::uint64_t seq;
    Payload payload;

    bool operator>(const Entry& o) const {
      if (at != o.at) return at > o.at;
      if (priority != o.priority) return priority > o.priority;
      return seq > o.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::uint64_t seq_ = 0;
};

}  // namespace cab::simsched
