#include "simsched/report.hpp"

#include "util/format.hpp"

namespace cab::simsched {

double SimResult::utilization() const {
  if (makespan <= 0 || workers.empty()) return 0.0;
  return total_busy / (makespan * static_cast<double>(workers.size()));
}

double SimResult::inter_tier_fraction() const {
  return total_busy > 0 ? inter_tier_busy / total_busy : 0.0;
}

std::string SimResult::summary() const {
  std::string s;
  s += "makespan=" + util::format_fixed(makespan, 0) + " cycles";
  s += " util=" + util::format_fixed(utilization() * 100.0, 1) + "%";
  s += " L2-miss=" + util::human_count(cache.l2_misses);
  s += " L3-miss=" + util::human_count(cache.l3_misses);
  s += " coh-miss=" + util::human_count(cache.coherence_misses);
  s += " fs-inv=" + util::human_count(cache.false_sharing_invalidations);
  s += " tasks=" + util::human_count(tasks);
  s += " inter-tier=" + util::format_fixed(inter_tier_fraction() * 100.0, 1) +
       "%";
  return s;
}

std::string SimResult::to_json() const {
  std::string j = "{";
  auto num = [&](const char* key, double v, bool comma = true) {
    j += std::string("\"") + key + "\":" + util::format_fixed(v, 0);
    if (comma) j += ",";
  };
  num("makespan_cycles", makespan);
  j += "\"utilization\":" + util::format_fixed(utilization(), 4) + ",";
  j += "\"inter_tier_fraction\":" +
       util::format_fixed(inter_tier_fraction(), 4) + ",";
  num("tasks", static_cast<double>(tasks));
  num("l2_accesses", static_cast<double>(cache.l2_accesses));
  num("l2_misses", static_cast<double>(cache.l2_misses));
  num("l3_accesses", static_cast<double>(cache.l3_accesses));
  num("l3_misses", static_cast<double>(cache.l3_misses));
  num("invalidations", static_cast<double>(cache.invalidations));
  num("coherence_misses", static_cast<double>(cache.coherence_misses));
  num("true_sharing_invalidations",
      static_cast<double>(cache.true_sharing_invalidations));
  num("false_sharing_invalidations",
      static_cast<double>(cache.false_sharing_invalidations));
  j += "\"sockets\":[";
  for (std::size_t s = 0; s < socket_cache.size(); ++s) {
    if (s) j += ",";
    j += "{\"l2_misses\":" +
         util::format_fixed(static_cast<double>(socket_cache[s].l2_misses),
                            0) +
         ",\"l3_misses\":" +
         util::format_fixed(static_cast<double>(socket_cache[s].l3_misses),
                            0) +
         ",\"coherence_misses\":" +
         util::format_fixed(
             static_cast<double>(socket_cache[s].coherence_misses), 0) +
         "}";
  }
  j += "]}";
  return j;
}

}  // namespace cab::simsched
