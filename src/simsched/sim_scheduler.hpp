#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "cachesim/hierarchy.hpp"
#include "cachesim/trace.hpp"
#include "dag/flexible.hpp"
#include "dag/partition.hpp"
#include "dag/task_graph.hpp"
#include "hw/topology.hpp"
#include "simsched/cost_model.hpp"
#include "simsched/event_sim.hpp"
#include "simsched/report.hpp"
#include "util/rng.hpp"

namespace cab::simsched {

/// Scheduling policy under simulation. kCab follows Algorithm I/II with
/// the same sync-help refinement as the threaded runtime; kRandomStealing
/// is the classic Cilk-style baseline the paper compares against.
enum class SimPolicy : std::uint8_t { kCab, kRandomStealing };

const char* to_string(SimPolicy p);

/// How a thief picks the probe order over victims.
///
/// kUniformRandom is the letter of both Cilk's and the paper's protocol
/// ("randomly chooses a victim"). kRoundRobin (fixed rotation from the
/// thief's id) is the deterministic-simulation stand-in for the
/// *self-stabilizing* steal pattern a real CAB system settles into across
/// iterative phases: stable placement -> shared-cache hits -> consistent
/// squad timing -> the same heads win the same steals next phase. A
/// virtual-time simulator has no timing jitter, so re-randomizing victims
/// every phase would artificially destroy that fixed point for CAB, while
/// the fine-grained all-worker scramble of the Cilk baseline genuinely
/// behaves like fresh randomness. Defaults: benches use kRoundRobin for
/// CAB and kUniformRandom for the baseline; bench_ablation_victims
/// measures all four combinations. See DESIGN.md "Victim selection".
enum class VictimSelection : std::uint8_t { kRoundRobin, kUniformRandom };

const char* to_string(VictimSelection v);

struct SimOptions {
  hw::Topology topo = hw::Topology::opteron_8380();
  SimPolicy policy = SimPolicy::kCab;
  /// Boundary level for kCab (0 degenerates to random stealing).
  std::int32_t boundary_level = 0;

  /// Optional per-node tier assignment (the flexible partitioner of the
  /// paper's future work, dag::footprint_partition). When set it
  /// overrides boundary_level for tier classification; must outlive the
  /// Simulator run.
  const dag::NodeTiers* flexible_tiers = nullptr;
  CostModel cost;
  /// Cache-hierarchy refinements (optional L1, replacement policy,
  /// prefetcher). The defaults are the paper's base L2+L3 LRU model.
  cachesim::HierarchyOptions hierarchy;
  std::uint64_t seed = 1;
  /// Start with cold caches (true, default) or keep contents from a
  /// previous run() on the same Simulator.
  bool cold_caches = true;
  VictimSelection victims = VictimSelection::kRoundRobin;

  /// Ablation: let every worker (not just squad heads) acquire and steal
  /// inter-socket tasks. The paper restricts this to heads to cut lock
  /// contention on the inter-socket pools (Section III-A).
  bool any_worker_inter_steal = false;

  /// Ablation: ignore the per-squad busy_state, allowing a squad to run
  /// multiple inter-socket tasks simultaneously. The paper forbids it to
  /// keep one leaf inter-socket task's data set resident per socket.
  bool ignore_busy_state = false;

  /// Optional observer invoked when a task piece starts executing
  /// (node, worker, virtual start time, is_post_piece). For tests and
  /// placement diagnostics; adds no virtual-time cost.
  std::function<void(dag::NodeId, int, SimTime, bool)> on_piece_start;
};

/// Deterministic discrete-event executor of a TaskGraph on a virtual MSMC
/// machine.
///
/// Execution model (mirrors the threaded runtime):
///  - every node runs as a `pre` piece (body up to its sync: divide work +
///    memory trace + one push per child), then suspends; when its last
///    child subtree completes, its `post` piece (merge work + trace) runs
///    as a continuation, preferentially on the worker that ran `pre`;
///  - piece duration = work * cycles_per_work + Σ line-access latency,
///    where each line access walks the L2/L3 hierarchy of the executing
///    core — so *where* the scheduler places a task determines its cost,
///    which is exactly the TRICI effect under study;
///  - CAB placement: children at level <= BL go to the spawning squad's
///    inter-socket pool (head workers acquire/steal them, busy_state
///    guarded); deeper children go to the spawning worker's deque (squad
///    mates may steal);
///  - `sequential` nodes release one child phase at a time.
///
/// Runs are bit-reproducible given (graph, store, options).
class Simulator {
 public:
  explicit Simulator(SimOptions opts);

  SimResult run(const dag::TaskGraph& graph,
                const cachesim::TraceStore& store);

  const SimOptions& options() const { return opts_; }

 private:
  struct NodeState {
    std::int32_t remaining_children = 0;
    std::int32_t next_child = 0;  ///< for sequential release
    std::int32_t ran_pre_on = -1;
    std::int32_t busy_squad = -1;  ///< squad charged with active_inter
    bool post_done = false;
  };

  struct SimWorker {
    int id = 0;
    int socket = 0;
    bool is_head = false;
    bool idle = true;
    SimTime free_at = 0;
    std::deque<dag::NodeId> continuations;  ///< highest priority, own only
    std::deque<dag::NodeId> intra;          ///< own deque (LIFO own end)
    util::Xorshift64 rng{1};
    SimWorkerReport report;
  };

  struct SimSquad {
    int id = 0;
    int first_worker = 0;
    int worker_count = 0;
    std::deque<dag::NodeId> inter_pool;  ///< FIFO acquisition
    std::int32_t active_inter = 0;
  };

  enum class Piece : std::uint8_t { kPre, kPost };

  struct Event {
    enum class Kind : std::uint8_t { kTryAcquire, kPieceDone } kind;
    std::int32_t worker;
    dag::NodeId node;   ///< for kPieceDone
    Piece piece;
  };

  // --- event handlers -----------------------------------------------------
  void handle_try_acquire(SimWorker& w, SimTime now);
  void handle_piece_done(SimWorker& w, dag::NodeId n, Piece piece,
                         SimTime now);

  // --- scheduling ----------------------------------------------------------
  struct Acquired {
    dag::NodeId node = dag::kNoNode;
    Piece piece = Piece::kPre;
    double overhead = 0;  ///< pop/steal cost added to the piece start
  };
  Acquired acquire(SimWorker& w);
  Acquired acquire_cab(SimWorker& w);
  Acquired acquire_random(SimWorker& w);

  void start_piece(SimWorker& w, const Acquired& a, SimTime now);
  void push_child(dag::NodeId child, std::int32_t spawner, SimTime now);
  void node_subtree_complete(dag::NodeId n, std::int32_t worker, SimTime now);
  void release_next_phase(dag::NodeId parent, std::int32_t worker,
                          SimTime now);

  /// First victim index to probe in a rotation over `count` candidates.
  int probe_start(SimWorker& w, int count);

  /// `delay` models how long until the woken worker can actually act:
  /// 0 for a worker re-acquiring after its own piece, one steal
  /// round-trip (intra/inter steal cycles) for idle workers reacting to
  /// someone else's push — spinning thieves lose the race to the pool's
  /// owner by exactly that margin.
  void wake_worker(std::int32_t w, SimTime now, double delay);
  void wake_squad(int squad, SimTime now);
  void wake_heads(SimTime now, int home_squad);
  void wake_all(SimTime now, int home_socket);

  bool is_inter_node(dag::NodeId n) const;
  bool is_leaf_inter_node(dag::NodeId n) const;
  /// True when the CAB bi-tier machinery is active (BL > 0 or flexible).
  bool cab_tiers() const;

  struct PieceCost {
    double cycles = 0;
    std::uint64_t memory_fills = 0;
  };
  PieceCost piece_duration(SimWorker& w, dag::NodeId n, Piece piece);

  SimOptions opts_;
  dag::TierAssignment tier_;

  // Per-run state.
  const dag::TaskGraph* graph_ = nullptr;
  const cachesim::TraceStore* store_ = nullptr;
  std::unique_ptr<cachesim::CacheHierarchy> caches_;
  std::vector<SimWorker> workers_;
  std::vector<SimSquad> squads_;
  std::vector<NodeState> states_;
  /// Per-socket DRAM channel availability (bandwidth model).
  std::vector<SimTime> mem_free_at_;
  EventQueue<Event> events_;
  SimTime finish_time_ = 0;
  SimTime total_busy_ = 0;
  SimTime inter_tier_busy_ = 0;
  std::uint64_t pieces_done_ = 0;
  bool root_complete_ = false;
};

}  // namespace cab::simsched
