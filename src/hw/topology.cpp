#include "hw/topology.hpp"

#include <fstream>

#include "hw/sysfs_topology.hpp"
#include <set>
#include <thread>

#include "util/assert.hpp"
#include "util/format.hpp"

namespace cab::hw {

Topology::Topology(int sockets, int cores_per_socket, CacheSpec l2_per_core,
                   CacheSpec l3_per_socket)
    : sockets_(sockets),
      cores_per_socket_(cores_per_socket),
      l2_(l2_per_core),
      l3_(l3_per_socket) {
  CAB_CHECK(sockets >= 1, "topology needs at least one socket");
  CAB_CHECK(cores_per_socket >= 1, "topology needs at least one core/socket");
  CAB_CHECK(l2_.size_bytes % (static_cast<std::uint64_t>(l2_.line_bytes) *
                              l2_.associativity) == 0,
            "L2 size must be line*assoc aligned");
  CAB_CHECK(l3_.size_bytes % (static_cast<std::uint64_t>(l3_.line_bytes) *
                              l3_.associativity) == 0,
            "L3 size must be line*assoc aligned");
}

Topology Topology::synthetic(int sockets, int cores_per_socket,
                             std::uint64_t l3_bytes, std::uint64_t l2_bytes) {
  CacheSpec l2{l2_bytes, 64, 16};
  CacheSpec l3{l3_bytes, 64, 48};
  // Keep the set count integral for unusual sizes by relaxing associativity.
  while (l2.size_bytes % (static_cast<std::uint64_t>(l2.line_bytes) *
                          l2.associativity) != 0) {
    l2.associativity /= 2;
    CAB_CHECK(l2.associativity >= 1, "unrepresentable L2 size");
  }
  while (l3.size_bytes % (static_cast<std::uint64_t>(l3.line_bytes) *
                          l3.associativity) != 0) {
    l3.associativity -= 1;
    CAB_CHECK(l3.associativity >= 1, "unrepresentable L3 size");
  }
  return Topology(sockets, cores_per_socket, l2, l3);
}

Topology Topology::opteron_8380() { return synthetic(4, 4); }

Topology Topology::detect() {
  Topology detected = synthetic(1, 1);
  if (detect_from_sysfs("/sys/devices/system/cpu", &detected))
    return detected;
  // No usable sysfs tree (containers, non-Linux): single socket with
  // hardware_concurrency cores and Opteron-like default caches.
  int cpus = static_cast<int>(std::thread::hardware_concurrency());
  if (cpus <= 0) cpus = 1;
  return synthetic(1, cpus);
}

std::string Topology::describe() const {
  return std::to_string(sockets_) + " sockets x " +
         std::to_string(cores_per_socket_) + " cores, L2 " +
         util::human_bytes(l2_.size_bytes) + "/core, L3 " +
         util::human_bytes(l3_.size_bytes) + "/socket";
}

}  // namespace cab::hw
