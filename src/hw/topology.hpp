#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cab::hw {

/// Geometry of one cache level.
struct CacheSpec {
  std::uint64_t size_bytes = 0;
  std::uint32_t line_bytes = 64;
  std::uint32_t associativity = 8;

  /// Number of sets; size must be divisible by line * associativity.
  std::uint64_t sets() const {
    return size_bytes / (static_cast<std::uint64_t>(line_bytes) * associativity);
  }
};

/// A multi-socket multi-core (MSMC) machine model: M sockets x N cores, a
/// private L2 per core and a shared L3 per socket — the architecture the
/// paper targets (Section I, Section V).
///
/// The topology can be *virtual*: the CAB protocol only depends on the
/// declared socket/core structure, so schedulers and simulators accept any
/// Topology regardless of the physical host. `detect()` builds a model of
/// the actual machine from sysfs when available.
class Topology {
 public:
  /// Construct an M-socket, N-cores-per-socket topology.
  Topology(int sockets, int cores_per_socket, CacheSpec l2_per_core,
           CacheSpec l3_per_socket);

  /// Arbitrary virtual topology with Opteron-like cache geometry scaled by
  /// the given L3 size (paper Sec. V: 512 KiB 16-way L2, 6 MiB 48-way L3).
  static Topology synthetic(int sockets, int cores_per_socket,
                            std::uint64_t l3_bytes = 6ull << 20,
                            std::uint64_t l2_bytes = 512ull << 10);

  /// The paper's evaluation machine: 4 sockets x 4 cores (AMD Opteron 8380
  /// "Shanghai"), 512 KiB per-core L2, 6 MiB per-socket shared L3.
  static Topology opteron_8380();

  /// Best-effort detection of the physical host via
  /// /sys/devices/system/cpu; falls back to a single-socket topology with
  /// hardware_concurrency cores and default cache sizes.
  static Topology detect();

  int sockets() const { return sockets_; }
  int cores_per_socket() const { return cores_per_socket_; }
  int total_cores() const { return sockets_ * cores_per_socket_; }

  /// Cores are numbered 0..total-1, socket-major: core c lives in socket
  /// c / cores_per_socket.
  int socket_of(int core) const { return core / cores_per_socket_; }
  /// First core of a socket (the squad head's core in the runtime).
  int first_core_of(int socket) const { return socket * cores_per_socket_; }

  const CacheSpec& l2() const { return l2_; }
  const CacheSpec& l3() const { return l3_; }

  /// Shared cache size per socket (the `Sc` of Eq. 2/4).
  std::uint64_t shared_cache_bytes() const { return l3_.size_bytes; }

  /// "4 sockets x 4 cores, L2 512.0 KiB/core, L3 6.0 MiB/socket"
  std::string describe() const;

 private:
  int sockets_;
  int cores_per_socket_;
  CacheSpec l2_;
  CacheSpec l3_;
};

}  // namespace cab::hw
