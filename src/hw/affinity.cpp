#include "hw/affinity.hpp"

#include <pthread.h>
#include <sched.h>

#include <thread>

namespace cab::hw {

int online_cpus() {
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    int n = CPU_COUNT(&set);
    if (n > 0) return n;
  }
  int hc = static_cast<int>(std::thread::hardware_concurrency());
  return hc > 0 ? hc : 1;
}

bool bind_current_thread(int cpu) {
  int n = online_cpus();
  if (n <= 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu % n), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
}

}  // namespace cab::hw
