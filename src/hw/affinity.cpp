#include "hw/affinity.hpp"

#include <pthread.h>
#include <sched.h>

#if defined(__linux__)
#include <sys/syscall.h>
#include <unistd.h>
#endif

#include <cstdint>
#include <thread>

namespace cab::hw {

int online_cpus() {
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    int n = CPU_COUNT(&set);
    if (n > 0) return n;
  }
  int hc = static_cast<int>(std::thread::hardware_concurrency());
  return hc > 0 ? hc : 1;
}

bool bind_memory_local(void* addr, std::size_t bytes) {
#if defined(__linux__) && defined(SYS_mbind)
  if (addr == nullptr || bytes == 0) return false;
  long page = sysconf(_SC_PAGESIZE);
  if (page <= 0) page = 4096;
  // mbind wants page-aligned start/length; widen the range to page edges.
  const auto upage = static_cast<std::uintptr_t>(page);
  const auto begin = reinterpret_cast<std::uintptr_t>(addr) & ~(upage - 1);
  const auto end = (reinterpret_cast<std::uintptr_t>(addr) + bytes + upage -
                    1) & ~(upage - 1);
  // MPOL_LOCAL (linux/mempolicy.h): allocate on the node of the CPU that
  // triggers the fault — raw value so no libnuma headers are required.
  constexpr int kMpolLocal = 4;
  return syscall(SYS_mbind, reinterpret_cast<void*>(begin), end - begin,
                 kMpolLocal, nullptr, 0ul, 0u) == 0;
#else
  (void)addr;
  (void)bytes;
  return false;
#endif
}

bool bind_current_thread(int cpu) {
  int n = online_cpus();
  if (n <= 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu % n), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
}

}  // namespace cab::hw
