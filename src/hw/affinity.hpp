#pragma once

namespace cab::hw {

/// Pin the calling thread to the given logical CPU. Returns true on
/// success. When the requested CPU does not exist on the physical host
/// (virtual topology wider than the machine), the binding wraps modulo the
/// number of online CPUs so workers of the same virtual socket still land
/// near each other.
bool bind_current_thread(int cpu);

/// Number of CPUs the calling process may run on (affinity mask size).
int online_cpus();

}  // namespace cab::hw
