#pragma once

#include <cstddef>

namespace cab::hw {

/// Pin the calling thread to the given logical CPU. Returns true on
/// success. When the requested CPU does not exist on the physical host
/// (virtual topology wider than the machine), the binding wraps modulo the
/// number of online CPUs so workers of the same virtual socket still land
/// near each other.
bool bind_current_thread(int cpu);

/// Number of CPUs the calling process may run on (affinity mask size).
int online_cpus();

/// Best-effort NUMA placement of [addr, addr+bytes): binds the containing
/// pages to the memory node the calling thread is running on (mbind with
/// MPOL_LOCAL), so a slab carved by a pinned worker stays on that worker's
/// socket even if the pages are later faulted from elsewhere. Returns
/// false — and is a harmless no-op — when the syscall is unavailable or
/// denied; callers should first-touch the range themselves as the
/// fallback placement policy.
bool bind_memory_local(void* addr, std::size_t bytes);

}  // namespace cab::hw
