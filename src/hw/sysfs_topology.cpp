#include "hw/sysfs_topology.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <set>

namespace cab::hw {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::string s;
  if (in) std::getline(in, s);
  while (!s.empty() && (s.back() == '\n' || s.back() == '\r' || s.back() == ' '))
    s.pop_back();
  return s;
}

bool is_number(const std::string& s) {
  return !s.empty() &&
         std::all_of(s.begin(), s.end(),
                     [](unsigned char c) { return std::isdigit(c); });
}

}  // namespace

std::vector<int> parse_cpulist(const std::string& s) {
  std::vector<int> cpus;
  std::size_t i = 0;
  while (i < s.size()) {
    std::size_t j = i;
    while (j < s.size() && s[j] != ',') ++j;
    const std::string item = s.substr(i, j - i);
    const std::size_t dash = item.find('-');
    if (dash == std::string::npos) {
      if (!is_number(item)) return {};
      cpus.push_back(std::stoi(item));
    } else {
      const std::string lo = item.substr(0, dash);
      const std::string hi = item.substr(dash + 1);
      if (!is_number(lo) || !is_number(hi)) return {};
      const int a = std::stoi(lo), b = std::stoi(hi);
      if (b < a) return {};
      for (int c = a; c <= b; ++c) cpus.push_back(c);
    }
    i = j + 1;
  }
  return cpus;
}

std::uint64_t parse_cache_size(const std::string& s) {
  if (s.empty()) return 0;
  std::size_t i = 0;
  while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
  if (i == 0) return 0;
  const std::uint64_t v = std::stoull(s.substr(0, i));
  if (i == s.size()) return v;
  switch (s[i]) {
    case 'K': case 'k': return v << 10;
    case 'M': case 'm': return v << 20;
    case 'G': case 'g': return v << 30;
    default: return 0;
  }
}

bool detect_from_sysfs(const std::string& root, Topology* out,
                       std::string* notes) {
  // Enumerate cpuN while topology files exist.
  struct CacheInfo {
    int level = 0;
    std::uint64_t size = 0;
    std::uint32_t line = 64;
    std::uint32_t ways = 8;
    std::size_t sharers = 1;
  };
  std::map<int, int> package_of;  // cpu -> package
  std::vector<std::vector<CacheInfo>> caches_by_cpu;

  for (int cpu = 0;; ++cpu) {
    const std::string base = root + "/cpu" + std::to_string(cpu);
    const std::string pkg =
        read_file(base + "/topology/physical_package_id");
    if (pkg.empty() || !is_number(pkg)) break;
    package_of[cpu] = std::stoi(pkg);

    std::vector<CacheInfo> caches;
    for (int idx = 0; idx < 8; ++idx) {
      const std::string cbase = base + "/cache/index" + std::to_string(idx);
      const std::string level = read_file(cbase + "/level");
      if (level.empty()) break;
      const std::string type = read_file(cbase + "/type");
      if (type == "Instruction") continue;  // model data/unified only
      CacheInfo ci;
      ci.level = is_number(level) ? std::stoi(level) : 0;
      ci.size = parse_cache_size(read_file(cbase + "/size"));
      const std::string line = read_file(cbase + "/coherency_line_size");
      if (is_number(line)) ci.line = static_cast<std::uint32_t>(std::stoi(line));
      const std::string ways = read_file(cbase + "/ways_of_associativity");
      if (is_number(ways)) ci.ways = static_cast<std::uint32_t>(std::stoi(ways));
      const std::vector<int> sharers =
          parse_cpulist(read_file(cbase + "/shared_cpu_list"));
      ci.sharers = sharers.empty() ? 1 : sharers.size();
      if (ci.level > 0 && ci.size > 0) caches.push_back(ci);
    }
    caches_by_cpu.push_back(std::move(caches));
  }

  if (package_of.empty()) return false;

  std::set<int> packages;
  for (const auto& [cpu, pkg] : package_of) packages.insert(pkg);
  const int sockets = static_cast<int>(packages.size());
  const int cpus = static_cast<int>(package_of.size());
  if (cpus % sockets != 0) return false;  // asymmetric: bail out
  const int per_socket = cpus / sockets;

  // From cpu0's caches: the model's private L2 is the largest level<=2
  // data/unified cache; the shared L3 is the largest level>=3 one (the
  // sysfs `level` field is authoritative — sharer counts are ambiguous
  // for small sockets and SMT siblings).
  CacheInfo l2{2, 512ull << 10, 64, 16, 1};
  CacheInfo l3{3, 6ull << 20, 64, 48, static_cast<std::size_t>(per_socket)};
  bool have_l2 = false, have_l3 = false;
  for (const CacheInfo& ci : caches_by_cpu.front()) {
    if (ci.level <= 2) {
      if (!have_l2 || ci.size > l2.size) {
        l2 = ci;
        have_l2 = true;
      }
    } else {
      if (!have_l3 || ci.size > l3.size) {
        l3 = ci;
        have_l3 = true;
      }
    }
  }

  auto legalize = [](CacheInfo ci) {
    CacheSpec spec{ci.size, ci.line, ci.ways};
    while (spec.associativity > 1 &&
           spec.size_bytes % (static_cast<std::uint64_t>(spec.line_bytes) *
                              spec.associativity) != 0) {
      --spec.associativity;
    }
    return spec;
  };

  *out = Topology(sockets, per_socket, legalize(l2), legalize(l3));
  if (notes != nullptr) {
    *notes = std::to_string(cpus) + " cpus in " + std::to_string(sockets) +
             " packages; L2 " + (have_l2 ? "detected" : "defaulted") +
             ", L3 " + (have_l3 ? "detected" : "defaulted");
  }
  return true;
}

}  // namespace cab::hw
