#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/topology.hpp"

namespace cab::hw {

/// Parses a Linux cpulist string ("0-3,8,10-11") into CPU ids.
/// Returns an empty vector on malformed input.
std::vector<int> parse_cpulist(const std::string& s);

/// Parses a sysfs cache-size string ("512K", "6144K", "8M") into bytes;
/// 0 on malformed input.
std::uint64_t parse_cache_size(const std::string& s);

/// Detailed topology detection from a sysfs-style directory tree
/// (`root` defaults to /sys/devices/system/cpu). Reads, per cpuN:
///   topology/physical_package_id
///   cache/indexK/{level,type,size,shared_cpu_list,ways_of_associativity,
///                 coherency_line_size}
/// and derives: socket count, cores per socket (requires a symmetric
/// machine — falls back otherwise), the largest *private* cache as the
/// model's L2 and the largest *shared* cache as the L3.
///
/// Returns true and fills `out` on success; false when the tree is
/// missing/asymmetric (caller falls back to Topology::detect()'s
/// defaults). `notes` (optional) receives a human-readable description
/// of what was found.
bool detect_from_sysfs(const std::string& root, Topology* out,
                       std::string* notes = nullptr);

}  // namespace cab::hw
