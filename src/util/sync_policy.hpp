#pragma once

#include <atomic>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace cab::util {

/// Relax the CPU inside a spin loop (PAUSE on x86, yield elsewhere).
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  std::this_thread::yield();
#endif
}

/// Synchronization-primitive policy: the hot synchronization cores
/// (ChaseLevDeque, LockedDeque, BasicSpinLock, runtime::protocol) are
/// templates over a `Sync` type so the *same* code runs against real
/// `std::atomic` in production and against `chk::atomic` (a virtualized
/// atomic whose every access is a schedule point of the model checker's
/// controllable scheduler) under `tests/test_model_check`. See
/// DESIGN.md §6 and `src/chk/`.
///
/// A Sync policy provides:
///  - `template <typename T> atomic_t` — the atomic template,
///  - `fence(std::memory_order)`      — a thread fence,
///  - `spin_pause(int& spins)`        — one backoff step of a failed spin
///    probe (`spins` is loop-local backoff state owned by the caller).
struct RealSync {
  template <typename T>
  using atomic_t = std::atomic<T>;

  static void fence(std::memory_order mo) noexcept {
    std::atomic_thread_fence(mo);
  }

  /// Exponential backoff, capped; identical to the historical SpinLock
  /// behaviour (PAUSE bursts doubling up to 1024).
  static void spin_pause(int& spins) noexcept {
    for (int i = 0; i < spins; ++i) cpu_relax();
    if (spins < 1024) spins <<= 1;
  }
};

}  // namespace cab::util
