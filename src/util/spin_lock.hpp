#pragma once

#include <atomic>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace cab::util {

/// Relax the CPU inside a spin loop (PAUSE on x86, yield elsewhere).
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  std::this_thread::yield();
#endif
}

/// Test-and-test-and-set spin lock with exponential backoff.
///
/// Used for the inter-socket task pools: the paper's protocol funnels all
/// inter-socket pool traffic through squad head workers precisely so that a
/// simple lock suffices; contention is M-way at most.
/// Satisfies Lockable, so it works with std::lock_guard / std::unique_lock.
class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() noexcept {
    int spins = 1;
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      // Spin read-only until the lock looks free, with capped backoff.
      while (flag_.load(std::memory_order_relaxed)) {
        for (int i = 0; i < spins; ++i) cpu_relax();
        if (spins < 1024) spins <<= 1;
      }
    }
  }

  bool try_lock() noexcept {
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

}  // namespace cab::util
