#pragma once

#include <atomic>

#include "util/sync_policy.hpp"

namespace cab::util {

/// Test-and-test-and-set spin lock with exponential backoff.
///
/// Used for the inter-socket task pools: the paper's protocol funnels all
/// inter-socket pool traffic through squad head workers precisely so that a
/// simple lock suffices; contention is M-way at most.
/// Satisfies Lockable, so it works with std::lock_guard / std::unique_lock.
///
/// Templated on the Sync policy (util/sync_policy.hpp) so the identical
/// acquire/release protocol is exhaustively checked under `chk::atomic` in
/// tests/test_model_check.cpp; `SpinLock` is the production instantiation.
template <typename Sync = RealSync>
class BasicSpinLock {
 public:
  BasicSpinLock() = default;
  BasicSpinLock(const BasicSpinLock&) = delete;
  BasicSpinLock& operator=(const BasicSpinLock&) = delete;

  void lock() noexcept {
    int spins = 1;
    for (;;) {
      // mo: exchange(acquire) — the winning probe is the lock acquisition;
      // pairs with the release store in unlock() so the previous critical
      // section happens-before this one.
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      // Spin read-only until the lock looks free, with capped backoff.
      // mo: relaxed — the probe loop decides nothing; the next exchange
      // re-synchronizes.
      while (flag_.load(std::memory_order_relaxed)) {
        Sync::spin_pause(spins);
      }
    }
  }

  bool try_lock() noexcept {
    // mo: relaxed pre-check + exchange(acquire), same pairing as lock().
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept {
    // mo: release — publishes the critical section to the next acquirer.
    flag_.store(false, std::memory_order_release);
  }

 private:
  // pad-ok: the lock is embedded in its owner (LockedDeque pads around the
  // pair as a unit); padding every lock instance would bloat per-frame state.
  typename Sync::template atomic_t<bool> flag_{false};
};

using SpinLock = BasicSpinLock<RealSync>;

}  // namespace cab::util
