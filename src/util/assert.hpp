#pragma once

#include <cstdio>
#include <cstdlib>

/// CAB_CHECK: always-on invariant check. The scheduler and simulator are the
/// subject of this library, so their internal invariants stay verified even
/// in release builds; the cost is a predictable branch on cold paths only.
#define CAB_CHECK(cond, msg)                                                  \
  do {                                                                        \
    if (!(cond)) [[unlikely]] {                                               \
      std::fprintf(stderr, "CAB_CHECK failed at %s:%d: %s\n  %s\n", __FILE__, \
                   __LINE__, #cond, msg);                                     \
      std::abort();                                                           \
    }                                                                         \
  } while (0)
