#pragma once

#include <cstddef>
#include <new>

namespace cab::util {

/// Size every concurrency-sensitive object is padded to. We deliberately use
/// a fixed 64 rather than std::hardware_destructive_interference_size so the
/// ABI of padded types does not change across compilers/flags.
inline constexpr std::size_t kCacheLineSize = 64;

/// Wraps a value in its own cache line to prevent false sharing between
/// adjacent per-worker slots (e.g. steal counters, deque anchors).
template <typename T>
struct alignas(kCacheLineSize) CacheAligned {
  T value{};

  CacheAligned() = default;
  explicit CacheAligned(const T& v) : value(v) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
};

}  // namespace cab::util
