#pragma once

#include <cstdint>

namespace cab::util {

/// SplitMix64: used to expand a user seed into well-distributed per-worker
/// stream seeds. Reference: Steele, Lea & Flood, "Fast Splittable
/// Pseudorandom Number Generators" (OOPSLA 2014).
inline std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// xorshift64* PRNG. Tiny, fast, and state is a single word, which keeps a
/// per-worker RNG inside one cache line. Quality is more than sufficient for
/// victim selection; all schedulers and simulators seed it explicitly so
/// every run is reproducible.
class Xorshift64 {
 public:
  explicit Xorshift64(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept {
    // Avoid the all-zero fixed point and decorrelate small seeds.
    std::uint64_t s = seed;
    state_ = splitmix64(s) | 1ull;
  }

  std::uint64_t next() noexcept {
    std::uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545F4914F6CDD1Dull;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    // Multiply-shift range reduction (Lemire); bias is negligible for the
    // small bounds (worker counts) used here.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

}  // namespace cab::util
