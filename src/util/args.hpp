#pragma once

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace cab::util::args {

/// Parses a human duration — "250ns", "10us", "5ms", "10s", "2m", plus
/// fractional values like "1.5s" — into nanoseconds. A bare number is
/// rejected (the unit is load-bearing: "--duration=10" hides a 1000x
/// ambiguity), as is an unknown suffix, a negative value, or trailing
/// junk. Returns false and leaves `out_ns` untouched on any rejection.
inline bool parse_duration(const std::string& s, std::uint64_t& out_ns) {
  if (s.empty()) return false;
  const char* c = s.c_str();
  char* end = nullptr;
  const double v = std::strtod(c, &end);
  if (end == c || v < 0) return false;  // no leading number, or negative
  const std::string unit(end);
  double scale = 0;
  if (unit == "ns") {
    scale = 1;
  } else if (unit == "us") {
    scale = 1e3;
  } else if (unit == "ms") {
    scale = 1e6;
  } else if (unit == "s") {
    scale = 1e9;
  } else if (unit == "m") {
    scale = 60e9;
  } else {
    return false;  // bare number or unknown suffix
  }
  out_ns = static_cast<std::uint64_t>(v * scale);
  return true;
}

/// Parses an arrival rate — "5000/s", "300/m", "2.5/ms" (denominator =
/// any parse_duration unit) — into events per second. A bare number means
/// per second would be the obvious default, but it is rejected for the
/// same reason bare durations are: make the caller write the unit once
/// instead of every reader guessing it. Returns false (out untouched)
/// on rejection, including a zero-length or zero-duration denominator.
inline bool parse_rate(const std::string& s, double& out_per_sec) {
  const std::size_t slash = s.find('/');
  if (slash == std::string::npos || slash == 0) return false;
  const std::string num = s.substr(0, slash);
  const char* c = num.c_str();
  char* end = nullptr;
  const double v = std::strtod(c, &end);
  if (end == c || *end != '\0' || v < 0) return false;
  // Denominator: a bare unit ("/s") or a counted one ("/10s").
  std::string den = s.substr(slash + 1);
  if (den.empty()) return false;
  if (!std::isdigit(static_cast<unsigned char>(den[0])) && den[0] != '.') {
    den = "1" + den;
  }
  std::uint64_t den_ns = 0;
  if (!parse_duration(den, den_ns) || den_ns == 0) return false;
  out_per_sec = v * 1e9 / static_cast<double>(den_ns);
  return true;
}

/// Value of `--<name>=<v>` (or `--<name> <v>`) in argv, else "".
/// `name` is the bare flag name without dashes, e.g. "trace". When the
/// flag repeats, the first occurrence wins (use values() for all).
inline std::string value(int argc, char** argv, const char* name) {
  const std::string eq = std::string("--") + name + "=";
  const std::string sep = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind(eq, 0) == 0) return a.substr(eq.size());
    if (a == sep && i + 1 < argc) return argv[i + 1];
  }
  return "";
}

/// Every value of a repeatable `--<name>=<v>` / `--<name> <v>` flag, in
/// argv order (e.g. cab_bench_report's --threshold overrides).
inline std::vector<std::string> values(int argc, char** argv,
                                       const char* name) {
  const std::string eq = std::string("--") + name + "=";
  const std::string sep = std::string("--") + name;
  std::vector<std::string> out;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind(eq, 0) == 0) {
      out.push_back(a.substr(eq.size()));
    } else if (a == sep && i + 1 < argc) {
      out.push_back(argv[++i]);
    }
  }
  return out;
}

/// Value of `--<name>=<v>` only — for flags that are meaningful bare
/// (e.g. "--attrib" vs "--attrib=out.json"), where the space-separated
/// form would swallow the next flag as a value. Returns "" when the flag
/// is absent or bare.
inline std::string eq_value(int argc, char** argv, const char* name) {
  const std::string eq = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind(eq, 0) == 0) return a.substr(eq.size());
  }
  return "";
}

/// True when `--<name>` appears, bare or with a value.
inline bool has_flag(int argc, char** argv, const char* name) {
  const std::string eq = std::string("--") + name + "=";
  const std::string sep = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == sep || a.rfind(eq, 0) == 0) return true;
  }
  return false;
}

/// One known flag for reject_unknown(): its bare name and whether a
/// space-separated value may follow it ("--trace out.json").
struct FlagSpec {
  const char* name;
  bool takes_value = false;
};

/// Positional (non `--`) arguments, skipping the values of known
/// space-separated flags.
inline std::vector<std::string> positionals(
    int argc, char** argv, const std::vector<FlagSpec>& known) {
  std::vector<std::string> out;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--", 0) == 0) {
      for (const FlagSpec& f : known) {
        if (f.takes_value && a == std::string("--") + f.name &&
            i + 1 < argc) {
          ++i;  // the next arg is this flag's value, not a positional
          break;
        }
      }
      continue;
    }
    out.push_back(a);
  }
  return out;
}

/// First `--` argument not in `known`, else "". The unknown-flag
/// rejection every CLI shares: a misspelled --json must not silently
/// discard an hour-long run's record. Matches both "--name=..." and
/// "--name value" forms.
inline std::string first_unknown(int argc, char** argv,
                                 const std::vector<FlagSpec>& known) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--", 0) != 0) continue;
    bool matched = false;
    for (const FlagSpec& f : known) {
      const std::string sep = std::string("--") + f.name;
      if (a == sep || a.rfind(sep + "=", 0) == 0) {
        matched = true;
        if (a == sep && f.takes_value) ++i;  // skip the value
        break;
      }
    }
    if (!matched) return a;
  }
  return "";
}

}  // namespace cab::util::args
