#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace cab::util::args {

/// Value of `--<name>=<v>` (or `--<name> <v>`) in argv, else "".
/// `name` is the bare flag name without dashes, e.g. "trace". When the
/// flag repeats, the first occurrence wins (use values() for all).
inline std::string value(int argc, char** argv, const char* name) {
  const std::string eq = std::string("--") + name + "=";
  const std::string sep = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind(eq, 0) == 0) return a.substr(eq.size());
    if (a == sep && i + 1 < argc) return argv[i + 1];
  }
  return "";
}

/// Every value of a repeatable `--<name>=<v>` / `--<name> <v>` flag, in
/// argv order (e.g. cab_bench_report's --threshold overrides).
inline std::vector<std::string> values(int argc, char** argv,
                                       const char* name) {
  const std::string eq = std::string("--") + name + "=";
  const std::string sep = std::string("--") + name;
  std::vector<std::string> out;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind(eq, 0) == 0) {
      out.push_back(a.substr(eq.size()));
    } else if (a == sep && i + 1 < argc) {
      out.push_back(argv[++i]);
    }
  }
  return out;
}

/// Value of `--<name>=<v>` only — for flags that are meaningful bare
/// (e.g. "--attrib" vs "--attrib=out.json"), where the space-separated
/// form would swallow the next flag as a value. Returns "" when the flag
/// is absent or bare.
inline std::string eq_value(int argc, char** argv, const char* name) {
  const std::string eq = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind(eq, 0) == 0) return a.substr(eq.size());
  }
  return "";
}

/// True when `--<name>` appears, bare or with a value.
inline bool has_flag(int argc, char** argv, const char* name) {
  const std::string eq = std::string("--") + name + "=";
  const std::string sep = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == sep || a.rfind(eq, 0) == 0) return true;
  }
  return false;
}

/// One known flag for reject_unknown(): its bare name and whether a
/// space-separated value may follow it ("--trace out.json").
struct FlagSpec {
  const char* name;
  bool takes_value = false;
};

/// Positional (non `--`) arguments, skipping the values of known
/// space-separated flags.
inline std::vector<std::string> positionals(
    int argc, char** argv, const std::vector<FlagSpec>& known) {
  std::vector<std::string> out;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--", 0) == 0) {
      for (const FlagSpec& f : known) {
        if (f.takes_value && a == std::string("--") + f.name &&
            i + 1 < argc) {
          ++i;  // the next arg is this flag's value, not a positional
          break;
        }
      }
      continue;
    }
    out.push_back(a);
  }
  return out;
}

/// First `--` argument not in `known`, else "". The unknown-flag
/// rejection every CLI shares: a misspelled --json must not silently
/// discard an hour-long run's record. Matches both "--name=..." and
/// "--name value" forms.
inline std::string first_unknown(int argc, char** argv,
                                 const std::vector<FlagSpec>& known) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--", 0) != 0) continue;
    bool matched = false;
    for (const FlagSpec& f : known) {
      const std::string sep = std::string("--") + f.name;
      if (a == sep || a.rfind(sep + "=", 0) == 0) {
        matched = true;
        if (a == sep && f.takes_value) ++i;  // skip the value
        break;
      }
    }
    if (!matched) return a;
  }
  return "";
}

}  // namespace cab::util::args
