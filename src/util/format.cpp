#include "util/format.hpp"

#include <algorithm>
#include <cstdio>

namespace cab::util {

std::string human_bytes(std::uint64_t bytes) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int unit = 0;
  double v = static_cast<double>(bytes);
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, kUnits[unit]);
  }
  return buf;
}

std::string human_count(std::uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int run = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (run == 3) {
      out.push_back(',');
      run = 0;
    }
    out.push_back(*it);
    ++run;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string format_fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& cells, std::string& out) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) out += " | ";
      out += cells[c];
      out.append(widths[c] - cells[c].size(), ' ');
    }
    out += '\n';
  };

  std::string out;
  emit_row(headers_, out);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) out += "-+-";
    out.append(widths[c], '-');
  }
  out += '\n';
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

}  // namespace cab::util
