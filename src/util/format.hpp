#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cab::util {

/// "6.0 MiB", "512.0 KiB", "17 B" — for topology and report printing.
std::string human_bytes(std::uint64_t bytes);

/// "12,345,678" — thousands separators for miss-count tables.
std::string human_count(std::uint64_t n);

/// Fixed-point decimal: format_fixed(0.687, 3) == "0.687".
std::string format_fixed(double v, int decimals);

/// Minimal ASCII table printer used by the experiment benches so their
/// output mirrors the paper's tables row-for-row.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Render with column widths fitted to content, e.g.
  ///   name     | Cilk  | CAB
  ///   ---------+-------+------
  ///   GE       | 42    | 17
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cab::util
