#pragma once

#include <cstdint>

#include "dag/task_graph.hpp"

namespace cab::dag {

/// Regular B-ary divide-and-conquer tree: level 0 is "main" (divide_work),
/// which spawns one level-1 task; every non-leaf task spawns `branching`
/// children; leaves (at level `depth`) carry `leaf_work`. This is the shape
/// of Fig. 1 and of all the paper's recursive benchmarks.
TaskGraph make_recursive_dnc(std::int32_t branching, std::int32_t depth,
                             std::uint64_t leaf_work,
                             std::uint64_t divide_work = 1,
                             std::uint64_t join_work = 0);

/// Flat task generation (Section IV-D): main spawns `count` children at
/// level 1 in one go.
TaskGraph make_flat(std::int32_t count, std::uint64_t task_work);

/// Irregular random spawn tree for property tests: child counts in
/// [0, max_branching], work in [1, max_work], expansion stops at max_nodes.
/// Deterministic in `seed`.
TaskGraph make_irregular(std::uint64_t seed, std::int32_t max_branching,
                         std::int32_t max_depth, std::int32_t max_nodes,
                         std::uint64_t max_work);

}  // namespace cab::dag
