#include "dag/flexible.hpp"

#include <algorithm>
#include <queue>

#include "util/assert.hpp"

namespace cab::dag {

std::size_t NodeTiers::cut_count() const {
  std::size_t n = 0;
  for (std::uint8_t v : is_leaf_inter) n += v;
  return n;
}

NodeTiers NodeTiers::from_boundary_level(const TaskGraph& g,
                                         const TierAssignment& tier) {
  NodeTiers t;
  t.is_inter.assign(g.size(), 0);
  t.is_leaf_inter.assign(g.size(), 0);
  for (std::size_t i = 0; i < g.size(); ++i) {
    const auto& n = g.node(static_cast<NodeId>(i));
    t.is_inter[i] = tier.is_inter(n.level) ? 1 : 0;
    t.is_leaf_inter[i] = tier.is_leaf_inter(n.level) ? 1 : 0;
  }
  return t;
}

NodeTiers footprint_partition(const TaskGraph& g, const TraceBytesFn& bytes,
                              std::uint64_t sc_bytes, std::int32_t sockets) {
  CAB_CHECK(!g.empty(), "cannot partition an empty graph");
  CAB_CHECK(sockets >= 1, "socket count must be >= 1");
  const std::size_t n = g.size();

  // Bottom-up subtree footprints (children have larger ids).
  std::vector<std::uint64_t> footprint(n, 0);
  for (std::size_t i = n; i-- > 0;) {
    const TaskGraph::Node& node = g.node(static_cast<NodeId>(i));
    std::uint64_t f = bytes(node.pre_trace) + bytes(node.post_trace);
    for (NodeId c : node.children) f += footprint[static_cast<std::size_t>(c)];
    footprint[i] = f;
  }

  NodeTiers tiers;
  tiers.is_inter.assign(n, 0);
  tiers.is_leaf_inter.assign(n, 0);

  // Phase 1: top-down, cut at the highest nodes that fit the cache.
  // Nodes above cuts are inter; at/below cuts nothing more is examined.
  std::vector<NodeId> cuts;
  std::queue<NodeId> frontier;
  frontier.push(g.root());
  while (!frontier.empty()) {
    NodeId id = frontier.front();
    frontier.pop();
    const TaskGraph::Node& node = g.node(id);
    const bool fits = footprint[static_cast<std::size_t>(id)] <= sc_bytes;
    if (fits || node.children.empty()) {
      cuts.push_back(id);
      continue;
    }
    tiers.is_inter[static_cast<std::size_t>(id)] = 1;
    for (NodeId c : node.children) frontier.push(c);
  }

  // Phase 2: while fewer cuts than sockets, split the largest splittable
  // cut (Eq. 1's "at least one leaf inter-socket task per squad").
  auto splittable = [&](NodeId id) {
    return !g.node(id).children.empty();
  };
  while (static_cast<std::int32_t>(cuts.size()) < sockets) {
    auto best = cuts.end();
    for (auto it = cuts.begin(); it != cuts.end(); ++it) {
      if (!splittable(*it)) continue;
      if (best == cuts.end() ||
          footprint[static_cast<std::size_t>(*it)] >
              footprint[static_cast<std::size_t>(*best)]) {
        best = it;
      }
    }
    if (best == cuts.end()) break;  // nothing splittable left
    NodeId victim = *best;
    cuts.erase(best);
    tiers.is_inter[static_cast<std::size_t>(victim)] = 1;
    for (NodeId c : g.node(victim).children) cuts.push_back(c);
  }

  for (NodeId c : cuts) {
    tiers.is_leaf_inter[static_cast<std::size_t>(c)] = 1;
    // Cut nodes belong to the inter tier too (they are acquired through
    // the inter-socket pools, like level-BL tasks under uniform BL).
    tiers.is_inter[static_cast<std::size_t>(c)] = 1;
  }
  return tiers;
}

}  // namespace cab::dag
