#include "dag/bounds.hpp"

#include <algorithm>
#include <vector>

#include "util/format.hpp"

namespace cab::dag {

TierAnalysis analyze_tiers(const TaskGraph& g, const TierAssignment& tier) {
  TierAnalysis a;
  if (g.empty()) return a;

  // Bottom-up sweep (children have larger ids): per-node subtree work,
  // span, and live-frame depth.
  const std::size_t n = g.size();
  std::vector<std::uint64_t> sub_work(n, 0), sub_span(n, 0), depth(n, 0);
  for (std::size_t i = n; i-- > 0;) {
    const TaskGraph::Node& node = g.node(static_cast<NodeId>(i));
    std::uint64_t w = node.pre_work + node.post_work;
    std::uint64_t child_span = 0, child_span_sum = 0, child_depth = 0;
    for (NodeId c : node.children) {
      w += sub_work[static_cast<std::size_t>(c)];
      child_span = std::max(child_span, sub_span[static_cast<std::size_t>(c)]);
      child_span_sum += sub_span[static_cast<std::size_t>(c)];
      child_depth =
          std::max(child_depth, depth[static_cast<std::size_t>(c)]);
    }
    sub_work[i] = w;
    sub_span[i] = node.pre_work + node.post_work +
                  (node.sequential ? child_span_sum : child_span);
    depth[i] = 1 + child_depth;
  }

  a.t1_total = g.total_work();
  a.tinf_total = g.critical_path();
  a.serial_live_frames = depth[0];

  for (std::size_t i = 0; i < n; ++i) {
    const TaskGraph::Node& node = g.node(static_cast<NodeId>(i));
    if (tier.is_leaf_inter(node.level)) {
      ++a.leaf_inter_count;
      a.t1_intra += sub_work[i];
      a.tinf_intra_max = std::max(a.tinf_intra_max, sub_span[i]);
      a.tinf_intra_sum += sub_span[i];
    } else if (tier.is_inter(node.level)) {
      a.t1_inter += node.pre_work + node.post_work;
    } else if (node.level == 0 && tier.bl == 0) {
      // BL == 0: everything is one intra tier rooted at the root.
      a.t1_intra = sub_work[0];
      a.tinf_intra_max = a.tinf_intra_sum = sub_span[0];
      a.leaf_inter_count = 1;
      break;
    }
  }
  return a;
}

double time_bound_eq13(const TierAnalysis& a, std::int32_t sockets,
                       std::int32_t cores_per_socket) {
  const double m = sockets;
  const double mn = static_cast<double>(sockets) * cores_per_socket;
  return static_cast<double>(a.t1_inter) / m +
         static_cast<double>(a.t1_intra) / mn +
         static_cast<double>(a.tinf_total);
}

std::uint64_t space_bound_eq15(const TierAnalysis& a, std::int32_t sockets,
                               std::int32_t cores_per_socket) {
  const std::uint64_t s1 = a.serial_live_frames;
  const std::uint64_t workers =
      static_cast<std::uint64_t>(sockets) *
      static_cast<std::uint64_t>(cores_per_socket);
  return std::max(a.leaf_inter_count * s1, workers * s1);
}

std::string TierAnalysis::summary() const {
  std::string s;
  s += "T1=" + util::human_count(t1_total);
  s += " (inter " + util::human_count(t1_inter) + ", intra " +
       util::human_count(t1_intra) + ")";
  s += " Tinf=" + util::human_count(tinf_total);
  s += " K=" + util::human_count(leaf_inter_count);
  s += " S1=" + util::human_count(serial_live_frames) + " frames";
  return s;
}

}  // namespace cab::dag
