#include "dag/task_graph.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace cab::dag {

NodeId TaskGraph::add_root(std::uint64_t pre_work, std::uint64_t post_work) {
  CAB_CHECK(nodes_.empty(), "root must be the first node");
  Node n;
  n.pre_work = pre_work;
  n.post_work = post_work;
  nodes_.push_back(std::move(n));
  return 0;
}

NodeId TaskGraph::add_child(NodeId parent, std::uint64_t pre_work,
                            std::uint64_t post_work) {
  CAB_CHECK(parent >= 0 && static_cast<std::size_t>(parent) < nodes_.size(),
            "parent id out of range");
  Node n;
  n.parent = parent;
  n.level = nodes_[static_cast<std::size_t>(parent)].level + 1;
  n.pre_work = pre_work;
  n.post_work = post_work;
  NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::move(n));
  nodes_[static_cast<std::size_t>(parent)].children.push_back(id);
  return id;
}

void TaskGraph::set_traces(NodeId n, std::int32_t pre_trace,
                           std::int32_t post_trace) {
  CAB_CHECK(n >= 0 && static_cast<std::size_t>(n) < nodes_.size(),
            "node id out of range");
  nodes_[static_cast<std::size_t>(n)].pre_trace = pre_trace;
  nodes_[static_cast<std::size_t>(n)].post_trace = post_trace;
}

void TaskGraph::set_sequential(NodeId n, bool sequential) {
  CAB_CHECK(n >= 0 && static_cast<std::size_t>(n) < nodes_.size(),
            "node id out of range");
  nodes_[static_cast<std::size_t>(n)].sequential = sequential;
}

std::uint64_t TaskGraph::total_work() const {
  std::uint64_t sum = 0;
  for (const Node& n : nodes_) sum += n.pre_work + n.post_work;
  return sum;
}

std::uint64_t TaskGraph::critical_path() const {
  if (nodes_.empty()) return 0;
  // Children have larger ids than parents, so a reverse id sweep is a
  // bottom-up (post-order-compatible) traversal with no recursion.
  std::vector<std::uint64_t> span(nodes_.size(), 0);
  for (std::size_t i = nodes_.size(); i-- > 0;) {
    const Node& n = nodes_[i];
    std::uint64_t child_part = 0;
    if (n.sequential) {
      for (NodeId c : n.children)
        child_part += span[static_cast<std::size_t>(c)];
    } else {
      for (NodeId c : n.children)
        child_part = std::max(child_part, span[static_cast<std::size_t>(c)]);
    }
    span[i] = n.pre_work + child_part + n.post_work;
  }
  return span[0];
}

std::int32_t TaskGraph::max_level() const {
  std::int32_t m = 0;
  for (const Node& n : nodes_) m = std::max(m, n.level);
  return m;
}

std::int32_t TaskGraph::branching_degree() const {
  std::size_t b = 0;
  for (const Node& n : nodes_) b = std::max(b, n.children.size());
  return static_cast<std::int32_t>(b);
}

std::vector<NodeId> TaskGraph::nodes_at_level(std::int32_t level) const {
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    if (nodes_[i].level == level) out.push_back(static_cast<NodeId>(i));
  return out;
}

std::size_t TaskGraph::count_at_level(std::int32_t level) const {
  std::size_t c = 0;
  for (const Node& n : nodes_)
    if (n.level == level) ++c;
  return c;
}

bool TaskGraph::validate() const {
  if (nodes_.empty()) return true;
  if (nodes_[0].parent != kNoNode || nodes_[0].level != 0) return false;
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.parent < 0 || static_cast<std::size_t>(n.parent) >= i) return false;
    const Node& p = nodes_[static_cast<std::size_t>(n.parent)];
    if (n.level != p.level + 1) return false;
    if (std::find(p.children.begin(), p.children.end(),
                  static_cast<NodeId>(i)) == p.children.end())
      return false;
  }
  return true;
}

}  // namespace cab::dag
