#pragma once

#include <cstdint>
#include <string>

namespace cab::dag {

/// Inputs of the automatic DAG partitioning model (Section III-B).
struct PartitionParams {
  /// Branching degree B of the recursive divide-and-conquer procedure.
  std::int32_t branching = 2;
  /// Socket count M of the MSMC machine.
  std::int32_t sockets = 1;
  /// Input data size Sd in bytes.
  std::uint64_t input_bytes = 0;
  /// Shared (per-socket) cache size Sc in bytes.
  std::uint64_t shared_cache_bytes = 1;
};

/// Computes the boundary level BL of Eq. 4:
///
///   BL = max( ceil(log_B M + 1), ceil(log_B (Sd/Sc) + 1) )
///
/// realized in exact integer arithmetic as the smallest BL >= 1 with
///   B^(BL-1) >= M            (Eq. 1: >= one leaf inter-socket task/squad)
///   B^(BL-1) >= ceil(Sd/Sc)  (Eq. 2: leaf inter task data fits in Sc)
///
/// Returns 0 when sockets == 1 (Algorithm II step 2: single-socket machines
/// degenerate to classic work-stealing, every task intra-socket).
std::int32_t boundary_level(const PartitionParams& p);

/// Number of leaf inter-socket tasks a regular B-ary D&C DAG has at the
/// boundary level: B^(BL-1) (paper Section III-B). Returns 1 for BL <= 1.
std::uint64_t leaf_inter_task_count(std::int32_t branching, std::int32_t bl);

/// Section III-B's *third* constraint, which Eq. 4 leaves in prose: "a
/// leaf inter-socket task should be large enough to enable a squad to
/// have sufficient intra-socket tasks". When Eq. 4's cache constraint
/// pushes BL to (or past) the DAG's leaf level, every squad degenerates
/// to one worker (the paper's own BL=6 discussion under Fig. 5). This
/// clamps `bl` so each leaf inter-socket subtree keeps at least
/// cores_per_socket leaves — without ever violating Eq. 1 (>= one leaf
/// inter-socket task per squad), which takes priority.
///
/// `leaf_level` is the DAG level of the recursion's leaf tasks.
std::int32_t clamp_boundary_level(std::int32_t bl, std::int32_t leaf_level,
                                  std::int32_t cores_per_socket,
                                  std::int32_t sockets,
                                  std::int32_t branching);

/// Tier classification for a given boundary level, mirroring the modified
/// cilk2c of Section IV-B: a spawn by a task at level < BL produces an
/// inter-socket child, so tasks at level <= BL form the inter-socket tier
/// and tasks at level == BL are the *leaf* inter-socket tasks.
struct TierAssignment {
  std::int32_t bl = 0;

  /// True when a task at `level` belongs to the inter-socket tier.
  /// With bl == 0 nothing is inter-socket (classic stealing).
  bool is_inter(std::int32_t level) const { return bl > 0 && level <= bl; }
  bool is_intra(std::int32_t level) const { return !is_inter(level); }
  bool is_leaf_inter(std::int32_t level) const {
    return bl > 0 && level == bl;
  }
  /// Policy choice of Section III-C: parent-first while expanding the
  /// inter-socket tier, child-first inside a squad.
  bool spawns_inter_child(std::int32_t parent_level) const {
    return bl > 0 && parent_level < bl;
  }

  std::string describe() const;
};

}  // namespace cab::dag
