#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "dag/partition.hpp"
#include "dag/task_graph.hpp"

namespace cab::dag {

/// Per-node tier assignment — the generalization the paper proposes as
/// future work (Section VII): "a more flexible DAG partitioning method
/// that can decide inter-socket and intra-socket tasks with heuristic
/// information ... instead of a single boundary level".
///
/// A *cut node* roots a shared-cache residency unit (the flexible
/// analogue of a leaf inter-socket task); its proper ancestors form the
/// inter-socket tier; everything below is intra-socket.
struct NodeTiers {
  std::vector<std::uint8_t> is_inter;       ///< node in the inter tier
  std::vector<std::uint8_t> is_leaf_inter;  ///< node is a cut point

  bool inter(NodeId n) const {
    return is_inter[static_cast<std::size_t>(n)] != 0;
  }
  bool leaf_inter(NodeId n) const {
    return is_leaf_inter[static_cast<std::size_t>(n)] != 0;
  }
  std::size_t cut_count() const;

  /// Uniform-BL assignment expressed as NodeTiers (for comparison).
  static NodeTiers from_boundary_level(const TaskGraph& g,
                                       const TierAssignment& tier);
};

/// Returns the total distinct bytes a trace id touches; -1 (no trace)
/// must map to 0. Passed in so dag/ stays independent of cachesim.
using TraceBytesFn = std::function<std::uint64_t(std::int32_t)>;

/// Footprint-driven partition: cut the spawn tree at the *highest* nodes
/// whose subtree data footprint fits the shared cache (<= sc_bytes),
/// then, while there are fewer cuts than `sockets`, split the largest cut
/// further. Guarantees >= min(sockets, reachable) cuts and never cuts a
/// childless node's parent chain below the root.
///
/// Footprints are the sum of trace bytes in the subtree — an upper bound
/// that ignores overlap, exactly like Eq. 2's Sd/B^(BL-1) estimate.
NodeTiers footprint_partition(const TaskGraph& g, const TraceBytesFn& bytes,
                              std::uint64_t sc_bytes, std::int32_t sockets);

}  // namespace cab::dag
