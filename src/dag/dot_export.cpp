#include "dag/dot_export.hpp"

namespace cab::dag {

std::string to_dot(const TaskGraph& g, const TierAssignment& tier,
                   std::size_t max_nodes) {
  std::string out;
  out += "digraph cab_dag {\n";
  out += "  rankdir=TB;\n";
  out += "  node [shape=box, style=filled, fontname=\"monospace\"];\n";

  const std::size_t limit = g.size() < max_nodes ? g.size() : max_nodes;
  for (std::size_t i = 0; i < limit; ++i) {
    const TaskGraph::Node& n = g.node(static_cast<NodeId>(i));
    std::string color = "white";
    std::string extra;
    if (tier.is_leaf_inter(n.level)) {
      color = "lightsteelblue";
      extra = ", penwidth=2";
    } else if (tier.is_inter(n.level)) {
      color = "lightgrey";
    }
    out += "  n" + std::to_string(i) + " [label=\"L" +
           std::to_string(n.level) + "\\nw=" + std::to_string(n.pre_work);
    if (n.post_work > 0) out += "+" + std::to_string(n.post_work);
    if (n.sequential) out += "\\nseq";
    out += "\", fillcolor=" + color + extra + "];\n";
  }
  for (std::size_t i = 0; i < limit; ++i) {
    const TaskGraph::Node& n = g.node(static_cast<NodeId>(i));
    for (NodeId c : n.children) {
      if (static_cast<std::size_t>(c) >= limit) continue;
      out += "  n" + std::to_string(i) + " -> n" + std::to_string(c) + ";\n";
    }
  }
  if (limit < g.size()) {
    out += "  truncated [label=\"... " + std::to_string(g.size() - limit) +
           " more nodes\", fillcolor=mistyrose];\n";
  }
  out += "}\n";
  return out;
}

}  // namespace cab::dag
