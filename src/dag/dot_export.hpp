#pragma once

#include <string>

#include "dag/partition.hpp"
#include "dag/task_graph.hpp"

namespace cab::dag {

/// Renders the DAG as Graphviz DOT, one node per task labeled with its
/// level and work, colored by tier (inter-socket tier shaded, leaf
/// inter-socket tasks outlined, intra-socket tier plain) — Fig. 1 of the
/// paper, generated. Pipe through `dot -Tsvg` to render.
///
/// `max_nodes` truncates huge graphs (an ellipsis node marks the cut).
std::string to_dot(const TaskGraph& g, const TierAssignment& tier,
                   std::size_t max_nodes = 256);

}  // namespace cab::dag
