#include "dag/partition.hpp"

#include <limits>

#include "util/assert.hpp"

namespace cab::dag {

std::int32_t boundary_level(const PartitionParams& p) {
  CAB_CHECK(p.sockets >= 1, "socket count must be >= 1");
  // M == 1 is the degenerate classic-work-stealing machine (DESIGN.md):
  // BL = 0 unconditionally, before the parameters Eq. 4 would divide by
  // are validated — a single-socket caller may not know B or Sc at all
  // (e.g. Sd < Sc with an irregular DAG), and must still get BL = 0
  // deterministically instead of an assertion failure.
  if (p.sockets == 1) return 0;
  CAB_CHECK(p.branching >= 2, "branching degree must be >= 2");
  CAB_CHECK(p.shared_cache_bytes >= 1, "shared cache size must be >= 1");

  const std::uint64_t m = static_cast<std::uint64_t>(p.sockets);
  // ceil(Sd / Sc): the factor the input must be split by to fit a socket.
  const std::uint64_t split =
      p.input_bytes == 0
          ? 1
          : (p.input_bytes + p.shared_cache_bytes - 1) / p.shared_cache_bytes;
  const std::uint64_t target = m > split ? m : split;

  // Smallest BL >= 1 with B^(BL-1) >= target.
  std::int32_t bl = 1;
  std::uint64_t leaves = 1;  // B^(BL-1)
  while (leaves < target) {
    CAB_CHECK(bl < 64, "boundary level does not converge");
    // Overflow-safe multiply; once leaves would overflow it certainly
    // exceeds any realistic target.
    if (leaves > std::numeric_limits<std::uint64_t>::max() /
                     static_cast<std::uint64_t>(p.branching)) {
      ++bl;
      break;
    }
    leaves *= static_cast<std::uint64_t>(p.branching);
    ++bl;
  }
  return bl;
}

std::uint64_t leaf_inter_task_count(std::int32_t branching, std::int32_t bl) {
  if (bl <= 1) return 1;
  std::uint64_t n = 1;
  for (std::int32_t i = 1; i < bl; ++i) {
    CAB_CHECK(n <= std::numeric_limits<std::uint64_t>::max() /
                       static_cast<std::uint64_t>(branching),
              "leaf inter-socket task count overflows");
    n *= static_cast<std::uint64_t>(branching);
  }
  return n;
}

std::int32_t clamp_boundary_level(std::int32_t bl, std::int32_t leaf_level,
                                  std::int32_t cores_per_socket,
                                  std::int32_t sockets,
                                  std::int32_t branching) {
  if (bl <= 0) return bl;
  CAB_CHECK(branching >= 2, "branching degree must be >= 2");
  // Levels needed below a leaf inter-socket task so its subtree holds at
  // least cores_per_socket leaves: smallest d with B^d >= N.
  std::int32_t depth_for_squad = 0;
  std::uint64_t width = 1;
  while (width < static_cast<std::uint64_t>(cores_per_socket)) {
    width *= static_cast<std::uint64_t>(branching);
    ++depth_for_squad;
  }
  std::int32_t cap = leaf_level - depth_for_squad;
  // Eq. 1 floor: at least one leaf inter-socket task per squad.
  std::int32_t floor_bl = 1;
  std::uint64_t leaves = 1;
  while (leaves < static_cast<std::uint64_t>(sockets)) {
    leaves *= static_cast<std::uint64_t>(branching);
    ++floor_bl;
  }
  std::int32_t clamped = bl < cap ? bl : cap;
  return clamped > floor_bl ? clamped : floor_bl;
}

std::string TierAssignment::describe() const {
  if (bl == 0) return "BL=0 (classic work-stealing, all tasks intra-socket)";
  return "BL=" + std::to_string(bl) + " (levels 0.." + std::to_string(bl) +
         " inter-socket, leaf inter-socket tasks at level " +
         std::to_string(bl) + ")";
}

}  // namespace cab::dag
