#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cab::dag {

/// Node identifier inside a TaskGraph. Nodes are created parent-before-child
/// so ids are a topological order.
using NodeId = std::int32_t;
inline constexpr NodeId kNoNode = -1;

/// Execution DAG of a fork-join program (Section I / III-E of the paper).
///
/// The graph is a *spawn tree* with fork-join (series-parallel) semantics:
/// a task runs its `pre` part, spawns its children, syncs, then runs its
/// `post` part (e.g. the merge step of mergesort). This is exactly the
/// class of DAGs Cilk-style spawn/sync can express and the class the
/// paper's model (Eq. 5-15) reasons about.
///
/// `level` follows the paper's numbering: the task executing `main` is the
/// only node at level 0; a task spawned by a level-i task is at level i+1.
///
/// Work is in abstract units (the simulator's cost model converts units to
/// virtual cycles). `pre_trace` / `post_trace` are opaque handles into an
/// application-owned trace store describing the memory touched by each
/// part; kNoNode-like -1 means "touches nothing".
class TaskGraph {
 public:
  struct Node {
    NodeId parent = kNoNode;
    std::int32_t level = 0;
    std::uint64_t pre_work = 0;
    std::uint64_t post_work = 0;
    std::int32_t pre_trace = -1;
    std::int32_t post_trace = -1;
    /// When true the children are *phases*: child i+1 may only start after
    /// child i's subtree completed (a `for { spawn...; sync; }` loop, e.g.
    /// heat's timesteps or GE's pivot steps). When false (default) all
    /// children run in parallel between one spawn burst and one sync.
    bool sequential = false;
    std::vector<NodeId> children;
  };

  /// Creates the level-0 "main" node. Must be called exactly once, first.
  NodeId add_root(std::uint64_t pre_work, std::uint64_t post_work = 0);

  /// Adds a child of `parent` (level = parent's level + 1).
  NodeId add_child(NodeId parent, std::uint64_t pre_work,
                   std::uint64_t post_work = 0);

  void set_traces(NodeId n, std::int32_t pre_trace, std::int32_t post_trace);
  void set_sequential(NodeId n, bool sequential);

  const Node& node(NodeId n) const {
    return nodes_[static_cast<std::size_t>(n)];
  }
  NodeId root() const { return 0; }
  std::size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }

  /// T1: total work of all nodes (pre + post), Eq. 5's left-hand side.
  std::uint64_t total_work() const;

  /// T-infinity: longest pre->child->post chain from root, fork-join span.
  std::uint64_t critical_path() const;

  /// Deepest level present in the graph.
  std::int32_t max_level() const;

  /// Maximum number of children spawned by any single node — the `B` of
  /// the partitioning model when the graph is a regular D&C tree.
  std::int32_t branching_degree() const;

  std::vector<NodeId> nodes_at_level(std::int32_t level) const;
  std::size_t count_at_level(std::int32_t level) const;

  /// Structural invariants: ids topologically ordered, levels consistent
  /// with parents, children lists match parent pointers.
  bool validate() const;

 private:
  std::vector<Node> nodes_;
};

}  // namespace cab::dag
