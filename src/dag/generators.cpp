#include "dag/generators.hpp"

#include <deque>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace cab::dag {

TaskGraph make_recursive_dnc(std::int32_t branching, std::int32_t depth,
                             std::uint64_t leaf_work,
                             std::uint64_t divide_work,
                             std::uint64_t join_work) {
  CAB_CHECK(branching >= 1, "branching must be >= 1");
  CAB_CHECK(depth >= 1, "depth must be >= 1 (level 0 is main)");
  TaskGraph g;
  NodeId root = g.add_root(divide_work, join_work);

  // Breadth-first expansion keeps ids level-ordered, handy in tests.
  std::deque<NodeId> frontier{g.add_child(
      root, depth == 1 ? leaf_work : divide_work, depth == 1 ? 0 : join_work)};
  while (!frontier.empty()) {
    NodeId n = frontier.front();
    frontier.pop_front();
    if (g.node(n).level >= depth) continue;
    bool child_is_leaf = g.node(n).level + 1 == depth;
    for (std::int32_t b = 0; b < branching; ++b) {
      NodeId c = g.add_child(n, child_is_leaf ? leaf_work : divide_work,
                             child_is_leaf ? 0 : join_work);
      if (!child_is_leaf) frontier.push_back(c);
    }
  }
  return g;
}

TaskGraph make_flat(std::int32_t count, std::uint64_t task_work) {
  CAB_CHECK(count >= 1, "flat graph needs at least one task");
  TaskGraph g;
  NodeId root = g.add_root(1);
  for (std::int32_t i = 0; i < count; ++i) g.add_child(root, task_work);
  return g;
}

TaskGraph make_irregular(std::uint64_t seed, std::int32_t max_branching,
                         std::int32_t max_depth, std::int32_t max_nodes,
                         std::uint64_t max_work) {
  CAB_CHECK(max_branching >= 0 && max_depth >= 0 && max_nodes >= 1,
            "invalid irregular-graph bounds");
  util::Xorshift64 rng(seed);
  TaskGraph g;
  g.add_root(1 + rng.next_below(max_work));
  std::deque<NodeId> frontier{g.root()};
  while (!frontier.empty() &&
         g.size() < static_cast<std::size_t>(max_nodes)) {
    NodeId n = frontier.front();
    frontier.pop_front();
    if (g.node(n).level >= max_depth) continue;
    auto kids = static_cast<std::int32_t>(
        rng.next_below(static_cast<std::uint64_t>(max_branching) + 1));
    for (std::int32_t k = 0; k < kids; ++k) {
      if (g.size() >= static_cast<std::size_t>(max_nodes)) break;
      frontier.push_back(g.add_child(n, 1 + rng.next_below(max_work),
                                     rng.next_below(max_work)));
    }
  }
  return g;
}

}  // namespace cab::dag
