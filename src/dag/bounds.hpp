#pragma once

#include <cstdint>
#include <string>

#include "dag/partition.hpp"
#include "dag/task_graph.hpp"

namespace cab::dag {

/// Work/span decomposition of a DAG under a bi-tier assignment — the
/// quantities of the paper's Section III-E (Eq. 5-15).
struct TierAnalysis {
  /// T1(G): total work.
  std::uint64_t t1_total = 0;
  /// T1(G_inter): work of the inter-socket tier (Eq. 5, first term).
  std::uint64_t t1_inter = 0;
  /// Sum of T1(G_gamma_i) over the leaf inter-socket subtrees (Eq. 5).
  std::uint64_t t1_intra = 0;
  /// T_inf(G): critical path of the whole DAG.
  std::uint64_t tinf_total = 0;
  /// max_i T_inf(G_gamma_i): the deepest leaf inter-socket subtree.
  std::uint64_t tinf_intra_max = 0;
  /// Sum_i T_inf(G_gamma_i): third term of Eq. 12 before merging.
  std::uint64_t tinf_intra_sum = 0;
  /// K: number of leaf inter-socket tasks actually present.
  std::uint64_t leaf_inter_count = 0;
  /// Deepest nesting of live frames on one stack in a serial (depth-
  /// first) execution — the S1(G) proxy of Eq. 14/15 (frames, not bytes).
  std::uint64_t serial_live_frames = 0;

  std::string summary() const;
};

/// Decomposes `g` per the tier assignment. Nodes at level <= bl form
/// G_inter; each node at level == bl roots a G_gamma_i subtree (its own
/// work is counted in both G_inter's frontier and its subtree per the
/// paper's convention that leaf inter-socket tasks belong to the
/// boundary; here the leaf inter-socket node's own work is charged to
/// its subtree, matching Eq. 5's partition into disjoint sets).
TierAnalysis analyze_tiers(const TaskGraph& g, const TierAssignment& tier);

/// Eq. 13's bound expression (in work units, unit-cost model):
///   T1(G_inter)/M + T1(G_intra)/(M*N) + T_inf(G)
/// Any greedy bi-tier execution must satisfy
///   makespan <= c * time_bound_eq13(...) for a modest constant c.
double time_bound_eq13(const TierAnalysis& a, std::int32_t sockets,
                       std::int32_t cores_per_socket);

/// Eq. 15's space bound in frames:
///   max(K * S1(G), M*N * S1(G))
std::uint64_t space_bound_eq15(const TierAnalysis& a, std::int32_t sockets,
                               std::int32_t cores_per_socket);

}  // namespace cab::dag
