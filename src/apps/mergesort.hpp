#pragma once

#include "apps/app_common.hpp"
#include "runtime/runtime.hpp"

namespace cab::apps {

/// Parallel mergesort on n 64-bit keys (Fig. 4 / Table IV benchmark:
/// "Merge sort on 1024*1024 numbers"). Classic recursive structure: sort
/// the two halves in parallel, then merge (the merge is the *post* part
/// of each task). CAB's benefit: a subtree below the boundary level stays
/// in one socket, so every merge below it re-reads its children's output
/// from the shared L3 instead of across sockets.
struct MergesortParams {
  std::int64_t n = 1024 * 1024;
  std::int64_t leaf_elems = 32 * 1024;

  std::int32_t branching() const { return 2; }
  std::uint64_t input_bytes() const {
    return static_cast<std::uint64_t>(n) * sizeof(std::int64_t);
  }
};

/// Runs mergesort on the threaded runtime. Returns true when the output
/// is a sorted permutation of the input.
bool run_mergesort(runtime::Runtime& rt, const MergesortParams& p);

/// Simulator model: binary sort tree; leaves sort blocks (1 read + 1
/// write pass over the block), internal nodes merge in their post part
/// (read both halves, write the destination buffer).
DagBundle build_mergesort_dag(const MergesortParams& p);

}  // namespace cab::apps
