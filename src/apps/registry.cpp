#include "apps/registry.hpp"

#include "apps/ck.hpp"
#include "apps/cholesky.hpp"
#include "apps/fft.hpp"
#include "apps/ge.hpp"
#include "apps/heat.hpp"
#include "apps/mergesort.hpp"
#include "apps/queens.hpp"
#include "apps/sor.hpp"
#include "util/assert.hpp"

namespace cab::apps {

const std::vector<AppEntry>& app_registry() {
  static const std::vector<AppEntry> entries = {
      {"heat", true, [] { return build_heat_dag(HeatParams{}); }},
      {"mergesort", true,
       [] { return build_mergesort_dag(MergesortParams{}); }},
      {"sor", true, [] { return build_sor_dag(SorParams{}); }},
      {"ge", true, [] { return build_ge_dag(GeParams{}); }},
      {"queens", false, [] { return build_queens_dag(QueensParams{}); }},
      {"fft", false, [] { return build_fft_dag(FftParams{}); }},
      {"ck", false, [] { return build_ck_dag(CkParams{}); }},
      {"cholesky", false,
       [] { return build_cholesky_dag(CholeskyParams{}); }},
  };
  return entries;
}

DagBundle build_app(const std::string& name) {
  for (const AppEntry& e : app_registry()) {
    if (e.name == name) return e.build_default();
  }
  CAB_CHECK(false, ("unknown app: " + name).c_str());
  return {};
}

}  // namespace cab::apps
