#include "apps/mergesort.hpp"

#include <algorithm>
#include <vector>

#include "util/rng.hpp"

namespace cab::apps {
namespace {

/// Sorts [lo, hi) of `data` using `scratch` as the merge buffer. The
/// sorted result always ends up back in `data` (each level merges into
/// scratch and copies back — simple and allocation-free).
void msort_rec(std::int64_t* data, std::int64_t* scratch, std::int64_t lo,
               std::int64_t hi, std::int64_t leaf) {
  if (hi - lo <= leaf) {
    std::sort(data + lo, data + hi);
    return;
  }
  const std::int64_t mid = lo + (hi - lo) / 2;
  runtime::Runtime::spawn([=] { msort_rec(data, scratch, lo, mid, leaf); });
  runtime::Runtime::spawn([=] { msort_rec(data, scratch, mid, hi, leaf); });
  runtime::Runtime::sync();
  std::merge(data + lo, data + mid, data + mid, data + hi, scratch + lo);
  std::copy(scratch + lo, scratch + hi, data + lo);
}

}  // namespace

bool run_mergesort(runtime::Runtime& rt, const MergesortParams& p) {
  std::vector<std::int64_t> data(static_cast<std::size_t>(p.n));
  util::Xorshift64 rng(42);
  for (auto& v : data) v = static_cast<std::int64_t>(rng.next() >> 16);
  std::vector<std::int64_t> scratch(data.size());

  const std::uint64_t expected_sum = [&] {
    std::uint64_t s = 0;
    for (auto v : data) s += static_cast<std::uint64_t>(v);
    return s;
  }();

  std::int64_t* d = data.data();
  std::int64_t* s = scratch.data();
  rt.run([&] { msort_rec(d, s, 0, p.n, p.leaf_elems); });

  std::uint64_t sum = 0;
  for (auto v : data) sum += static_cast<std::uint64_t>(v);
  return sum == expected_sum && std::is_sorted(data.begin(), data.end());
}

DagBundle build_mergesort_dag(const MergesortParams& p) {
  DagBundle bundle;
  bundle.name = "mergesort";
  bundle.branching = p.branching();
  bundle.input_bytes = p.input_bytes();

  dag::TaskGraph& g = bundle.graph;
  cachesim::TraceStore& store = bundle.traces;
  const std::uint64_t data = array_base(0);
  const std::uint64_t scratch = array_base(1);
  constexpr std::uint64_t kElem = sizeof(std::int64_t);

  dag::NodeId root = g.add_root(1);

  // Recursive builder mirroring msort_rec: internal nodes carry the merge
  // (+ copy-back) as their post piece.
  struct Builder {
    dag::TaskGraph& g;
    cachesim::TraceStore& store;
    std::uint64_t data, scratch;
    std::int64_t leaf;

    dag::NodeId build(dag::NodeId parent, std::int64_t lo, std::int64_t hi) {
      if (hi - lo <= leaf) {
        // std::sort: ~ log2(block) passes of comparisons; model the cache
        // traffic as one read + one write sweep (the deeper passes run in
        // L2) and charge the comparison work explicitly.
        cachesim::Trace t;
        t.push_back({data + static_cast<std::uint64_t>(lo) * kElem,
                     static_cast<std::uint64_t>(hi - lo) * kElem, 1, false});
        t.push_back({data + static_cast<std::uint64_t>(lo) * kElem,
                     static_cast<std::uint64_t>(hi - lo) * kElem, 1, true});
        std::uint64_t block = static_cast<std::uint64_t>(hi - lo);
        std::uint64_t work = block * 16;  // ~c * log2(32Ki) comparisons
        dag::NodeId n = g.add_child(parent, work);
        g.set_traces(n, store.add(std::move(t)), -1);
        return n;
      }
      dag::NodeId n = g.add_child(parent, /*pre_work=*/8,
                                  /*post_work=*/
                                  static_cast<std::uint64_t>(hi - lo) * 6);
      const std::int64_t mid = lo + (hi - lo) / 2;
      build(n, lo, mid);
      build(n, mid, hi);
      // Post piece: merge data->scratch, copy scratch->data.
      cachesim::Trace t;
      t.push_back({data + static_cast<std::uint64_t>(lo) * kElem,
                   static_cast<std::uint64_t>(hi - lo) * kElem, 1, false});
      t.push_back({scratch + static_cast<std::uint64_t>(lo) * kElem,
                   static_cast<std::uint64_t>(hi - lo) * kElem, 1, true});
      t.push_back({data + static_cast<std::uint64_t>(lo) * kElem,
                   static_cast<std::uint64_t>(hi - lo) * kElem, 1, true});
      g.set_traces(n, -1, store.add(std::move(t)));
      return n;
    }
  } builder{g, store, data, scratch, p.leaf_elems};

  builder.build(root, 0, p.n);
  return bundle;
}

}  // namespace cab::apps
