#pragma once

#include <string>
#include <vector>

#include "apps/app_common.hpp"

namespace cab::apps {

/// One Table III benchmark with its paper-default configuration.
struct AppEntry {
  std::string name;
  bool memory_bound = false;
  DagBundle (*build_default)() = nullptr;
};

/// All eight Table III benchmarks (memory-bound: heat, mergesort, sor,
/// ge; CPU-bound: queens, fft, ck, cholesky), each building its
/// paper-default simulator model (1k x 1k matrices for the memory-bound
/// four, Fig. 4's configuration).
const std::vector<AppEntry>& app_registry();

/// Builds a registered app's default model by name; aborts on unknown
/// names (programming error).
DagBundle build_app(const std::string& name);

}  // namespace cab::apps
