#pragma once

#include "apps/app_common.hpp"
#include "runtime/runtime.hpp"

namespace cab::apps {

/// "Ck" — rudimentary checkers (Table III CPU-bound benchmark): fixed-
/// depth minimax over an 8x8 draughts position (men + kings, single jumps,
/// captures preferred, no multi-jump chains — deliberately rudimentary,
/// matching the benchmark's name). Tasks are spawned one per move above
/// `spawn_depth`, serial minimax below: an irregular, data-light game
/// tree — the classic CPU-bound stress for scheduler overhead.
struct CkParams {
  std::int32_t depth = 8;
  std::int32_t spawn_depth = 3;
};

/// Minimax value of the initial position, computed on the runtime.
std::int32_t run_ck(runtime::Runtime& rt, const CkParams& p);

/// Serial reference.
std::int32_t run_ck_serial(const CkParams& p);

/// Simulator model: the real game tree expanded to spawn_depth with leaf
/// work equal to the measured serial subtree size. Traces: none.
DagBundle build_ck_dag(const CkParams& p);

}  // namespace cab::apps
