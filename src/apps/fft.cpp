#include "apps/fft.hpp"

#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace cab::apps {
namespace {

using Cplx = std::complex<double>;

/// Serial recursive FFT on data[0..n) with stride access into scratch.
void fft_serial(Cplx* data, Cplx* scratch, std::int64_t n, int sign) {
  if (n <= 1) return;
  const std::int64_t half = n / 2;
  for (std::int64_t i = 0; i < half; ++i) {
    scratch[i] = data[2 * i];
    scratch[i + half] = data[2 * i + 1];
  }
  for (std::int64_t i = 0; i < n; ++i) data[i] = scratch[i];
  fft_serial(data, scratch, half, sign);
  fft_serial(data + half, scratch + half, half, sign);
  for (std::int64_t k = 0; k < half; ++k) {
    const double angle =
        sign * 2.0 * std::numbers::pi * static_cast<double>(k) /
        static_cast<double>(n);
    const Cplx w(std::cos(angle), std::sin(angle));
    const Cplx even = data[k];
    const Cplx odd = w * data[k + half];
    data[k] = even + odd;
    data[k + half] = even - odd;
  }
}

void fft_rec(Cplx* data, Cplx* scratch, std::int64_t n, int sign,
             std::int64_t leaf) {
  if (n <= leaf) {
    fft_serial(data, scratch, n, sign);
    return;
  }
  const std::int64_t half = n / 2;
  for (std::int64_t i = 0; i < half; ++i) {
    scratch[i] = data[2 * i];
    scratch[i + half] = data[2 * i + 1];
  }
  for (std::int64_t i = 0; i < n; ++i) data[i] = scratch[i];
  runtime::Runtime::spawn([=] { fft_rec(data, scratch, half, sign, leaf); });
  runtime::Runtime::spawn(
      [=] { fft_rec(data + half, scratch + half, half, sign, leaf); });
  runtime::Runtime::sync();
  for (std::int64_t k = 0; k < half; ++k) {
    const double angle =
        sign * 2.0 * std::numbers::pi * static_cast<double>(k) /
        static_cast<double>(n);
    const Cplx w(std::cos(angle), std::sin(angle));
    const Cplx even = data[k];
    const Cplx odd = w * data[k + half];
    data[k] = even + odd;
    data[k + half] = even - odd;
  }
}

std::vector<Cplx> make_signal(std::int64_t n) {
  std::vector<Cplx> v(static_cast<std::size_t>(n));
  util::Xorshift64 rng(7);
  for (auto& c : v) c = Cplx(rng.next_double() - 0.5, rng.next_double() - 0.5);
  return v;
}

double roundtrip_error(std::vector<Cplx> signal,
                       const std::function<void(Cplx*, Cplx*, std::int64_t,
                                                int)>& transform) {
  const std::vector<Cplx> original = signal;
  std::vector<Cplx> scratch(signal.size());
  const auto n = static_cast<std::int64_t>(signal.size());
  transform(signal.data(), scratch.data(), n, -1);
  transform(signal.data(), scratch.data(), n, +1);
  double max_err = 0;
  for (std::size_t i = 0; i < signal.size(); ++i) {
    max_err = std::max(
        max_err, std::abs(signal[i] / static_cast<double>(n) - original[i]));
  }
  return max_err;
}

}  // namespace

double run_fft_roundtrip(runtime::Runtime& rt, const FftParams& p) {
  CAB_CHECK((p.n & (p.n - 1)) == 0, "fft size must be a power of two");
  double err = 0;
  auto signal = make_signal(p.n);
  rt.run([&] {
    err = roundtrip_error(std::move(signal),
                          [&](Cplx* d, Cplx* s, std::int64_t n, int sign) {
                            fft_rec(d, s, n, sign, p.leaf_elems);
                          });
  });
  return err;
}

double run_fft_roundtrip_serial(const FftParams& p) {
  CAB_CHECK((p.n & (p.n - 1)) == 0, "fft size must be a power of two");
  return roundtrip_error(make_signal(p.n), fft_serial);
}

DagBundle build_fft_dag(const FftParams& p) {
  DagBundle bundle;
  bundle.name = "fft";
  bundle.branching = 2;
  bundle.input_bytes = static_cast<std::uint64_t>(p.n) * sizeof(Cplx);

  dag::TaskGraph& g = bundle.graph;
  cachesim::TraceStore& store = bundle.traces;
  const std::uint64_t data = array_base(0);
  const std::uint64_t scratch = array_base(1);
  constexpr std::uint64_t kElem = sizeof(Cplx);

  dag::NodeId root = g.add_root(1);

  struct Builder {
    dag::TaskGraph& g;
    cachesim::TraceStore& store;
    std::uint64_t data, scratch;
    std::int64_t leaf;

    void build(dag::NodeId parent, std::int64_t off, std::int64_t n) {
      const std::uint64_t bytes = static_cast<std::uint64_t>(n) * kElem;
      const std::uint64_t dbase = data + static_cast<std::uint64_t>(off) * kElem;
      const std::uint64_t sbase =
          scratch + static_cast<std::uint64_t>(off) * kElem;
      if (n <= leaf) {
        // Serial block: ~log2(n) sweeps but they fit in L2; model 2 data
        // passes and charge ~12 flops per element per level as work.
        cachesim::Trace t;
        t.push_back({dbase, bytes, 2, true});
        std::uint64_t levels = 1;
        for (std::int64_t m = n; m > 1; m /= 2) ++levels;
        g.set_traces(
            g.add_child(parent, static_cast<std::uint64_t>(n) * 12 * levels),
            store.add(std::move(t)), -1);
        return;
      }
      // Pre: even/odd shuffle through scratch. Post: butterfly pass.
      dag::NodeId me =
          g.add_child(parent, static_cast<std::uint64_t>(n) * 4,
                      static_cast<std::uint64_t>(n) * 14);
      cachesim::Trace pre;
      pre.push_back({dbase, bytes, 1, false});
      pre.push_back({sbase, bytes, 1, true});
      pre.push_back({dbase, bytes, 1, true});
      cachesim::Trace post;
      post.push_back({dbase, bytes, 1, true});
      std::int32_t pre_id = store.add(std::move(pre));
      std::int32_t post_id = store.add(std::move(post));
      g.set_traces(me, pre_id, post_id);
      build(me, off, n / 2);
      build(me, off + n / 2, n / 2);
    }
  } builder{g, store, data, scratch, p.leaf_elems};

  builder.build(root, 0, p.n);
  return bundle;
}

}  // namespace cab::apps
