#pragma once

#include "apps/app_common.hpp"
#include "runtime/runtime.hpp"

namespace cab::apps {

/// 2D Successive Over-Relaxation (Fig. 4/6/7 benchmark). Red-black
/// Gauss-Seidel with over-relaxation factor omega: each iteration is two
/// in-place half-sweeps (first the "red" points, then the "black" points),
/// each parallelized by binary row division. In-place writes are what make
/// SOR the paper's most TRICI-sensitive benchmark (68.7% gain at 512x512):
/// a socket only reuses rows it itself updated last iteration.
struct SorParams {
  std::int64_t rows = 1024;
  std::int64_t cols = 1024;
  std::int32_t iterations = 10;
  std::int64_t leaf_rows = 128;
  double omega = 1.25;

  std::int32_t branching() const { return 2; }
  std::uint64_t input_bytes() const {
    return static_cast<std::uint64_t>(rows) *
           static_cast<std::uint64_t>(cols) * sizeof(double);
  }
};

/// Runs SOR on the threaded runtime. Returns the final grid checksum.
double run_sor(runtime::Runtime& rt, const SorParams& p);

/// Serial reference for verification.
double run_sor_serial(const SorParams& p);

/// Simulator model: 2*iterations sequential half-sweep phases.
DagBundle build_sor_dag(const SorParams& p);

}  // namespace cab::apps
