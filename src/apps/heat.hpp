#pragma once

#include <cstdint>

#include "apps/app_common.hpp"
#include "runtime/runtime.hpp"

namespace cab::apps {

/// Five-point heat diffusion on a rows x cols grid of doubles, the
/// paper's running example (Fig. 1/2) and a Fig. 4/5/6/7 benchmark.
/// Double-buffered Jacobi iteration: step t+1 row r reads rows r-1, r,
/// r+1 of step t. The recursion divides rows in two until <= leaf_rows
/// (the paper splits until 128 rows, Section V-B).
struct HeatParams {
  std::int64_t rows = 1024;
  std::int64_t cols = 1024;
  std::int32_t steps = 10;
  std::int64_t leaf_rows = 128;

  std::int32_t branching() const { return 2; }
  /// Sd: the input matrix (the paper's Section V-B worked example counts
  /// one rows x cols x 8 buffer: 3k*2k -> 48 MB).
  std::uint64_t input_bytes() const {
    return static_cast<std::uint64_t>(rows) *
           static_cast<std::uint64_t>(cols) * sizeof(double);
  }
};

/// Runs heat on the threaded runtime. Returns the final grid checksum.
double run_heat(runtime::Runtime& rt, const HeatParams& p);

/// Serial reference (same arithmetic) for verification.
double run_heat_serial(const HeatParams& p);

/// Simulator model: sequential step phases, each a binary row-division
/// tree whose leaves read their rows +- halo from the step's source
/// buffer and write their rows to the destination buffer.
DagBundle build_heat_dag(const HeatParams& p);

}  // namespace cab::apps
