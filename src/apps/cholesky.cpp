#include "apps/cholesky.hpp"

#include <cmath>
#include <vector>

#include "util/assert.hpp"

namespace cab::apps {
namespace {

/// Column-major within row-major tiles is overkill here; the matrix is
/// plain row-major n x n, tiles addressed by their top-left corner.
struct Mat {
  std::vector<double> v;
  std::int64_t n;
  double& at(std::int64_t i, std::int64_t j) {
    return v[static_cast<std::size_t>(i * n + j)];
  }
  double at(std::int64_t i, std::int64_t j) const {
    return v[static_cast<std::size_t>(i * n + j)];
  }
};

Mat make_spd(std::int64_t n) {
  // A = B*B^T + n*I with a deterministic mildly random B.
  Mat a{std::vector<double>(static_cast<std::size_t>(n * n), 0.0), n};
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j <= i; ++j) {
      double s = 0;
      for (std::int64_t k = 0; k <= std::min(i, j); ++k) {
        const double bi = 0.01 * ((i * 31 + k * 7) % 13) + (i == k ? 1.0 : 0);
        const double bj = 0.01 * ((j * 31 + k * 7) % 13) + (j == k ? 1.0 : 0);
        s += bi * bj;
      }
      a.at(i, j) = a.at(j, i) = s + (i == j ? 2.0 : 0.0);
    }
  }
  return a;
}

/// potrf on tile (k,k): serial Cholesky of a b x b block, lower triangle.
void potrf(Mat& a, std::int64_t k0, std::int64_t b) {
  for (std::int64_t j = k0; j < k0 + b; ++j) {
    double d = a.at(j, j);
    for (std::int64_t t = k0; t < j; ++t) d -= a.at(j, t) * a.at(j, t);
    CAB_CHECK(d > 0, "matrix not positive definite at potrf");
    const double ljj = std::sqrt(d);
    a.at(j, j) = ljj;
    for (std::int64_t i = j + 1; i < k0 + b; ++i) {
      double s = a.at(i, j);
      for (std::int64_t t = k0; t < j; ++t) s -= a.at(i, t) * a.at(j, t);
      a.at(i, j) = s / ljj;
    }
  }
}

/// trsm: tile (i0,k0) := tile (i0,k0) * L(k0,k0)^-T.
void trsm(Mat& a, std::int64_t i0, std::int64_t k0, std::int64_t b) {
  for (std::int64_t j = k0; j < k0 + b; ++j) {
    for (std::int64_t i = i0; i < i0 + b; ++i) {
      double s = a.at(i, j);
      for (std::int64_t t = k0; t < j; ++t) s -= a.at(i, t) * a.at(j, t);
      a.at(i, j) = s / a.at(j, j);
    }
  }
}

/// gemm/syrk: tile (i0,j0) -= tile(i0,k0) * tile(j0,k0)^T (lower part only
/// when i0 == j0).
void update(Mat& a, std::int64_t i0, std::int64_t j0, std::int64_t k0,
            std::int64_t b) {
  for (std::int64_t i = i0; i < i0 + b; ++i) {
    const std::int64_t jmax = (i0 == j0) ? i : j0 + b - 1;
    for (std::int64_t j = j0; j <= jmax; ++j) {
      double s = a.at(i, j);
      for (std::int64_t t = k0; t < k0 + b; ++t)
        s -= a.at(i, t) * a.at(j, t);
      a.at(i, j) = s;
    }
  }
}

void cholesky_tiled(Mat& a, std::int64_t b, bool parallel) {
  const std::int64_t n = a.n;
  for (std::int64_t k = 0; k < n; k += b) {
    potrf(a, k, b);
    if (parallel) {
      for (std::int64_t i = k + b; i < n; i += b)
        runtime::Runtime::spawn([&a, i, k, b] { trsm(a, i, k, b); });
      runtime::Runtime::sync();
      for (std::int64_t i = k + b; i < n; i += b)
        for (std::int64_t j = k + b; j <= i; j += b)
          runtime::Runtime::spawn([&a, i, j, k, b] { update(a, i, j, k, b); });
      runtime::Runtime::sync();
    } else {
      for (std::int64_t i = k + b; i < n; i += b) trsm(a, i, k, b);
      for (std::int64_t i = k + b; i < n; i += b)
        for (std::int64_t j = k + b; j <= i; j += b) update(a, i, j, k, b);
    }
  }
}

double reconstruct_error(const Mat& l, const Mat& a0) {
  const std::int64_t n = l.n;
  double max_err = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j <= i; ++j) {
      double s = 0;
      for (std::int64_t k = 0; k <= j; ++k) s += l.at(i, k) * l.at(j, k);
      max_err = std::max(max_err, std::abs(s - a0.at(i, j)));
    }
  }
  return max_err;
}

}  // namespace

double run_cholesky(runtime::Runtime& rt, const CholeskyParams& p) {
  CAB_CHECK(p.n % p.tile == 0, "tile must divide n");
  Mat a0 = make_spd(p.n);
  Mat a = a0;
  rt.run([&] { cholesky_tiled(a, p.tile, /*parallel=*/true); });
  return reconstruct_error(a, a0);
}

double run_cholesky_serial(const CholeskyParams& p) {
  CAB_CHECK(p.n % p.tile == 0, "tile must divide n");
  Mat a0 = make_spd(p.n);
  Mat a = a0;
  cholesky_tiled(a, p.tile, /*parallel=*/false);
  return reconstruct_error(a, a0);
}

DagBundle build_cholesky_dag(const CholeskyParams& p) {
  CAB_CHECK(p.n % p.tile == 0, "tile must divide n");
  DagBundle bundle;
  bundle.name = "cholesky";
  bundle.branching = p.branching();
  bundle.input_bytes = p.input_bytes();

  dag::TaskGraph& g = bundle.graph;
  cachesim::TraceStore& store = bundle.traces;
  const std::uint64_t base = array_base(0);
  const std::uint64_t row_bytes =
      static_cast<std::uint64_t>(p.n) * sizeof(double);
  const std::int64_t b = p.tile;
  const std::uint64_t flops_tile =
      static_cast<std::uint64_t>(b) * static_cast<std::uint64_t>(b) *
      static_cast<std::uint64_t>(b) * 2;

  // Trace for a tile: its rows' segments (strided rows approximated as the
  // bounding row range of the tile — tiles span full cache lines anyway).
  auto tile_trace = [&](std::int64_t i0, std::int64_t j0, bool write) {
    return cachesim::RangeAccess{
        base + static_cast<std::uint64_t>(i0) * row_bytes +
            static_cast<std::uint64_t>(j0) * sizeof(double),
        static_cast<std::uint64_t>(b - 1) * row_bytes +
            static_cast<std::uint64_t>(b) * sizeof(double),
        1, write};
  };

  dag::NodeId root = g.add_root(1);
  g.set_sequential(root, true);

  for (std::int64_t k = 0; k < p.n; k += b) {
    // Phase k has two flat sub-phases: trsm panel, then updates. Model as
    // one sequential phase node whose children are: a "panel" subphase
    // node and an "update" subphase node, executed sequentially.
    dag::NodeId phase = g.add_child(root, 2);
    g.set_sequential(phase, true);

    // potrf runs inside the phase node's own body.
    {
      cachesim::Trace t{tile_trace(k, k, true)};
      g.set_traces(phase, store.add(std::move(t)), -1);
    }

    if (k + b >= p.n) continue;

    dag::NodeId panel = g.add_child(phase, 1);
    for (std::int64_t i = k + b; i < p.n; i += b) {
      cachesim::Trace t{tile_trace(i, k, true), tile_trace(k, k, false)};
      g.set_traces(g.add_child(panel, flops_tile / 2),
                   store.add(std::move(t)), -1);
    }
    dag::NodeId upd = g.add_child(phase, 1);
    for (std::int64_t i = k + b; i < p.n; i += b) {
      for (std::int64_t j = k + b; j <= i; j += b) {
        cachesim::Trace t{tile_trace(i, j, true), tile_trace(i, k, false),
                          tile_trace(j, k, false)};
        g.set_traces(g.add_child(upd, flops_tile),
                     store.add(std::move(t)), -1);
      }
    }
  }
  return bundle;
}

}  // namespace cab::apps
