#include "apps/queens.hpp"

#include <atomic>
#include <mutex>
#include <vector>

namespace cab::apps {
namespace {

/// Bitmask backtracking: cols/diag1/diag2 mark attacked lines.
/// Returns the number of solutions below this partial placement; adds the
/// number of visited nodes to *nodes when non-null.
std::uint64_t solve(std::int32_t n, std::int32_t row, std::uint32_t cols,
                    std::uint32_t d1, std::uint32_t d2,
                    std::uint64_t* nodes = nullptr) {
  if (row == n) return 1;
  std::uint64_t count = 0;
  std::uint32_t free = ~(cols | d1 | d2) & ((1u << n) - 1);
  while (free != 0) {
    std::uint32_t bit = free & (~free + 1);
    free ^= bit;
    if (nodes) ++*nodes;
    count += solve(n, row + 1, cols | bit, (d1 | bit) << 1, (d2 | bit) >> 1,
                   nodes);
  }
  return count;
}

void queens_rec(std::int32_t n, std::int32_t row, std::uint32_t cols,
                std::uint32_t d1, std::uint32_t d2, std::int32_t spawn_depth,
                std::atomic<std::uint64_t>& total) {
  if (row >= spawn_depth) {
    total.fetch_add(solve(n, row, cols, d1, d2),
                    std::memory_order_relaxed);
    return;
  }
  std::uint32_t free = ~(cols | d1 | d2) & ((1u << n) - 1);
  while (free != 0) {
    std::uint32_t bit = free & (~free + 1);
    free ^= bit;
    runtime::Runtime::spawn([=, &total] {
      queens_rec(n, row + 1, cols | bit, (d1 | bit) << 1, (d2 | bit) >> 1,
                 spawn_depth, total);
    });
  }
  runtime::Runtime::sync();
}

}  // namespace

std::uint64_t run_queens(runtime::Runtime& rt, const QueensParams& p) {
  std::atomic<std::uint64_t> total{0};
  rt.run([&] { queens_rec(p.n, 0, 0, 0, 0, p.spawn_depth, total); });
  return total.load();
}

std::uint64_t run_queens_serial(const QueensParams& p) {
  return solve(p.n, 0, 0, 0, 0);
}

namespace {

/// Shared state of the speculative first-solution search.
struct FirstSearch {
  std::int32_t n = 0;
  std::int32_t spawn_depth = 0;
  std::atomic<bool> found{false};
  std::mutex mu{};
  std::vector<std::int32_t> solution{};

  void publish(const std::vector<std::int32_t>& cols) {
    std::lock_guard<std::mutex> g(mu);
    if (found.load(std::memory_order_relaxed)) return;
    solution = cols;
    found.store(true, std::memory_order_release);
  }

  /// Serial backtracking below the spawn frontier; aborts eagerly when
  /// another task already published.
  bool solve_serial(std::int32_t row, std::uint32_t cols, std::uint32_t d1,
                    std::uint32_t d2, std::vector<std::int32_t>& placed) {
    if (found.load(std::memory_order_acquire)) return false;
    if (row == n) {
      publish(placed);
      return true;
    }
    std::uint32_t free = ~(cols | d1 | d2) & ((1u << n) - 1);
    while (free != 0) {
      std::uint32_t bit = free & (~free + 1);
      free ^= bit;
      placed.push_back(static_cast<std::int32_t>(__builtin_ctz(bit)));
      if (solve_serial(row + 1, cols | bit, (d1 | bit) << 1, (d2 | bit) >> 1,
                       placed)) {
        return true;
      }
      placed.pop_back();
    }
    return false;
  }

  void search(std::int32_t row, std::uint32_t cols, std::uint32_t d1,
              std::uint32_t d2, std::vector<std::int32_t> placed) {
    if (found.load(std::memory_order_acquire)) return;
    if (row >= spawn_depth || row == n) {
      solve_serial(row, cols, d1, d2, placed);
      return;
    }
    std::uint32_t free = ~(cols | d1 | d2) & ((1u << n) - 1);
    while (free != 0) {
      std::uint32_t bit = free & (~free + 1);
      free ^= bit;
      std::vector<std::int32_t> next = placed;
      next.push_back(static_cast<std::int32_t>(__builtin_ctz(bit)));
      runtime::Runtime::spawn(
          [this, row, cols, d1, d2, bit, next = std::move(next)] {
            search(row + 1, cols | bit, (d1 | bit) << 1, (d2 | bit) >> 1,
                   next);
          });
    }
    runtime::Runtime::sync();
  }
};

}  // namespace

std::vector<std::int32_t> run_queens_first(runtime::Runtime& rt,
                                           const QueensParams& p) {
  FirstSearch fs{p.n, p.spawn_depth};
  rt.run([&] { fs.search(0, 0, 0, 0, {}); });
  return fs.solution;
}

DagBundle build_queens_dag(const QueensParams& p) {
  DagBundle bundle;
  bundle.name = "queens";
  bundle.branching = p.n;  // up to n placements per row
  bundle.input_bytes = 0;  // CPU-bound: negligible data

  dag::TaskGraph& g = bundle.graph;
  dag::NodeId root = g.add_root(1);

  struct Builder {
    dag::TaskGraph& g;
    std::int32_t n, spawn_depth;

    void expand(dag::NodeId parent, std::int32_t row, std::uint32_t cols,
                std::uint32_t d1, std::uint32_t d2) {
      if (row >= spawn_depth) {
        std::uint64_t nodes = 1;
        solve(n, row, cols, d1, d2, &nodes);
        // ~20 work units per visited backtracking node.
        g.add_child(parent, nodes * 20);
        return;
      }
      std::uint32_t free = ~(cols | d1 | d2) & ((1u << n) - 1);
      dag::NodeId me = g.add_child(parent, 4);
      while (free != 0) {
        std::uint32_t bit = free & (~free + 1);
        free ^= bit;
        expand(me, row + 1, cols | bit, (d1 | bit) << 1, (d2 | bit) >> 1);
      }
    }
  } builder{g, p.n, p.spawn_depth};

  builder.expand(root, 0, 0, 0, 0);
  return bundle;
}

}  // namespace cab::apps
