#include "apps/serialize.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <vector>

#include "util/assert.hpp"

namespace cab::apps {

void save_bundle(const DagBundle& bundle, std::ostream& out) {
  out << "CABDAG 1\n";
  out << "name " << (bundle.name.empty() ? "unnamed" : bundle.name) << "\n";
  out << "branching " << bundle.branching << "\n";
  out << "input_bytes " << bundle.input_bytes << "\n";
  out << "nodes " << bundle.graph.size() << "\n";
  for (std::size_t i = 0; i < bundle.graph.size(); ++i) {
    const dag::TaskGraph::Node& n =
        bundle.graph.node(static_cast<dag::NodeId>(i));
    out << "n " << n.parent << ' ' << n.pre_work << ' ' << n.post_work << ' '
        << n.pre_trace << ' ' << n.post_trace << ' '
        << (n.sequential ? 1 : 0) << "\n";
  }
  out << "traces " << bundle.traces.size() << "\n";
  for (std::size_t i = 0; i < bundle.traces.size(); ++i) {
    const cachesim::Trace& t =
        bundle.traces.get(static_cast<std::int32_t>(i));
    out << "t " << t.size();
    for (const cachesim::RangeAccess& r : t) {
      out << ' ' << r.base << ' ' << r.bytes << ' ' << r.passes << ' '
          << (r.write ? 1 : 0);
    }
    out << "\n";
  }
}

DagBundle load_bundle(std::istream& in) {
  DagBundle bundle;
  std::string magic;
  int version = 0;
  CAB_CHECK(static_cast<bool>(in >> magic >> version) && magic == "CABDAG" &&
                version == 1,
            "not a CABDAG v1 stream");

  std::string key;
  CAB_CHECK(static_cast<bool>(in >> key >> bundle.name) && key == "name",
            "expected 'name'");
  CAB_CHECK(static_cast<bool>(in >> key >> bundle.branching) &&
                key == "branching",
            "expected 'branching'");
  CAB_CHECK(static_cast<bool>(in >> key >> bundle.input_bytes) &&
                key == "input_bytes",
            "expected 'input_bytes'");

  std::size_t node_count = 0;
  CAB_CHECK(static_cast<bool>(in >> key >> node_count) && key == "nodes",
            "expected 'nodes'");
  std::vector<dag::NodeId> ids;
  ids.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    std::int32_t parent = 0, pre_trace = -1, post_trace = -1, seq = 0;
    std::uint64_t pre_work = 0, post_work = 0;
    CAB_CHECK(static_cast<bool>(in >> key >> parent >> pre_work >>
                                post_work >> pre_trace >> post_trace >> seq) &&
                  key == "n",
              "malformed node line");
    dag::NodeId id;
    if (parent < 0) {
      CAB_CHECK(i == 0, "only the first node may be the root");
      id = bundle.graph.add_root(pre_work, post_work);
    } else {
      CAB_CHECK(static_cast<std::size_t>(parent) < i,
                "parent must precede child");
      id = bundle.graph.add_child(ids[static_cast<std::size_t>(parent)],
                                  pre_work, post_work);
    }
    bundle.graph.set_traces(id, pre_trace, post_trace);
    bundle.graph.set_sequential(id, seq != 0);
    ids.push_back(id);
  }

  std::size_t trace_count = 0;
  CAB_CHECK(static_cast<bool>(in >> key >> trace_count) && key == "traces",
            "expected 'traces'");
  for (std::size_t i = 0; i < trace_count; ++i) {
    std::size_t ranges = 0;
    CAB_CHECK(static_cast<bool>(in >> key >> ranges) && key == "t",
              "malformed trace line");
    cachesim::Trace t;
    t.reserve(ranges);
    for (std::size_t r = 0; r < ranges; ++r) {
      cachesim::RangeAccess ra;
      int write = 0;
      CAB_CHECK(static_cast<bool>(in >> ra.base >> ra.bytes >> ra.passes >>
                                  write),
                "malformed range");
      ra.write = write != 0;
      t.push_back(ra);
    }
    bundle.traces.add(std::move(t));
  }

  // Referenced trace ids must exist.
  for (std::size_t i = 0; i < bundle.graph.size(); ++i) {
    const auto& n = bundle.graph.node(static_cast<dag::NodeId>(i));
    CAB_CHECK(n.pre_trace < static_cast<std::int32_t>(trace_count),
              "pre_trace out of range");
    CAB_CHECK(n.post_trace < static_cast<std::int32_t>(trace_count),
              "post_trace out of range");
  }
  CAB_CHECK(bundle.graph.validate(), "loaded graph failed validation");
  return bundle;
}

bool save_bundle_file(const DagBundle& bundle, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  save_bundle(bundle, out);
  return static_cast<bool>(out);
}

DagBundle load_bundle_file(const std::string& path) {
  std::ifstream in(path);
  CAB_CHECK(static_cast<bool>(in), "cannot open bundle file");
  return load_bundle(in);
}

}  // namespace cab::apps
