#pragma once

#include <iosfwd>
#include <string>

#include "apps/app_common.hpp"

namespace cab::apps {

/// Serializes a workload bundle (DAG + traces + partition parameters) to
/// a line-based text format, so workloads can be saved once and replayed
/// across machines/configurations (cab_explore --save / --load).
///
/// Format (version 1):
///   CABDAG 1
///   name <string-without-spaces>
///   branching <B>
///   input_bytes <Sd>
///   nodes <count>
///   n <parent|-1> <pre_work> <post_work> <pre_trace|-1> <post_trace|-1> <seq 0|1>
///   ... (count lines, topological/id order)
///   traces <count>
///   t <ranges> {<base> <bytes> <passes> <write 0|1>} x ranges
///   ... (count lines)
void save_bundle(const DagBundle& bundle, std::ostream& out);

/// Parses a bundle; aborts via CAB_CHECK on malformed input (this is a
/// trusted-tool format, not an adversarial parser).
DagBundle load_bundle(std::istream& in);

/// Convenience file wrappers. Return false / abort on I/O failure.
bool save_bundle_file(const DagBundle& bundle, const std::string& path);
DagBundle load_bundle_file(const std::string& path);

}  // namespace cab::apps
