#include "apps/ge.hpp"

#include <cmath>
#include <vector>

namespace cab::apps {
namespace {

void init_matrix(std::vector<double>& a, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = 0; j < n; ++j)
      a[static_cast<std::size_t>(i * n + j)] =
          (i == j) ? n + 2.0 : 1.0 + 0.01 * ((i * 13 + j * 7) % 23);
  // Diagonal dominance keeps elimination without pivoting stable.
}

/// Eliminates column k from rows [r0, r1) using pivot row k.
void ge_rows(double* a, std::int64_t n, std::int64_t k, std::int64_t r0,
             std::int64_t r1) {
  const double* pivot = a + k * n;
  const double inv = 1.0 / pivot[k];
  for (std::int64_t i = r0; i < r1; ++i) {
    double* row = a + i * n;
    const double factor = row[k] * inv;
    row[k] = factor;  // store the L factor in place
    for (std::int64_t j = k + 1; j < n; ++j) row[j] -= factor * pivot[j];
  }
}

void ge_rec(double* a, std::int64_t n, std::int64_t k, std::int64_t r0,
            std::int64_t r1, std::int64_t leaf_rows) {
  if (r1 - r0 <= leaf_rows) {
    ge_rows(a, n, k, r0, r1);
    return;
  }
  const std::int64_t mid = r0 + (r1 - r0) / 2;
  runtime::Runtime::spawn([=] { ge_rec(a, n, k, r0, mid, leaf_rows); });
  runtime::Runtime::spawn([=] { ge_rec(a, n, k, mid, r1, leaf_rows); });
  runtime::Runtime::sync();
}

double checksum(const std::vector<double>& a) {
  double s = 0;
  for (double v : a) s += v / (1.0 + std::abs(v));  // bounded per-element
  return s;
}

}  // namespace

double run_ge(runtime::Runtime& rt, const GeParams& p) {
  std::vector<double> a(static_cast<std::size_t>(p.n * p.n));
  init_matrix(a, p.n);
  double* data = a.data();
  rt.run([&] {
    for (std::int64_t k = 0; k < p.n - 1; ++k) {
      ge_rec(data, p.n, k, k + 1, p.n, p.leaf_rows);
    }
  });
  return checksum(a);
}

double run_ge_serial(const GeParams& p) {
  std::vector<double> a(static_cast<std::size_t>(p.n * p.n));
  init_matrix(a, p.n);
  for (std::int64_t k = 0; k < p.n - 1; ++k)
    ge_rows(a.data(), p.n, k, k + 1, p.n);
  return checksum(a);
}

DagBundle build_ge_dag(const GeParams& p, std::int64_t pivots_per_phase) {
  DagBundle bundle;
  bundle.name = "ge";
  bundle.branching = p.branching();
  bundle.input_bytes = p.input_bytes();

  dag::TaskGraph& g = bundle.graph;
  cachesim::TraceStore& store = bundle.traces;
  const std::uint64_t base = array_base(0);
  const std::uint64_t row_bytes =
      static_cast<std::uint64_t>(p.n) * sizeof(double);

  dag::NodeId root = g.add_root(1);
  g.set_sequential(root, true);

  for (std::int64_t k0 = 0; k0 < p.n - 1; k0 += pivots_per_phase) {
    const std::int64_t k1 = std::min(k0 + pivots_per_phase, p.n - 1);
    const std::int64_t first_row = k0 + 1;  // rows updated this panel
    if (first_row >= p.n) break;
    // Trailing-column extent for trace purposes (panel start).
    const std::uint64_t tail_bytes =
        static_cast<std::uint64_t>(p.n - k0) * sizeof(double);
    const std::uint64_t col_off = static_cast<std::uint64_t>(k0) * sizeof(double);
    split_range(
        g, root, first_row, p.n, p.leaf_rows, /*divide_work=*/8,
        [&](dag::NodeId parent, std::int64_t r0, std::int64_t r1) {
          cachesim::Trace t;
          // Shared pivot rows of the panel.
          t.push_back({base + static_cast<std::uint64_t>(k0) * row_bytes +
                           col_off,
                       static_cast<std::uint64_t>(k1 - k0 - 1) * row_bytes +
                           tail_bytes,
                       1, false});
          // Own rows, trailing part, updated once per pivot in the panel.
          t.push_back({base + static_cast<std::uint64_t>(r0) * row_bytes +
                           col_off,
                       static_cast<std::uint64_t>(r1 - r0 - 1) * row_bytes +
                           tail_bytes,
                       static_cast<std::uint32_t>(k1 - k0), true});
          // ~2 flops per updated element.
          std::uint64_t work = static_cast<std::uint64_t>(r1 - r0) *
                               static_cast<std::uint64_t>(k1 - k0) *
                               static_cast<std::uint64_t>(p.n - k0) * 2;
          dag::NodeId leaf = g.add_child(parent, work);
          g.set_traces(leaf, store.add(std::move(t)), -1);
        });
  }
  return bundle;
}

}  // namespace cab::apps
