#pragma once

#include "apps/app_common.hpp"
#include "runtime/runtime.hpp"

namespace cab::apps {

/// Gaussian elimination without pivoting on an n x n matrix of doubles
/// (Fig. 4 / Table IV benchmark). For each pivot k the trailing rows
/// k+1..n-1 are updated in parallel (binary row division); pivot steps are
/// sequential phases. The TRICI angle: every update task reads the shared
/// pivot row (constructive sharing inside a squad) and rewrites its own
/// rows, which are revisited at every later pivot step (cross-phase reuse
/// conditional on placement stability).
struct GeParams {
  std::int64_t n = 1024;
  std::int64_t leaf_rows = 64;

  std::int32_t branching() const { return 2; }
  std::uint64_t input_bytes() const {
    return static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n) *
           sizeof(double);
  }
};

/// Runs GE on the threaded runtime. Returns the checksum of U (the
/// eliminated matrix).
double run_ge(runtime::Runtime& rt, const GeParams& p);

/// Serial reference for verification.
double run_ge_serial(const GeParams& p);

/// Simulator model: n-1 sequential pivot phases. To keep the phase count
/// tractable at large n, consecutive pivots are grouped into panels of
/// `pivots_per_phase` (trace granularity only; arithmetic volume matches).
DagBundle build_ge_dag(const GeParams& p, std::int64_t pivots_per_phase = 8);

}  // namespace cab::apps
