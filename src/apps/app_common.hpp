#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "cachesim/trace.hpp"
#include "dag/partition.hpp"
#include "dag/task_graph.hpp"

namespace cab::apps {

/// A benchmark application's simulator model: the execution DAG, the
/// memory traces its tasks issue, and the partitioning parameters (B, Sd)
/// the paper's semi-automatic method would receive on the command line.
struct DagBundle {
  std::string name;
  dag::TaskGraph graph;
  cachesim::TraceStore traces;
  /// Branching degree B of the recursive procedure.
  std::int32_t branching = 2;
  /// Input data size Sd in bytes (what Eq. 4 divides by Sc).
  std::uint64_t input_bytes = 0;
};

/// Virtual base addresses for the arrays of a simulated application.
/// Arrays are spaced 8 GiB apart so ranges never collide.
inline constexpr std::uint64_t array_base(int index) {
  return (static_cast<std::uint64_t>(index) + 1) << 33;
}

/// Recursively splits [lo, hi) in two (the B=2 divide pattern of Fig. 1)
/// until the range is <= grain, adding divide nodes with `divide_work`
/// under `parent`; `leaf_fn(parent_of_leaf, lo, hi)` creates each leaf.
void split_range(
    dag::TaskGraph& g, dag::NodeId parent, std::int64_t lo, std::int64_t hi,
    std::int64_t grain, std::uint64_t divide_work,
    const std::function<void(dag::NodeId, std::int64_t, std::int64_t)>&
        leaf_fn);

/// Number of levels the binary split of [0, n) with the given grain adds
/// below the split root (0 when n <= grain).
std::int32_t split_depth(std::int64_t n, std::int64_t grain);

}  // namespace cab::apps
