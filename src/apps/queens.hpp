#pragma once

#include <vector>

#include "apps/app_common.hpp"
#include "runtime/runtime.hpp"

namespace cab::apps {

/// N-queens solution counting (Table III CPU-bound benchmark). The
/// recursion spawns one task per legal placement in the next row down to
/// `spawn_depth`, then solves serially — the classic Cilk nqueens shape.
/// CPU-bound: no shared data beyond tiny board vectors, so the paper runs
/// it with BL = 0 (Fig. 8) and measures pure scheduler overhead.
struct QueensParams {
  std::int32_t n = 12;
  std::int32_t spawn_depth = 4;
};

/// Counts all solutions on the threaded runtime.
std::uint64_t run_queens(runtime::Runtime& rt, const QueensParams& p);

/// First-solution (speculative) search — the variant that makes
/// "Queens(20)" (Table III) feasible: parallel tasks abandon their
/// subtrees once any task has published a solution. Returns the column
/// of each row's queen, empty if no solution exists.
std::vector<std::int32_t> run_queens_first(runtime::Runtime& rt,
                                           const QueensParams& p);

/// Serial reference.
std::uint64_t run_queens_serial(const QueensParams& p);

/// Simulator model: the real backtracking tree expanded to spawn_depth;
/// each leaf carries work proportional to its true serial subtree size
/// (measured during the build). Traces are empty — CPU-bound.
DagBundle build_queens_dag(const QueensParams& p);

}  // namespace cab::apps
