#pragma once

#include "apps/app_common.hpp"
#include "runtime/runtime.hpp"

namespace cab::apps {

/// Radix-2 Cooley-Tukey FFT over n complex doubles (Table III CPU-bound
/// benchmark). Recursive out-of-place formulation: split even/odd into a
/// scratch buffer, transform the halves in parallel, then combine with
/// butterflies (the post part). The paper reports <5% CAB overhead for
/// fft — the level bookkeeping on its many small frames (Section V-D).
struct FftParams {
  std::int64_t n = 1 << 18;       ///< must be a power of two
  std::int64_t leaf_elems = 4096; ///< serial below this size
};

/// Runs FFT then inverse FFT on the threaded runtime; returns the maximum
/// absolute round-trip error (should be ~1e-12 * n).
double run_fft_roundtrip(runtime::Runtime& rt, const FftParams& p);

/// Serial reference of the same round-trip.
double run_fft_roundtrip_serial(const FftParams& p);

/// Simulator model: binary split tree with split (pre) and butterfly
/// (post) traces; high arithmetic intensity per byte => CPU-bound.
DagBundle build_fft_dag(const FftParams& p);

}  // namespace cab::apps
