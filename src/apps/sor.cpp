#include "apps/sor.hpp"

#include <vector>

namespace cab::apps {
namespace {

/// One half-sweep (color = 0 for red, 1 for black) over interior rows
/// [r0, r1), in place.
void sor_rows(double* a, std::int64_t cols, std::int64_t r0, std::int64_t r1,
              int color, double omega) {
  for (std::int64_t r = r0; r < r1; ++r) {
    double* up = a + (r - 1) * cols;
    double* mid = a + r * cols;
    double* down = a + (r + 1) * cols;
    // Points where (r + c) % 2 == color.
    std::int64_t c0 = 1 + ((r + 1 + color) % 2);
    for (std::int64_t c = c0; c < cols - 1; c += 2) {
      const double stencil =
          0.25 * (up[c] + down[c] + mid[c - 1] + mid[c + 1]);
      mid[c] = mid[c] + omega * (stencil - mid[c]);
    }
  }
}

void sor_rec(double* a, std::int64_t cols, std::int64_t r0, std::int64_t r1,
             int color, double omega, std::int64_t leaf_rows) {
  if (r1 - r0 <= leaf_rows) {
    sor_rows(a, cols, r0, r1, color, omega);
    return;
  }
  const std::int64_t mid = r0 + (r1 - r0) / 2;
  runtime::Runtime::spawn(
      [=] { sor_rec(a, cols, r0, mid, color, omega, leaf_rows); });
  runtime::Runtime::spawn(
      [=] { sor_rec(a, cols, mid, r1, color, omega, leaf_rows); });
  runtime::Runtime::sync();
}

void init_grid(std::vector<double>& a, std::int64_t rows, std::int64_t cols) {
  for (std::int64_t r = 0; r < rows; ++r)
    for (std::int64_t c = 0; c < cols; ++c)
      a[static_cast<std::size_t>(r * cols + c)] =
          (r == 0 || c == 0) ? 1.0 : 0.001 * ((r * 17 + c * 3) % 101);
}

double checksum(const std::vector<double>& a) {
  double s = 0;
  for (double v : a) s += v;
  return s;
}

}  // namespace

double run_sor(runtime::Runtime& rt, const SorParams& p) {
  std::vector<double> a(static_cast<std::size_t>(p.rows * p.cols));
  init_grid(a, p.rows, p.cols);
  double* data = a.data();
  rt.run([&] {
    for (std::int32_t it = 0; it < p.iterations; ++it) {
      for (int color = 0; color < 2; ++color) {
        sor_rec(data, p.cols, 1, p.rows - 1, color, p.omega, p.leaf_rows);
      }
    }
  });
  return checksum(a);
}

double run_sor_serial(const SorParams& p) {
  std::vector<double> a(static_cast<std::size_t>(p.rows * p.cols));
  init_grid(a, p.rows, p.cols);
  for (std::int32_t it = 0; it < p.iterations; ++it)
    for (int color = 0; color < 2; ++color)
      sor_rows(a.data(), p.cols, 1, p.rows - 1, color, p.omega);
  return checksum(a);
}

DagBundle build_sor_dag(const SorParams& p) {
  DagBundle bundle;
  bundle.name = "sor";
  bundle.branching = p.branching();
  bundle.input_bytes = p.input_bytes();

  dag::TaskGraph& g = bundle.graph;
  cachesim::TraceStore& store = bundle.traces;
  const std::uint64_t base = array_base(0);
  const std::uint64_t row_bytes =
      static_cast<std::uint64_t>(p.cols) * sizeof(double);
  // ~6 flops per updated point, half the points per half-sweep.
  const std::uint64_t work_per_row = static_cast<std::uint64_t>(p.cols) * 3;

  dag::NodeId root = g.add_root(1);
  g.set_sequential(root, true);

  for (std::int32_t phase = 0; phase < 2 * p.iterations; ++phase) {
    split_range(
        g, root, 1, p.rows - 1, p.leaf_rows, /*divide_work=*/8,
        [&](dag::NodeId parent, std::int64_t r0, std::int64_t r1) {
          // Reads rows r0-1..r1, writes (half of) rows r0..r1-1 in place.
          cachesim::Trace t;
          t.push_back({base + static_cast<std::uint64_t>(r0 - 1) * row_bytes,
                       static_cast<std::uint64_t>(r1 - r0 + 2) * row_bytes, 1,
                       false});
          // In-place update: every line of the task's own rows is written
          // (both colors live in every line — 8 doubles per 64B line).
          t.push_back({base + static_cast<std::uint64_t>(r0) * row_bytes,
                       static_cast<std::uint64_t>(r1 - r0) * row_bytes, 1,
                       true});
          dag::NodeId leaf = g.add_child(
              parent, static_cast<std::uint64_t>(r1 - r0) * work_per_row);
          g.set_traces(leaf, store.add(std::move(t)), -1);
        });
  }
  return bundle;
}

}  // namespace cab::apps
