#pragma once

#include "apps/app_common.hpp"
#include "runtime/runtime.hpp"

namespace cab::apps {

/// Tiled dense Cholesky factorization A = L*L^T of a symmetric positive
/// definite n x n matrix (Table III CPU-bound benchmark). Right-looking:
/// for every k — factor tile (k,k); solve the panel tiles (i,k) in
/// parallel; update the trailing tiles (i,j) in parallel. The per-k phases
/// are sequential; within a phase task generation is *flat* (one spawn
/// per tile op), exercising the flat scheme of Section IV-D. At tile size
/// b the ops do O(b^3) flops on O(b^2) data: CPU-bound.
struct CholeskyParams {
  std::int64_t n = 512;
  std::int64_t tile = 64;  ///< must divide n

  std::int32_t branching() const { return 2; }
  std::uint64_t input_bytes() const {
    return static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n) *
           sizeof(double);
  }
};

/// Factors a generated SPD matrix on the threaded runtime; returns the
/// max |(L*L^T - A)| element error (0 within fp tolerance when correct).
double run_cholesky(runtime::Runtime& rt, const CholeskyParams& p);

/// Serial reference of the same factorization; same error metric.
double run_cholesky_serial(const CholeskyParams& p);

/// Simulator model: sequential k phases, flat tile-op tasks inside each.
DagBundle build_cholesky_dag(const CholeskyParams& p);

}  // namespace cab::apps
