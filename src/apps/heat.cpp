#include "apps/heat.hpp"

#include <vector>

#include "util/assert.hpp"

namespace cab::apps {

void split_range(
    dag::TaskGraph& g, dag::NodeId parent, std::int64_t lo, std::int64_t hi,
    std::int64_t grain, std::uint64_t divide_work,
    const std::function<void(dag::NodeId, std::int64_t, std::int64_t)>&
        leaf_fn) {
  CAB_CHECK(grain >= 1 && lo < hi, "invalid split range");
  if (hi - lo <= grain) {
    leaf_fn(parent, lo, hi);
    return;
  }
  dag::NodeId n = g.add_child(parent, divide_work);
  const std::int64_t mid = lo + (hi - lo) / 2;
  split_range(g, n, lo, mid, grain, divide_work, leaf_fn);
  split_range(g, n, mid, hi, grain, divide_work, leaf_fn);
}

std::int32_t split_depth(std::int64_t n, std::int64_t grain) {
  std::int32_t d = 0;
  while (n > grain) {
    n = (n + 1) / 2;
    ++d;
  }
  return d;
}

namespace {

/// One Jacobi step over rows [r0, r1) (interior rows only; boundary rows
/// 0 and rows-1 are fixed, as in the paper's 10x10 example).
void heat_rows(const double* src, double* dst, std::int64_t cols,
               std::int64_t r0, std::int64_t r1, std::int64_t rows) {
  for (std::int64_t r = r0; r < r1; ++r) {
    const double* up = src + (r - 1) * cols;
    const double* mid = src + r * cols;
    const double* down = src + (r + 1) * cols;
    double* out = dst + r * cols;
    if (r == 0 || r == rows - 1) {
      for (std::int64_t c = 0; c < cols; ++c) out[c] = mid[c];
      continue;
    }
    out[0] = mid[0];
    out[cols - 1] = mid[cols - 1];
    for (std::int64_t c = 1; c < cols - 1; ++c) {
      out[c] =
          0.25 * (up[c] + down[c] + mid[c - 1] + mid[c + 1]);
    }
  }
}

/// Recursive row division on the runtime: the exact DAG of Fig. 1.
void heat_rec(const double* src, double* dst, std::int64_t cols,
              std::int64_t r0, std::int64_t r1, std::int64_t rows,
              std::int64_t leaf_rows) {
  if (r1 - r0 <= leaf_rows) {
    heat_rows(src, dst, cols, r0, r1, rows);
    return;
  }
  const std::int64_t mid = r0 + (r1 - r0) / 2;
  runtime::Runtime::spawn([=] {
    heat_rec(src, dst, cols, r0, mid, rows, leaf_rows);
  });
  runtime::Runtime::spawn([=] {
    heat_rec(src, dst, cols, mid, r1, rows, leaf_rows);
  });
  runtime::Runtime::sync();
}

void init_grid(std::vector<double>& a, std::int64_t rows, std::int64_t cols) {
  for (std::int64_t r = 0; r < rows; ++r)
    for (std::int64_t c = 0; c < cols; ++c)
      a[static_cast<std::size_t>(r * cols + c)] =
          (r == 0) ? 100.0 : (r == rows - 1 ? -40.0 : 0.5 * ((r * 31 + c) % 7));
}

double checksum(const std::vector<double>& a) {
  double s = 0;
  for (double v : a) s += v;
  return s;
}

}  // namespace

double run_heat(runtime::Runtime& rt, const HeatParams& p) {
  std::vector<double> a(static_cast<std::size_t>(p.rows * p.cols));
  std::vector<double> b(a.size());
  init_grid(a, p.rows, p.cols);

  double* src = a.data();
  double* dst = b.data();
  rt.run([&] {
    for (std::int32_t s = 0; s < p.steps; ++s) {
      heat_rec(src, dst, p.cols, 0, p.rows, p.rows, p.leaf_rows);
      std::swap(src, dst);
    }
  });
  return checksum(src == a.data() ? a : b);
}

double run_heat_serial(const HeatParams& p) {
  std::vector<double> a(static_cast<std::size_t>(p.rows * p.cols));
  std::vector<double> b(a.size());
  init_grid(a, p.rows, p.cols);
  double* src = a.data();
  double* dst = b.data();
  for (std::int32_t s = 0; s < p.steps; ++s) {
    heat_rows(src, dst, p.cols, 0, p.rows, p.rows);
    std::swap(src, dst);
  }
  return checksum(src == a.data() ? a : b);
}

DagBundle build_heat_dag(const HeatParams& p) {
  DagBundle bundle;
  bundle.name = "heat";
  bundle.branching = p.branching();
  bundle.input_bytes = p.input_bytes();

  dag::TaskGraph& g = bundle.graph;
  cachesim::TraceStore& store = bundle.traces;
  const std::uint64_t row_bytes =
      static_cast<std::uint64_t>(p.cols) * sizeof(double);
  // Work: ~4 flops + address arithmetic per point.
  const std::uint64_t work_per_row = static_cast<std::uint64_t>(p.cols) * 4;

  dag::NodeId root = g.add_root(1);
  g.set_sequential(root, true);

  for (std::int32_t step = 0; step < p.steps; ++step) {
    const std::uint64_t src = array_base(step % 2);
    const std::uint64_t dst = array_base((step + 1) % 2);
    // Each step: the spawn of Fig. 1 — one task dividing rows in two.
    split_range(
        g, root, 0, p.rows, p.leaf_rows, /*divide_work=*/8,
        [&](dag::NodeId parent, std::int64_t r0, std::int64_t r1) {
          const std::int64_t lo = r0 > 0 ? r0 - 1 : 0;
          const std::int64_t hi = r1 < p.rows ? r1 + 1 : p.rows;
          cachesim::Trace t;
          t.push_back({src + static_cast<std::uint64_t>(lo) * row_bytes,
                       static_cast<std::uint64_t>(hi - lo) * row_bytes, 1,
                       false});
          t.push_back({dst + static_cast<std::uint64_t>(r0) * row_bytes,
                       static_cast<std::uint64_t>(r1 - r0) * row_bytes, 1,
                       true});
          dag::NodeId leaf = g.add_child(
              parent, static_cast<std::uint64_t>(r1 - r0) * work_per_row);
          g.set_traces(leaf, store.add(std::move(t)), -1);
        });
  }
  return bundle;
}

}  // namespace cab::apps
