#include "apps/ck.hpp"

#include <algorithm>
#include <array>
#include <vector>

namespace cab::apps {
namespace {

/// Board: 8x8, value per square: 0 empty, +1 white man, +2 white king,
/// -1 black man, -2 black king. White moves "up" (decreasing row) and
/// maximizes.
using Board = std::array<std::int8_t, 64>;

Board initial_board() {
  Board b{};
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < 8; ++c)
      if ((r + c) % 2 == 1) b[static_cast<std::size_t>(r * 8 + c)] = -1;
  for (int r = 5; r < 8; ++r)
    for (int c = 0; c < 8; ++c)
      if ((r + c) % 2 == 1) b[static_cast<std::size_t>(r * 8 + c)] = 1;
  return b;
}

struct Move {
  std::int8_t from, to, captured;  // captured square or -1
};

bool own_piece(std::int8_t v, bool white) { return white ? v > 0 : v < 0; }
bool enemy_piece(std::int8_t v, bool white) { return white ? v < 0 : v > 0; }

void gen_moves(const Board& b, bool white, std::vector<Move>& out) {
  out.clear();
  std::vector<Move> quiet;
  for (int sq = 0; sq < 64; ++sq) {
    const std::int8_t v = b[static_cast<std::size_t>(sq)];
    if (!own_piece(v, white)) continue;
    const bool king = v == 2 || v == -2;
    const int r = sq / 8, c = sq % 8;
    for (int dr = -1; dr <= 1; dr += 2) {
      // Men move only forward; kings both ways.
      if (!king && ((white && dr != -1) || (!white && dr != 1))) continue;
      for (int dc = -1; dc <= 1; dc += 2) {
        const int nr = r + dr, nc = c + dc;
        if (nr < 0 || nr >= 8 || nc < 0 || nc >= 8) continue;
        const int nsq = nr * 8 + nc;
        const std::int8_t nv = b[static_cast<std::size_t>(nsq)];
        if (nv == 0) {
          quiet.push_back({static_cast<std::int8_t>(sq),
                           static_cast<std::int8_t>(nsq), -1});
        } else if (enemy_piece(nv, white)) {
          const int jr = nr + dr, jc = nc + dc;
          if (jr < 0 || jr >= 8 || jc < 0 || jc >= 8) continue;
          const int jsq = jr * 8 + jc;
          if (b[static_cast<std::size_t>(jsq)] == 0) {
            out.push_back({static_cast<std::int8_t>(sq),
                           static_cast<std::int8_t>(jsq),
                           static_cast<std::int8_t>(nsq)});
          }
        }
      }
    }
  }
  // Captures preferred (rudimentary "mandatory jump"): only fall back to
  // quiet moves when no capture exists.
  if (out.empty()) out = std::move(quiet);
}

Board apply_move(const Board& b, const Move& m) {
  Board nb = b;
  std::int8_t v = nb[static_cast<std::size_t>(m.from)];
  nb[static_cast<std::size_t>(m.from)] = 0;
  if (m.captured >= 0) nb[static_cast<std::size_t>(m.captured)] = 0;
  // Promotion on the back rank.
  const int to_row = m.to / 8;
  if (v == 1 && to_row == 0) v = 2;
  if (v == -1 && to_row == 7) v = -2;
  nb[static_cast<std::size_t>(m.to)] = v;
  return nb;
}

std::int32_t evaluate(const Board& b) {
  std::int32_t score = 0;
  for (int sq = 0; sq < 64; ++sq) {
    switch (b[static_cast<std::size_t>(sq)]) {
      case 1: score += 100 + (7 - sq / 8); break;   // advance bonus
      case 2: score += 250; break;
      case -1: score -= 100 + sq / 8; break;
      case -2: score -= 250; break;
      default: break;
    }
  }
  return score;
}

std::int32_t minimax(const Board& b, bool white, std::int32_t depth,
                     std::uint64_t* nodes = nullptr) {
  if (nodes) ++*nodes;
  if (depth == 0) return evaluate(b);
  std::vector<Move> moves;
  gen_moves(b, white, moves);
  if (moves.empty()) return white ? -100000 : 100000;  // no moves: loss
  std::int32_t best = white ? -1000000 : 1000000;
  for (const Move& m : moves) {
    const std::int32_t v = minimax(apply_move(b, m), !white, depth - 1, nodes);
    best = white ? std::max(best, v) : std::min(best, v);
  }
  return best;
}

void ck_rec(const Board& b, bool white, std::int32_t depth,
            std::int32_t spawn_depth, std::int32_t* out) {
  if (depth == 0) {
    *out = evaluate(b);
    return;
  }
  std::vector<Move> moves;
  gen_moves(b, white, moves);
  if (moves.empty()) {
    *out = white ? -100000 : 100000;
    return;
  }
  if (spawn_depth <= 0) {
    *out = minimax(b, white, depth);
    return;
  }
  std::vector<std::int32_t> results(moves.size());
  for (std::size_t i = 0; i < moves.size(); ++i) {
    const Board nb = apply_move(b, moves[i]);
    std::int32_t* slot = &results[i];
    runtime::Runtime::spawn([=] {
      ck_rec(nb, !white, depth - 1, spawn_depth - 1, slot);
    });
  }
  runtime::Runtime::sync();
  *out = white ? *std::max_element(results.begin(), results.end())
               : *std::min_element(results.begin(), results.end());
}

}  // namespace

std::int32_t run_ck(runtime::Runtime& rt, const CkParams& p) {
  std::int32_t result = 0;
  const Board b = initial_board();
  rt.run([&] { ck_rec(b, true, p.depth, p.spawn_depth, &result); });
  return result;
}

std::int32_t run_ck_serial(const CkParams& p) {
  return minimax(initial_board(), true, p.depth);
}

DagBundle build_ck_dag(const CkParams& p) {
  DagBundle bundle;
  bundle.name = "ck";
  bundle.branching = 7;  // typical move count
  bundle.input_bytes = 0;

  dag::TaskGraph& g = bundle.graph;
  dag::NodeId root = g.add_root(1);

  struct Builder {
    dag::TaskGraph& g;
    std::int32_t depth;

    void expand(dag::NodeId parent, const Board& b, bool white,
                std::int32_t d, std::int32_t spawn_d) {
      if (d == 0 || spawn_d <= 0) {
        std::uint64_t nodes = 0;
        minimax(b, white, d, &nodes);
        g.add_child(parent, 10 + nodes * 60);  // ~60 work units per node
        return;
      }
      std::vector<Move> moves;
      gen_moves(b, white, moves);
      if (moves.empty()) {
        g.add_child(parent, 10);
        return;
      }
      dag::NodeId me = g.add_child(parent, 20);
      for (const Move& m : moves)
        expand(me, apply_move(b, m), !white, d - 1, spawn_d - 1);
    }
  } builder{g, p.depth};

  builder.expand(root, initial_board(), true, p.depth, p.spawn_depth);
  return bundle;
}

}  // namespace cab::apps
