#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/cache_line.hpp"

namespace cab::deque {

/// Lock-free work-stealing deque of pointers, after Chase & Lev, "Dynamic
/// Circular Work-Stealing Deque" (SPAA 2005), with the C11 memory-order
/// treatment of Lê et al. (PPoPP 2013).
///
/// Single owner thread calls push_bottom / pop_bottom; any number of thief
/// threads call steal_top. The backing ring grows on demand; retired rings
/// are kept alive until destruction, which makes concurrent readers of an
/// old ring safe without a reclamation scheme (memory cost is at most 2x
/// the high-water mark).
///
/// This is the intra-socket task pool of the CAB runtime (Fig. 3) and the
/// per-worker pool of the classic work-stealing baseline.
template <typename T>
class ChaseLevDeque {
  static_assert(std::is_pointer_v<T>, "stores raw pointers to task frames");

 public:
  explicit ChaseLevDeque(std::size_t initial_capacity = 64)
      : top_(0), bottom_(0) {
    rings_.push_back(std::make_unique<Ring>(round_up_pow2(initial_capacity)));
    ring_.store(rings_.back().get(), std::memory_order_relaxed);
  }

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  /// Owner only. Pushes onto the bottom (LIFO end).
  void push_bottom(T item) {
    std::int64_t b = bottom_.load(std::memory_order_relaxed);
    std::int64_t t = top_.load(std::memory_order_acquire);
    Ring* r = ring_.load(std::memory_order_relaxed);
    if (b - t > static_cast<std::int64_t>(r->capacity) - 1) {
      r = grow(r, t, b);
    }
    r->put(b, item);
    // Release *store* (not a release fence + relaxed store, which is
    // equivalent on the metal but invisible to TSan): pairs with the
    // thief's acquire load of bottom_ to publish the slot and the task
    // frame behind it. This is the PPoPP'13 formulation.
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// Owner only. Pops from the bottom (LIFO). Returns nullptr when empty.
  T pop_bottom() {
    std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Ring* r = ring_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t > b) {
      // Deque was empty; restore.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    T item = r->get(b);
    if (t == b) {
      // Last element: race against thieves via CAS on top.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        item = nullptr;  // a thief won
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return item;
  }

  /// Thieves (any thread). Steals from the top (FIFO end). Returns nullptr
  /// when empty or when the steal raced and lost.
  T steal_top() {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return nullptr;
    Ring* r = ring_.load(std::memory_order_consume);
    T item = r->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;  // lost the race
    }
    return item;
  }

  /// Racy size estimate, for victim-selection heuristics and stats only.
  std::size_t size_estimate() const {
    std::int64_t b = bottom_.load(std::memory_order_relaxed);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  bool empty_estimate() const { return size_estimate() == 0; }

 private:
  struct Ring {
    explicit Ring(std::size_t cap) : capacity(cap), mask(cap - 1), slots(cap) {
      for (auto& s : slots) s.store(nullptr, std::memory_order_relaxed);
    }
    T get(std::int64_t i) const {
      return slots[static_cast<std::size_t>(i) & mask].load(
          std::memory_order_relaxed);
    }
    void put(std::int64_t i, T v) {
      slots[static_cast<std::size_t>(i) & mask].store(
          v, std::memory_order_relaxed);
    }
    const std::size_t capacity;
    const std::size_t mask;
    std::vector<std::atomic<T>> slots;
  };

  static std::size_t round_up_pow2(std::size_t v) {
    std::size_t p = 1;
    while (p < v) p <<= 1;
    return p < 8 ? 8 : p;
  }

  Ring* grow(Ring* old, std::int64_t t, std::int64_t b) {
    auto bigger = std::make_unique<Ring>(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    Ring* raw = bigger.get();
    rings_.push_back(std::move(bigger));  // owner-only; old ring stays alive
    ring_.store(raw, std::memory_order_release);
    return raw;
  }

  alignas(util::kCacheLineSize) std::atomic<std::int64_t> top_;
  alignas(util::kCacheLineSize) std::atomic<std::int64_t> bottom_;
  alignas(util::kCacheLineSize) std::atomic<Ring*> ring_;
  std::vector<std::unique_ptr<Ring>> rings_;  // owner-mutated only
};

}  // namespace cab::deque
