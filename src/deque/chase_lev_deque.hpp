#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/cache_line.hpp"
#include "util/sync_policy.hpp"

namespace cab::deque {

/// Lock-free work-stealing deque of pointers, after Chase & Lev, "Dynamic
/// Circular Work-Stealing Deque" (SPAA 2005), with the C11 memory-order
/// treatment of Lê et al. (PPoPP 2013).
///
/// Single owner thread calls push_bottom / pop_bottom; any number of thief
/// threads call steal_top. The backing ring grows on demand; retired rings
/// are kept alive until destruction, which makes concurrent readers of an
/// old ring safe without a reclamation scheme (memory cost is at most 2x
/// the high-water mark).
///
/// This is the intra-socket task pool of the CAB runtime (Fig. 3) and the
/// per-worker pool of the classic work-stealing baseline.
///
/// Templated on the Sync policy (util/sync_policy.hpp): production code
/// uses the default `util::RealSync` (plain std::atomic); the model
/// checker instantiates the same template over `chk::atomic` and explores
/// every interleaving of the push/pop/steal races exhaustively
/// (tests/test_model_check.cpp). Every memory_order below carries a
/// `mo:`/`seq_cst:` justification audited against that checked model.
template <typename T, typename Sync = util::RealSync>
class ChaseLevDeque {
  static_assert(std::is_pointer_v<T>, "stores raw pointers to task frames");

  template <typename U>
  using Atomic = typename Sync::template atomic_t<U>;

 public:
  explicit ChaseLevDeque(std::size_t initial_capacity = 64)
      : top_(0), bottom_(0) {
    rings_.push_back(std::make_unique<Ring>(round_up_pow2(initial_capacity)));
    // mo: relaxed — single-threaded construction; the object is published
    // to thieves by whatever hand-off publishes the deque itself.
    ring_.store(rings_.back().get(), std::memory_order_relaxed);
  }

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  /// Owner only. Pushes onto the bottom (LIFO end).
  void push_bottom(T item) {
    // mo: relaxed — bottom_ is owner-written only; the owner's own prior
    // store is visible to itself without ordering.
    std::int64_t b = bottom_.load(std::memory_order_relaxed);
    // mo: acquire — pairs with the release CAS in steal_top so the slot a
    // thief vacated is observed empty before we overwrite top-side state
    // (Lê et al. Fig. 1 load of top in push).
    std::int64_t t = top_.load(std::memory_order_acquire);
    Ring* r = ring_.load(std::memory_order_relaxed);
    if (b - t > static_cast<std::int64_t>(r->capacity) - 1) {
      r = grow(r, t, b);
    }
    r->put(b, item);
    // mo: release *store* (not a release fence + relaxed store, which is
    // equivalent on the metal but invisible to TSan): pairs with the
    // thief's acquire load of bottom_ to publish the slot and the task
    // frame behind it. This is the PPoPP'13 formulation. Weakening this
    // to relaxed is the checked negative model
    // (ModelCheckNegative.RelaxedPublicationRace shape): the thief would
    // read the task frame without a happens-before edge.
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// Owner only. Pops from the bottom (LIFO). Returns nullptr when empty.
  T pop_bottom() {
    // mo: relaxed — owner-only index maths; ordering is supplied by the
    // fence below.
    std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Ring* r = ring_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    // seq_cst: the store of the decremented bottom_ must be globally
    // ordered against the thief's load of bottom_ in steal_top (whose own
    // seq_cst fence is the other half). With anything weaker, owner and
    // thief can both observe the *pre-race* state of the single remaining
    // element and both take it — the classic Chase–Lev lost/double-take
    // race (the checker's BrokenStealDoubleTake negative model shows the
    // double-take when this protocol is weakened).
    Sync::fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t > b) {
      // Deque was empty; restore.
      // mo: relaxed — owner-only restore; no payload is published.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    T item = r->get(b);
    if (t == b) {
      // Last element: race against thieves via CAS on top.
      // seq_cst: the CAS participates in the same total order as the
      // fences above/in steal_top; exactly one of {owner, thief} wins the
      // final element. Failure order relaxed — on failure we only restore
      // bottom_ (owner-local).
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        item = nullptr;  // a thief won
      }
      // mo: relaxed — owner-only restore to the canonical empty shape.
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return item;
  }

  /// Thieves (any thread). Steals from the top (FIFO end). Returns nullptr
  /// when empty or when the steal raced and lost.
  T steal_top() {
    // mo: acquire — pairs with the release CAS of competing thieves so a
    // freshly incremented top_ is seen before bottom_ is probed.
    std::int64_t t = top_.load(std::memory_order_acquire);
    // seq_cst: orders the top_ load above against the bottom_ load below
    // in the global fence order shared with pop_bottom — the thief must
    // not read a stale bottom_ from before an owner's in-flight pop
    // (Lê et al. Fig. 2).
    Sync::fence(std::memory_order_seq_cst);
    // mo: acquire — pairs with the owner's release store in push_bottom:
    // observing b > t here is what publishes the slot contents and the
    // task frame behind the pointer.
    std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return nullptr;
    // mo: acquire (was consume — consume is deprecated and compilers
    // promote it to acquire anyway; the checked model needs the explicit
    // edge): pairs with the release store in grow() so the new ring's
    // slots are initialized before we index them.
    Ring* r = ring_.load(std::memory_order_acquire);
    T item = r->get(t);
    // seq_cst: same total order as pop_bottom's CAS — arbitration for the
    // final element. Failure order relaxed: a lost race returns nullptr
    // without touching shared state.
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;  // lost the race
    }
    return item;
  }

  /// Racy size estimate, for victim-selection heuristics and stats only.
  std::size_t size_estimate() const {
    // mo: relaxed — heuristic readers tolerate any interleaving.
    std::int64_t b = bottom_.load(std::memory_order_relaxed);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  bool empty_estimate() const { return size_estimate() == 0; }

 private:
  struct Ring {
    explicit Ring(std::size_t cap) : capacity(cap), mask(cap - 1), slots(cap) {
      // mo: relaxed — construction precedes publication via ring_.
      for (auto& s : slots) s.store(nullptr, std::memory_order_relaxed);
    }
    T get(std::int64_t i) const {
      // mo: relaxed — slot contents are published by bottom_ (push) or
      // ring_ (grow) release stores, never by the slot itself.
      return slots[static_cast<std::size_t>(i) & mask].load(
          std::memory_order_relaxed);
    }
    void put(std::int64_t i, T v) {
      // mo: relaxed — see get().
      slots[static_cast<std::size_t>(i) & mask].store(
          v, std::memory_order_relaxed);
    }
    const std::size_t capacity;
    const std::size_t mask;
    // pad-ok: ring slots are deliberately dense — the owner streams
    // through adjacent slots on push/pop, so padding each slot to a cache
    // line would trade that locality (and multiply the Θ(C) ring memory)
    // for a thief contention case the top_-CAS already serializes.
    std::vector<Atomic<T>> slots;
  };

  static std::size_t round_up_pow2(std::size_t v) {
    std::size_t p = 1;
    while (p < v) p <<= 1;
    // Floor of 2: a 1-slot ring would make push/grow ambiguous. (The old
    // floor of 8 was arbitrary; 2 lets the model checker exercise grow()
    // with a handful of schedule points.)
    return p < 2 ? 2 : p;
  }

  Ring* grow(Ring* old, std::int64_t t, std::int64_t b) {
    auto bigger = std::make_unique<Ring>(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    Ring* raw = bigger.get();
    rings_.push_back(std::move(bigger));  // owner-only; old ring stays alive
    // mo: release — publishes the copied slots to thieves that acquire
    // ring_ in steal_top. Thieves still racing on the *old* ring are safe
    // because retired rings are kept alive until destruction.
    ring_.store(raw, std::memory_order_release);
    return raw;
  }

  alignas(util::kCacheLineSize) Atomic<std::int64_t> top_;
  alignas(util::kCacheLineSize) Atomic<std::int64_t> bottom_;
  alignas(util::kCacheLineSize) Atomic<Ring*> ring_;
  std::vector<std::unique_ptr<Ring>> rings_;  // owner-mutated only
};

}  // namespace cab::deque
