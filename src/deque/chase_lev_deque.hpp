#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/cache_line.hpp"
#include "util/sync_policy.hpp"

namespace cab::deque {

/// Lock-free work-stealing deque of pointers, after Chase & Lev, "Dynamic
/// Circular Work-Stealing Deque" (SPAA 2005), with the C11 memory-order
/// treatment of Lê et al. (PPoPP 2013).
///
/// Single owner thread calls push_bottom / pop_bottom; any number of thief
/// threads call steal_top. The backing ring grows on demand; retired rings
/// are kept alive until destruction, which makes concurrent readers of an
/// old ring safe without a reclamation scheme (memory cost is at most 2x
/// the high-water mark).
///
/// This is the intra-socket task pool of the CAB runtime (Fig. 3) and the
/// per-worker pool of the classic work-stealing baseline.
///
/// Besides the classic single-task steal_top, the deque supports a
/// *steal-half batch* transfer (steal_batch) for the intra-socket tier:
/// one claim CAS on top_ fences out every other consumer, the thief reads
/// up to half the tasks, and a single claim-clearing store of top_
/// linearizes the whole batch. See the claim-bit protocol notes on
/// steal_batch below and DESIGN.md ("Steal-half batching").
///
/// Templated on the Sync policy (util/sync_policy.hpp): production code
/// uses the default `util::RealSync` (plain std::atomic); the model
/// checker instantiates the same template over `chk::atomic` and explores
/// every interleaving of the push/pop/steal/steal_batch races exhaustively
/// (tests/test_model_check.cpp). Every memory_order below carries a
/// `mo:`/`seq_cst:` justification audited against that checked model.
template <typename T, typename Sync = util::RealSync>
class ChaseLevDeque {
  static_assert(std::is_pointer_v<T>, "stores raw pointers to task frames");

  template <typename U>
  using Atomic = typename Sync::template atomic_t<U>;

 public:
  /// Claim flag on top_ marking an in-flight batch steal. Bit 62 keeps the
  /// marked value positive and numerically huge, so every unmodified
  /// comparison against bottom_ (`t >= b` in steal_top, `t > b` in
  /// pop_bottom's pre-claim-era shape) reads a claimed deque as "empty" and
  /// every CAS expecting an unclaimed value fails cleanly. A real top index
  /// would need 2^62 lifetime pushes to collide.
  static constexpr std::int64_t kClaimBit = std::int64_t{1} << 62;

  explicit ChaseLevDeque(std::size_t initial_capacity = 64)
      : top_(0), bottom_(0) {
    rings_.push_back(std::make_unique<Ring>(round_up_pow2(initial_capacity)));
    // mo: relaxed — single-threaded construction; the object is published
    // to thieves by whatever hand-off publishes the deque itself.
    ring_.store(rings_.back().get(), std::memory_order_relaxed);
  }

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  /// Owner only. Pushes onto the bottom (LIFO end).
  void push_bottom(T item) {
    // mo: relaxed — bottom_ is owner-written only; the owner's own prior
    // store is visible to itself without ordering.
    std::int64_t b = bottom_.load(std::memory_order_relaxed);
    // mo: acquire — pairs with the release CAS in steal_top so the slot a
    // thief vacated is observed empty before we overwrite top-side state
    // (Lê et al. Fig. 1 load of top in push).
    std::int64_t t = top_.load(std::memory_order_acquire) & ~kClaimBit;
    // The claim bit is masked off for the capacity/grow arithmetic: a
    // claimed top reads as the *pre-claim* base index, which understates
    // free space (the claiming thief will advance top) and so can only
    // grow early, never overwrite a slot the thief is still reading.
    Ring* r = ring_.load(std::memory_order_relaxed);
    if (b - t > static_cast<std::int64_t>(r->capacity) - 1) {
      r = grow(r, t, b);
    }
    r->put(b, item);
    // mo: release *store* (not a release fence + relaxed store, which is
    // equivalent on the metal but invisible to TSan): pairs with the
    // thief's acquire load of bottom_ to publish the slot and the task
    // frame behind it. This is the PPoPP'13 formulation. Weakening this
    // to relaxed is the checked negative model
    // (ModelCheckNegative.RelaxedPublicationRace shape): the thief would
    // read the task frame without a happens-before edge.
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// Owner only. Pops from the bottom (LIFO). Returns nullptr when empty
  /// or when a thief won the race for the last element. While a batch
  /// claim is pending the owner restores bottom_ and waits it out — the
  /// claim window is a handful of instructions on the thief's side, and an
  /// owner that popped under a live claim could double-take an element the
  /// claiming thief is about to copy.
  T pop_bottom() {
    int spins = 1;
    for (;;) {
      // mo: relaxed — owner-only index maths; ordering is supplied by the
      // fence below.
      std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
      Ring* r = ring_.load(std::memory_order_relaxed);
      bottom_.store(b, std::memory_order_relaxed);
      // seq_cst: the store of the decremented bottom_ must be globally
      // ordered against the thief's load of bottom_ in steal_top (whose own
      // seq_cst fence is the other half). With anything weaker, owner and
      // thief can both observe the *pre-race* state of the single remaining
      // element and both take it — the classic Chase–Lev lost/double-take
      // race (the checker's BrokenStealDoubleTake negative model shows the
      // double-take when this protocol is weakened). The same total order
      // is what makes the claim check below sound: if a batch claim's CAS
      // precedes this fence, the load below is guaranteed to observe it.
      Sync::fence(std::memory_order_seq_cst);
      std::int64_t t = top_.load(std::memory_order_relaxed);
      if (t & kClaimBit) {
        // A batch steal holds the claim. Restore bottom_ so the thief's
        // fresh bottom read (after its claim) sees a stable value, then
        // wait for the claim-clearing store and re-run the pop from
        // scratch against the advanced top.
        // mo: relaxed — owner-only restore; no payload is published.
        bottom_.store(b + 1, std::memory_order_relaxed);
        // mo: acquire — pairs with the claim-clearing release store in
        // steal_batch so the retry observes the advanced top (and, via
        // the retry's own fence, a coherent bottom).
        while (top_.load(std::memory_order_acquire) & kClaimBit) {
          Sync::spin_pause(spins);
        }
        continue;
      }
      if (t > b) {
        // Deque was empty; restore.
        // mo: relaxed — owner-only restore; no payload is published.
        bottom_.store(b + 1, std::memory_order_relaxed);
        return nullptr;
      }
      T item = r->get(b);
      if (t == b) {
        // Last element: race against thieves via CAS on top.
        // seq_cst: the CAS participates in the same total order as the
        // fences above/in steal_top; exactly one of {owner, thief} wins the
        // final element. Failure order relaxed — on failure we only restore
        // bottom_ (owner-local). A concurrent steal_batch that claimed
        // after our fence also fails this CAS for us (top_ holds the
        // marked value) — the claiming thief then owns the element.
        if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          item = nullptr;  // a thief won
        }
        // mo: relaxed — owner-only restore to the canonical empty shape.
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
      return item;
    }
  }

  /// Thieves (any thread). Steals from the top (FIFO end). Returns nullptr
  /// when empty or when the steal raced and lost.
  T steal_top() {
    // mo: acquire — pairs with the release CAS of competing thieves so a
    // freshly incremented top_ is seen before bottom_ is probed.
    std::int64_t t = top_.load(std::memory_order_acquire);
    // seq_cst: orders the top_ load above against the bottom_ load below
    // in the global fence order shared with pop_bottom — the thief must
    // not read a stale bottom_ from before an owner's in-flight pop
    // (Lê et al. Fig. 2).
    Sync::fence(std::memory_order_seq_cst);
    // mo: acquire — pairs with the owner's release store in push_bottom:
    // observing b > t here is what publishes the slot contents and the
    // task frame behind the pointer.
    std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return nullptr;
    // mo: acquire (was consume — consume is deprecated and compilers
    // promote it to acquire anyway; the checked model needs the explicit
    // edge): pairs with the release store in grow() so the new ring's
    // slots are initialized before we index them.
    Ring* r = ring_.load(std::memory_order_acquire);
    T item = r->get(t);
    // seq_cst: same total order as pop_bottom's CAS — arbitration for the
    // final element. Failure order relaxed: a lost race returns nullptr
    // without touching shared state. A pending batch claim also lands
    // here: top_ holds the marked value, the expected `t` is unmarked, so
    // the CAS fails and the thief retreats without waiting.
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;  // lost the race
    }
    return item;
  }

  /// Thieves (any thread). Steal-half batch transfer: claims up to
  /// ceil(n/2) tasks (capped at max_out) from the top in one arbitration,
  /// writing them FIFO-oldest-first into `out`. Returns the number taken
  /// (0 when empty, claimed by another batch thief, or the race was lost).
  ///
  /// Protocol (the part the model checker owns): a single CAS marks top_
  /// with kClaimBit. While the mark is visible, every other consumer
  /// backs off — steal_top and competing steal_batch calls fail their
  /// unmarked-expected CASes, and pop_bottom restores bottom_ and spins.
  /// That exclusivity is what makes the *multi-element* read safe: a naive
  /// "read k items then CAS top t→t+k" admits a double-take, because the
  /// owner may plainly pop an interior index j in (t, t+k) while top still
  /// equals t, and the thief's CAS then succeeds anyway (the
  /// BrokenBatchRangeCas negative model replays exactly that). Under the
  /// claim, the thief re-reads bottom_ — guaranteed fresh by the fence
  /// pairing with pop's — sizes the batch from that stable snapshot, and
  /// a single claim-clearing store of top_ = t + k linearizes the batch.
  std::size_t steal_batch(T* out, std::size_t max_out) {
    if (max_out == 0) return 0;
    // mo: acquire — same pairing as steal_top's top_ load; also rejects a
    // visibly claimed deque (marked value reads as huge) before fencing.
    std::int64_t t = top_.load(std::memory_order_acquire);
    // seq_cst: same fence dance as steal_top — orders the top_ load above
    // against the bottom_ probe below in the global order shared with
    // pop_bottom, so the emptiness pre-check is not based on a bottom_
    // from before an in-flight pop.
    Sync::fence(std::memory_order_seq_cst);
    // mo: acquire — pairs with push_bottom's release store (publishes
    // slots for the pre-check; the authoritative read is re-done below).
    std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return 0;  // empty, or claimed by another batch thief
    // seq_cst: the claim is the batch's arbitration point, in the same
    // total order as pop_bottom's and steal_top's CASes — it atomically
    // excludes every other consumer. Failure order relaxed: a lost claim
    // returns without touching shared state.
    if (!top_.compare_exchange_strong(
            t, t | kClaimBit,
            std::memory_order_seq_cst,  // seq_cst: see the comment above
            std::memory_order_relaxed)) {
      return 0;
    }
    // seq_cst: pairs with the fence in pop_bottom. Any owner pop whose
    // top_ read did NOT observe the claim has its fence (and therefore its
    // bottom_ decrement) ordered before this one, so the load below sees
    // it; any pop whose fence follows the claim CAS in the total order is
    // forced to observe the mark and back off. Either way the bottom_
    // snapshot below is a safe upper bound on live tasks.
    Sync::fence(std::memory_order_seq_cst);
    // mo: acquire — pairs with push_bottom's release store so every slot
    // counted here is published before we read it.
    b = bottom_.load(std::memory_order_acquire);
    std::int64_t n = b - t;
    if (n <= 0) {
      // The owner drained (or transiently decremented past) everything
      // before observing the claim. Nothing to take; unmark.
      // mo: release — pairs with pop_bottom's spin acquire; restores the
      // pre-claim value (competing CASes that raced the claim window fail
      // against the mark and simply retry against the restored value).
      top_.store(t, std::memory_order_release);
      return 0;
    }
    std::size_t k = static_cast<std::size_t>((n + 1) / 2);  // steal half, ceil
    if (k > max_out) k = max_out;
    // mo: acquire — pairs with the release store in grow(): whichever ring
    // we observe (retired rings stay alive) contains every live slot in
    // [t, t+k), because grow copies the full masked-[t, b) range and the
    // owner never overwrites a slot below the claim base (push masks the
    // claim bit in its capacity check).
    Ring* r = ring_.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < k; ++i) {
      out[i] = r->get(t + static_cast<std::int64_t>(i));
    }
    // mo: release — the claim-clearing linearization of the whole batch:
    // publishes the advanced top to pop_bottom's spin (acquire) and
    // push_bottom's capacity check, and invalidates every CAS expecting
    // the unmarked pre-claim value. Exclusivity (no other consumer can
    // modify top_ under the mark) is what lets this be a plain store.
    top_.store(t + static_cast<std::int64_t>(k), std::memory_order_release);
    return k;
  }

  /// Racy size estimate, for victim-selection heuristics and stats only.
  std::size_t size_estimate() const {
    // mo: relaxed — heuristic readers tolerate any interleaving. The claim
    // bit is masked so a deque mid-batch-steal reports its pre-claim size
    // instead of zero.
    std::int64_t b = bottom_.load(std::memory_order_relaxed);
    std::int64_t t = top_.load(std::memory_order_relaxed) & ~kClaimBit;
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  bool empty_estimate() const { return size_estimate() == 0; }

 private:
  struct Ring {
    explicit Ring(std::size_t cap) : capacity(cap), mask(cap - 1), slots(cap) {
      // mo: relaxed — construction precedes publication via ring_.
      for (auto& s : slots) s.store(nullptr, std::memory_order_relaxed);
    }
    T get(std::int64_t i) const {
      // mo: relaxed — slot contents are published by bottom_ (push) or
      // ring_ (grow) release stores, never by the slot itself.
      return slots[static_cast<std::size_t>(i) & mask].load(
          std::memory_order_relaxed);
    }
    void put(std::int64_t i, T v) {
      // mo: relaxed — see get().
      slots[static_cast<std::size_t>(i) & mask].store(
          v, std::memory_order_relaxed);
    }
    const std::size_t capacity;
    const std::size_t mask;
    // pad-ok: ring slots are deliberately dense — the owner streams
    // through adjacent slots on push/pop, so padding each slot to a cache
    // line would trade that locality (and multiply the Θ(C) ring memory)
    // for a thief contention case the top_-CAS already serializes.
    std::vector<Atomic<T>> slots;
  };

  static std::size_t round_up_pow2(std::size_t v) {
    std::size_t p = 1;
    while (p < v) p <<= 1;
    // Floor of 2: a 1-slot ring would make push/grow ambiguous. (The old
    // floor of 8 was arbitrary; 2 lets the model checker exercise grow()
    // with a handful of schedule points.)
    return p < 2 ? 2 : p;
  }

  Ring* grow(Ring* old, std::int64_t t, std::int64_t b) {
    auto bigger = std::make_unique<Ring>(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    Ring* raw = bigger.get();
    rings_.push_back(std::move(bigger));  // owner-only; old ring stays alive
    // mo: release — publishes the copied slots to thieves that acquire
    // ring_ in steal_top. Thieves still racing on the *old* ring are safe
    // because retired rings are kept alive until destruction.
    ring_.store(raw, std::memory_order_release);
    return raw;
  }

  alignas(util::kCacheLineSize) Atomic<std::int64_t> top_;
  alignas(util::kCacheLineSize) Atomic<std::int64_t> bottom_;
  alignas(util::kCacheLineSize) Atomic<Ring*> ring_;
  // tail-ok: rings_ is the grow-path retirement list, mutated only while
  // the owner is already rewriting ring_ itself — thieves re-acquire
  // ring_ after any grow, so sharing its tail line adds no traffic.
  std::vector<std::unique_ptr<Ring>> rings_;  // owner-mutated only
};

}  // namespace cab::deque
