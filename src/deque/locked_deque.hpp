#pragma once

#include <deque>
#include <mutex>

#include "util/spin_lock.hpp"

namespace cab::deque {

/// Mutex-guarded double-ended queue.
///
/// Two uses in this codebase:
///  - the per-squad *inter-socket task pool* (paper Fig. 3): the owning
///    squad obtains tasks from the bottom, thief squads steal from the top;
///    traffic is throttled to head workers so a lock is cheap and keeps the
///    implementation obviously correct;
///  - the central pool of the *task-sharing* baseline (Section II), where
///    lock contention is the point being measured.
///
/// Templated on the Lock type (any Lockable): production uses the real
/// `util::SpinLock`; the model checker instantiates it with
/// `util::BasicSpinLock<chk::ModelSync>` (or `chk::mutex`) so the pool's
/// hand-off protocol is explored under the virtualized scheduler
/// (tests/test_model_check.cpp).
template <typename T, typename Lock = util::SpinLock>
class LockedDeque {
 public:
  LockedDeque() = default;
  LockedDeque(const LockedDeque&) = delete;
  LockedDeque& operator=(const LockedDeque&) = delete;

  void push_bottom(T item) {
    std::lock_guard<Lock> g(lock_);
    items_.push_back(item);
  }

  /// Owner end (LIFO relative to push_bottom). Returns nullptr when empty.
  T pop_bottom() {
    std::lock_guard<Lock> g(lock_);
    if (items_.empty()) return nullptr;
    T item = items_.back();
    items_.pop_back();
    return item;
  }

  /// Thief end (oldest task — for the inter tier this is the task closest
  /// to the DAG root, i.e. the largest subtree, which is what parent-first
  /// expansion wants distributed first). Returns nullptr when empty.
  T steal_top() {
    std::lock_guard<Lock> g(lock_);
    if (items_.empty()) return nullptr;
    T item = items_.front();
    items_.pop_front();
    return item;
  }

  std::size_t size() const {
    std::lock_guard<Lock> g(lock_);
    return items_.size();
  }

  bool empty() const { return size() == 0; }

 private:
  // pad-ok: the lock and the queue it guards are accessed together on
  // every operation; separating them buys nothing, and the enclosing
  // Squad/Engine pads the pool object as a unit.
  mutable Lock lock_;
  std::deque<T> items_;
};

}  // namespace cab::deque
