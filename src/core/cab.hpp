#pragma once

/// \file
/// Umbrella header of the CAB library — the reproduction of
/// "CAB: Cache Aware Bi-tier Task-stealing in Multi-socket Multi-core
/// Architecture" (Chen, Huang, Guo, Zhou — ICPP 2011).
///
/// Layers (each usable on its own):
///  - cab::hw       — MSMC machine model (sockets, cores, caches, affinity)
///  - cab::deque    — Chase-Lev and locked work-stealing deques
///  - cab::dag      — execution DAGs, Eq. 4 bi-tier partitioning
///  - cab::cachesim — set-associative write-invalidate cache hierarchy
///  - cab::adapt    — online workload profiling + adaptive BL control
///  - cab::runtime  — the threaded CAB scheduler + baselines (spawn/sync)
///  - cab::simsched — deterministic virtual-time scheduler simulator
///  - cab::apps     — the paper's eight Table III benchmarks
///
/// Quick start (threaded runtime):
/// \code
///   cab::runtime::Options opts;
///   opts.topo = cab::hw::Topology::detect();
///   opts.kind = cab::runtime::SchedulerKind::kCab;
///   opts.boundary_level =
///       cab::runtime::auto_boundary_level(opts.topo, input_bytes);
///   cab::runtime::Runtime rt(opts);
///   rt.run([] { /* spawn/sync */ });
/// \endcode

#include "adapt/controller.hpp"     // IWYU pragma: export
#include "adapt/profile.hpp"        // IWYU pragma: export
#include "cachesim/cache.hpp"       // IWYU pragma: export
#include "cachesim/hierarchy.hpp"   // IWYU pragma: export
#include "cachesim/trace.hpp"       // IWYU pragma: export
#include "core/experiment.hpp"      // IWYU pragma: export
#include "dag/generators.hpp"       // IWYU pragma: export
#include "dag/partition.hpp"        // IWYU pragma: export
#include "dag/task_graph.hpp"       // IWYU pragma: export
#include "deque/chase_lev_deque.hpp"  // IWYU pragma: export
#include "deque/locked_deque.hpp"   // IWYU pragma: export
#include "hw/affinity.hpp"          // IWYU pragma: export
#include "hw/topology.hpp"          // IWYU pragma: export
#include "runtime/runtime.hpp"      // IWYU pragma: export
#include "simsched/sim_scheduler.hpp"  // IWYU pragma: export
