#pragma once

#include <cstdint>
#include <algorithm>

#include "apps/app_common.hpp"
#include "dag/partition.hpp"
#include "simsched/sim_scheduler.hpp"

namespace cab {

/// One CAB-vs-baseline simulated comparison — the unit every figure/table
/// bench is built from.
struct Comparison {
  simsched::SimResult cab;
  simsched::SimResult cilk;  ///< classic random task-stealing baseline
  std::int32_t boundary_level = 0;

  /// Paper's "normalized execution time" (Fig. 4/6/8): CAB / Cilk.
  double normalized_time() const {
    return cilk.makespan > 0 ? cab.makespan / cilk.makespan : 0.0;
  }
  /// Performance gain as the paper quotes it (e.g. "68.7%").
  double gain_percent() const { return (1.0 - normalized_time()) * 100.0; }
};

/// Eq. 4 boundary level for an application bundle on a topology, with the
/// Section III-B third constraint applied: BL is clamped so each leaf
/// inter-socket subtree still holds at least cores-per-socket leaf tasks
/// (see dag::clamp_boundary_level).
inline std::int32_t bundle_boundary_level(const apps::DagBundle& b,
                                          const hw::Topology& topo) {
  dag::PartitionParams p;
  p.branching = b.branching < 2 ? 2 : b.branching;
  p.sockets = topo.sockets();
  p.input_bytes = b.input_bytes;
  p.shared_cache_bytes = topo.shared_cache_bytes();
  const std::int32_t bl = dag::boundary_level(p);
  return dag::clamp_boundary_level(bl, b.graph.max_level(),
                                   topo.cores_per_socket(), topo.sockets(),
                                   p.branching);
}

/// Simulates an app under CAB (with the given boundary level, or Eq. 4
/// when bl < 0; pass 0 for the CPU-bound Fig. 8 configuration) and under
/// the classic random-stealing baseline, on the same topology and cost
/// model. Victim selection: round-robin for CAB, uniform-random for the
/// baseline — see DESIGN.md "Victim selection".
inline Comparison compare_schedulers(const apps::DagBundle& bundle,
                                     const hw::Topology& topo,
                                     std::int32_t bl = -1,
                                     std::uint64_t seed = 1,
                                     const simsched::CostModel& cost = {}) {
  Comparison out;
  out.boundary_level = bl >= 0 ? bl : bundle_boundary_level(bundle, topo);

  simsched::SimOptions cab_opts;
  cab_opts.topo = topo;
  cab_opts.policy = simsched::SimPolicy::kCab;
  cab_opts.boundary_level = out.boundary_level;
  cab_opts.victims = simsched::VictimSelection::kRoundRobin;
  cab_opts.cost = cost;
  cab_opts.seed = seed;
  out.cab = simsched::Simulator(cab_opts).run(bundle.graph, bundle.traces);

  simsched::SimOptions cilk_opts = cab_opts;
  cilk_opts.policy = simsched::SimPolicy::kRandomStealing;
  cilk_opts.boundary_level = 0;
  cilk_opts.victims = simsched::VictimSelection::kUniformRandom;
  // Real-machine timing noise feeds the baseline's random-victim
  // scattering; without it a deterministic simulation can lock even a
  // random scheduler into an accidentally stable placement (see
  // CostModel::duration_jitter).
  cilk_opts.cost.duration_jitter =
      std::max(cost.duration_jitter, simsched::CostModel::kScrambleJitter);
  out.cilk = simsched::Simulator(cilk_opts).run(bundle.graph, bundle.traces);
  return out;
}

}  // namespace cab
