#include "runtime/graph_runner.hpp"

#include <atomic>

#include "util/assert.hpp"

namespace cab::runtime {
namespace {

/// Burns roughly `ops` cheap arithmetic operations; opaque to the
/// optimizer so the work is real.
void burn(std::uint64_t ops) {
  volatile double x = 1.0;
  for (std::uint64_t i = 0; i < ops; ++i) x = x + 1.0 / (1.0 + x);
}

struct GraphRun {
  const dag::TaskGraph& g;
  double scale;
  std::atomic<std::uint64_t> executed{0};

  std::uint64_t scaled(std::uint64_t work) const {
    return static_cast<std::uint64_t>(static_cast<double>(work) * scale);
  }

  void exec(dag::NodeId id) {
    const dag::TaskGraph::Node& node = g.node(id);
    executed.fetch_add(1, std::memory_order_relaxed);
    Runtime::mark_task_node(id);
    burn(scaled(node.pre_work));
    if (node.sequential) {
      // `for { spawn...; sync; }` — one phase per child.
      for (dag::NodeId c : node.children) {
        Runtime::spawn([this, c] { exec(c); });
        Runtime::sync();
      }
    } else {
      for (dag::NodeId c : node.children) {
        Runtime::spawn([this, c] { exec(c); });
      }
      Runtime::sync();
    }
    burn(scaled(node.post_work));
  }
};

}  // namespace

std::size_t run_graph(Runtime& rt, const dag::TaskGraph& g,
                      double work_scale) {
  CAB_CHECK(!g.empty(), "cannot run an empty graph");
  CAB_CHECK(g.validate(), "graph failed validation");
  GraphRun run{g, work_scale};
  rt.run([&run, &g] { run.exec(g.root()); });
  return static_cast<std::size_t>(run.executed.load());
}

}  // namespace cab::runtime
