#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "adapt/controller.hpp"
#include "dag/partition.hpp"
#include "hw/topology.hpp"
#include "obs/attrib/attrib.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/stats.hpp"
#include "util/assert.hpp"

namespace cab::runtime {

/// Runtime construction options.
struct Options {
  /// Machine model; may be virtual (more sockets/cores than the host).
  hw::Topology topo = hw::Topology::detect();

  SchedulerKind kind = SchedulerKind::kCab;

  /// Boundary level BL for kCab. 0 degenerates to classic work-stealing
  /// (what the paper does for CPU-bound programs and single-socket hosts).
  /// Compute it with dag::boundary_level(...) or auto_boundary_level(...).
  std::int32_t boundary_level = 0;

  /// Seed for all victim-selection RNGs (expanded per worker).
  std::uint64_t seed = 1;

  /// Intra-squad victim selection / transfer policy (kCab only; the
  /// `--steal=uniform|weighted|weighted+half` ablation axis). Default is
  /// the full occupancy-weighted steal-half path; kUniform restores the
  /// paper's Algorithm I single-task uniform steal exactly.
  StealPolicy steal = StealPolicy::kWeightedHalf;

  /// Pin worker threads to cores (wraps modulo physical CPUs when the
  /// virtual topology is wider than the host).
  bool pin_threads = false;

  /// Record one ExecRecord per executed task (protocol auditing; adds a
  /// per-task vector push on the hot path — testing/diagnostics only).
  bool record_events = false;

  /// Record per-worker timestamped timelines (task spans, steal attempts
  /// with victim and latency, busy_state transitions, sync waits, idle
  /// periods) into lock-free single-writer buffers. Near-zero cost when
  /// off: one predicted branch per emit site, no clock reads. Read the
  /// result with Runtime::trace(), export with obs::write_chrome_trace.
  bool trace = false;

  /// Max timeline events kept per worker; later events are dropped and
  /// counted (Trace reports the drop total).
  std::size_t trace_capacity = 1u << 18;

  /// Ring-buffer tracing: when true (and `trace` is on), a full buffer
  /// wraps and overwrites the *oldest* event instead of dropping the
  /// newest, so the last `trace_capacity` events per worker always
  /// survive — fixed-memory, always-on flight recording for long-running
  /// services. Default false keeps the head of the run (where schedule
  /// shape lives). Both policies count every lost event; see
  /// obs::TimelineBuffer for the exact drop semantics.
  bool trace_ring = false;

  /// Populate the metrics registry: scheduler counters (flushed from
  /// WorkerStats when a snapshot is taken — nothing on the hot path) and
  /// the idle-backoff totals. Off: metrics_snapshot() returns an empty
  /// registry and no metric is ever registered.
  bool metrics = true;

  /// Recycle task frames through per-worker NUMA-local pools (the
  /// zero-steady-state-allocation spawn path; DESIGN.md "Allocation
  /// strategy"). Off = the `--frame-pool=off` ablation: every spawn pays
  /// a heap frame plus a boxed callable, reproducing the seed allocation
  /// strategy for overhead benchmarking. Leave on outside benches.
  bool frame_pool = true;

  /// Lazy task creation (DESIGN.md §5h): intra-tier spawns run through the
  /// continuation-style fast path — the child frame lives on the spawning
  /// worker's LazyStack (no pool round trip) and is promoted to a pooled
  /// frame only when a thief actually steals it. Off = the
  /// `--lazy-spawn=off` ablation: every spawn eagerly materializes a
  /// pooled frame (the PR 5 path). Requires frame_pool (thieves promote
  /// into pools); ignored when frame_pool is off.
  bool lazy_spawn = true;

  /// Open per-worker hardware counter groups (perf_event_open: cycles,
  /// instructions, cache-references, LLC-loads/-load-misses), enabled
  /// while run() executes and aggregated per squad and per tier in the
  /// metrics registry. Degrades gracefully when perf is unavailable
  /// (blocked syscall, perf_event_paranoid, CAB_PERF=off): the registry
  /// still works and the snapshot reports hw_available = false. Implies
  /// nothing unless `metrics` is also on.
  bool hw_counters = false;

  /// Adaptive boundary-level policy (kCab only). kStatic (default) keeps
  /// `boundary_level` for every epoch. kAdaptive profiles each run()
  /// epoch and hill-climbs BL *between* epochs (never mid-epoch), seeded
  /// at `boundary_level` (a 0 seed bootstraps to the profiled Eq. 4
  /// level); with Options::metrics off it holds the seed (no blind
  /// climbing). kFixed pins Policy::fixed_bl. Every decision is recorded
  /// in Runtime::adapt_report() (schema cab-adapt-v1), and — when
  /// metrics are on — mirrored as adapt.* gauges in the registry (and
  /// therefore as counter tracks in Chrome traces).
  adapt::Policy adapt;
};

/// Convenience wrapper over Eq. 4: BL from topology + program parameters
/// (the two command-line inputs of the paper's semi-automatic method).
std::int32_t auto_boundary_level(const hw::Topology& topo,
                                 std::uint64_t input_bytes,
                                 std::int32_t branching = 2);

/// Non-template half of the spawn path (runtime.cpp). Split so that
/// Runtime::spawn can stay a template — constructing the callable in
/// place inside the frame — without the header seeing the scheduling
/// internals' implementation:
///   begin_spawn   classifies the tier (Algorithm II(a)) and produces an
///                 *unpublished* frame from the spawner's pool;
///   commit_spawn  does the join (parent outstanding) bookkeeping and
///                 publishes the
///                 frame to the tier's pool (after this the frame may
///                 execute concurrently — the body must already be in
///                 place);
///   abort_spawn   recycles the frame if emplacing the callable threw.
namespace spawn_detail {
struct Pending {
  Worker* worker;
  TaskFrame* frame;
  /// Box the callable instead of emplacing it inline (frame_pool off —
  /// reproduces the seed std::function allocation for the ablation).
  bool boxed;
};
Pending begin_spawn(bool force_inter);
void commit_spawn(const Pending& p);
void abort_spawn(const Pending& p) noexcept;

/// Lazy fast path (DESIGN.md §5h), header-inline: the whole point is a
/// spawn that never leaves the caller's TU. Eligible spawns are intra-tier
/// only — inter-tier children, kTaskSharing (central pool: every task is
/// effectively stolen), and non-worker callers all fall back to the eager
/// path, as does a full LazyStack. Returns the armed slot frame, or
/// nullptr for "go eager".
inline TaskFrame* try_begin_lazy(Worker* w) {
  if (w == nullptr || w->current == nullptr) return nullptr;
  Engine& e = *w->engine;
  if (!e.lazy) return nullptr;  // folds in frame_pool and scheduler kind
  TaskFrame* parent = w->current;
  if (w->lazy_tier_check &&
      w->ctx->tier.spawns_inter_child(parent->level)) {
    return nullptr;  // inter-tier child: always an eager pooled frame
  }
  TaskFrame* t = w->lazy_stack.push();
  if (t == nullptr) return nullptr;
  LazyFrame::of(t)->arm(parent, parent->level + 1);
  return t;
}

/// Join bookkeeping + publication of a lazy frame — the tail of
/// commit_spawn minus everything inter/inject (a lazy frame is intra by
/// construction, and its creation tick is carried through promotion).
inline void commit_lazy(Worker* w, TaskFrame* t) {
  w->engine->frame_created();
  TaskFrame* parent = t->parent;
  if (!parent->has_children) {
    parent->has_children = true;
    ++w->stats.spawning_tasks;
  }
  ++parent->spawned;
  parent->has_intra_children = true;
  ++w->stats.spawns_intra;
  ++w->stats.alloc_lazy_spawns;
  if (w->push_local(t)) w->mark_occupied();
  if (w->tl.enabled) w->tl.mark(obs::EventKind::kSpawnIntra, t->level, 0);
}

/// Rollback when the body emplace threw: nothing was published, so
/// freeing the slot is the whole undo.
inline void abort_lazy(TaskFrame* t) noexcept {
  LazyFrame::of(t)->claim.release_unpublished();
}
}  // namespace spawn_detail

/// The CAB task-stealing runtime (plus the two baseline schedulers).
///
/// Usage:
///   Runtime rt(opts);
///   rt.run([&] {
///     Runtime::spawn([&] { left(); });
///     Runtime::spawn([&] { right(); });
///     Runtime::sync();
///   });
///
/// spawn/sync may only be called from inside a task. Every task gets an
/// implicit sync before it completes, so forgetting sync() is safe (Cilk
/// semantics); explicit sync() lets a task consume child results mid-body.
class Runtime {
 public:
  explicit Runtime(Options opts);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Executes `root` as the level-0 task and blocks until the whole DAG
  /// has completed. May be called repeatedly (sequentially). Uses every
  /// squad (the full-machine partition); conflicts loudly with any
  /// concurrent run_on().
  void run(std::function<void()> root);

  /// Executes `root` on a *partition*: only the listed squads (distinct,
  /// in-range ids) and their workers participate — spawning, stealing and
  /// the bi-tier protocol are confined to the partition, with
  /// `boundary_level` interpreted relative to it (single-squad partitions
  /// degenerate to BL = 0, classic work-stealing). Blocks until the DAG
  /// has drained. Concurrent calls on *disjoint* squad sets (from
  /// different threads) run in parallel — the job service's space
  /// partitioning; overlapping partitions fail loudly (CAB_CHECK).
  /// Requires Options::adapt.mode == kStatic.
  void run_on(const std::vector<int>& squad_ids, std::int32_t boundary_level,
              std::function<void()> root);

  /// Spawns a child of the current task. Tier (inter/intra-socket) and
  /// destination pool are chosen per Algorithm II(a). A template so the
  /// callable is constructed in place inside the task frame: captures up
  /// to TaskBody::kInlineSize (64 B) never touch the heap, and with
  /// Options::frame_pool the whole steady-state spawn is allocation-free.
  template <typename F>
  static void spawn(F&& fn);

  /// The paper's `inter_spawn` keyword (Section IV-D): explicitly spawns
  /// the child as an inter-socket task regardless of its DAG level,
  /// letting programmers hand-tune task placement. Under the baseline
  /// schedulers (no inter-socket tier) this is an ordinary spawn.
  template <typename F>
  static void spawn_inter(F&& fn);

  /// Waits for all children of the current task, executing other tasks
  /// while waiting (help-first sync).
  static void sync();

  /// Worker id executing the caller, or -1 outside any task.
  static int current_worker();
  /// Squad (socket) id of the calling worker, or -1 outside any task.
  static int current_squad();

  /// Tags the currently executing task with its DAG node id (a kTaskNode
  /// instant in the worker's timeline), joining the trace to a TaskGraph
  /// for realized-critical-path analysis. Call at task body start (as
  /// run_graph does). No-op outside a task or when tracing is off.
  static void mark_task_node(std::int32_t node);

  const Options& options() const { return opts_; }
  int worker_count() const;

  /// Aggregated counters from the most recent run()s (cleared on demand).
  /// Call between epochs only (enforced — fails loudly while any run()/
  /// run_on() is in flight: the per-worker counters are mid-write then).
  SchedulerStats stats() const;
  void reset_stats();

  /// Snapshot of every worker's timeline (empty event lists unless
  /// Options::trace). Ring buffers are unrolled to chronological order.
  /// Call between epochs only — workers must be parked (enforced: fails
  /// loudly while any run()/run_on() is in flight).
  obs::Trace trace() const;

  /// Cycle-accounting attribution of the current timeline contents:
  /// where every worker's wall time went (exec / steal / protocol /
  /// idle / untracked, per worker, squad, and tier). Equivalent to
  /// obs::attrib::attribute(trace()). Call between epochs only (enforced
  /// via trace()'s check).
  obs::attrib::Attribution attrib_report() const;

  /// Metrics registry snapshot: scheduler counters (flushed from
  /// WorkerStats here), idle-backoff totals, and — when Options::
  /// hw_counters and perf is available — the hw.* counters with
  /// tier=total/inter/intra labels, per worker (aggregate per squad via
  /// Snapshot::squad_totals). Call between epochs only (enforced: fails
  /// loudly while any run()/run_on() is in flight).
  obs::metrics::Snapshot metrics_snapshot() const;

  /// True when hardware counters were requested *and* the perf source is
  /// usable on this host (mirrors the snapshot's hw_available flag).
  bool hw_counters_active() const;

  /// The runtime's metrics registry, for subsystems layered on top (the
  /// job service registers its svc.* series here so one snapshot carries
  /// scheduler and service metrics together). Registration is
  /// thread-safe; slot writes must follow the registry's single-writer
  /// rule.
  obs::metrics::Registry& registry();

  /// Merged per-worker execution logs (empty unless record_events). Order
  /// within a worker is execution order; across workers it is
  /// concatenation by worker id.
  std::vector<ExecRecord> execution_log() const;

  /// High-water mark of simultaneously live task frames across all runs
  /// since construction / reset_stats() — the measured left-hand side of
  /// the paper's Eq. 15 space bound.
  std::int64_t peak_live_frames() const;

  /// Boundary level the *next* run() epoch will execute under (the seed
  /// before the first epoch; thereafter whatever the adaptive controller
  /// last chose). Call between run()s only.
  std::int32_t current_boundary_level() const;

  /// Every adaptive decision taken so far (schema cab-adapt-v1): one
  /// Decision per completed run() epoch, including the profiler inputs,
  /// scores, and the chosen BL. Empty decision list under
  /// Mode::kStatic. Call between epochs only (enforced).
  adapt::Report adapt_report() const;

 private:
  /// Common epoch driver for run()/run_on(): reserves the context's
  /// squads, injects the root, waits for quiescence, releases the squads.
  /// Returns the activation id. Does NOT rethrow the captured exception
  /// (callers do, after any between-epoch bookkeeping).
  std::uint64_t run_ctx(EpochContext& ctx, std::function<void()> root);

  void retune_after_epoch(std::uint64_t epoch, std::int32_t epoch_bl,
                          std::uint64_t wall_ns);

  Options opts_;
  std::unique_ptr<Engine> engine_;
  std::unique_ptr<adapt::Controller> adapt_;

  /// Cumulative totals at the last epoch boundary; subtracted from the
  /// current totals to form per-epoch deltas for the profiler. Zeroed by
  /// reset_stats() alongside the WorkerStats they mirror.
  struct AdaptBaseline {
    std::uint64_t tasks = 0;
    std::uint64_t spawns = 0;
    std::uint64_t spawning_tasks = 0;
    std::uint64_t intra_steals = 0;
    std::uint64_t inter_steals = 0;
    std::uint64_t failed_steals = 0;
    std::int64_t llc_loads = 0;
    std::int64_t llc_misses = 0;
    std::int64_t llc_loads_inter = 0;
    std::int64_t llc_misses_inter = 0;
  } adapt_base_;
};

template <typename F>
void Runtime::spawn(F&& fn) {
  if (TaskFrame* t = spawn_detail::try_begin_lazy(tls_worker)) {
    try {
      t->body.emplace(std::forward<F>(fn));
    } catch (...) {
      spawn_detail::abort_lazy(t);
      throw;
    }
    spawn_detail::commit_lazy(tls_worker, t);
    return;
  }
  spawn_detail::Pending p = spawn_detail::begin_spawn(/*force_inter=*/false);
  try {
    if (p.boxed) {
      p.frame->body.emplace_boxed(std::forward<F>(fn));
    } else {
      p.frame->body.emplace(std::forward<F>(fn));
    }
  } catch (...) {
    spawn_detail::abort_spawn(p);
    throw;
  }
  spawn_detail::commit_spawn(p);
}

template <typename F>
void Runtime::spawn_inter(F&& fn) {
  spawn_detail::Pending p = spawn_detail::begin_spawn(/*force_inter=*/true);
  try {
    if (p.boxed) {
      p.frame->body.emplace_boxed(std::forward<F>(fn));
    } else {
      p.frame->body.emplace(std::forward<F>(fn));
    }
  } catch (...) {
    spawn_detail::abort_spawn(p);
    throw;
  }
  spawn_detail::commit_spawn(p);
}

/// Recursive binary-splitting parallel loop over [begin, end) built on
/// spawn/sync; `grain` bounds the leaf range size. Must be called inside a
/// task (e.g. from the root closure passed to run()). A template so each
/// range split spawns a 32-byte inline capture instead of re-erasing the
/// body into a fresh heap-allocated std::function closure.
template <typename Body>
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const Body& body) {
  CAB_CHECK(grain >= 1, "grain must be >= 1");
  if (begin >= end) return;
  if (end - begin <= grain) {
    body(begin, end);
    return;
  }
  const std::int64_t mid = begin + (end - begin) / 2;
  // `body` outlives the children: the sync below joins them before return.
  Runtime::spawn([begin, mid, grain, &body] {
    parallel_for(begin, mid, grain, body);
  });
  Runtime::spawn([mid, end, grain, &body] {
    parallel_for(mid, end, grain, body);
  });
  Runtime::sync();
}

}  // namespace cab::runtime
