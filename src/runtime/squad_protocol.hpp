#pragma once

#include <atomic>
#include <cstdint>

#include "util/cache_line.hpp"
#include "util/sync_policy.hpp"

namespace cab::runtime::protocol {

/// The synchronization core of the paper's bi-tier protocol (Algorithm I /
/// Algorithm II), extracted header-only and templated on the Sync policy
/// (util/sync_policy.hpp) so the identical transitions run against real
/// `std::atomic` inside the scheduler (worker.cpp) and against
/// `chk::atomic` under the exhaustive-interleaving model checker
/// (tests/test_model_check.cpp, DESIGN.md §6).
///
/// Checked invariants (the model's oracles):
///  - the busy count never goes negative (releases match acquires);
///  - without the starvation escape, a squad holds at most one *active*
///    inter-socket task at a time (the count exceeds 1 only for nested
///    inter tasks run while helping inside a sync);
///  - a task is tagged with the acquiring squad before it becomes
///    runnable on the acquiring worker (bind_inter ordering).

/// The paper's per-squad `busy_state`, generalized from a boolean to a
/// count so that *nested* inter-socket tasks (an inter task helping run
/// its own inter children while suspended at sync — see DESIGN.md) keep
/// it consistent. busy_state == (count() > 0).
template <typename Sync = util::RealSync>
struct BusyState {
  typename Sync::template atomic_t<std::int32_t> active_inter{0};

  bool busy() const {
    // mo: acquire — pairs with the release half of the acq_rel RMWs
    // below: a worker that observes "busy" also observes the hand-off
    // that made it so (Algorithm I step 2's gate read).
    return active_inter.load(std::memory_order_acquire) > 0;
  }

  std::int32_t count() const {
    // mo: acquire — see busy().
    return active_inter.load(std::memory_order_acquire);
  }

  /// Marks one more active inter-socket task; returns the new count.
  std::int32_t acquire() {
    // mo: acq_rel — the increment is the squad-busy hand-off: release so
    // the acquiring worker's prior pool operations are visible to gate
    // readers, acquire so this worker sees the previous holder's release.
    return active_inter.fetch_add(1, std::memory_order_acq_rel) + 1;
  }

  /// Releases one active inter-socket task; returns the new count. The
  /// caller must check the result is >= 0 (underflow means a protocol
  /// bug: a release without a matching acquire — a checked negative
  /// model, ModelCheckNegative.DoubleBusyRelease).
  std::int32_t release() {
    // mo: acq_rel — see acquire(); the release half publishes the
    // finished task's effects to the next gate reader.
    return active_inter.fetch_sub(1, std::memory_order_acq_rel) - 1;
  }
};

/// Which acquire paths Algorithm I opens for a free worker, given its
/// role and the squad gate. Step 1 (own intra pool) always runs first and
/// is not gated; this decides steps 2–6:
///  - squad busy  => intra-socket stealing within the squad only (steps
///    3/6a); the inter-socket pools open up only for a *desperate* head
///    (the starvation escape, see kStarvationEscapeFails);
///  - squad free  => the head goes to the inter-socket pools (steps 4/5/
///    6b); non-head workers loop back to step 1.
struct AcquirePaths {
  bool steal_intra_in_squad;
  bool inter_pools;
};

constexpr AcquirePaths plan_acquire(bool is_head, bool squad_busy,
                                    bool desperate) noexcept {
  if (squad_busy) return {true, is_head && desperate};
  return {false, is_head};
}

/// Algorithm II at a sync point: a *leaf* inter-socket task (one that
/// spawned intra-socket children — its subtree is the squad's shared-cache
/// residency unit) holds busy_state through its sync; a non-leaf inter
/// task releases it so the squad is not barred from inter-socket work for
/// the task's entire subtree lifetime.
constexpr bool holds_busy_through_sync(bool has_intra_children) noexcept {
  return has_intra_children;
}

/// Per-squad victim-occupancy mask for stochastic victim selection: bit i
/// is set while squad-local worker slot i *plausibly* has stealable tasks
/// in its intra deque. Maintained as a cheap hint, not a truth:
///  - the owner sets its bit on the empty->nonempty push transition and
///    clears it when its own pop finds the deque empty;
///  - a thief whose probe of victim i finds an empty deque clears bit i
///    (hearsay-clear), so a crowd of thieves converges off a drained
///    victim without each paying a probe.
/// Stale bits are benign in both directions — a set bit on an empty deque
/// costs one wasted probe (exactly the uniform-selection status quo), and
/// a cleared bit on a nonempty deque only delays discovery until the
/// owner's next push transition or the uniform fallback fires. Squads
/// wider than kWidth workers fall back to uniform selection.
///
/// Checked invariants (ModelCheck.OccupancyMaskDisjointBitsCommute /
/// .OccupancyMaskExactlyOnceTransitions): concurrent transitions on
/// disjoint bits never lose each other's flip, and one flip is observed
/// (return true) by exactly one caller — so the per-worker mask counters
/// in WorkerStats count transitions, not attempts.
template <typename Sync = util::RealSync>
struct OccupancyMask {
  static constexpr int kWidth = 64;

  // Shares a (padded) line with nothing else: every worker in the squad
  // RMWs this word on push/pop/probe transitions, and the whole point of
  // the mask is to keep those transitions off the deque anchors' lines.
  alignas(util::kCacheLineSize)
      typename Sync::template atomic_t<std::uint64_t> bits{0};

  /// Owner, on the empty->nonempty push transition. Returns true when the
  /// bit actually flipped (a mask transition, counted in WorkerStats).
  bool set(int slot) {
    // mo: release — publishes the push that made the deque nonempty to a
    // thief that acquires the mask before probing (the hint must not
    // arrive before the work it advertises).
    return fetch_or(bits, std::uint64_t{1} << slot,
                    std::memory_order_release);
  }

  /// Owner (own deque drained) or thief (probe found victim empty).
  /// Returns true when the bit actually flipped.
  bool clear(int slot) {
    // mo: relaxed — clearing publishes nothing; it only withdraws a hint.
    return fetch_and(bits, ~(std::uint64_t{1} << slot),
                     std::memory_order_relaxed);
  }

  /// Thief-side snapshot for victim selection.
  std::uint64_t load() const {
    // mo: acquire — pairs with set()'s release; see set().
    return bits.load(std::memory_order_acquire);
  }

 private:
  /// fetch_or / fetch_and via a CAS loop: chk::atomic (the model checker's
  /// atomic) does not model the or/and RMWs, and the mask must run
  /// identically under both Sync policies. When the bit already has the
  /// target value the loop is a single relaxed load and no RMW — which is
  /// the common case and what makes the per-push/per-pop maintenance
  /// calls cheap. Returns true when this call changed the word.
  template <typename A>
  static bool fetch_or(A& a, std::uint64_t m, std::memory_order mo) {
    std::uint64_t cur = a.load(std::memory_order_relaxed);
    for (;;) {
      if ((cur & m) == m) return false;
      if (a.compare_exchange_weak(cur, cur | m, mo,
                                  std::memory_order_relaxed)) {
        return true;
      }
    }
  }
  template <typename A>
  static bool fetch_and(A& a, std::uint64_t m, std::memory_order mo) {
    std::uint64_t cur = a.load(std::memory_order_relaxed);
    for (;;) {
      if ((cur & m) == cur) return false;
      if (a.compare_exchange_weak(cur, cur & m, mo,
                                  std::memory_order_relaxed)) {
        return true;
      }
    }
  }
};

/// Lazy-frame claim handshake (DESIGN.md §5h): arbitration between the
/// owner popping its own continuation back and a thief promoting it, plus
/// the slot-reuse hand-off that lets the owner recycle the stack slot
/// only after an in-flight promotion has finished copying the capture
/// out. Templated on the Sync policy so the same transitions run under
/// the scheduler and under the chk model checker; like OccupancyMask,
/// only compare_exchange is used (chk::atomic models no or/and RMWs).
///
/// States (one forward pass per armed slot, no cycles until re-arm):
///   kStacked   — armed and published to the owner's deque;
///   kOwned     — the owner popped it back and is executing in place;
///   kPromoting — a thief won the claim and is copying the capture out
///                into a pooled frame (the slot must not be reused);
///   kFreed     — terminal: the slot may be truncated/re-armed by the
///                owner.
///
/// Checked invariants (the model's oracles, ModelCheck.LazyClaim*):
///  - exactly one of try_own / try_promote succeeds per armed slot (no
///    double execution, no lost continuation);
///  - the owner observes kFreed (reclaimable) only after the thief's
///    copy-out is complete, so slot reuse never races the promotion read
///    (the negative twin, ModelCheckNegative.BrokenPromotionCas, shows
///    the double execution that skipping the claim CAS permits).
///
/// The deque itself already guarantees a lazy frame is handed to exactly
/// one taker, so the owner/thief CAS pair is defense-in-depth there — but
/// the kPromoting->kFreed reuse hand-off is load-bearing: without it the
/// owner could re-arm the slot while the thief is still reading it.
template <typename Sync = util::RealSync>
struct LazyClaim {
  enum : std::int32_t { kStacked = 0, kOwned = 1, kPromoting = 2, kFreed = 3 };

  typename Sync::template atomic_t<std::int32_t> state{kFreed};

  /// Owner, before publishing the slot's frame to its deque. The deque
  /// push's release store publishes the frame contents; this only re-arms
  /// the claim word.
  void arm() {
    // mo: relaxed — ordered before the deque publish by the push's
    // release; nothing reads kStacked before the frame is reachable.
    state.store(kStacked, std::memory_order_relaxed);
  }

  /// Owner, after popping the frame back from its own deque. False means
  /// a thief already claimed it — impossible while the deque hands each
  /// entry to exactly one taker (CAB_CHECKed by the caller).
  ///
  /// Deliberately NOT an RMW: the deque's exactly-one-taker guarantee
  /// means no thief can hold this entry concurrently, so the owner's
  /// claim is race-free by construction and a verify + plain store
  /// suffices — this is the spawn fast path, and the CAS it avoids costs
  /// as much as the join RMW the lazy path exists to drop. The *thief*
  /// side (try_promote) stays a CAS: it is the slot-reuse gate. A thief
  /// that somehow claimed first leaves kPromoting/kFreed here and the
  /// verify fails loudly.
  bool try_own() {
    if (state.load(std::memory_order_relaxed) != kStacked) return false;
    // mo: relaxed — owner-written slot, owner-read; the deque pop already
    // ordered the hand-off.
    state.store(kOwned, std::memory_order_relaxed);
    return true;
  }

  /// Thief, after stealing the frame's deque entry and before reading the
  /// capture. False means the owner already took it back (same
  /// exactly-one-taker argument as try_own).
  bool try_promote() {
    std::int32_t expect = kStacked;
    // mo: acquire on success — pairs with the deque steal's own ordering;
    // the capture reads below must not hoist above the claim.
    return state.compare_exchange_strong(expect, kPromoting,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed);
  }

  /// Thief, after the capture has been relocated into the pooled frame.
  void finish_promotion() {
    // mo: release — pairs with reclaimable()'s acquire: the owner may
    // reuse the slot only after it observes kFreed, which orders the
    // thief's copy-out reads before the owner's re-arm writes.
    state.store(kFreed, std::memory_order_release);
  }

  /// Owner, after executing the frame in place.
  void finish_owned() {
    // mo: relaxed — the reclaimer (LazyStack::push) runs on this same
    // thread.
    state.store(kFreed, std::memory_order_relaxed);
  }

  /// Owner rollback when nothing was published (body emplace threw).
  void release_unpublished() {
    // mo: relaxed — no other thread ever saw the armed slot.
    state.store(kFreed, std::memory_order_relaxed);
  }

  /// Owner, before truncating/reusing the slot.
  bool reclaimable() const {
    // mo: acquire — see finish_promotion().
    return state.load(std::memory_order_acquire) == kFreed;
  }
};

/// Inter-socket task hand-off: marks the acquiring squad busy and tags
/// the task with that squad *before* the task is returned to the worker
/// loop — the gate must close before the task can start executing (and
/// spawning), or a second head probe could slip an extra inter task into
/// the squad between execution start and gate close. Returns the new
/// busy count.
template <typename Sync, typename Task, typename SquadT>
std::int32_t bind_inter(BusyState<Sync>& busy, Task* t, SquadT* sq) {
  const std::int32_t now = busy.acquire();
  t->inter_acquired_by = sq;
  return now;
}

}  // namespace cab::runtime::protocol
