#include "runtime/scheduler.hpp"

#include "util/format.hpp"

namespace cab::runtime {

const char* to_string(SchedulerKind k) {
  switch (k) {
    case SchedulerKind::kCab: return "CAB";
    case SchedulerKind::kRandomStealing: return "random-stealing";
    case SchedulerKind::kTaskSharing: return "task-sharing";
  }
  return "?";
}

const char* to_string(StealPolicy p) {
  switch (p) {
    case StealPolicy::kUniform: return "uniform";
    case StealPolicy::kWeighted: return "weighted";
    case StealPolicy::kWeightedHalf: return "weighted+half";
  }
  return "?";
}

bool parse_steal_policy(std::string_view s, StealPolicy& out) {
  if (s == "uniform") {
    out = StealPolicy::kUniform;
  } else if (s == "weighted") {
    out = StealPolicy::kWeighted;
  } else if (s == "weighted+half" || s == "weighted-half") {
    out = StealPolicy::kWeightedHalf;
  } else {
    return false;
  }
  return true;
}

std::string SchedulerStats::summary() const {
  std::string s;
  s += "tasks=" + util::human_count(total.tasks_executed);
  s += " spawns(intra/inter)=" + util::human_count(total.spawns_intra) + "/" +
       util::human_count(total.spawns_inter);
  s += " intra-steals=" + util::human_count(total.intra_steals);
  if (total.steal_batches > 0) {
    s += " batch(steals/tasks)=" + util::human_count(total.steal_batches) +
         "/" + util::human_count(total.steal_batch_tasks);
  }
  s += " inter(acquire/steal)=" + util::human_count(total.inter_acquires) +
       "/" + util::human_count(total.inter_steals);
  s += " failed-steals=" + util::human_count(total.failed_steal_attempts);
  s += " help-iters=" + util::human_count(total.help_iterations);
  s += " idle-sleeps=" + util::human_count(total.idle_backoff_sleeps);
  s += " alloc(hits/refills/remote)=" +
       util::human_count(total.alloc_freelist_hits) + "/" +
       util::human_count(total.alloc_slab_refills) + "/" +
       util::human_count(total.alloc_remote_frees);
  return s;
}

}  // namespace cab::runtime
