#pragma once

#include <bit>
#include <cstdint>

#include "runtime/squad_protocol.hpp"

namespace cab::runtime {

/// Occupancy-weighted stochastic victim selection (pure logic, no atomics:
/// the caller snapshots the squad's OccupancyMask and supplies a weight
/// callback, so tests/test_victim_select.cpp can drive every branch
/// deterministically with a fixed RNG).
///
/// Contract:
///  - candidates are the set bits of `mask` below `n_slots`, minus
///    `self_slot` (a worker never steals from itself);
///  - each candidate's weight comes from `weight_of(slot)` (in the runtime:
///    the victim deque's size_estimate), and zero-weight candidates are
///    dropped — the mask said "plausibly has work" but the probe-free
///    estimate says otherwise;
///  - a single RNG draw picks a candidate with probability weight/total,
///    so longer deques are proportionally likelier victims (steal-half
///    then moves the most work per claim);
///  - returns kNoVictim when no candidate survives; the caller falls back
///    to uniform selection so stale mask clears can never starve a thief.
inline constexpr int kNoVictim = -1;

template <typename WeightFn, typename Rng>
int pick_weighted_victim(std::uint64_t mask, int self_slot, int n_slots,
                         WeightFn&& weight_of, Rng& rng) {
  constexpr int kWidth = protocol::OccupancyMask<>::kWidth;
  if (n_slots <= 0) return kNoVictim;
  if (n_slots < kWidth) mask &= (std::uint64_t{1} << n_slots) - 1;
  if (self_slot >= 0 && self_slot < kWidth) {
    mask &= ~(std::uint64_t{1} << self_slot);
  }
  int slots[kWidth];
  std::uint64_t cum[kWidth];
  int count = 0;
  std::uint64_t total = 0;
  for (std::uint64_t m = mask; m != 0; m &= m - 1) {
    const int s = std::countr_zero(m);
    const std::uint64_t w = weight_of(s);
    if (w == 0) continue;
    slots[count] = s;
    total += w;
    cum[count] = total;
    ++count;
  }
  if (count == 0) return kNoVictim;
  const std::uint64_t r = rng.next_below(total);
  for (int i = 0; i < count; ++i) {
    if (r < cum[i]) return slots[i];
  }
  return slots[count - 1];  // unreachable: r < total == cum[count-1]
}

}  // namespace cab::runtime
