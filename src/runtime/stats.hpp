#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cab::runtime {

/// Per-worker event counters, aggregated by Runtime::stats(). Collected
/// with plain (non-atomic) increments on the owning worker and read only
/// after run() returns, so no synchronization is needed.
struct WorkerStats {
  std::uint64_t tasks_executed = 0;
  std::uint64_t spawns_intra = 0;
  std::uint64_t spawns_inter = 0;
  std::uint64_t intra_pop_hits = 0;       ///< tasks from own deque
  std::uint64_t intra_steals = 0;         ///< successful in-squad steals
  std::uint64_t inter_acquires = 0;       ///< from own squad's inter pool
  std::uint64_t inter_steals = 0;         ///< from another squad's pool
  std::uint64_t failed_steal_attempts = 0;
  /// Successful in-squad batch steals (steal-half transfers; each also
  /// counts once in intra_steals) and the total tasks they moved —
  /// steal_batch_tasks / steal_batches is the realized mean batch size
  /// (full distribution: the steal.batch_size histogram).
  std::uint64_t steal_batches = 0;
  std::uint64_t steal_batch_tasks = 0;
  /// In-squad victim picks that came from the occupancy-weighted sampler
  /// (the remainder of intra steal attempts fell back to uniform).
  std::uint64_t weighted_picks = 0;
  /// Occupancy-mask transitions (bit actually flipped): set by this
  /// worker's push, cleared by this worker's own empty pop, cleared by
  /// this worker's failed probe of a victim (hearsay clear).
  std::uint64_t mask_sets = 0;
  std::uint64_t mask_clears_own = 0;
  std::uint64_t mask_clears_hearsay = 0;
  std::uint64_t help_iterations = 0;      ///< sync-help loop turns
  /// Times the deepest backoff tier parked this worker (one
  /// kIdleBackoffSleep each) — total parked time is the product, exposed
  /// as scheduler.idle_backoff_ns in the metrics registry so it lines up
  /// with the idle spans of the steal-latency reports.
  std::uint64_t idle_backoff_sleeps = 0;
  /// Tasks that spawned at least one child — divides `spawns` into the
  /// effective branching degree the adaptive profiler feeds to Eq. 4.
  std::uint64_t spawning_tasks = 0;
  /// Deepest task level this worker executed (observed spawn-tree depth;
  /// aggregates by max, not sum).
  std::int32_t max_task_level = 0;

  /// FramePool::acquire served from this worker's own freelist — the
  /// steady-state (zero-allocation) spawn path.
  std::uint64_t alloc_freelist_hits = 0;
  /// FramePool::acquire had to carve a fresh slab (freelist and remote
  /// channel both empty). Flat after warm-up on a steady workload — the
  /// zero-steady-state-allocation property tests assert on.
  std::uint64_t alloc_slab_refills = 0;
  /// Frames this worker completed that belonged to another worker's pool
  /// and were returned through the MPSC remote-free channel (mostly
  /// cross-socket steal completions).
  std::uint64_t alloc_remote_frees = 0;
  /// FramePool::acquire served by draining the remote-free channel (one
  /// bulk take_all per count, possibly recovering many frames).
  std::uint64_t alloc_remote_drains = 0;
  /// Spawns that took the lazy fast path: child frame on the spawning
  /// worker's LazyStack, no pool acquire and no atomic join RMW unless a
  /// thief promotes it (DESIGN.md §5h).
  std::uint64_t alloc_lazy_spawns = 0;
  /// Lazy frames *this worker* promoted at steal time into a frame from
  /// its own pool. promotions / lazy_spawns is the realized steal rate of
  /// the lazy tier — the "steals are rare" premise the fast path banks on.
  std::uint64_t alloc_promotions = 0;

  WorkerStats& operator+=(const WorkerStats& o) {
    tasks_executed += o.tasks_executed;
    spawns_intra += o.spawns_intra;
    spawns_inter += o.spawns_inter;
    intra_pop_hits += o.intra_pop_hits;
    intra_steals += o.intra_steals;
    inter_acquires += o.inter_acquires;
    inter_steals += o.inter_steals;
    failed_steal_attempts += o.failed_steal_attempts;
    steal_batches += o.steal_batches;
    steal_batch_tasks += o.steal_batch_tasks;
    weighted_picks += o.weighted_picks;
    mask_sets += o.mask_sets;
    mask_clears_own += o.mask_clears_own;
    mask_clears_hearsay += o.mask_clears_hearsay;
    help_iterations += o.help_iterations;
    idle_backoff_sleeps += o.idle_backoff_sleeps;
    spawning_tasks += o.spawning_tasks;
    alloc_freelist_hits += o.alloc_freelist_hits;
    alloc_slab_refills += o.alloc_slab_refills;
    alloc_remote_frees += o.alloc_remote_frees;
    alloc_remote_drains += o.alloc_remote_drains;
    alloc_lazy_spawns += o.alloc_lazy_spawns;
    alloc_promotions += o.alloc_promotions;
    if (o.max_task_level > max_task_level) max_task_level = o.max_task_level;
    return *this;
  }
};

/// One task execution, recorded when Options::record_events is set.
/// Enough to audit the protocol after a run: which worker ran which tier
/// at which level (e.g. "inter-socket tasks execute on head workers
/// only", "intra-socket tasks never cross squads").
struct ExecRecord {
  std::int32_t worker = 0;
  std::int32_t squad = 0;
  std::int32_t level = 0;
  bool inter = false;
  bool on_head = false;
};

/// Aggregate over a full run.
struct SchedulerStats {
  WorkerStats total;
  std::vector<WorkerStats> per_worker;

  std::string summary() const;
};

}  // namespace cab::runtime
