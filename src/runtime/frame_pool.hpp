#pragma once

#include <atomic>
#include <cstddef>
#include <new>
#include <vector>

#include "hw/affinity.hpp"
#include "runtime/squad_protocol.hpp"
#include "runtime/stats.hpp"
#include "runtime/task.hpp"
#include "util/assert.hpp"
#include "util/cache_line.hpp"
#include "util/sync_policy.hpp"

namespace cab::runtime {

/// Intrusive Treiber stack, multi-producer / single-consumer: thieves
/// that complete a frame on another worker (typically another socket)
/// push it here; the owning worker drains the whole stack in one exchange
/// when its freelist runs dry. `Node` must expose a `Node* pool_next`
/// link, which the stack reuses — a node is never in a freelist and the
/// remote stack at the same time.
///
/// Push-only CAS has no ABA window: a stale head is retried against the
/// new value, never dereferenced, and the single consumer detaches the
/// entire chain at once (no concurrent pop to race a reused node against).
///
/// Parameterized on the Sync policy (util/sync_policy.hpp) so
/// tests/test_model_check.cpp explores every push/take_all interleaving
/// over chk::atomic (DESIGN.md §6).
template <typename Node, typename Sync = util::RealSync>
class MpscIntrusiveStack {
  template <typename U>
  using Atomic = typename Sync::template atomic_t<U>;

 public:
  MpscIntrusiveStack() = default;
  MpscIntrusiveStack(const MpscIntrusiveStack&) = delete;
  MpscIntrusiveStack& operator=(const MpscIntrusiveStack&) = delete;

  /// Any thread. Publishes `n` — and every write the producer made to it
  /// beforehand — to the consumer that eventually drains the stack.
  void push(Node* n) noexcept {
    // mo: relaxed load — the CAS revalidates it; release on the successful
    // CAS publishes n->pool_next and the producer's writes to *n (paired
    // with the acquire exchange in take_all). Failure order relaxed: the
    // retry only feeds the next attempt's expected value.
    Node* head = head_.load(std::memory_order_relaxed);
    do {
      n->pool_next = head;
    } while (!head_.compare_exchange_weak(head, n, std::memory_order_release,
                                          std::memory_order_relaxed));
  }

  /// Consumer only. Detaches the whole chain (LIFO order) in a single
  /// exchange; returns nullptr when the stack is empty.
  Node* take_all() noexcept {
    // mo: acquire pairs with the release CAS in push — after this the
    // consumer may freely read, re-link and reuse every detached node.
    return head_.exchange(nullptr, std::memory_order_acquire);
  }

  /// Racy emptiness probe — monitoring/tests only, never a correctness
  /// decision.
  bool empty() const noexcept {
    return head_.load(std::memory_order_relaxed) == nullptr;
  }

 private:
  // Remote completers hammer this line on every cross-socket free; keep
  // it off whatever the enclosing object co-locates with the owner's hot
  // fields.
  alignas(util::kCacheLineSize) Atomic<Node*> head_{nullptr};
};

/// Per-worker NUMA-local recycling allocator for TaskFrames.
///
/// Steady state allocates nothing: acquire() is a freelist pop, release
/// is a freelist push (local) or one CAS on the home pool's remote stack
/// (cross-worker completion). Slabs are only carved when freelist *and*
/// remote channel are empty — which, since frames only ever return to the
/// pool that carved them, can happen at most until the pool's capacity
/// covers its own peak of simultaneously-live frames (the Eq. 15 bound
/// per worker; see DESIGN.md). Placement is NUMA-local twice over: the
/// slab pages are mbind'ed to the carving worker's socket (best effort)
/// and first-touched by it immediately after.
///
/// Threading: acquire/release_local/refill are owner-thread only;
/// push_remote is any-thread. The owner is the worker that carved the
/// slabs — except between run() epochs, when every worker is parked
/// (Engine::working == 0) and the main thread may act as any pool's
/// owner (Runtime::run uses this for the root frame).
class FramePool {
 public:
  /// Frames per slab: 64 frames ≈ 8 KiB, i.e. two pages — big enough to
  /// amortize cold-start carving to one allocation per 64 spawns, small
  /// enough that an idle worker strands at most a few KiB.
  static constexpr std::size_t kFramesPerSlab = 64;

  FramePool() = default;
  FramePool(const FramePool&) = delete;
  FramePool& operator=(const FramePool&) = delete;

  /// Teardown frees slab storage wholesale. Frames at rest own nothing —
  /// the executing worker resets the body right after it returns, and
  /// aborted spawns are reset by recycle() — so no per-frame destructor
  /// needs to run, and frames parked in the remote channel are covered
  /// because their storage is slab memory. Safe whenever no frame from
  /// this pool is live: Runtime destruction joins all workers first.
  ~FramePool() {
    for (void* slab : slabs_) {
      ::operator delete(slab, std::align_val_t{kSlabAlign});
    }
  }

  /// Owner only. Freelist first; on miss, one bulk drain of the remote
  /// channel; only when both are dry, carve a fresh slab. Exactly one of
  /// the three alloc counters ticks per call, so
  /// hits + drains + refills == acquires holds (tests rely on it).
  TaskFrame* acquire(WorkerStats& stats) {
    TaskFrame* t = free_;
    if (t != nullptr) {
      ++stats.alloc_freelist_hits;
    } else {
      free_ = remote_.take_all();
      if (free_ != nullptr) {
        ++stats.alloc_remote_drains;
      } else {
        refill(stats);
      }
      t = free_;
    }
    free_ = t->pool_next;
    CAB_CHECK(t->completed.load(std::memory_order_relaxed) +
                      t->completed_local ==
                  t->spawned,
              "recycled frame still has outstanding children "
              "(double recycle or lost join)");
    return t;
  }

  /// Owner only: the completing worker is this pool's owner.
  void release_local(TaskFrame* t) noexcept {
    t->pool_next = free_;
    free_ = t;
  }

  /// Any thread: the remote-free return channel. The frame flows back to
  /// its home socket's memory instead of crossing the allocator from
  /// whichever socket stole it.
  void push_remote(TaskFrame* t) noexcept { remote_.push(t); }

  /// Slabs carved so far (== lifetime alloc_slab_refills of the owner).
  std::size_t slab_count() const noexcept { return slabs_.size(); }

  /// Racy probe of the remote channel — tests/monitoring only.
  bool remote_empty() const noexcept { return remote_.empty(); }

 private:
  /// Page granularity: mbind operates on whole pages, and page-aligned
  /// slabs keep a slab's frames from straddling into a neighbour's pages.
  static constexpr std::size_t kSlabAlign = 4096;

  void refill(WorkerStats& stats) {
    ++stats.alloc_slab_refills;
    const std::size_t bytes = kFramesPerSlab * sizeof(TaskFrame);
    // alloc-ok: cold-start slab carve — amortized over kFramesPerSlab
    // frames and flat at steady state (asserted via alloc.slab_refills in
    // tests/test_frame_pool.cpp).
    void* raw = ::operator new(bytes, std::align_val_t{kSlabAlign});
    // Best-effort NUMA pin to the carving worker's socket; the
    // placement-news below first-touch every page as the fallback policy.
    hw::bind_memory_local(raw, bytes);
    auto* frames = static_cast<TaskFrame*>(raw);
    for (std::size_t i = 0; i < kFramesPerSlab; ++i) {
      TaskFrame* f = ::new (static_cast<void*>(frames + i)) TaskFrame();
      f->home = this;
      f->pool_next = free_;
      free_ = f;
    }
    slabs_.push_back(raw);
  }

  /// Owner-only freelist of ready frames (LIFO: the hottest frame — the
  /// one just recycled, still in this core's cache — is handed out next).
  TaskFrame* free_ = nullptr;
  std::vector<void*> slabs_;
  MpscIntrusiveStack<TaskFrame> remote_;
};

/// A LazyStack slot: a full TaskFrame plus the promotion claim word
/// (DESIGN.md §5h). The frame is the *first* member so the deque can keep
/// storing plain `TaskFrame*` — `of()` recovers the enclosing slot from
/// the frame pointer with no tagging or masking on any deque path; the
/// `TaskFrame::lazy` flag tells takers which kind they hold.
struct alignas(util::kCacheLineSize) LazyFrame {
  TaskFrame frame;
  protocol::LazyClaim<util::RealSync> claim;

  /// The subset of TaskFrame::prepare the lazy path actually needs.
  /// Skipped on purpose (all provably never read on a lazy frame):
  /// `inter` / `inter_acquired_by` / `has_intra_children` feed the
  /// busy-state paths, which lazy frames never reach (execute_lazy skips
  /// them; sync()'s release_busy_on_suspend no-ops on the never-set
  /// inter_acquired_by); `lazy` is set once at carve time and promotion
  /// re-prepares the pooled copy from scratch; `home`/`pool_next` are
  /// pool-owned and slots have none.
  void arm(TaskFrame* p, std::int32_t lvl) noexcept {
    frame.parent = p;
    frame.level = lvl;
    frame.spawned = 0;
    frame.completed.store(0, std::memory_order_relaxed);
    frame.completed_local = 0;
    frame.has_children = false;
    claim.arm();
  }

  static LazyFrame* of(TaskFrame* t) noexcept {
    static_assert(offsetof(LazyFrame, frame) == 0,
                  "frame must be the first member: LazyFrame::of casts the "
                  "frame pointer back to the slot");
    return reinterpret_cast<LazyFrame*>(t);
  }
};

/// Per-worker stack of LazyFrame slots backing the lazy spawn fast path:
/// the child frame a spawn publishes lives here — no pool round trip —
/// and is reclaimed in place when the owner executes it, or released by
/// the thief's claim hand-off after promotion.
///
/// Not a pure bump stack: help-while-waiting breaks LIFO reclamation (a
/// parent suspended in sync() can pop and finish an *older* sibling while
/// a younger slot is still live under it), and promotions complete out of
/// order entirely. Slots therefore free individually through their claim
/// word (kFreed), and push() lazily truncates the dead suffix — the loop
/// stops at the first live (kStacked/kOwned/kPromoting) slot, so freed
/// slots buried under a live one are reclaimed as soon as it clears.
/// A full stack returns nullptr and the caller falls back to the eager
/// pooled path, which is always correct (tested via wide flat fan-out).
///
/// Owner-thread only except for the claim words, which thieves touch
/// through the promotion handshake.
class LazyStack {
 public:
  /// Slots per worker: bounds the lazy suffix of one worker's spawn tree.
  /// Depth-first execution keeps the live count near the spawn depth (a
  /// few dozen), so 512 slots (~72 KiB) make eager overflow an exotic
  /// fallback, not a steady-state path.
  static constexpr std::size_t kSlots = 512;

  LazyStack() = default;
  LazyStack(const LazyStack&) = delete;
  LazyStack& operator=(const LazyStack&) = delete;

  /// Frames at rest own nothing (same argument as ~FramePool: bodies are
  /// reset after execution or relocated away by promotion), so teardown
  /// frees the slot storage wholesale.
  ~LazyStack() {
    if (slots_ != nullptr) {
      ::operator delete(slots_, std::align_val_t{util::kCacheLineSize});
    }
  }

  /// Owner only. Returns an armed-claim-free slot frame, or nullptr when
  /// the stack is full (caller falls back to the eager path). The first
  /// call carves the slot array; steady state is a truncation probe plus
  /// a bump.
  TaskFrame* push() {
    if (slots_ == nullptr) carve();
    // Truncate the dead suffix: in the common (pure LIFO) case this is
    // one acquire load of the slot just executed in place.
    while (top_ > 0 && slots_[top_ - 1].claim.reclaimable()) --top_;
    if (top_ == kSlots) return nullptr;
    return &slots_[top_++].frame;
  }

  /// Live (non-reclaimable) slots — tests/monitoring only; racy against
  /// in-flight promotions.
  std::size_t live() const noexcept {
    std::size_t n = 0;
    for (std::size_t i = 0; i < top_; ++i) {
      if (!slots_[i].claim.reclaimable()) ++n;
    }
    return n;
  }

  bool carved() const noexcept { return slots_ != nullptr; }

 private:
  void carve() {
    const std::size_t bytes = kSlots * sizeof(LazyFrame);
    // alloc-ok: one-time per-worker carve on the first lazy spawn —
    // amortized over every lazy spawn the worker ever runs (steady-state
    // zero-alloc asserted by tests/test_frame_pool.cpp).
    void* raw = ::operator new(bytes, std::align_val_t{util::kCacheLineSize});
    // Same NUMA discipline as FramePool::refill: best-effort pin to the
    // carving worker's socket, first-touch by the placement-news below.
    hw::bind_memory_local(raw, bytes);
    slots_ = static_cast<LazyFrame*>(raw);
    for (std::size_t i = 0; i < kSlots; ++i) {
      LazyFrame* lf = ::new (static_cast<void*>(slots_ + i)) LazyFrame();
      // Permanent: slot frames are lazy for their whole life (promotion
      // copies *out* of them; the pooled copy is re-prepared non-lazy).
      lf->frame.lazy = true;
    }
  }

  LazyFrame* slots_ = nullptr;
  std::size_t top_ = 0;
};

}  // namespace cab::runtime
