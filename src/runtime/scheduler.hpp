#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <string_view>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "deque/chase_lev_deque.hpp"
#include "deque/locked_deque.hpp"
#include "dag/partition.hpp"
#include "runtime/frame_pool.hpp"
#include "runtime/squad_protocol.hpp"
#include "hw/topology.hpp"
#include "obs/metrics/perf_source.hpp"
#include "obs/metrics/registry.hpp"
#include "obs/timeline.hpp"
#include "runtime/stats.hpp"
#include "runtime/task.hpp"
#include "util/cache_line.hpp"
#include "util/rng.hpp"

namespace cab::runtime {

/// Which scheduling policy the runtime executes. The latter two are the
/// baselines of the paper's Sections II and V ("Cilk" = classic random
/// task-stealing; task-sharing = one central locked pool).
enum class SchedulerKind : std::uint8_t {
  kCab,
  kRandomStealing,
  kTaskSharing,
};

const char* to_string(SchedulerKind k);

/// Intra-socket victim-selection/transfer policy — the `--steal=` ablation
/// axis (DESIGN.md "Victim selection and steal-half batching"). Applies to
/// kCab's in-squad stealing only; the classic baselines keep the uniform
/// single-task steal that defines them.
enum class StealPolicy : std::uint8_t {
  kUniform,       ///< paper's Algorithm I: uniform victim, single-task steal
  kWeighted,      ///< occupancy-weighted victim, single-task steal
  kWeightedHalf,  ///< occupancy-weighted victim + steal-half batch transfer
};

const char* to_string(StealPolicy p);

/// Parses "uniform" | "weighted" | "weighted+half" (also accepts
/// "weighted-half" for shells where `+` is awkward). Returns false and
/// leaves `out` untouched on unknown input.
bool parse_steal_policy(std::string_view s, StealPolicy& out);

/// Consecutive failed acquire attempts after which a spinning *head*
/// worker may bypass the squad-busy gate of Algorithm I step 2 and reach
/// the inter-socket pools anyway. Needed for liveness: a leaf inter-socket
/// task holds busy_state across its implicit sync, and if its pending
/// subtree contains forced inter-socket children (Runtime::spawn_inter
/// below BL), those sit in the squad pool that the busy gate is barring
/// every head from — a livelock with every worker spinning. The threshold
/// sits past the backoff sleep tier, so normal contention never hits it.
inline constexpr int kStarvationEscapeFails = 8192;

/// Progressive-backoff tiers of the worker spin loops (worker.cpp
/// backoff()): cpu_relax below kBackoffRelaxFails consecutive failures,
/// sched-yield below kBackoffYieldFails, then every further failed
/// acquire parks the thread for kIdleBackoffSleep. The sleep count is
/// tracked in WorkerStats::idle_backoff_sleeps, so parked time is always
/// count * kIdleBackoffSleep — keep reports computing it from this
/// constant rather than a re-typed literal.
inline constexpr int kBackoffRelaxFails = 16;
inline constexpr int kBackoffYieldFails = 4096;
inline constexpr std::chrono::microseconds kIdleBackoffSleep{50};

struct Engine;
struct EpochContext;

/// A squad: the group of workers affiliated with one socket (Fig. 3).
struct Squad {
  int id = 0;
  int head_worker = 0;        ///< smallest worker id in the squad
  int first_worker = 0;
  int worker_count = 0;

  /// The epoch this squad is currently bound to, or nullptr when the
  /// squad is parked. Guarded by Engine::lifecycle_mu: set when a
  /// run()/run_on() reserves the squad, cleared once that epoch has fully
  /// quiesced. Concurrent epochs on *disjoint* squad sets — the job
  /// service's space partitioning — each bind their own squads here.
  EpochContext* ctx = nullptr;
  /// Activation stamp (a copy of Engine::epoch at bind time, guarded by
  /// lifecycle_mu). Workers wake when their squad's stamp moves past the
  /// last epoch they served.
  std::uint64_t ctx_epoch = 0;

  /// The squad's inter-socket task pool.
  deque::LockedDeque<TaskFrame*> inter_pool;

  /// The paper's per-squad `busy_state` (see protocol::BusyState: count,
  /// not boolean, so nested inter-socket tasks keep it consistent). The
  /// transitions live in runtime/squad_protocol.hpp, where the model
  /// checker proves them over chk::atomic (DESIGN.md §6).
  alignas(util::kCacheLineSize) protocol::BusyState<> busy_state;

  /// Victim-occupancy hint bits for weighted in-squad victim selection
  /// (bit = squad-local worker slot; see protocol::OccupancyMask).
  /// Maintained only when Engine::mask_active.
  protocol::OccupancyMask<> occupancy;

  bool busy() const { return busy_state.busy(); }
};

/// One worker thread, affiliated with one (virtual) core.
///
/// order-ok: fields are declared in acquire-path access order (identity,
/// epoch binding, pools, observability), not packed by alignment — the
/// line of padding a repack would reclaim is irrelevant at one Worker
/// per core.
struct Worker {
  /// Upper bound on one steal_batch transfer. Half of a long deque still
  /// caps here: past ~16 tasks the thief's claim window (and the surplus
  /// re-push loop) costs more than a second steal would.
  static constexpr std::size_t kStealBatchMax = 16;

  int id = 0;
  int core = 0;
  Squad* squad = nullptr;
  /// Squad-local slot (id - squad->first_worker): this worker's bit in the
  /// squad's occupancy mask.
  int squad_slot = 0;
  bool is_head = false;
  Engine* engine = nullptr;

  /// Epoch this worker is currently draining (set on wake, cleared when
  /// the worker re-parks). Only touched by the worker's own thread; every
  /// acquire/spawn path reads the tier, injection pool and partition
  /// boundaries through it.
  EpochContext* ctx = nullptr;
  /// This worker's index in ctx->workers (computed once on wake): the
  /// self-exclusion index for the baselines' partition-wide steal.
  int ctx_slot = 0;

  /// Intra-socket task pool (per-worker deque of Fig. 3); also the plain
  /// work-stealing deque under kRandomStealing.
  deque::ChaseLevDeque<TaskFrame*> intra;

  /// NUMA-local recycling pool for the frames this worker spawns (unused
  /// when Engine::frame_pool is off). Owner-thread operations only, except
  /// push_remote — see frame_pool.hpp.
  FramePool pool;

  /// Slots for lazily-created child frames (the Engine::lazy fast path,
  /// DESIGN.md §5h). Owner-thread only apart from the slots' claim words,
  /// which thieves drive through the promotion handshake.
  LazyStack lazy_stack;

  /// One-entry publication buffer for lazy spawns: the newest lazy child
  /// waits here, private to the owner, and reaches the deque only when a
  /// second spawn displaces it (push_local). The owner's pop takes it back
  /// without the deque's seq_cst pop fence, so a spawn-spawn-sync pattern
  /// pays one deque round-trip per *two* children. Thieves steal from the
  /// FIFO top, i.e. they want the oldest (shallowest) child, so deferring
  /// publication of the newest one hides no breadth from them. Deadlock-
  /// free because every wait in the runtime pops (pop_local) before it
  /// blocks: a nonempty buffer is always the very next task its owner
  /// runs. Cleared by construction at epoch end — a buffered child is an
  /// unexecuted descendant, so the root cannot join while one exists.
  TaskFrame* spawn_cache = nullptr;

  util::Xorshift64 rng;
  WorkerStats stats;

  /// Per-worker execution log (only filled when Engine::record_events).
  std::vector<ExecRecord> exec_log;

  /// Timestamped timeline of spans/events (only filled when
  /// Options::trace). Single-writer: appended to by this worker's thread
  /// only, read by Runtime::trace() after run() has returned.
  obs::TimelineBuffer tl;

  /// This worker's hardware counter group (opened on the worker's own
  /// thread when Options::hw_counters and perf is available; otherwise
  /// stays closed and every call is a no-op).
  obs::metrics::PerfGroup perf;
  /// Depth of open inter-tier counter measurements on this worker: only
  /// the outermost inter-socket task body is sampled, so nested inter
  /// tasks (run while helping inside a sync) are counted once, as part
  /// of the enclosing span.
  int hw_inter_depth = 0;

  /// Innermost task this worker is currently executing (nullptr if idle).
  TaskFrame* current = nullptr;

  /// Per-epoch fold of "could a spawn here be an inter-tier child?" —
  /// true only for a non-degenerate CAB epoch with lazy spawning on.
  /// Set once per wake (worker_main); read per spawn in try_begin_lazy,
  /// where it gates the only per-level eligibility test left.
  bool lazy_tier_check = false;

  std::thread thread;

  /// Runs `t` to completion: body, implicit sync (helping while waiting),
  /// then joins the parent and releases the squad busy-state if needed.
  /// Dispatches lazy frames (own-deque pops only; every steal path
  /// promotes first) to execute_lazy.
  void execute(TaskFrame* t);

  /// Runs a lazy frame in place on its own stack slot: claims it from any
  /// racing promotion, executes the lean intra-only path (no busy-state,
  /// no recycle, plain completed_local join), then frees the slot.
  void execute_lazy(TaskFrame* t);

  /// Thief side of the lazy handshake: claims the victim's stack slot,
  /// relocates the capture into a frame from *this* worker's pool, and
  /// releases the slot. Returns the promoted frame (identity transfer —
  /// no frame_created/destroyed tick).
  TaskFrame* promote_lazy(TaskFrame* t);

  /// One attempt to find and run a task while blocked in a sync.
  /// Returns true if a task was executed. `desperate` is set by spin
  /// loops whose failed streak crossed kStarvationEscapeFails.
  bool help_once(bool desperate = false);

  /// Releases the squad busy-state when a non-leaf inter-socket task
  /// suspends at its sync (leaf inter-socket tasks hold it to completion).
  void release_busy_on_suspend(TaskFrame* t);

  /// One attempt to acquire a task as a *free* worker (Algorithm I).
  /// Returns nullptr when nothing was found (caller backs off).
  TaskFrame* acquire(bool desperate = false);

  /// Returns a completed (or aborted, pre-publication) frame to its home
  /// pool: freelist push when this worker owns it, MPSC remote-free push
  /// when another worker does, plain delete for `--frame-pool=off` heap
  /// frames (home == nullptr).
  void recycle(TaskFrame* t);

  /// Sets this worker's occupancy bit (push made the deque plausibly
  /// nonempty); counts the transition. No-op unless Engine::mask_active.
  void mark_occupied();

  /// Publishes a lazy child: displaces the currently buffered one (if
  /// any) onto the deque — preserving spawn order, oldest deepest — and
  /// buffers `t`. Returns true when the displacement made the deque
  /// plausibly nonempty (caller marks occupancy); a buffer-only spawn
  /// publishes nothing thieves can see, so there is nothing to advertise.
  bool push_local(TaskFrame* t) {
    TaskFrame* prev = spawn_cache;
    spawn_cache = t;
    if (prev == nullptr) return false;
    intra.push_bottom(prev);
    return true;
  }

  /// Owner-side pop: the buffered newest child first (no fence — the
  /// buffer is owner-private), then the deque bottom. Every owner pop
  /// site goes through here so a wait can never strand a buffered child.
  TaskFrame* pop_local() {
    if (TaskFrame* t = spawn_cache) {
      spawn_cache = nullptr;
      return t;
    }
    return intra.pop_bottom();
  }

 private:
  TaskFrame* acquire_cab(bool desperate);
  TaskFrame* acquire_random();
  TaskFrame* acquire_sharing();
  TaskFrame* steal_intra_in_squad();
  /// One steal attempt against `victim`'s intra deque: a steal-half batch
  /// under kWeightedHalf (surplus re-pushed onto this worker's deque),
  /// a single steal_top otherwise. `taken` reports the batch size (0 on
  /// miss); a miss hearsay-clears the victim's occupancy bit.
  TaskFrame* steal_intra_from(int victim, std::size_t& taken);
  TaskFrame* steal_intra_global();
  TaskFrame* steal_inter_from_other_squads();
  TaskFrame* take_inter_from_own_squad();

  void finish(TaskFrame* t);
};

/// One in-flight run()/run_on() epoch over a subset of squads — the unit
/// of *space partitioning*. The classic single-caller run() uses a
/// permanent context covering every squad (Engine::full_ctx); the job
/// service builds one per admitted job over that job's disjoint squad
/// set. Everything epoch-scoped lives here so epochs on disjoint
/// partitions can be in flight concurrently: the bi-tier protocol (tier),
/// root injection, DAG-drained flag, exception capture, and the
/// joined/working quiescence counts run() waits on.
///
/// Stealing is confined to the context: intra steals stay in-squad as
/// always, inter steals iterate `squads`, and the classic baselines'
/// global steal walks `workers` — so a partition never sees (or leaks)
/// another job's tasks, which is what preserves both the paper's
/// cache-affinity argument and per-job task conservation.
///
/// order-ok: the line of padding an alignment repack would reclaim is
/// the price of keeping root_done line-aligned *and last* (see its
/// comment); contexts are one-per-epoch, not per-core.
struct EpochContext {
  /// Tier assignment for this epoch's DAG. bl is relative to the
  /// *partition*: Eq. 4 with M = squads.size(). Mutated only between
  /// epochs (adaptive retuning on the full context; per-job sizing in the
  /// service).
  dag::TierAssignment tier;

  /// The partition: this epoch's squads and their workers, in squad
  /// order. Fixed before the context is ever activated.
  std::vector<Squad*> squads;
  std::vector<Worker*> workers;

  /// Root injection queue (the submitting thread may not touch worker
  /// deques) — also the central pool under kTaskSharing.
  deque::LockedDeque<TaskFrame*> inject;

  /// First exception thrown by any task body this epoch; rethrown by the
  /// submitting thread after the DAG has drained.
  std::mutex exception_mu;
  std::exception_ptr first_exception;

  /// Guarded by Engine::lifecycle_mu. `joined`/`working` are the
  /// quiescence counts the submitting thread waits on (see Engine);
  /// `start_ns` stamps workers' lead-in idle spans.
  std::uint64_t start_ns = 0;
  int working = 0;
  int joined = 0;

  /// This epoch's DAG has fully drained (see the root_done comment that
  /// used to live on Engine: a flag, not a task counter — the root frame
  /// finishing implies every descendant already has, by implicit-sync
  /// induction). Every parked-at-sync worker polls this flag, so it is
  /// the *last* member: line-aligned at the front, and nothing behind it
  /// can move onto its line (cab_layout's tail-shared rule).
  alignas(util::kCacheLineSize) std::atomic<bool> root_done{true};

  void capture_exception(std::exception_ptr e) {
    std::lock_guard<std::mutex> lk(exception_mu);
    if (!first_exception) first_exception = std::move(e);
  }

  /// True when CAB must degrade to classic random stealing for this
  /// epoch (BL == 0, Algorithm II step 2 / Section V-D — including every
  /// single-squad partition).
  bool cab_degenerate(SchedulerKind kind) const {
    return kind == SchedulerKind::kCab && tier.bl == 0;
  }
};

/// Shared scheduler state: all workers, all squads, the policy, and the
/// run lifecycle. Owned by Runtime via unique_ptr (stable address —
/// workers keep raw pointers).
///
/// order-ok: declared by concern (policy knobs, topology maps, frame
/// accounting, lifecycle) — a single instance exists, so the line of
/// padding an alignment repack would save is noise.
struct Engine {
  explicit Engine(const hw::Topology& t)
      : topo(t), registry(t.sockets() * t.cores_per_socket()) {}

  hw::Topology topo;
  SchedulerKind kind = SchedulerKind::kCab;
  /// Intra-squad victim selection / transfer policy (Options::steal).
  StealPolicy steal = StealPolicy::kWeightedHalf;
  /// Occupancy-mask maintenance is live: kCab with a non-uniform steal
  /// policy. Precomputed so the spawn path pays one bool test before the
  /// (usually no-op) mask update.
  bool mask_active = false;
  bool pin_threads = false;
  bool record_events = false;
  bool trace = false;
  bool metrics = true;
  bool hw_counters = false;
  /// Frame recycling on (default). Off = the `--frame-pool=off` ablation:
  /// every spawn heap-allocates its frame and boxes its callable, i.e.
  /// the seed allocation strategy, kept measurable for the spawn-overhead
  /// benches.
  bool frame_pool = true;
  /// Lazy spawn fast path on (= Options::lazy_spawn && frame_pool):
  /// intra-tier spawns put the child frame on the spawning worker's
  /// LazyStack and thieves promote at steal time (DESIGN.md §5h). Off =
  /// the `--lazy-spawn=off` ablation, the PR 5 eager-pooled path.
  bool lazy = false;
  std::size_t trace_capacity = 0;
  std::uint64_t trace_epoch_ns = 0;
  /// Ring-buffer drop policy for the timelines (Options::trace_ring).
  bool trace_ring = false;

  /// Metrics registry: one writer slot per worker. Scheduler counters
  /// are flushed into it from WorkerStats at snapshot time (zero hot-path
  /// cost); the HW counter gauges below are stored by the workers
  /// themselves at epoch boundaries and around inter-tier task bodies.
  obs::metrics::Registry registry;
  /// Pre-registered per-tier HW counters, indexed by HwCounter; null when
  /// Options::metrics is off. "total" is cumulative over every enabled
  /// epoch; "inter" accumulates deltas measured around outermost
  /// inter-socket task bodies (intra = total - inter, derived at flush).
  std::array<obs::metrics::Counter*, obs::metrics::kHwCounterCount>
      hw_total{};
  std::array<obs::metrics::Counter*, obs::metrics::kHwCounterCount>
      hw_inter{};
  /// Pre-registered steal.batch_size histogram (per-thief batch sizes);
  /// null when Options::metrics is off.
  obs::metrics::Histogram* steal_batch_hist = nullptr;

  std::vector<std::unique_ptr<Worker>> workers;
  std::vector<std::unique_ptr<Squad>> squads;

  /// The permanent full-machine context: every squad, BL = Options::
  /// boundary_level (retuned between epochs by the adaptive controller).
  /// Runtime::run() executes on it; run_on() builds a transient context
  /// over a squad subset instead.
  std::unique_ptr<EpochContext> full_ctx;

  /// Epochs currently in flight across every partition. Guards the
  /// "call between run()s only" contract on trace()/stats()/
  /// metrics_snapshot()/adapt_report(): those flush or read per-worker
  /// buffers that are only quiescent when nothing is running, and with
  /// the job service that is no longer implied by program order.
  /// Written under lifecycle_mu; read lock-free by the contract checks.
  // pad-ok: cold — two RMWs per epoch (both under lifecycle_mu), loads
  // only from the rarely-called report/snapshot contract checks.
  std::atomic<int> active_epochs{0};

  /// Live task frames and their high-water mark — the measured quantity
  /// behind the paper's Eq. 15 space bound (frames, not bytes). Gated on
  /// `frame_accounting` (= Options::metrics): the create/destroy pair is
  /// two shared-cache-line RMWs per task, which is pure observability
  /// cost the metrics-off spawn path must not pay.
  bool frame_accounting = true;
  alignas(util::kCacheLineSize) std::atomic<std::int64_t> live_frames{0};
  alignas(util::kCacheLineSize) std::atomic<std::int64_t> peak_frames{0};

  void frame_created() {
    if (!frame_accounting) return;
    const std::int64_t cur =
        live_frames.fetch_add(1, std::memory_order_relaxed) + 1;
    std::int64_t p = peak_frames.load(std::memory_order_relaxed);
    while (cur > p && !peak_frames.compare_exchange_weak(
                          p, cur, std::memory_order_relaxed)) {
    }
  }
  void frame_destroyed() {
    if (!frame_accounting) return;
    live_frames.fetch_sub(1, std::memory_order_relaxed);
  }

  /// Run lifecycle: workers park until their squad is bound to an epoch,
  /// exit on `shutdown`. One mutex/cv pair serves every partition: a
  /// worker's wake predicate reads only its own squad's binding, and the
  /// occasional cross-partition spurious wake re-parks immediately.
  ///
  /// The per-context `working`/`joined` counts (guarded here) are what a
  /// submitting thread waits on: a worker's very last acquire attempt can
  /// write stats/timeline entries *after* root_done was set, so waiting
  /// on root_done alone would let the submitter read those buffers
  /// mid-write; and a short epoch can finish while a slow-waking worker
  /// is still parked, whose straggler lead-in idle event would land in a
  /// timeline being read. The mutex hand-off at the final decrement is
  /// the happens-before edge that makes post-run stats()/trace() safe.
  ///
  /// share-ok: the mutex and both cvs are park/wake slow path, always
  /// touched together under lifecycle_mu — splitting them across lines
  /// buys nothing; the alignas only keeps the cluster off the
  /// peak_frames counter's line.
  alignas(util::kCacheLineSize) std::mutex lifecycle_mu;
  std::condition_variable lifecycle_cv;  // straddle-ok: share-ok: cluster
  std::condition_variable done_cv;       // straddle-ok: share-ok: cluster
  bool shutdown = false;
  /// Monotonic activation counter shared by every partition; each
  /// activation stamps its squads' ctx_epoch from it (guarded by
  /// lifecycle_mu).
  std::uint64_t epoch = 0;

  void worker_main(Worker& w);
  void notify_if_done();
};

/// The worker owning the current thread (nullptr on non-worker threads).
/// Defined in worker.cpp; declared here so the header-inline lazy spawn
/// fast path (runtime.hpp) can reach the current worker without a call.
extern thread_local Worker* tls_worker;

}  // namespace cab::runtime
