#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <string_view>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "deque/chase_lev_deque.hpp"
#include "deque/locked_deque.hpp"
#include "dag/partition.hpp"
#include "runtime/frame_pool.hpp"
#include "runtime/squad_protocol.hpp"
#include "hw/topology.hpp"
#include "obs/metrics/perf_source.hpp"
#include "obs/metrics/registry.hpp"
#include "obs/timeline.hpp"
#include "runtime/stats.hpp"
#include "runtime/task.hpp"
#include "util/cache_line.hpp"
#include "util/rng.hpp"

namespace cab::runtime {

/// Which scheduling policy the runtime executes. The latter two are the
/// baselines of the paper's Sections II and V ("Cilk" = classic random
/// task-stealing; task-sharing = one central locked pool).
enum class SchedulerKind : std::uint8_t {
  kCab,
  kRandomStealing,
  kTaskSharing,
};

const char* to_string(SchedulerKind k);

/// Intra-socket victim-selection/transfer policy — the `--steal=` ablation
/// axis (DESIGN.md "Victim selection and steal-half batching"). Applies to
/// kCab's in-squad stealing only; the classic baselines keep the uniform
/// single-task steal that defines them.
enum class StealPolicy : std::uint8_t {
  kUniform,       ///< paper's Algorithm I: uniform victim, single-task steal
  kWeighted,      ///< occupancy-weighted victim, single-task steal
  kWeightedHalf,  ///< occupancy-weighted victim + steal-half batch transfer
};

const char* to_string(StealPolicy p);

/// Parses "uniform" | "weighted" | "weighted+half" (also accepts
/// "weighted-half" for shells where `+` is awkward). Returns false and
/// leaves `out` untouched on unknown input.
bool parse_steal_policy(std::string_view s, StealPolicy& out);

/// Consecutive failed acquire attempts after which a spinning *head*
/// worker may bypass the squad-busy gate of Algorithm I step 2 and reach
/// the inter-socket pools anyway. Needed for liveness: a leaf inter-socket
/// task holds busy_state across its implicit sync, and if its pending
/// subtree contains forced inter-socket children (Runtime::spawn_inter
/// below BL), those sit in the squad pool that the busy gate is barring
/// every head from — a livelock with every worker spinning. The threshold
/// sits past the backoff sleep tier, so normal contention never hits it.
inline constexpr int kStarvationEscapeFails = 8192;

/// Progressive-backoff tiers of the worker spin loops (worker.cpp
/// backoff()): cpu_relax below kBackoffRelaxFails consecutive failures,
/// sched-yield below kBackoffYieldFails, then every further failed
/// acquire parks the thread for kIdleBackoffSleep. The sleep count is
/// tracked in WorkerStats::idle_backoff_sleeps, so parked time is always
/// count * kIdleBackoffSleep — keep reports computing it from this
/// constant rather than a re-typed literal.
inline constexpr int kBackoffRelaxFails = 16;
inline constexpr int kBackoffYieldFails = 4096;
inline constexpr std::chrono::microseconds kIdleBackoffSleep{50};

struct Engine;

/// A squad: the group of workers affiliated with one socket (Fig. 3).
struct Squad {
  int id = 0;
  int head_worker = 0;        ///< smallest worker id in the squad
  int first_worker = 0;
  int worker_count = 0;

  /// The squad's inter-socket task pool.
  deque::LockedDeque<TaskFrame*> inter_pool;

  /// The paper's per-squad `busy_state` (see protocol::BusyState: count,
  /// not boolean, so nested inter-socket tasks keep it consistent). The
  /// transitions live in runtime/squad_protocol.hpp, where the model
  /// checker proves them over chk::atomic (DESIGN.md §6).
  alignas(util::kCacheLineSize) protocol::BusyState<> busy_state;

  /// Victim-occupancy hint bits for weighted in-squad victim selection
  /// (bit = squad-local worker slot; see protocol::OccupancyMask).
  /// Maintained only when Engine::mask_active.
  protocol::OccupancyMask<> occupancy;

  bool busy() const { return busy_state.busy(); }
};

/// One worker thread, affiliated with one (virtual) core.
struct Worker {
  /// Upper bound on one steal_batch transfer. Half of a long deque still
  /// caps here: past ~16 tasks the thief's claim window (and the surplus
  /// re-push loop) costs more than a second steal would.
  static constexpr std::size_t kStealBatchMax = 16;

  int id = 0;
  int core = 0;
  Squad* squad = nullptr;
  /// Squad-local slot (id - squad->first_worker): this worker's bit in the
  /// squad's occupancy mask.
  int squad_slot = 0;
  bool is_head = false;
  Engine* engine = nullptr;

  /// Intra-socket task pool (per-worker deque of Fig. 3); also the plain
  /// work-stealing deque under kRandomStealing.
  deque::ChaseLevDeque<TaskFrame*> intra;

  /// NUMA-local recycling pool for the frames this worker spawns (unused
  /// when Engine::frame_pool is off). Owner-thread operations only, except
  /// push_remote — see frame_pool.hpp.
  FramePool pool;

  util::Xorshift64 rng;
  WorkerStats stats;

  /// Per-worker execution log (only filled when Engine::record_events).
  std::vector<ExecRecord> exec_log;

  /// Timestamped timeline of spans/events (only filled when
  /// Options::trace). Single-writer: appended to by this worker's thread
  /// only, read by Runtime::trace() after run() has returned.
  obs::TimelineBuffer tl;

  /// This worker's hardware counter group (opened on the worker's own
  /// thread when Options::hw_counters and perf is available; otherwise
  /// stays closed and every call is a no-op).
  obs::metrics::PerfGroup perf;
  /// Depth of open inter-tier counter measurements on this worker: only
  /// the outermost inter-socket task body is sampled, so nested inter
  /// tasks (run while helping inside a sync) are counted once, as part
  /// of the enclosing span.
  int hw_inter_depth = 0;

  /// Innermost task this worker is currently executing (nullptr if idle).
  TaskFrame* current = nullptr;

  std::thread thread;

  /// Runs `t` to completion: body, implicit sync (helping while waiting),
  /// then joins the parent and releases the squad busy-state if needed.
  void execute(TaskFrame* t);

  /// One attempt to find and run a task while blocked in a sync.
  /// Returns true if a task was executed. `desperate` is set by spin
  /// loops whose failed streak crossed kStarvationEscapeFails.
  bool help_once(bool desperate = false);

  /// Releases the squad busy-state when a non-leaf inter-socket task
  /// suspends at its sync (leaf inter-socket tasks hold it to completion).
  void release_busy_on_suspend(TaskFrame* t);

  /// One attempt to acquire a task as a *free* worker (Algorithm I).
  /// Returns nullptr when nothing was found (caller backs off).
  TaskFrame* acquire(bool desperate = false);

  /// Returns a completed (or aborted, pre-publication) frame to its home
  /// pool: freelist push when this worker owns it, MPSC remote-free push
  /// when another worker does, plain delete for `--frame-pool=off` heap
  /// frames (home == nullptr).
  void recycle(TaskFrame* t);

  /// Sets this worker's occupancy bit (push made the deque plausibly
  /// nonempty); counts the transition. No-op unless Engine::mask_active.
  void mark_occupied();

 private:
  TaskFrame* acquire_cab(bool desperate);
  TaskFrame* acquire_random();
  TaskFrame* acquire_sharing();
  TaskFrame* steal_intra_in_squad();
  /// One steal attempt against `victim`'s intra deque: a steal-half batch
  /// under kWeightedHalf (surplus re-pushed onto this worker's deque),
  /// a single steal_top otherwise. `taken` reports the batch size (0 on
  /// miss); a miss hearsay-clears the victim's occupancy bit.
  TaskFrame* steal_intra_from(int victim, std::size_t& taken);
  TaskFrame* steal_intra_global();
  TaskFrame* steal_inter_from_other_squads();
  TaskFrame* take_inter_from_own_squad();

  void finish(TaskFrame* t);
};

/// Shared scheduler state: all workers, all squads, the policy, and the
/// run lifecycle. Owned by Runtime via unique_ptr (stable address —
/// workers keep raw pointers).
struct Engine {
  explicit Engine(const hw::Topology& t)
      : topo(t), registry(t.sockets() * t.cores_per_socket()) {}

  hw::Topology topo;
  SchedulerKind kind = SchedulerKind::kCab;
  /// Intra-squad victim selection / transfer policy (Options::steal).
  StealPolicy steal = StealPolicy::kWeightedHalf;
  /// Occupancy-mask maintenance is live: kCab with a non-uniform steal
  /// policy. Precomputed so the spawn path pays one bool test before the
  /// (usually no-op) mask update.
  bool mask_active = false;
  dag::TierAssignment tier;  ///< tier.bl == 0 => classic behaviour
  bool pin_threads = false;
  bool record_events = false;
  bool trace = false;
  bool metrics = true;
  bool hw_counters = false;
  /// Frame recycling on (default). Off = the `--frame-pool=off` ablation:
  /// every spawn heap-allocates its frame and boxes its callable, i.e.
  /// the seed allocation strategy, kept measurable for the spawn-overhead
  /// benches.
  bool frame_pool = true;
  std::size_t trace_capacity = 0;
  std::uint64_t trace_epoch_ns = 0;
  /// Ring-buffer drop policy for the timelines (Options::trace_ring).
  bool trace_ring = false;

  /// Metrics registry: one writer slot per worker. Scheduler counters
  /// are flushed into it from WorkerStats at snapshot time (zero hot-path
  /// cost); the HW counter gauges below are stored by the workers
  /// themselves at epoch boundaries and around inter-tier task bodies.
  obs::metrics::Registry registry;
  /// Pre-registered per-tier HW counters, indexed by HwCounter; null when
  /// Options::metrics is off. "total" is cumulative over every enabled
  /// epoch; "inter" accumulates deltas measured around outermost
  /// inter-socket task bodies (intra = total - inter, derived at flush).
  std::array<obs::metrics::Counter*, obs::metrics::kHwCounterCount>
      hw_total{};
  std::array<obs::metrics::Counter*, obs::metrics::kHwCounterCount>
      hw_inter{};
  /// Pre-registered steal.batch_size histogram (per-thief batch sizes);
  /// null when Options::metrics is off.
  obs::metrics::Histogram* steal_batch_hist = nullptr;

  std::vector<std::unique_ptr<Worker>> workers;
  std::vector<std::unique_ptr<Squad>> squads;

  /// Central pool for kTaskSharing, and the injection queue every policy
  /// uses for the root task (the main thread may not touch worker deques).
  deque::LockedDeque<TaskFrame*> central_pool;

  /// The running epoch's DAG has fully drained. A flag, not a task
  /// counter: a frame's finish() runs only after its own implicit sync,
  /// and the parent's `completed` increment is finish()'s last join
  /// step — so by induction the *root* frame finishing implies every
  /// descendant already has. Counting tasks here would cost a shared
  /// fetch_add/fetch_sub pair per spawn (two locked RMWs on one hot
  /// line, ~20% of the pooled spawn budget); the flag is written twice
  /// per epoch instead.
  alignas(util::kCacheLineSize) std::atomic<bool> root_done{true};

  /// Live task frames and their high-water mark — the measured quantity
  /// behind the paper's Eq. 15 space bound (frames, not bytes). Gated on
  /// `frame_accounting` (= Options::metrics): the create/destroy pair is
  /// two shared-cache-line RMWs per task, which is pure observability
  /// cost the metrics-off spawn path must not pay.
  bool frame_accounting = true;
  alignas(util::kCacheLineSize) std::atomic<std::int64_t> live_frames{0};
  alignas(util::kCacheLineSize) std::atomic<std::int64_t> peak_frames{0};

  void frame_created() {
    if (!frame_accounting) return;
    const std::int64_t cur =
        live_frames.fetch_add(1, std::memory_order_relaxed) + 1;
    std::int64_t p = peak_frames.load(std::memory_order_relaxed);
    while (cur > p && !peak_frames.compare_exchange_weak(
                          p, cur, std::memory_order_relaxed)) {
    }
  }
  void frame_destroyed() {
    if (!frame_accounting) return;
    live_frames.fetch_sub(1, std::memory_order_relaxed);
  }

  /// First exception thrown by any task body this run; rethrown by
  /// Runtime::run() after the DAG has drained. Later exceptions are
  /// dropped (the run still completes every queued task).
  std::mutex exception_mu;
  std::exception_ptr first_exception;

  void capture_exception(std::exception_ptr e) {
    std::lock_guard<std::mutex> lk(exception_mu);
    if (!first_exception) first_exception = std::move(e);
  }

  /// Run lifecycle: workers park until `active`, exit on `shutdown`.
  std::mutex lifecycle_mu;
  std::condition_variable lifecycle_cv;
  std::condition_variable done_cv;
  bool active = false;
  bool shutdown = false;
  std::uint64_t epoch = 0;
  /// Steady-clock stamp taken by run() just before it publishes the epoch
  /// (guarded by lifecycle_mu). Workers open their lead-in idle span here,
  /// so time parked in the lifecycle wait is attributed as idle rather
  /// than silently vanishing into the untracked bucket.
  std::uint64_t epoch_start_ns = 0;

  /// Workers currently inside the drain loop of the running epoch
  /// (guarded by lifecycle_mu). run() returns only once this is back to
  /// zero: a worker's very last acquire attempt can write stats/timeline
  /// entries *after* `root_done` was set, so waiting on root_done alone
  /// would let the main thread read those buffers mid-write. The mutex
  /// hand-off at the final decrement is the happens-before edge that
  /// makes post-run stats()/trace() reads safe.
  int working = 0;
  /// Workers that have woken into the running epoch (guarded by
  /// lifecycle_mu). run() waits for every worker to join before it
  /// returns: a short epoch can otherwise finish while a slow-waking
  /// worker is still parked, and that straggler would later append its
  /// lead-in idle event to a timeline the main thread is reading.
  int joined = 0;

  void worker_main(Worker& w);
  void notify_if_done();

  /// True when CAB must degrade to classic random stealing (BL == 0,
  /// Algorithm II step 2 / Section V-D).
  bool cab_degenerate() const {
    return kind == SchedulerKind::kCab && tier.bl == 0;
  }
};

}  // namespace cab::runtime
