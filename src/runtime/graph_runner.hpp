#pragma once

#include <cstdint>

#include "dag/task_graph.hpp"
#include "runtime/runtime.hpp"

namespace cab::runtime {

/// Executes an explicit dag::TaskGraph on the threaded runtime: every
/// node becomes a real task burning ~`work x work_scale` arithmetic
/// operations (pre before spawning children, post after their sync);
/// `sequential` nodes run their children as consecutive phases, exactly
/// like the simulator's model. This is the bridge between the two
/// engines: a workload bundle captured for the simulator replays on real
/// threads (cab_explore --real), and protocol invariants can be audited
/// on both sides of the same DAG.
///
/// Returns the number of nodes executed (== g.size() on success).
std::size_t run_graph(Runtime& rt, const dag::TaskGraph& g,
                      double work_scale = 1.0);

}  // namespace cab::runtime
