#pragma once

#include <atomic>
#include <cstdint>

#include "runtime/task_body.hpp"

namespace cab::runtime {

struct Squad;
class FramePool;

/// Task frame, the library analogue of the Cilk frame the paper extends
/// in Section IV-B. The paper adds `level`, `parent` and `inter_counter`
/// to every frame; we carry the same information (the `spawned`/
/// `completed` join pair covers both task kinds — see DESIGN.md).
///
/// Lifecycle: acquired from the spawning worker's FramePool (or heap-
/// allocated under the `--frame-pool=off` ablation), executed exactly once
/// by some worker, joined into the parent at completion, then *recycled*
/// to its home pool by the executing worker — locally when the completer
/// owns the pool, through the MPSC remote-free channel otherwise
/// (frame_pool.hpp). A frame always outlives its children because every
/// task runs an implicit sync before completing (Cilk semantics), which
/// also makes by-reference captures of the parent's locals safe in child
/// closures.
struct TaskFrame {
  /// The task's callable, constructed in place by Runtime::spawn (no
  /// type-erasure heap allocation for captures within
  /// TaskBody::kInlineSize) and reset by the executing worker right after
  /// the body returns.
  TaskBody body;

  /// Join target; nullptr only for the root frame.
  TaskFrame* parent = nullptr;

  /// Spawn half of the join counter: children spawned out of this frame's
  /// body. Owner-only — spawn() always runs on the worker currently
  /// executing this frame, and a frame is executed by exactly one worker
  /// at a time — so a plain increment replaces what a single fused
  /// counter would make a locked RMW on every spawn.
  std::int32_t spawned = 0;

  /// Completion half: incremented once by each child's finish(), possibly
  /// from another worker, so this half stays atomic. The join is done
  /// when completed == spawned — evaluated only by the owner (joined()),
  /// which is the one thread allowed to read `spawned`.
  // pad-ok: per-frame field — padding every frame to a cache line would
  // multiply the Eq. 15 space bound; contention is bounded by the frame's
  // own children.
  std::atomic<std::int32_t> completed{0};

  /// Owner-local completion half: bumped by lazy children, which always
  /// execute on the worker that owns this frame's deque (a lazy frame is
  /// only ever executed in place via the owner's pop — a thief promotes it
  /// to a pooled frame first, and the promoted copy joins through the
  /// atomic `completed` instead). Plain, not atomic: writer and the
  /// joined() reader are the same thread. This is where the lazy path's
  /// join saving comes from — the common-case child finish is a plain
  /// increment, not an acq_rel RMW.
  std::int32_t completed_local = 0;

  /// True when every spawned child has joined. Owner-only. The acquire
  /// pairs with the release half of each promoted/eager child's completed
  /// increment, publishing the children's writes to the resuming parent;
  /// lazy in-place children join through `completed_local` on this same
  /// thread.
  bool joined() const noexcept {
    return completed_local + completed.load(std::memory_order_acquire) ==
           spawned;
  }

  /// DAG level, paper numbering (root/"main" = 0).
  std::int32_t level = 0;

  /// True when this task belongs to the inter-socket tier (level <= BL,
  /// or forced via Runtime::spawn_inter — the paper's inter_spawn).
  bool inter = false;

  /// Set by the first spawn() out of this task's body; only ever touched
  /// by the worker executing the task, so it needs no synchronization.
  /// Feeds WorkerStats::spawning_tasks (the adaptive profiler's divisor).
  bool has_children = false;

  /// Set when this task spawned at least one intra-socket child. An
  /// inter-socket task with intra children is a *leaf* inter-socket task:
  /// its subtree is the squad's cache-residency unit, so it holds the
  /// squad busy_state through its sync instead of releasing at suspend.
  bool has_intra_children = false;

  /// Set when the task was acquired from an inter-socket pool; the squad
  /// whose busy-state (active_inter) must be released at completion.
  Squad* inter_acquired_by = nullptr;

  /// True when this frame lives in a LazyStack slot of the spawning
  /// worker (DESIGN.md §5h) rather than in a pool slab or on the heap.
  /// Dereferenced only after the deque hands the frame over, so the
  /// deque's own synchronization covers it: the owner executes such a
  /// frame in place (Worker::execute_lazy), a thief promotes it into a
  /// pooled frame first (Worker::promote_lazy). Lazy frames never reach
  /// finish()/recycle().
  bool lazy = false;

  /// Pool that owns this frame's storage (set once at slab construction,
  /// never changed); nullptr for `--frame-pool=off` heap frames, which
  /// are deleted instead of recycled.
  FramePool* home = nullptr;

  /// Intrusive freelist / remote-free-stack link. Only meaningful while
  /// the frame is *not* live; the pool threads frames through it.
  TaskFrame* pool_next = nullptr;

  TaskFrame() = default;

  /// Re-arms the scheduling fields for a fresh spawn. The body is emplaced
  /// separately (it is the only field whose construction can throw);
  /// `spawned == completed` on any correctly recycled frame (checked by
  /// FramePool::acquire), so both halves restart at zero;
  /// `home`/`pool_next` are pool-owned.
  void prepare(TaskFrame* p, std::int32_t lvl, bool is_inter) noexcept {
    parent = p;
    level = lvl;
    inter = is_inter;
    spawned = 0;
    completed.store(0, std::memory_order_relaxed);
    completed_local = 0;
    has_children = false;
    has_intra_children = false;
    inter_acquired_by = nullptr;
    lazy = false;
  }
};

}  // namespace cab::runtime
