#pragma once

#include <atomic>
#include <cstdint>
#include <functional>

namespace cab::runtime {

struct Squad;

/// Heap-allocated task frame, the library analogue of the Cilk frame the
/// paper extends in Section IV-B. The paper adds `level`, `parent` and
/// `inter_counter` to every frame; we carry the same information
/// (`outstanding` joins both task kinds — see DESIGN.md).
///
/// Lifecycle: created by spawn(), executed exactly once by some worker,
/// joined into the parent at completion, then deleted by the executing
/// worker. A frame always outlives its children because every task runs an
/// implicit sync before completing (Cilk semantics), which also makes
/// by-reference captures of the parent's locals safe in child closures.
struct TaskFrame {
  std::function<void()> body;

  /// Join target; nullptr only for the root frame.
  TaskFrame* parent = nullptr;

  /// Children spawned but not yet completed. The paper's inter_counter
  /// plus the intra join count, folded into one atomic.
  // pad-ok: per-frame field — padding every frame to a cache line would
  // multiply the Eq. 15 space bound; contention is bounded by the frame's
  // own children.
  std::atomic<std::int32_t> outstanding{0};

  /// DAG level, paper numbering (root/"main" = 0).
  std::int32_t level = 0;

  /// True when this task belongs to the inter-socket tier (level <= BL,
  /// or forced via Runtime::spawn_inter — the paper's inter_spawn).
  bool inter = false;

  /// Set by the first spawn() out of this task's body; only ever touched
  /// by the worker executing the task, so it needs no synchronization.
  /// Feeds WorkerStats::spawning_tasks (the adaptive profiler's divisor).
  bool has_children = false;

  /// Set when this task spawned at least one intra-socket child. An
  /// inter-socket task with intra children is a *leaf* inter-socket task:
  /// its subtree is the squad's cache-residency unit, so it holds the
  /// squad busy_state through its sync instead of releasing at suspend.
  bool has_intra_children = false;

  /// Set when the task was acquired from an inter-socket pool; the squad
  /// whose busy-state (active_inter) must be released at completion.
  Squad* inter_acquired_by = nullptr;

  TaskFrame(std::function<void()> b, TaskFrame* p, std::int32_t lvl,
            bool is_inter)
      : body(std::move(b)), parent(p), level(lvl), inter(is_inter) {}
};

}  // namespace cab::runtime
