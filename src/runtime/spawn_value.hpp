#pragma once

#include <optional>
#include <type_traits>
#include <utility>

#include "runtime/runtime.hpp"
#include "util/assert.hpp"

namespace cab::runtime {

/// Typed result slot for a spawned computation — the ergonomic layer over
/// the raw spawn/sync API for the common "spawn two halves, combine"
/// pattern:
///
/// \code
///   auto left  = SpawnValue<long>([&] { return fib(n - 1); });
///   auto right = SpawnValue<long>([&] { return fib(n - 2); });
///   Runtime::sync();
///   return left.get() + right.get();
/// \endcode
///
/// The slot must stay at its construction address until the enclosing
/// task syncs (the spawned child writes through `this`), so SpawnValue is
/// pinned: neither movable nor copyable. The enclosing task's sync —
/// explicit or the implicit one before task completion — is the release
/// point; calling get() earlier aborts.
template <typename T>
class SpawnValue {
 public:
  template <typename F,
            typename = std::enable_if_t<
                std::is_convertible_v<std::invoke_result_t<F&>, T>>>
  explicit SpawnValue(F&& fn) {
    Runtime::spawn([this, fn = std::forward<F>(fn)]() mutable {
      value_.emplace(fn());
    });
  }

  SpawnValue(const SpawnValue&) = delete;
  SpawnValue& operator=(const SpawnValue&) = delete;
  SpawnValue(SpawnValue&&) = delete;
  SpawnValue& operator=(SpawnValue&&) = delete;

  /// The computed value. Only valid after the enclosing task has synced.
  T& get() {
    CAB_CHECK(value_.has_value(), "SpawnValue::get() before sync()");
    return *value_;
  }
  const T& get() const {
    CAB_CHECK(value_.has_value(), "SpawnValue::get() before sync()");
    return *value_;
  }

  /// True once the child has produced the value (after sync it always is).
  bool ready() const { return value_.has_value(); }

 private:
  std::optional<T> value_;
};

/// Deduction-friendly maker: `auto h = spawn_value([&] { return f(x); });`
template <typename F>
auto spawn_value(F&& fn) {
  return SpawnValue<std::invoke_result_t<F&>>(std::forward<F>(fn));
}

}  // namespace cab::runtime
