#include "runtime/runtime.hpp"

#include "util/assert.hpp"

namespace cab::runtime {

std::int32_t auto_boundary_level(const hw::Topology& topo,
                                 std::uint64_t input_bytes,
                                 std::int32_t branching) {
  dag::PartitionParams p;
  p.branching = branching;
  p.sockets = topo.sockets();
  p.input_bytes = input_bytes;
  p.shared_cache_bytes = topo.shared_cache_bytes();
  return dag::boundary_level(p);
}

Runtime::Runtime(Options opts) : opts_(opts), engine_(new Engine(opts.topo)) {
  Engine& e = *engine_;
  e.kind = opts.kind;
  e.steal = opts.steal;
  e.mask_active = opts.kind == SchedulerKind::kCab &&
                  opts.steal != StealPolicy::kUniform;
  e.pin_threads = opts.pin_threads;
  e.record_events = opts.record_events;
  e.trace = opts.trace;
  e.metrics = opts.metrics;
  e.hw_counters = opts.metrics && opts.hw_counters;
  e.frame_pool = opts.frame_pool;
  // Lazy spawning needs the pools (promotion materializes into the
  // thief's pool, so the frame-pool-off ablation keeps the seed path)
  // and a stealing scheduler: task sharing hands frames to a shared
  // pool where the owner-pop/promotion split has no meaning. Folding
  // the kind in here keeps try_begin_lazy to a single flag test.
  e.lazy = opts.lazy_spawn && opts.frame_pool &&
           opts.kind != SchedulerKind::kTaskSharing;
  e.frame_accounting = opts.metrics;
  e.trace_capacity = opts.trace_capacity;
  e.trace_epoch_ns = obs::now_ns();
  e.trace_ring = opts.trace_ring;
  CAB_CHECK(opts.boundary_level >= 0, "boundary level must be >= 0");

  std::int32_t full_bl = opts.boundary_level;
  if (opts_.adapt.mode != adapt::Mode::kStatic) {
    adapt_ = std::make_unique<adapt::Controller>(opts_.adapt, opts_.topo);
    if (opts_.adapt.mode == adapt::Mode::kFixed &&
        e.kind == SchedulerKind::kCab) {
      full_bl = opts_.adapt.fixed_bl >= 0 ? opts_.adapt.fixed_bl : 0;
    }
  }

  const int m = e.topo.sockets();
  const int n = e.topo.cores_per_socket();

  if (e.metrics) {
    std::vector<std::int32_t> squads_of;
    squads_of.reserve(static_cast<std::size_t>(m * n));
    for (int w = 0; w < m * n; ++w) {
      squads_of.push_back(static_cast<std::int32_t>(e.topo.socket_of(w)));
    }
    e.registry.set_writer_squads(std::move(squads_of));
    // HW counter slots are pre-registered (and worker threads only store
    // into their own slots), so no registration ever races a worker.
    for (int i = 0; i < obs::metrics::kHwCounterCount; ++i) {
      const auto c = static_cast<obs::metrics::HwCounter>(i);
      const std::string name = std::string("hw.") + obs::metrics::to_string(c);
      e.hw_total[static_cast<std::size_t>(i)] =
          &e.registry.counter(name, {{"tier", "total"}});
      e.hw_inter[static_cast<std::size_t>(i)] =
          &e.registry.counter(name, {{"tier", "inter"}});
      e.registry.counter(name, {{"tier", "intra"}});  // derived at flush
    }
    // Batch-size histogram pre-registered like the hw counters: workers
    // observe() into their own writer rows, so no registration races.
    // Bounds cover 1..kStealBatchMax in octaves (larger batches overflow).
    e.steal_batch_hist =
        &e.registry.histogram("steal.batch_size", {1, 2, 4, 8, 16});
    if (!e.hw_counters) {
      e.registry.set_hw_status(false,
                               "hardware counters not requested "
                               "(Options::hw_counters)");
    } else if (!obs::metrics::perf_available()) {
      e.registry.set_hw_status(false, obs::metrics::perf_unavailable_reason());
    } else {
      e.registry.set_hw_status(true, "");
    }
  }

  e.squads.reserve(static_cast<std::size_t>(m));
  for (int s = 0; s < m; ++s) {
    auto sq = std::make_unique<Squad>();
    sq->id = s;
    sq->first_worker = s * n;
    sq->head_worker = s * n;  // smallest id in the squad (Section IV-C)
    sq->worker_count = n;
    e.squads.push_back(std::move(sq));
  }

  std::uint64_t seed_state = opts.seed;
  e.workers.reserve(static_cast<std::size_t>(m * n));
  for (int w = 0; w < m * n; ++w) {
    auto worker = std::make_unique<Worker>();
    worker->id = w;
    worker->core = w;  // worker id == core id (Section IV-C)
    worker->squad = e.squads[static_cast<std::size_t>(e.topo.socket_of(w))].get();
    worker->squad_slot = w - worker->squad->first_worker;
    worker->is_head = (w == worker->squad->head_worker);
    worker->engine = &e;
    worker->rng = util::Xorshift64(util::splitmix64(seed_state));
    worker->tl.configure(e.trace, e.trace_capacity, e.trace_epoch_ns,
                         e.trace_ring);
    e.workers.push_back(std::move(worker));
  }
  // The permanent full-machine context run() executes on: every squad,
  // every worker, BL as configured above. run_on() partitions build their
  // own transient contexts against subsets of the same squads.
  e.full_ctx = std::make_unique<EpochContext>();
  e.full_ctx->tier.bl = full_bl;
  e.full_ctx->squads.reserve(e.squads.size());
  for (auto& sq : e.squads) e.full_ctx->squads.push_back(sq.get());
  e.full_ctx->workers.reserve(e.workers.size());
  for (auto& w : e.workers) e.full_ctx->workers.push_back(w.get());
  // Threads start only after the workers vector is fully built: workers
  // address each other through engine->workers during stealing.
  for (auto& worker : e.workers) {
    Worker* raw = worker.get();
    raw->thread = std::thread([&e, raw] { e.worker_main(*raw); });
  }
}

Runtime::~Runtime() {
  Engine& e = *engine_;
  {
    std::lock_guard<std::mutex> lk(e.lifecycle_mu);
    e.shutdown = true;
  }
  e.lifecycle_cv.notify_all();
  for (auto& w : e.workers) {
    if (w->thread.joinable()) w->thread.join();
  }
}

std::uint64_t Runtime::run_ctx(EpochContext& ctx, std::function<void()> root) {
  Engine& e = *engine_;
  CAB_CHECK(tls_worker == nullptr, "run() must not be called from a task");
  const bool root_inter =
      e.kind == SchedulerKind::kCab && !ctx.cab_degenerate(e.kind);
  {
    std::lock_guard<std::mutex> lk(ctx.exception_mu);
    ctx.first_exception = nullptr;
  }
  // Reserve the partition first: binding every squad (all CHECKed unbound)
  // under lifecycle_mu makes this thread the exclusive owner of the
  // partition's parked workers — including the first worker's frame pool
  // used for the root frame below. Binding alone wakes nobody: workers
  // wake on the ctx_epoch stamp, published after the root is in place.
  // Overlapping partitions fail loudly here instead of racing.
  {
    std::lock_guard<std::mutex> lk(e.lifecycle_mu);
    for (Squad* s : ctx.squads) {
      CAB_CHECK(s->ctx == nullptr, "squad already bound to a running epoch");
      s->ctx = &ctx;
    }
    e.active_epochs.fetch_add(1, std::memory_order_relaxed);
  }
  // The root frame comes from the partition's first worker's pool: that
  // worker is parked until the stamp below, so this thread temporarily
  // owns its pool, and the lifecycle_mu hand-off publishes these writes
  // to whichever worker picks the frame up. A std::function is 32 bytes —
  // inside TaskBody's inline budget — so even the type-erased root body
  // allocates nothing.
  Worker& w0 = *ctx.workers.front();
  TaskFrame* frame;
  if (e.frame_pool) {
    frame = w0.pool.acquire(w0.stats);
    frame->prepare(nullptr, 0, root_inter);
    frame->body.emplace(std::move(root));
  } else {
    // alloc-ok: --frame-pool=off ablation — plain heap frames throughout.
    frame = new TaskFrame();
    frame->prepare(nullptr, 0, root_inter);
    frame->body.emplace_boxed(std::move(root));
  }
  e.frame_created();
  // Plain store: the ctx_epoch stamp below publishes it (workers read the
  // stamp under lifecycle_mu before their first root_done load).
  ctx.root_done.store(false, std::memory_order_relaxed);
  ctx.inject.push_bottom(frame);
  std::uint64_t this_epoch = 0;
  {
    std::lock_guard<std::mutex> lk(e.lifecycle_mu);
    this_epoch = ++e.epoch;
    ctx.start_ns = obs::now_ns();
    ctx.joined = 0;
    for (Squad* s : ctx.squads) s->ctx_epoch = this_epoch;
  }
  e.lifecycle_cv.notify_all();

  {
    // All three conditions: the DAG is drained, every partition worker
    // woke into this epoch, and every one of them has left its drain loop
    // (see EpochContext::working / joined) — only then are the partition's
    // per-worker stats/exec-log/timeline buffers quiescent.
    std::unique_lock<std::mutex> lk(e.lifecycle_mu);
    e.done_cv.wait(lk, [&] {
      return ctx.root_done.load(std::memory_order_acquire) &&
             ctx.joined == static_cast<int>(ctx.workers.size()) &&
             ctx.working == 0;
    });
    // Release the partition while still holding the lock of the wait: the
    // squads are immediately reusable by the next epoch (theirs or another
    // job's).
    for (Squad* s : ctx.squads) s->ctx = nullptr;
    e.active_epochs.fetch_sub(1, std::memory_order_relaxed);
  }
  return this_epoch;
}

void Runtime::run(std::function<void()> root) {
  Engine& e = *engine_;
  EpochContext& ctx = *e.full_ctx;
  const std::int32_t epoch_bl = ctx.tier.bl;
  const std::uint64_t wall0 = adapt_ ? obs::now_ns() : 0;
  const std::uint64_t this_epoch = run_ctx(ctx, std::move(root));
  if (adapt_) {
    // Workers are parked (working == 0): their stats and hw.* slots are
    // quiescent, and a tier.bl store here is published to every worker by
    // the lifecycle_mu hand-off of the next epoch increment. BL therefore
    // only ever changes *between* epochs. (run() holds every squad, so no
    // concurrent run_on() partition can be mutating stats under us; the
    // adaptive controller is rejected for run_on() callers below.)
    retune_after_epoch(this_epoch, epoch_bl, obs::now_ns() - wall0);
  }
  std::exception_ptr thrown;
  {
    std::lock_guard<std::mutex> lk(ctx.exception_mu);
    thrown = ctx.first_exception;
  }
  if (thrown) std::rethrow_exception(thrown);
}

void Runtime::run_on(const std::vector<int>& squad_ids,
                     std::int32_t boundary_level, std::function<void()> root) {
  Engine& e = *engine_;
  CAB_CHECK(!squad_ids.empty(), "run_on(): empty squad set");
  CAB_CHECK(boundary_level >= 0, "run_on(): boundary level must be >= 0");
  // The adaptive controller profiles whole-machine epochs (it reads every
  // worker's stats after run()); mixing it with concurrent partitions
  // would race those reads. Service-style callers size BL statically
  // (Eq. 4 with M = partition squads) instead.
  CAB_CHECK(adapt_ == nullptr,
            "run_on() requires Options::adapt.mode == kStatic");
  EpochContext ctx;
  ctx.squads.reserve(squad_ids.size());
  for (int s : squad_ids) {
    CAB_CHECK(s >= 0 && s < static_cast<int>(e.squads.size()),
              "run_on(): squad id out of range");
    Squad* sq = e.squads[static_cast<std::size_t>(s)].get();
    for (const Squad* seen : ctx.squads) {
      CAB_CHECK(seen != sq, "run_on(): duplicate squad id");
    }
    ctx.squads.push_back(sq);
  }
  for (Squad* sq : ctx.squads) {
    for (int w = sq->first_worker; w < sq->first_worker + sq->worker_count;
         ++w) {
      ctx.workers.push_back(e.workers[static_cast<std::size_t>(w)].get());
    }
  }
  // Single-squad partitions have no inter-socket tier by construction:
  // Algorithm II's degenerate case (BL = 0 => classic work-stealing
  // inside the partition).
  ctx.tier.bl =
      ctx.squads.size() <= 1 ? 0 : boundary_level;
  run_ctx(ctx, std::move(root));
  std::exception_ptr thrown;
  {
    std::lock_guard<std::mutex> lk(ctx.exception_mu);
    thrown = ctx.first_exception;
  }
  if (thrown) std::rethrow_exception(thrown);
}

namespace spawn_detail {

Pending begin_spawn(bool force_inter) {
  Worker* w = tls_worker;
  CAB_CHECK(w != nullptr && w->current != nullptr,
            "spawn() called outside a task");
  Engine& e = *w->engine;
  TaskFrame* parent = w->current;
  // Tier classification against the worker's *partition* tier: BL is
  // relative to the epoch context, so the same DAG level can be inter
  // under one job's partition and intra under another's.
  const EpochContext& ctx = *w->ctx;
  const bool inter =
      e.kind == SchedulerKind::kCab && !ctx.cab_degenerate(e.kind) &&
      (force_inter || ctx.tier.spawns_inter_child(parent->level));
  TaskFrame* t;
  if (e.frame_pool) {
    t = w->pool.acquire(w->stats);
  } else {
    // alloc-ok: --frame-pool=off ablation — the seed allocation strategy
    // (one heap frame per spawn), kept as the bench baseline.
    t = new TaskFrame();
  }
  t->prepare(parent, parent->level + 1, inter);
  return Pending{w, t, /*boxed=*/!e.frame_pool};
}

void commit_spawn(const Pending& p) {
  Worker* w = p.worker;
  TaskFrame* t = p.frame;
  TaskFrame* parent = t->parent;
  Engine& e = *w->engine;
  e.frame_created();
  if (!parent->has_children) {
    parent->has_children = true;
    ++w->stats.spawning_tasks;
  }
  // Owner-only plain increment: spawn() runs on the worker executing
  // `parent`, so the spawn half of the join counter needs no atomicity
  // (the completion half does — see TaskFrame::completed).
  ++parent->spawned;
  if (t->inter) {
    // Algorithm II(a): inter-socket child goes to the spawner's squad pool
    // (parent-first: the spawner continues with the parent).
    ++w->stats.spawns_inter;
    w->squad->inter_pool.push_bottom(t);
  } else if (e.kind == SchedulerKind::kTaskSharing) {
    ++w->stats.spawns_intra;
    w->ctx->inject.push_bottom(t);
  } else {
    // Intra-socket child onto the worker's own deque; LIFO pops make the
    // local execution order depth-first (the child-first policy's order).
    parent->has_intra_children = true;
    ++w->stats.spawns_intra;
    w->intra.push_bottom(t);
    // Advertise the (plausibly) nonempty deque to weighted thieves —
    // usually a no-op load once the bit is set.
    w->mark_occupied();
  }
  if (w->tl.enabled) {
    w->tl.mark(t->inter ? obs::EventKind::kSpawnInter
                        : obs::EventKind::kSpawnIntra,
               t->level, 0);
  }
}

void abort_spawn(const Pending& p) noexcept {
  // Emplacing the callable threw. The frame was never published (no
  // counter moved, nothing pushed), so returning it to its pool is the
  // whole rollback.
  p.worker->recycle(p.frame);
}

}  // namespace spawn_detail

void Runtime::sync() {
  Worker* w = tls_worker;
  CAB_CHECK(w != nullptr && w->current != nullptr,
            "sync() called outside a task");
  TaskFrame* t = w->current;
  w->release_busy_on_suspend(t);
  if (t->joined()) return;
  const bool tr = w->tl.enabled;
  const std::uint64_t wait_start = tr ? obs::now_ns() : 0;
  const std::uint64_t help0 = w->stats.help_iterations;
  const std::uint64_t exec0 = w->stats.tasks_executed;
  int fails = 0;
  while (!t->joined()) {
    ++w->stats.help_iterations;
    // Own-deque fast path, mirroring the implicit-sync loops in
    // worker.cpp: the children being waited on are usually right here.
    if (TaskFrame* c = w->pop_local()) {
      ++w->stats.intra_pop_hits;
      fails = 0;
      w->execute(c);
    } else if (w->help_once(fails >= kStarvationEscapeFails)) {
      fails = 0;
    } else {
      ++fails;
      std::this_thread::yield();
    }
  }
  if (tr) {
    w->tl.record(obs::EventKind::kSyncWait, wait_start, obs::now_ns(),
                 static_cast<std::int32_t>(w->stats.help_iterations - help0),
                 static_cast<std::int32_t>(w->stats.tasks_executed - exec0));
  }
}

int Runtime::current_worker() {
  return tls_worker != nullptr ? tls_worker->id : -1;
}

int Runtime::current_squad() {
  return tls_worker != nullptr ? tls_worker->squad->id : -1;
}

int Runtime::worker_count() const {
  return static_cast<int>(engine_->workers.size());
}

SchedulerStats Runtime::stats() const {
  CAB_CHECK(engine_->active_epochs.load(std::memory_order_acquire) == 0,
            "stats() while an epoch is running");
  SchedulerStats s;
  s.per_worker.reserve(engine_->workers.size());
  for (const auto& w : engine_->workers) {
    s.per_worker.push_back(w->stats);
    s.total += w->stats;
  }
  return s;
}

void Runtime::reset_stats() {
  for (auto& w : engine_->workers) {
    w->stats = WorkerStats{};
    w->exec_log.clear();
    w->tl.clear();
  }
  engine_->registry.reset();
  engine_->peak_frames.store(0, std::memory_order_relaxed);
  // The epoch-delta baselines mirror the cumulative WorkerStats and hw.*
  // slots just cleared; left stale they would underflow the next sample.
  adapt_base_ = AdaptBaseline{};
}

bool Runtime::hw_counters_active() const {
  return engine_->hw_counters && obs::metrics::perf_available();
}

obs::metrics::Registry& Runtime::registry() { return engine_->registry; }

std::int32_t Runtime::current_boundary_level() const {
  CAB_CHECK(engine_->active_epochs.load(std::memory_order_acquire) == 0,
            "current_boundary_level() while an epoch is running");
  return engine_->full_ctx->tier.bl;
}

adapt::Report Runtime::adapt_report() const {
  CAB_CHECK(engine_->active_epochs.load(std::memory_order_acquire) == 0,
            "adapt_report() while an epoch is running");
  if (adapt_) return adapt_->report();
  adapt::Report r;
  r.policy = adapt::to_string(opts_.adapt);
  r.sockets = opts_.topo.sockets();
  r.cores_per_socket = opts_.topo.cores_per_socket();
  return r;
}

void Runtime::retune_after_epoch(std::uint64_t epoch, std::int32_t epoch_bl,
                                 std::uint64_t wall_ns) {
  Engine& e = *engine_;
  WorkerStats tot;
  for (const auto& w : e.workers) tot += w->stats;

  const auto delta = [](std::uint64_t cur, std::uint64_t base) {
    return cur > base ? cur - base : 0;
  };
  adapt::EpochSample s;
  s.epoch = epoch;
  s.bl = epoch_bl;
  s.wall_ns = wall_ns;
  s.tasks = delta(tot.tasks_executed, adapt_base_.tasks);
  s.spawns =
      delta(tot.spawns_intra + tot.spawns_inter, adapt_base_.spawns);
  s.spawning_tasks = delta(tot.spawning_tasks, adapt_base_.spawning_tasks);
  s.max_level = tot.max_task_level;
  s.intra_steals = delta(tot.intra_steals, adapt_base_.intra_steals);
  s.inter_steals = delta(tot.inter_steals, adapt_base_.inter_steals);
  s.failed_steals =
      delta(tot.failed_steal_attempts, adapt_base_.failed_steals);
  s.working_set_hint = opts_.adapt.input_bytes_hint;
  s.signal_ok = e.metrics;
  adapt_base_.tasks = tot.tasks_executed;
  adapt_base_.spawns = tot.spawns_intra + tot.spawns_inter;
  adapt_base_.spawning_tasks = tot.spawning_tasks;
  adapt_base_.intra_steals = tot.intra_steals;
  adapt_base_.inter_steals = tot.inter_steals;
  adapt_base_.failed_steals = tot.failed_steal_attempts;

  if (hw_counters_active()) {
    const auto sum = [&](obs::metrics::Counter* c) {
      std::int64_t t = 0;
      for (const auto& w : e.workers) t += c->value(w->id);
      return t;
    };
    const auto d64 = [](std::int64_t cur, std::int64_t base) {
      return cur > base ? static_cast<std::uint64_t>(cur - base) : 0;
    };
    const auto idx = [](obs::metrics::HwCounter c) {
      return static_cast<std::size_t>(c);
    };
    const std::int64_t loads =
        sum(e.hw_total[idx(obs::metrics::HwCounter::kLlcLoads)]);
    const std::int64_t misses =
        sum(e.hw_total[idx(obs::metrics::HwCounter::kLlcLoadMisses)]);
    const std::int64_t loads_inter =
        sum(e.hw_inter[idx(obs::metrics::HwCounter::kLlcLoads)]);
    const std::int64_t misses_inter =
        sum(e.hw_inter[idx(obs::metrics::HwCounter::kLlcLoadMisses)]);
    s.hw_valid = true;
    s.llc_loads = d64(loads, adapt_base_.llc_loads);
    s.llc_misses = d64(misses, adapt_base_.llc_misses);
    s.llc_loads_inter = d64(loads_inter, adapt_base_.llc_loads_inter);
    s.llc_misses_inter = d64(misses_inter, adapt_base_.llc_misses_inter);
    adapt_base_.llc_loads = loads;
    adapt_base_.llc_misses = misses;
    adapt_base_.llc_loads_inter = loads_inter;
    adapt_base_.llc_misses_inter = misses_inter;
  }

  const std::int32_t next = adapt_->on_epoch_end(s);
  if (e.kind == SchedulerKind::kCab && next != e.full_ctx->tier.bl) {
    e.full_ctx->tier.bl = next;
  }
  if (e.metrics) {
    // Mirror the decision into the registry so Chrome traces pick it up
    // as counter tracks (metric:adapt.*). Writer slot 0: the decision is
    // one value per epoch, not a per-worker quantity.
    const adapt::Decision& d = adapt_->report().decisions.back();
    e.registry.gauge("adapt.bl").set(0, next);
    e.registry.gauge("adapt.static_bl").set(0, d.static_bl);
    e.registry.gauge("adapt.epoch").set(0, static_cast<std::int64_t>(epoch));
    e.registry.gauge("adapt.score_ns").set(
        0, static_cast<std::int64_t>(wall_ns));
  }
}

obs::metrics::Snapshot Runtime::metrics_snapshot() const {
  Engine& e = *engine_;
  // "Call between run()s only", enforced: the flush below stores into
  // per-worker registry slots that are only quiescent when no epoch is in
  // flight on ANY partition. With the job service this is no longer
  // implied by program order, so a racing call fails loudly here instead
  // of corrupting single-writer slots.
  CAB_CHECK(e.active_epochs.load(std::memory_order_acquire) == 0,
            "metrics_snapshot() while an epoch is running");
  if (!e.metrics) return e.registry.snapshot();  // empty, hw unavailable
  // Flush the cumulative WorkerStats into registry counters. Workers are
  // parked between run()s, so the main thread may store into their slots.
  const std::int64_t sleep_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(kIdleBackoffSleep)
          .count();
  struct Field {
    const char* name;
    std::uint64_t WorkerStats::*member;
  };
  static constexpr Field kFields[] = {
      {"scheduler.tasks_executed", &WorkerStats::tasks_executed},
      {"scheduler.spawns_intra", &WorkerStats::spawns_intra},
      {"scheduler.spawns_inter", &WorkerStats::spawns_inter},
      {"scheduler.intra_pop_hits", &WorkerStats::intra_pop_hits},
      {"scheduler.intra_steals", &WorkerStats::intra_steals},
      {"scheduler.inter_acquires", &WorkerStats::inter_acquires},
      {"scheduler.inter_steals", &WorkerStats::inter_steals},
      {"scheduler.failed_steal_attempts", &WorkerStats::failed_steal_attempts},
      {"scheduler.steal_batches", &WorkerStats::steal_batches},
      {"scheduler.steal_batch_tasks", &WorkerStats::steal_batch_tasks},
      {"scheduler.weighted_picks", &WorkerStats::weighted_picks},
      {"scheduler.mask_sets", &WorkerStats::mask_sets},
      {"scheduler.mask_clears_own", &WorkerStats::mask_clears_own},
      {"scheduler.mask_clears_hearsay", &WorkerStats::mask_clears_hearsay},
      {"scheduler.help_iterations", &WorkerStats::help_iterations},
      {"scheduler.idle_backoff_sleeps", &WorkerStats::idle_backoff_sleeps},
      {"scheduler.spawning_tasks", &WorkerStats::spawning_tasks},
      {"alloc.freelist_hits", &WorkerStats::alloc_freelist_hits},
      {"alloc.slab_refills", &WorkerStats::alloc_slab_refills},
      {"alloc.remote_frees", &WorkerStats::alloc_remote_frees},
      {"alloc.remote_drains", &WorkerStats::alloc_remote_drains},
      {"alloc.lazy_spawns", &WorkerStats::alloc_lazy_spawns},
      {"alloc.promotions", &WorkerStats::alloc_promotions},
  };
  for (const Field& f : kFields) {
    obs::metrics::Counter& c = e.registry.counter(f.name);
    for (const auto& w : e.workers) {
      c.store(w->id, static_cast<std::int64_t>(w->stats.*f.member));
    }
  }
  obs::metrics::Gauge& max_level =
      e.registry.gauge("scheduler.max_task_level");
  for (const auto& w : e.workers) {
    max_level.set(w->id, w->stats.max_task_level);
  }
  // Live-frame gauges in writer slot 0: one value per engine (the Eq. 15
  // measured quantity), not a per-worker one.
  e.registry.gauge("alloc.live_frames")
      .set(0, e.live_frames.load(std::memory_order_relaxed));
  e.registry.gauge("alloc.peak_live_frames")
      .set(0, e.peak_frames.load(std::memory_order_relaxed));
  obs::metrics::Counter& idle_ns =
      e.registry.counter("scheduler.idle_backoff_ns");
  for (const auto& w : e.workers) {
    idle_ns.store(w->id, static_cast<std::int64_t>(
                             w->stats.idle_backoff_sleeps) *
                             sleep_ns);
  }
  // Derived intra tier: what ran outside every inter-task body.
  for (int i = 0; i < obs::metrics::kHwCounterCount; ++i) {
    const auto c = static_cast<obs::metrics::HwCounter>(i);
    const std::string name = std::string("hw.") + obs::metrics::to_string(c);
    obs::metrics::Counter& intra =
        e.registry.counter(name, {{"tier", "intra"}});
    for (const auto& w : e.workers) {
      const std::int64_t total =
          e.hw_total[static_cast<std::size_t>(i)]->value(w->id);
      const std::int64_t inter =
          e.hw_inter[static_cast<std::size_t>(i)]->value(w->id);
      intra.store(w->id, total > inter ? total - inter : 0);
    }
  }
  return e.registry.snapshot();
}

obs::Trace Runtime::trace() const {
  CAB_CHECK(engine_->active_epochs.load(std::memory_order_acquire) == 0,
            "trace() while an epoch is running");
  obs::Trace t;
  t.sockets = engine_->topo.sockets();
  t.cores_per_socket = engine_->topo.cores_per_socket();
  t.scheduler = to_string(engine_->kind);
  t.workers.reserve(engine_->workers.size());
  for (const auto& w : engine_->workers) {
    obs::WorkerTimeline wt;
    wt.worker = w->id;
    wt.squad = w->squad->id;
    wt.is_head = w->is_head;
    wt.dropped = w->tl.dropped;
    wt.events = w->tl.snapshot();
    t.workers.push_back(std::move(wt));
  }
  return t;
}

obs::attrib::Attribution Runtime::attrib_report() const {
  return obs::attrib::attribute(trace());
}

void Runtime::mark_task_node(std::int32_t node) {
  Worker* w = tls_worker;
  if (w == nullptr || !w->tl.enabled) return;
  w->tl.mark(obs::EventKind::kTaskNode, node, 0);
}

std::int64_t Runtime::peak_live_frames() const {
  return engine_->peak_frames.load(std::memory_order_relaxed);
}

std::vector<ExecRecord> Runtime::execution_log() const {
  std::vector<ExecRecord> merged;
  for (const auto& w : engine_->workers)
    merged.insert(merged.end(), w->exec_log.begin(), w->exec_log.end());
  return merged;
}

}  // namespace cab::runtime
