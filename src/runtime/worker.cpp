#include <chrono>
#include <thread>

#include "hw/affinity.hpp"
#include "runtime/runtime.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/victim_select.hpp"
#include "util/assert.hpp"
#include "util/spin_lock.hpp"

namespace cab::runtime {

/// Worker executing on the calling thread (nullptr on non-worker threads).
thread_local Worker* tls_worker = nullptr;

namespace {

/// Progressive backoff for spin points. With virtual topologies the worker
/// count can exceed the physical cores many times over, so we yield early:
/// the task we are waiting for is likely on a descheduled thread. Sleeps
/// are counted so parked time is reconstructible as
/// idle_backoff_sleeps * kIdleBackoffSleep.
void backoff(int& fails, WorkerStats& stats) {
  ++fails;
  if (fails < kBackoffRelaxFails) {
    util::cpu_relax();
  } else if (fails < kBackoffYieldFails) {
    std::this_thread::yield();
  } else {
    ++stats.idle_backoff_sleeps;
    // blocking-ok: deep-idle backoff — only reached after kBackoffYieldFails
    // consecutive failed acquires, i.e. the worker has left the hot steal
    // path and is throttling its probe rate to spare the memory bus.
    std::this_thread::sleep_for(kIdleBackoffSleep);
  }
}

/// Clamped per-counter difference of two group reads; multiplex scaling
/// can make a later scaled value land a hair below an earlier one.
std::int64_t hw_delta(const obs::metrics::HwSample& after,
                      const obs::metrics::HwSample& before, int i) {
  const auto a = after.value[static_cast<std::size_t>(i)];
  const auto b = before.value[static_cast<std::size_t>(i)];
  return a > b ? static_cast<std::int64_t>(a - b) : 0;
}

}  // namespace

void Worker::execute(TaskFrame* t) {
  // Lazy frames arrive here only from this worker's own pop_bottom —
  // every steal path promotes before returning — and run the lean
  // in-place path.
  if (t->lazy) {
    execute_lazy(t);
    return;
  }
  TaskFrame* saved = current;
  current = t;
  ++stats.tasks_executed;
  if (t->level > stats.max_task_level) stats.max_task_level = t->level;
  if (engine->record_events) {
    exec_log.push_back(
        ExecRecord{id, squad->id, t->level, t->inter, is_head});
  }
  const bool tr = tl.enabled;
  const std::uint64_t exec_start = tr ? obs::now_ns() : 0;
  // Attribute HW counts of the outermost inter-socket task body to the
  // inter tier (two read() syscalls per such task — inter tasks are the
  // rare tier, Section III-E's "often less than 5%"). The span covers
  // the body only, including tasks run while helping inside an explicit
  // mid-body sync, but not the implicit sync below.
  const bool hw = t->inter && hw_inter_depth == 0 && perf.is_open();
  obs::metrics::HwSample hw0;
  if (hw) {
    ++hw_inter_depth;
    hw0 = perf.read();
  }
  try {
    t->body();
  } catch (...) {
    // Task bodies must not tear down the worker: capture the first
    // exception for the submitting thread to rethrow once this epoch's
    // DAG has drained (children already spawned by the failing body
    // still execute). Captured per epoch context, so one job's failure
    // never leaks into a concurrently running partition.
    ctx->capture_exception(std::current_exception());
  }
  if (hw) {
    const obs::metrics::HwSample hw1 = perf.read();
    for (int i = 0; i < obs::metrics::kHwCounterCount; ++i) {
      engine->hw_inter[static_cast<std::size_t>(i)]->add(
          id, hw_delta(hw1, hw0, i));
    }
    --hw_inter_depth;
  }
  t->body.reset();  // release captured resources before the sync wait

  // Implicit sync (Cilk semantics): a task completes only after all its
  // children have. Helping here is what drains the DAG below this task.
  release_busy_on_suspend(t);
  if (!t->joined()) {
    const std::uint64_t wait_start = tr ? obs::now_ns() : 0;
    const std::uint64_t help0 = stats.help_iterations;
    const std::uint64_t exec0 = stats.tasks_executed;
    int fails = 0;
    while (!t->joined()) {
      ++stats.help_iterations;
      // Own-deque fast path: the children this sync waits on are (absent
      // a steal) right here, so skip the acquire dispatch and go straight
      // to the pop. A miss falls through to the full Algorithm I probe.
      if (TaskFrame* c = pop_local()) {
        ++stats.intra_pop_hits;
        fails = 0;
        execute(c);
      } else if (help_once(fails >= kStarvationEscapeFails)) {
        fails = 0;
      } else {
        backoff(fails, stats);
      }
    }
    if (tr) {
      tl.record(obs::EventKind::kSyncWait, wait_start, obs::now_ns(),
                static_cast<std::int32_t>(stats.help_iterations - help0),
                static_cast<std::int32_t>(stats.tasks_executed - exec0));
    }
  }
  if (tr) {
    // Recorded at completion: nested spans (tasks run while helping in
    // the sync above) precede this one in the buffer.
    tl.record(obs::EventKind::kTaskExec, exec_start, obs::now_ns(), t->level,
              t->inter ? 1 : 0);
  }

  current = saved;
  finish(t);
}

void Worker::execute_lazy(TaskFrame* t) {
  LazyFrame* lf = LazyFrame::of(t);
  // The deque hands each entry to exactly one taker, so this claim cannot
  // lose to a thief that holds the same entry — it is the model-checked
  // defense-in-depth of the claim protocol (squad_protocol.hpp), and the
  // negative model BrokenPromotionCas shows the double execution that
  // skipping the thief-side gate would permit.
  const bool owned = lf->claim.try_own();
  CAB_CHECK(owned, "lazy frame taken twice (owner pop vs promotion)");
  // The lean subset of execute(): a lazy frame is intra-tier on its
  // owner's deque by construction, so there is no busy-state to release,
  // no inter-tier hw span, and no pool recycle at the end.
  TaskFrame* saved = current;
  current = t;
  ++stats.tasks_executed;
  if (t->level > stats.max_task_level) stats.max_task_level = t->level;
  if (engine->record_events) {
    exec_log.push_back(
        ExecRecord{id, squad->id, t->level, /*inter=*/false, is_head});
  }
  const bool tr = tl.enabled;
  const std::uint64_t exec_start = tr ? obs::now_ns() : 0;
  try {
    t->body();
  } catch (...) {
    ctx->capture_exception(std::current_exception());
  }
  t->body.reset();
  // Implicit sync, same help loop as execute(): the frame stays live (and
  // its slot unreclaimed, state kOwned) until its children have joined.
  if (!t->joined()) {
    const std::uint64_t wait_start = tr ? obs::now_ns() : 0;
    const std::uint64_t help0 = stats.help_iterations;
    const std::uint64_t exec0 = stats.tasks_executed;
    int fails = 0;
    while (!t->joined()) {
      ++stats.help_iterations;
      // Own-deque fast path: the children this sync waits on are (absent
      // a steal) right here, so skip the acquire dispatch and go straight
      // to the pop. A miss falls through to the full Algorithm I probe.
      if (TaskFrame* c = pop_local()) {
        ++stats.intra_pop_hits;
        fails = 0;
        execute(c);
      } else if (help_once(fails >= kStarvationEscapeFails)) {
        fails = 0;
      } else {
        backoff(fails, stats);
      }
    }
    if (tr) {
      tl.record(obs::EventKind::kSyncWait, wait_start, obs::now_ns(),
                static_cast<std::int32_t>(stats.help_iterations - help0),
                static_cast<std::int32_t>(stats.tasks_executed - exec0));
    }
  }
  if (tr) {
    tl.record(obs::EventKind::kTaskExec, exec_start, obs::now_ns(), t->level,
              0);
  }
  current = saved;
  engine->frame_destroyed();
  // The lazy join: the parent is suspended on this very worker (lazy
  // children only execute via the owner's pop, and tasks never migrate
  // mid-body), so its completion half is a plain owner-local bump — the
  // atomic RMW the lazy path exists to avoid. The root is never lazy, so
  // parent is always non-null here.
  ++t->parent->completed_local;
  lf->claim.finish_owned();
}

TaskFrame* Worker::promote_lazy(TaskFrame* t) {
  LazyFrame* lf = LazyFrame::of(t);
  // Same exactly-one-taker argument as execute_lazy's try_own.
  const bool claimed = lf->claim.try_promote();
  CAB_CHECK(claimed, "lazy frame taken twice (promotion vs owner pop)");
  // Materialize into *this* worker's pool: the thief executes (and with
  // no further steal, completes) the promoted frame, so the frame memory
  // is NUMA-local to its executor and recycles locally.
  TaskFrame* p = pool.acquire(stats);
  p->prepare(t->parent, t->level, /*is_inter=*/false);
  p->body.relocate_from(t->body);
  // Copy-out done: release the slot to its owner. From here the promoted
  // frame is an ordinary pooled frame — it joins through the parent's
  // atomic `completed` and recycles into this worker's pool.
  lf->claim.finish_promotion();
  ++stats.alloc_promotions;
  // Identity transfer: the lazy spawn's frame_created() tick carries over
  // to the promoted frame, so Eq. 15 accounting is unchanged.
  return p;
}

void Worker::finish(TaskFrame* t) {
  if (Squad* sq = t->inter_acquired_by) {
    // The paper's "busy_state := false" when an inter-socket task returns.
    const std::int32_t now = sq->busy_state.release();
    CAB_CHECK(now >= 0, "squad busy-state underflow");
    if (tl.enabled) tl.mark(obs::EventKind::kActiveInter, sq->id, now);
  }
  TaskFrame* parent = t->parent;
  Engine& e = *engine;
  recycle(t);
  e.frame_destroyed();
  if (parent) {
    // acq_rel: release publishes this child's writes to the resuming
    // parent (joined() acquires); acquire keeps the whole release
    // sequence intact for the sibling that completes last.
    parent->completed.fetch_add(1, std::memory_order_acq_rel);
  } else {
    // Root frame done => the whole DAG is done: execute() returned from
    // the implicit sync (joined(), acquire), and every child's own
    // finish() — including *its* implicit sync — happens-before the
    // completed increment that released ours. No per-task counting
    // needed. Per-context flag: only this partition's workers drain out.
    ctx->root_done.store(true, std::memory_order_release);
    e.notify_if_done();
  }
}

void Worker::recycle(TaskFrame* t) {
  CAB_CHECK(!t->lazy, "lazy frame leaked into recycle() — stack slots are "
                      "reclaimed through their claim word, never pooled");
  // Normally a no-op (execute() resets the body right after it returns);
  // arms only for frames aborted before publication, whose capture must
  // still be destroyed.
  t->body.reset();
  FramePool* home = t->home;
  if (home == &pool) {
    pool.release_local(t);
  } else if (home != nullptr) {
    // Completed away from the spawning worker (typically a cross-socket
    // steal): hand the frame back to its home NUMA pool through the MPSC
    // remote-free channel instead of freeing socket-remote memory here.
    ++stats.alloc_remote_frees;
    home->push_remote(t);
  } else {
    // alloc-ok: --frame-pool=off ablation — frames are plain heap objects.
    delete t;
  }
}

bool Worker::help_once(bool desperate) {
  // A worker blocked at a sync behaves like a free worker: the suspended
  // task released the squad's busy-state already (release_busy_on_suspend),
  // so Algorithm I — including head-worker inter-socket stealing — applies
  // unchanged. This is what keeps a squad fed while its own subtree work
  // is exhausted but other squads still hold inter-socket tasks.
  TaskFrame* t = acquire(desperate);
  if (!t) return false;
  execute(t);
  return true;
}

void Worker::release_busy_on_suspend(TaskFrame* t) {
  // A *non-leaf* inter-socket task that reaches its sync stops executing
  // on the squad: it must release busy_state or the squad would be barred
  // from inter-socket work for the task's entire (possibly run-long)
  // subtree lifetime. Leaf inter-socket tasks (level == BL) keep the
  // squad busy until their intra-socket subtree completes — that subtree
  // is the shared-cache residency unit the paper protects.
  Squad* sq = t->inter_acquired_by;
  if (sq == nullptr) return;
  if (protocol::holds_busy_through_sync(t->has_intra_children)) {
    return;  // leaf inter-socket task: hold
  }
  t->inter_acquired_by = nullptr;
  const std::int32_t now = sq->busy_state.release();
  CAB_CHECK(now >= 0, "squad busy-state underflow at suspend");
  if (tl.enabled) tl.mark(obs::EventKind::kActiveInter, sq->id, now);
}

TaskFrame* Worker::acquire(bool desperate) {
  if (engine->kind == SchedulerKind::kCab && !ctx->cab_degenerate(engine->kind))
    return acquire_cab(desperate);
  if (engine->kind == SchedulerKind::kTaskSharing) return acquire_sharing();
  return acquire_random();
}

void Worker::mark_occupied() {
  if (!engine->mask_active) return;
  if (squad->occupancy.set(squad_slot)) ++stats.mask_sets;
}

TaskFrame* Worker::acquire_cab(bool desperate) {
  // Step 1: own intra-socket pool (publication buffer first, then deque).
  if (TaskFrame* t = pop_local()) {
    ++stats.intra_pop_hits;
    return t;
  }
  if (engine->mask_active) {
    // Own deque drained: withdraw this worker's occupancy hint so
    // weighted thieves stop picking it (usually a no-op load — the bit
    // only flips on the nonempty->empty transition).
    if (squad->occupancy.clear(squad_slot)) ++stats.mask_clears_own;
  }
  // Steps 2–6: the gate decision is protocol::plan_acquire (model-checked
  // in tests/test_model_check.cpp). Squad busy => intra-socket stealing
  // within the squad only; squad free => the head reaches the
  // inter-socket pools while non-heads loop back to Step 1.
  //
  // Starvation escape (`desperate`): a head that has failed
  // kStarvationEscapeFails times in a row falls through to the
  // inter-socket pools despite the busy gate — the only acquire path that
  // unsticks a squad whose busy-holder is itself waiting on pooled
  // inter-socket descendants (see kStarvationEscapeFails). Deviation from
  // the paper's policy is confined to runs that would otherwise livelock
  // or starve.
  const protocol::AcquirePaths paths =
      protocol::plan_acquire(is_head, squad->busy(), desperate);
  if (paths.steal_intra_in_squad) {
    // Step 3 + 6(a): random in-squad victim, single attempt per call.
    TaskFrame* t = steal_intra_in_squad();
    if (t != nullptr || !paths.inter_pools) return t;
  }
  if (!paths.inter_pools) return nullptr;
  // Step 4: own squad's inter-socket pool (FIFO end: oldest task = the
  // subtree closest to the root, which parent-first expansion wants
  // distributed first).
  if (TaskFrame* t = take_inter_from_own_squad()) {
    ++stats.inter_acquires;
    return t;
  }
  // Step 5 + 6(b): steal an inter-socket task from a random other squad.
  if (TaskFrame* t = steal_inter_from_other_squads()) {
    ++stats.inter_steals;
    return t;
  }
  return nullptr;
}

TaskFrame* Worker::acquire_random() {
  if (TaskFrame* t = pop_local()) {
    ++stats.intra_pop_hits;
    return t;
  }
  if (TaskFrame* t = steal_intra_global()) return t;
  return ctx->inject.steal_top();  // root injection
}

TaskFrame* Worker::acquire_sharing() {
  return ctx->inject.pop_bottom();
}

TaskFrame* Worker::steal_intra_in_squad() {
  const int n = squad->worker_count;
  if (n <= 1) {
    ++stats.failed_steal_attempts;
    return nullptr;
  }
  const bool tr = tl.enabled;
  const std::uint64_t t0 = tr ? obs::now_ns() : 0;
  const StealPolicy pol = engine->steal;
  int victim = -1;
  if (pol != StealPolicy::kUniform &&
      n <= protocol::OccupancyMask<>::kWidth) {
    // Occupancy-weighted stochastic pick: candidates from the squad's
    // occupancy mask, weighted by their deques' size estimates so longer
    // deques are proportionally likelier victims (and steal-half then
    // moves the most work per claim).
    const int first = squad->first_worker;
    const int slot = pick_weighted_victim(
        squad->occupancy.load(), squad_slot, n,
        [&](int s) {
          return static_cast<std::uint64_t>(
              engine->workers[static_cast<std::size_t>(first + s)]
                  ->intra.size_estimate());
        },
        rng);
    if (slot != kNoVictim) {
      victim = first + slot;
      ++stats.weighted_picks;
    }
  }
  if (victim < 0) {
    // Uniform fallback: --steal=uniform, a squad wider than the mask, or
    // no live candidate (empty/stale mask) — the unconditional probe is
    // what keeps stale hearsay-clears from ever starving a thief.
    auto pick =
        static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n - 1)));
    victim = squad->first_worker + pick;
    if (victim >= id) ++victim;  // skip self
  }
  std::size_t taken = 0;
  TaskFrame* t = steal_intra_from(victim, taken);
  if (tr) {
    tl.record(obs::EventKind::kStealIntra, t0, obs::now_ns(), victim,
              static_cast<std::int32_t>(taken));
  }
  return t;
}

TaskFrame* Worker::steal_intra_from(int victim, std::size_t& taken) {
  Worker& v = *engine->workers[static_cast<std::size_t>(victim)];
  taken = 0;
  TaskFrame* t = nullptr;
  if (engine->steal == StealPolicy::kWeightedHalf) {
    TaskFrame* buf[kStealBatchMax];
    taken = v.intra.steal_batch(buf, kStealBatchMax);
    if (taken > 0) {
      // Promote every lazy element — including the surplus re-pushed
      // below: a foreign stack frame must never enter this worker's
      // deque, or a later own-pop would execute it in place and bump the
      // victim-side completed_local from the wrong thread.
      for (std::size_t i = 0; i < taken; ++i) {
        if (buf[i]->lazy) buf[i] = promote_lazy(buf[i]);
      }
      t = buf[0];  // oldest claimed task runs now (victim FIFO order)
      // Surplus onto own deque newest-first, so this worker's LIFO pops
      // replay the batch in the victim's FIFO order.
      for (std::size_t i = taken; i-- > 1;) intra.push_bottom(buf[i]);
      if (taken > 1) mark_occupied();
      ++stats.steal_batches;
      stats.steal_batch_tasks += taken;
      if (engine->steal_batch_hist != nullptr) {
        engine->steal_batch_hist->observe(id,
                                          static_cast<std::int64_t>(taken));
      }
    }
  } else {
    t = v.intra.steal_top();
    if (t != nullptr && t->lazy) t = promote_lazy(t);
    taken = t != nullptr ? 1 : 0;
  }
  if (t != nullptr) {
    ++stats.intra_steals;
  } else {
    ++stats.failed_steal_attempts;
    if (engine->mask_active) {
      // Hearsay clear: the probe found the victim empty, so withdraw its
      // hint on the owner's behalf — a crowd of thieves converges off a
      // drained victim without each paying a probe.
      if (squad->occupancy.clear(victim - squad->first_worker)) {
        ++stats.mask_clears_hearsay;
      }
    }
  }
  return t;
}

TaskFrame* Worker::steal_intra_global() {
  // "Global" = partition-wide: the baselines (and degenerate CAB) steal
  // uniformly across this epoch's workers, never across a partition
  // boundary.
  const int n = static_cast<int>(ctx->workers.size());
  if (n <= 1) {
    ++stats.failed_steal_attempts;
    return nullptr;
  }
  const bool tr = tl.enabled;
  const std::uint64_t t0 = tr ? obs::now_ns() : 0;
  auto pick = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n - 1)));
  int victim = pick;
  if (victim >= ctx_slot) ++victim;  // skip self (partition-local index)
  Worker& v = *ctx->workers[static_cast<std::size_t>(victim)];
  TaskFrame* t = v.intra.steal_top();
  if (t != nullptr && t->lazy) t = promote_lazy(t);
  if (t) {
    ++stats.intra_steals;
  } else {
    ++stats.failed_steal_attempts;
  }
  if (tr) {
    tl.record(obs::EventKind::kStealIntra, t0, obs::now_ns(), v.id,
              t != nullptr ? 1 : 0);
  }
  return t;
}

TaskFrame* Worker::take_inter_from_own_squad() {
  const bool tr = tl.enabled;
  const std::uint64_t t0 = tr ? obs::now_ns() : 0;
  TaskFrame* t = squad->inter_pool.steal_top();
  if (!t) t = ctx->inject.steal_top();  // root injection
  if (t) {
    const std::int32_t now = protocol::bind_inter(squad->busy_state, t, squad);
    if (tr) tl.mark(obs::EventKind::kActiveInter, squad->id, now);
  }
  if (tr) {
    tl.record(obs::EventKind::kInterAcquire, t0, obs::now_ns(), squad->id,
              t != nullptr ? 1 : 0);
  }
  return t;
}

TaskFrame* Worker::steal_inter_from_other_squads() {
  // Confined to the epoch's partition: a squad only ever raids pools of
  // squads running the *same* job, so tasks never cross partitions.
  const int m = static_cast<int>(ctx->squads.size());
  if (m <= 1) return nullptr;
  const bool tr = tl.enabled;
  const std::uint64_t t0 = tr ? obs::now_ns() : 0;
  // One randomized round over the other squads.
  auto start = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(m)));
  for (int i = 0; i < m; ++i) {
    Squad* victim = ctx->squads[static_cast<std::size_t>((start + i) % m)];
    if (victim == squad) continue;
    if (TaskFrame* t = victim->inter_pool.steal_top()) {
      const std::int32_t now =
          protocol::bind_inter(squad->busy_state, t, squad);
      if (tr) {
        tl.mark(obs::EventKind::kActiveInter, squad->id, now);
        tl.record(obs::EventKind::kStealInter, t0, obs::now_ns(), victim->id,
                  1);
      }
      return t;
    }
    ++stats.failed_steal_attempts;
  }
  if (tr) tl.record(obs::EventKind::kStealInter, t0, obs::now_ns(), -1, 0);
  return nullptr;
}

void Engine::worker_main(Worker& w) {
  tls_worker = &w;
  if (pin_threads) hw::bind_current_thread(w.core);
  // perf_event_open counts the calling thread, so the group must be
  // opened here, on the worker's own thread. Fails quietly (and leaves
  // every perf call a no-op) when the syscall is blocked or CAB_PERF=off.
  if (hw_counters) w.perf.open();

  std::uint64_t seen_epoch = 0;
  for (;;) {
    std::uint64_t epoch_t0 = 0;
    EpochContext* ctx = nullptr;
    {
      std::unique_lock<std::mutex> lk(lifecycle_mu);
      // blocking-ok: parked between epochs — this worker's squad is not
      // bound to any running partition, so there is nothing to steal and
      // nothing this wait can delay. The predicate reads only the own
      // squad's binding: concurrent partitions wake only their own
      // workers (modulo harmless spurious wakes that re-park here).
      lifecycle_cv.wait(lk, [&] {
        return shutdown ||
               (w.squad->ctx != nullptr && w.squad->ctx_epoch != seen_epoch);
      });
      if (shutdown) break;
      ctx = w.squad->ctx;
      seen_epoch = w.squad->ctx_epoch;
      epoch_t0 = ctx->start_ns;
      ++ctx->joined;
      ++ctx->working;
    }
    w.ctx = ctx;
    // Per-epoch constant fold for the lazy spawn path: only a
    // non-degenerate CAB epoch ever routes a child to the inter tier, so
    // everything but the level comparison is decided here, once per wake,
    // instead of per spawn.
    w.lazy_tier_check = lazy && kind == SchedulerKind::kCab &&
                        !ctx->cab_degenerate(kind);
    // Partition-local self index for the baselines' steal victim pick
    // (partition membership is fixed for the epoch, so once per wake).
    for (std::size_t i = 0; i < ctx->workers.size(); ++i) {
      if (ctx->workers[i] == &w) {
        w.ctx_slot = static_cast<int>(i);
        break;
      }
    }
    // Counters run only inside epochs: enabled here, disabled below, so
    // hw.* totals cover run() execution rather than parked time.
    w.perf.enable();
    const bool tr = w.tl.enabled;
    int fails = 0;
    // The lead-in stretch — epoch publication to this worker's first
    // acquired task — is idle time too (the thread was parked or waking),
    // so it opens at run()'s own stamp; without it a worker that wakes
    // into an already-drained DAG would leave the whole epoch untracked.
    bool lead_in = tr;
    std::uint64_t idle_start = epoch_t0;
    // One kIdle span per streak of failed acquires, not one event per
    // attempt: idle spins are the highest-frequency state a worker has,
    // and a span per streak keeps the buffer proportional to schedule
    // structure instead of spin speed.
    auto close_idle = [&] {
      if (tr && (fails > 0 || lead_in)) {
        const std::uint64_t now = obs::now_ns();
        if (now > idle_start) {
          w.tl.record(obs::EventKind::kIdle, idle_start, now, fails, 0);
        }
      }
      lead_in = false;
    };
    while (!ctx->root_done.load(std::memory_order_acquire)) {
      if (TaskFrame* t = w.acquire(fails >= kStarvationEscapeFails)) {
        close_idle();
        fails = 0;
        w.execute(t);
      } else {
        if (tr && fails == 0 && !lead_in) idle_start = obs::now_ns();
        backoff(fails, w.stats);
      }
    }
    close_idle();
    w.perf.disable();
    if (w.perf.is_open()) {
      // Cumulative totals (counters stay live across epochs) stored into
      // this worker's own registry slots — still single-writer.
      const obs::metrics::HwSample s = w.perf.read();
      for (int i = 0; i < obs::metrics::kHwCounterCount; ++i) {
        hw_total[static_cast<std::size_t>(i)]->store(
            w.id, static_cast<std::int64_t>(
                      s.value[static_cast<std::size_t>(i)]));
      }
    }
    w.ctx = nullptr;
    {
      std::lock_guard<std::mutex> lk(lifecycle_mu);
      if (--ctx->working == 0) done_cv.notify_all();
    }
  }
  tls_worker = nullptr;
}

void Engine::notify_if_done() {
  std::lock_guard<std::mutex> lk(lifecycle_mu);
  done_cv.notify_all();
}

}  // namespace cab::runtime
