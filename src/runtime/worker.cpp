#include <chrono>
#include <thread>

#include "hw/affinity.hpp"
#include "runtime/runtime.hpp"
#include "runtime/scheduler.hpp"
#include "util/assert.hpp"
#include "util/spin_lock.hpp"

namespace cab::runtime {

/// Worker executing on the calling thread (nullptr on non-worker threads).
thread_local Worker* tls_worker = nullptr;

namespace {

/// Progressive backoff for spin points. With virtual topologies the worker
/// count can exceed the physical cores many times over, so we yield early:
/// the task we are waiting for is likely on a descheduled thread.
void backoff(int& fails) {
  ++fails;
  if (fails < 16) {
    util::cpu_relax();
  } else if (fails < 4096) {
    std::this_thread::yield();
  } else {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

}  // namespace

void Worker::execute(TaskFrame* t) {
  TaskFrame* saved = current;
  current = t;
  ++stats.tasks_executed;
  if (engine->record_events) {
    exec_log.push_back(
        ExecRecord{id, squad->id, t->level, t->inter, is_head});
  }
  try {
    t->body();
  } catch (...) {
    // Task bodies must not tear down the worker: capture the first
    // exception for Runtime::run() to rethrow once the DAG has drained
    // (children already spawned by the failing body still execute).
    engine->capture_exception(std::current_exception());
  }
  t->body = nullptr;  // release captured resources before the sync wait

  // Implicit sync (Cilk semantics): a task completes only after all its
  // children have. Helping here is what drains the DAG below this task.
  release_busy_on_suspend(t);
  int fails = 0;
  while (t->outstanding.load(std::memory_order_acquire) != 0) {
    ++stats.help_iterations;
    if (help_once()) {
      fails = 0;
    } else {
      backoff(fails);
    }
  }

  current = saved;
  finish(t);
}

void Worker::finish(TaskFrame* t) {
  if (Squad* sq = t->inter_acquired_by) {
    // The paper's "busy_state := false" when an inter-socket task returns.
    std::int32_t prev = sq->active_inter.fetch_sub(1, std::memory_order_acq_rel);
    CAB_CHECK(prev >= 1, "squad busy-state underflow");
  }
  TaskFrame* parent = t->parent;
  Engine& e = *engine;
  delete t;
  e.frame_destroyed();
  if (parent) parent->outstanding.fetch_sub(1, std::memory_order_acq_rel);
  if (e.pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    e.notify_if_done();
  }
}

bool Worker::help_once() {
  // A worker blocked at a sync behaves like a free worker: the suspended
  // task released the squad's busy-state already (release_busy_on_suspend),
  // so Algorithm I — including head-worker inter-socket stealing — applies
  // unchanged. This is what keeps a squad fed while its own subtree work
  // is exhausted but other squads still hold inter-socket tasks.
  TaskFrame* t = acquire();
  if (!t) return false;
  execute(t);
  return true;
}

void Worker::release_busy_on_suspend(TaskFrame* t) {
  // A *non-leaf* inter-socket task that reaches its sync stops executing
  // on the squad: it must release busy_state or the squad would be barred
  // from inter-socket work for the task's entire (possibly run-long)
  // subtree lifetime. Leaf inter-socket tasks (level == BL) keep the
  // squad busy until their intra-socket subtree completes — that subtree
  // is the shared-cache residency unit the paper protects.
  Squad* sq = t->inter_acquired_by;
  if (sq == nullptr) return;
  if (t->has_intra_children) return;  // leaf inter-socket task: hold
  t->inter_acquired_by = nullptr;
  std::int32_t prev = sq->active_inter.fetch_sub(1, std::memory_order_acq_rel);
  CAB_CHECK(prev >= 1, "squad busy-state underflow at suspend");
}

TaskFrame* Worker::acquire() {
  if (engine->kind == SchedulerKind::kCab && !engine->cab_degenerate())
    return acquire_cab();
  if (engine->kind == SchedulerKind::kTaskSharing) return acquire_sharing();
  return acquire_random();
}

TaskFrame* Worker::acquire_cab() {
  // Step 1: own intra-socket pool.
  if (TaskFrame* t = intra.pop_bottom()) {
    ++stats.intra_pop_hits;
    return t;
  }
  // Step 2: squad busy => only intra-socket stealing within the squad.
  if (squad->busy()) {
    // Step 3 + 6(a): random in-squad victim, single attempt per call.
    return steal_intra_in_squad();
  }
  // Step 2 (cont.): non-head workers loop back to Step 1.
  if (!is_head) return nullptr;
  // Step 4: own squad's inter-socket pool (FIFO end: oldest task = the
  // subtree closest to the root, which parent-first expansion wants
  // distributed first).
  if (TaskFrame* t = take_inter_from_own_squad()) {
    ++stats.inter_acquires;
    return t;
  }
  // Step 5 + 6(b): steal an inter-socket task from a random other squad.
  if (TaskFrame* t = steal_inter_from_other_squads()) {
    ++stats.inter_steals;
    return t;
  }
  return nullptr;
}

TaskFrame* Worker::acquire_random() {
  if (TaskFrame* t = intra.pop_bottom()) {
    ++stats.intra_pop_hits;
    return t;
  }
  if (TaskFrame* t = steal_intra_global()) return t;
  return engine->central_pool.steal_top();  // root injection
}

TaskFrame* Worker::acquire_sharing() {
  return engine->central_pool.pop_bottom();
}

TaskFrame* Worker::steal_intra_in_squad() {
  const int n = squad->worker_count;
  if (n <= 1) {
    ++stats.failed_steal_attempts;
    return nullptr;
  }
  auto pick = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n - 1)));
  int victim = squad->first_worker + pick;
  if (victim >= id) ++victim;  // skip self
  TaskFrame* t = engine->workers[static_cast<std::size_t>(victim)]->intra.steal_top();
  if (t) {
    ++stats.intra_steals;
  } else {
    ++stats.failed_steal_attempts;
  }
  return t;
}

TaskFrame* Worker::steal_intra_global() {
  const int n = static_cast<int>(engine->workers.size());
  if (n <= 1) {
    ++stats.failed_steal_attempts;
    return nullptr;
  }
  auto pick = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n - 1)));
  int victim = pick;
  if (victim >= id) ++victim;
  TaskFrame* t = engine->workers[static_cast<std::size_t>(victim)]->intra.steal_top();
  if (t) {
    ++stats.intra_steals;
  } else {
    ++stats.failed_steal_attempts;
  }
  return t;
}

TaskFrame* Worker::take_inter_from_own_squad() {
  TaskFrame* t = squad->inter_pool.steal_top();
  if (!t) t = engine->central_pool.steal_top();  // root injection
  if (t) {
    squad->active_inter.fetch_add(1, std::memory_order_acq_rel);
    t->inter_acquired_by = squad;
  }
  return t;
}

TaskFrame* Worker::steal_inter_from_other_squads() {
  const int m = static_cast<int>(engine->squads.size());
  if (m <= 1) return nullptr;
  // One randomized round over the other squads.
  auto start = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(m)));
  for (int i = 0; i < m; ++i) {
    int victim = (start + i) % m;
    if (victim == squad->id) continue;
    if (TaskFrame* t = engine->squads[static_cast<std::size_t>(victim)]
                           ->inter_pool.steal_top()) {
      squad->active_inter.fetch_add(1, std::memory_order_acq_rel);
      t->inter_acquired_by = squad;
      return t;
    }
    ++stats.failed_steal_attempts;
  }
  return nullptr;
}

void Engine::worker_main(Worker& w) {
  tls_worker = &w;
  if (pin_threads) hw::bind_current_thread(w.core);

  std::uint64_t seen_epoch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(lifecycle_mu);
      lifecycle_cv.wait(
          lk, [&] { return shutdown || epoch != seen_epoch; });
      if (shutdown) break;
      seen_epoch = epoch;
    }
    int fails = 0;
    while (pending.load(std::memory_order_acquire) > 0) {
      if (TaskFrame* t = w.acquire()) {
        fails = 0;
        w.execute(t);
      } else {
        backoff(fails);
      }
    }
  }
  tls_worker = nullptr;
}

void Engine::notify_if_done() {
  std::lock_guard<std::mutex> lk(lifecycle_mu);
  done_cv.notify_all();
}

}  // namespace cab::runtime
