#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace cab::runtime {

/// Move-only type-erased `void()` callable with inline small-buffer
/// storage — the spawn hot path's replacement for `std::function<void()>`.
///
/// `std::function` heap-allocates any capture larger than two pointers,
/// which put one allocator round trip on *every* spawn (on top of the
/// frame itself) and one cross-socket free on every stolen task. TaskBody
/// instead constructs the decayed callable directly inside the task frame:
/// captures up to kInlineSize bytes never touch the heap, move-only
/// captures (unique_ptr and friends) are supported because the erased
/// object is never copied, and oversized captures degrade to a single
/// boxed allocation rather than failing to compile.
///
/// Type erasure is a two-entry manual vtable (invoke + destroy) — no RTTI,
/// no target()/copy machinery, because the runtime only ever calls a body
/// once and then destroys it.
class TaskBody {
 public:
  /// Inline capture budget. 64 bytes holds every closure the runtime and
  /// the apps spawn today (a handful of pointers/scalars per capture) and
  /// a whole `std::function` (32 bytes on libstdc++), so even erased
  /// user bodies relay through run()/spawn without boxing.
  static constexpr std::size_t kInlineSize = 64;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  TaskBody() noexcept = default;
  TaskBody(const TaskBody&) = delete;
  TaskBody& operator=(const TaskBody&) = delete;
  ~TaskBody() { reset(); }

  /// True when `F`'s decayed type is stored inline (test hook; also what
  /// emplace() uses to pick the branch at compile time).
  template <typename F>
  static constexpr bool stores_inline() noexcept {
    using D = std::decay_t<F>;
    return sizeof(D) <= kInlineSize && alignof(D) <= kInlineAlign;
  }

  /// Constructs the callable in place (decay-copy/move of `fn`). The body
  /// must be empty — frames arrive from the pool with the previous body
  /// already reset by the executing worker.
  template <typename F>
  void emplace(F&& fn) {
    using D = std::decay_t<F>;
    static_assert(std::is_invocable_v<D&>,
                  "task body must be callable with no arguments");
    if constexpr (stores_inline<F>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      ops_ = &kInlineOps<D>;
    } else {
      emplace_boxed(std::forward<F>(fn));
    }
  }

  /// Heap-boxes the callable even when it would fit inline. Two callers:
  /// the oversized-capture branch of emplace(), and the
  /// `--frame-pool=off` ablation, where it stands in for the seed
  /// std::function path (one capture box per spawn).
  template <typename F>
  void emplace_boxed(F&& fn) {
    using D = std::decay_t<F>;
    static_assert(std::is_invocable_v<D&>,
                  "task body must be callable with no arguments");
    // alloc-ok: oversized-capture fallback / ablation baseline — the
    // steady-state spawn path never reaches this for inline-sized
    // captures (asserted by tests/test_frame_pool.cpp).
    *reinterpret_cast<D**>(static_cast<void*>(storage_)) =
        new D(std::forward<F>(fn));
    ops_ = &kHeapOps<D>;
  }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// Moves the held callable out of `src` into this (empty) body, leaving
  /// `src` empty — the copy-out half of lazy-frame promotion (DESIGN.md
  /// §5h): the thief relocates the capture from the victim's stack slot
  /// into a pooled frame before releasing the slot back to its owner.
  /// A null relocate slot means the capture is trivially relocatable and
  /// a raw byte copy of the storage suffices — true for every trivially
  /// copyable inline capture *and* for heap-boxed bodies (the box pointer
  /// itself moves); only non-trivial inline captures pay an indirect call.
  void relocate_from(TaskBody& src) noexcept {
    const Ops* o = src.ops_;
    src.ops_ = nullptr;
    ops_ = o;
    if (o == nullptr) return;
    if (o->relocate == nullptr) {
      std::memcpy(storage_, src.storage_, kInlineSize);
    } else {
      o->relocate(storage_, src.storage_);
    }
  }

  /// Destroys the held callable; no-op when empty. ops_ is cleared before
  /// the destructor runs so a re-entrant reset (e.g. from a capture's own
  /// destructor) sees an empty body instead of a half-dead one. A null
  /// destroy slot means the capture is trivially destructible — the
  /// common case for scheduler-internal closures (pointers + indices),
  /// which turns the per-task teardown from an indirect call into a
  /// perfectly predicted branch.
  void reset() noexcept {
    if (ops_ != nullptr) {
      const Ops* o = ops_;
      ops_ = nullptr;
      if (o->destroy != nullptr) o->destroy(storage_);
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*destroy)(void*);  ///< null => trivially destructible, skip
    /// null => trivially relocatable, memcpy the storage. Every decayed
    /// capture is move-constructible (emplace decay-copies), so the
    /// non-null slot (move-construct at dst, destroy src) is always
    /// well-formed for the types that need it.
    void (*relocate)(void* dst, void* src);
  };

  template <typename D>
  static void relocate_slot(void* dst, void* src) {
    D* s = std::launder(reinterpret_cast<D*>(src));
    ::new (dst) D(std::move(*s));
    s->~D();
  }

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* s) { (*std::launder(reinterpret_cast<D*>(s)))(); },
      std::is_trivially_destructible_v<D>
          ? static_cast<void (*)(void*)>(nullptr)
          : static_cast<void (*)(void*)>(
                [](void* s) { std::launder(reinterpret_cast<D*>(s))->~D(); }),
      std::is_trivially_copyable_v<D>
          ? static_cast<void (*)(void*, void*)>(nullptr)
          : &relocate_slot<D>};

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* s) { (**reinterpret_cast<D**>(s))(); },
      [](void* s) {
        // alloc-ok: releases the heap box of emplace_boxed().
        delete *reinterpret_cast<D**>(s);
      },
      // Boxed bodies relocate by moving the box pointer — a byte copy.
      nullptr};

  alignas(kInlineAlign) unsigned char storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace cab::runtime
