#pragma once

#include <array>
#include <cstdint>

namespace cab::chk {

/// Hard cap on model threads per execution. Exhaustive exploration is
/// exponential in thread count; 8 is already far beyond what completes.
inline constexpr int kMaxThreads = 8;

/// Plain vector clock over model-thread ids. Drives the happens-before
/// race detector on `chk::var` accesses: release-class atomic writes
/// publish the writer's clock into the location, acquire-class reads join
/// it back into the reader (FastTrack-style, but full clocks — model
/// executions are tiny, so the epoch optimization is not worth the code).
struct VectorClock {
  std::array<std::uint32_t, kMaxThreads> c{};

  void join(const VectorClock& o) {
    for (int i = 0; i < kMaxThreads; ++i) {
      if (o.c[i] > c[i]) c[i] = o.c[i];
    }
  }

  void clear() { c.fill(0); }
};

}  // namespace cab::chk
