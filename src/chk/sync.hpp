#pragma once

#include <atomic>
#include <functional>
#include <type_traits>
#include <utility>

#include "chk/engine.hpp"

namespace cab::chk {

namespace detail {

inline bool is_acquire(std::memory_order mo) {
  return mo == std::memory_order_acquire || mo == std::memory_order_consume ||
         mo == std::memory_order_acq_rel || mo == std::memory_order_seq_cst;
}

inline bool is_release(std::memory_order mo) {
  return mo == std::memory_order_release || mo == std::memory_order_acq_rel ||
         mo == std::memory_order_seq_cst;
}

}  // namespace detail

/// Virtualized std::atomic. Same value semantics (the exploration itself
/// is sequentially consistent — single real thread), but:
///  - every access is a schedule point of the controllable scheduler, so
///    the explorer interleaves at atomic granularity;
///  - memory orders drive the vector-clock synchronizes-with edges used
///    by the chk::var race detector, so an under-strict order surfaces as
///    a detected data race on the payload it was supposed to publish
///    (store-buffer/TSO value weakening is NOT modeled — DESIGN.md §6).
template <typename T>
class atomic {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  atomic() noexcept = default;
  atomic(T v) noexcept : value_(v) {}  // NOLINT: mirror std::atomic
  atomic(const atomic&) = delete;
  atomic& operator=(const atomic&) = delete;

  T load(std::memory_order mo = std::memory_order_seq_cst) const {
    Engine& g = cur();
    g.op_point(this, "atomic.load");
    if (detail::is_acquire(mo)) g.acquire_from(sync_);
    return value_;
  }

  void store(T v, std::memory_order mo = std::memory_order_seq_cst) {
    Engine& g = cur();
    g.op_point(this, "atomic.store");
    if (detail::is_release(mo)) {
      // A plain store heads a new release sequence: replace, not join.
      g.release_into(sync_);
    } else {
      // Relaxed store: breaks the release sequence — a later acquire load
      // of this value synchronizes with nothing.
      sync_.clear();
    }
    value_ = v;
    g.state_changed();
  }

  T exchange(T v, std::memory_order mo = std::memory_order_seq_cst) {
    Engine& g = cur();
    g.op_point(this, "atomic.exchange");
    T old = value_;
    rmw_orders(g, mo);
    value_ = v;
    g.state_changed();
    return old;
  }

  T fetch_add(T d, std::memory_order mo = std::memory_order_seq_cst) {
    Engine& g = cur();
    g.op_point(this, "atomic.fetch_add");
    T old = value_;
    rmw_orders(g, mo);
    value_ = static_cast<T>(value_ + d);
    g.state_changed();
    return old;
  }

  T fetch_sub(T d, std::memory_order mo = std::memory_order_seq_cst) {
    Engine& g = cur();
    g.op_point(this, "atomic.fetch_sub");
    T old = value_;
    rmw_orders(g, mo);
    value_ = static_cast<T>(value_ - d);
    g.state_changed();
    return old;
  }

  bool compare_exchange_strong(
      T& expected, T desired,
      std::memory_order succ = std::memory_order_seq_cst,
      std::memory_order fail = std::memory_order_seq_cst) {
    Engine& g = cur();
    g.op_point(this, "atomic.cas");
    if (value_ == expected) {
      rmw_orders(g, succ);
      value_ = desired;
      g.state_changed();
      return true;
    }
    if (detail::is_acquire(fail)) g.acquire_from(sync_);
    expected = value_;
    return false;
  }

  bool compare_exchange_weak(T& expected, T desired,
                             std::memory_order succ = std::memory_order_seq_cst,
                             std::memory_order fail = std::memory_order_seq_cst) {
    // No spurious-failure modeling: weak == strong in the model.
    return compare_exchange_strong(expected, desired, succ, fail);
  }

  operator T() const { return load(); }  // NOLINT: mirror std::atomic

 private:
  void rmw_orders(Engine& g, std::memory_order mo) {
    if (detail::is_acquire(mo)) g.acquire_from(sync_);
    // Any RMW continues an existing release sequence, so the location
    // keeps its prior clock; a releasing RMW additionally joins the
    // writer's clock in.
    if (detail::is_release(mo)) g.release_join(sync_);
  }

  T value_{};
  mutable VectorClock sync_;
};

/// Plain (non-atomic) shared data under the happens-before race detector:
/// any pair of concurrent accesses (at least one write) without a
/// synchronizes-with chain between them fails the execution with a
/// replayable seed. Use for every payload whose publication the checked
/// protocol is supposed to order.
template <typename T>
class var {
 public:
  var() = default;
  explicit var(T v) : value_(std::move(v)) {}
  var(const var&) = delete;
  var& operator=(const var&) = delete;

  T get() const {
    if (active()) cur().var_read(rs_, "var");
    return value_;
  }

  void set(T v) {
    if (active()) cur().var_write(rs_, "var");
    value_ = std::move(v);
  }

 private:
  T value_{};
  mutable detail::RaceState rs_;
};

/// Virtualized mutex (Lockable). Blocking is modeled: a thread that finds
/// the mutex held parks until unlock, so schedules never busy-wait here.
/// lock/unlock carry release/acquire clock edges like the real thing.
class mutex {
 public:
  mutex() = default;
  mutex(const mutex&) = delete;
  mutex& operator=(const mutex&) = delete;

  void lock() {
    Engine& g = cur();
    for (;;) {
      g.op_point(this, "mutex.lock");
      if (g.inline_mode()) return;
      if (!locked_) {
        locked_ = true;
        g.acquire_from(sync_);
        g.tick();
        return;
      }
      g.block_on(this);
    }
  }

  bool try_lock() {
    Engine& g = cur();
    g.op_point(this, "mutex.try_lock");
    if (g.inline_mode()) return true;
    if (locked_) return false;
    locked_ = true;
    g.acquire_from(sync_);
    g.tick();
    return true;
  }

  void unlock() {
    Engine& g = cur();
    g.op_point(this, "mutex.unlock");
    if (g.inline_mode()) return;
    locked_ = false;
    g.release_into(sync_);
    g.wake_waiters(this);
    g.state_changed();
  }

 private:
  bool locked_ = false;
  VectorClock sync_;
};

/// Virtualized thread. Must be joined before destruction (like
/// std::thread), except while an execution is being aborted.
class thread {
 public:
  thread() = default;
  explicit thread(std::function<void()> fn) : id_(cur().spawn(std::move(fn))) {}
  thread(const thread&) = delete;
  thread& operator=(const thread&) = delete;
  thread(thread&& o) noexcept : id_(o.id_) { o.id_ = -1; }
  thread& operator=(thread&& o) noexcept {
    id_ = o.id_;
    o.id_ = -1;
    return *this;
  }
  ~thread() {
    if (id_ >= 0 && active() && !cur().aborting()) {
      cur().fail_soft("chk::thread destroyed without join()");
    }
  }

  bool joinable() const { return id_ >= 0; }

  void join() {
    cur().join_thread(id_);
    id_ = -1;
  }

 private:
  int id_ = -1;
};

/// The Sync policy (util/sync_policy.hpp contract) that compiles the
/// production synchronization cores — ChaseLevDeque, LockedDeque,
/// BasicSpinLock, runtime::protocol — against the model checker.
struct ModelSync {
  template <typename T>
  using atomic_t = chk::atomic<T>;

  static void fence(std::memory_order mo) { chk::fence(mo); }

  /// Spin backoff becomes a scheduler yield: the spinner is deprioritized
  /// until shared state changes, which keeps exhaustive exploration of
  /// spin loops finite.
  static void spin_pause(int& spins) {
    (void)spins;
    chk::yield();
  }
};

}  // namespace cab::chk
