#include "chk/engine.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

// ASan must be told about fiber stack switches or it poisons/misreads the
// fake stacks. The annotations are no-ops in non-ASan builds.
#if defined(__SANITIZE_ADDRESS__)
#define CAB_CHK_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define CAB_CHK_ASAN 1
#endif
#endif

#if defined(CAB_CHK_ASAN)
extern "C" {
void __sanitizer_start_switch_fiber(void** fake_stack_save,
                                    const void* stack_bottom,
                                    size_t stack_size);
void __sanitizer_finish_switch_fiber(void* fake_stack_save,
                                     const void** stack_bottom_old,
                                     size_t* stack_size_old);
}
#endif

namespace cab::chk {

namespace {

constexpr std::size_t kFiberStackSize = 256 * 1024;
constexpr char kSeedPrefix[] = "chk1:";

Engine* g_engine = nullptr;

// Captured at the first fiber entry: the scheduler's (real) stack, needed
// to annotate switches back out of fibers under ASan.
const void* g_sched_stack_bottom = nullptr;
size_t g_sched_stack_size = 0;

void asan_start_switch(void** save, const void* bottom, size_t size) {
#if defined(CAB_CHK_ASAN)
  __sanitizer_start_switch_fiber(save, bottom, size);
#else
  (void)save;
  (void)bottom;
  (void)size;
#endif
}

void asan_finish_switch(void* save, const void** bottom_old,
                        size_t* size_old) {
#if defined(CAB_CHK_ASAN)
  __sanitizer_finish_switch_fiber(save, bottom_old, size_old);
#else
  (void)save;
  (void)bottom_old;
  (void)size_old;
#endif
}

}  // namespace

Engine& cur() {
  if (g_engine == nullptr) {
    std::fprintf(stderr,
                 "chk: sync primitive used outside explore()/replay()\n");
    std::abort();
  }
  return *g_engine;
}

bool active() { return g_engine != nullptr; }

Engine::Engine(const Options& opts) : opts_(opts) {
  if (g_engine != nullptr) {
    std::fprintf(stderr, "chk: explore() is not reentrant\n");
    std::abort();
  }
  oplog_.resize(opts_.oplog_capacity);
  g_engine = this;
}

Engine::~Engine() { g_engine = nullptr; }

// Fiber entry. makecontext() only takes int arguments, so the engine and
// thread id travel via globals (single real thread — no races).
void trampoline_entry() {
  Engine& g = *g_engine;
  // First arrival on this fiber: complete the ASan switch and capture the
  // scheduler's stack bounds (reported as the "old" stack).
  detail::ThreadRec& t = *g.threads_[static_cast<std::size_t>(g.current_)];
  asan_finish_switch(t.asan_fake_stack, &g_sched_stack_bottom,
                     &g_sched_stack_size);
  try {
    t.fn();
  } catch (detail::AbortExec&) {
    // Unwound by abort_all() — fall through to finish.
  } catch (const std::exception& e) {
    g.fail_soft(std::string("model thread threw: ") + e.what());
  } catch (...) {
    g.fail_soft("model thread threw a non-std exception");
  }
  g.finish_current();
}

void Engine::finish_current() {
  detail::ThreadRec& t = *threads_[static_cast<std::size_t>(current_)];
  t.phase = detail::Phase::kFinished;
  wake_waiters(&t);
  // Back to the scheduler, permanently.
  asan_start_switch(&t.asan_fake_stack, g_sched_stack_bottom,
                    g_sched_stack_size);
  swapcontext(&t.ctx, &sched_ctx_);
  // Unreachable: the scheduler never resumes a finished thread.
  std::abort();
}

int Engine::spawn(std::function<void()> fn) {
  const int id = static_cast<int>(threads_.size());
  if (id >= kMaxThreads) {
    fail_now("chk: too many model threads (kMaxThreads)");
  }
  auto rec = std::make_unique<detail::ThreadRec>();
  rec->id = id;
  rec->fn = std::move(fn);
  rec->stack.resize(kFiberStackSize);
  getcontext(&rec->ctx);
  rec->ctx.uc_stack.ss_sp = rec->stack.data();
  rec->ctx.uc_stack.ss_size = rec->stack.size();
  rec->ctx.uc_link = nullptr;
  makecontext(&rec->ctx, trampoline_entry, 0);
  if (current_ >= 0) {
    // Thread creation is a happens-before edge: child starts with the
    // parent's clock.
    tick();
    rec->clock = threads_[static_cast<std::size_t>(current_)]->clock;
  }
  rec->clock.c[static_cast<std::size_t>(id)] = 1;
  threads_.push_back(std::move(rec));
  return id;
}

VectorClock& Engine::clock() {
  return threads_[static_cast<std::size_t>(current_)]->clock;
}

void Engine::tick() {
  detail::ThreadRec& t = *threads_[static_cast<std::size_t>(current_)];
  ++t.clock.c[static_cast<std::size_t>(t.id)];
}

void Engine::acquire_from(const VectorClock& src) {
  if (inline_mode()) return;
  clock().join(src);
}

void Engine::release_into(VectorClock& dst) {
  if (inline_mode()) return;
  tick();
  dst = clock();
}

void Engine::release_join(VectorClock& dst) {
  if (inline_mode()) return;
  tick();
  dst.join(clock());
}

void Engine::fence_op(std::memory_order mo) {
  (void)mo;
  op_point(nullptr, "fence");
  if (inline_mode()) return;
  // Conservative fence model: every fence participates in one global
  // fence order (joins from, then publishes into, a global fence clock).
  // Exact for seq_cst fences under the SC exploration; acquire/release
  // fences are strengthened to seq_cst (documented in DESIGN.md §6).
  clock().join(fence_clock_);
  tick();
  fence_clock_.join(clock());
}

void Engine::state_changed() {
  if (inline_mode()) return;
  // Shared state changed: spinners deprioritized by yield() get another
  // probe (their next probe can observe the new state).
  for (auto& t : threads_) {
    if (t->id != current_) t->yielded = false;
  }
}

bool Engine::inline_mode() const {
  return aborting_ && current_ >= 0 &&
         threads_[static_cast<std::size_t>(current_)]->unwinding;
}

void Engine::op_point(const void* obj, const char* what) {
  if (inline_mode()) return;  // unwinding: complete ops inline
  if (!oplog_.empty()) {
    char buf[160];
    std::snprintf(buf, sizeof buf, "T%d %s @%p", current_, what, obj);
    oplog_[oplog_next_ % oplog_.size()] = buf;
    ++oplog_next_;
  }
  if (++steps_ > opts_.max_steps) {
    truncated_ = true;
    detail::ThreadRec& t = *threads_[static_cast<std::size_t>(current_)];
    t.unwinding = true;
    aborting_ = true;
    throw detail::AbortExec{};
  }
  switch_to_scheduler();
  if (aborting_) {
    detail::ThreadRec& t = *threads_[static_cast<std::size_t>(current_)];
    if (!t.unwinding) {
      t.unwinding = true;
      throw detail::AbortExec{};
    }
  }
}

void Engine::switch_to_scheduler() {
  detail::ThreadRec& t = *threads_[static_cast<std::size_t>(current_)];
  asan_start_switch(&t.asan_fake_stack, g_sched_stack_bottom,
                    g_sched_stack_size);
  swapcontext(&t.ctx, &sched_ctx_);
  // Resumed by the scheduler.
  asan_finish_switch(t.asan_fake_stack, nullptr, nullptr);
}

void Engine::resume(int tid) {
  current_ = tid;
  detail::ThreadRec& t = *threads_[static_cast<std::size_t>(tid)];
  t.yielded = false;
  asan_start_switch(&sched_fake_stack_, t.stack.data(), t.stack.size());
  swapcontext(&sched_ctx_, &t.ctx);
  asan_finish_switch(sched_fake_stack_, nullptr, nullptr);
  last_run_ = tid;
  current_ = -1;
}

void Engine::yield_op() {
  detail::ThreadRec& t = *threads_[static_cast<std::size_t>(current_)];
  t.yielded = true;
  op_point(nullptr, "yield");
}

void Engine::block_on(const void* addr) {
  detail::ThreadRec& t = *threads_[static_cast<std::size_t>(current_)];
  t.phase = detail::Phase::kBlocked;
  t.wait_addr = addr;
  switch_to_scheduler();
  if (aborting_ && !t.unwinding) {
    t.unwinding = true;
    throw detail::AbortExec{};
  }
}

void Engine::wake_waiters(const void* addr) {
  for (auto& t : threads_) {
    if (t->phase == detail::Phase::kBlocked && t->wait_addr == addr) {
      t->phase = detail::Phase::kRunnable;
      t->wait_addr = nullptr;
    }
  }
}

void Engine::join_thread(int tid) {
  detail::ThreadRec& target = *threads_[static_cast<std::size_t>(tid)];
  for (;;) {
    op_point(&target, "thread.join");
    if (inline_mode()) return;
    if (target.phase == detail::Phase::kFinished) {
      // Join edge: the child's whole history happens-before the joiner.
      clock().join(target.clock);
      tick();
      return;
    }
    block_on(&target);
  }
}

void Engine::var_write(detail::RaceState& rs, const char* what) {
  if (inline_mode() || aborting_) return;
  VectorClock& clk = clock();
  if (rs.last_writer >= 0 &&
      rs.write_epoch > clk.c[static_cast<std::size_t>(rs.last_writer)]) {
    fail_now(std::string("data race: write to ") + what +
             " is concurrent with a write by T" +
             std::to_string(rs.last_writer));
  }
  for (int i = 0; i < kMaxThreads; ++i) {
    if (rs.read_epochs[static_cast<std::size_t>(i)] >
        clk.c[static_cast<std::size_t>(i)]) {
      fail_now(std::string("data race: write to ") + what +
               " is concurrent with a read by T" + std::to_string(i));
    }
  }
  tick();
  rs.last_writer = current_;
  rs.write_epoch = clk.c[static_cast<std::size_t>(current_)];
  rs.read_epochs.fill(0);
}

void Engine::var_read(detail::RaceState& rs, const char* what) {
  if (inline_mode() || aborting_) return;
  VectorClock& clk = clock();
  if (rs.last_writer >= 0 && rs.last_writer != current_ &&
      rs.write_epoch > clk.c[static_cast<std::size_t>(rs.last_writer)]) {
    fail_now(std::string("data race: read of ") + what +
             " is concurrent with a write by T" +
             std::to_string(rs.last_writer));
  }
  rs.read_epochs[static_cast<std::size_t>(current_)] =
      clk.c[static_cast<std::size_t>(current_)];
}

void Engine::fail_now(const std::string& msg) {
  fail_soft(msg);
  aborting_ = true;
  if (current_ >= 0) {
    threads_[static_cast<std::size_t>(current_)]->unwinding = true;
  }
  throw detail::AbortExec{};
}

void Engine::fail_soft(const std::string& msg) {
  if (!failed_) {
    failed_ = true;
    fail_msg_ = msg;
  }
}

int Engine::decide(int n_eligible) {
  if (n_eligible <= 1) return 0;
  if (pos_ < stack_.size()) {
    Decision& d = stack_[pos_++];
    if (d.n >= 0 && d.n != n_eligible) {
      // The model branched on something other than our choices.
      std::fprintf(stderr,
                   "chk: nondeterministic model (eligible-set size changed "
                   "under replay: %d vs %d at decision %zu)\n",
                   d.n, n_eligible, pos_ - 1);
      std::abort();
    }
    d.n = n_eligible;
    return d.choice;
  }
  stack_.push_back({0, n_eligible});
  ++pos_;
  return 0;
}

Engine::Outcome Engine::run_execution(const std::function<void()>& body) {
  threads_.clear();
  current_ = -1;
  last_run_ = -1;
  preemptions_ = 0;
  steps_ = 0;
  pos_ = 0;
  fence_clock_.clear();
  aborting_ = false;
  failed_ = false;
  truncated_ = false;
  fail_msg_.clear();
  oplog_next_ = 0;
  for (auto& s : oplog_) s.clear();

  spawn(body);  // model thread 0

  std::vector<int> eligible;
  eligible.reserve(kMaxThreads);
  for (;;) {
    eligible.clear();
    int runnable = 0;
    bool any_unfinished = false;
    for (auto& t : threads_) {
      if (t->phase != detail::Phase::kFinished) any_unfinished = true;
      if (t->phase == detail::Phase::kRunnable) {
        ++runnable;
        if (!t->yielded) eligible.push_back(t->id);
      }
    }
    if (!any_unfinished) {
      return failed_ ? Outcome::kFailed : Outcome::kDone;
    }
    if (runnable == 0) {
      fail_soft("deadlock: every live model thread is blocked");
      abort_all();
      return Outcome::kFailed;
    }
    if (eligible.empty()) {
      // Everyone runnable is a deprioritized spinner: let them all probe.
      for (auto& t : threads_) t->yielded = false;
      continue;
    }
    // CHESS-style preemption bound: once spent, a still-eligible previous
    // thread keeps running (voluntary switches unaffected).
    bool last_eligible = false;
    for (int id : eligible) last_eligible |= (id == last_run_);
    if (opts_.preemption_bound >= 0 && last_eligible &&
        preemptions_ >= opts_.preemption_bound) {
      eligible.assign(1, last_run_);
    }
    const int chosen =
        eligible[static_cast<std::size_t>(decide(static_cast<int>(eligible.size())))];
    if (last_eligible && chosen != last_run_) ++preemptions_;
    resume(chosen);
    if (failed_) {
      abort_all();
      return Outcome::kFailed;
    }
    if (truncated_) {
      abort_all();
      return Outcome::kTruncated;
    }
  }
}

void Engine::abort_all() {
  aborting_ = true;
  // Resume every unfinished fiber; each throws AbortExec at its pending
  // schedule point and unwinds (running destructors — later sync ops
  // complete inline via inline_mode()).
  for (std::size_t i = 0; i < threads_.size(); ++i) {
    if (threads_[i]->phase != detail::Phase::kFinished) {
      threads_[i]->phase = detail::Phase::kRunnable;
      resume(static_cast<int>(i));
    }
  }
}

bool Engine::backtrack() {
  while (!stack_.empty() && stack_.back().choice + 1 >= stack_.back().n) {
    stack_.pop_back();
  }
  if (stack_.empty()) return false;
  ++stack_.back().choice;
  return true;
}

void Engine::load_seed(const std::string& seed) {
  std::string s = seed;
  if (s.rfind(kSeedPrefix, 0) == 0) s = s.substr(sizeof(kSeedPrefix) - 1);
  stack_.clear();
  std::stringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, '.')) {
    if (tok.empty()) continue;
    stack_.push_back({std::atoi(tok.c_str()), -1});
  }
}

std::string Engine::seed_string() const {
  std::string s = kSeedPrefix;
  for (std::size_t i = 0; i < pos_ && i < stack_.size(); ++i) {
    if (i != 0) s += '.';
    s += std::to_string(stack_[i].choice);
  }
  return s;
}

std::vector<std::string> Engine::oplog() const {
  std::vector<std::string> out;
  const std::size_t n = oplog_.size();
  if (n == 0) return out;
  for (std::size_t i = (oplog_next_ > n ? oplog_next_ - n : 0);
       i < oplog_next_; ++i) {
    out.push_back(oplog_[i % n]);
  }
  return out;
}

std::string Result::summary() const {
  std::string s = "chk: " + std::to_string(interleavings) + " interleavings";
  s += exhausted ? " (exhausted)" : " (capped)";
  if (truncated > 0) s += ", " + std::to_string(truncated) + " truncated";
  s += ", max depth " + std::to_string(max_depth);
  if (failure.has_value()) {
    s += "\nFAILURE: " + failure->message + "\nseed: " + failure->seed;
  }
  return s;
}

Result explore(const std::function<void()>& body, const Options& opts) {
  Engine g(opts);
  Result r;
  for (;;) {
    const Engine::Outcome out = g.run_execution(body);
    r.max_depth = std::max(r.max_depth, g.steps());
    if (out == Engine::Outcome::kTruncated) {
      ++r.truncated;
    } else {
      ++r.interleavings;
    }
    if (out == Engine::Outcome::kFailed) {
      r.failure = Failure{g.fail_msg(), g.seed_string(), g.oplog()};
      return r;
    }
    if (opts.max_interleavings != 0 &&
        r.interleavings >= opts.max_interleavings) {
      return r;
    }
    if (!g.backtrack()) {
      r.exhausted = true;
      return r;
    }
  }
}

Result replay(const std::function<void()>& body, const std::string& seed,
              const Options& opts) {
  Engine g(opts);
  g.load_seed(seed);
  Result r;
  const Engine::Outcome out = g.run_execution(body);
  r.max_depth = g.steps();
  if (out == Engine::Outcome::kTruncated) {
    ++r.truncated;
  } else {
    ++r.interleavings;
  }
  if (out == Engine::Outcome::kFailed) {
    r.failure = Failure{g.fail_msg(), g.seed_string(), g.oplog()};
  }
  return r;
}

void assert_now(bool cond, const std::string& msg) {
  if (!cond) cur().fail_now("oracle failed: " + msg);
}

void yield() { cur().yield_op(); }

void fence(std::memory_order mo) { cur().fence_op(mo); }

}  // namespace cab::chk
