#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <ucontext.h>
#include <vector>

#include "chk/clock.hpp"

namespace cab::chk {

/// Exploration parameters of one explore()/replay() call.
struct Options {
  /// Stop after this many completed interleavings (0 = run the DFS to
  /// exhaustion). A capped run reports exhausted == false.
  std::uint64_t max_interleavings = 0;

  /// Per-execution step (schedule-point) budget. Exceeding it aborts the
  /// execution and counts it as truncated — the backstop against
  /// unbounded spins (a genuine livelock shows up as every execution of
  /// a branch truncating).
  std::uint64_t max_steps = 1u << 20;

  /// CHESS-style preemption bound: maximum number of *forced* context
  /// switches (away from a thread that could have kept running) per
  /// execution; voluntary switches (yield, block, finish) are always
  /// allowed, which keeps spin loops live. -1 = unbounded. Exhaustive
  /// search under a bound b proves every invariant for all schedules
  /// with <= b preemptions (see DESIGN.md §6 for the bounds used).
  int preemption_bound = -1;

  /// Keep the trailing op log of a failing execution (diagnostics).
  std::size_t oplog_capacity = 64;
};

/// A failed execution: the violated oracle plus a replayable schedule.
struct Failure {
  std::string message;
  std::string seed;               ///< pass to replay() to reproduce
  std::vector<std::string> ops;   ///< trailing op log of the failing run
};

struct Result {
  std::uint64_t interleavings = 0;  ///< completed distinct schedules
  std::uint64_t truncated = 0;      ///< runs cut by max_steps
  std::uint64_t max_depth = 0;      ///< longest schedule, in steps
  bool exhausted = false;           ///< DFS ran out of unexplored branches
  std::optional<Failure> failure;

  bool ok() const { return !failure.has_value(); }
  std::string summary() const;
};

namespace detail {

enum class Phase : std::uint8_t { kRunnable, kBlocked, kFinished };

struct ThreadRec {
  int id = 0;
  std::function<void()> fn;
  ucontext_t ctx{};
  std::vector<char> stack;
  void* asan_fake_stack = nullptr;
  Phase phase = Phase::kRunnable;
  bool yielded = false;
  bool unwinding = false;
  const void* wait_addr = nullptr;
  VectorClock clock;
};

/// Race-detector state of one chk::var cell.
struct RaceState {
  int last_writer = -1;
  std::uint32_t write_epoch = 0;
  std::array<std::uint32_t, kMaxThreads> read_epochs{};
};

/// Thrown through a model fiber to unwind it when the execution aborts
/// (oracle failure, race, deadlock, or step budget). Never escapes the
/// fiber trampoline.
struct AbortExec {};

}  // namespace detail

/// The per-exploration engine: a cooperative fiber scheduler (ucontext)
/// plus the DFS-with-replay explorer. All model threads run on fibers of
/// ONE real OS thread; every visible operation (atomic access, mutex
/// operation, yield) is a schedule point where control returns to the
/// scheduler, which picks the next thread to advance — recording the
/// choice so the exact interleaving can be re-run from a seed.
class Engine {
 public:
  explicit Engine(const Options& opts);
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // ---- hooks called by chk::atomic / chk::mutex / chk::thread / etc ----

  /// Schedule point: logs the op, charges the step budget, and hands
  /// control to the scheduler. On resume, throws AbortExec if the
  /// execution is aborting (unless this thread is already unwinding, in
  /// which case ops complete inline with no scheduling).
  void op_point(const void* obj, const char* what);

  /// True when ops must complete inline without scheduling or checking
  /// (the current thread is unwinding a dead execution).
  bool inline_mode() const;

  VectorClock& clock();                       ///< current thread's clock
  void tick();                                ///< bump current thread epoch
  void acquire_from(const VectorClock& src);  ///< reader joins location
  void release_into(VectorClock& dst);        ///< location := writer clock
  void release_join(VectorClock& dst);        ///< location |= writer clock
  void fence_op(std::memory_order mo);
  void state_changed();                       ///< wake spinners (clears yields)

  void var_write(detail::RaceState& rs, const char* what);
  void var_read(detail::RaceState& rs, const char* what);

  int spawn(std::function<void()> fn);
  void join_thread(int tid);
  void block_on(const void* addr);
  void wake_waiters(const void* addr);

  void yield_op();

  /// Oracle failure: records the message + seed and aborts the execution.
  [[noreturn]] void fail_now(const std::string& msg);
  /// Failure that must not throw (e.g. from destructors): recorded, and
  /// the scheduler aborts at the next step.
  void fail_soft(const std::string& msg);

  bool aborting() const { return aborting_; }

  // ---- driver ----

  enum class Outcome { kDone, kFailed, kTruncated };
  Outcome run_execution(const std::function<void()>& body);
  bool backtrack();                 ///< advance DFS; false when exhausted
  void load_seed(const std::string& seed);
  std::string seed_string() const;
  std::uint64_t steps() const { return steps_; }
  const std::string& fail_msg() const { return fail_msg_; }
  std::vector<std::string> oplog() const;

 private:
  friend void trampoline_entry();

  struct Decision {
    int choice = 0;
    int n = 0;  ///< number of eligible threads at this point (-1: replay)
  };

  void resume(int tid);
  void switch_to_scheduler();
  void abort_all();
  int decide(int n_eligible);
  void finish_current();

  Options opts_;
  std::vector<std::unique_ptr<detail::ThreadRec>> threads_;
  int current_ = -1;
  int last_run_ = -1;
  int preemptions_ = 0;
  ucontext_t sched_ctx_{};
  void* sched_fake_stack_ = nullptr;
  std::uint64_t steps_ = 0;
  VectorClock fence_clock_;

  std::vector<Decision> stack_;
  std::size_t pos_ = 0;

  bool aborting_ = false;
  bool failed_ = false;
  bool truncated_ = false;
  std::string fail_msg_;
  std::vector<std::string> oplog_;
  std::size_t oplog_next_ = 0;
};

/// The engine of the exploration in progress. Asserts one is active.
Engine& cur();
/// True while explore()/replay() is running a model body.
bool active();

/// Explore interleavings of `body` depth-first until exhaustion (or the
/// caps in `opts`). `body` runs once per interleaving as model thread 0;
/// it may spawn chk::thread's (join them all before returning) and must
/// be deterministic apart from scheduling.
Result explore(const std::function<void()>& body, const Options& opts = {});

/// Re-run the single interleaving recorded in `seed` (from
/// Result::failure). Returns that execution's outcome.
Result replay(const std::function<void()>& body, const std::string& seed,
              const Options& opts = {});

/// Oracle assertion: fails the current execution with a replayable seed.
void assert_now(bool cond, const std::string& msg);

/// Marks the calling model thread as spinning: the scheduler deprioritizes
/// it until another thread runs or shared state changes. Model spin loops
/// must call this (via Sync::spin_pause) or idle-probe loops would explore
/// unbounded schedules.
void yield();

void fence(std::memory_order mo);

}  // namespace cab::chk
