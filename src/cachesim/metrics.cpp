#include "cachesim/metrics.hpp"

#include <cstdint>
#include <vector>

namespace cab::cachesim {

void flush_metrics(const CacheHierarchy& h, obs::metrics::Registry& reg) {
  const int cores = h.topology().total_cores();
  const int writers = reg.writers();
  if (writers <= 0) return;

  struct Row {
    const char* name;
    std::uint64_t (CacheHierarchy::*get)(int) const;
  };
  static constexpr Row kRows[] = {
      {"cachesim.coherence_misses", &CacheHierarchy::core_coherence_misses},
      {"cachesim.invalidations", &CacheHierarchy::core_invalidations},
      {"cachesim.true_sharing_invalidations",
       &CacheHierarchy::core_true_sharing_invalidations},
      {"cachesim.false_sharing_invalidations",
       &CacheHierarchy::core_false_sharing_invalidations},
  };

  for (const Row& row : kRows) {
    std::vector<std::int64_t> per(static_cast<std::size_t>(writers), 0);
    for (int c = 0; c < cores; ++c)
      per[static_cast<std::size_t>(c % writers)] +=
          static_cast<std::int64_t>((h.*row.get)(c));
    auto& counter = reg.counter(row.name);
    for (int w = 0; w < writers; ++w)
      counter.store(w, per[static_cast<std::size_t>(w)]);
  }
}

}  // namespace cab::cachesim
