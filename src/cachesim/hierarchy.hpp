#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cachesim/cache.hpp"
#include "cachesim/coherence.hpp"
#include "cachesim/trace.hpp"
#include "hw/topology.hpp"

namespace cab::cachesim {

/// Where an access was satisfied.
enum class HitLevel : std::uint8_t { kL1, kL2, kL3, kMemory };

/// Per-level access/miss totals, shaped like the paper's Table IV rows.
struct LevelStats {
  std::uint64_t l1_accesses = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t l2_accesses = 0;
  std::uint64_t l2_misses = 0;
  std::uint64_t l3_accesses = 0;
  std::uint64_t l3_misses = 0;
  std::uint64_t invalidations = 0;
  /// Misses whose line was last removed by an invalidation, not an
  /// eviction — the coherence-traffic share of the miss totals above.
  std::uint64_t coherence_misses = 0;
  /// Invalidations classified against the victim's touched-byte history:
  /// true sharing overlaps the remote write's bytes, false sharing does
  /// not (disjoint bytes of one line — pure layout cost). Invalidations
  /// of untouched (prefetched) copies count in neither bucket.
  std::uint64_t true_sharing_invalidations = 0;
  std::uint64_t false_sharing_invalidations = 0;

  LevelStats& operator+=(const LevelStats& o) {
    l1_accesses += o.l1_accesses;
    l1_misses += o.l1_misses;
    l2_accesses += o.l2_accesses;
    l2_misses += o.l2_misses;
    l3_accesses += o.l3_accesses;
    l3_misses += o.l3_misses;
    invalidations += o.invalidations;
    coherence_misses += o.coherence_misses;
    true_sharing_invalidations += o.true_sharing_invalidations;
    false_sharing_invalidations += o.false_sharing_invalidations;
    return *this;
  }
};

/// Cost (virtual cycles) of streaming a trace through the hierarchy,
/// bucketed by where each line access hit.
struct StreamCost {
  std::uint64_t l1_hits = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t l3_hits = 0;
  std::uint64_t memory_fills = 0;

  std::uint64_t total_accesses() const {
    return l1_hits + l2_hits + l3_hits + memory_fills;
  }
};

/// Optional refinements over the paper's base L2+L3 model.
struct HierarchyOptions {
  /// Model a private L1D in front of each core's L2 (Opteron 8380:
  /// 64 KiB, 2-way; we default to 8-way for a generic modern shape).
  bool with_l1 = false;
  hw::CacheSpec l1{64ull << 10, 64, 8};

  /// Replacement policy used by every level.
  Replacement policy = Replacement::kLru;

  /// Sequential next-line prefetch: a memory fill of line L also fills
  /// L+1 into the same caches (no access counted) — first-order model of
  /// the Opteron's L1/L2 stream prefetcher.
  bool next_line_prefetch = false;

  std::uint64_t seed = 1;  ///< for Replacement::kRandom
};

/// The MSMC memory system of the paper's testbed: a private L2 per core
/// and one shared L3 per socket (Section V), optionally fronted by a
/// private L1. An L2 miss looks up the L3 of the core's socket; an L3
/// miss fills from memory. Writes invalidate every *other* cache's copy
/// (MESI-style write-invalidate) — cross-iteration reuse therefore
/// requires the same socket to have been the last writer, which is the
/// heart of the TRICI syndrome for iterative codes.
class CacheHierarchy {
 public:
  explicit CacheHierarchy(const hw::Topology& topo,
                          const HierarchyOptions& opts = {});

  /// One line access issued by `core`. `byte_mask` names which bytes of
  /// the line the access touches (directory granularity — see
  /// CoherenceDirectory::line_byte_mask); the default "all bytes" keeps
  /// whole-line callers working and makes every sharing conflict true
  /// sharing, i.e. the pre-coherence behaviour. On a write, each victim
  /// whose private copy the invalidation actually removed is classified
  /// true/false against its touched history.
  HitLevel access_line(int core, std::uint64_t line, bool write = false,
                       std::uint64_t byte_mask = ~0ull);

  /// Streams a whole range-compressed trace from `core`; returns the
  /// hit-level breakdown so cost models can price it.
  StreamCost stream(int core, const Trace& trace);

  LevelStats totals() const;
  LevelStats socket_stats(int socket) const;

  /// Per-core coherence counters (L1+L2 of that core), for per-writer
  /// metric slots and tests. The classification pair is zero when the
  /// directory is disabled (see directory()).
  std::uint64_t core_coherence_misses(int core) const;
  std::uint64_t core_invalidations(int core) const;
  std::uint64_t core_true_sharing_invalidations(int core) const;
  std::uint64_t core_false_sharing_invalidations(int core) const;

  std::uint64_t l2_misses_total() const { return totals().l2_misses; }
  std::uint64_t l3_misses_total() const { return totals().l3_misses; }

  void reset_stats();
  void invalidate_all();

  const hw::Topology& topology() const { return topo_; }
  const HierarchyOptions& options() const { return opts_; }

  /// The ownership directory, for tests and diagnostics. Null when the
  /// topology exceeds the directory's 64-core sharer mask — sharing
  /// classification degrades to zero counts there, never to wrong ones.
  const CoherenceDirectory* directory() const { return coh_.get(); }

 private:
  hw::Topology topo_;
  HierarchyOptions opts_;
  std::vector<Cache> l1_;  // one per core (empty unless opts_.with_l1)
  std::vector<Cache> l2_;  // one per core
  std::vector<Cache> l3_;  // one per socket
  std::unique_ptr<CoherenceDirectory> coh_;
  /// Per victim core, invalidations classified by sharing kind.
  std::vector<std::uint64_t> true_inv_;
  std::vector<std::uint64_t> false_inv_;
};

}  // namespace cab::cachesim
