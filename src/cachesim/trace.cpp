#include "cachesim/trace.hpp"

namespace cab::cachesim {

std::uint64_t trace_line_count(const Trace& t, std::uint32_t line_bytes) {
  std::uint64_t lines = 0;
  for (const RangeAccess& r : t) {
    if (r.bytes == 0) continue;
    std::uint64_t first = r.base / line_bytes;
    std::uint64_t last = (r.base + r.bytes - 1) / line_bytes;
    lines += (last - first + 1) * r.passes;
  }
  return lines;
}

std::uint64_t trace_bytes(const Trace& t) {
  std::uint64_t total = 0;
  for (const RangeAccess& r : t) total += r.bytes;
  return total;
}

}  // namespace cab::cachesim
