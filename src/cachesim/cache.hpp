#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "hw/topology.hpp"
#include "util/rng.hpp"

namespace cab::cachesim {

/// Replacement policy of a set-associative cache.
enum class Replacement : std::uint8_t {
  kLru,       ///< true LRU (move-to-front); the default model
  kRandom,    ///< random way eviction (seeded, reproducible)
  kTreePlru,  ///< tree pseudo-LRU (associativity must be a power of two)
};

const char* to_string(Replacement r);

/// Set-associative cache, trace-driven.
///
/// Addresses are presented as *line numbers* (byte address / line size).
/// The model is read/write agnostic at this level (coherence lives in
/// CacheHierarchy): the paper's TRICI effect is about capacity/compulsory/
/// conflict misses as a function of where the scheduler places data-
/// sharing tasks, which a placement-driven hit/miss model captures.
class Cache {
 public:
  explicit Cache(const hw::CacheSpec& spec,
                 Replacement policy = Replacement::kLru,
                 std::uint64_t seed = 1);

  /// Looks up one line; fills it (evicting per policy) on miss.
  /// Returns true on hit.
  bool access_line(std::uint64_t line);

  /// Inserts a line without counting an access (prefetch fill). No-op if
  /// already present.
  void fill_line(std::uint64_t line);

  /// Removes one line if present (coherence invalidation). Does not touch
  /// the access/miss counters. Returns true if the line was present.
  bool invalidate_line(std::uint64_t line);

  /// True if the line is currently cached (no counter or LRU update).
  bool contains(std::uint64_t line) const;

  std::uint64_t accesses() const { return accesses_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t hits() const { return accesses_ - misses_; }
  std::uint64_t invalidations() const { return invalidations_; }
  /// Misses on lines this cache lost to an invalidation (not an
  /// eviction): the coherence-traffic share of misses(). A prefetch
  /// fill of the line in between clears the marker — the copy was
  /// restored, so a later miss is capacity again.
  std::uint64_t coherence_misses() const { return coherence_misses_; }

  void reset_stats();
  /// Drop all contents (cold caches), keep stats.
  void invalidate_all();

  const hw::CacheSpec& spec() const { return spec_; }
  Replacement policy() const { return policy_; }

 private:
  /// Way index of `line` in its set, or -1.
  int find_way(std::size_t set, std::uint64_t line) const;
  /// Victim way per policy (empty ways first).
  std::uint32_t pick_victim(std::size_t set);
  void touch(std::size_t set, std::uint32_t way);

  hw::CacheSpec spec_;
  Replacement policy_;
  std::uint64_t set_count_;
  std::uint32_t assoc_;
  /// tags_[set*assoc + way]; kInvalid marks empty ways.
  std::vector<std::uint64_t> tags_;
  /// kLru: recency rank per way (0 = most recent).
  /// kTreePlru: per-set tree bits (bit i of the set's word).
  std::vector<std::uint32_t> meta_;
  util::Xorshift64 rng_;
  /// Lines removed by invalidate_line and not yet re-established; a miss
  /// on one of these is a coherence miss.
  std::unordered_set<std::uint64_t> invalidated_;
  std::uint64_t accesses_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t invalidations_ = 0;
  std::uint64_t coherence_misses_ = 0;

  static constexpr std::uint64_t kInvalid = ~0ull;
};

}  // namespace cab::cachesim
