#include "cachesim/coherence.hpp"

#include <algorithm>
#include <cassert>

namespace cab::cachesim {

const char* to_string(Sharing s) {
  switch (s) {
    case Sharing::kTrue:
      return "true";
    case Sharing::kFalse:
      return "false";
    case Sharing::kUntouched:
      return "untouched";
  }
  return "?";
}

CoherenceDirectory::CoherenceDirectory(int cores, std::uint32_t line_bytes)
    : cores_(cores),
      line_bytes_(line_bytes),
      chunk_(std::max<std::uint32_t>(1, line_bytes / 64)) {
  assert(cores_ > 0 && cores_ <= 64);
  assert(line_bytes_ > 0);
}

std::uint64_t CoherenceDirectory::line_byte_mask(std::uint64_t base,
                                                 std::uint64_t bytes,
                                                 std::uint64_t line) const {
  if (bytes == 0) return 0;
  const std::uint64_t line_lo = line * line_bytes_;
  const std::uint64_t line_hi = line_lo + line_bytes_;
  const std::uint64_t lo = std::max(base, line_lo);
  const std::uint64_t hi = std::min(base + bytes, line_hi);
  if (lo >= hi) return 0;
  const std::uint64_t first = (lo - line_lo) / chunk_;
  const std::uint64_t last = (hi - 1 - line_lo) / chunk_;
  const std::uint64_t width = last - first + 1;
  const std::uint64_t run =
      width >= 64 ? ~0ull : ((1ull << width) - 1) << first;
  return run;
}

CoherenceDirectory::LineState& CoherenceDirectory::state(std::uint64_t line) {
  auto& st = lines_[line];
  if (st.touched.empty()) st.touched.assign(static_cast<size_t>(cores_), 0);
  return st;
}

void CoherenceDirectory::on_read(int core, std::uint64_t line,
                                 std::uint64_t mask) {
  auto& st = state(line);
  st.sharers |= 1ull << core;
  st.touched[static_cast<size_t>(core)] |= mask;
}

void CoherenceDirectory::on_fill(int core, std::uint64_t line) {
  // Sharer, not owner, and no touched bytes: a prefetched copy carries
  // no access history, so a later remote write finds it kUntouched.
  auto& st = state(line);
  st.sharers |= 1ull << core;
}

Sharing CoherenceDirectory::classify_and_drop(int victim, std::uint64_t line,
                                              std::uint64_t write_mask) {
  auto& st = state(line);
  const std::uint64_t bit = 1ull << victim;
  const std::uint64_t t = st.touched[static_cast<size_t>(victim)];
  st.sharers &= ~bit;
  st.touched[static_cast<size_t>(victim)] = 0;
  if (st.owner == victim) st.owner = -1;
  if (t == 0) return Sharing::kUntouched;
  return (t & write_mask) != 0 ? Sharing::kTrue : Sharing::kFalse;
}

void CoherenceDirectory::drop(int core, std::uint64_t line) {
  auto it = lines_.find(line);
  if (it == lines_.end()) return;
  auto& st = it->second;
  st.sharers &= ~(1ull << core);
  if (!st.touched.empty()) st.touched[static_cast<size_t>(core)] = 0;
  if (st.owner == core) st.owner = -1;
}

void CoherenceDirectory::on_write(int core, std::uint64_t line,
                                  std::uint64_t mask) {
  auto& st = state(line);
  st.owner = core;
  st.sharers = 1ull << core;
  std::fill(st.touched.begin(), st.touched.end(), 0);
  st.touched[static_cast<size_t>(core)] = mask;
}

int CoherenceDirectory::owner(std::uint64_t line) const {
  auto it = lines_.find(line);
  return it == lines_.end() ? -1 : it->second.owner;
}

std::uint64_t CoherenceDirectory::sharers(std::uint64_t line) const {
  auto it = lines_.find(line);
  return it == lines_.end() ? 0 : it->second.sharers;
}

std::uint64_t CoherenceDirectory::touched(int core, std::uint64_t line) const {
  auto it = lines_.find(line);
  if (it == lines_.end() || it->second.touched.empty()) return 0;
  return it->second.touched[static_cast<size_t>(core)];
}

void CoherenceDirectory::reset() { lines_.clear(); }

}  // namespace cab::cachesim
