#pragma once

#include "cachesim/hierarchy.hpp"
#include "obs/metrics/registry.hpp"

namespace cab::cachesim {

/// Flushes the hierarchy's coherence counters into the metrics registry
/// as cumulative per-writer counters (writer = core, folded modulo the
/// registry's writer count when the topology is wider):
///
///   cachesim.coherence_misses            (per-core L1+L2)
///   cachesim.invalidations               (per-core L1+L2)
///   cachesim.true_sharing_invalidations  (per victim core)
///   cachesim.false_sharing_invalidations (per victim core)
///
/// Sync-point semantics like the WorkerStats flush: call while the
/// simulation is quiescent; values overwrite (Counter::store), so
/// repeated flushes are idempotent for an unchanged hierarchy.
void flush_metrics(const CacheHierarchy& h, obs::metrics::Registry& reg);

}  // namespace cab::cachesim
