#include "cachesim/hierarchy.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace cab::cachesim {

CacheHierarchy::CacheHierarchy(const hw::Topology& topo,
                               const HierarchyOptions& opts)
    : topo_(topo), opts_(opts) {
  std::uint64_t seed = opts.seed;
  if (opts_.with_l1) {
    l1_.reserve(static_cast<std::size_t>(topo_.total_cores()));
    for (int c = 0; c < topo_.total_cores(); ++c)
      l1_.emplace_back(opts_.l1, opts_.policy, util::splitmix64(seed));
  }
  l2_.reserve(static_cast<std::size_t>(topo_.total_cores()));
  for (int c = 0; c < topo_.total_cores(); ++c)
    l2_.emplace_back(topo_.l2(), opts_.policy, util::splitmix64(seed));
  l3_.reserve(static_cast<std::size_t>(topo_.sockets()));
  for (int s = 0; s < topo_.sockets(); ++s)
    l3_.emplace_back(topo_.l3(), opts_.policy, util::splitmix64(seed));
  if (topo_.total_cores() <= 64) {
    coh_ = std::make_unique<CoherenceDirectory>(topo_.total_cores(),
                                                topo_.l2().line_bytes);
    true_inv_.assign(static_cast<std::size_t>(topo_.total_cores()), 0);
    false_inv_.assign(static_cast<std::size_t>(topo_.total_cores()), 0);
  }
}

HitLevel CacheHierarchy::access_line(int core, std::uint64_t line, bool write,
                                     std::uint64_t byte_mask) {
  CAB_CHECK(core >= 0 && core < topo_.total_cores(), "core out of range");
  const int my_socket = topo_.socket_of(core);
  if (write) {
    // Write-invalidate: the writer gains exclusive ownership; every other
    // cache's copy dies. The writer's own caches keep (and fill) the line.
    for (int c = 0; c < topo_.total_cores(); ++c) {
      if (c == core) continue;
      bool removed = false;
      if (opts_.with_l1)
        removed |= l1_[static_cast<std::size_t>(c)].invalidate_line(line);
      removed |= l2_[static_cast<std::size_t>(c)].invalidate_line(line);
      if (coh_) {
        if (removed) {
          // Only a copy the invalidation actually killed is classified:
          // the directory's sharer bits can be stale (silent evictions).
          switch (coh_->classify_and_drop(c, line, byte_mask)) {
            case Sharing::kTrue:
              ++true_inv_[static_cast<std::size_t>(c)];
              break;
            case Sharing::kFalse:
              ++false_inv_[static_cast<std::size_t>(c)];
              break;
            case Sharing::kUntouched:
              break;  // prefetched, never accessed: plain invalidation
          }
        } else {
          coh_->drop(c, line);
        }
      }
    }
    for (int s = 0; s < topo_.sockets(); ++s) {
      if (s != my_socket)
        l3_[static_cast<std::size_t>(s)].invalidate_line(line);
    }
    if (coh_) coh_->on_write(core, line, byte_mask);
  } else if (coh_) {
    coh_->on_read(core, line, byte_mask);
  }

  HitLevel level;
  if (opts_.with_l1 && l1_[static_cast<std::size_t>(core)].access_line(line)) {
    level = HitLevel::kL1;
  } else if (l2_[static_cast<std::size_t>(core)].access_line(line)) {
    level = HitLevel::kL2;
    if (opts_.with_l1) l1_[static_cast<std::size_t>(core)].fill_line(line);
  } else if (l3_[static_cast<std::size_t>(my_socket)].access_line(line)) {
    level = HitLevel::kL3;
    if (opts_.with_l1) l1_[static_cast<std::size_t>(core)].fill_line(line);
  } else {
    level = HitLevel::kMemory;
    if (opts_.with_l1) l1_[static_cast<std::size_t>(core)].fill_line(line);
    if (opts_.next_line_prefetch) {
      // Stream prefetcher: pull the next line alongside the demand fill.
      // The directory sees a fill, not an access: the copy is shared
      // with no touched bytes and no ownership, so a remote write later
      // invalidates it as kUntouched rather than silently-exclusive.
      const std::uint64_t next = line + 1;
      if (opts_.with_l1) l1_[static_cast<std::size_t>(core)].fill_line(next);
      l2_[static_cast<std::size_t>(core)].fill_line(next);
      l3_[static_cast<std::size_t>(my_socket)].fill_line(next);
      if (coh_) coh_->on_fill(core, next);
    }
  }
  return level;
}

StreamCost CacheHierarchy::stream(int core, const Trace& trace) {
  StreamCost cost;
  const std::uint32_t line_bytes = topo_.l2().line_bytes;
  for (const RangeAccess& r : trace) {
    if (r.bytes == 0) continue;
    const std::uint64_t first = r.base / line_bytes;
    const std::uint64_t last = (r.base + r.bytes - 1) / line_bytes;
    for (std::uint32_t p = 0; p < r.passes; ++p) {
      for (std::uint64_t line = first; line <= last; ++line) {
        // Interior lines of a range are fully covered; only the first
        // and last line of the range can be partially touched, which is
        // exactly what distinguishes false from true sharing when two
        // cores' ranges cohabit a boundary line.
        const std::uint64_t mask =
            coh_ ? coh_->line_byte_mask(r.base, r.bytes, line) : ~0ull;
        switch (access_line(core, line, r.write, mask)) {
          case HitLevel::kL1: ++cost.l1_hits; break;
          case HitLevel::kL2: ++cost.l2_hits; break;
          case HitLevel::kL3: ++cost.l3_hits; break;
          case HitLevel::kMemory: ++cost.memory_fills; break;
        }
      }
    }
  }
  return cost;
}

LevelStats CacheHierarchy::totals() const {
  LevelStats s;
  for (const Cache& c : l1_) {
    s.l1_accesses += c.accesses();
    s.l1_misses += c.misses();
    s.invalidations += c.invalidations();
    s.coherence_misses += c.coherence_misses();
  }
  for (const Cache& c : l2_) {
    s.l2_accesses += c.accesses();
    s.l2_misses += c.misses();
    s.invalidations += c.invalidations();
    s.coherence_misses += c.coherence_misses();
  }
  for (const Cache& c : l3_) {
    s.l3_accesses += c.accesses();
    s.l3_misses += c.misses();
    s.invalidations += c.invalidations();
    s.coherence_misses += c.coherence_misses();
  }
  for (std::uint64_t v : true_inv_) s.true_sharing_invalidations += v;
  for (std::uint64_t v : false_inv_) s.false_sharing_invalidations += v;
  return s;
}

LevelStats CacheHierarchy::socket_stats(int socket) const {
  CAB_CHECK(socket >= 0 && socket < topo_.sockets(), "socket out of range");
  LevelStats s;
  for (int c = topo_.first_core_of(socket);
       c < topo_.first_core_of(socket) + topo_.cores_per_socket(); ++c) {
    if (opts_.with_l1) {
      s.l1_accesses += l1_[static_cast<std::size_t>(c)].accesses();
      s.l1_misses += l1_[static_cast<std::size_t>(c)].misses();
      s.coherence_misses += l1_[static_cast<std::size_t>(c)].coherence_misses();
    }
    s.l2_accesses += l2_[static_cast<std::size_t>(c)].accesses();
    s.l2_misses += l2_[static_cast<std::size_t>(c)].misses();
    s.coherence_misses += l2_[static_cast<std::size_t>(c)].coherence_misses();
    if (!true_inv_.empty()) {
      s.true_sharing_invalidations += true_inv_[static_cast<std::size_t>(c)];
      s.false_sharing_invalidations += false_inv_[static_cast<std::size_t>(c)];
    }
  }
  s.l3_accesses += l3_[static_cast<std::size_t>(socket)].accesses();
  s.l3_misses += l3_[static_cast<std::size_t>(socket)].misses();
  s.coherence_misses += l3_[static_cast<std::size_t>(socket)].coherence_misses();
  return s;
}

std::uint64_t CacheHierarchy::core_coherence_misses(int core) const {
  CAB_CHECK(core >= 0 && core < topo_.total_cores(), "core out of range");
  std::uint64_t v = l2_[static_cast<std::size_t>(core)].coherence_misses();
  if (opts_.with_l1) v += l1_[static_cast<std::size_t>(core)].coherence_misses();
  return v;
}

std::uint64_t CacheHierarchy::core_invalidations(int core) const {
  CAB_CHECK(core >= 0 && core < topo_.total_cores(), "core out of range");
  std::uint64_t v = l2_[static_cast<std::size_t>(core)].invalidations();
  if (opts_.with_l1) v += l1_[static_cast<std::size_t>(core)].invalidations();
  return v;
}

std::uint64_t CacheHierarchy::core_true_sharing_invalidations(int core) const {
  CAB_CHECK(core >= 0 && core < topo_.total_cores(), "core out of range");
  return true_inv_.empty() ? 0 : true_inv_[static_cast<std::size_t>(core)];
}

std::uint64_t CacheHierarchy::core_false_sharing_invalidations(int core) const {
  CAB_CHECK(core >= 0 && core < topo_.total_cores(), "core out of range");
  return false_inv_.empty() ? 0 : false_inv_[static_cast<std::size_t>(core)];
}

void CacheHierarchy::reset_stats() {
  for (Cache& c : l1_) c.reset_stats();
  for (Cache& c : l2_) c.reset_stats();
  for (Cache& c : l3_) c.reset_stats();
  std::fill(true_inv_.begin(), true_inv_.end(), 0);
  std::fill(false_inv_.begin(), false_inv_.end(), 0);
}

void CacheHierarchy::invalidate_all() {
  for (Cache& c : l1_) c.invalidate_all();
  for (Cache& c : l2_) c.invalidate_all();
  for (Cache& c : l3_) c.invalidate_all();
  // Cold caches also mean a cold directory: no copy survives, so no
  // sharer history should either.
  if (coh_) coh_->reset();
}

}  // namespace cab::cachesim
