#pragma once

#include <cstdint>
#include <vector>

namespace cab::cachesim {

/// One contiguous memory region touched sequentially, `passes` times.
/// Traces are range-compressed: the paper's benchmarks sweep rows/blocks of
/// dense arrays, so (base, bytes, passes) captures each task's access
/// stream exactly while keeping traces tiny.
struct RangeAccess {
  std::uint64_t base = 0;   ///< starting byte address (virtual)
  std::uint64_t bytes = 0;  ///< extent of the region
  std::uint32_t passes = 1; ///< how many times the region is swept
  /// Writes invalidate the line in every *other* socket's caches
  /// (MESI-style write-invalidate). This is what makes cross-iteration
  /// reuse conditional on the same socket being the last writer — the
  /// heart of the TRICI syndrome for iterative stencil codes.
  bool write = false;
};

using Trace = std::vector<RangeAccess>;

/// Total cache-line accesses a trace generates with the given line size.
std::uint64_t trace_line_count(const Trace& t, std::uint32_t line_bytes);

/// Total distinct bytes referenced (footprint, ignoring passes/overlap).
std::uint64_t trace_bytes(const Trace& t);

/// Owns traces for a whole application DAG; TaskGraph nodes refer to
/// entries by index (TaskGraph::Node::pre_trace / post_trace).
class TraceStore {
 public:
  std::int32_t add(Trace t) {
    traces_.push_back(std::move(t));
    return static_cast<std::int32_t>(traces_.size() - 1);
  }

  const Trace& get(std::int32_t id) const { return traces_[static_cast<std::size_t>(id)]; }
  bool has(std::int32_t id) const {
    return id >= 0 && static_cast<std::size_t>(id) < traces_.size();
  }
  std::size_t size() const { return traces_.size(); }

 private:
  std::vector<Trace> traces_;
};

}  // namespace cab::cachesim
