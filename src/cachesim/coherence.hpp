#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace cab::cachesim {

/// How an invalidated private copy relates to the bytes the remote write
/// touched (Cole & Ramachandran's false-sharing taxonomy for randomized
/// work stealing): two accessors on *disjoint* bytes of one line that
/// still invalidate each other are false sharing — pure data-layout
/// cost, invisible to a capacity/conflict-only model.
enum class Sharing : std::uint8_t {
  kTrue,       ///< the victim had touched a byte the write overwrites
  kFalse,      ///< the victim touched only bytes the write does not
  kUntouched,  ///< the victim's copy was never accessed (prefetch fill)
};

const char* to_string(Sharing s);

/// MESI-lite ownership directory over cache lines: per line, the current
/// owner (last writer, -1 while the line is merely shared), the sharer
/// set (one bit per core), and — the part MESI itself does not keep —
/// which bytes each sharer has actually touched since its copy was
/// established. That byte history is what lets a remote-write
/// invalidation be classified as true vs false sharing.
///
/// Byte granularity: a 64-bit mask per (line, core); for lines wider than
/// 64 bytes one bit covers line_bytes/64 bytes. line_byte_mask() converts
/// a [base, base+bytes) byte range into the mask for one line.
///
/// The directory deliberately models *accesses*, not residency: caches
/// evict silently, so a sharer bit may be stale. CacheHierarchy therefore
/// only asks for a classification when an invalidation actually removed a
/// copy from the victim's private caches; stale sharers are dropped
/// silently (drop()). A fill (prefetch) registers a sharer with an empty
/// touched mask and never ownership — see on_fill().
class CoherenceDirectory {
 public:
  CoherenceDirectory(int cores, std::uint32_t line_bytes);

  /// Mask of the bits of `line` covered by the byte range
  /// [base, base + bytes); zero when the range misses the line entirely.
  std::uint64_t line_byte_mask(std::uint64_t base, std::uint64_t bytes,
                               std::uint64_t line) const;

  /// A demand read: `core` becomes a sharer and accumulates `mask` into
  /// its touched bytes.
  void on_read(int core, std::uint64_t line, std::uint64_t mask);

  /// A fill that is not a demand access (prefetch): `core` becomes a
  /// sharer but touches nothing and gains no ownership — the satellite
  /// fix for fills silently granting exclusivity. A later invalidation of
  /// this copy classifies kUntouched, not false sharing.
  void on_fill(int core, std::uint64_t line);

  /// Classifies `victim`'s copy against a remote write of `write_mask`
  /// and removes the victim from the sharer set. Call only when the
  /// victim's private caches actually held the line.
  Sharing classify_and_drop(int victim, std::uint64_t line,
                            std::uint64_t write_mask);

  /// Drops a stale sharer without classifying (copy already evicted).
  void drop(int core, std::uint64_t line);

  /// A write by `core`: after every other copy has been invalidated (and
  /// classified), the writer becomes sole owner and its touched history
  /// restarts at `mask` — the classification interval for everyone else
  /// begins anew at this write.
  void on_write(int core, std::uint64_t line, std::uint64_t mask);

  /// Last writer of `line`, or -1 while unwritten/merely shared.
  int owner(std::uint64_t line) const;
  /// Sharer bits (bit c = core c holds or held a copy since last write).
  std::uint64_t sharers(std::uint64_t line) const;
  /// Bytes `core` touched on `line` since its copy was established.
  std::uint64_t touched(int core, std::uint64_t line) const;

  /// Forgets everything (cold caches).
  void reset();

  std::uint32_t line_bytes() const { return line_bytes_; }

 private:
  struct LineState {
    int owner = -1;
    std::uint64_t sharers = 0;
    std::vector<std::uint64_t> touched;  ///< per core, chunk-granular
  };

  LineState& state(std::uint64_t line);

  int cores_;
  std::uint32_t line_bytes_;
  std::uint32_t chunk_;  ///< bytes per mask bit (line_bytes / 64, min 1)
  std::unordered_map<std::uint64_t, LineState> lines_;
};

}  // namespace cab::cachesim
