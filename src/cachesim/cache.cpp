#include "cachesim/cache.hpp"

#include "util/assert.hpp"

namespace cab::cachesim {

const char* to_string(Replacement r) {
  switch (r) {
    case Replacement::kLru: return "LRU";
    case Replacement::kRandom: return "random";
    case Replacement::kTreePlru: return "tree-PLRU";
  }
  return "?";
}

Cache::Cache(const hw::CacheSpec& spec, Replacement policy, std::uint64_t seed)
    : spec_(spec),
      policy_(policy),
      set_count_(spec.sets()),
      assoc_(spec.associativity),
      rng_(seed) {
  CAB_CHECK(set_count_ >= 1, "cache must have at least one set");
  if (policy_ == Replacement::kTreePlru) {
    CAB_CHECK((assoc_ & (assoc_ - 1)) == 0,
              "tree-PLRU needs power-of-two associativity");
    CAB_CHECK(assoc_ <= 32, "tree-PLRU supports up to 32 ways here");
  }
  tags_.assign(set_count_ * assoc_, kInvalid);
  meta_.assign(set_count_ * (policy_ == Replacement::kTreePlru ? 1 : assoc_),
               0);
  if (policy_ == Replacement::kLru) {
    // Initialize recency ranks 0..assoc-1 per set.
    for (std::size_t s = 0; s < set_count_; ++s)
      for (std::uint32_t w = 0; w < assoc_; ++w) meta_[s * assoc_ + w] = w;
  }
}

int Cache::find_way(std::size_t set, std::uint64_t line) const {
  const std::uint64_t* ways = &tags_[set * assoc_];
  for (std::uint32_t i = 0; i < assoc_; ++i) {
    if (ways[i] == line) return static_cast<int>(i);
  }
  return -1;
}

void Cache::touch(std::size_t set, std::uint32_t way) {
  switch (policy_) {
    case Replacement::kLru: {
      // Promote `way` to rank 0; bump everything younger than it.
      std::uint32_t* rank = &meta_[set * assoc_];
      const std::uint32_t old = rank[way];
      for (std::uint32_t w = 0; w < assoc_; ++w) {
        if (rank[w] < old) ++rank[w];
      }
      rank[way] = 0;
      break;
    }
    case Replacement::kTreePlru: {
      // Flip the tree path bits to point *away* from this way.
      std::uint32_t& bits = meta_[set];
      std::uint32_t node = 1;
      for (std::uint32_t span = assoc_ / 2; span >= 1; span /= 2) {
        const bool right = (way / span) % 2 != 0;
        if (right) {
          bits &= ~(1u << node);  // point left (away)
          node = node * 2 + 1;
        } else {
          bits |= (1u << node);  // point right (away)
          node = node * 2;
        }
      }
      break;
    }
    case Replacement::kRandom:
      break;  // stateless
  }
}

std::uint32_t Cache::pick_victim(std::size_t set) {
  // Empty ways first, regardless of policy.
  const std::uint64_t* ways = &tags_[set * assoc_];
  for (std::uint32_t i = 0; i < assoc_; ++i) {
    if (ways[i] == kInvalid) return i;
  }
  switch (policy_) {
    case Replacement::kLru: {
      const std::uint32_t* rank = &meta_[set * assoc_];
      std::uint32_t victim = 0;
      for (std::uint32_t w = 0; w < assoc_; ++w) {
        if (rank[w] == assoc_ - 1) {
          victim = w;
          break;
        }
      }
      return victim;
    }
    case Replacement::kRandom:
      return static_cast<std::uint32_t>(rng_.next_below(assoc_));
    case Replacement::kTreePlru: {
      const std::uint32_t bits = meta_[set];
      std::uint32_t node = 1;
      std::uint32_t way = 0;
      for (std::uint32_t span = assoc_ / 2; span >= 1; span /= 2) {
        const bool right = (bits >> node) & 1u;
        if (right) {
          way += span;
          node = node * 2 + 1;
        } else {
          node = node * 2;
        }
      }
      return way;
    }
  }
  return 0;
}

bool Cache::access_line(std::uint64_t line) {
  ++accesses_;
  const std::size_t set = static_cast<std::size_t>(line % set_count_);
  const int hit_way = find_way(set, line);
  if (hit_way >= 0) {
    touch(set, static_cast<std::uint32_t>(hit_way));
    return true;
  }
  ++misses_;
  if (auto it = invalidated_.find(line); it != invalidated_.end()) {
    ++coherence_misses_;
    invalidated_.erase(it);
  }
  const std::uint32_t victim = pick_victim(set);
  tags_[set * assoc_ + victim] = line;
  touch(set, victim);
  return false;
}

void Cache::fill_line(std::uint64_t line) {
  invalidated_.erase(line);
  const std::size_t set = static_cast<std::size_t>(line % set_count_);
  if (find_way(set, line) >= 0) return;
  const std::uint32_t victim = pick_victim(set);
  tags_[set * assoc_ + victim] = line;
  touch(set, victim);
}

bool Cache::invalidate_line(std::uint64_t line) {
  const std::size_t set = static_cast<std::size_t>(line % set_count_);
  const int way = find_way(set, line);
  if (way < 0) return false;
  tags_[set * assoc_ + static_cast<std::uint32_t>(way)] = kInvalid;
  ++invalidations_;
  invalidated_.insert(line);
  // LRU rank of the invalidated way is demoted to oldest so the empty
  // way is reused promptly (pick_victim prefers empty ways anyway).
  return true;
}

bool Cache::contains(std::uint64_t line) const {
  const std::size_t set = static_cast<std::size_t>(line % set_count_);
  return find_way(set, line) >= 0;
}

void Cache::reset_stats() {
  accesses_ = 0;
  misses_ = 0;
  invalidations_ = 0;
  coherence_misses_ = 0;
}

void Cache::invalidate_all() {
  tags_.assign(set_count_ * assoc_, kInvalid);
  // Cold caches: the subsequent compulsory misses are not coherence.
  invalidated_.clear();
}

}  // namespace cab::cachesim
