#include "svc/admission.hpp"

#include "util/assert.hpp"

namespace cab::svc {

int TieredQueue::effective_tier(const detail::JobRecord& r,
                                std::uint64_t now_ns) const {
  if (cooldown_ns_ == 0) return 0;  // tiering disabled: FIFO
  const std::uint64_t age = now_ns > r.submit_ns ? now_ns - r.submit_ns : 0;
  const std::uint64_t promotions = age / cooldown_ns_;
  const auto tier = static_cast<std::uint64_t>(r.tier);
  return promotions >= tier ? 0 : static_cast<int>(tier - promotions);
}

void TieredQueue::push(std::shared_ptr<detail::JobRecord> r) {
  CAB_CHECK(q_.size() < cap_, "TieredQueue::push on a full queue");
  q_.push_back(std::move(r));
}

std::shared_ptr<detail::JobRecord> TieredQueue::pop_best(
    std::uint64_t now_ns) {
  if (q_.empty()) return nullptr;
  // Linear scan: the queue is bounded (cap_), and a scan per dispatch is
  // cheaper than maintaining priority-ordered structure under the aging
  // rule (every entry's key changes with time).
  std::size_t best = 0;
  int best_tier = effective_tier(*q_[0], now_ns);
  for (std::size_t i = 1; i < q_.size(); ++i) {
    const int t = effective_tier(*q_[i], now_ns);
    if (t < best_tier ||
        (t == best_tier && q_[i]->seq < q_[best]->seq)) {
      best = i;
      best_tier = t;
    }
  }
  std::shared_ptr<detail::JobRecord> out = std::move(q_[best]);
  q_.erase(q_.begin() + static_cast<std::ptrdiff_t>(best));
  return out;
}

bool TieredQueue::remove(const detail::JobRecord* r) {
  for (std::size_t i = 0; i < q_.size(); ++i) {
    if (q_[i].get() == r) {
      q_.erase(q_.begin() + static_cast<std::ptrdiff_t>(i));
      return true;
    }
  }
  return false;
}

}  // namespace cab::svc
