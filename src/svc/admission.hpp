#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "svc/job.hpp"

namespace cab::svc {

/// Bounded tiered admission queue with cooldown-based anti-starvation
/// promotion (the scx_cake tier idea applied to jobs): a queued job's
/// *effective* tier is its declared tier minus one per
/// `promote_cooldown_ns` of queue age, floored at 0, so any job reaches
/// the most-urgent tier after tier * cooldown of waiting — a tier-0
/// flood can delay low-priority jobs but never starve them.
///
/// pop_best() returns the job with the lowest (effective tier, seq)
/// pair: strict priority between effective tiers, FIFO inside one.
///
/// Not itself thread-safe: every call happens under JobService's mutex,
/// which also makes (full? -> push) atomic for admission control.
class TieredQueue {
 public:
  /// `promote_cooldown_ns` == 0 disables tiering entirely (every queued
  /// job is effective tier 0, i.e. plain FIFO admission order).
  TieredQueue(std::size_t capacity, std::uint64_t promote_cooldown_ns)
      : cap_(capacity), cooldown_ns_(promote_cooldown_ns) {}

  std::size_t capacity() const { return cap_; }
  std::size_t size() const { return q_.size(); }
  bool empty() const { return q_.empty(); }
  bool full() const { return q_.size() >= cap_; }

  /// Effective tier of `r` at `now_ns` (declared tier minus promotions).
  int effective_tier(const detail::JobRecord& r, std::uint64_t now_ns) const;

  /// Enqueues; caller must have checked !full() under the same lock.
  void push(std::shared_ptr<detail::JobRecord> r);

  /// Removes and returns the best job, or nullptr when empty.
  std::shared_ptr<detail::JobRecord> pop_best(std::uint64_t now_ns);

  /// Removes a still-queued record (cancellation). Returns false if the
  /// record is not in the queue (already dispatched or never admitted).
  bool remove(const detail::JobRecord* r);

 private:
  std::vector<std::shared_ptr<detail::JobRecord>> q_;
  std::size_t cap_;
  std::uint64_t cooldown_ns_;
};

}  // namespace cab::svc
