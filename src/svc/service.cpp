#include "svc/service.hpp"

#include "dag/partition.hpp"
#include "obs/timeline.hpp"
#include "util/assert.hpp"

namespace cab::svc {

const char* to_string(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kRejected: return "rejected";
    case JobState::kCancelled: return "cancelled";
  }
  return "?";
}

const char* to_string(Backpressure b) {
  switch (b) {
    case Backpressure::kReject: return "reject";
    case Backpressure::kBlock: return "block";
  }
  return "?";
}

bool parse_backpressure(std::string_view s, Backpressure& out) {
  if (s == "reject") {
    out = Backpressure::kReject;
    return true;
  }
  if (s == "block") {
    out = Backpressure::kBlock;
    return true;
  }
  return false;
}

JobService::JobService(ServiceOptions opts)
    : opts_(std::move(opts)),
      queue_(opts_.queue_capacity, opts_.promote_cooldown_ns),
      alloc_(opts_.runtime.topo.sockets()) {
  // The adaptive controller profiles exclusive whole-machine epochs;
  // under multi-tenancy its stats reads would race other partitions
  // (run_on() enforces the same thing — fail at construction instead).
  CAB_CHECK(opts_.runtime.adapt.mode == adapt::Mode::kStatic,
            "JobService requires Options::adapt.mode == kStatic");
  rt_ = std::make_unique<runtime::Runtime>(opts_.runtime);
  if (opts_.runtime.metrics) {
    // Pre-registered so no registration ever happens concurrently with a
    // snapshot; values land in writer slot 0 at flush time (service-level
    // quantities, not per-worker ones).
    obs::metrics::Registry& reg = rt_->registry();
    m_submitted_ = &reg.counter("svc.submitted");
    m_admitted_ = &reg.counter("svc.admitted");
    m_rejected_ = &reg.counter("svc.rejected");
    m_completed_ = &reg.counter("svc.completed");
    m_failed_ = &reg.counter("svc.failed");
    m_cancelled_ = &reg.counter("svc.cancelled");
    m_promoted_ = &reg.counter("svc.promoted");
    m_queued_ns_ = &reg.counter("svc.queued_ns");
    m_running_jobs_ = &reg.gauge("svc.running_jobs");
    m_queue_depth_ = &reg.gauge("svc.queue_depth");
  }
  // One executor per squad: a running partition holds >= 1 squad, so at
  // most `sockets` jobs can execute concurrently — more executors could
  // only idle, fewer would leave free squads unusable.
  const int n = alloc_.total();
  executors_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    executors_.emplace_back([this] { executor_main(); });
  }
}

JobService::~JobService() { shutdown(); }

JobTicket JobService::reject_locked(
    const std::shared_ptr<detail::JobRecord>& rec, std::uint64_t now_ns) {
  ++counters_.rejected;
  {
    std::lock_guard<std::mutex> lk(rec->mu);
    rec->state = JobState::kRejected;
    rec->finish_ns = now_ns;
    rec->cv.notify_all();
  }
  return JobTicket(rec);
}

JobTicket JobService::submit(JobDesc desc) {
  CAB_CHECK(desc.body != nullptr, "submit(): job body must be callable");
  auto rec = std::make_shared<detail::JobRecord>();
  rec->body = std::move(desc.body);
  const int total = alloc_.total();  // immutable after construction
  rec->want_squads =
      desc.squads < 1 ? 1 : (desc.squads > total ? total : desc.squads);
  rec->boundary_level = desc.boundary_level;
  rec->input_bytes = desc.input_bytes;
  rec->tier =
      desc.tier < 0 ? 0 : (desc.tier > opts_.max_tier ? opts_.max_tier
                                                      : desc.tier);

  std::unique_lock<std::mutex> lk(mu_);
  rec->submit_ns = obs::now_ns();
  ++counters_.submitted;
  if (stopping_) return reject_locked(rec, rec->submit_ns);
  if (queue_.full()) {
    if (opts_.backpressure == Backpressure::kReject) {
      return reject_locked(rec, rec->submit_ns);
    }
    // blocking-ok by design: kBlock is the contract — the submitter asked
    // to ride out full-queue backpressure instead of handling rejection.
    space_cv_.wait(lk, [&] { return stopping_ || !queue_.full(); });
    if (stopping_) return reject_locked(rec, obs::now_ns());
  }
  rec->seq = next_seq_++;
  queue_.push(rec);
  ++counters_.admitted;
  counters_.queue_depth = static_cast<std::int64_t>(queue_.size());
  work_cv_.notify_one();
  return JobTicket(rec);
}

bool JobService::cancel(const JobTicket& ticket) {
  if (!ticket.valid()) return false;
  std::lock_guard<std::mutex> lk(mu_);
  if (!queue_.remove(ticket.rec_.get())) return false;  // running/terminal
  ++counters_.cancelled;
  counters_.queue_depth = static_cast<std::int64_t>(queue_.size());
  ticket.rec_->set_terminal(JobState::kCancelled, nullptr, obs::now_ns());
  space_cv_.notify_all();
  idle_cv_.notify_all();
  return true;
}

void JobService::executor_main() {
  for (;;) {
    std::shared_ptr<detail::JobRecord> job;
    std::vector<int> partition;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] {
        return (stopping_ && queue_.empty()) ||
               (!queue_.empty() && alloc_.free_count() > 0);
      });
      if (queue_.empty()) break;  // stopping, nothing left to dispatch
      const std::uint64_t now = obs::now_ns();
      job = queue_.pop_best(now);
      partition = alloc_.acquire(job->want_squads);
      CAB_CHECK(!partition.empty(), "dispatch without a free squad");
      counters_.queue_depth = static_cast<std::int64_t>(queue_.size());
      ++counters_.running_jobs;
      counters_.queued_ns +=
          now > job->submit_ns ? now - job->submit_ns : 0;
      if (queue_.effective_tier(*job, now) < job->tier) {
        ++counters_.promoted;
      }
      {
        std::lock_guard<std::mutex> jlk(job->mu);
        job->state = JobState::kRunning;
        job->start_ns = now;
        job->granted_squads = static_cast<int>(partition.size());
      }
      space_cv_.notify_all();  // the queue just shrank
    }
    run_job(job, partition);
  }
}

void JobService::run_job(const std::shared_ptr<detail::JobRecord>& job,
                         const std::vector<int>& partition) {
  std::int32_t bl = job->boundary_level;
  if (bl < 0) {
    // Eq. 4 relative to the *granted* partition: M = squads actually
    // owned, Sd = the job's declared input. run_on() degenerates
    // single-squad partitions to BL = 0 regardless.
    dag::PartitionParams p;
    p.branching = 2;
    p.sockets = static_cast<std::int32_t>(partition.size());
    p.input_bytes = job->input_bytes;
    p.shared_cache_bytes = opts_.runtime.topo.shared_cache_bytes();
    bl = dag::boundary_level(p);
  }
  std::exception_ptr err;
  try {
    rt_->run_on(partition, bl, std::move(job->body));
  } catch (...) {
    // run_on rethrows the job's first task exception once the partition
    // has drained — the squads are already quiescent and reusable here.
    err = std::current_exception();
  }
  const bool failed = err != nullptr;
  {
    // Counters first, ticket second, all under mu_ (lock order mu_ ->
    // job->mu, same as dispatch): a client that observed the terminal
    // ticket state and then calls counters() is guaranteed to see this
    // job counted, and drain() cannot return with the ticket unsettled.
    std::lock_guard<std::mutex> lk(mu_);
    alloc_.release(partition);
    --counters_.running_jobs;
    if (failed) {
      ++counters_.failed;
    } else {
      ++counters_.completed;
    }
    job->set_terminal(failed ? JobState::kFailed : JobState::kDone,
                      std::move(err), obs::now_ns());
    // Freed squads can unblock dispatches that found the allocator empty.
    work_cv_.notify_all();
    idle_cv_.notify_all();
  }
}

void JobService::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  // blocking-ok by design: drain() is the quiescence barrier.
  idle_cv_.wait(lk, [&] {
    return queue_.empty() && counters_.running_jobs == 0;
  });
}

void JobService::shutdown() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  for (auto& t : executors_) {
    if (t.joinable()) t.join();
  }
}

ServiceCounters JobService::counters() const {
  std::lock_guard<std::mutex> lk(mu_);
  ServiceCounters c = counters_;
  c.queue_depth = static_cast<std::int64_t>(queue_.size());
  return c;
}

obs::metrics::Snapshot JobService::metrics_snapshot() {
  if (m_submitted_ != nullptr) {
    std::lock_guard<std::mutex> lk(mu_);
    m_submitted_->store(0, static_cast<std::int64_t>(counters_.submitted));
    m_admitted_->store(0, static_cast<std::int64_t>(counters_.admitted));
    m_rejected_->store(0, static_cast<std::int64_t>(counters_.rejected));
    m_completed_->store(0, static_cast<std::int64_t>(counters_.completed));
    m_failed_->store(0, static_cast<std::int64_t>(counters_.failed));
    m_cancelled_->store(0, static_cast<std::int64_t>(counters_.cancelled));
    m_promoted_->store(0, static_cast<std::int64_t>(counters_.promoted));
    m_queued_ns_->store(0, static_cast<std::int64_t>(counters_.queued_ns));
    m_running_jobs_->set(0, counters_.running_jobs);
    m_queue_depth_->set(0, static_cast<std::int64_t>(queue_.size()));
  }
  // Inherits the runtime's between-epochs contract check: fails loudly
  // if any partition is still executing.
  return rt_->metrics_snapshot();
}

}  // namespace cab::svc
