#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/metrics/registry.hpp"
#include "runtime/runtime.hpp"
#include "svc/admission.hpp"
#include "svc/job.hpp"
#include "svc/partition.hpp"

namespace cab::svc {

/// What submit() does when the admission queue is full.
enum class Backpressure : std::uint8_t {
  kReject,  ///< fail fast: ticket comes back kRejected
  kBlock,   ///< block the submitter until space frees (or shutdown)
};

const char* to_string(Backpressure b);
/// Parses "reject" | "block". Returns false on unknown input.
bool parse_backpressure(std::string_view s, Backpressure& out);

/// Job service configuration. The embedded runtime::Options decide the
/// machine shape (topology = the squad inventory being partitioned) and
/// runtime features; Options::adapt must stay kStatic (the adaptive
/// controller profiles exclusive whole-machine epochs, which a
/// multi-tenant service never grants).
struct ServiceOptions {
  runtime::Options runtime;

  /// Admission queue bound. 0 is legal: with every slot "taken", all
  /// submits hit the backpressure policy immediately (useful as a
  /// drain-only / reject-everything configuration and in tests).
  std::size_t queue_capacity = 64;

  Backpressure backpressure = Backpressure::kReject;

  /// Queue age per one-tier promotion (see TieredQueue). 0 disables
  /// tiering (FIFO).
  std::uint64_t promote_cooldown_ns = 1'000'000;  // 1 ms

  /// Highest accepted JobDesc::tier (declared tiers clamp here).
  int max_tier = 3;
};

/// Monotonic lifecycle counters plus instantaneous gauges. A coherent
/// copy is returned by JobService::counters() (safe at any time, jobs
/// running or not); the same values back the svc.* metrics.
struct ServiceCounters {
  std::uint64_t submitted = 0;  ///< every submit() call
  std::uint64_t admitted = 0;   ///< accepted into the queue
  std::uint64_t rejected = 0;   ///< full queue (kReject) or shutdown
  std::uint64_t completed = 0;  ///< reached kDone
  std::uint64_t failed = 0;     ///< reached kFailed
  std::uint64_t cancelled = 0;  ///< cancelled while queued
  std::uint64_t promoted = 0;   ///< dispatched below their declared tier
  std::uint64_t queued_ns = 0;  ///< total queue-wait across dispatched jobs
  std::int64_t running_jobs = 0;  ///< gauge: partitions executing now
  std::int64_t queue_depth = 0;   ///< gauge: jobs waiting
};

/// A long-running multi-tenant job service over one CAB runtime: bounded
/// tiered admission (TieredQueue), squad-level space partitioning
/// (SquadAllocator + Runtime::run_on), and one executor thread per squad
/// — the maximum number of concurrently running partitions, since every
/// partition holds at least one squad.
///
/// Jobs on disjoint partitions execute concurrently, each under its own
/// bi-tier protocol instance with BL relative to its partition. The
/// runtime's between-epoch observability contract still applies to the
/// service as a whole: call metrics_snapshot() only while idle (after
/// drain()); counters() is the always-safe view.
class JobService {
 public:
  explicit JobService(ServiceOptions opts);
  /// Graceful: equivalent to shutdown().
  ~JobService();

  JobService(const JobService&) = delete;
  JobService& operator=(const JobService&) = delete;

  /// Submits a job. Never throws on load: the returned ticket's state
  /// reports rejection (kRejected) under the kReject policy, after
  /// shutdown, or when a kBlock wait is cut short by shutdown.
  JobTicket submit(JobDesc desc);

  /// Cancels a job that is still queued. Returns true and moves the
  /// ticket to kCancelled on success; false once the job is already
  /// running (or terminal) — running partitions are never interrupted.
  bool cancel(const JobTicket& ticket);

  /// Blocks until the queue is empty and no job is running. New submits
  /// during a drain() extend it.
  void drain();

  /// Stops admission (subsequent submits are rejected), lets every
  /// queued and running job finish, then joins the executors. Idempotent.
  void shutdown();

  /// Coherent snapshot of the service counters; callable at any time.
  ServiceCounters counters() const;

  /// Flushes svc.* counters/gauges into the runtime's metrics registry
  /// and returns the full registry snapshot. Inherits the runtime's
  /// between-epochs contract: call only while no job is running
  /// (typically after drain()); fails loudly otherwise.
  obs::metrics::Snapshot metrics_snapshot();

  /// The underlying runtime (for post-drain stats()/trace() etc.).
  runtime::Runtime& rt() { return *rt_; }

  const ServiceOptions& options() const { return opts_; }
  int executor_count() const { return static_cast<int>(executors_.size()); }

 private:
  void executor_main();
  /// Dispatches `job` on `partition` (outside the service lock), then
  /// returns the partition and settles the ticket.
  void run_job(const std::shared_ptr<detail::JobRecord>& job,
               const std::vector<int>& partition);
  JobTicket reject_locked(const std::shared_ptr<detail::JobRecord>& rec,
                          std::uint64_t now_ns);

  ServiceOptions opts_;
  std::unique_ptr<runtime::Runtime> rt_;

  // share-ok: straddle-ok: every cv wait/notify in the service holds
  // mu_, so the mutex and its three cvs are contended as one unit; the
  // service-global lock, not the layout, is the scalability boundary.
  mutable std::mutex mu_;
  ///< executors: queue or stop state (straddle-ok: share-ok: see mu_)
  std::condition_variable work_cv_;
  std::condition_variable space_cv_;  ///< kBlock submitters: queue space
  ///< drain()/shutdown(): quiescence (straddle-ok: share-ok: see mu_)
  std::condition_variable idle_cv_;
  TieredQueue queue_;
  SquadAllocator alloc_;
  ServiceCounters counters_;
  std::uint64_t next_seq_ = 0;
  bool stopping_ = false;

  // Pre-registered svc.* metrics (null when Options::metrics is off).
  // Written in slot 0 only, and only from metrics_snapshot() while the
  // service is idle — the registry's single-writer rule holds trivially.
  obs::metrics::Counter* m_submitted_ = nullptr;
  obs::metrics::Counter* m_admitted_ = nullptr;
  obs::metrics::Counter* m_rejected_ = nullptr;
  obs::metrics::Counter* m_completed_ = nullptr;
  obs::metrics::Counter* m_failed_ = nullptr;
  obs::metrics::Counter* m_cancelled_ = nullptr;
  obs::metrics::Counter* m_promoted_ = nullptr;
  obs::metrics::Counter* m_queued_ns_ = nullptr;
  obs::metrics::Gauge* m_running_jobs_ = nullptr;
  obs::metrics::Gauge* m_queue_depth_ = nullptr;

  std::vector<std::thread> executors_;
};

}  // namespace cab::svc
