#include "svc/partition.hpp"

#include "util/assert.hpp"

namespace cab::svc {

std::vector<int> SquadAllocator::acquire(int want) {
  if (want < 1) want = 1;
  if (free_ == 0) return {};
  const int grant = want < free_ ? want : free_;
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(grant));
  for (std::size_t s = 0; s < used_.size() && static_cast<int>(out.size()) < grant;
       ++s) {
    if (!used_[s]) {
      used_[s] = true;
      out.push_back(static_cast<int>(s));
    }
  }
  free_ -= grant;
  CAB_CHECK(static_cast<int>(out.size()) == grant,
            "squad allocator free-count out of sync");
  return out;
}

void SquadAllocator::release(const std::vector<int>& ids) {
  for (int s : ids) {
    CAB_CHECK(s >= 0 && s < total(), "release of out-of-range squad id");
    CAB_CHECK(used_[static_cast<std::size_t>(s)],
              "double release of squad");
    used_[static_cast<std::size_t>(s)] = false;
  }
  free_ += static_cast<int>(ids.size());
}

}  // namespace cab::svc
