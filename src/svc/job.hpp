#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>

namespace cab::svc {

/// Lifecycle of a submitted job. Terminal states: kDone, kFailed,
/// kRejected, kCancelled.
///
///   kQueued ──────> kRunning ──> kDone | kFailed
///      │  └───────> kCancelled            (cancel() while still queued)
///      └─ (never admitted) ─> kRejected   (full queue / shutdown)
enum class JobState : std::uint8_t {
  kQueued,
  kRunning,
  kDone,
  kFailed,
  kRejected,
  kCancelled,
};

const char* to_string(JobState s);

inline bool is_terminal(JobState s) {
  return s == JobState::kDone || s == JobState::kFailed ||
         s == JobState::kRejected || s == JobState::kCancelled;
}

/// What a client submits: a root closure plus the scheduling contract.
struct JobDesc {
  /// Root task body, executed as the level-0 task of the job's own DAG
  /// epoch (spawn/sync work inside as under Runtime::run, confined to
  /// the job's squad partition).
  std::function<void()> body;

  /// Declared parallelism, in squads. The service grants
  /// min(squads, free squads) — at least 1 — so a wide job degrades to a
  /// narrower partition under load instead of waiting for full width.
  int squads = 1;

  /// Boundary level for the job's partition, or -1 to derive it from
  /// Eq. 4 with M = granted squads and Sd = input_bytes at dispatch
  /// time. Single-squad partitions always run BL = 0 (degenerate CAB).
  std::int32_t boundary_level = -1;

  /// Input size hint Sd for the Eq. 4 derivation (ignored when
  /// boundary_level >= 0).
  std::uint64_t input_bytes = 0;

  /// Priority tier: 0 is most urgent; higher tiers yield to lower ones.
  /// Clamped to [0, ServiceOptions::max_tier]. Queued jobs are promoted
  /// one tier per promote_cooldown_ns of queue age (scx_cake-style
  /// anti-starvation), so no tier waits forever behind a tier-0 flood.
  int tier = 0;
};

namespace detail {

/// Shared job state behind a JobTicket. The service mutates it (under
/// rec.mu for state/error/timestamps); clients observe through the
/// ticket. Held by shared_ptr from both sides, so a dropped ticket never
/// invalidates a running job and a completed job never dangles a ticket.
struct JobRecord {
  // Immutable after submit().
  std::function<void()> body;
  int want_squads = 1;
  std::int32_t boundary_level = -1;
  std::uint64_t input_bytes = 0;
  int tier = 0;
  std::uint64_t seq = 0;        ///< admission order (FIFO tie-break)
  std::uint64_t submit_ns = 0;  ///< clock at submit()

  // Guarded by mu; cv signaled on every terminal transition.
  // share-ok: straddle-ok: the ticket wait protocol takes mu around
  // every cv wait/notify, so the pair is contended as a unit; records
  // are per-job heap objects, not per-core hot state.
  std::mutex mu;
  std::condition_variable cv;
  JobState state = JobState::kQueued;
  std::exception_ptr error;
  std::uint64_t start_ns = 0;   ///< clock at dispatch (0 if never ran)
  std::uint64_t finish_ns = 0;  ///< clock at terminal transition
  int granted_squads = 0;       ///< partition width actually granted

  void set_terminal(JobState s, std::exception_ptr e,
                    std::uint64_t now_ns) {
    std::lock_guard<std::mutex> lk(mu);
    state = s;
    error = std::move(e);
    finish_ns = now_ns;
    cv.notify_all();
  }
};

}  // namespace detail

/// Client-side handle to a submitted job. Copyable, cheap, and valid for
/// the job's whole lifetime regardless of what the service does with it.
class JobTicket {
 public:
  JobTicket() = default;

  bool valid() const { return rec_ != nullptr; }

  JobState state() const {
    std::lock_guard<std::mutex> lk(rec_->mu);
    return rec_->state;
  }

  /// Blocks until the job reaches a terminal state; returns it. Unlike
  /// Runtime::run, a failed job does NOT rethrow here — inspect error().
  JobState wait() const {
    std::unique_lock<std::mutex> lk(rec_->mu);
    rec_->cv.wait(lk, [&] { return is_terminal(rec_->state); });
    return rec_->state;
  }

  /// First exception thrown by any task of the job (null unless
  /// state() == kFailed).
  std::exception_ptr error() const {
    std::lock_guard<std::mutex> lk(rec_->mu);
    return rec_->error;
  }

  /// Time spent in the admission queue: submit to dispatch (or to the
  /// terminal transition for jobs that never ran). Meaningful once the
  /// job has left the queue.
  std::uint64_t queued_ns() const {
    std::lock_guard<std::mutex> lk(rec_->mu);
    const std::uint64_t out =
        rec_->start_ns != 0 ? rec_->start_ns : rec_->finish_ns;
    return out > rec_->submit_ns ? out - rec_->submit_ns : 0;
  }

  /// Submit-to-completion latency (0 until terminal).
  std::uint64_t latency_ns() const {
    std::lock_guard<std::mutex> lk(rec_->mu);
    return rec_->finish_ns > rec_->submit_ns
               ? rec_->finish_ns - rec_->submit_ns
               : 0;
  }

  /// Clock stamps (obs::now_ns domain) for external latency accounting —
  /// e.g. the open-loop bench measures from *scheduled* arrival to
  /// finish_ns, which is what makes its percentiles immune to
  /// coordinated omission. finish_ns() is 0 until terminal.
  std::uint64_t submit_ns() const { return rec_->submit_ns; }
  std::uint64_t finish_ns() const {
    std::lock_guard<std::mutex> lk(rec_->mu);
    return rec_->finish_ns;
  }

  /// Squads the job actually ran on (0 until dispatched).
  int granted_squads() const {
    std::lock_guard<std::mutex> lk(rec_->mu);
    return rec_->granted_squads;
  }

 private:
  friend class JobService;
  explicit JobTicket(std::shared_ptr<detail::JobRecord> rec)
      : rec_(std::move(rec)) {}

  std::shared_ptr<detail::JobRecord> rec_;
};

}  // namespace cab::svc
