#pragma once

#include <vector>

namespace cab::svc {

/// Squad ownership ledger for the service's space partitioning: each
/// running job owns a disjoint set of squads, acquired here at dispatch
/// and released when the job's epoch drains. Lowest-id-first allocation
/// keeps partitions contiguous-ish (socket 0 upward), which also keeps
/// the squad->worker mapping stable for debugging.
///
/// Not itself thread-safe: every call happens under JobService's mutex.
class SquadAllocator {
 public:
  explicit SquadAllocator(int squad_count)
      : used_(static_cast<std::size_t>(squad_count), false),
        free_(squad_count) {}

  int total() const { return static_cast<int>(used_.size()); }
  int free_count() const { return free_; }

  /// Grants min(want, free_count()) squads — at least one — as a list of
  /// squad ids; empty when no squad is free (caller keeps the job
  /// queued). `want` below 1 is treated as 1.
  std::vector<int> acquire(int want);

  /// Returns a partition to the free pool.
  void release(const std::vector<int>& ids);

 private:
  std::vector<bool> used_;
  int free_ = 0;
};

}  // namespace cab::svc
