// Sanitizer-backed stress suite for Algorithm I/II (ctest label: stress).
//
// These tests hammer the bi-tier protocol — deep nesting, all three
// SchedulerKinds, oversubscription, forced inter spawns, repeated reuse —
// with assertions kept to cheap global invariants. Their real value is
// under -DCAB_SANITIZE=thread (TSan) or address (ASan): every steal,
// busy_state transition and timeline append happens here thousands of
// times, so a protocol data race or lifetime bug trips the sanitizer.
// Workloads are sized to stay fast even at TSan's ~10x slowdown.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "deque/chase_lev_deque.hpp"
#include "runtime/runtime.hpp"
#include "svc/service.hpp"

namespace cab::runtime {
namespace {

Options stress_options(SchedulerKind kind, int sockets, int cores, int bl) {
  Options o;
  o.topo = hw::Topology::synthetic(sockets, cores, 1ull << 20);
  o.kind = kind;
  o.boundary_level = bl;
  o.seed = 99;
  return o;
}

void spawn_tree(int depth, std::atomic<int>* leaves) {
  if (depth == 0) {
    leaves->fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Runtime::spawn([depth, leaves] { spawn_tree(depth - 1, leaves); });
  Runtime::spawn([depth, leaves] { spawn_tree(depth - 1, leaves); });
  Runtime::sync();
}

TEST(StressProtocol, DeepNestedSpawnChain) {
  // A 400-deep single-spawn chain: every level suspends at a sync and
  // resumes, exercising release_busy_on_suspend and the help-first sync
  // nesting at maximum depth (the level counter crosses BL once but the
  // inter machinery stays live the whole way down).
  Runtime rt(stress_options(SchedulerKind::kCab, 2, 2, 3));
  std::atomic<int> reached{0};
  std::function<void(int)> chain = [&](int depth) {
    if (depth == 0) {
      reached.fetch_add(1);
      return;
    }
    Runtime::spawn([&chain, depth] { chain(depth - 1); });
    Runtime::sync();
  };
  rt.run([&] { chain(400); });
  EXPECT_EQ(reached.load(), 1);
  EXPECT_EQ(rt.stats().total.tasks_executed, 401u);
}

TEST(StressProtocol, AllSchedulerKindsRepeatedTrees) {
  for (SchedulerKind kind :
       {SchedulerKind::kCab, SchedulerKind::kRandomStealing,
        SchedulerKind::kTaskSharing}) {
    const int bl = kind == SchedulerKind::kCab ? 2 : 0;
    Runtime rt(stress_options(kind, 2, 2, bl));
    for (int run = 0; run < 3; ++run) {
      std::atomic<int> leaves{0};
      rt.run([&] { spawn_tree(9, &leaves); });
      EXPECT_EQ(leaves.load(), 512) << to_string(kind) << " run " << run;
    }
    // 3 runs x (1 root + 2^10-2 spawned) tasks each.
    EXPECT_EQ(rt.stats().total.tasks_executed, 3u * 1023u) << to_string(kind);
  }
}

TEST(StressProtocol, OversubscribedWorkers) {
  // 16 virtual workers on however few physical cores the host has: the
  // preempted-victim and descheduled-thief interleavings the backoff
  // logic exists for. Tracing is on so timeline appends run under the
  // sanitizer too (single-writer discipline is a claim TSan can check).
  Options o = stress_options(SchedulerKind::kCab, 4, 4, 2);
  o.trace = true;
  Runtime rt(o);
  for (int run = 0; run < 2; ++run) {
    std::atomic<int> leaves{0};
    rt.run([&] { spawn_tree(10, &leaves); });
    EXPECT_EQ(leaves.load(), 1024);
  }
  SchedulerStats s = rt.stats();
  EXPECT_EQ(s.total.tasks_executed, 2u * 2047u);
  WorkerStats sum;
  for (const WorkerStats& w : s.per_worker) sum += w;
  EXPECT_EQ(sum.tasks_executed, s.total.tasks_executed);
}

TEST(StressProtocol, ForcedInterSpawnsAtEveryLevel) {
  // spawn_inter from deep intra levels forces traffic through the
  // inter pools and busy_state from places Algorithm II never would,
  // stressing acquire/release pairing on all squads.
  Runtime rt(stress_options(SchedulerKind::kCab, 2, 2, 1));
  std::atomic<int> ran{0};
  std::function<void(int)> tree = [&](int depth) {
    if (depth == 0) {
      ran.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    Runtime::spawn([&tree, depth] { tree(depth - 1); });
    Runtime::spawn_inter([&tree, depth] { tree(depth - 1); });
    Runtime::sync();
  };
  rt.run([&] { tree(8); });
  EXPECT_EQ(ran.load(), 256);
  EXPECT_GT(rt.stats().total.spawns_inter, 0u);
}

TEST(StressProtocol, ParallelForAllKinds) {
  for (SchedulerKind kind :
       {SchedulerKind::kCab, SchedulerKind::kRandomStealing,
        SchedulerKind::kTaskSharing}) {
    Runtime rt(stress_options(kind, 2, 2, kind == SchedulerKind::kCab ? 2 : 0));
    std::atomic<std::int64_t> sum{0};
    rt.run([&] {
      parallel_for(0, 20000, 7, [&](std::int64_t lo, std::int64_t hi) {
        std::int64_t local = 0;
        for (std::int64_t i = lo; i < hi; ++i) local += i;
        sum.fetch_add(local, std::memory_order_relaxed);
      });
    });
    EXPECT_EQ(sum.load(), 20000ll * 19999 / 2) << to_string(kind);
  }
}

TEST(StressProtocol, ExplicitSyncsMidBody) {
  // Two spawn/sync rounds per task: the second round's children reuse a
  // frame whose join (spawned == completed) already closed once — the
  // join counter and busy_state must survive re-arming.
  Runtime rt(stress_options(SchedulerKind::kCab, 2, 2, 2));
  std::atomic<int> ran{0};
  std::function<void(int)> phases = [&](int depth) {
    if (depth == 0) {
      ran.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    Runtime::spawn([&phases, depth] { phases(depth - 1); });
    Runtime::sync();
    Runtime::spawn([&phases, depth] { phases(depth - 1); });
    Runtime::sync();
  };
  rt.run([&] { phases(7); });
  EXPECT_EQ(ran.load(), 128);
}

TEST(StressProtocol, AdaptiveRetuningAcrossEpochs) {
  // Adaptive BL retuning under oversubscription: the between-epoch
  // retune reads every worker's stats and hw slots and rewrites tier.bl
  // while threads are parked — exactly the hand-off TSan must agree is
  // race-free. Eight epochs give the hill-climb room to actually move BL
  // (not just hold), so workers observe several distinct tier splits.
  Options o = stress_options(SchedulerKind::kCab, 4, 4, 2);
  ASSERT_TRUE(adapt::parse_policy("adaptive", o.adapt));
  o.adapt.input_bytes_hint = 8ull << 20;
  Runtime rt(o);
  for (int ep = 0; ep < 8; ++ep) {
    std::atomic<int> leaves{0};
    rt.run([&] { spawn_tree(10, &leaves); });
    EXPECT_EQ(leaves.load(), 1024) << "epoch " << ep;
    EXPECT_GE(rt.current_boundary_level(), 0);
  }
  const adapt::Report r = rt.adapt_report();
  EXPECT_EQ(r.decisions.size(), 8u);
  for (std::size_t i = 1; i < r.decisions.size(); ++i) {
    EXPECT_EQ(r.decisions[i].prev_bl, r.decisions[i - 1].next_bl);
  }
}

TEST(StressProtocol, ExceptionsUnderLoad) {
  // A task body throwing mid-DAG must not wedge the run: the DAG drains,
  // the first exception resurfaces from run(), and the runtime stays
  // usable for the next run.
  Runtime rt(stress_options(SchedulerKind::kCab, 2, 2, 2));
  std::atomic<int> leaves{0};
  EXPECT_THROW(
      rt.run([&] {
        spawn_tree(6, &leaves);
        throw std::runtime_error("boom");
      }),
      std::runtime_error);
  EXPECT_EQ(leaves.load(), 64);
  std::atomic<int> after{0};
  rt.run([&] { spawn_tree(5, &after); });
  EXPECT_EQ(after.load(), 32);
}

TEST(StressProtocol, CrossSocketFrameRecyclingHammer) {
  // Frame-recycling race surface: every cross-worker completion pushes
  // the frame through its home pool's MPSC remote-free channel, and the
  // home worker concurrently drains it while spawning into the same
  // frames. Under TSan this is the use-after-free / double-recycle check
  // for the remote-free channel: a frame reused while its completer is
  // still writing it, or pushed twice, shows up as a race on the frame's
  // non-atomic fields (body, parent, pool_next).
  Options o = stress_options(SchedulerKind::kCab, 4, 2, 2);
  Runtime rt(o);
  std::atomic<int> leaves{0};
  for (int epoch = 0; epoch < 6; ++epoch) {
    rt.run([&] { spawn_tree(10, &leaves); });
  }
  EXPECT_EQ(leaves.load(), 6 * 1024);
  const SchedulerStats s = rt.stats();
  // The inter tier forces cross-squad completions, so the channel must
  // actually have carried traffic for this test to mean anything.
  EXPECT_GT(s.total.alloc_remote_frees, 0u);
  EXPECT_GT(s.total.alloc_freelist_hits + s.total.alloc_remote_drains, 0u);
}

TEST(StressProtocol, RemoteFreeChannelDirectHammer) {
  // The channel in isolation, no scheduler in the way: one owner acquires
  // and hands frames to remote freers over a mutex'd queue; the freers
  // push_remote concurrently while the owner keeps acquiring (and hence
  // draining). Conservation: every handed-out frame comes back, the pool
  // never carves more than the in-flight bound requires, and every
  // acquire is served by exactly one of hit/drain/refill.
  constexpr int kFreers = 3;
  constexpr int kRounds = 20000;
  constexpr std::size_t kInFlightCap = 128;
  FramePool pool;
  WorkerStats stats;
  std::mutex mu;
  std::vector<TaskFrame*> handoff;
  std::atomic<bool> done{false};
  std::atomic<int> freed{0};
  std::vector<std::thread> freers;
  freers.reserve(kFreers);
  for (int f = 0; f < kFreers; ++f) {
    freers.emplace_back([&] {
      for (;;) {
        TaskFrame* t = nullptr;
        {
          std::lock_guard<std::mutex> lk(mu);
          if (!handoff.empty()) {
            t = handoff.back();
            handoff.pop_back();
          }
        }
        if (t != nullptr) {
          pool.push_remote(t);
          freed.fetch_add(1, std::memory_order_relaxed);
        } else if (done.load(std::memory_order_acquire)) {
          return;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (int i = 0; i < kRounds; ++i) {
    TaskFrame* t = pool.acquire(stats);
    for (;;) {  // enforce the in-flight cap so the footprint bound is real
      {
        std::lock_guard<std::mutex> lk(mu);
        if (handoff.size() < kInFlightCap) {
          handoff.push_back(t);
          break;
        }
      }
      std::this_thread::yield();
    }
  }
  done.store(true, std::memory_order_release);
  for (auto& th : freers) th.join();
  EXPECT_EQ(freed.load(), kRounds);
  EXPECT_EQ(stats.alloc_freelist_hits + stats.alloc_remote_drains +
                stats.alloc_slab_refills,
            static_cast<std::uint64_t>(kRounds));
  // The pool's footprint is bounded by the in-flight peak, not the total
  // round count: 20k acquires must not have carved anywhere near 20k/64
  // slabs. Generous bound: in-flight cap plus freers mid-hand-off, doubled.
  EXPECT_LE(pool.slab_count() * FramePool::kFramesPerSlab,
            4 * kInFlightCap + 2 * FramePool::kFramesPerSlab);
}

TEST(StressProtocol, StealBatchDirectHammer) {
  // The claim-bit batch protocol in isolation: many thieves batch-steal
  // from one hot owner that keeps pushing and popping the same deque, so
  // claims constantly race the owner's bottom traffic (including the
  // pop-side claim-backoff spin) and each other. Under TSan this is the
  // data-race check for steal_batch's fence/claim dance; the functional
  // oracle is conservation — every token consumed exactly once, none
  // left behind.
  constexpr int kThieves = 4;
  constexpr std::intptr_t kItems = 50000;
  constexpr std::size_t kBatchMax = 16;
  deque::ChaseLevDeque<int*> d(8);
  std::vector<int> tokens(kItems);
  std::vector<std::atomic<int>> taken(kItems);
  std::atomic<bool> done{false};
  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int f = 0; f < kThieves; ++f) {
    thieves.emplace_back([&] {
      int* buf[kBatchMax];
      for (;;) {
        const std::size_t k = d.steal_batch(buf, kBatchMax);
        for (std::size_t i = 0; i < k; ++i) {
          taken[buf[i] - tokens.data()].fetch_add(1,
                                                  std::memory_order_relaxed);
        }
        if (k == 0) {
          if (done.load(std::memory_order_acquire)) return;
          std::this_thread::yield();
        }
      }
    });
  }
  for (std::intptr_t i = 0; i < kItems; ++i) {
    d.push_bottom(&tokens[i]);
    if (i % 5 == 4) {  // owner consumes too: exercises claim backoff
      if (int* p = d.pop_bottom())
        taken[p - tokens.data()].fetch_add(1, std::memory_order_relaxed);
    }
  }
  while (int* p = d.pop_bottom())
    taken[p - tokens.data()].fetch_add(1, std::memory_order_relaxed);
  done.store(true, std::memory_order_release);
  for (auto& th : thieves) th.join();
  std::int64_t consumed = 0;
  for (std::intptr_t i = 0; i < kItems; ++i) {
    const int n = taken[i].load(std::memory_order_relaxed);
    ASSERT_LE(n, 1) << "token " << i << " taken twice";
    consumed += n;
  }
  EXPECT_EQ(consumed, kItems);  // and none lost
}

TEST(StressProtocol, HotVictimWeightedStealHammer) {
  // One eight-worker squad, repeated 4096-leaf trees: the root worker is
  // the hot victim every other worker converges on through the occupancy
  // mask, so weighted picks, batch claims, surplus re-pushes, and hearsay
  // clears all run hot under the sanitizer. The oracles are the PR-5
  // style counter conservations: per-worker stats sum to the totals, and
  // the batch/mask counters respect their structural identities.
  constexpr int kEpochs = 3;
  constexpr int kLeaves = 1500;
  for (StealPolicy pol : {StealPolicy::kWeighted, StealPolicy::kWeightedHalf}) {
    // BL=1: only the root's direct child goes inter, so a single worker
    // owns the whole intra fan-out and the other seven must steal from
    // it. Leaves carry enough work that each epoch spans several OS
    // timeslices — on an oversubscribed (even single-CPU) host the
    // thieves only run when the spawner is preempted, and the hot deque
    // must still be populated when they do.
    Options o = stress_options(SchedulerKind::kCab, 1, 8, 1);
    o.steal = pol;
    Runtime rt(o);
    std::atomic<int> leaves{0};
    for (int epoch = 0; epoch < kEpochs; ++epoch) {
      rt.run([&] {
        Runtime::spawn([&] {  // the one hot victim, below BL
          for (int i = 0; i < kLeaves; ++i) {
            Runtime::spawn([&] {
              for (volatile int j = 0; j < 20000;) {
                j = j + 1;
              }
              leaves.fetch_add(1, std::memory_order_relaxed);
            });
          }
          Runtime::sync();
        });
        Runtime::sync();
      });
    }
    EXPECT_EQ(leaves.load(), kEpochs * kLeaves) << to_string(pol);
    const SchedulerStats s = rt.stats();
    WorkerStats sum;
    for (const WorkerStats& w : s.per_worker) sum += w;
    EXPECT_EQ(sum.tasks_executed, s.total.tasks_executed) << to_string(pol);
    EXPECT_EQ(sum.tasks_executed,
              static_cast<std::uint64_t>(kEpochs) * (kLeaves + 2))
        << to_string(pol);
    EXPECT_GT(sum.intra_steals, 0u) << to_string(pol);
    EXPECT_GT(sum.weighted_picks, 0u) << to_string(pol);
    // Every mask clear transition (bit 1 -> 0) needs a prior set
    // transition; bits may end the run set, so sets >= clears.
    EXPECT_GE(sum.mask_sets, sum.mask_clears_own + sum.mask_clears_hearsay)
        << to_string(pol);
    if (pol == StealPolicy::kWeightedHalf) {
      // Under kCab every in-squad steal goes through steal_intra_from, so
      // successful steals and batches are the same events; batch sizes
      // are within [1, kStealBatchMax].
      EXPECT_EQ(sum.steal_batches, sum.intra_steals) << to_string(pol);
      EXPECT_GE(sum.steal_batch_tasks, sum.steal_batches) << to_string(pol);
      EXPECT_LE(sum.steal_batch_tasks,
                sum.steal_batches * Worker::kStealBatchMax)
          << to_string(pol);
    } else {
      EXPECT_EQ(sum.steal_batches, 0u) << to_string(pol);
      EXPECT_EQ(sum.steal_batch_tasks, 0u) << to_string(pol);
    }
  }
}

TEST(StressProtocol, HotVictimLazyPromotionHammer) {
  // The lazy-promotion handshake under fire (DESIGN.md §5h): one
  // below-BL worker owns repeated 400-wide lazy fan-outs (under the 512
  // LazyStack slots, so every child is a stack-slot frame) while seven
  // squad mates converge on it through the occupancy mask — every
  // in-squad steal is a promotion, single or batched, and the syncs
  // between bursts recycle the slots through the kPromoting->kFreed
  // hand-off that TSan is here to audit. Oracles: leaf and execution
  // conservation, promotions present and bounded by lazy spawns.
  constexpr int kEpochs = 2;
  constexpr int kBursts = 4;
  constexpr int kBurst = 400;
  for (StealPolicy pol : {StealPolicy::kWeighted, StealPolicy::kWeightedHalf}) {
    Options o = stress_options(SchedulerKind::kCab, 1, 8, 1);
    o.steal = pol;
    o.lazy_spawn = true;
    Runtime rt(o);
    std::atomic<int> leaves{0};
    for (int epoch = 0; epoch < kEpochs; ++epoch) {
      rt.run([&] {
        Runtime::spawn([&] {  // the hot victim, below BL
          for (int b = 0; b < kBursts; ++b) {
            for (int i = 0; i < kBurst; ++i) {
              Runtime::spawn([&] {
                for (volatile int j = 0; j < 20000;) {
                  j = j + 1;
                }
                leaves.fetch_add(1, std::memory_order_relaxed);
              });
            }
            Runtime::sync();  // joins the burst; slots become reclaimable
          }
        });
        Runtime::sync();
      });
    }
    EXPECT_EQ(leaves.load(), kEpochs * kBursts * kBurst) << to_string(pol);
    const SchedulerStats s = rt.stats();
    WorkerStats sum;
    for (const WorkerStats& w : s.per_worker) sum += w;
    EXPECT_EQ(sum.tasks_executed, s.total.tasks_executed) << to_string(pol);
    EXPECT_EQ(sum.tasks_executed,
              static_cast<std::uint64_t>(kEpochs) * (kBursts * kBurst + 2))
        << to_string(pol);
    EXPECT_GT(sum.alloc_lazy_spawns, 0u) << to_string(pol);
    // Every child in this topology is lazy, so the first successful
    // in-squad steal of each epoch promotes; the existing hot-victim
    // hammer already shows steals are guaranteed under this shape.
    EXPECT_GT(sum.intra_steals, 0u) << to_string(pol);
    EXPECT_GT(sum.alloc_promotions, 0u) << to_string(pol);
    EXPECT_LE(sum.alloc_promotions, sum.alloc_lazy_spawns) << to_string(pol);
  }
}

TEST(StressProtocol, ConcurrentRunOnPartitionsHammer) {
  // Federated epochs: four submitter threads repeatedly run disjoint
  // single/double-squad partitions of one runtime — every squad
  // bind/unbind, partition-confined steal, and epoch wake path races
  // here under the sanitizer.
  Runtime rt(stress_options(SchedulerKind::kCab, 4, 2, 1));
  constexpr int kRounds = 40;
  constexpr int kDepth = 5;
  std::atomic<int> leaves{0};
  std::vector<std::thread> submitters;
  const std::vector<std::vector<int>> partitions = {{0}, {1}, {2, 3}};
  for (const std::vector<int>& p : partitions) {
    submitters.emplace_back([&, p] {
      for (int r = 0; r < kRounds; ++r) {
        rt.run_on(p, 1, [&] { spawn_tree(kDepth, &leaves); });
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  EXPECT_EQ(leaves.load(),
            static_cast<int>(partitions.size()) * kRounds * (1 << kDepth));
}

TEST(StressService, ManyConcurrentSubmitters) {
  // The ISSUE's TSan acceptance case: many threads submitting
  // DAG-spawning jobs against one service while executors dispatch onto
  // disjoint partitions. Conservation is asserted at the end; the data
  // races (admission queue, allocator, ticket state, epoch binding) are
  // the sanitizer's job.
  svc::ServiceOptions o;
  o.runtime.topo = hw::Topology::synthetic(4, 2, 1ull << 20);
  o.runtime.seed = 99;
  o.queue_capacity = 32;
  o.backpressure = svc::Backpressure::kBlock;  // lossless under load
  o.promote_cooldown_ns = 100'000;             // exercise promotions
  svc::JobService service(o);
  constexpr int kSubmitters = 8;
  constexpr int kJobsEach = 25;
  constexpr int kDepth = 5;  // 2^5 leaves per job
  std::atomic<long> leaves{0};
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      std::vector<svc::JobTicket> mine;
      for (int j = 0; j < kJobsEach; ++j) {
        svc::JobDesc d;
        d.squads = 1 + (j % 3);
        d.tier = (s + j) % 4;
        d.body = [&] {
          std::atomic<int> local{0};
          spawn_tree(kDepth, &local);
          leaves.fetch_add(local.load(), std::memory_order_relaxed);
        };
        mine.push_back(service.submit(std::move(d)));
      }
      for (const svc::JobTicket& t : mine) {
        EXPECT_EQ(t.wait(), svc::JobState::kDone);
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  service.drain();
  constexpr long kJobs = kSubmitters * kJobsEach;
  EXPECT_EQ(leaves.load(), kJobs * (1 << kDepth));
  const svc::ServiceCounters c = service.counters();
  EXPECT_EQ(c.admitted, static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(c.completed, static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(c.rejected, 0u);
  EXPECT_EQ(c.failed, 0u);
  // Scheduler-level conservation across every partitioned epoch.
  const WorkerStats t = service.rt().stats().total;
  EXPECT_EQ(t.tasks_executed, t.spawns_intra + t.spawns_inter + kJobs);
}

TEST(StressService, RejectChurnUnderOverload) {
  // Tiny queue + reject policy + a submit storm: admission control
  // races dispatch continuously; counters must still balance exactly.
  svc::ServiceOptions o;
  o.runtime.topo = hw::Topology::synthetic(2, 2, 1ull << 20);
  o.runtime.seed = 7;
  o.queue_capacity = 2;
  o.backpressure = svc::Backpressure::kReject;
  svc::JobService service(o);
  constexpr int kSubmitters = 6;
  constexpr int kJobsEach = 60;
  std::atomic<long> ran{0};
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&] {
      for (int j = 0; j < kJobsEach; ++j) {
        svc::JobDesc d;
        d.body = [&] { ran.fetch_add(1, std::memory_order_relaxed); };
        (void)service.submit(std::move(d));
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  service.drain();
  const svc::ServiceCounters c = service.counters();
  EXPECT_EQ(c.submitted, static_cast<std::uint64_t>(kSubmitters * kJobsEach));
  EXPECT_EQ(c.admitted + c.rejected, c.submitted);
  EXPECT_EQ(c.completed, c.admitted);  // no cancels here: all admitted ran
  EXPECT_EQ(ran.load(), static_cast<long>(c.completed));
}

}  // namespace
}  // namespace cab::runtime
