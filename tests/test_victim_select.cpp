// Deterministic tests for occupancy-weighted victim selection
// (runtime/victim_select.hpp). The picker is pure logic over a mask
// snapshot, a weight callback, and a caller-owned RNG, so a fixed
// Xorshift64 seed makes the statistical assertions exactly reproducible:
// observed pick frequencies must track the occupancy weights within a
// tolerance that the fixed seed turns into a hard bound, not a flake.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <map>

#include "runtime/victim_select.hpp"
#include "util/rng.hpp"

namespace cab::runtime {
namespace {

constexpr std::uint64_t kSeed = 0xCAB5EEDull;

std::uint64_t bit(int s) { return std::uint64_t{1} << s; }

TEST(VictimSelect, AllVictimsEmptyReturnsNoVictim) {
  util::Xorshift64 rng(kSeed);
  // Mask empty: nothing advertised.
  EXPECT_EQ(pick_weighted_victim(
                0, /*self_slot=*/0, /*n_slots=*/8,
                [](int) -> std::uint64_t { return 7; }, rng),
            kNoVictim);
  // Mask full but every weight zero: the probe-free estimates veto all.
  EXPECT_EQ(pick_weighted_victim(
                ~std::uint64_t{0}, 0, 8, [](int) -> std::uint64_t { return 0; },
                rng),
            kNoVictim);
  // Degenerate squad sizes.
  EXPECT_EQ(pick_weighted_victim(
                ~std::uint64_t{0}, 0, 0, [](int) -> std::uint64_t { return 1; },
                rng),
            kNoVictim);
  EXPECT_EQ(pick_weighted_victim(
                bit(0), 0, 1, [](int) -> std::uint64_t { return 1; }, rng),
            kNoVictim);  // only candidate is self
}

TEST(VictimSelect, SingleNonEmptyVictimAlwaysPicked) {
  util::Xorshift64 rng(kSeed);
  const std::uint64_t mask = bit(2) | bit(5);
  auto weight = [](int s) -> std::uint64_t { return s == 5 ? 9 : 0; };
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(pick_weighted_victim(mask, 0, 8, weight, rng), 5);
  }
}

TEST(VictimSelect, NeverPicksSelfOrOutOfRangeSlots) {
  util::Xorshift64 rng(kSeed);
  // Bits above n_slots and the self bit are advertised (stale mask) but
  // must never be returned.
  const std::uint64_t mask = bit(1) | bit(3) | bit(6) | bit(7);
  auto weight = [](int) -> std::uint64_t { return 1; };
  for (int i = 0; i < 1000; ++i) {
    const int v = pick_weighted_victim(mask, /*self_slot=*/3, /*n_slots=*/4,
                                       weight, rng);
    EXPECT_EQ(v, 1);  // slot 3 is self, slots 6/7 are out of range
  }
}

/// Fixed-seed statistical law: pick frequencies proportional to weights.
/// With weights 1:3:6 over 60k draws the expected counts are 6k/18k/36k;
/// a 15% relative tolerance is ~20 sigma for the binomial spread, and the
/// fixed seed makes the test exactly reproducible regardless.
TEST(VictimSelect, FrequenciesTrackWeights) {
  util::Xorshift64 rng(kSeed);
  const std::uint64_t mask = bit(1) | bit(4) | bit(7);
  const std::array<std::uint64_t, 8> w = {0, 1, 0, 0, 3, 0, 0, 6};
  auto weight = [&](int s) -> std::uint64_t {
    return w[static_cast<std::size_t>(s)];
  };
  constexpr int kDraws = 60000;
  std::map<int, int> hits;
  for (int i = 0; i < kDraws; ++i) {
    const int v = pick_weighted_victim(mask, 0, 8, weight, rng);
    ASSERT_NE(v, kNoVictim);
    ++hits[v];
  }
  ASSERT_EQ(hits.size(), 3u);
  const std::uint64_t total = w[1] + w[4] + w[7];
  for (const auto& [slot, count] : hits) {
    const double expected =
        kDraws * static_cast<double>(w[static_cast<std::size_t>(slot)]) /
        static_cast<double>(total);
    EXPECT_NEAR(count, expected, 0.15 * expected)
        << "slot " << slot << " drawn " << count << "x, expected ~"
        << expected;
  }
}

/// Equal weights degrade to uniform choice over the advertised set.
TEST(VictimSelect, EqualWeightsAreUniform) {
  util::Xorshift64 rng(kSeed);
  const std::uint64_t mask = bit(0) | bit(2) | bit(3) | bit(5);
  auto weight = [](int) -> std::uint64_t { return 4; };
  constexpr int kDraws = 40000;
  std::map<int, int> hits;
  for (int i = 0; i < kDraws; ++i) {
    ++hits[pick_weighted_victim(mask, 1, 8, weight, rng)];
  }
  ASSERT_EQ(hits.size(), 4u);
  for (const auto& [slot, count] : hits) {
    EXPECT_NEAR(count, kDraws / 4.0, 0.15 * kDraws / 4.0) << "slot " << slot;
  }
}

/// The full-width mask path (n_slots == kWidth) must not shift by 64.
TEST(VictimSelect, FullWidthSquad) {
  util::Xorshift64 rng(kSeed);
  constexpr int kWidth = protocol::OccupancyMask<>::kWidth;
  auto weight = [](int) -> std::uint64_t { return 1; };
  std::map<int, int> hits;
  for (int i = 0; i < 10000; ++i) {
    const int v =
        pick_weighted_victim(~std::uint64_t{0}, 63, kWidth, weight, rng);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 63);  // 63 is self
    ++hits[v];
  }
  EXPECT_EQ(hits.size(), 63u);  // every other slot reachable
}

}  // namespace
}  // namespace cab::runtime
