#include <gtest/gtest.h>

#include "dag/generators.hpp"
#include "dag/task_graph.hpp"

namespace cab::dag {
namespace {

TEST(TaskGraph, RootOnlyGraph) {
  TaskGraph g;
  g.add_root(5, 3);
  EXPECT_EQ(g.size(), 1u);
  EXPECT_EQ(g.total_work(), 8u);
  EXPECT_EQ(g.critical_path(), 8u);
  EXPECT_EQ(g.max_level(), 0);
  EXPECT_TRUE(g.validate());
}

TEST(TaskGraph, LevelsFollowPaperNumbering) {
  // Fig. 1: main at level 0, heat at 1, leaves at 3.
  TaskGraph g;
  NodeId main = g.add_root(1);
  NodeId heat = g.add_child(main, 1);
  NodeId l = g.add_child(heat, 1);
  NodeId r = g.add_child(heat, 1);
  NodeId t4 = g.add_child(l, 10);
  g.add_child(l, 10);
  g.add_child(r, 10);
  NodeId t7 = g.add_child(r, 10);
  EXPECT_EQ(g.node(main).level, 0);
  EXPECT_EQ(g.node(heat).level, 1);
  EXPECT_EQ(g.node(t4).level, 3);
  EXPECT_EQ(g.node(t7).level, 3);
  EXPECT_EQ(g.count_at_level(3), 4u);
  EXPECT_EQ(g.nodes_at_level(2).size(), 2u);
  EXPECT_TRUE(g.validate());
}

TEST(TaskGraph, CriticalPathParallelTakesMax) {
  TaskGraph g;
  NodeId root = g.add_root(2, 1);
  g.add_child(root, 10);
  g.add_child(root, 50);
  g.add_child(root, 20);
  EXPECT_EQ(g.total_work(), 2u + 1 + 10 + 50 + 20);
  EXPECT_EQ(g.critical_path(), 2u + 50 + 1);
}

TEST(TaskGraph, CriticalPathSequentialSumsPhases) {
  TaskGraph g;
  NodeId root = g.add_root(2, 1);
  g.set_sequential(root, true);
  g.add_child(root, 10);
  g.add_child(root, 50);
  g.add_child(root, 20);
  EXPECT_EQ(g.critical_path(), 2u + 10 + 50 + 20 + 1);
}

TEST(TaskGraph, CriticalPathNested) {
  TaskGraph g;
  NodeId root = g.add_root(1);
  NodeId a = g.add_child(root, 1, 4);  // post work counts on the path
  g.add_child(a, 100);
  g.add_child(a, 7);
  NodeId b = g.add_child(root, 1);
  g.add_child(b, 30);
  EXPECT_EQ(g.critical_path(), 1u + (1 + 100 + 4));
}

TEST(TaskGraph, BranchingDegree) {
  TaskGraph g = make_recursive_dnc(3, 2, 5);
  EXPECT_EQ(g.branching_degree(), 3);
}

TEST(Generators, RecursiveDncShape) {
  // B=2, depth 3: main(0) -> 1 -> 2 -> 4 leaves at level 3.
  TaskGraph g = make_recursive_dnc(2, 3, 100, 1);
  EXPECT_TRUE(g.validate());
  EXPECT_EQ(g.max_level(), 3);
  EXPECT_EQ(g.count_at_level(0), 1u);
  EXPECT_EQ(g.count_at_level(1), 1u);
  EXPECT_EQ(g.count_at_level(2), 2u);
  EXPECT_EQ(g.count_at_level(3), 4u);
  EXPECT_EQ(g.size(), 8u);
  // Leaves carry leaf work.
  for (NodeId n : g.nodes_at_level(3)) EXPECT_EQ(g.node(n).pre_work, 100u);
}

TEST(Generators, RecursiveDncDepthOne) {
  TaskGraph g = make_recursive_dnc(2, 1, 42);
  EXPECT_EQ(g.size(), 2u);  // main + one leaf
  EXPECT_EQ(g.node(1).pre_work, 42u);
}

TEST(Generators, FlatGraph) {
  TaskGraph g = make_flat(10, 7);
  EXPECT_TRUE(g.validate());
  EXPECT_EQ(g.size(), 11u);
  EXPECT_EQ(g.count_at_level(1), 10u);
  EXPECT_EQ(g.max_level(), 1);
}

TEST(Generators, IrregularIsDeterministicPerSeed) {
  TaskGraph a = make_irregular(5, 4, 6, 500, 100);
  TaskGraph b = make_irregular(5, 4, 6, 500, 100);
  EXPECT_EQ(a.size(), b.size());
  EXPECT_EQ(a.total_work(), b.total_work());
  EXPECT_EQ(a.critical_path(), b.critical_path());
  TaskGraph c = make_irregular(6, 4, 6, 500, 100);
  EXPECT_TRUE(a.size() != c.size() || a.total_work() != c.total_work());
}

/// Property sweep: structural invariants hold over many random graphs.
class IrregularGraphProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(IrregularGraphProperty, InvariantsHold) {
  TaskGraph g = make_irregular(GetParam(), 5, 8, 400, 50);
  ASSERT_TRUE(g.validate());
  EXPECT_GE(g.size(), 1u);
  EXPECT_LE(g.size(), 400u);
  EXPECT_LE(g.max_level(), 8);
  // T_inf <= T_1 always; equality iff the graph is a chain.
  EXPECT_LE(g.critical_path(), g.total_work());
  EXPECT_GT(g.critical_path(), 0u);
  // Children count at each level is consistent with parents.
  std::size_t total = 0;
  for (std::int32_t lvl = 0; lvl <= g.max_level(); ++lvl)
    total += g.count_at_level(lvl);
  EXPECT_EQ(total, g.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, IrregularGraphProperty,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace cab::dag
