#include <gtest/gtest.h>

#include "dag/partition.hpp"

namespace cab::dag {
namespace {

PartitionParams params(std::int32_t b, std::int32_t m, std::uint64_t sd,
                       std::uint64_t sc) {
  PartitionParams p;
  p.branching = b;
  p.sockets = m;
  p.input_bytes = sd;
  p.shared_cache_bytes = sc;
  return p;
}

TEST(BoundaryLevel, PaperWorkedExample3kx2k) {
  // Section V-B: 3k*2k doubles = 48 MB, M = 4, Sc = 6 MB, B = 2
  //   BL = max(ceil(log2 4 + 1), ceil(log2(48/6) + 1)) = max(3, 4) = 4.
  auto p = params(2, 4, 48ull << 20, 6ull << 20);
  EXPECT_EQ(boundary_level(p), 4);
}

TEST(BoundaryLevel, SingleSocketIsZero) {
  // Algorithm II step 2: M == 1 -> BL = 0 (classic work-stealing).
  EXPECT_EQ(boundary_level(params(2, 1, 1ull << 30, 6ull << 20)), 0);
}

TEST(BoundaryLevel, SingleSocketDegeneratesBeforeParameterChecks) {
  // M == 1 must yield BL = 0 deterministically even when the parameters
  // Eq. 4 would otherwise consume are degenerate or unknown — a
  // single-socket caller with Sd < Sc (or no B/Sc estimate at all, as
  // with the paper's irregular Queens/CK DAGs) must not trip the
  // branching/cache assertions that only matter for M >= 2.
  EXPECT_EQ(boundary_level(params(2, 1, 1024, 6ull << 20)), 0);  // Sd < Sc
  EXPECT_EQ(boundary_level(params(0, 1, 1024, 6ull << 20)), 0);  // no B
  EXPECT_EQ(boundary_level(params(1, 1, 1024, 6ull << 20)), 0);
  EXPECT_EQ(boundary_level(params(2, 1, 1024, 0)), 0);  // no Sc
  EXPECT_EQ(boundary_level(params(0, 1, 0, 0)), 0);
}

TEST(BoundaryLevel, SocketCountConstraintDominatesSmallInputs) {
  // Tiny input: Eq. 1 (B^(BL-1) >= M) decides. M=4, B=2 -> BL = 3.
  EXPECT_EQ(boundary_level(params(2, 4, 1024, 6ull << 20)), 3);
  // M=2 -> BL = 2 (the dual-socket dual-core example of Section II).
  EXPECT_EQ(boundary_level(params(2, 2, 1024, 6ull << 20)), 2);
}

TEST(BoundaryLevel, CacheConstraintDominatesLargeInputs) {
  // 96 MB / 6 MB = 16 -> B^(BL-1) >= 16 -> BL = 5 > the M constraint.
  EXPECT_EQ(boundary_level(params(2, 4, 96ull << 20, 6ull << 20)), 5);
}

TEST(BoundaryLevel, HigherBranchingNeedsFewerLevels) {
  // B = 4: 4^(BL-1) >= 16 -> BL = 3.
  EXPECT_EQ(boundary_level(params(4, 4, 96ull << 20, 6ull << 20)), 3);
}

TEST(BoundaryLevel, ExactFitBoundary) {
  // Sd == Sc: one leaf inter-socket task would fit, but M=4 forces BL=3.
  EXPECT_EQ(boundary_level(params(2, 4, 6ull << 20, 6ull << 20)), 3);
  // Just over an exact power: 48MB+1 byte needs ceil -> split = 9 -> BL=5.
  EXPECT_EQ(boundary_level(params(2, 4, (48ull << 20) + 1, 6ull << 20)), 5);
}

TEST(BoundaryLevel, ZeroInputBytes) {
  EXPECT_EQ(boundary_level(params(2, 4, 0, 6ull << 20)), 3);
}

TEST(LeafInterTaskCount, PowersOfBranching) {
  EXPECT_EQ(leaf_inter_task_count(2, 0), 1u);
  EXPECT_EQ(leaf_inter_task_count(2, 1), 1u);
  EXPECT_EQ(leaf_inter_task_count(2, 4), 8u);
  EXPECT_EQ(leaf_inter_task_count(3, 3), 9u);
}

TEST(ClampBoundaryLevel, CapsAtLeafLevelMinusSquadDepth) {
  // Heat 4k x 4k on 4x4: Eq. 4 gives 6 = the leaf level (one worker per
  // squad); the third constraint caps it at 6 - log2(4) = 4.
  EXPECT_EQ(clamp_boundary_level(6, /*leaf_level=*/6, /*N=*/4, /*M=*/4, 2),
            4);
  // Already-small BL is untouched.
  EXPECT_EQ(clamp_boundary_level(3, 6, 4, 4, 2), 3);
  EXPECT_EQ(clamp_boundary_level(4, 6, 4, 4, 2), 4);
}

TEST(ClampBoundaryLevel, Eq1FloorTakesPriority) {
  // A shallow DAG (leaf level 3) on 4 sockets: the cap would be 1, but
  // Eq. 1 needs B^(BL-1) >= M => BL >= 3.
  EXPECT_EQ(clamp_boundary_level(3, 3, 4, 4, 2), 3);
}

TEST(ClampBoundaryLevel, ZeroPassesThrough) {
  EXPECT_EQ(clamp_boundary_level(0, 6, 4, 4, 2), 0);
}

TEST(ClampBoundaryLevel, HigherBranchingNeedsFewerLevels) {
  // B=4: one level below the leaf inter-socket task already yields 4
  // leaves per squad.
  EXPECT_EQ(clamp_boundary_level(9, 6, 4, 4, 4), 5);
}

TEST(TierAssignment, ClassifiesPerModifiedCilk2c) {
  // Section IV-B: a spawn by a task at level < BL produces an inter-socket
  // child => tasks at level <= BL are inter, leaf inter tasks at == BL.
  TierAssignment t{3};
  EXPECT_TRUE(t.is_inter(0));
  EXPECT_TRUE(t.is_inter(3));
  EXPECT_FALSE(t.is_inter(4));
  EXPECT_TRUE(t.is_leaf_inter(3));
  EXPECT_FALSE(t.is_leaf_inter(2));
  EXPECT_TRUE(t.spawns_inter_child(2));
  EXPECT_FALSE(t.spawns_inter_child(3));
  EXPECT_TRUE(t.is_intra(4));
}

TEST(TierAssignment, BlZeroMeansEverythingIntra) {
  TierAssignment t{0};
  for (std::int32_t lvl = 0; lvl < 10; ++lvl) {
    EXPECT_FALSE(t.is_inter(lvl));
    EXPECT_FALSE(t.is_leaf_inter(lvl));
    EXPECT_FALSE(t.spawns_inter_child(lvl));
  }
}

/// Property: BL from Eq. 4 is the *smallest* level satisfying both
/// constraints (Eq. 1 and Eq. 2), over a sweep of parameters.
struct BlCase {
  std::int32_t b, m;
  std::uint64_t sd_mib;
};

class BoundaryLevelProperty : public ::testing::TestWithParam<BlCase> {};

TEST_P(BoundaryLevelProperty, IsMinimalSatisfyingBothConstraints) {
  const auto c = GetParam();
  const std::uint64_t sc = 6ull << 20;
  const std::uint64_t sd = c.sd_mib << 20;
  const std::int32_t bl = boundary_level(params(c.b, c.m, sd, sc));
  if (c.m == 1) {
    EXPECT_EQ(bl, 0);
    return;
  }
  auto leaves = [&](std::int32_t l) { return leaf_inter_task_count(c.b, l); };
  // Satisfies Eq. 1 and Eq. 2.
  EXPECT_GE(leaves(bl), static_cast<std::uint64_t>(c.m));
  EXPECT_LE((sd + leaves(bl) - 1) / leaves(bl), sc);
  // Minimal: bl-1 violates at least one (when bl > 1).
  if (bl > 1) {
    const bool eq1_ok = leaves(bl - 1) >= static_cast<std::uint64_t>(c.m);
    const bool eq2_ok = (sd + leaves(bl - 1) - 1) / leaves(bl - 1) <= sc;
    EXPECT_FALSE(eq1_ok && eq2_ok);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BoundaryLevelProperty,
    ::testing::Values(BlCase{2, 1, 48}, BlCase{2, 2, 2}, BlCase{2, 2, 48},
                      BlCase{2, 4, 2}, BlCase{2, 4, 16}, BlCase{2, 4, 48},
                      BlCase{2, 4, 128}, BlCase{2, 8, 512}, BlCase{3, 4, 48},
                      BlCase{4, 4, 48}, BlCase{4, 16, 1024},
                      BlCase{8, 4, 4096}, BlCase{2, 4, 0}, BlCase{2, 4, 6},
                      BlCase{2, 4, 7}));

}  // namespace
}  // namespace cab::dag
