// Exhaustive-interleaving model checking of the bi-tier protocol cores
// (DESIGN.md §6). Every sync primitive under test here is the *production*
// header — ChaseLevDeque, LockedDeque, BasicSpinLock, runtime::protocol,
// MpscIntrusiveStack — compiled against chk::ModelSync instead of
// util::RealSync, so the code the checker explores is byte-for-byte the
// code the scheduler runs.
//
// Invariant oracles covered (see DESIGN.md §6 for the mapping):
//   1. no lost task            — deque + protocol models drain to empty
//   2. no double execution     — per-task exactly-once counters
//   3. ≤1 inter task per squad — BusyState gate in the squad models
//   4. deque linearizability   — FIFO steal order / LIFO pop, exactly-once
//   5. BL epoch-boundary safety— race-detector proof on the retune model
//   6. batch-claim exclusivity — steal_batch's claim bit fences out the
//      owner and rival thieves for the whole multi-element read; the
//      occupancy-mask CAS loops never lose a neighbouring bit's flip
//   7. lazy-claim handshake   — a lazy frame runs exactly once (owner pop
//      xor thief promotion), the promotion copy-out is ordered before
//      slot reuse, and identity transfer preserves the Eq. 15 bound
//
// Negative models (ModelCheckNegative.*) seed real ordering bugs and
// assert the checker (a) catches them and (b) reproduces the identical
// failure from the reported schedule seed.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>

#include "chk/sync.hpp"
#include "deque/chase_lev_deque.hpp"
#include "deque/locked_deque.hpp"
#include "runtime/frame_pool.hpp"
#include "runtime/squad_protocol.hpp"
#include "util/spin_lock.hpp"

// The checker multiplexes model threads onto ucontext fibers on one OS
// thread; TSan does not understand ucontext stack switches, so the model
// suite is meaningless (and crash-prone) under -fsanitize=thread. The
// TSan CI job covers the same primitives via the stress suite instead.
#if defined(__SANITIZE_THREAD__)
#define CAB_CHK_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CAB_CHK_TSAN 1
#endif
#endif

namespace {

using namespace cab;
namespace protocol = runtime::protocol;

using ModelDeque = deque::ChaseLevDeque<int*, chk::ModelSync>;
using ModelLock = util::BasicSpinLock<chk::ModelSync>;
using ModelBusy = protocol::BusyState<chk::ModelSync>;

/// Minimal task for the squad-protocol models: an exactly-once execution
/// counter plus the squad tag bind_inter() writes.
struct MTask {
  chk::atomic<int> exec{0};
  void* inter_acquired_by = nullptr;
};
using ModelPool = deque::LockedDeque<MTask*, ModelLock>;

chk::Options bounded(int preemptions) {
  chk::Options o;
  o.preemption_bound = preemptions;
  return o;
}

class ModelCheck : public ::testing::Test {
 protected:
  void SetUp() override {
#if defined(CAB_CHK_TSAN)
    GTEST_SKIP() << "chk fibers (ucontext) are unsupported under TSan; "
                    "the stress suite covers this configuration";
#endif
  }
};

class ModelCheckNegative : public ModelCheck {};

// ---------------------------------------------------------------------------
// Chase-Lev deque (oracles 1, 2, 4)
// ---------------------------------------------------------------------------

// One item, owner pop racing one thief steal — the classic Chase-Lev
// corner (both contend on the last element through the seq_cst fence /
// top-CAS dance). Small enough to explore with NO preemption bound:
// every SC interleaving of the two threads is visited.
TEST_F(ModelCheck, ChaseLevLastItemOwnerVsThief) {
  auto r = chk::explore([] {
    std::array<int, 1> items{};
    std::array<chk::atomic<int>, 1> taken{};
    ModelDeque d(2);
    d.push_bottom(&items[0]);
    chk::thread thief([&] {
      if (int* p = d.steal_top())
        taken[p - items.data()].fetch_add(1, std::memory_order_relaxed);
    });
    while (int* p = d.pop_bottom())
      taken[p - items.data()].fetch_add(1, std::memory_order_relaxed);
    thief.join();
    chk::assert_now(taken[0].load(std::memory_order_relaxed) == 1,
                    "last item taken exactly once, by owner xor thief");
  });
  ASSERT_TRUE(r.ok()) << r.summary();
  EXPECT_TRUE(r.exhausted) << r.summary();
  // Measured 90k+; the floor just guards against the explorer silently
  // degenerating into a single-schedule run.
  EXPECT_GE(r.interleavings, 10000u) << r.summary();
}

// Two items: steals must observe push (FIFO) order and pops LIFO order —
// the linearizability oracle. Bounded exploration (CHESS-style): every
// schedule with at most 3 forced preemptions.
TEST_F(ModelCheck, ChaseLevStealOrderLinearizable) {
  auto r = chk::explore(
      [] {
        std::array<int, 2> items{};
        std::array<chk::atomic<int>, 2> taken{};
        ModelDeque d(2);
        d.push_bottom(&items[0]);
        d.push_bottom(&items[1]);
        chk::thread thief([&] {
          int last = -1;
          for (int attempt = 0; attempt < 2; ++attempt) {
            if (int* p = d.steal_top()) {
              const int idx = static_cast<int>(p - items.data());
              chk::assert_now(idx > last, "steals arrive in push (FIFO) order");
              last = idx;
              taken[idx].fetch_add(1, std::memory_order_relaxed);
            }
          }
        });
        int last = 2;
        while (int* p = d.pop_bottom()) {
          const int idx = static_cast<int>(p - items.data());
          chk::assert_now(idx < last, "pops arrive in LIFO order");
          last = idx;
          taken[idx].fetch_add(1, std::memory_order_relaxed);
        }
        thief.join();
        for (auto& t : taken)
          chk::assert_now(t.load(std::memory_order_relaxed) == 1,
                          "every pushed item taken exactly once");
      },
      bounded(3));
  ASSERT_TRUE(r.ok()) << r.summary();
  EXPECT_TRUE(r.exhausted) << r.summary();
  EXPECT_GE(r.interleavings, 1000u) << r.summary();
}

// grow() while a thief steals: capacity 2, third push resizes the ring
// concurrently with a steal of the oldest element (the ring-swap /
// stale-top hazard grow()'s ordering comments argue about).
TEST_F(ModelCheck, ChaseLevGrowUnderConcurrentSteal) {
  auto r = chk::explore(
      [] {
        std::array<int, 3> items{};
        std::array<chk::atomic<int>, 3> taken{};
        ModelDeque d(2);
        d.push_bottom(&items[0]);
        d.push_bottom(&items[1]);
        chk::thread thief([&] {
          if (int* p = d.steal_top())
            taken[p - items.data()].fetch_add(1, std::memory_order_relaxed);
        });
        d.push_bottom(&items[2]);  // grows the ring from 2 to 4 slots
        while (int* p = d.pop_bottom())
          taken[p - items.data()].fetch_add(1, std::memory_order_relaxed);
        thief.join();
        for (auto& t : taken)
          chk::assert_now(t.load(std::memory_order_relaxed) == 1,
                          "no task lost or duplicated across grow()");
      },
      bounded(3));
  ASSERT_TRUE(r.ok()) << r.summary();
  EXPECT_TRUE(r.exhausted) << r.summary();
  EXPECT_GE(r.interleavings, 1000u) << r.summary();
}

// ---------------------------------------------------------------------------
// Chase-Lev steal_batch: the claim-bit protocol (oracles 1, 2, 4)
// ---------------------------------------------------------------------------

// Batch thief vs popping owner over 3 items. The claim CAS must fence the
// owner out for the whole multi-element read: the oracle is conservation
// (no lost task, no double execution) plus the batch's internal FIFO
// order and the steal-half bound k <= ceil(3/2) = 2. The owner's
// claim-backoff spin (pop_bottom) is explored too — ModelSync::spin_pause
// is a scheduler yield, so every "owner pops mid-claim" schedule the spin
// protects against is actually visited.
TEST_F(ModelCheck, StealBatchOwnerPopRace) {
  auto r = chk::explore(
      [] {
        std::array<int, 3> items{};
        std::array<chk::atomic<int>, 3> taken{};
        ModelDeque d(4);
        for (auto& it : items) d.push_bottom(&it);
        chk::thread thief([&] {
          std::array<int*, 4> buf{};
          const std::size_t k = d.steal_batch(buf.data(), buf.size());
          chk::assert_now(k <= 2, "batch exceeds ceil(n/2) steal-half bound");
          int last = -1;
          for (std::size_t i = 0; i < k; ++i) {
            const int idx = static_cast<int>(buf[i] - items.data());
            chk::assert_now(idx > last, "batch arrives in push (FIFO) order");
            last = idx;
            taken[idx].fetch_add(1, std::memory_order_relaxed);
          }
        });
        while (int* p = d.pop_bottom())
          taken[p - items.data()].fetch_add(1, std::memory_order_relaxed);
        thief.join();
        while (int* p = d.pop_bottom())  // drain whatever the race left
          taken[p - items.data()].fetch_add(1, std::memory_order_relaxed);
        for (auto& t : taken)
          chk::assert_now(t.load(std::memory_order_relaxed) == 1,
                          "a task was lost or executed twice across the "
                          "batch claim");
      },
      bounded(3));
  ASSERT_TRUE(r.ok()) << r.summary();
  EXPECT_TRUE(r.exhausted) << r.summary();
  EXPECT_GE(r.interleavings, 1000u) << r.summary();
}

// Batch thief racing a single-steal thief AND the popping owner: the
// single steal must either lose cleanly against the claim (its CAS
// expects an unmarked top) or take an element the batch then excludes.
TEST_F(ModelCheck, StealBatchVsSingleStealVsPop) {
  auto r = chk::explore(
      [] {
        std::array<int, 3> items{};
        std::array<chk::atomic<int>, 3> taken{};
        ModelDeque d(4);
        for (auto& it : items) d.push_bottom(&it);
        chk::thread batch_thief([&] {
          std::array<int*, 4> buf{};
          const std::size_t k = d.steal_batch(buf.data(), buf.size());
          for (std::size_t i = 0; i < k; ++i)
            taken[buf[i] - items.data()].fetch_add(1,
                                                   std::memory_order_relaxed);
        });
        chk::thread single_thief([&] {
          if (int* p = d.steal_top())
            taken[p - items.data()].fetch_add(1, std::memory_order_relaxed);
        });
        if (int* p = d.pop_bottom())
          taken[p - items.data()].fetch_add(1, std::memory_order_relaxed);
        batch_thief.join();
        single_thief.join();
        while (int* p = d.pop_bottom())
          taken[p - items.data()].fetch_add(1, std::memory_order_relaxed);
        for (auto& t : taken)
          chk::assert_now(t.load(std::memory_order_relaxed) == 1,
                          "a task was lost or executed twice under "
                          "batch + single-steal contention");
      },
      bounded(2));
  ASSERT_TRUE(r.ok()) << r.summary();
  EXPECT_TRUE(r.exhausted) << r.summary();
  EXPECT_GE(r.interleavings, 1000u) << r.summary();
}

// Two batch thieves: claims are mutually exclusive (the second claim CAS
// must fail against the marked top), so the batches never overlap.
TEST_F(ModelCheck, StealBatchClaimMutualExclusion) {
  auto r = chk::explore(
      [] {
        std::array<int, 4> items{};
        std::array<chk::atomic<int>, 4> taken{};
        ModelDeque d(4);
        for (auto& it : items) d.push_bottom(&it);
        auto batch = [&] {
          std::array<int*, 4> buf{};
          const std::size_t k = d.steal_batch(buf.data(), buf.size());
          for (std::size_t i = 0; i < k; ++i)
            taken[buf[i] - items.data()].fetch_add(1,
                                                   std::memory_order_relaxed);
        };
        chk::thread t1(batch);
        batch();
        t1.join();
        while (int* p = d.pop_bottom())
          taken[p - items.data()].fetch_add(1, std::memory_order_relaxed);
        for (auto& t : taken)
          chk::assert_now(t.load(std::memory_order_relaxed) == 1,
                          "overlapping batch claims took an element twice");
      },
      bounded(3));
  ASSERT_TRUE(r.ok()) << r.summary();
  EXPECT_TRUE(r.exhausted) << r.summary();
  EXPECT_GE(r.interleavings, 100u) << r.summary();
}

// steal_batch racing a ring grow(): capacity 2, the owner's third push
// resizes while the thief's claim is in flight. The claim base must stay
// readable through the ring swap (grow copies the full masked range;
// push's capacity arithmetic masks the claim bit — the interaction the
// `& ~kClaimBit` in push_bottom exists for).
TEST_F(ModelCheck, StealBatchGrowRace) {
  auto r = chk::explore(
      [] {
        std::array<int, 3> items{};
        std::array<chk::atomic<int>, 3> taken{};
        ModelDeque d(2);
        d.push_bottom(&items[0]);
        d.push_bottom(&items[1]);
        chk::thread thief([&] {
          std::array<int*, 4> buf{};
          const std::size_t k = d.steal_batch(buf.data(), buf.size());
          for (std::size_t i = 0; i < k; ++i)
            taken[buf[i] - items.data()].fetch_add(1,
                                                   std::memory_order_relaxed);
        });
        d.push_bottom(&items[2]);  // grows the ring from 2 to 4 slots
        while (int* p = d.pop_bottom())
          taken[p - items.data()].fetch_add(1, std::memory_order_relaxed);
        thief.join();
        while (int* p = d.pop_bottom())
          taken[p - items.data()].fetch_add(1, std::memory_order_relaxed);
        for (auto& t : taken)
          chk::assert_now(t.load(std::memory_order_relaxed) == 1,
                          "no task lost or duplicated across grow() under "
                          "a batch claim");
      },
      bounded(3));
  ASSERT_TRUE(r.ok()) << r.summary();
  EXPECT_TRUE(r.exhausted) << r.summary();
  EXPECT_GE(r.interleavings, 1000u) << r.summary();
}

// ---------------------------------------------------------------------------
// Occupancy mask (victim-selection hints)
// ---------------------------------------------------------------------------

using ModelMask = protocol::OccupancyMask<chk::ModelSync>;

// Concurrent transitions on different bits must compose (the CAS loop
// must not lose a neighbour's update — the word-level analogue of "no
// lost task" for the hint state).
TEST_F(ModelCheck, OccupancyMaskDisjointBitsCommute) {
  auto r = chk::explore([] {
    ModelMask mask;
    mask.set(1);
    chk::thread t([&] { chk::assert_now(mask.set(0), "bit 0 newly set"); });
    chk::assert_now(mask.clear(1), "bit 1 newly cleared");
    t.join();
    chk::assert_now(mask.load() == 0x1u,
                    "a concurrent set/clear on disjoint bits was lost");
  });
  ASSERT_TRUE(r.ok()) << r.summary();
  EXPECT_TRUE(r.exhausted) << r.summary();
  EXPECT_GE(r.interleavings, 10u) << r.summary();
}

// Two thieves hearsay-clearing the same victim bit: exactly one observes
// the transition (so WorkerStats mask counters never double-count one
// flip), and a concurrent setter of the same bit serializes cleanly.
TEST_F(ModelCheck, OccupancyMaskExactlyOnceTransitions) {
  auto r = chk::explore([] {
    ModelMask mask;
    mask.set(3);
    chk::atomic<int> observed{0};
    auto clearer = [&] {
      if (mask.clear(3)) observed.fetch_add(1, std::memory_order_relaxed);
    };
    chk::thread t(clearer);
    clearer();
    t.join();
    chk::assert_now(observed.load(std::memory_order_relaxed) == 1,
                    "one bit flip observed by exactly one clearer");
    chk::assert_now(mask.load() == 0u, "bit cleared");
  });
  ASSERT_TRUE(r.ok()) << r.summary();
  EXPECT_TRUE(r.exhausted) << r.summary();
  EXPECT_GE(r.interleavings, 10u) << r.summary();
}

// ---------------------------------------------------------------------------
// Spin lock + locked deque (oracles 1, 2; satellite: locked_deque/spin_lock
// model coverage)
// ---------------------------------------------------------------------------

TEST_F(ModelCheck, SpinLockMutualExclusion) {
  auto r = chk::explore([] {
    ModelLock lk;
    chk::var<int> counter{0};
    auto body = [&] {
      for (int i = 0; i < 2; ++i) {
        lk.lock();
        // chk::var is under the happens-before race detector: if the lock
        // failed to serialize the sections this read/write pair races.
        counter.set(counter.get() + 1);
        lk.unlock();
      }
    };
    chk::thread t(body);
    body();
    t.join();
    chk::assert_now(counter.get() == 4, "all guarded increments happened");
  });
  ASSERT_TRUE(r.ok()) << r.summary();
  EXPECT_TRUE(r.exhausted) << r.summary();
  EXPECT_GE(r.interleavings, 100u) << r.summary();
}

// LockedDeque (the inter-socket pool implementation) over the *model*
// spin lock: owner push/pop vs thief steals, fully exhaustive.
TEST_F(ModelCheck, LockedDequeExactlyOnceUnderContention) {
  auto r = chk::explore([] {
    std::array<int, 2> items{};
    std::array<chk::atomic<int>, 2> taken{};
    deque::LockedDeque<int*, ModelLock> pool;
    pool.push_bottom(&items[0]);
    chk::thread thief([&] {
      for (int attempt = 0; attempt < 2; ++attempt) {
        if (int* p = pool.steal_top())
          taken[p - items.data()].fetch_add(1, std::memory_order_relaxed);
      }
    });
    pool.push_bottom(&items[1]);
    while (int* p = pool.pop_bottom())
      taken[p - items.data()].fetch_add(1, std::memory_order_relaxed);
    thief.join();
    for (auto& t : taken)
      chk::assert_now(t.load(std::memory_order_relaxed) == 1,
                      "every item taken exactly once");
  });
  ASSERT_TRUE(r.ok()) << r.summary();
  EXPECT_TRUE(r.exhausted) << r.summary();
  EXPECT_GE(r.interleavings, 10000u) << r.summary();
}

// ---------------------------------------------------------------------------
// MPSC remote-free stack (frame recycling; oracles 1, 2)
// ---------------------------------------------------------------------------

/// Stand-in for TaskFrame in the remote-free channel models: the intrusive
/// link the stack requires plus an exactly-once recovery counter.
struct RNode {
  RNode* pool_next = nullptr;
  chk::atomic<int> taken{0};
};
using ModelRemoteStack = runtime::MpscIntrusiveStack<RNode, chk::ModelSync>;

/// Detach the whole chain and mark every node recovered; returns the count.
/// Mirrors FramePool::acquire's drain (take_all then walk pool_next links).
int drain_all(ModelRemoteStack& stack) {
  int recovered = 0;
  for (RNode* n = stack.take_all(); n != nullptr;) {
    RNode* next = n->pool_next;  // read before the node is (conceptually) reused
    n->taken.fetch_add(1, std::memory_order_relaxed);
    ++recovered;
    n = next;
  }
  return recovered;
}

// Two remote completers push frames while the owning worker concurrently
// drains — the exact shape of cross-socket completion racing
// FramePool::acquire. Conservation oracle: after the dust settles every
// frame came back exactly once (no lost frame: a push the exchange missed
// is picked up by the final drain; no double pop: a frame never appears
// in two detached chains).
TEST_F(ModelCheck, MpscRemoteFreeStackConservation) {
  auto r = chk::explore(
      [] {
        std::array<RNode, 3> nodes;
        ModelRemoteStack stack;
        chk::thread remote1([&] { stack.push(&nodes[0]); });
        chk::thread remote2([&] {
          stack.push(&nodes[1]);
          stack.push(&nodes[2]);
        });
        int recovered = drain_all(stack);  // owner drains mid-push
        remote1.join();
        remote2.join();
        recovered += drain_all(stack);  // owner's next acquire gets the rest
        chk::assert_now(recovered == 3,
                        "every remote-freed frame recovered exactly once");
        for (auto& n : nodes)
          chk::assert_now(n.taken.load(std::memory_order_relaxed) == 1,
                          "a frame was lost or popped twice");
      },
      bounded(3));
  ASSERT_TRUE(r.ok()) << r.summary();
  EXPECT_TRUE(r.exhausted) << r.summary();
  EXPECT_GE(r.interleavings, 100u) << r.summary();
}

// ---------------------------------------------------------------------------
// 2-worker / 2-squad protocol models (oracles 1, 2, 3)
// ---------------------------------------------------------------------------

// Two squad heads racing Algorithm I steps 4/5 against a shared
// inter-socket pool: gate probe -> steal -> bind_inter -> execute ->
// release, then a trailing gate re-probe. Fully exhaustive (no
// preemption bound); this is the headline state-space number quoted in
// DESIGN.md §6.
TEST_F(ModelCheck, SquadProtocolCrossSquadHeads) {
  auto r = chk::explore([] {
    ModelBusy busy0, busy1;
    ModelPool pool;
    std::array<MTask, 2> tasks;
    pool.push_bottom(&tasks[0]);
    pool.push_bottom(&tasks[1]);
    auto head = [&](ModelBusy& busy) {
      const auto paths = protocol::plan_acquire(true, busy.busy(), false);
      if (paths.inter_pools) {
        if (MTask* t = pool.steal_top()) {
          const int now = protocol::bind_inter(busy, t, &busy);
          chk::assert_now(now <= 1, "at most one inter-socket task per squad");
          chk::assert_now(t->inter_acquired_by == &busy,
                          "task tagged with acquiring squad before execution");
          t->exec.fetch_add(1, std::memory_order_relaxed);
          chk::assert_now(busy.release() >= 0, "busy release underflow");
        }
      }
      const auto again = protocol::plan_acquire(true, busy.busy(), false);
      chk::assert_now(again.inter_pools || again.steal_intra_in_squad,
                      "the gate always opens some acquire path for a head");
    };
    chk::thread w1([&] { head(busy1); });
    head(busy0);
    w1.join();
    while (MTask* t = pool.pop_bottom())
      t->exec.fetch_add(1, std::memory_order_relaxed);
    for (auto& t : tasks)
      chk::assert_now(t.exec.load(std::memory_order_relaxed) == 1,
                      "no inter-socket task lost or run twice");
  });
  ASSERT_TRUE(r.ok()) << r.summary();
  EXPECT_TRUE(r.exhausted) << r.summary();
  // Acceptance floor for the protocol models: >= 10k distinct
  // interleavings, all visited (measured ~25.5k).
  EXPECT_GE(r.interleavings, 10000u) << r.summary();
}

// Same pair of heads, but each runs TWO acquire rounds so release/re-probe
// races (squad flapping busy->free->busy) are in scope. The unbounded
// space is ~1.2M schedules; bound to 6 forced preemptions per schedule
// (CHESS-style) to keep the suite fast while still visiting ~31k.
TEST_F(ModelCheck, SquadProtocolCrossSquadHeadsTwoRounds) {
  auto r = chk::explore(
      [] {
        ModelBusy busy0, busy1;
        ModelPool pool;
        std::array<MTask, 2> tasks;
        pool.push_bottom(&tasks[0]);
        pool.push_bottom(&tasks[1]);
        auto head = [&](ModelBusy& busy) {
          for (int round = 0; round < 2; ++round) {
            const auto paths = protocol::plan_acquire(true, busy.busy(), false);
            if (!paths.inter_pools) continue;
            MTask* t = pool.steal_top();
            if (!t) continue;
            const int now = protocol::bind_inter(busy, t, &busy);
            chk::assert_now(now <= 1,
                            "at most one inter-socket task per squad");
            t->exec.fetch_add(1, std::memory_order_relaxed);
            chk::assert_now(busy.release() >= 0, "busy release underflow");
          }
        };
        chk::thread w1([&] { head(busy1); });
        head(busy0);
        w1.join();
        while (MTask* t = pool.pop_bottom())
          t->exec.fetch_add(1, std::memory_order_relaxed);
        for (auto& t : tasks)
          chk::assert_now(t.exec.load(std::memory_order_relaxed) == 1,
                          "no inter-socket task lost or run twice");
      },
      bounded(6));
  ASSERT_TRUE(r.ok()) << r.summary();
  EXPECT_TRUE(r.exhausted) << r.summary();
  EXPECT_GE(r.interleavings, 10000u) << r.summary();
}

// One squad, head + non-head member: the member must never open the
// inter-socket pools (Algorithm I's role split), and the squad's intra
// ChaseLev deque still hands its task out exactly once while the head
// binds an inter task from the other squad's pool.
TEST_F(ModelCheck, SquadProtocolSameSquadRoleGating) {
  auto r = chk::explore([] {
    ModelBusy busy0;
    ModelPool other_squad_pool;
    ModelDeque intra(2);
    MTask t_inter;
    std::array<int, 1> intra_items{};
    std::array<chk::atomic<int>, 1> intra_taken{};
    other_squad_pool.push_bottom(&t_inter);
    intra.push_bottom(&intra_items[0]);
    chk::thread member([&] {
      const auto paths = protocol::plan_acquire(false, busy0.busy(), false);
      chk::assert_now(!paths.inter_pools,
                      "a non-head worker never opens the inter-socket pools");
      if (paths.steal_intra_in_squad) {
        if (int* p = intra.steal_top())
          intra_taken[p - intra_items.data()].fetch_add(
              1, std::memory_order_relaxed);
      }
    });
    const auto paths = protocol::plan_acquire(true, busy0.busy(), false);
    if (paths.inter_pools) {
      if (MTask* t = other_squad_pool.steal_top()) {
        const int now = protocol::bind_inter(busy0, t, &busy0);
        chk::assert_now(now == 1, "sole head: bind lands on a free squad");
        t->exec.fetch_add(1, std::memory_order_relaxed);
        chk::assert_now(busy0.release() >= 0, "busy release underflow");
      }
    }
    member.join();
    while (int* p = intra.pop_bottom())
      intra_taken[p - intra_items.data()].fetch_add(1,
                                                    std::memory_order_relaxed);
    chk::assert_now(intra_taken[0].load(std::memory_order_relaxed) == 1,
                    "intra task taken exactly once");
    chk::assert_now(t_inter.exec.load(std::memory_order_relaxed) == 1 ||
                        other_squad_pool.pop_bottom() == &t_inter,
                    "inter task executed once or still pooled — never lost");
  });
  ASSERT_TRUE(r.ok()) << r.summary();
  EXPECT_TRUE(r.exhausted) << r.summary();
  EXPECT_GE(r.interleavings, 100u) << r.summary();
}

// Algorithm II leaf rule is pure (no interleaving): pin it here next to
// the models that rely on it.
TEST_F(ModelCheck, HoldsBusyThroughSyncIsLeafRule) {
  EXPECT_TRUE(protocol::holds_busy_through_sync(true));
  EXPECT_FALSE(protocol::holds_busy_through_sync(false));
}

// ---------------------------------------------------------------------------
// Adaptive BL store: epoch-boundary safety (oracle 5)
// ---------------------------------------------------------------------------

// Model of Runtime::run()'s retune hand-off: the controller waits for the
// worker to park (working == 0, acquire), writes the *plain* BL field,
// then publishes the next epoch under the lifecycle mutex. BL is a
// chk::var, so the happens-before race detector proves the claim in
// runtime.cpp that BL only ever changes between epochs: any schedule in
// which the worker could read BL concurrently with the retune write would
// fail this test with a replayable seed.
TEST_F(ModelCheck, AdaptiveBlEpochBoundarySafety) {
  auto r = chk::explore([] {
    chk::var<int> bl{2};          // models Engine::tier.bl (plain field)
    chk::atomic<int> working{1};  // models Engine::working
    chk::mutex lifecycle_mu;
    chk::var<int> epoch{1};  // guarded by lifecycle_mu
    chk::atomic<int> observed{0};
    chk::thread worker([&] {
      working.fetch_sub(1, std::memory_order_acq_rel);  // park after epoch 1
      for (;;) {  // lifecycle_cv wait loop, as a poll under the mutex
        lifecycle_mu.lock();
        const int e = epoch.get();
        lifecycle_mu.unlock();
        if (e == 2) break;
        chk::yield();
      }
      observed.store(bl.get(), std::memory_order_relaxed);  // epoch 2 starts
    });
    while (working.load(std::memory_order_acquire) != 0) chk::yield();
    bl.set(5);  // retune_after_epoch: workers are parked
    lifecycle_mu.lock();
    epoch.set(2);  // next run(): ++epoch under lifecycle_mu
    lifecycle_mu.unlock();
    worker.join();
    chk::assert_now(observed.load(std::memory_order_relaxed) == 5,
                    "worker observes the retuned BL at the epoch boundary");
  });
  ASSERT_TRUE(r.ok()) << r.summary();
  EXPECT_TRUE(r.exhausted) << r.summary();
}

// ---------------------------------------------------------------------------
// Lazy-spawn claim protocol (DESIGN.md §5h; oracles 1, 2 + the Eq. 15
// space bound). The production LazyClaim compiled over chk::ModelSync,
// exercised exactly as worker.cpp drives it: every claim happens *after*
// the Chase-Lev deque handed the entry to exactly one taker — that deque
// guarantee is what licenses try_own being a verify + plain store rather
// than an RMW, so the models always route the hand-off through a real
// ModelDeque first.
// ---------------------------------------------------------------------------

using ModelClaim = protocol::LazyClaim<chk::ModelSync>;

// One lazy frame, owner pop racing one thief steal — the promotion
// handshake layered on the classic Chase-Lev last-element corner. The
// deque arbitrates; whichever side holds the entry must win its claim
// (owner: try_own verify+store; thief: try_promote CAS), and the frame
// runs exactly once.
TEST_F(ModelCheck, LazyClaimExactlyOneTaker) {
  auto r = chk::explore(
      [] {
        std::array<int, 1> slot{};
        ModelClaim claim;
        chk::atomic<int> exec{0};
        ModelDeque d(2);
        claim.arm();
        d.push_bottom(&slot[0]);
        chk::thread thief([&] {
          if (d.steal_top() != nullptr) {
            chk::assert_now(claim.try_promote(),
                            "thief holds the deque entry but lost the claim");
            claim.finish_promotion();
            exec.fetch_add(1, std::memory_order_relaxed);
          }
        });
        while (d.pop_bottom() != nullptr) {
          chk::assert_now(claim.try_own(),
                          "owner holds the deque entry but lost the claim");
          claim.finish_owned();
          exec.fetch_add(1, std::memory_order_relaxed);
        }
        thief.join();
        chk::assert_now(exec.load(std::memory_order_relaxed) == 1,
                        "lazy frame executed exactly once (no lost "
                        "continuation, no double execution)");
      },
      bounded(3));
  ASSERT_TRUE(r.ok()) << r.summary();
  EXPECT_TRUE(r.exhausted) << r.summary();
  EXPECT_GE(r.interleavings, 100u) << r.summary();
}

// The load-bearing edge of the handshake: finish_promotion's release
// store pairs with reclaimable()'s acquire so the thief's capture
// copy-out is ordered before the owner's slot reuse. The capture is a
// chk::var — any interleaving where the owner re-arms the slot without
// that happens-before edge is a detected data race — and the promoted
// copy must read the original capture, never the reused slot's.
TEST_F(ModelCheck, LazyClaimPromotionCopyOutVsSlotReuse) {
  auto r = chk::explore(
      [] {
        chk::var<int> capture{42};  // the LazyFrame slot's body storage
        ModelClaim claim;
        chk::atomic<int> promoted{0};
        claim.arm();
        chk::thread thief([&] {
          if (claim.try_promote()) {
            // body.relocate_from: read the capture out of the slot...
            promoted.store(capture.get(), std::memory_order_relaxed);
            claim.finish_promotion();  // ...then release the slot
          }
        });
        // Owner (LazyStack::push truncation): reuse the slot for a new
        // spawn the moment it reads kFreed. One attempt — interleavings
        // where the claim is still held simply skip the reuse.
        if (claim.reclaimable()) {
          capture.set(7);  // re-arm with the next spawn's capture
          claim.arm();
        }
        thief.join();
        chk::assert_now(promoted.load(std::memory_order_relaxed) == 42,
                        "promotion copied the reused slot's capture");
      },
      bounded(3));
  ASSERT_TRUE(r.ok()) << r.summary();
  EXPECT_TRUE(r.exhausted) << r.summary();
}

// Eq. 15 space-bound oracle: a lazy spawn ticks the live-frame count
// once, promotion transfers that tick (no create/destroy pair), and
// completion — on either side — retires it. Live frames never exceed the
// spawn count and drain to zero.
TEST_F(ModelCheck, LazyPromotionIdentityTransferSpaceBound) {
  auto r = chk::explore(
      [] {
        std::array<int, 2> slots{};
        std::array<ModelClaim, 2> claims;
        chk::atomic<int> live{0};
        ModelDeque d(2);
        for (std::size_t i = 0; i < slots.size(); ++i) {
          claims[i].arm();
          live.fetch_add(1, std::memory_order_relaxed);  // frame_created
          chk::assert_now(live.load(std::memory_order_relaxed) <= 2,
                          "live frames exceed spawned frames (Eq. 15)");
          d.push_bottom(&slots[i]);
        }
        chk::thread thief([&] {
          if (int* p = d.steal_top()) {
            ModelClaim& c = claims[static_cast<std::size_t>(p - slots.data())];
            chk::assert_now(c.try_promote(),
                            "thief holds the deque entry but lost the claim");
            c.finish_promotion();  // identity transfer: no live tick here
            live.fetch_sub(1, std::memory_order_relaxed);  // frame_destroyed
          }
        });
        while (int* p = d.pop_bottom()) {
          ModelClaim& c = claims[static_cast<std::size_t>(p - slots.data())];
          chk::assert_now(c.try_own(),
                          "owner holds the deque entry but lost the claim");
          c.finish_owned();
          live.fetch_sub(1, std::memory_order_relaxed);  // frame_destroyed
        }
        thief.join();
        chk::assert_now(live.load(std::memory_order_relaxed) == 0,
                        "lazy frames leak through promotion (Eq. 15)");
      },
      bounded(3));
  ASSERT_TRUE(r.ok()) << r.summary();
  EXPECT_TRUE(r.exhausted) << r.summary();
}

// ---------------------------------------------------------------------------
// Negative models: seeded ordering bugs MUST be caught, with a seed that
// replays to the identical failure.
// ---------------------------------------------------------------------------

namespace negative {

// Publication with a relaxed store where a release is required.
void relaxed_publication() {
  chk::var<int> payload;
  chk::atomic<int> flag{0};
  chk::thread t([&] {
    if (flag.load(std::memory_order_acquire) == 1) (void)payload.get();
  });
  payload.set(42);
  flag.store(1, std::memory_order_relaxed);  // BUG: must be release
  t.join();
}

// A Chase-Lev "optimization" that replaces the steal-side CAS on top with
// a load/store pair — two thieves can both take the same element.
struct BrokenStealPool {
  std::array<int*, 2> items{};
  chk::atomic<int> top{0};
  int* steal() {
    const int t = top.load(std::memory_order_acquire);
    if (t >= 2) return nullptr;
    top.store(t + 1, std::memory_order_release);  // BUG: must be a CAS
    return items[static_cast<std::size_t>(t)];
  }
};

void broken_steal_double_take() {
  std::array<int, 2> slots{};
  std::array<chk::atomic<int>, 2> taken{};
  BrokenStealPool pool;
  pool.items = {&slots[0], &slots[1]};
  auto thief = [&] {
    if (int* p = pool.steal())
      taken[p - slots.data()].fetch_add(1, std::memory_order_relaxed);
  };
  chk::thread t(thief);
  thief();
  t.join();
  for (auto& n : taken)
    chk::assert_now(n.load(std::memory_order_relaxed) <= 1,
                    "an element was stolen twice");
}

// A release() with no matching acquire() — the busy count underflows.
void double_busy_release() {
  ModelBusy busy;
  chk::thread t([&] {
    chk::assert_now(busy.release() >= 0, "busy release underflow");  // BUG
  });
  busy.acquire();
  chk::assert_now(busy.release() >= 0, "busy release underflow");
  t.join();
}

// An MPSC push "simplified" to a load/store pair instead of the CAS:
// two concurrent remote frees can both read the same head and the second
// store orphans the first pusher's frame — a frame leak the conservation
// oracle must catch.
struct BrokenRemoteStack {
  chk::atomic<RNode*> head{nullptr};
  void push(RNode* n) {
    RNode* h = head.load(std::memory_order_acquire);
    n->pool_next = h;
    head.store(n, std::memory_order_release);  // BUG: must be a CAS loop
  }
  RNode* take_all() { return head.exchange(nullptr, std::memory_order_acquire); }
};

void mpsc_store_push_loses_frame() {
  std::array<RNode, 2> nodes;
  BrokenRemoteStack stack;
  chk::thread remote([&] { stack.push(&nodes[0]); });
  stack.push(&nodes[1]);
  remote.join();
  int recovered = 0;
  for (RNode* n = stack.take_all(); n != nullptr; n = n->pool_next) ++recovered;
  chk::assert_now(recovered == 2, "a concurrently pushed frame was lost");
}

// Retuning BL *without* waiting for the worker to park: the write races
// the in-epoch read, and the detector must say so.
void mid_epoch_retune() {
  chk::var<int> bl{2};
  chk::atomic<int> working{1};
  chk::thread worker([&] {
    (void)bl.get();  // worker still inside the epoch
    working.fetch_sub(1, std::memory_order_acq_rel);
  });
  bl.set(5);  // BUG: no wait for working == 0
  worker.join();
}

// The tempting claim-free batch steal: size the batch, read the items,
// then commit with a single range CAS `top: t -> t+k`. The CAS only
// notices *other thieves* (they move top); the owner signals through
// bottom, which this commit never re-checks — so the owner can plainly
// pop an interior index j in (t, t+k) while top still equals t, and the
// thief's commit then succeeds anyway. Exactly-once dies. steal_batch()'s
// claim bit exists to close precisely this hole.
struct BrokenBatchPool {
  std::array<int*, 3> items{};
  chk::atomic<std::int64_t> top{0};
  chk::atomic<std::int64_t> bottom{3};

  int* pop() {
    std::int64_t b = bottom.load(std::memory_order_relaxed) - 1;
    bottom.store(b, std::memory_order_relaxed);
    chk::ModelSync::fence(std::memory_order_seq_cst);
    std::int64_t t = top.load(std::memory_order_relaxed);
    if (t > b) {
      bottom.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    int* it = items[static_cast<std::size_t>(b)];
    if (t == b) {
      if (!top.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                       std::memory_order_relaxed)) {
        it = nullptr;
      }
      bottom.store(b + 1, std::memory_order_relaxed);
    }
    return it;
  }

  std::size_t steal_batch(int** out, std::size_t max_out) {
    std::int64_t t = top.load(std::memory_order_acquire);
    chk::ModelSync::fence(std::memory_order_seq_cst);
    std::int64_t b = bottom.load(std::memory_order_acquire);
    const std::int64_t n = b - t;
    if (n <= 0) return 0;
    std::size_t k = static_cast<std::size_t>((n + 1) / 2);
    if (k > max_out) k = max_out;
    for (std::size_t i = 0; i < k; ++i) {
      out[i] =
          items[static_cast<std::size_t>(t + static_cast<std::int64_t>(i))];
    }
    if (!top.compare_exchange_strong(  // BUG: no claim, owner not excluded
            t, t + static_cast<std::int64_t>(k), std::memory_order_seq_cst,
            std::memory_order_relaxed)) {
      return 0;
    }
    return k;
  }
};

void broken_batch_range_cas() {
  std::array<int, 3> slots{};
  std::array<chk::atomic<int>, 3> taken{};
  BrokenBatchPool pool;
  pool.items = {&slots[0], &slots[1], &slots[2]};
  chk::thread thief([&] {
    std::array<int*, 3> buf{};
    const std::size_t k = pool.steal_batch(buf.data(), buf.size());
    for (std::size_t i = 0; i < k; ++i)
      taken[buf[i] - slots.data()].fetch_add(1, std::memory_order_relaxed);
  });
  while (int* p = pool.pop())
    taken[p - slots.data()].fetch_add(1, std::memory_order_relaxed);
  thief.join();
  for (auto& n : taken)
    chk::assert_now(n.load(std::memory_order_relaxed) <= 1,
                    "a batch element was stolen and popped twice");
}

// Promotion without the claim CAS: the "optimization" frees the slot
// first and copies the capture afterwards, instead of holding kPromoting
// across the copy. The owner's LazyStack reuse then re-arms the slot
// mid-copy, the thief relocates the *new* spawn's capture, and that task
// body runs twice (while the stolen continuation is lost). The
// kStacked->kPromoting CAS + copy + kFreed release in the shipped
// try_promote/finish_promotion pair exists to close exactly this hole.
void broken_promotion_cas() {
  using Claim = protocol::LazyClaim<chk::ModelSync>;
  chk::atomic<int> capture{1};  // slot body storage; task ids 1 and 2
  Claim claim;
  std::array<chk::atomic<int>, 3> exec{};
  claim.arm();  // task 1 occupies the slot; its deque entry went to the thief
  chk::thread thief([&] {
    // BUG: no try_promote claim window — free the slot, then copy.
    claim.state.store(Claim::kFreed, std::memory_order_release);
    const int task = capture.load(std::memory_order_acquire);
    exec[static_cast<std::size_t>(task)].fetch_add(1,
                                                   std::memory_order_relaxed);
  });
  // Owner: a later spawn reuses the slot the moment it reads kFreed, and
  // pops task 2 right back (LIFO) to run it.
  if (claim.reclaimable()) {
    capture.store(2, std::memory_order_relaxed);
    claim.arm();
    chk::assert_now(claim.try_own(), "owner lost the claim on its own pop");
    const int task = capture.load(std::memory_order_relaxed);
    exec[static_cast<std::size_t>(task)].fetch_add(1,
                                                   std::memory_order_relaxed);
    claim.finish_owned();
  }
  thief.join();
  for (auto& n : exec)
    chk::assert_now(n.load(std::memory_order_relaxed) <= 1,
                    "a lazy task body was executed twice");
}

}  // namespace negative

// Asserts the model fails, the failure carries a replayable seed, and
// replaying that seed reproduces the identical failure message.
template <typename Body>
void expect_caught_and_replayable(Body body, const std::string& expect_in_msg,
                                  chk::Options opts = {}) {
  auto r = chk::explore(body, opts);
  ASSERT_FALSE(r.ok()) << "seeded bug was NOT caught: " << r.summary();
  ASSERT_TRUE(r.failure.has_value());
  EXPECT_NE(r.failure->message.find(expect_in_msg), std::string::npos)
      << r.failure->message;
  ASSERT_FALSE(r.failure->seed.empty());
  EXPECT_EQ(r.failure->seed.rfind("chk1:", 0), 0u)
      << "seed is not in the chk1: schedule format: " << r.failure->seed;
  auto replayed = chk::replay(body, r.failure->seed, opts);
  ASSERT_FALSE(replayed.ok()) << "seed did not replay the failure";
  EXPECT_EQ(replayed.failure->message, r.failure->message);
}

TEST_F(ModelCheckNegative, RelaxedPublicationRace) {
  expect_caught_and_replayable(negative::relaxed_publication, "data race");
}

TEST_F(ModelCheckNegative, BrokenStealDoubleTake) {
  expect_caught_and_replayable(negative::broken_steal_double_take,
                               "stolen twice");
}

TEST_F(ModelCheckNegative, MpscStorePushLosesFrame) {
  expect_caught_and_replayable(negative::mpsc_store_push_loses_frame,
                               "frame was lost");
}

TEST_F(ModelCheckNegative, BrokenBatchRangeCas) {
  expect_caught_and_replayable(negative::broken_batch_range_cas,
                               "stolen and popped twice", bounded(3));
}

TEST_F(ModelCheckNegative, DoubleBusyRelease) {
  expect_caught_and_replayable(negative::double_busy_release,
                               "busy release underflow");
}

TEST_F(ModelCheckNegative, MidEpochRetuneRace) {
  expect_caught_and_replayable(negative::mid_epoch_retune, "data race");
}

TEST_F(ModelCheckNegative, BrokenPromotionCas) {
  expect_caught_and_replayable(negative::broken_promotion_cas,
                               "executed twice");
}

}  // namespace
