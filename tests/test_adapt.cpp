// Tests for the adaptive scheduling subsystem (src/adapt/) and its
// runtime integration: policy parsing, the workload profiler, the
// guarded hill-climb controller (bounded step, hysteresis, fallbacks),
// the cab-adapt-v1 report round trip, and the Runtime-level guarantees
// the ISSUE pins down — BL changes only *between* run() epochs,
// fixed:<bl> pins, and metrics-off holds the Eq. 4 seed.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "adapt/controller.hpp"
#include "adapt/profile.hpp"
#include "runtime/runtime.hpp"

namespace cab::adapt {
namespace {

// ---------------------------------------------------------------------------
// Policy parsing

TEST(Policy, ParseRoundTripsEveryMode) {
  for (const char* text : {"static", "adaptive", "fixed:0", "fixed:7",
                           "fixed:64"}) {
    Policy p;
    ASSERT_TRUE(parse_policy(text, p)) << text;
    EXPECT_EQ(to_string(p), text);
  }
}

TEST(Policy, ParseRejectsMalformedSpecs) {
  for (const char* text : {"", "auto", "Fixed:3", "fixed:", "fixed:-1",
                           "fixed:65", "fixed:3x", "fixed:3.5", "adaptive "}) {
    Policy p;
    p.mode = Mode::kStatic;
    EXPECT_FALSE(parse_policy(text, p)) << text;
    EXPECT_EQ(p.mode, Mode::kStatic) << "out written on failure for " << text;
  }
}

TEST(Policy, ParsePreservesTuningKnobs) {
  Policy p;
  p.improve_threshold = 0.10;
  p.hold_epochs = 4;
  p.input_bytes_hint = 123;
  ASSERT_TRUE(parse_policy("adaptive", p));
  EXPECT_EQ(p.mode, Mode::kAdaptive);
  EXPECT_DOUBLE_EQ(p.improve_threshold, 0.10);
  EXPECT_EQ(p.hold_epochs, 4);
  EXPECT_EQ(p.input_bytes_hint, 123u);
}

// ---------------------------------------------------------------------------
// Profiler

EpochSample healthy_sample() {
  EpochSample s;
  s.epoch = 1;
  s.bl = 3;
  s.wall_ns = 1'000'000;
  s.tasks = 1023;
  s.spawns = 1022;
  s.spawning_tasks = 511;  // binary tree: interior nodes spawn 2 each
  s.max_level = 9;
  return s;
}

TEST(Profiler, DerivesBranchingFromSpawnCounters) {
  const WorkloadProfile p = profile_epoch(healthy_sample());
  EXPECT_DOUBLE_EQ(p.effective_branching, 1022.0 / 511.0);
  EXPECT_EQ(p.branching, 2);
  EXPECT_EQ(p.depth, 9);
  EXPECT_TRUE(p.sufficient);
}

TEST(Profiler, ClampsBranchingToSaneRange) {
  EpochSample s = healthy_sample();
  s.spawns = 1000;
  s.spawning_tasks = 1000;  // B_eff = 1: below any real fan-out
  EXPECT_EQ(profile_epoch(s).branching, 2);
  s.spawns = 100'000;
  s.spawning_tasks = 10;  // B_eff = 10000: clamp to 64
  EXPECT_EQ(profile_epoch(s).branching, 64);
}

TEST(Profiler, WorkingSetPrefersHardwareCounters) {
  EpochSample s = healthy_sample();
  s.working_set_hint = 1u << 20;
  s.hw_valid = true;
  s.llc_loads = 10'000;
  s.llc_misses = 4'000;
  const WorkloadProfile hw = profile_epoch(s, /*cache_line_bytes=*/64);
  EXPECT_TRUE(hw.working_set_from_hw);
  EXPECT_EQ(hw.working_set_bytes, 4'000u * 64u);
  EXPECT_DOUBLE_EQ(hw.llc_miss_rate, 0.4);

  s.hw_valid = false;
  const WorkloadProfile hint = profile_epoch(s);
  EXPECT_FALSE(hint.working_set_from_hw);
  EXPECT_EQ(hint.working_set_bytes, 1u << 20);
  EXPECT_LT(hint.llc_miss_rate, 0.0);  // unavailable
}

TEST(Profiler, SplitsMissRatesByTier) {
  EpochSample s = healthy_sample();
  s.hw_valid = true;
  s.llc_loads = 1000;
  s.llc_misses = 300;
  s.llc_loads_inter = 400;
  s.llc_misses_inter = 200;
  const WorkloadProfile p = profile_epoch(s);
  EXPECT_DOUBLE_EQ(p.llc_miss_rate, 0.3);
  EXPECT_DOUBLE_EQ(p.llc_miss_rate_inter, 0.5);
  // intra = (300-200) misses / (1000-400) loads
  EXPECT_DOUBLE_EQ(p.llc_miss_rate_intra, 100.0 / 600.0);
}

TEST(Profiler, DerivesCoherenceSignalFromSimulatedEpochs) {
  EpochSample s = healthy_sample();
  EXPECT_LT(profile_epoch(s).coherence_miss_rate, 0.0);  // off by default
  s.coh_valid = true;
  s.cache_accesses = 10'000;
  s.coherence_misses = 500;
  s.true_sharing_invalidations = 30;
  s.false_sharing_invalidations = 90;
  const WorkloadProfile p = profile_epoch(s);
  EXPECT_DOUBLE_EQ(p.coherence_miss_rate, 0.05);
  EXPECT_DOUBLE_EQ(p.false_sharing_fraction, 0.75);
  // Valid epoch but no classified invalidations: rate known, fraction not.
  s.true_sharing_invalidations = 0;
  s.false_sharing_invalidations = 0;
  const WorkloadProfile q = profile_epoch(s);
  EXPECT_DOUBLE_EQ(q.coherence_miss_rate, 0.05);
  EXPECT_LT(q.false_sharing_fraction, 0.0);
}

TEST(Profiler, InsufficientSignalConditions) {
  EpochSample s = healthy_sample();
  EXPECT_TRUE(profile_epoch(s).sufficient);
  s = healthy_sample();
  s.signal_ok = false;
  EXPECT_FALSE(profile_epoch(s).sufficient);
  s = healthy_sample();
  s.wall_ns = 0;
  EXPECT_FALSE(profile_epoch(s).sufficient);
  s = healthy_sample();
  s.tasks = 63;  // below the default min_tasks floor
  EXPECT_FALSE(profile_epoch(s).sufficient);
  s = healthy_sample();
  s.spawning_tasks = 0;
  EXPECT_FALSE(profile_epoch(s).sufficient);
  s = healthy_sample();
  s.max_level = 0;
  EXPECT_FALSE(profile_epoch(s).sufficient);
}

// ---------------------------------------------------------------------------
// Controller

/// Sample for one epoch at `bl` under a binary tree deep enough that the
/// guard rails allow BL in [3, 10] on the 4x4 machine (Eq. 1 floor 3,
/// third-constraint cap max_level - 2).
EpochSample sample_at(std::uint64_t epoch, std::int32_t bl,
                      std::uint64_t wall_ns) {
  EpochSample s;
  s.epoch = epoch;
  s.bl = bl;
  s.wall_ns = wall_ns;
  s.tasks = 8191;
  s.spawns = 8190;
  s.spawning_tasks = 4095;
  s.max_level = 12;
  return s;
}

/// Deterministic V-shaped score centred on kBestBl: the landscape a
/// U-shaped Fig. 5 curve hands the controller.
constexpr std::int32_t kBestBl = 5;
std::uint64_t v_score(std::int32_t bl) {
  const std::int32_t d = bl > kBestBl ? bl - kBestBl : kBestBl - bl;
  return 1'000'000 + 200'000 * static_cast<std::uint64_t>(d);
}

Policy adaptive_policy() {
  Policy p;
  EXPECT_TRUE(parse_policy("adaptive", p));
  return p;
}

TEST(Controller, ConvergesToVShapeMinimumWithinEightEpochs) {
  for (std::int32_t seed : {3, 5, 7}) {
    Controller c(adaptive_policy(), hw::Topology::synthetic(4, 4));
    std::int32_t bl = seed;
    for (std::uint64_t ep = 1; ep <= 8; ++ep) {
      bl = c.on_epoch_end(sample_at(ep, bl, v_score(bl)));
    }
    EXPECT_EQ(bl, kBestBl) << "seed " << seed;
    EXPECT_EQ(c.report().decisions.size(), 8u);
    EXPECT_EQ(c.report().final_bl(seed), kBestBl);
  }
}

TEST(Controller, StepIsBoundedByMaxStep) {
  Controller c(adaptive_policy(), hw::Topology::synthetic(4, 4));
  std::int32_t bl = 8;
  for (std::uint64_t ep = 1; ep <= 12; ++ep) {
    const std::int32_t next = c.on_epoch_end(sample_at(ep, bl, v_score(bl)));
    EXPECT_LE(std::abs(next - bl), c.policy().max_step) << "epoch " << ep;
    bl = next;
  }
}

TEST(Controller, RejectedProbeRevertsToBestKnownBl) {
  // Seed at the optimum: both neighbour probes fail, so the controller
  // must return to kBestBl and converge (hold) — never drift away.
  Controller c(adaptive_policy(), hw::Topology::synthetic(4, 4));
  std::int32_t bl = kBestBl;
  for (std::uint64_t ep = 1; ep <= 6; ++ep) {
    bl = c.on_epoch_end(sample_at(ep, bl, v_score(bl)));
  }
  EXPECT_EQ(bl, kBestBl);
  bool held = false;
  for (const Decision& d : c.report().decisions) {
    if (d.reason == "revert-hold" || d.reason == "converged") held = true;
  }
  EXPECT_TRUE(held);
}

TEST(Controller, BootstrapsFromZeroToProfiledEq4Level) {
  // BL-0 seed with an 8 MiB working-set hint on a 4-socket machine with
  // 1 MiB shared caches: Eq. 4 says split by 8 -> BL 4 for B = 2. The
  // bootstrap jump is the one allowed exception to max_step.
  Policy p = adaptive_policy();
  p.input_bytes_hint = 8u << 20;
  Controller c(p, hw::Topology::synthetic(4, 4, /*l3_bytes=*/1u << 20));
  EpochSample s = sample_at(1, /*bl=*/0, /*wall_ns=*/1'000'000);
  s.working_set_hint = p.input_bytes_hint;
  const std::int32_t next = c.on_epoch_end(s);
  EXPECT_EQ(next, 4);
  ASSERT_EQ(c.report().decisions.size(), 1u);
  EXPECT_EQ(c.report().decisions.back().reason, "bootstrap-static");
  EXPECT_EQ(c.report().decisions.back().static_bl, 4);
}

TEST(Controller, SingleSocketPinsZero) {
  Controller c(adaptive_policy(), hw::Topology::synthetic(1, 8));
  EXPECT_EQ(c.on_epoch_end(sample_at(1, 3, v_score(3))), 0);
  EXPECT_EQ(c.report().decisions.back().reason, "single-socket-static");
}

TEST(Controller, NoSignalFallsBackToSeed) {
  Controller c(adaptive_policy(), hw::Topology::synthetic(4, 4));
  EpochSample s = sample_at(1, 3, v_score(3));
  s.signal_ok = false;  // metrics pipeline off
  EXPECT_EQ(c.on_epoch_end(s), 3);
  EXPECT_EQ(c.report().decisions.back().reason, "fallback-static");

  EpochSample tiny = sample_at(2, 3, v_score(3));
  tiny.tasks = 10;  // below min_epoch_tasks
  EXPECT_EQ(c.on_epoch_end(tiny), 3);
  EXPECT_EQ(c.report().decisions.back().reason, "insufficient-signal");
}

TEST(Controller, FixedModePinsEveryEpoch) {
  Policy p;
  ASSERT_TRUE(parse_policy("fixed:4", p));
  Controller c(p, hw::Topology::synthetic(4, 4));
  for (std::uint64_t ep = 1; ep <= 4; ++ep) {
    EXPECT_EQ(c.on_epoch_end(sample_at(ep, 4, v_score(4))), 4);
    EXPECT_EQ(c.report().decisions.back().reason, "pinned");
  }
}

TEST(Controller, ResetForgetsClimbState) {
  Controller c(adaptive_policy(), hw::Topology::synthetic(4, 4));
  std::int32_t bl = 3;
  for (std::uint64_t ep = 1; ep <= 4; ++ep) {
    bl = c.on_epoch_end(sample_at(ep, bl, v_score(bl)));
  }
  ASSERT_FALSE(c.report().decisions.empty());
  c.reset();
  EXPECT_TRUE(c.report().decisions.empty());
  // The next sample is treated as a fresh warmup.
  c.on_epoch_end(sample_at(1, 5, v_score(5)));
  EXPECT_EQ(c.report().decisions.back().reason, "warmup-probe");
}

// ---------------------------------------------------------------------------
// Report JSON round trip

TEST(Report, JsonRoundTripsExactly) {
  Controller c(adaptive_policy(), hw::Topology::synthetic(4, 4));
  std::int32_t bl = 3;
  for (std::uint64_t ep = 1; ep <= 6; ++ep) {
    EpochSample s = sample_at(ep, bl, v_score(bl));
    s.hw_valid = true;  // exercise the fractional miss-rate fields too
    s.llc_loads = 1000 * ep;
    s.llc_misses = 300 * ep;
    s.llc_loads_inter = 400 * ep;
    s.llc_misses_inter = 100 * ep;
    s.intra_steals = 17 * ep;
    s.inter_steals = 5 * ep;
    s.failed_steals = 2 * ep;
    bl = c.on_epoch_end(s);
  }
  const Report& r = c.report();
  const std::string json = r.to_json();
  const Report back = Report::from_json(json);
  EXPECT_EQ(back.to_json(), json);  // byte-stable round trip
  EXPECT_EQ(back.policy, "adaptive");
  EXPECT_EQ(back.sockets, 4);
  EXPECT_EQ(back.cores_per_socket, 4);
  ASSERT_EQ(back.decisions.size(), r.decisions.size());
  for (std::size_t i = 0; i < r.decisions.size(); ++i) {
    EXPECT_EQ(back.decisions[i].reason, r.decisions[i].reason);
    EXPECT_EQ(back.decisions[i].prev_bl, r.decisions[i].prev_bl);
    EXPECT_EQ(back.decisions[i].next_bl, r.decisions[i].next_bl);
    EXPECT_DOUBLE_EQ(back.decisions[i].score, r.decisions[i].score);
    EXPECT_DOUBLE_EQ(back.decisions[i].profile.llc_miss_rate,
                     r.decisions[i].profile.llc_miss_rate);
  }
}

TEST(Report, FromJsonRejectsWrongSchemaAndGarbage) {
  EXPECT_THROW(Report::from_json("{\"schema\":\"bogus\"}"),
               std::runtime_error);
  EXPECT_THROW(Report::from_json("not json"), std::runtime_error);
  EXPECT_THROW(Report::from_json("{\"schema\":\"cab-adapt-v1\"}"),
               std::runtime_error);  // missing required keys
}

}  // namespace
}  // namespace cab::adapt

// ---------------------------------------------------------------------------
// Runtime integration

namespace cab::runtime {
namespace {

Options adapt_options(const char* policy, std::int32_t bl) {
  Options o;
  o.topo = hw::Topology::synthetic(2, 2, 1u << 20);
  o.kind = SchedulerKind::kCab;
  o.boundary_level = bl;
  o.seed = 7;
  EXPECT_TRUE(adapt::parse_policy(policy, o.adapt));
  return o;
}

void tree(int depth, std::atomic<int>* leaves) {
  if (depth == 0) {
    leaves->fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Runtime::spawn([depth, leaves] { tree(depth - 1, leaves); });
  Runtime::spawn([depth, leaves] { tree(depth - 1, leaves); });
  Runtime::sync();
}

TEST(RuntimeAdapt, BlChangesOnlyBetweenEpochs) {
  Options o = adapt_options("adaptive", 2);
  o.adapt.input_bytes_hint = 4u << 20;
  Runtime rt(o);
  constexpr int kEpochs = 6;
  for (int ep = 0; ep < kEpochs; ++ep) {
    const std::int32_t bl_before = rt.current_boundary_level();
    std::atomic<int> leaves{0};
    rt.run([&] { tree(9, &leaves); });
    EXPECT_EQ(leaves.load(), 512);
    // The epoch that just finished must have run, in full, under the BL
    // in force when it started: the decision's prev_bl records it.
    const adapt::Report r = rt.adapt_report();
    ASSERT_EQ(r.decisions.size(), static_cast<std::size_t>(ep + 1));
    EXPECT_EQ(r.decisions.back().prev_bl, bl_before);
    EXPECT_EQ(rt.current_boundary_level(), r.decisions.back().next_bl);
  }
  // The decision chain is contiguous: epoch i+1 ran under the BL epoch i
  // chose — no mid-epoch move can hide between two records.
  const adapt::Report r = rt.adapt_report();
  for (std::size_t i = 1; i < r.decisions.size(); ++i) {
    EXPECT_EQ(r.decisions[i].prev_bl, r.decisions[i - 1].next_bl);
    EXPECT_EQ(r.decisions[i].epoch, r.decisions[i - 1].epoch + 1);
  }
}

TEST(RuntimeAdapt, FixedPolicyPinsBoundaryLevel) {
  Runtime rt(adapt_options("fixed:1", /*bl=*/3));
  for (int ep = 0; ep < 3; ++ep) {
    std::atomic<int> leaves{0};
    rt.run([&] { tree(8, &leaves); });
    EXPECT_EQ(leaves.load(), 256);
    EXPECT_EQ(rt.current_boundary_level(), 1);
  }
  for (const adapt::Decision& d : rt.adapt_report().decisions) {
    EXPECT_EQ(d.reason, "pinned");
    EXPECT_EQ(d.next_bl, 1);
  }
}

TEST(RuntimeAdapt, MetricsOffHoldsTheStaticSeed) {
  Options o = adapt_options("adaptive", 2);
  o.metrics = false;  // no profiling signal: Eq. 4 fallback, no climbing
  Runtime rt(o);
  for (int ep = 0; ep < 3; ++ep) {
    std::atomic<int> leaves{0};
    rt.run([&] { tree(8, &leaves); });
    EXPECT_EQ(leaves.load(), 256);
    EXPECT_EQ(rt.current_boundary_level(), 2);
  }
  for (const adapt::Decision& d : rt.adapt_report().decisions) {
    EXPECT_EQ(d.reason, "fallback-static");
    EXPECT_FALSE(d.profile.sufficient);
  }
}

TEST(RuntimeAdapt, StaticModeReportsEmptyDecisions) {
  Runtime rt(adapt_options("static", 2));
  std::atomic<int> leaves{0};
  rt.run([&] { tree(6, &leaves); });
  EXPECT_EQ(leaves.load(), 64);
  const adapt::Report r = rt.adapt_report();
  EXPECT_EQ(r.policy, "static");
  EXPECT_TRUE(r.decisions.empty());
  EXPECT_EQ(r.final_bl(2), 2);
  EXPECT_EQ(rt.current_boundary_level(), 2);
}

TEST(RuntimeAdapt, DecisionGaugesAppearInMetricsSnapshot) {
  Runtime rt(adapt_options("adaptive", 2));
  std::atomic<int> leaves{0};
  rt.run([&] { tree(9, &leaves); });
  EXPECT_EQ(leaves.load(), 512);
  const obs::metrics::Snapshot snap = rt.metrics_snapshot();
  const obs::metrics::MetricSnapshot* bl = snap.find("adapt.bl");
  ASSERT_NE(bl, nullptr);
  EXPECT_EQ(bl->total, rt.current_boundary_level());
  const obs::metrics::MetricSnapshot* epoch = snap.find("adapt.epoch");
  ASSERT_NE(epoch, nullptr);
  EXPECT_EQ(epoch->total, 1);
  EXPECT_NE(snap.find("adapt.static_bl"), nullptr);
  EXPECT_NE(snap.find("adapt.score_ns"), nullptr);
}

TEST(RuntimeAdapt, AdaptiveSurvivesExceptionEpochs) {
  // An epoch whose root throws still produces a decision (the retune runs
  // before the rethrow) and the runtime stays usable and adaptive.
  Runtime rt(adapt_options("adaptive", 2));
  EXPECT_THROW(rt.run([] { throw std::runtime_error("boom"); }),
               std::runtime_error);
  ASSERT_EQ(rt.adapt_report().decisions.size(), 1u);
  std::atomic<int> leaves{0};
  rt.run([&] { tree(8, &leaves); });
  EXPECT_EQ(leaves.load(), 256);
  EXPECT_EQ(rt.adapt_report().decisions.size(), 2u);
}

TEST(RuntimeAdapt, NonCabSchedulersNeverRetune) {
  // The controller still records decisions, but tier.bl is only written
  // for kCab: classic work-stealing has no boundary level to move.
  Options o = adapt_options("fixed:3", 0);
  o.kind = SchedulerKind::kRandomStealing;
  Runtime rt(o);
  std::atomic<int> leaves{0};
  rt.run([&] { tree(8, &leaves); });
  EXPECT_EQ(leaves.load(), 256);
  EXPECT_EQ(rt.current_boundary_level(), 0);
}

}  // namespace
}  // namespace cab::runtime
