#include <gtest/gtest.h>

#include "dag/bounds.hpp"
#include "dag/dot_export.hpp"
#include "dag/generators.hpp"
#include "simsched/sim_scheduler.hpp"

namespace cab::dag {
namespace {

TEST(TierAnalysis, UniformTreeDecomposition) {
  // B=2, depth 4: levels 0..4, leaf work 100 at level 4, divide work 1.
  TaskGraph g = make_recursive_dnc(2, 4, 100, 1);
  TierAssignment tier{2};  // leaf inter-socket tasks at level 2
  TierAnalysis a = analyze_tiers(g, tier);

  EXPECT_EQ(a.t1_total, g.total_work());
  EXPECT_EQ(a.tinf_total, g.critical_path());
  EXPECT_EQ(a.leaf_inter_count, 2u);  // B^(BL-1) = 2
  // Inter tier strictly above the boundary: levels 0 and 1, work 1 each.
  EXPECT_EQ(a.t1_inter, 2u);
  // Each leaf inter-socket subtree: itself (1) + 2 divide (1) + 4 leaves.
  EXPECT_EQ(a.t1_intra, 2u * (1 + 2 * 1 + 4 * 100));
  // Disjoint partition covers everything.
  EXPECT_EQ(a.t1_inter + a.t1_intra, a.t1_total);
  // Subtree span: 1 + 1 + 100.
  EXPECT_EQ(a.tinf_intra_max, 102u);
  EXPECT_EQ(a.tinf_intra_sum, 2u * 102);
  // Serial live frames = tree depth in frames (levels 0..4).
  EXPECT_EQ(a.serial_live_frames, 5u);
}

TEST(TierAnalysis, BlZeroCollapsesToSingleIntraTier) {
  TaskGraph g = make_recursive_dnc(2, 3, 50, 1);
  TierAnalysis a = analyze_tiers(g, TierAssignment{0});
  EXPECT_EQ(a.t1_inter, 0u);
  EXPECT_EQ(a.t1_intra, a.t1_total);
  EXPECT_EQ(a.leaf_inter_count, 1u);
}

TEST(TierAnalysis, SequentialPhasesSumInSpan) {
  TaskGraph g;
  NodeId root = g.add_root(1);
  g.set_sequential(root, true);
  g.add_child(root, 10);
  g.add_child(root, 20);
  TierAnalysis a = analyze_tiers(g, TierAssignment{1});
  EXPECT_EQ(a.tinf_total, 31u);
  EXPECT_EQ(a.leaf_inter_count, 2u);
}

TEST(TimeBoundEq13, BoundDominatesSimulatedMakespan) {
  // With the unit-cost model (no traces), a greedy scheduler must stay
  // within a small constant of Eq. 13.
  TaskGraph g = make_recursive_dnc(2, 7, 5000, 10);
  cachesim::TraceStore store;
  const std::int32_t bl = 3;
  TierAnalysis a = analyze_tiers(g, TierAssignment{bl});

  simsched::SimOptions o;
  o.topo = hw::Topology::opteron_8380();
  o.policy = simsched::SimPolicy::kCab;
  o.boundary_level = bl;
  simsched::SimResult r = simsched::Simulator(o).run(g, store);

  const double bound = time_bound_eq13(a, 4, 4);
  EXPECT_LT(r.makespan, 3.0 * bound + 1e6);
  // And the bound is not vacuous: it is within a small factor of T1/P.
  EXPECT_GT(bound, static_cast<double>(a.t1_total) / 16.0);
}

TEST(TimeBoundEq13, InterTermScalesWithSocketsOnly) {
  TaskGraph g = make_recursive_dnc(2, 5, 100, 50);
  TierAnalysis a = analyze_tiers(g, TierAssignment{2});
  const double b_4x4 = time_bound_eq13(a, 4, 4);
  const double b_4x8 = time_bound_eq13(a, 4, 8);
  // More cores per socket shrink only the intra term.
  EXPECT_GT(b_4x4, b_4x8);
  const double diff = b_4x4 - b_4x8;
  EXPECT_NEAR(diff,
              static_cast<double>(a.t1_intra) / 16.0 -
                  static_cast<double>(a.t1_intra) / 32.0,
              1e-9);
}

TEST(SpaceBoundEq15, TakesMaxOfLeafCountAndWorkers) {
  TierAnalysis a;
  a.serial_live_frames = 10;
  a.leaf_inter_count = 8;
  // 8 leaf inter tasks < 16 workers: workers dominate.
  EXPECT_EQ(space_bound_eq15(a, 4, 4), 16u * 10);
  // 64 leaf inter tasks > 16 workers: K dominates.
  a.leaf_inter_count = 64;
  EXPECT_EQ(space_bound_eq15(a, 4, 4), 64u * 10);
}

TEST(TierAnalysis, SummaryMentionsComponents) {
  TaskGraph g = make_recursive_dnc(2, 3, 10, 1);
  TierAnalysis a = analyze_tiers(g, TierAssignment{2});
  std::string s = a.summary();
  EXPECT_NE(s.find("T1="), std::string::npos);
  EXPECT_NE(s.find("K="), std::string::npos);
}

/// Property: over random irregular graphs and boundary levels, the tier
/// decomposition partitions T1 exactly and the derived quantities stay
/// within their structural envelopes.
struct BoundsCase {
  std::uint64_t seed;
  std::int32_t bl;
};

class TierAnalysisProperty : public ::testing::TestWithParam<BoundsCase> {};

TEST_P(TierAnalysisProperty, DecompositionInvariants) {
  const auto c = GetParam();
  TaskGraph g = make_irregular(c.seed, 4, 8, 500, 300);
  TierAnalysis a = analyze_tiers(g, TierAssignment{c.bl});
  // Exact work partition: inter + intra == total. (Nodes below a leaf
  // inter-socket task are inside exactly one subtree; nodes above are
  // inter; orphans — intra-level nodes not under any boundary node, which
  // irregular graphs can produce when a branch ends above BL — have zero
  // double counting either way.)
  EXPECT_LE(a.t1_inter + a.t1_intra, a.t1_total);
  EXPECT_LE(a.tinf_intra_max, a.tinf_total);
  EXPECT_LE(a.tinf_intra_max, a.tinf_intra_sum);
  EXPECT_GE(a.serial_live_frames, 1u);
  EXPECT_LE(a.serial_live_frames,
            static_cast<std::uint64_t>(g.max_level()) + 1);
  const double bound = time_bound_eq13(a, 4, 4);
  EXPECT_GE(bound, static_cast<double>(a.tinf_total));
  EXPECT_GE(space_bound_eq15(a, 4, 4), 16 * 0ull);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TierAnalysisProperty,
    ::testing::Values(BoundsCase{1, 0}, BoundsCase{1, 1}, BoundsCase{1, 3},
                      BoundsCase{2, 2}, BoundsCase{3, 2}, BoundsCase{4, 5},
                      BoundsCase{5, 1}, BoundsCase{6, 4}, BoundsCase{7, 3},
                      BoundsCase{8, 2}));

TEST(DotExport, ContainsTierColoring) {
  TaskGraph g = make_recursive_dnc(2, 3, 10, 1);
  std::string dot = to_dot(g, TierAssignment{2});
  EXPECT_NE(dot.find("digraph cab_dag"), std::string::npos);
  EXPECT_NE(dot.find("lightsteelblue"), std::string::npos);  // leaf inter
  EXPECT_NE(dot.find("lightgrey"), std::string::npos);       // inter tier
  EXPECT_NE(dot.find("->"), std::string::npos);
  // All nodes present (root n0 .. n7 for the 8-node tree).
  EXPECT_NE(dot.find("n7"), std::string::npos);
}

TEST(DotExport, TruncatesHugeGraphs) {
  TaskGraph g = make_recursive_dnc(2, 10, 1, 1);  // 2^10+ nodes
  std::string dot = to_dot(g, TierAssignment{2}, 64);
  EXPECT_NE(dot.find("more nodes"), std::string::npos);
}

}  // namespace
}  // namespace cab::dag
