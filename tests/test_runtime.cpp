#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/runtime.hpp"
#include "runtime/spawn_value.hpp"

namespace cab::runtime {
namespace {

long fib_serial(int n) { return n < 2 ? n : fib_serial(n - 1) + fib_serial(n - 2); }

void fib_task(int n, long* out) {
  if (n < 2) {
    *out = n;
    return;
  }
  long a = 0, b = 0;
  Runtime::spawn([n, &a] { fib_task(n - 1, &a); });
  Runtime::spawn([n, &b] { fib_task(n - 2, &b); });
  Runtime::sync();
  *out = a + b;
}

Options make_options(SchedulerKind kind, int sockets, int cores, int bl) {
  Options o;
  o.topo = hw::Topology::synthetic(sockets, cores, 1ull << 20);
  o.kind = kind;
  o.boundary_level = bl;
  o.seed = 7;
  return o;
}

struct SchedCase {
  SchedulerKind kind;
  int sockets, cores, bl;
};

class AllSchedulers : public ::testing::TestWithParam<SchedCase> {};

TEST_P(AllSchedulers, FibComputesCorrectResult) {
  const auto c = GetParam();
  Runtime rt(make_options(c.kind, c.sockets, c.cores, c.bl));
  long result = 0;
  rt.run([&] { fib_task(16, &result); });
  EXPECT_EQ(result, fib_serial(16));
}

TEST_P(AllSchedulers, RepeatedRunsOnOneRuntime) {
  const auto c = GetParam();
  Runtime rt(make_options(c.kind, c.sockets, c.cores, c.bl));
  for (int i = 0; i < 3; ++i) {
    long result = 0;
    rt.run([&] { fib_task(12, &result); });
    EXPECT_EQ(result, fib_serial(12));
  }
}

TEST_P(AllSchedulers, ParallelForCoversEveryIndexOnce) {
  const auto c = GetParam();
  Runtime rt(make_options(c.kind, c.sockets, c.cores, c.bl));
  constexpr std::int64_t kN = 5000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  rt.run([&] {
    parallel_for(0, kN, 64, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
  });
  for (std::int64_t i = 0; i < kN; ++i)
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AllSchedulers,
    ::testing::Values(
        SchedCase{SchedulerKind::kCab, 2, 2, 2},
        SchedCase{SchedulerKind::kCab, 2, 2, 0},   // degenerate (Fig. 8)
        SchedCase{SchedulerKind::kCab, 4, 2, 3},
        SchedCase{SchedulerKind::kCab, 1, 4, 0},   // single socket
        SchedCase{SchedulerKind::kCab, 2, 1, 4},   // BL deeper than DAG
        SchedCase{SchedulerKind::kRandomStealing, 2, 2, 0},
        SchedCase{SchedulerKind::kRandomStealing, 1, 4, 0},
        SchedCase{SchedulerKind::kTaskSharing, 2, 2, 0}));

TEST(Runtime, PinnedThreadsStillComputeCorrectly) {
  Options o = make_options(SchedulerKind::kCab, 2, 2, 2);
  o.pin_threads = true;  // wraps modulo physical CPUs on small hosts
  Runtime rt(o);
  long result = 0;
  rt.run([&] { fib_task(14, &result); });
  EXPECT_EQ(result, fib_serial(14));
}

TEST(ParallelFor, EmptyAndDegenerateRanges) {
  Runtime rt(make_options(SchedulerKind::kCab, 2, 2, 1));
  std::atomic<int> calls{0};
  rt.run([&] {
    parallel_for(5, 5, 4, [&](std::int64_t, std::int64_t) { calls++; });
    parallel_for(7, 5, 4, [&](std::int64_t, std::int64_t) { calls++; });
  });
  EXPECT_EQ(calls.load(), 0);

  std::atomic<std::int64_t> sum{0};
  rt.run([&] {
    // Grain larger than the range: exactly one leaf call.
    parallel_for(0, 3, 100, [&](std::int64_t lo, std::int64_t hi) {
      sum.fetch_add(hi - lo);
      calls++;
    });
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(sum.load(), 3);
}

TEST(ParallelFor, NonPowerOfTwoRangeCoversExactly) {
  Runtime rt(make_options(SchedulerKind::kRandomStealing, 2, 2, 0));
  constexpr std::int64_t kN = 997;  // prime
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  rt.run([&] {
    parallel_for(0, kN, 10, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i)
        hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
  });
  for (std::int64_t i = 0; i < kN; ++i)
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1);
}

TEST(Runtime, AutoBoundaryLevelMatchesEq4) {
  hw::Topology topo = hw::Topology::opteron_8380();
  EXPECT_EQ(auto_boundary_level(topo, 48ull << 20, 2), 4);
  EXPECT_EQ(auto_boundary_level(topo, 1024, 2), 3);
  hw::Topology single = hw::Topology::synthetic(1, 4);
  EXPECT_EQ(auto_boundary_level(single, 48ull << 20, 2), 0);
}

TEST(Runtime, WorkerCountMatchesTopology) {
  Runtime rt(make_options(SchedulerKind::kCab, 2, 3, 2));
  EXPECT_EQ(rt.worker_count(), 6);
}

TEST(Runtime, CurrentWorkerAndSquadInsideTasks) {
  Runtime rt(make_options(SchedulerKind::kCab, 2, 2, 2));
  EXPECT_EQ(Runtime::current_worker(), -1);  // outside any task
  std::atomic<bool> valid{true};
  rt.run([&] {
    const int w = Runtime::current_worker();
    const int s = Runtime::current_squad();
    if (w < 0 || w >= 4 || s != w / 2) valid = false;
  });
  EXPECT_TRUE(valid.load());
}

TEST(Runtime, StatsCountSpawnsByTier) {
  Options o = make_options(SchedulerKind::kCab, 2, 2, 2);
  Runtime rt(o);
  // A depth-4 binary tree: levels 1..4 below the root closure (level 0).
  std::atomic<int> leaves{0};
  std::function<void(int)> rec = [&](int depth) {
    if (depth == 4) {
      leaves.fetch_add(1);
      return;
    }
    Runtime::spawn([&rec, depth] { rec(depth + 1); });
    Runtime::spawn([&rec, depth] { rec(depth + 1); });
    Runtime::sync();
  };
  rt.run([&] { rec(0); });
  EXPECT_EQ(leaves.load(), 16);
  SchedulerStats s = rt.stats();
  // Spawns at child-levels 1 and 2 are inter (BL = 2): 2 + 4 = 6.
  EXPECT_EQ(s.total.spawns_inter, 6u);
  // Remaining spawned tasks are intra: 8 + 16 = 24.
  EXPECT_EQ(s.total.spawns_intra, 24u);
  // All tasks executed: root + 30 spawned.
  EXPECT_EQ(s.total.tasks_executed, 31u);
  rt.reset_stats();
  EXPECT_EQ(rt.stats().total.tasks_executed, 0u);
}

TEST(Runtime, CabUsesMultipleSquads) {
  Options o = make_options(SchedulerKind::kCab, 2, 2, 3);
  Runtime rt(o);
  std::set<int> squads_seen;
  std::mutex mu;
  std::function<void(int)> rec = [&](int depth) {
    {
      std::lock_guard<std::mutex> g(mu);
      squads_seen.insert(Runtime::current_squad());
    }
    if (depth == 6) {
      volatile double x = 0;
      for (int i = 0; i < 50000; ++i) x = x + 1.0 / (i + 1);
      return;
    }
    Runtime::spawn([&rec, depth] { rec(depth + 1); });
    Runtime::spawn([&rec, depth] { rec(depth + 1); });
    Runtime::sync();
  };
  rt.run([&] { rec(0); });
  EXPECT_EQ(squads_seen.size(), 2u);  // both squads participated
}

TEST(Runtime, NestedParallelForInsideSpawn) {
  Runtime rt(make_options(SchedulerKind::kCab, 2, 2, 2));
  std::atomic<std::int64_t> sum{0};
  rt.run([&] {
    Runtime::spawn([&] {
      parallel_for(0, 100, 10, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) sum.fetch_add(i);
      });
    });
    Runtime::spawn([&] {
      parallel_for(100, 200, 10, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) sum.fetch_add(i);
      });
    });
    Runtime::sync();
  });
  EXPECT_EQ(sum.load(), 199 * 200 / 2);
}

TEST(Runtime, ExplicitSyncMidBody) {
  Runtime rt(make_options(SchedulerKind::kCab, 2, 2, 2));
  std::int64_t a = 0, b = 0, combined = -1;
  rt.run([&] {
    Runtime::spawn([&] { a = 21; });
    Runtime::sync();  // a must be visible now
    std::int64_t observed = a;
    Runtime::spawn([&, observed] { b = observed * 2; });
    Runtime::sync();
    combined = b;
  });
  EXPECT_EQ(combined, 42);
}

TEST(Runtime, DeepSerialChainDoesNotDeadlock) {
  // Chain of single-child spawns crossing the tier boundary repeatedly.
  Runtime rt(make_options(SchedulerKind::kCab, 2, 2, 4));
  std::atomic<int> depth_reached{0};
  std::function<void(int)> chain = [&](int d) {
    depth_reached.store(d);
    if (d == 64) return;
    Runtime::spawn([&chain, d] { chain(d + 1); });
    Runtime::sync();
  };
  rt.run([&] { chain(0); });
  EXPECT_EQ(depth_reached.load(), 64);
}

TEST(Runtime, ManyFlatChildren) {
  // Flat generation scheme (Section IV-D): one task spawning 500 children.
  for (auto kind : {SchedulerKind::kCab, SchedulerKind::kRandomStealing,
                    SchedulerKind::kTaskSharing}) {
    Runtime rt(make_options(kind, 2, 2, kind == SchedulerKind::kCab ? 2 : 0));
    std::atomic<int> ran{0};
    rt.run([&] {
      for (int i = 0; i < 500; ++i) Runtime::spawn([&] { ran.fetch_add(1); });
      Runtime::sync();
    });
    EXPECT_EQ(ran.load(), 500) << to_string(kind);
  }
}

TEST(SpawnValueApi, FibWithTypedResults) {
  Runtime rt(make_options(SchedulerKind::kCab, 2, 2, 2));
  std::function<long(int)> fib = [&](int n) -> long {
    if (n < 2) return n;
    auto left = spawn_value([&fib, n] { return fib(n - 1); });
    auto right = spawn_value([&fib, n] { return fib(n - 2); });
    Runtime::sync();
    return left.get() + right.get();
  };
  long result = 0;
  rt.run([&] { result = fib(15); });
  EXPECT_EQ(result, fib_serial(15));
}

TEST(SpawnValueApi, ReadyAfterSync) {
  Runtime rt(make_options(SchedulerKind::kRandomStealing, 2, 2, 0));
  bool ready_after = false;
  rt.run([&] {
    auto v = spawn_value([] { return std::string("computed"); });
    Runtime::sync();
    ready_after = v.ready() && v.get() == "computed";
  });
  EXPECT_TRUE(ready_after);
}

TEST(SpawnValueApi, MixesWithPlainSpawns) {
  Runtime rt(make_options(SchedulerKind::kCab, 2, 2, 1));
  std::atomic<int> side{0};
  int total = 0;
  rt.run([&] {
    auto a = spawn_value([] { return 40; });
    Runtime::spawn([&side] { side.fetch_add(1); });
    auto b = spawn_value([] { return 2; });
    Runtime::sync();
    total = a.get() + b.get();
  });
  EXPECT_EQ(total, 42);
  EXPECT_EQ(side.load(), 1);
}

TEST(Runtime, TaskExceptionPropagatesToRun) {
  Runtime rt(make_options(SchedulerKind::kCab, 2, 2, 2));
  EXPECT_THROW(
      rt.run([] { throw std::runtime_error("task failed"); }),
      std::runtime_error);
  // The runtime survives: the next run works normally.
  long result = 0;
  rt.run([&] { fib_task(10, &result); });
  EXPECT_EQ(result, fib_serial(10));
}

TEST(Runtime, ExceptionInDeepChildPropagates) {
  Runtime rt(make_options(SchedulerKind::kRandomStealing, 2, 2, 0));
  std::atomic<int> siblings_ran{0};
  bool caught = false;
  try {
    rt.run([&] {
      for (int i = 0; i < 16; ++i) {
        Runtime::spawn([&, i] {
          if (i == 7) throw std::logic_error("child 7");
          siblings_ran.fetch_add(1);
        });
      }
      Runtime::sync();
    });
  } catch (const std::logic_error& e) {
    caught = true;
    EXPECT_STREQ(e.what(), "child 7");
  }
  EXPECT_TRUE(caught);
  // The DAG drained: every non-throwing sibling still executed.
  EXPECT_EQ(siblings_ran.load(), 15);
}

TEST(Runtime, TwoRuntimesCoexist) {
  // Two independent schedulers in one process (e.g. a library user and a
  // test harness): runs must not interfere.
  Runtime a(make_options(SchedulerKind::kCab, 2, 2, 2));
  Runtime b(make_options(SchedulerKind::kRandomStealing, 1, 2, 0));
  long ra = 0, rb = 0;
  a.run([&] { fib_task(12, &ra); });
  b.run([&] { fib_task(13, &rb); });
  a.run([&] { fib_task(10, &ra); });
  EXPECT_EQ(ra, fib_serial(10));
  EXPECT_EQ(rb, fib_serial(13));
}

TEST(RuntimeStats, SummaryMentionsKeyCounters) {
  Runtime rt(make_options(SchedulerKind::kCab, 2, 2, 2));
  long out = 0;
  rt.run([&] { fib_task(10, &out); });
  std::string s = rt.stats().summary();
  EXPECT_NE(s.find("tasks="), std::string::npos);
  EXPECT_NE(s.find("spawns"), std::string::npos);
}

TEST(RunOn, SubsetPartitionComputesCorrectly) {
  Runtime rt(make_options(SchedulerKind::kCab, 4, 2, 2));
  long out = 0;
  rt.run_on({1, 2}, /*boundary_level=*/1, [&] { fib_task(14, &out); });
  EXPECT_EQ(out, fib_serial(14));
  // Single-squad partition: degenerate CAB (BL forced 0) still works.
  rt.run_on({3}, /*boundary_level=*/2, [&] { fib_task(10, &out); });
  EXPECT_EQ(out, fib_serial(10));
  // The whole machine still works after partitioned epochs.
  rt.run([&] { fib_task(12, &out); });
  EXPECT_EQ(out, fib_serial(12));
}

TEST(RunOn, ConcurrentDisjointPartitionsConserveTasks) {
  // Two epochs on disjoint halves of the machine at the same time, from
  // two submitter threads. Results must be right and the scheduler-level
  // task accounting must balance: every executed task is one of the
  // epoch roots or was spawned exactly once — no lost or doubled work.
  Runtime rt(make_options(SchedulerKind::kCab, 4, 2, 1));
  constexpr int kEpochs = 6;  // 3 rounds per half
  long lo[3] = {0, 0, 0}, hi[3] = {0, 0, 0};
  std::thread left([&] {
    for (long& out : lo) rt.run_on({0, 1}, 1, [&] { fib_task(13, &out); });
  });
  std::thread right([&] {
    for (long& out : hi) rt.run_on({2, 3}, 1, [&] { fib_task(15, &out); });
  });
  left.join();
  right.join();
  for (long v : lo) EXPECT_EQ(v, fib_serial(13));
  for (long v : hi) EXPECT_EQ(v, fib_serial(15));
  const WorkerStats t = rt.stats().total;
  EXPECT_EQ(t.tasks_executed, t.spawns_intra + t.spawns_inter + kEpochs);
}

TEST(RunOn, RethrowsJobException) {
  Runtime rt(make_options(SchedulerKind::kCab, 2, 2, 1));
  EXPECT_THROW(
      rt.run_on({0}, 0, [] { throw std::runtime_error("partition boom"); }),
      std::runtime_error);
  // The partition drained; the runtime is reusable.
  long out = 0;
  rt.run_on({0}, 0, [&] { fib_task(10, &out); });
  EXPECT_EQ(out, fib_serial(10));
}

TEST(RunOnDeathTest, RejectsBadSquadSets) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Runtime rt(make_options(SchedulerKind::kCab, 2, 2, 1));
  EXPECT_DEATH(rt.run_on({}, 0, [] {}), "empty squad set");
  EXPECT_DEATH(rt.run_on({2}, 0, [] {}), "out of range");
  EXPECT_DEATH(rt.run_on({0, 0}, 0, [] {}), "duplicate squad id");
}

// The observability contract — reports only between epochs — is enforced,
// not just documented: reading stats/metrics mid-epoch would race the
// workers' unsynchronized counters and return garbage silently.
TEST(RuntimeContractDeathTest, StatsDuringEpochAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Runtime rt(make_options(SchedulerKind::kCab, 2, 2, 1));
  EXPECT_DEATH(rt.run([&] { (void)rt.stats(); }),
               "while an epoch is running");
}

TEST(RuntimeContractDeathTest, MetricsSnapshotDuringEpochAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Runtime rt(make_options(SchedulerKind::kCab, 2, 2, 1));
  EXPECT_DEATH(rt.run([&] { (void)rt.metrics_snapshot(); }),
               "while an epoch is running");
}

}  // namespace
}  // namespace cab::runtime
