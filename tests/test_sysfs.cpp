#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "hw/sysfs_topology.hpp"

namespace cab::hw {
namespace {

namespace fs = std::filesystem;

TEST(ParseCpulist, SinglesRangesAndMixes) {
  EXPECT_EQ(parse_cpulist("0"), (std::vector<int>{0}));
  EXPECT_EQ(parse_cpulist("0-3"), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(parse_cpulist("0-1,4,6-7"), (std::vector<int>{0, 1, 4, 6, 7}));
  EXPECT_EQ(parse_cpulist("15"), (std::vector<int>{15}));
}

TEST(ParseCpulist, RejectsMalformed) {
  EXPECT_TRUE(parse_cpulist("").empty());
  EXPECT_TRUE(parse_cpulist("a-b").empty());
  EXPECT_TRUE(parse_cpulist("3-1").empty());
  EXPECT_TRUE(parse_cpulist("1,,2").empty());
}

TEST(ParseCacheSize, UnitsAndPlainBytes) {
  EXPECT_EQ(parse_cache_size("512K"), 512ull << 10);
  EXPECT_EQ(parse_cache_size("6144K"), 6ull << 20);
  EXPECT_EQ(parse_cache_size("8M"), 8ull << 20);
  EXPECT_EQ(parse_cache_size("1G"), 1ull << 30);
  EXPECT_EQ(parse_cache_size("4096"), 4096u);
  EXPECT_EQ(parse_cache_size(""), 0u);
  EXPECT_EQ(parse_cache_size("junk"), 0u);
  EXPECT_EQ(parse_cache_size("64X"), 0u);
}

/// Builds a fake sysfs tree mimicking the paper's 4x4 Opteron 8380.
class FakeSysfs : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) /
            ("cab_sysfs_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  void write(const fs::path& rel, const std::string& content) {
    const fs::path p = root_ / rel;
    fs::create_directories(p.parent_path());
    std::ofstream(p) << content << "\n";
  }

  void add_cpu(int cpu, int package, const std::string& l2_size,
               const std::string& l3_size, const std::string& l3_sharers) {
    const std::string base = "cpu" + std::to_string(cpu);
    write(base + "/topology/physical_package_id", std::to_string(package));
    // index0: L1d (private), index1: L1i (skipped), index2: L2, index3: L3.
    write(base + "/cache/index0/level", "1");
    write(base + "/cache/index0/type", "Data");
    write(base + "/cache/index0/size", "64K");
    write(base + "/cache/index0/shared_cpu_list", std::to_string(cpu));
    write(base + "/cache/index0/coherency_line_size", "64");
    write(base + "/cache/index0/ways_of_associativity", "2");
    write(base + "/cache/index1/level", "1");
    write(base + "/cache/index1/type", "Instruction");
    write(base + "/cache/index1/size", "64K");
    write(base + "/cache/index2/level", "2");
    write(base + "/cache/index2/type", "Unified");
    write(base + "/cache/index2/size", l2_size);
    write(base + "/cache/index2/shared_cpu_list", std::to_string(cpu));
    write(base + "/cache/index2/coherency_line_size", "64");
    write(base + "/cache/index2/ways_of_associativity", "16");
    write(base + "/cache/index3/level", "3");
    write(base + "/cache/index3/type", "Unified");
    write(base + "/cache/index3/size", l3_size);
    write(base + "/cache/index3/shared_cpu_list", l3_sharers);
    write(base + "/cache/index3/coherency_line_size", "64");
    write(base + "/cache/index3/ways_of_associativity", "48");
  }

  fs::path root_;
};

TEST_F(FakeSysfs, DetectsOpteronLikeMachine) {
  for (int cpu = 0; cpu < 16; ++cpu) {
    const int pkg = cpu / 4;
    const int lo = pkg * 4;
    add_cpu(cpu, pkg, "512K", "6144K",
            std::to_string(lo) + "-" + std::to_string(lo + 3));
  }
  Topology t = Topology::synthetic(1, 1);
  std::string notes;
  ASSERT_TRUE(detect_from_sysfs(root_.string(), &t, &notes));
  EXPECT_EQ(t.sockets(), 4);
  EXPECT_EQ(t.cores_per_socket(), 4);
  EXPECT_EQ(t.l2().size_bytes, 512ull << 10);
  EXPECT_EQ(t.l2().associativity, 16u);
  EXPECT_EQ(t.l3().size_bytes, 6ull << 20);
  EXPECT_EQ(t.l3().associativity, 48u);
  EXPECT_NE(notes.find("16 cpus in 4 packages"), std::string::npos);
}

TEST_F(FakeSysfs, SingleSocketMachine) {
  for (int cpu = 0; cpu < 2; ++cpu)
    add_cpu(cpu, 0, "512K", "6144K", "0-1");
  Topology t = Topology::synthetic(1, 1);
  ASSERT_TRUE(detect_from_sysfs(root_.string(), &t));
  EXPECT_EQ(t.sockets(), 1);
  EXPECT_EQ(t.cores_per_socket(), 2);
}

TEST_F(FakeSysfs, MissingTreeFails) {
  Topology t = Topology::synthetic(1, 1);
  EXPECT_FALSE(detect_from_sysfs((root_ / "nothing").string(), &t));
}

TEST_F(FakeSysfs, AsymmetricPackagesRejected) {
  // 3 cpus over 2 packages: not symmetric; detection must bail out.
  add_cpu(0, 0, "512K", "6144K", "0-1");
  add_cpu(1, 0, "512K", "6144K", "0-1");
  add_cpu(2, 1, "512K", "6144K", "2");
  Topology t = Topology::synthetic(1, 1);
  EXPECT_FALSE(detect_from_sysfs(root_.string(), &t));
}

TEST_F(FakeSysfs, OddCacheSizeGetsLegalizedAssociativity) {
  // 5 MiB 48-way is not line*ways aligned; detection must adjust the
  // associativity instead of aborting.
  for (int cpu = 0; cpu < 4; ++cpu) add_cpu(cpu, cpu / 2, "512K", "5M", "0-1");
  Topology t = Topology::synthetic(1, 1);
  ASSERT_TRUE(detect_from_sysfs(root_.string(), &t));
  EXPECT_EQ(t.l3().size_bytes, 5ull << 20);
  EXPECT_EQ(t.l3().size_bytes %
                (static_cast<std::uint64_t>(t.l3().line_bytes) *
                 t.l3().associativity),
            0u);
}

}  // namespace
}  // namespace cab::hw
