#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "deque/chase_lev_deque.hpp"
#include "deque/locked_deque.hpp"

namespace cab::deque {
namespace {

int* tok(std::intptr_t v) { return reinterpret_cast<int*>(v); }
std::intptr_t val(int* p) { return reinterpret_cast<std::intptr_t>(p); }

TEST(ChaseLev, EmptyPopsReturnNull) {
  ChaseLevDeque<int*> d;
  EXPECT_EQ(d.pop_bottom(), nullptr);
  EXPECT_EQ(d.steal_top(), nullptr);
  EXPECT_TRUE(d.empty_estimate());
}

TEST(ChaseLev, LifoForOwner) {
  ChaseLevDeque<int*> d;
  for (std::intptr_t i = 1; i <= 5; ++i) d.push_bottom(tok(i));
  for (std::intptr_t i = 5; i >= 1; --i) EXPECT_EQ(val(d.pop_bottom()), i);
  EXPECT_EQ(d.pop_bottom(), nullptr);
}

TEST(ChaseLev, FifoForThief) {
  ChaseLevDeque<int*> d;
  for (std::intptr_t i = 1; i <= 5; ++i) d.push_bottom(tok(i));
  for (std::intptr_t i = 1; i <= 5; ++i) EXPECT_EQ(val(d.steal_top()), i);
  EXPECT_EQ(d.steal_top(), nullptr);
}

TEST(ChaseLev, GrowsPastInitialCapacity) {
  ChaseLevDeque<int*> d(8);
  constexpr std::intptr_t kN = 10000;
  for (std::intptr_t i = 1; i <= kN; ++i) d.push_bottom(tok(i));
  EXPECT_EQ(d.size_estimate(), static_cast<std::size_t>(kN));
  for (std::intptr_t i = kN; i >= 1; --i) EXPECT_EQ(val(d.pop_bottom()), i);
}

TEST(ChaseLev, InterleavedPushPopSteal) {
  ChaseLevDeque<int*> d;
  d.push_bottom(tok(1));
  d.push_bottom(tok(2));
  EXPECT_EQ(val(d.steal_top()), 1);
  d.push_bottom(tok(3));
  EXPECT_EQ(val(d.pop_bottom()), 3);
  EXPECT_EQ(val(d.pop_bottom()), 2);
  EXPECT_EQ(d.pop_bottom(), nullptr);
}

TEST(ChaseLev, StealBatchEmptyAndZeroCap) {
  ChaseLevDeque<int*> d;
  int* buf[4] = {};
  EXPECT_EQ(d.steal_batch(buf, 4), 0u);
  d.push_bottom(tok(1));
  EXPECT_EQ(d.steal_batch(buf, 0), 0u);  // max_out == 0 never claims
  EXPECT_EQ(val(d.pop_bottom()), 1);
}

/// steal_batch takes ceil(n/2) — the steal-half rule — clamped to the
/// caller's buffer, and delivers in FIFO (oldest-first) order.
TEST(ChaseLev, StealBatchTakesCeilHalfInFifoOrder) {
  ChaseLevDeque<int*> d;
  for (std::intptr_t i = 1; i <= 5; ++i) d.push_bottom(tok(i));
  int* buf[8] = {};
  EXPECT_EQ(d.steal_batch(buf, 8), 3u);  // ceil(5/2)
  EXPECT_EQ(val(buf[0]), 1);
  EXPECT_EQ(val(buf[1]), 2);
  EXPECT_EQ(val(buf[2]), 3);
  EXPECT_EQ(d.steal_batch(buf, 8), 1u);  // ceil(2/2)
  EXPECT_EQ(val(buf[0]), 4);
  EXPECT_EQ(val(d.pop_bottom()), 5);
  EXPECT_EQ(d.steal_batch(buf, 8), 0u);
}

TEST(ChaseLev, StealBatchClampsToMaxOut) {
  ChaseLevDeque<int*> d;
  for (std::intptr_t i = 1; i <= 100; ++i) d.push_bottom(tok(i));
  int* buf[8] = {};
  EXPECT_EQ(d.steal_batch(buf, 8), 8u);  // ceil(100/2) = 50, clamped
  for (std::intptr_t i = 1; i <= 8; ++i) EXPECT_EQ(val(buf[i - 1]), i);
  EXPECT_EQ(d.size_estimate(), 92u);  // size must mask the claim bit
}

/// The claim protocol round-trips with the owner side: after mixed
/// batch-steals and pops, the deque is empty and every token was seen
/// exactly once.
TEST(ChaseLev, StealBatchInterleavedWithOwner) {
  ChaseLevDeque<int*> d(2);  // forces grow() under the mix
  std::vector<int> seen(20, 0);
  int* buf[4] = {};
  for (std::intptr_t i = 0; i < 20; ++i) {
    d.push_bottom(tok(i + 1));
    if (i % 3 == 2) {
      const std::size_t k = d.steal_batch(buf, 4);
      for (std::size_t j = 0; j < k; ++j) ++seen[val(buf[j]) - 1];
    }
    if (i % 4 == 3) {
      if (int* p = d.pop_bottom()) ++seen[val(p) - 1];
    }
  }
  while (int* p = d.pop_bottom()) ++seen[val(p) - 1];
  EXPECT_EQ(d.steal_batch(buf, 4), 0u);
  for (int s : seen) EXPECT_EQ(s, 1);
}

/// Owner pushes/pops while thieves steal: every token must be consumed
/// exactly once (no loss, no duplication) — the core Chase-Lev contract.
TEST(ChaseLev, StressNoLossNoDuplication) {
  constexpr std::intptr_t kItems = 200000;
  constexpr int kThieves = 3;
  ChaseLevDeque<int*> d;
  std::vector<std::atomic<int>> seen(kItems + 1);
  for (auto& s : seen) s.store(0);
  std::atomic<bool> done{false};
  std::atomic<std::intptr_t> consumed{0};

  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire) ||
             consumed.load() < kItems) {
        if (int* p = d.steal_top()) {
          seen[static_cast<std::size_t>(val(p))].fetch_add(1);
          consumed.fetch_add(1);
        }
        if (consumed.load() >= kItems) break;
      }
    });
  }

  // Owner: push all, popping a few along the way.
  for (std::intptr_t i = 1; i <= kItems; ++i) {
    d.push_bottom(tok(i));
    if (i % 3 == 0) {
      if (int* p = d.pop_bottom()) {
        seen[static_cast<std::size_t>(val(p))].fetch_add(1);
        consumed.fetch_add(1);
      }
    }
  }
  // Owner drains the rest.
  while (int* p = d.pop_bottom()) {
    seen[static_cast<std::size_t>(val(p))].fetch_add(1);
    consumed.fetch_add(1);
  }
  done.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();
  // Thieves may have taken what the owner could not; drain remainder.
  while (int* p = d.steal_top()) {
    seen[static_cast<std::size_t>(val(p))].fetch_add(1);
    consumed.fetch_add(1);
  }

  EXPECT_EQ(consumed.load(), kItems);
  for (std::intptr_t i = 1; i <= kItems; ++i)
    EXPECT_EQ(seen[static_cast<std::size_t>(i)].load(), 1) << "token " << i;
}

TEST(LockedDeque, BottomIsLifoTopIsFifo) {
  LockedDeque<int*> d;
  for (std::intptr_t i = 1; i <= 4; ++i) d.push_bottom(tok(i));
  EXPECT_EQ(d.size(), 4u);
  EXPECT_EQ(val(d.pop_bottom()), 4);
  EXPECT_EQ(val(d.steal_top()), 1);
  EXPECT_EQ(val(d.steal_top()), 2);
  EXPECT_EQ(val(d.pop_bottom()), 3);
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.pop_bottom(), nullptr);
  EXPECT_EQ(d.steal_top(), nullptr);
}

TEST(LockedDeque, ConcurrentMixedTraffic) {
  LockedDeque<int*> d;
  constexpr std::intptr_t kItems = 50000;
  std::atomic<std::intptr_t> popped{0};
  std::thread producer([&] {
    for (std::intptr_t i = 1; i <= kItems; ++i) d.push_bottom(tok(i));
  });
  std::vector<std::thread> consumers;
  for (int t = 0; t < 3; ++t) {
    consumers.emplace_back([&] {
      while (popped.load() < kItems) {
        if (d.steal_top() != nullptr) popped.fetch_add(1);
      }
    });
  }
  producer.join();
  for (auto& c : consumers) c.join();
  EXPECT_EQ(popped.load(), kItems);
  EXPECT_TRUE(d.empty());
}

}  // namespace
}  // namespace cab::deque
