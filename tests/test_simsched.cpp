#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "dag/generators.hpp"
#include "simsched/sim_scheduler.hpp"

namespace cab::simsched {
namespace {

SimOptions base_options(SimPolicy policy, int bl) {
  SimOptions o;
  o.topo = hw::Topology::synthetic(2, 2, /*l3=*/64 * 1024, /*l2=*/64 * 64);
  o.policy = policy;
  o.boundary_level = bl;
  o.seed = 11;
  return o;
}

TEST(EventQueue, OrdersByTimePriorityThenSequence) {
  EventQueue<int> q;
  q.push(2.0, 1);
  q.push(1.0, 2, /*priority=*/5);
  q.push(1.0, 3, /*priority=*/1);
  q.push(1.0, 4, /*priority=*/1);  // same prio: insertion order
  q.push(0.5, 5);
  SimTime t = 0;
  EXPECT_EQ(q.pop(t), 5);
  EXPECT_DOUBLE_EQ(t, 0.5);
  EXPECT_EQ(q.pop(t), 3);
  EXPECT_EQ(q.pop(t), 4);
  EXPECT_EQ(q.pop(t), 2);
  EXPECT_EQ(q.pop(t), 1);
  EXPECT_TRUE(q.empty());
}

TEST(Simulator, SingleNodeGraph) {
  dag::TaskGraph g;
  g.add_root(100);
  cachesim::TraceStore store;
  Simulator sim(base_options(SimPolicy::kCab, 2));
  SimResult r = sim.run(g, store);
  EXPECT_GT(r.makespan, 0.0);
  EXPECT_EQ(r.tasks, 1u);
}

TEST(Simulator, MakespanRespectsLowerBounds) {
  // T_MN >= max(T1 / P, T_inf) for any scheduler (greedy bound).
  dag::TaskGraph g = dag::make_recursive_dnc(2, 5, 10000, 10);
  cachesim::TraceStore store;
  for (auto policy : {SimPolicy::kCab, SimPolicy::kRandomStealing}) {
    SimOptions o = base_options(policy, 2);
    Simulator sim(o);
    SimResult r = sim.run(g, store);
    const double t1 = static_cast<double>(g.total_work()) *
                      o.cost.cycles_per_work;
    const double tinf = static_cast<double>(g.critical_path()) *
                        o.cost.cycles_per_work;
    EXPECT_GE(r.makespan * 1.0001, t1 / o.topo.total_cores());
    EXPECT_GE(r.makespan * 1.0001, tinf);
    // And is not absurdly worse than the greedy upper bound T1/P + Tinf
    // plus overheads.
    EXPECT_LT(r.makespan, 4 * (t1 / o.topo.total_cores() + tinf) + 1e6);
  }
}

TEST(Simulator, DeterministicAcrossRuns) {
  dag::TaskGraph g = dag::make_irregular(3, 4, 7, 400, 2000);
  cachesim::TraceStore store;
  for (auto policy : {SimPolicy::kCab, SimPolicy::kRandomStealing}) {
    SimOptions o = base_options(policy, 2);
    SimResult a = Simulator(o).run(g, store);
    SimResult b = Simulator(o).run(g, store);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.cache.l3_misses, b.cache.l3_misses);
    EXPECT_EQ(a.total_busy, b.total_busy);
  }
}

TEST(Simulator, SeedChangesRandomPolicySchedule) {
  dag::TaskGraph g = dag::make_irregular(3, 4, 7, 400, 2000);
  cachesim::TraceStore store;
  SimOptions o = base_options(SimPolicy::kRandomStealing, 0);
  o.victims = VictimSelection::kUniformRandom;
  SimResult a = Simulator(o).run(g, store);
  o.seed = 999;
  SimResult b = Simulator(o).run(g, store);
  // Work conservation regardless of seed.
  EXPECT_EQ(a.tasks, b.tasks);
}

TEST(Simulator, AllPiecesExecuteExactlyOnce) {
  dag::TaskGraph g = dag::make_recursive_dnc(2, 4, 100, 5);
  cachesim::TraceStore store;
  std::map<dag::NodeId, int> pre_runs;
  SimOptions o = base_options(SimPolicy::kCab, 2);
  o.on_piece_start = [&](dag::NodeId n, int, SimTime, bool post) {
    if (!post) ++pre_runs[n];
  };
  Simulator(o).run(g, store);
  EXPECT_EQ(pre_runs.size(), g.size());
  for (const auto& [n, count] : pre_runs) EXPECT_EQ(count, 1) << "node " << n;
}

TEST(Simulator, SequentialPhasesDoNotOverlap) {
  // Root with 4 sequential phases; each phase a small parallel tree.
  dag::TaskGraph g;
  dag::NodeId root = g.add_root(1);
  g.set_sequential(root, true);
  std::vector<std::set<dag::NodeId>> phase_nodes;
  for (int p = 0; p < 4; ++p) {
    dag::NodeId ph = g.add_child(root, 5);
    std::set<dag::NodeId> nodes{ph};
    for (int i = 0; i < 3; ++i) nodes.insert(g.add_child(ph, 500));
    phase_nodes.push_back(std::move(nodes));
  }
  cachesim::TraceStore store;
  SimOptions o = base_options(SimPolicy::kCab, 1);
  std::map<dag::NodeId, int> node_phase;
  for (int p = 0; p < 4; ++p)
    for (dag::NodeId n : phase_nodes[static_cast<std::size_t>(p)])
      node_phase[n] = p;
  std::vector<double> phase_first_start(4, 1e30), phase_last_start(4, -1);
  o.on_piece_start = [&](dag::NodeId n, int, SimTime t, bool) {
    auto it = node_phase.find(n);
    if (it == node_phase.end()) return;
    phase_first_start[static_cast<std::size_t>(it->second)] =
        std::min(phase_first_start[static_cast<std::size_t>(it->second)], t);
    phase_last_start[static_cast<std::size_t>(it->second)] =
        std::max(phase_last_start[static_cast<std::size_t>(it->second)], t);
  };
  Simulator(o).run(g, store);
  // Phase p+1's first task starts after phase p's last task started
  // (strict ordering: after it *completed*, so certainly after it began).
  for (int p = 0; p + 1 < 4; ++p) {
    EXPECT_GE(phase_first_start[static_cast<std::size_t>(p + 1)],
              phase_last_start[static_cast<std::size_t>(p)]);
  }
}

TEST(Simulator, CabOnlyHeadsRunInterTasks) {
  dag::TaskGraph g = dag::make_recursive_dnc(2, 5, 400, 5);
  cachesim::TraceStore store;
  SimOptions o = base_options(SimPolicy::kCab, 3);
  bool violation = false;
  o.on_piece_start = [&](dag::NodeId n, int worker, SimTime, bool) {
    // Inter-tier tasks (level <= 3) must execute on head workers
    // (worker id divisible by cores/socket = 2).
    if (g.node(n).level <= 3 && worker % 2 != 0) violation = true;
  };
  Simulator(o).run(g, store);
  EXPECT_FALSE(violation);
}

TEST(Simulator, CabConfinesIntraTasksToOneSocketPerLeafInterSubtree) {
  dag::TaskGraph g = dag::make_recursive_dnc(2, 6, 2000, 5);
  cachesim::TraceStore store;
  const std::int32_t bl = 2;
  SimOptions o = base_options(SimPolicy::kCab, bl);
  // Map each node to its leaf-inter ancestor (level == bl).
  std::vector<dag::NodeId> anchor(g.size(), dag::kNoNode);
  for (std::size_t i = 0; i < g.size(); ++i) {
    const auto& n = g.node(static_cast<dag::NodeId>(i));
    if (n.level == bl) anchor[i] = static_cast<dag::NodeId>(i);
    else if (n.level > bl) anchor[i] = anchor[static_cast<std::size_t>(n.parent)];
  }
  std::map<dag::NodeId, std::set<int>> sockets_used;
  o.on_piece_start = [&](dag::NodeId n, int worker, SimTime, bool) {
    if (g.node(n).level > bl)
      sockets_used[anchor[static_cast<std::size_t>(n)]].insert(worker / 2);
  };
  Simulator(o).run(g, store);
  EXPECT_FALSE(sockets_used.empty());
  for (const auto& [a, socks] : sockets_used)
    EXPECT_EQ(socks.size(), 1u) << "leaf-inter subtree " << a
                                << " ran on multiple sockets";
}

TEST(Simulator, RandomStealingSpreadsAcrossAllWorkers) {
  dag::TaskGraph g = dag::make_recursive_dnc(2, 7, 3000, 5);
  cachesim::TraceStore store;
  SimOptions o = base_options(SimPolicy::kRandomStealing, 0);
  o.victims = VictimSelection::kUniformRandom;
  std::set<int> workers_used;
  o.on_piece_start = [&](dag::NodeId, int worker, SimTime, bool) {
    workers_used.insert(worker);
  };
  Simulator(o).run(g, store);
  EXPECT_EQ(workers_used.size(),
            static_cast<std::size_t>(o.topo.total_cores()));
}

TEST(Simulator, PostPiecesRunAfterChildren) {
  dag::TaskGraph g;
  dag::NodeId root = g.add_root(1, /*post=*/50);
  dag::NodeId a = g.add_child(root, 10, 20);
  g.add_child(a, 100);
  g.add_child(a, 100);
  cachesim::TraceStore store;
  SimOptions o = base_options(SimPolicy::kCab, 1);
  std::map<std::pair<dag::NodeId, bool>, double> starts;
  o.on_piece_start = [&](dag::NodeId n, int, SimTime t, bool post) {
    starts[{n, post}] = t;
  };
  SimResult r = Simulator(o).run(g, store);
  ASSERT_TRUE(starts.count({a, true}));
  ASSERT_TRUE(starts.count({root, true}));
  EXPECT_GT((starts[{a, true}]), (starts[{a, false}]));
  EXPECT_GT((starts[{root, true}]), (starts[{a, true}]));
  EXPECT_GT(r.makespan, (starts[{root, true}]));
}

TEST(Simulator, InterTierFractionSmallForDivideAndConquer) {
  // Paper Section III-E: inter-socket tier is typically < 5% of the work.
  dag::TaskGraph g = dag::make_recursive_dnc(2, 8, 50000, 10);
  cachesim::TraceStore store;
  SimOptions o = base_options(SimPolicy::kCab, 3);
  SimResult r = Simulator(o).run(g, store);
  EXPECT_GT(r.inter_tier_fraction(), 0.0);
  EXPECT_LT(r.inter_tier_fraction(), 0.05);
}

TEST(Simulator, UtilizationHighForWideFlatGraphs) {
  dag::TaskGraph g = dag::make_flat(400, 10000);
  cachesim::TraceStore store;
  SimOptions o = base_options(SimPolicy::kRandomStealing, 0);
  SimResult r = Simulator(o).run(g, store);
  EXPECT_GT(r.utilization(), 0.8);
}

TEST(Simulator, ColdCachesOptionResetsBetweenRuns) {
  dag::TaskGraph g;
  g.add_root(1);
  cachesim::TraceStore store;
  cachesim::Trace t{{0, 64 * 100, 1, false}};
  g.set_traces(0, store.add(t), -1);

  SimOptions o = base_options(SimPolicy::kCab, 0);
  o.policy = SimPolicy::kRandomStealing;
  Simulator sim(o);
  SimResult first = sim.run(g, store);
  SimResult second = sim.run(g, store);
  EXPECT_EQ(first.cache.l3_misses, second.cache.l3_misses);  // cold again

  o.cold_caches = false;
  Simulator warm(o);
  SimResult w1 = warm.run(g, store);
  SimResult w2 = warm.run(g, store);
  EXPECT_GT(w1.cache.l3_misses, w2.cache.l3_misses);  // warm reuse
}

TEST(Simulator, BandwidthModelSerializesSocketFills) {
  // 4 equal leaves, each streaming a distinct 256-line region from
  // memory, on 1 socket x 4 cores. Latency-only: they overlap fully.
  // With a bandwidth cap of `bw` cycles/line, the socket must ship
  // 4*256 lines serially => makespan >= 1024 * bw.
  dag::TaskGraph g;
  dag::NodeId root = g.add_root(1);
  cachesim::TraceStore store;
  for (int i = 0; i < 4; ++i) {
    dag::NodeId leaf = g.add_child(root, 10);
    g.set_traces(leaf,
                 store.add({{static_cast<std::uint64_t>(i) * (1u << 20),
                             256 * 64, 1, false}}),
                 -1);
  }
  SimOptions o;
  o.topo = hw::Topology::synthetic(1, 4, 64 * 48 * 1024, 64 * 16 * 16);
  o.policy = SimPolicy::kRandomStealing;

  SimResult latency_only = Simulator(o).run(g, store);

  o.cost.socket_bandwidth_cycles_per_line = 500.0;  // slower than latency
  SimResult capped = Simulator(o).run(g, store);
  EXPECT_GE(capped.makespan, 4 * 256 * 500.0);
  EXPECT_GT(capped.makespan, latency_only.makespan);
}

TEST(Simulator, BandwidthCapIrrelevantWhenFasterThanLatency) {
  dag::TaskGraph g;
  dag::NodeId root = g.add_root(1);
  cachesim::TraceStore store;
  dag::NodeId leaf = g.add_child(root, 10);
  g.set_traces(leaf, store.add({{0, 256 * 64, 1, false}}), -1);

  SimOptions o = base_options(SimPolicy::kRandomStealing, 0);
  SimResult a = Simulator(o).run(g, store);
  // One stream: channel ships faster than the latency-bound core
  // consumes => no change.
  o.cost.socket_bandwidth_cycles_per_line = 1.0;
  SimResult b = Simulator(o).run(g, store);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

TEST(SimResult, JsonContainsAllKeysAndBalancedBraces) {
  dag::TaskGraph g = dag::make_flat(8, 100);
  cachesim::TraceStore store;
  SimResult r = Simulator(base_options(SimPolicy::kCab, 1)).run(g, store);
  const std::string j = r.to_json();
  for (const char* key :
       {"makespan_cycles", "utilization", "tasks", "l2_misses", "l3_misses",
        "invalidations", "sockets"}) {
    EXPECT_NE(j.find(std::string("\"") + key + "\""), std::string::npos)
        << key;
  }
  EXPECT_EQ(std::count(j.begin(), j.end(), '{'),
            std::count(j.begin(), j.end(), '}'));
  EXPECT_EQ(j.front(), '{');
  EXPECT_EQ(j.back(), '}');
}

TEST(SimResult, SummaryContainsHeadlineNumbers) {
  dag::TaskGraph g = dag::make_flat(8, 100);
  cachesim::TraceStore store;
  SimResult r = Simulator(base_options(SimPolicy::kCab, 1)).run(g, store);
  std::string s = r.summary();
  EXPECT_NE(s.find("makespan="), std::string::npos);
  EXPECT_NE(s.find("L3-miss="), std::string::npos);
}

/// Property: simulation completes and conserves tasks for arbitrary
/// irregular DAGs under every policy/BL combination.
struct SimPropCase {
  std::uint64_t seed;
  SimPolicy policy;
  std::int32_t bl;
};

class SimulatorProperty : public ::testing::TestWithParam<SimPropCase> {};

TEST_P(SimulatorProperty, CompletesAndConservesWork) {
  const auto c = GetParam();
  dag::TaskGraph g = dag::make_irregular(c.seed, 5, 9, 600, 1000);
  cachesim::TraceStore store;
  SimOptions o = base_options(c.policy, c.bl);
  std::uint64_t pre_pieces = 0;
  o.on_piece_start = [&](dag::NodeId, int, SimTime, bool post) {
    if (!post) ++pre_pieces;
  };
  SimResult r = Simulator(o).run(g, store);
  EXPECT_EQ(pre_pieces, g.size());
  EXPECT_GT(r.makespan, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SimulatorProperty,
    ::testing::Values(SimPropCase{1, SimPolicy::kCab, 0},
                      SimPropCase{1, SimPolicy::kCab, 2},
                      SimPropCase{1, SimPolicy::kCab, 5},
                      SimPropCase{1, SimPolicy::kCab, 50},
                      SimPropCase{1, SimPolicy::kRandomStealing, 0},
                      SimPropCase{2, SimPolicy::kCab, 3},
                      SimPropCase{3, SimPolicy::kCab, 3},
                      SimPropCase{4, SimPolicy::kCab, 1},
                      SimPropCase{5, SimPolicy::kRandomStealing, 0},
                      SimPropCase{6, SimPolicy::kCab, 4}));

/// Property over machine shapes: the protocol completes, conserves work
/// and respects the greedy lower bounds on any topology, from a single
/// core to wide many-socket shapes, under both policies.
struct ShapeCase {
  int sockets, cores;
  SimPolicy policy;
};

class TopologyShapeProperty : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(TopologyShapeProperty, ProtocolSoundOnAnyShape) {
  const auto c = GetParam();
  dag::TaskGraph g = dag::make_irregular(9, 4, 7, 500, 800);
  cachesim::TraceStore store;
  SimOptions o;
  o.topo = hw::Topology::synthetic(c.sockets, c.cores, 1ull << 20);
  o.policy = c.policy;
  o.boundary_level = 3;
  std::uint64_t pieces = 0;
  o.on_piece_start = [&](dag::NodeId, int worker, SimTime, bool post) {
    if (!post) ++pieces;
    ASSERT_GE(worker, 0);
    ASSERT_LT(worker, o.topo.total_cores());
  };
  SimResult r = Simulator(o).run(g, store);
  EXPECT_EQ(pieces, g.size());
  EXPECT_GE(r.makespan * 1.0001,
            static_cast<double>(g.critical_path()) * o.cost.cycles_per_work);
  EXPECT_LE(r.utilization(), 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TopologyShapeProperty,
    ::testing::Values(ShapeCase{1, 1, SimPolicy::kCab},
                      ShapeCase{1, 1, SimPolicy::kRandomStealing},
                      ShapeCase{1, 16, SimPolicy::kCab},
                      ShapeCase{16, 1, SimPolicy::kCab},
                      ShapeCase{8, 2, SimPolicy::kCab},
                      ShapeCase{2, 8, SimPolicy::kCab},
                      ShapeCase{3, 5, SimPolicy::kCab},
                      ShapeCase{3, 5, SimPolicy::kRandomStealing},
                      ShapeCase{8, 8, SimPolicy::kCab}));

}  // namespace
}  // namespace cab::simsched
