#include <gtest/gtest.h>

#include "hw/affinity.hpp"
#include "hw/topology.hpp"

namespace cab::hw {
namespace {

TEST(Topology, Opteron8380MatchesPaperTestbed) {
  Topology t = Topology::opteron_8380();
  EXPECT_EQ(t.sockets(), 4);
  EXPECT_EQ(t.cores_per_socket(), 4);
  EXPECT_EQ(t.total_cores(), 16);
  EXPECT_EQ(t.l2().size_bytes, 512ull << 10);
  EXPECT_EQ(t.l3().size_bytes, 6ull << 20);
  EXPECT_EQ(t.shared_cache_bytes(), 6ull << 20);
}

TEST(Topology, SocketOfMapsSocketMajor) {
  Topology t = Topology::synthetic(3, 4);
  EXPECT_EQ(t.socket_of(0), 0);
  EXPECT_EQ(t.socket_of(3), 0);
  EXPECT_EQ(t.socket_of(4), 1);
  EXPECT_EQ(t.socket_of(11), 2);
  EXPECT_EQ(t.first_core_of(0), 0);
  EXPECT_EQ(t.first_core_of(2), 8);
}

TEST(Topology, CacheSpecSets) {
  CacheSpec spec{6ull << 20, 64, 48};
  EXPECT_EQ(spec.sets(), (6ull << 20) / (64 * 48));
}

TEST(Topology, SyntheticAdjustsAssociativityForOddSizes) {
  // 5 MiB is not divisible by 64*48; constructor must still succeed.
  Topology t = Topology::synthetic(2, 2, 5ull << 20);
  EXPECT_GT(t.l3().associativity, 0u);
  EXPECT_EQ(t.l3().size_bytes %
                (static_cast<std::uint64_t>(t.l3().line_bytes) *
                 t.l3().associativity),
            0u);
}

TEST(Topology, DetectReturnsUsableTopology) {
  Topology t = Topology::detect();
  EXPECT_GE(t.sockets(), 1);
  EXPECT_GE(t.cores_per_socket(), 1);
  EXPECT_GT(t.l3().size_bytes, 0u);
}

TEST(Topology, DescribeMentionsGeometry) {
  Topology t = Topology::opteron_8380();
  std::string d = t.describe();
  EXPECT_NE(d.find("4 sockets"), std::string::npos);
  EXPECT_NE(d.find("6.0 MiB"), std::string::npos);
}

TEST(Affinity, BindCurrentThreadSucceedsModuloHost) {
  EXPECT_GE(online_cpus(), 1);
  // Core 1000 wraps modulo online CPUs — must not fail.
  EXPECT_TRUE(bind_current_thread(1000));
  EXPECT_TRUE(bind_current_thread(0));
}

}  // namespace
}  // namespace cab::hw
