#include <gtest/gtest.h>

#include "apps/heat.hpp"
#include "apps/mergesort.hpp"
#include "apps/sor.hpp"
#include "core/cab.hpp"

namespace cab {
namespace {

/// Small heat configuration whose per-socket slice fits the (scaled-down)
/// L3 — the regime where the paper's Fig. 4 gains appear.
apps::DagBundle small_heat() {
  apps::HeatParams p;
  p.rows = 512;
  p.cols = 256;
  p.steps = 6;
  p.leaf_rows = 64;
  return apps::build_heat_dag(p);
}

TEST(Integration, CompareSchedulersRunsBothPolicies) {
  Comparison c = compare_schedulers(small_heat(),
                                    hw::Topology::opteron_8380());
  EXPECT_GT(c.cab.makespan, 0.0);
  EXPECT_GT(c.cilk.makespan, 0.0);
  EXPECT_GT(c.boundary_level, 0);
  EXPECT_EQ(c.cab.tasks, c.cilk.tasks);
}

TEST(Integration, CabReducesL3MissesOnIterativeStencil) {
  // The headline TRICI claim (Table IV direction): CAB has strictly fewer
  // shared-cache misses than random stealing on heat, at a size where the
  // per-socket slice matters (total working set larger than one socket's
  // L3, so the baseline cannot just concentrate everything locally).
  apps::HeatParams p;
  p.rows = 1024;
  p.cols = 1024;
  p.steps = 6;
  p.leaf_rows = 128;
  Comparison c = compare_schedulers(apps::build_heat_dag(p),
                                    hw::Topology::opteron_8380());
  EXPECT_LT(c.cab.cache.l3_misses, c.cilk.cache.l3_misses);
  // And is faster overall (the Fig. 4 direction).
  EXPECT_LT(c.cab.makespan, c.cilk.makespan);
}

TEST(Integration, CabReducesL3MissesOnSor) {
  apps::SorParams p;
  p.rows = 1024;
  p.cols = 1024;
  p.iterations = 3;
  p.leaf_rows = 128;
  Comparison c = compare_schedulers(apps::build_sor_dag(p),
                                    hw::Topology::opteron_8380());
  EXPECT_LT(c.cab.cache.l3_misses, c.cilk.cache.l3_misses);
}

TEST(Integration, BundleBoundaryLevelUsesEq4) {
  // The paper's worked example (Section V-B): 3k*2k doubles = 48 MB,
  // Sc = 6 MB, M = 4, B = 2 => BL = 4.
  apps::HeatParams p;
  p.rows = 3072;
  p.cols = 2048;
  p.steps = 1;
  apps::DagBundle b = apps::build_heat_dag(p);
  EXPECT_EQ(b.input_bytes, 48ull << 20);
  EXPECT_EQ(bundle_boundary_level(b, hw::Topology::opteron_8380()), 4);
}

TEST(Integration, NormalizedTimeAndGainAreConsistent) {
  Comparison c;
  c.cab.makespan = 50;
  c.cilk.makespan = 100;
  EXPECT_DOUBLE_EQ(c.normalized_time(), 0.5);
  EXPECT_DOUBLE_EQ(c.gain_percent(), 50.0);
}

TEST(Integration, Eq13TimeBoundHolds) {
  // T_MN(G) = O(T1(inter)/M + T1(intra)/(M*N) + Tinf(G)): check the
  // simulated makespan against the bound with a generous constant.
  apps::DagBundle b = small_heat();
  const hw::Topology topo = hw::Topology::opteron_8380();
  Comparison c = compare_schedulers(b, topo);

  const dag::TierAssignment tier{c.boundary_level};
  std::uint64_t t1_inter = 0, t1_intra = 0;
  for (std::size_t i = 0; i < b.graph.size(); ++i) {
    const auto& n = b.graph.node(static_cast<dag::NodeId>(i));
    const std::uint64_t w = n.pre_work + n.post_work;
    if (tier.is_inter(n.level)) t1_inter += w;
    else t1_intra += w;
  }
  const double tinf = static_cast<double>(b.graph.critical_path());
  const double bound = static_cast<double>(t1_inter) / topo.sockets() +
                       static_cast<double>(t1_intra) / topo.total_cores() +
                       tinf;
  // Memory latency inflates every term by at most the worst-case per-line
  // cost; 64 bytes/line of trace data per ~8 work units keeps the factor
  // bounded. Use a loose multiplier: the *structure* of the bound is what
  // we verify (makespan does not blow up combinatorially).
  simsched::CostModel cost;
  const double mem_factor = cost.memory_cycles / 4.0;
  EXPECT_LT(c.cab.makespan, bound * mem_factor);
}

TEST(Integration, MergesortCabKeepsMergesLocal) {
  apps::MergesortParams p;
  p.n = 1 << 18;
  p.leaf_elems = 1 << 13;
  Comparison c = compare_schedulers(apps::build_mergesort_dag(p),
                                    hw::Topology::opteron_8380());
  // Merge reuse within the socket: fewer L3 misses than random stealing.
  EXPECT_LT(c.cab.cache.l3_misses, c.cilk.cache.l3_misses);
}

TEST(Integration, BlZeroMatchesRandomStealingBehaviour) {
  // Fig. 8 setup: with BL = 0, CAB degenerates; makespans should be close
  // (identical policy, only bookkeeping differs — none in the simulator).
  apps::DagBundle b = small_heat();
  simsched::SimOptions o;
  o.topo = hw::Topology::opteron_8380();
  o.policy = simsched::SimPolicy::kCab;
  o.boundary_level = 0;
  o.victims = simsched::VictimSelection::kUniformRandom;
  simsched::SimResult cab0 = simsched::Simulator(o).run(b.graph, b.traces);
  o.policy = simsched::SimPolicy::kRandomStealing;
  simsched::SimResult rnd = simsched::Simulator(o).run(b.graph, b.traces);
  EXPECT_DOUBLE_EQ(cab0.makespan, rnd.makespan);
}

}  // namespace
}  // namespace cab
