// Frame recycling and TaskBody coverage (DESIGN.md "Allocation
// strategy"): inline/boxed callable storage, move-only captures,
// capture destructor accounting, pool conservation and shutdown
// draining, and — the acceptance property — a spawn path that performs
// zero heap allocations at steady state, asserted two independent ways:
// by replacing global operator new with a counting shim in this binary,
// and by the alloc.* counters (slab refills flat while spawns grow).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <new>
#include <thread>
#include <vector>

#include "hw/topology.hpp"
#include "runtime/frame_pool.hpp"
#include "runtime/runtime.hpp"
#include "runtime/task_body.hpp"

namespace {

using namespace cab;
using runtime::FramePool;
using runtime::Options;
using runtime::Runtime;
using runtime::SchedulerKind;
using runtime::TaskBody;
using runtime::TaskFrame;
using runtime::WorkerStats;

// ---------------------------------------------------------------------------
// Counting global operator new/delete: every heap allocation made by any
// thread of this test binary ticks g_news. The steady-state tests measure
// deltas around rt.run() only — gtest machinery stays outside the window.
// ---------------------------------------------------------------------------

std::atomic<std::uint64_t> g_news{0};
std::atomic<std::uint64_t> g_deletes{0};

}  // namespace

void* operator new(std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t n, std::align_val_t al) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(al),
                                   (n + static_cast<std::size_t>(al) - 1) &
                                       ~(static_cast<std::size_t>(al) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}

// Every overload counts and frees directly (no forwarding), and is kept
// out of line: when GCC inlines a shim into a call site it pairs the
// visible std::free with the replaced ::operator new and raises
// -Wmismatched-new-delete, even though that operator new is malloc-based
// — the new/delete pairing it can't see through is the correct one.
__attribute__((noinline)) void operator delete(void* p) noexcept {
  if (p != nullptr) g_deletes.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

__attribute__((noinline)) void operator delete(void* p, std::size_t) noexcept {
  if (p != nullptr) g_deletes.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

__attribute__((noinline)) void operator delete(void* p, std::align_val_t) noexcept {
  if (p != nullptr) g_deletes.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

__attribute__((noinline)) void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  if (p != nullptr) g_deletes.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

namespace {

std::uint64_t news_now() { return g_news.load(std::memory_order_relaxed); }

// ---------------------------------------------------------------------------
// TaskBody
// ---------------------------------------------------------------------------

/// Capture with instance accounting, sized to order.
template <std::size_t Pad>
struct Probe {
  static std::atomic<int> live;
  std::atomic<int>* fired;
  unsigned char pad[Pad];

  explicit Probe(std::atomic<int>* f) : fired(f) { ++live; }
  Probe(const Probe& o) : fired(o.fired) { ++live; }
  Probe(Probe&& o) noexcept : fired(o.fired) { ++live; }
  ~Probe() { --live; }
  void operator()() const { fired->fetch_add(1, std::memory_order_relaxed); }
};
template <std::size_t Pad>
std::atomic<int> Probe<Pad>::live{0};

using SmallProbe = Probe<8>;    // well under kInlineSize
using LargeProbe = Probe<256>;  // forces the boxed fallback

TEST(TaskBody, InlineEmplaceAllocatesNothing) {
  static_assert(TaskBody::stores_inline<SmallProbe>());
  std::atomic<int> fired{0};
  TaskBody body;
  const std::uint64_t n0 = news_now();
  body.emplace(SmallProbe{&fired});
  const std::uint64_t n1 = news_now();
  EXPECT_EQ(n1 - n0, 0u) << "inline capture must not touch the heap";
  ASSERT_TRUE(static_cast<bool>(body));
  body();
  EXPECT_EQ(fired.load(), 1);
  body.reset();
  EXPECT_FALSE(static_cast<bool>(body));
  EXPECT_EQ(SmallProbe::live.load(), 0);
}

TEST(TaskBody, OversizedCaptureFallsBackToOneBox) {
  static_assert(!TaskBody::stores_inline<LargeProbe>());
  std::atomic<int> fired{0};
  {
    TaskBody body;
    body.emplace(LargeProbe{&fired});
    EXPECT_GE(LargeProbe::live.load(), 1);
    body();
    EXPECT_EQ(fired.load(), 1);
  }  // ~TaskBody must destroy + free the box
  EXPECT_EQ(LargeProbe::live.load(), 0);
}

TEST(TaskBody, MoveOnlyCapture) {
  TaskBody body;
  int out = 0;
  auto p = std::make_unique<int>(41);
  body.emplace([q = std::move(p), &out] { out = *q + 1; });
  body();
  EXPECT_EQ(out, 42);
  body.reset();  // unique_ptr destroyed exactly once
  body.reset();  // idempotent on empty
}

TEST(TaskBody, ResetDestroysWithoutInvoking) {
  std::atomic<int> fired{0};
  {
    TaskBody inline_body;
    inline_body.emplace(SmallProbe{&fired});
    TaskBody boxed_body;
    boxed_body.emplace(LargeProbe{&fired});
    inline_body.reset();
    boxed_body.reset();
    EXPECT_EQ(SmallProbe::live.load(), 0);
    EXPECT_EQ(LargeProbe::live.load(), 0);
  }
  EXPECT_EQ(fired.load(), 0);
}

TEST(TaskBody, StdFunctionFitsInline) {
  // run() relays the user's root through a std::function; it must not be
  // the one capture that silently re-introduces a per-epoch box.
  static_assert(TaskBody::stores_inline<std::function<void()>>());
}

// ---------------------------------------------------------------------------
// TaskBody::relocate_from — the promotion copy-out (DESIGN.md §5h): a
// thief moves a stolen lazy frame's capture into a pooled frame.
// ---------------------------------------------------------------------------

TEST(TaskBody, RelocateTrivialInlineIsByteCopy) {
  int out = 0;
  int* dst_out = &out;
  TaskBody src;
  src.emplace([dst_out] { *dst_out = 17; });  // trivially copyable capture
  TaskBody dst;
  const std::uint64_t n0 = news_now();
  dst.relocate_from(src);
  EXPECT_EQ(news_now() - n0, 0u) << "relocation must not allocate";
  EXPECT_FALSE(static_cast<bool>(src)) << "source must be left empty";
  ASSERT_TRUE(static_cast<bool>(dst));
  dst();
  EXPECT_EQ(out, 17);
  dst.reset();
  src.reset();  // idempotent on the vacated source
}

TEST(TaskBody, RelocateMoveOnlyInlineDestroysSourceOnce) {
  std::atomic<int> fired{0};
  TaskBody src;
  src.emplace(SmallProbe{&fired});  // not trivially copyable: move path
  const int live0 = SmallProbe::live.load();
  TaskBody dst;
  dst.relocate_from(src);
  EXPECT_EQ(SmallProbe::live.load(), live0)
      << "relocation must move + destroy the source, net zero instances";
  EXPECT_FALSE(static_cast<bool>(src));
  dst();
  EXPECT_EQ(fired.load(), 1);
  dst.reset();
  EXPECT_EQ(SmallProbe::live.load(), 0);
}

TEST(TaskBody, RelocateBoxedMovesTheBox) {
  std::atomic<int> fired{0};
  TaskBody src;
  src.emplace(LargeProbe{&fired});
  const int live0 = LargeProbe::live.load();
  TaskBody dst;
  const std::uint64_t n0 = news_now();
  dst.relocate_from(src);  // the box pointer moves; no new box
  EXPECT_EQ(news_now() - n0, 0u) << "boxed relocation must not allocate";
  EXPECT_EQ(LargeProbe::live.load(), live0);
  EXPECT_FALSE(static_cast<bool>(src));
  dst();
  EXPECT_EQ(fired.load(), 1);
  dst.reset();
  EXPECT_EQ(LargeProbe::live.load(), 0) << "boxed capture leaked";
}

// ---------------------------------------------------------------------------
// FramePool
// ---------------------------------------------------------------------------

TEST(FramePool, CounterConservationAndReuse) {
  FramePool pool;
  WorkerStats stats;
  std::vector<TaskFrame*> held;
  const std::size_t kFrames = FramePool::kFramesPerSlab + 3;  // 2 slabs
  for (std::size_t i = 0; i < kFrames; ++i) held.push_back(pool.acquire(stats));
  EXPECT_EQ(pool.slab_count(), 2u);
  EXPECT_EQ(stats.alloc_slab_refills, 2u);
  // Exactly one counter ticks per acquire: hits + drains + refills == acquires.
  EXPECT_EQ(stats.alloc_freelist_hits + stats.alloc_remote_drains +
                stats.alloc_slab_refills,
            kFrames);
  for (TaskFrame* f : held) {
    EXPECT_EQ(f->home, &pool);
    pool.release_local(f);
  }
  // Recycled frames are reused, not re-carved.
  TaskFrame* again = pool.acquire(stats);
  EXPECT_EQ(again->home, &pool);
  EXPECT_EQ(pool.slab_count(), 2u);
  EXPECT_GE(stats.alloc_freelist_hits, 1u);
  pool.release_local(again);
}

TEST(FramePool, RemoteChannelDrainsOnAcquire) {
  FramePool pool;
  WorkerStats stats;
  // Hold every frame of the first slab so the freelist is empty.
  std::vector<TaskFrame*> held;
  for (std::size_t i = 0; i < FramePool::kFramesPerSlab; ++i) {
    held.push_back(pool.acquire(stats));
  }
  EXPECT_EQ(pool.slab_count(), 1u);
  TaskFrame* a = held.back();
  held.pop_back();
  TaskFrame* b = held.back();
  held.pop_back();
  // Remote-free two frames from another thread, as a thief would.
  std::thread thief([&] {
    pool.push_remote(a);
    pool.push_remote(b);
  });
  thief.join();
  EXPECT_FALSE(pool.remote_empty());
  // Freelist empty + remote pending: this acquire must drain, not carve.
  const std::uint64_t drains0 = stats.alloc_remote_drains;
  TaskFrame* c = pool.acquire(stats);
  EXPECT_EQ(stats.alloc_remote_drains, drains0 + 1);
  EXPECT_EQ(pool.slab_count(), 1u);
  EXPECT_TRUE(c == a || c == b);
  // The second drained frame is now a freelist hit.
  const std::uint64_t hits0 = stats.alloc_freelist_hits;
  TaskFrame* d = pool.acquire(stats);
  EXPECT_EQ(stats.alloc_freelist_hits, hits0 + 1);
  EXPECT_TRUE((d == a || d == b) && d != c);
  pool.release_local(c);
  pool.release_local(d);
  for (TaskFrame* f : held) pool.release_local(f);
}

TEST(FramePool, ShutdownWithRemoteFramesPending) {
  // Frames still parked in the remote channel at destruction are slab
  // memory — the pool must tear down cleanly without touching them
  // individually (ASan builds verify no leak).
  WorkerStats stats;
  auto pool = std::make_unique<FramePool>();
  TaskFrame* a = pool->acquire(stats);
  TaskFrame* b = pool->acquire(stats);
  std::thread remote_freer([&] {
    pool->push_remote(a);
    pool->push_remote(b);
  });
  remote_freer.join();
  pool.reset();  // destruction with a non-empty remote stack
}

// ---------------------------------------------------------------------------
// Runtime integration
// ---------------------------------------------------------------------------

Options quiet_options(int sockets, int cores, int bl) {
  Options o;
  o.topo = hw::Topology::synthetic(sockets, cores, 1ull << 20);
  o.kind = SchedulerKind::kCab;
  o.boundary_level = bl;
  o.seed = 7;
  return o;
}

TEST(FramePoolRuntime, MoveOnlySpawnCapture) {
  Runtime rt(quiet_options(1, 2, 0));
  std::atomic<int> out{0};
  rt.run([&] {
    auto p = std::make_unique<int>(99);
    Runtime::spawn([q = std::move(p), &out] {
      out.store(*q, std::memory_order_relaxed);
    });
    Runtime::sync();
  });
  EXPECT_EQ(out.load(), 99);
}

TEST(FramePoolRuntime, OversizedSpawnCaptureExecutes) {
  Runtime rt(quiet_options(1, 2, 0));
  std::atomic<int> fired{0};
  rt.run([&] {
    Runtime::spawn(LargeProbe{&fired});
    Runtime::sync();
  });
  EXPECT_EQ(fired.load(), 1);
  EXPECT_EQ(LargeProbe::live.load(), 0) << "boxed capture leaked";
}

TEST(FramePoolRuntime, CaptureDestructorsRunExactlyOnce) {
  std::atomic<int> fired{0};
  {
    Runtime rt(quiet_options(2, 2, 2));
    rt.run([&] {
      for (int i = 0; i < 64; ++i) Runtime::spawn(SmallProbe{&fired});
      Runtime::sync();
    });
    EXPECT_EQ(fired.load(), 64);
  }
  EXPECT_EQ(SmallProbe::live.load(), 0)
      << "a recycled frame kept (or double-destroyed) a capture";
}

TEST(FramePoolRuntime, FramePoolOffAblationStillCorrect) {
  Options o = quiet_options(2, 2, 2);
  o.frame_pool = false;
  Runtime rt(o);
  std::atomic<int> count{0};
  for (int e = 0; e < 3; ++e) {
    rt.run([&] {
      for (int i = 0; i < 128; ++i) {
        Runtime::spawn([&] { count.fetch_add(1, std::memory_order_relaxed); });
      }
      Runtime::sync();
    });
  }
  EXPECT_EQ(count.load(), 3 * 128);
  const runtime::SchedulerStats s = rt.stats();
  EXPECT_EQ(s.total.alloc_freelist_hits, 0u);
  EXPECT_EQ(s.total.alloc_slab_refills, 0u);
  EXPECT_EQ(s.total.alloc_remote_frees, 0u);
}

/// Root body for the steady-state tests: one flat fan-out, all frames
/// from one worker's pool, fully deterministic slab demand.
void flat_fanout(std::atomic<int>* leaves, int width) {
  for (int i = 0; i < width; ++i) {
    Runtime::spawn([leaves] { leaves->fetch_add(1, std::memory_order_relaxed); });
  }
  Runtime::sync();
}

TEST(FramePoolRuntime, SteadyStateSpawnPathAllocatesNothing) {
  // Single worker => fully deterministic: after the warm-up epoch the
  // deque ring has grown to fit the fan-out, the pool holds every frame,
  // and further epochs must perform literally zero heap allocations
  // anywhere in the process while run() executes.
  constexpr int kWidth = 2048;
  Options o = quiet_options(1, 1, 0);
  o.metrics = false;  // nothing registered, nothing flushed
  Runtime rt(o);
  std::atomic<int> leaves{0};
  for (int warm = 0; warm < 2; ++warm) {
    rt.run([&] { flat_fanout(&leaves, kWidth); });
  }
  leaves.store(0);
  const std::uint64_t n0 = news_now();
  for (int e = 0; e < 5; ++e) {
    rt.run([&] { flat_fanout(&leaves, kWidth); });
  }
  const std::uint64_t n1 = news_now();
  EXPECT_EQ(leaves.load(), 5 * kWidth);
  EXPECT_EQ(n1 - n0, 0u)
      << "steady-state spawn path performed heap allocations";
}

TEST(FramePoolRuntime, SlabRefillsFlatWhileSpawnsGrow) {
  // Multi-socket flavour of the acceptance property, asserted via the
  // alloc.* counters: a depth-10 spawn tree keeps < kFramesPerSlab frames
  // live per pool, so after warm-up every pool serves from its freelist /
  // remote channel and alloc.slab_refills stays flat while alloc spawns
  // keep growing.
  Runtime rt(quiet_options(2, 2, 2));
  std::atomic<int> leaves{0};
  auto tree = [&](int depth) {
    rt.run([&leaves, depth] {
      std::function<void(int)> rec = [&rec, &leaves](int d) {
        if (d == 0) {
          leaves.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        Runtime::spawn([&rec, d] { rec(d - 1); });
        Runtime::spawn([&rec, d] { rec(d - 1); });
        Runtime::sync();
      };
      rec(depth);
    });
  };
  for (int warm = 0; warm < 4; ++warm) tree(10);
  const auto warm_snap = rt.metrics_snapshot();
  const auto* refills0 = warm_snap.find("alloc.slab_refills");
  const auto* spawns0 = warm_snap.find("scheduler.spawns_intra");
  ASSERT_NE(refills0, nullptr);
  ASSERT_NE(spawns0, nullptr);
  const std::int64_t refills_before = refills0->total;
  const std::int64_t spawns_before = spawns0->total;
  EXPECT_GT(refills_before, 0) << "warm-up never carved a slab?";

  for (int e = 0; e < 6; ++e) tree(10);
  const auto snap = rt.metrics_snapshot();
  EXPECT_EQ(snap.find("alloc.slab_refills")->total, refills_before)
      << "slab refills moved after warm-up: the spawn path still allocates";
  EXPECT_GT(snap.find("scheduler.spawns_intra")->total, spawns_before);
  EXPECT_GT(snap.find("alloc.freelist_hits")->total, 0);
  EXPECT_GT(snap.find("alloc.peak_live_frames")->total, 0);
}

// ---------------------------------------------------------------------------
// Lazy spawning (DESIGN.md §5h): stack-slot frames on the fast path,
// steal-time promotion into the thief's pool.
// ---------------------------------------------------------------------------

TEST(FramePoolRuntime, LazySpawnSteadyStateAllocatesNothing) {
  // The lazy path's acceptance property: with lazy spawning explicitly on
  // (the default), a single-worker spawn tree runs entirely on LazyStack
  // slots — after one warm-up epoch (deque ring + slot slab carved) the
  // process performs zero heap allocations during run(), and the
  // alloc.lazy_spawns counter proves the lazy path (not the eager pooled
  // one) is what ran.
  Options o = quiet_options(1, 1, 0);
  o.lazy_spawn = true;
  o.metrics = false;
  Runtime rt(o);
  std::atomic<int> leaves{0};
  auto tree = [&] {
    rt.run([&leaves] {
      std::function<void(int)> rec = [&rec, &leaves](int d) {
        if (d == 0) {
          leaves.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        Runtime::spawn([&rec, d] { rec(d - 1); });
        Runtime::spawn([&rec, d] { rec(d - 1); });
        Runtime::sync();
      };
      rec(9);
    });
  };
  for (int warm = 0; warm < 2; ++warm) tree();
  leaves.store(0);
  const std::uint64_t n0 = news_now();
  for (int e = 0; e < 4; ++e) tree();
  EXPECT_EQ(news_now() - n0, 0u)
      << "lazy steady-state spawn path performed heap allocations";
  EXPECT_EQ(leaves.load(), 4 * 512);
  const runtime::SchedulerStats s = rt.stats();
  EXPECT_GT(s.total.alloc_lazy_spawns, 0u)
      << "no spawn ever took the lazy fast path";
  EXPECT_EQ(s.total.alloc_promotions, 0u)
      << "a single-worker run has no thieves to promote";
}

TEST(FramePoolRuntime, LazySpawnOffAblationStillCorrect) {
  // --lazy-spawn=off: every spawn takes the eager pooled path (the PR 5
  // shape). Same DAG, same results, and the lazy counters stay silent.
  Options o = quiet_options(2, 2, 2);
  o.lazy_spawn = false;
  Runtime rt(o);
  std::atomic<int> fired{0};
  for (int e = 0; e < 3; ++e) {
    rt.run([&] {
      std::function<void(int)> rec = [&rec, &fired](int d) {
        if (d == 0) {
          fired.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        Runtime::spawn([&rec, d] { rec(d - 1); });
        Runtime::spawn([&rec, d] { rec(d - 1); });
        Runtime::sync();
      };
      rec(8);
    });
  }
  EXPECT_EQ(fired.load(), 3 * 256);
  const runtime::SchedulerStats s = rt.stats();
  EXPECT_EQ(s.total.alloc_lazy_spawns, 0u);
  EXPECT_EQ(s.total.alloc_promotions, 0u);
  EXPECT_GT(s.total.alloc_freelist_hits + s.total.alloc_slab_refills, 0u)
      << "eager spawns must go through the pools";
}

TEST(FramePoolRuntime, LazyCaptureDestructorsRunExactlyOnce) {
  // Multi-worker lazy run: captures are destroyed exactly once whether
  // the frame ran in place on its slot (owner pop) or was relocated into
  // a thief's pooled frame (promotion). Probe instance accounting catches
  // both a leak and a double destroy.
  std::atomic<int> fired{0};
  {
    Options o = quiet_options(1, 4, 0);
    o.lazy_spawn = true;
    Runtime rt(o);
    for (int e = 0; e < 8; ++e) {
      rt.run([&] {
        for (int i = 0; i < 256; ++i) Runtime::spawn(SmallProbe{&fired});
        Runtime::sync();
      });
    }
    EXPECT_EQ(fired.load(), 8 * 256);
    const runtime::SchedulerStats s = rt.stats();
    EXPECT_GT(s.total.alloc_lazy_spawns, 0u);
  }
  EXPECT_EQ(SmallProbe::live.load(), 0)
      << "a lazy slot or promoted frame kept (or double-destroyed) a capture";
}

TEST(FramePoolRuntime, PromotionsOccurUnderMultiWorkerFanout) {
  // A 256-wide fan-out (< the 512 LazyStack slots, so every child is
  // lazy) from one worker with seven idle siblings: thieves must steal,
  // and every steal of a lazy frame is a promotion. Leaves spin long
  // enough that the fan-out is still in the victim's deque when thieves
  // arrive; a handful of epochs makes the expectation robust to
  // scheduling noise.
  Options o = quiet_options(1, 8, 0);
  o.lazy_spawn = true;
  Runtime rt(o);
  std::atomic<int> fired{0};
  int epochs_run = 0;
  while (epochs_run < 20) {
    rt.run([&] {
      for (int i = 0; i < 256; ++i) {
        Runtime::spawn([&fired] {
          volatile int spin = 0;
          while (spin < 50000) spin = spin + 1;
          fired.fetch_add(1, std::memory_order_relaxed);
        });
      }
      Runtime::sync();
    });
    ++epochs_run;
    if (rt.stats().total.alloc_promotions > 0) break;
  }
  EXPECT_EQ(fired.load(), epochs_run * 256);
  const runtime::SchedulerStats s = rt.stats();
  EXPECT_GT(s.total.alloc_lazy_spawns, 0u);
  EXPECT_GT(s.total.alloc_promotions, 0u)
      << "no thief ever promoted a lazy frame in " << epochs_run
      << " contended epochs";
  EXPECT_LE(s.total.alloc_promotions, s.total.alloc_lazy_spawns)
      << "more promotions than lazy spawns";
}

TEST(FramePoolRuntime, RemoteFreesFlowBackAcrossSockets) {
  // A 4-squad run with an inter tier forces cross-worker completions;
  // the remote-free counters must see traffic and every capture must
  // still be destroyed exactly once.
  Options o = quiet_options(4, 2, 2);
  Runtime rt(o);
  std::atomic<int> fired{0};
  for (int e = 0; e < 4; ++e) {
    rt.run([&] {
      std::function<void(int)> rec = [&rec, &fired](int d) {
        if (d == 0) {
          fired.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        Runtime::spawn([&rec, d] { rec(d - 1); });
        Runtime::spawn([&rec, d] { rec(d - 1); });
        Runtime::sync();
      };
      rec(8);
    });
  }
  EXPECT_EQ(fired.load(), 4 * 256);
  const runtime::SchedulerStats s = rt.stats();
  EXPECT_GT(s.total.alloc_remote_frees, 0u)
      << "no frame ever completed away from its home pool in a 4-squad "
         "inter-tier run";
}

}  // namespace
