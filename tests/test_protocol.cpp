// Protocol-invariant audits of the *threaded* runtime via the execution
// log: the real-thread counterparts of the simulator's placement tests.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <set>

#include "dag/bounds.hpp"
#include "dag/generators.hpp"
#include "runtime/graph_runner.hpp"
#include "runtime/runtime.hpp"

namespace cab::runtime {
namespace {

Options cab_options(int sockets, int cores, int bl) {
  Options o;
  o.topo = hw::Topology::synthetic(sockets, cores, 1ull << 20);
  o.kind = SchedulerKind::kCab;
  o.boundary_level = bl;
  o.record_events = true;
  o.seed = 3;
  return o;
}

/// Spawns a uniform B=2 tree of the given depth with a little leaf work.
void spawn_tree(int depth, std::atomic<int>* leaves) {
  if (depth == 0) {
    volatile double x = 1.0;
    for (int i = 0; i < 20000; ++i) x = x * 1.0000001;
    leaves->fetch_add(1);
    return;
  }
  Runtime::spawn([depth, leaves] { spawn_tree(depth - 1, leaves); });
  Runtime::spawn([depth, leaves] { spawn_tree(depth - 1, leaves); });
  Runtime::sync();
}

TEST(Protocol, InterTasksExecuteOnHeadWorkersOnly) {
  Runtime rt(cab_options(2, 2, 3));
  std::atomic<int> leaves{0};
  rt.run([&] { spawn_tree(6, &leaves); });
  EXPECT_EQ(leaves.load(), 64);

  auto log = rt.execution_log();
  ASSERT_FALSE(log.empty());
  int inter_seen = 0;
  for (const ExecRecord& r : log) {
    if (r.inter) {
      ++inter_seen;
      EXPECT_TRUE(r.on_head)
          << "inter-socket task (level " << r.level
          << ") executed on non-head worker " << r.worker;
    }
  }
  EXPECT_GT(inter_seen, 0);
}

TEST(Protocol, TierClassificationMatchesLevels) {
  const int bl = 2;
  Runtime rt(cab_options(2, 2, bl));
  std::atomic<int> leaves{0};
  rt.run([&] { spawn_tree(5, &leaves); });
  for (const ExecRecord& r : rt.execution_log()) {
    EXPECT_EQ(r.inter, r.level <= bl && r.level >= 0)
        << "level " << r.level;
  }
}

TEST(Protocol, DegenerateBlZeroHasNoInterTasks) {
  Runtime rt(cab_options(2, 2, 0));
  std::atomic<int> leaves{0};
  rt.run([&] { spawn_tree(5, &leaves); });
  for (const ExecRecord& r : rt.execution_log()) EXPECT_FALSE(r.inter);
}

TEST(Protocol, ExecutionLogCoversEveryTask) {
  Runtime rt(cab_options(2, 2, 2));
  std::atomic<int> leaves{0};
  rt.run([&] { spawn_tree(4, &leaves); });
  // 1 root + 2+4+8+16 spawned = 31 tasks.
  EXPECT_EQ(rt.execution_log().size(), 31u);
  rt.reset_stats();
  EXPECT_TRUE(rt.execution_log().empty());
}

TEST(Protocol, SpawnInterForcesInterTier) {
  Runtime rt(cab_options(2, 2, 1));
  std::atomic<int> ran{0};
  rt.run([&] {
    // Deep level (root's child at level 1 == BL; grandchildren at level 2
    // would be intra) — force them inter with spawn_inter.
    Runtime::spawn([&] {
      for (int i = 0; i < 4; ++i) {
        Runtime::spawn_inter([&] { ran.fetch_add(1); });
      }
      Runtime::sync();
    });
    Runtime::sync();
  });
  EXPECT_EQ(ran.load(), 4);
  int forced_inter = 0;
  for (const ExecRecord& r : rt.execution_log()) {
    if (r.level == 2 && r.inter) ++forced_inter;
  }
  EXPECT_EQ(forced_inter, 4);
}

TEST(Protocol, SpawnInterUnderBaselineIsPlainSpawn) {
  Options o = cab_options(2, 2, 0);
  o.kind = SchedulerKind::kRandomStealing;
  Runtime rt(o);
  std::atomic<int> ran{0};
  rt.run([&] {
    for (int i = 0; i < 8; ++i) Runtime::spawn_inter([&] { ran.fetch_add(1); });
    Runtime::sync();
  });
  EXPECT_EQ(ran.load(), 8);
  for (const ExecRecord& r : rt.execution_log()) EXPECT_FALSE(r.inter);
}

TEST(Protocol, IntraTasksOfOneSubtreeStayInOneSquadWhenUnstolen) {
  // With BL = 1 on a 2x2 machine, the root's children (level 1) are the
  // leaf inter-socket tasks; everything below each must stay inside one
  // squad. Build two heavy level-1 subtrees and audit squad confinement
  // of levels >= 2 per subtree via thread-local squad observation.
  Options o = cab_options(2, 2, 1);
  Runtime rt(o);
  std::array<std::set<int>, 2> squads_used;
  std::array<std::mutex, 2> mu;
  std::function<void(int, int)> tree = [&](int subtree, int depth) {
    {
      std::lock_guard<std::mutex> g(mu[static_cast<std::size_t>(subtree)]);
      squads_used[static_cast<std::size_t>(subtree)].insert(
          Runtime::current_squad());
    }
    if (depth == 0) {
      volatile double x = 1.0;
      for (int i = 0; i < 30000; ++i) x = x * 1.0000001;
      return;
    }
    Runtime::spawn([&tree, subtree, depth] { tree(subtree, depth - 1); });
    Runtime::spawn([&tree, subtree, depth] { tree(subtree, depth - 1); });
    Runtime::sync();
  };
  rt.run([&] {
    Runtime::spawn([&] { tree(0, 5); });
    Runtime::spawn([&] { tree(1, 5); });
    Runtime::sync();
  });
  // Each subtree's intra tasks ran in exactly one squad (the subtree root
  // itself is recorded too, in the same squad by construction).
  EXPECT_EQ(squads_used[0].size(), 1u);
  EXPECT_EQ(squads_used[1].size(), 1u);
}

TEST(GraphRunner, ExecutesEveryNodeOnce) {
  dag::TaskGraph g = dag::make_recursive_dnc(2, 5, 2000, 10);
  Runtime rt(cab_options(2, 2, 2));
  EXPECT_EQ(run_graph(rt, g), g.size());
  // Exec log: root closure + every non-root graph node as a spawned task.
  EXPECT_EQ(rt.execution_log().size(), g.size());
}

TEST(GraphRunner, SequentialPhasesRespected) {
  // Root with 3 sequential phases of parallel children: total node count
  // must still match (ordering is enforced by spawn+sync per phase).
  dag::TaskGraph g;
  dag::NodeId root = g.add_root(1);
  g.set_sequential(root, true);
  for (int p = 0; p < 3; ++p) {
    dag::NodeId ph = g.add_child(root, 10);
    for (int i = 0; i < 4; ++i) g.add_child(ph, 500);
  }
  Runtime rt(cab_options(2, 2, 1));
  EXPECT_EQ(run_graph(rt, g), g.size());
}

TEST(GraphRunner, IrregularGraphsAcrossSchedulers) {
  dag::TaskGraph g = dag::make_irregular(17, 4, 6, 200, 400);
  for (auto kind : {SchedulerKind::kCab, SchedulerKind::kRandomStealing,
                    SchedulerKind::kTaskSharing}) {
    Options o = cab_options(2, 2, kind == SchedulerKind::kCab ? 2 : 0);
    o.kind = kind;
    Runtime rt(o);
    EXPECT_EQ(run_graph(rt, g), g.size()) << to_string(kind);
  }
}

TEST(GraphRunner, CrossEngineProtocolInvariantsAgree) {
  // The same DAG, run on both engines: the head-worker invariant for
  // inter-socket tasks must hold on real threads exactly as in the
  // simulator's placement tests.
  dag::TaskGraph g = dag::make_recursive_dnc(2, 6, 3000, 10);
  const int bl = 3;
  Runtime rt(cab_options(2, 2, bl));
  run_graph(rt, g);
  int inter_count = 0;
  for (const ExecRecord& r : rt.execution_log()) {
    if (r.inter) {
      ++inter_count;
      EXPECT_TRUE(r.on_head);
      EXPECT_LE(r.level, bl);
    }
  }
  EXPECT_GT(inter_count, 0);
}

TEST(SpaceBound, PeakLiveFramesWithinEq15) {
  // Eq. 15: S_MN <= max(K, M*N) * S1, with S1 measured in frames. Run a
  // uniform tree on the real runtime and compare the measured high-water
  // mark against the bound from dag::analyze_tiers.
  const int bl = 2;
  dag::TaskGraph g = dag::make_recursive_dnc(2, 7, 300, 5);
  Options o = cab_options(2, 2, bl);
  Runtime rt(o);
  run_graph(rt, g);

  dag::TierAnalysis a = dag::analyze_tiers(g, dag::TierAssignment{bl});
  // The runtime wraps the graph root in one extra frame (the run()
  // closure): S1 is one deeper than the graph's own depth.
  dag::TierAnalysis adj = a;
  adj.serial_live_frames += 1;
  const std::uint64_t bound = dag::space_bound_eq15(adj, 2, 2);
  EXPECT_GT(rt.peak_live_frames(), 0);
  // The paper's bound covers child-first execution; our help-first sync
  // lets a worker nest foreign subtrees on its stack, inflating the
  // constant but not the asymptotics. A 4x envelope holds comfortably in
  // practice and fails loudly if frame accounting ever leaks.
  EXPECT_LE(static_cast<std::uint64_t>(rt.peak_live_frames()), 4 * bound);
}

TEST(SpaceBound, FramesReturnToZeroAfterRuns) {
  Runtime rt(cab_options(2, 2, 2));
  std::atomic<int> leaves{0};
  rt.run([&] { spawn_tree(5, &leaves); });
  rt.run([&] { spawn_tree(4, &leaves); });
  EXPECT_GT(rt.peak_live_frames(), 0);
  rt.reset_stats();
  EXPECT_EQ(rt.peak_live_frames(), 0);
}

TEST(Protocol, StatsConsistentWithLog) {
  Runtime rt(cab_options(2, 2, 2));
  std::atomic<int> leaves{0};
  rt.run([&] { spawn_tree(5, &leaves); });
  SchedulerStats s = rt.stats();
  EXPECT_EQ(s.total.tasks_executed, rt.execution_log().size());
  EXPECT_EQ(s.total.spawns_inter + s.total.spawns_intra,
            s.total.tasks_executed - 1);  // all but the root were spawned
}

}  // namespace
}  // namespace cab::runtime
