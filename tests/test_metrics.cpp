// Tests for the metrics registry (src/obs/metrics/): single-writer
// slot discipline under concurrency, histogram bucket boundaries, the
// JSON snapshot round trip, the runtime integration (scheduler counters
// mirror SchedulerStats), the forced-unavailable perf path, and the
// chrome-trace metrics merge surviving a parse round trip.

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/chrome_trace.hpp"
#include "obs/metrics/perf_source.hpp"
#include "obs/metrics/registry.hpp"
#include "runtime/runtime.hpp"

namespace cab::obs::metrics {
namespace {

TEST(Counter, ConcurrentPerWriterIncrementsSumExactly) {
  constexpr int kWriters = 8;
  constexpr std::int64_t kPerWriter = 200000;
  Registry reg(kWriters);
  Counter& c = reg.counter("test.ops", {{"tier", "intra"}});

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&c, w] {
      for (std::int64_t i = 0; i < kPerWriter; ++i) c.add(w);
    });
  }
  for (auto& t : threads) t.join();

  // Each writer owns its slot, so despite the relaxed non-RMW updates
  // the per-writer values — and hence the total — are exact.
  for (int w = 0; w < kWriters; ++w) EXPECT_EQ(c.value(w), kPerWriter);
  EXPECT_EQ(c.total(), kWriters * kPerWriter);
}

TEST(Registry, RegistrationIsIdempotentAndLabelsDisambiguate) {
  Registry reg(2);
  Counter& a = reg.counter("x", {{"tier", "inter"}});
  Counter& b = reg.counter("x", {{"tier", "inter"}});
  Counter& c = reg.counter("x", {{"tier", "intra"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
  a.add(0, 5);
  EXPECT_EQ(b.total(), 5);
  EXPECT_EQ(c.total(), 0);
}

TEST(Gauge, SetOverwritesAndTotalSums) {
  Registry reg(3);
  Gauge& g = reg.gauge("depth");
  g.set(0, 7);
  g.set(0, 3);
  g.set(2, 10);
  EXPECT_EQ(g.value(0), 3);
  EXPECT_EQ(g.value(1), 0);
  EXPECT_EQ(g.total(), 13);
}

TEST(Histogram, BucketBoundariesAreLeftOpenRightClosed) {
  Registry reg(1);
  Histogram& h = reg.histogram("lat", {10, 100, 1000});

  // bucket 0: v <= 10; bucket 1: 10 < v <= 100; ...; bucket 3: v > 1000.
  EXPECT_EQ(h.bucket_index(-5), 0u);
  EXPECT_EQ(h.bucket_index(10), 0u);
  EXPECT_EQ(h.bucket_index(11), 1u);
  EXPECT_EQ(h.bucket_index(100), 1u);
  EXPECT_EQ(h.bucket_index(101), 2u);
  EXPECT_EQ(h.bucket_index(1000), 2u);
  EXPECT_EQ(h.bucket_index(1001), 3u);

  h.observe(0, 10);
  h.observe(0, 11);
  h.observe(0, 5000);
  EXPECT_EQ(h.bucket_total(0), 1);
  EXPECT_EQ(h.bucket_total(1), 1);
  EXPECT_EQ(h.bucket_total(2), 0);
  EXPECT_EQ(h.bucket_total(3), 1);
  EXPECT_EQ(h.count(), 3);
  EXPECT_EQ(h.sum(), 10 + 11 + 5000);
}

TEST(Histogram, WritersDoNotShareRows) {
  constexpr int kWriters = 4;
  constexpr int kObs = 50000;
  Registry reg(kWriters);
  Histogram& h = reg.histogram("lat", {1, 2, 4, 8});
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&h, w] {
      for (int i = 0; i < kObs; ++i) h.observe(w, i % 10);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), kWriters * kObs);
}

TEST(Snapshot, JsonRoundTripsExactly) {
  Registry reg(2);
  reg.set_writer_squads({0, 1});
  reg.set_hw_status(false, "perf not permitted");
  reg.counter("ops", {{"tier", "total"}}).add(0, 41);
  reg.counter("ops", {{"tier", "total"}}).add(1, 1);
  reg.gauge("depth").set(1, -3);
  Histogram& h = reg.histogram("lat", {10, 100});
  h.observe(0, 7);
  h.observe(1, 70);
  h.observe(1, 700);

  const Snapshot a = reg.snapshot();
  const Snapshot b = Snapshot::from_json(a.to_json());

  EXPECT_EQ(b.writers, a.writers);
  EXPECT_EQ(b.writer_squad, a.writer_squad);
  EXPECT_EQ(b.hw_available, a.hw_available);
  EXPECT_EQ(b.hw_reason, a.hw_reason);
  ASSERT_EQ(b.metrics.size(), a.metrics.size());
  for (std::size_t i = 0; i < a.metrics.size(); ++i) {
    const MetricSnapshot& ma = a.metrics[i];
    const MetricSnapshot& mb = b.metrics[i];
    EXPECT_EQ(mb.name, ma.name);
    EXPECT_EQ(mb.kind, ma.kind);
    EXPECT_EQ(mb.labels, ma.labels);
    EXPECT_EQ(mb.per_writer, ma.per_writer);
    EXPECT_EQ(mb.total, ma.total);
    EXPECT_EQ(mb.bounds, ma.bounds);
    EXPECT_EQ(mb.buckets, ma.buckets);
    EXPECT_EQ(mb.count, ma.count);
    EXPECT_EQ(mb.sum, ma.sum);
  }

  const MetricSnapshot* ops = b.find("ops", {{"tier", "total"}});
  ASSERT_NE(ops, nullptr);
  EXPECT_EQ(ops->total, 42);
  const std::vector<std::int64_t> squads = b.squad_totals(*ops);
  ASSERT_EQ(squads.size(), 2u);
  EXPECT_EQ(squads[0], 41);
  EXPECT_EQ(squads[1], 1);
}

TEST(Snapshot, RejectsWrongSchema) {
  EXPECT_THROW(Snapshot::from_json("{\"schema\":\"bogus\"}"),
               std::runtime_error);
}

runtime::Options small_options() {
  runtime::Options o;
  o.topo = hw::Topology::synthetic(2, 2, 1ull << 20);
  o.kind = runtime::SchedulerKind::kCab;
  o.boundary_level = 1;
  o.seed = 7;
  return o;
}

void spawn_tree(int depth) {
  if (depth == 0) return;
  runtime::Runtime::spawn([depth] { spawn_tree(depth - 1); });
  runtime::Runtime::spawn([depth] { spawn_tree(depth - 1); });
  runtime::Runtime::sync();
}

TEST(RuntimeMetrics, SchedulerCountersMirrorStats) {
  runtime::Runtime rt(small_options());
  rt.run([] { spawn_tree(8); });
  const runtime::SchedulerStats stats = rt.stats();
  const Snapshot snap = rt.metrics_snapshot();

  const MetricSnapshot* tasks = snap.find("scheduler.tasks_executed");
  ASSERT_NE(tasks, nullptr);
  EXPECT_EQ(tasks->total,
            static_cast<std::int64_t>(stats.total.tasks_executed));

  const MetricSnapshot* sleeps = snap.find("scheduler.idle_backoff_sleeps");
  ASSERT_NE(sleeps, nullptr);
  EXPECT_EQ(sleeps->total,
            static_cast<std::int64_t>(stats.total.idle_backoff_sleeps));

  // The derived parked-time counter is count x kIdleBackoffSleep.
  const MetricSnapshot* ns = snap.find("scheduler.idle_backoff_ns");
  ASSERT_NE(ns, nullptr);
  EXPECT_EQ(ns->total, sleeps->total * 50 * 1000);

  // Per-writer layout matches the topology.
  EXPECT_EQ(snap.writers, 4);
  EXPECT_EQ(snap.writer_squad,
            (std::vector<std::int32_t>{0, 0, 1, 1}));
}

TEST(RuntimeMetrics, MetricsOffYieldsEmptySnapshot) {
  runtime::Options o = small_options();
  o.metrics = false;
  runtime::Runtime rt(o);
  rt.run([] { spawn_tree(6); });
  const Snapshot snap = rt.metrics_snapshot();
  EXPECT_TRUE(snap.metrics.empty());
}

TEST(RuntimeMetrics, ForcedUnavailablePerfDegradesGracefully) {
  // CAB_PERF=off forces the perf source to report unavailable even where
  // perf_event_open would work — the acceptance path for CI containers.
  ::setenv("CAB_PERF", "off", 1);
  EXPECT_FALSE(perf_available());
  EXPECT_FALSE(perf_unavailable_reason().empty());

  runtime::Options o = small_options();
  o.hw_counters = true;
  runtime::Runtime rt(o);
  EXPECT_FALSE(rt.hw_counters_active());
  rt.run([] { spawn_tree(8); });
  const Snapshot snap = rt.metrics_snapshot();
  EXPECT_FALSE(snap.hw_available);
  EXPECT_FALSE(snap.hw_reason.empty());

  // The hw.* counters exist (pre-registered) but stay zero.
  const MetricSnapshot* cyc = snap.find("hw.cycles", {{"tier", "total"}});
  ASSERT_NE(cyc, nullptr);
  EXPECT_EQ(cyc->total, 0);
  ::unsetenv("CAB_PERF");
}

TEST(RuntimeMetrics, ResetStatsClearsRegistry) {
  runtime::Runtime rt(small_options());
  rt.run([] { spawn_tree(8); });
  ASSERT_GT(rt.metrics_snapshot().find("scheduler.tasks_executed")->total,
            0);
  rt.reset_stats();
  // Before any new work the flushed counters are zero again.
  rt.run([] {});
  const Snapshot snap = rt.metrics_snapshot();
  EXPECT_LT(snap.find("scheduler.tasks_executed")->total, 10);
}

TEST(ChromeTrace, MetricsMergeSurvivesParseRoundTrip) {
  runtime::Options o = small_options();
  o.trace = true;
  runtime::Runtime rt(o);
  rt.run([] { spawn_tree(8); });
  const Snapshot snap = rt.metrics_snapshot();
  const Trace trace = rt.trace();

  std::ostringstream out;
  write_chrome_trace(trace, out, &snap);
  const std::string text = out.str();

  // Metric counter tracks are present in the JSON...
  EXPECT_NE(text.find("metric:scheduler.tasks_executed"),
            std::string::npos);

  // ...and the parser skips them, recovering the original span events.
  const Trace back = parse_chrome_trace(text);
  EXPECT_EQ(back.event_count(), trace.event_count());
}

}  // namespace
}  // namespace cab::obs::metrics
