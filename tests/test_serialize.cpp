#include <gtest/gtest.h>

#include <sstream>

#include "apps/heat.hpp"
#include "apps/mergesort.hpp"
#include "apps/queens.hpp"
#include "apps/serialize.hpp"
#include "core/cab.hpp"

namespace cab::apps {
namespace {

void expect_bundles_equal(const DagBundle& a, const DagBundle& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.branching, b.branching);
  EXPECT_EQ(a.input_bytes, b.input_bytes);
  ASSERT_EQ(a.graph.size(), b.graph.size());
  for (std::size_t i = 0; i < a.graph.size(); ++i) {
    const auto& na = a.graph.node(static_cast<dag::NodeId>(i));
    const auto& nb = b.graph.node(static_cast<dag::NodeId>(i));
    EXPECT_EQ(na.parent, nb.parent) << i;
    EXPECT_EQ(na.level, nb.level) << i;
    EXPECT_EQ(na.pre_work, nb.pre_work) << i;
    EXPECT_EQ(na.post_work, nb.post_work) << i;
    EXPECT_EQ(na.pre_trace, nb.pre_trace) << i;
    EXPECT_EQ(na.post_trace, nb.post_trace) << i;
    EXPECT_EQ(na.sequential, nb.sequential) << i;
    EXPECT_EQ(na.children, nb.children) << i;
  }
  ASSERT_EQ(a.traces.size(), b.traces.size());
  for (std::size_t i = 0; i < a.traces.size(); ++i) {
    const auto& ta = a.traces.get(static_cast<std::int32_t>(i));
    const auto& tb = b.traces.get(static_cast<std::int32_t>(i));
    ASSERT_EQ(ta.size(), tb.size()) << "trace " << i;
    for (std::size_t r = 0; r < ta.size(); ++r) {
      EXPECT_EQ(ta[r].base, tb[r].base);
      EXPECT_EQ(ta[r].bytes, tb[r].bytes);
      EXPECT_EQ(ta[r].passes, tb[r].passes);
      EXPECT_EQ(ta[r].write, tb[r].write);
    }
  }
}

TEST(Serialize, HeatRoundTrip) {
  HeatParams p;
  p.rows = 256;
  p.cols = 128;
  p.steps = 3;
  p.leaf_rows = 64;
  DagBundle original = build_heat_dag(p);
  std::stringstream ss;
  save_bundle(original, ss);
  DagBundle loaded = load_bundle(ss);
  expect_bundles_equal(original, loaded);
}

TEST(Serialize, MergesortRoundTripWithPostTraces) {
  MergesortParams p;
  p.n = 1 << 14;
  p.leaf_elems = 1 << 12;
  DagBundle original = build_mergesort_dag(p);
  std::stringstream ss;
  save_bundle(original, ss);
  DagBundle loaded = load_bundle(ss);
  expect_bundles_equal(original, loaded);
}

TEST(Serialize, CpuBoundBundleWithoutTraces) {
  QueensParams p;
  p.n = 7;
  p.spawn_depth = 2;
  DagBundle original = build_queens_dag(p);
  std::stringstream ss;
  save_bundle(original, ss);
  DagBundle loaded = load_bundle(ss);
  expect_bundles_equal(original, loaded);
}

TEST(Serialize, LoadedBundleSimulatesIdentically) {
  HeatParams p;
  p.rows = 256;
  p.cols = 256;
  p.steps = 4;
  p.leaf_rows = 64;
  DagBundle original = build_heat_dag(p);
  std::stringstream ss;
  save_bundle(original, ss);
  DagBundle loaded = load_bundle(ss);

  const hw::Topology topo = hw::Topology::synthetic(2, 2, 1ull << 20);
  Comparison a = compare_schedulers(original, topo);
  Comparison b = compare_schedulers(loaded, topo);
  EXPECT_DOUBLE_EQ(a.cab.makespan, b.cab.makespan);
  EXPECT_DOUBLE_EQ(a.cilk.makespan, b.cilk.makespan);
  EXPECT_EQ(a.cab.cache.l3_misses, b.cab.cache.l3_misses);
}

TEST(Serialize, FileRoundTrip) {
  HeatParams p;
  p.rows = 128;
  p.cols = 64;
  p.steps = 2;
  p.leaf_rows = 64;
  DagBundle original = build_heat_dag(p);
  const std::string path = ::testing::TempDir() + "/cab_bundle_test.dag";
  ASSERT_TRUE(save_bundle_file(original, path));
  DagBundle loaded = load_bundle_file(path);
  expect_bundles_equal(original, loaded);
}

TEST(Serialize, RejectsWrongMagic) {
  std::stringstream ss("NOTCAB 1\n");
  EXPECT_DEATH(load_bundle(ss), "CABDAG");
}

TEST(Serialize, RejectsForwardParentReference) {
  std::stringstream ss(
      "CABDAG 1\nname x\nbranching 2\ninput_bytes 0\nnodes 2\n"
      "n -1 1 0 -1 -1 0\n"
      "n 5 1 0 -1 -1 0\n"
      "traces 0\n");
  EXPECT_DEATH(load_bundle(ss), "parent");
}

}  // namespace
}  // namespace cab::apps
