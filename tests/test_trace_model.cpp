// Model-integrity checks: the simulator trace models must cover exactly
// the memory the real kernels touch — per iteration, every output row is
// written once, reads cover the stencil halo, totals account for the
// declared input size. These catch silent model drift (e.g. a builder
// change that forgets the halo rows would shift every cache result).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "apps/ge.hpp"
#include "apps/heat.hpp"
#include "apps/mergesort.hpp"
#include "apps/sor.hpp"

namespace cab::apps {
namespace {

struct Interval {
  std::uint64_t lo, hi;  // [lo, hi)
};

/// Union length of a set of byte intervals.
std::uint64_t union_bytes(std::vector<Interval> v) {
  std::sort(v.begin(), v.end(),
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  std::uint64_t total = 0, end = 0;
  bool first = true;
  for (const Interval& i : v) {
    if (first || i.lo > end) {
      total += i.hi - i.lo;
      end = i.hi;
      first = false;
    } else if (i.hi > end) {
      total += i.hi - end;
      end = i.hi;
    }
  }
  return total;
}

/// Collects per-node trace intervals of a bundle, keyed by 8 GiB array
/// slots (apps::array_base spacing), split by read/write.
struct Coverage {
  std::map<std::uint64_t, std::vector<Interval>> reads, writes;
};

Coverage collect(const DagBundle& b) {
  Coverage c;
  auto add = [&](std::int32_t trace_id) {
    if (!b.traces.has(trace_id)) return;
    for (const cachesim::RangeAccess& r : b.traces.get(trace_id)) {
      const std::uint64_t slot = r.base >> 33;
      (r.write ? c.writes : c.reads)[slot].push_back(
          {r.base, r.base + r.bytes});
    }
  };
  for (std::size_t i = 0; i < b.graph.size(); ++i) {
    const auto& n = b.graph.node(static_cast<dag::NodeId>(i));
    add(n.pre_trace);
    add(n.post_trace);
  }
  return c;
}

TEST(HeatTraceModel, EveryStepWritesTheWholeDestinationGrid) {
  HeatParams p;
  p.rows = 256;
  p.cols = 128;
  p.steps = 4;
  p.leaf_rows = 32;
  DagBundle b = build_heat_dag(p);
  Coverage c = collect(b);
  const std::uint64_t grid =
      static_cast<std::uint64_t>(p.rows * p.cols) * sizeof(double);
  // Two buffers alternate as dst: each accumulates steps/2 full writes;
  // the union per buffer must equal exactly one grid.
  ASSERT_EQ(c.writes.size(), 2u);
  for (auto& [slot, intervals] : c.writes) {
    EXPECT_EQ(union_bytes(intervals), grid) << "buffer slot " << slot;
  }
  // Reads cover the full grid too (halos included).
  ASSERT_EQ(c.reads.size(), 2u);
  for (auto& [slot, intervals] : c.reads) {
    EXPECT_EQ(union_bytes(intervals), grid) << "buffer slot " << slot;
  }
}

TEST(HeatTraceModel, LeafReadsIncludeHaloRows) {
  HeatParams p;
  p.rows = 128;
  p.cols = 64;
  p.steps = 1;
  p.leaf_rows = 32;
  DagBundle b = build_heat_dag(p);
  const std::uint64_t row = static_cast<std::uint64_t>(p.cols) * 8;
  // Interior leaves read (leaf_rows + 2) rows, write leaf_rows rows.
  int interior_leaves = 0;
  for (std::size_t i = 0; i < b.graph.size(); ++i) {
    const auto& n = b.graph.node(static_cast<dag::NodeId>(i));
    if (!b.traces.has(n.pre_trace)) continue;
    const auto& t = b.traces.get(n.pre_trace);
    ASSERT_EQ(t.size(), 2u);
    EXPECT_FALSE(t[0].write);
    EXPECT_TRUE(t[1].write);
    if (t[0].bytes == (32 + 2) * row) ++interior_leaves;
    EXPECT_EQ(t[1].bytes, 32 * row);
  }
  EXPECT_EQ(interior_leaves, 2);  // 4 leaves; 2 interior, 2 boundary
}

TEST(SorTraceModel, InPlaceWritesCoverInteriorPerPhase) {
  SorParams p;
  p.rows = 130;
  p.cols = 64;
  p.iterations = 1;
  p.leaf_rows = 32;
  DagBundle b = build_sor_dag(p);
  Coverage c = collect(b);
  ASSERT_EQ(c.writes.size(), 1u);  // single in-place buffer
  const std::uint64_t interior =
      static_cast<std::uint64_t>(p.rows - 2) * p.cols * sizeof(double);
  // Union over both half-sweeps covers the interior rows exactly once.
  EXPECT_EQ(union_bytes(c.writes.begin()->second), interior);
}

TEST(GeTraceModel, PanelsReadPivotRowsAndWriteTrailingRows) {
  GeParams p;
  p.n = 64;
  p.leaf_rows = 16;
  DagBundle b = build_ge_dag(p, /*pivots_per_phase=*/8);
  // Every leaf's trace: first range read (pivot panel), second write
  // (own rows), and the write's passes equal the panel's pivot count.
  int leaves = 0;
  for (std::size_t i = 0; i < b.graph.size(); ++i) {
    const auto& n = b.graph.node(static_cast<dag::NodeId>(i));
    if (!b.traces.has(n.pre_trace)) continue;
    const auto& t = b.traces.get(n.pre_trace);
    ASSERT_EQ(t.size(), 2u);
    EXPECT_FALSE(t[0].write);
    EXPECT_TRUE(t[1].write);
    EXPECT_GE(t[1].passes, 1u);
    EXPECT_LE(t[1].passes, 8u);
    ++leaves;
  }
  EXPECT_GT(leaves, 0);
}

TEST(MergesortTraceModel, EveryLevelTouchesTheWholeArray) {
  MergesortParams p;
  p.n = 1 << 14;
  p.leaf_elems = 1 << 11;
  DagBundle b = build_mergesort_dag(p);
  const std::uint64_t array =
      static_cast<std::uint64_t>(p.n) * sizeof(std::int64_t);
  // Leaf sorts cover [0, n) in the data buffer.
  std::vector<Interval> leaf_writes;
  // Merge posts per level also cover [0, n).
  std::map<std::int32_t, std::vector<Interval>> merge_by_level;
  for (std::size_t i = 0; i < b.graph.size(); ++i) {
    const auto& n = b.graph.node(static_cast<dag::NodeId>(i));
    if (b.traces.has(n.pre_trace) && n.children.empty()) {
      const auto& t = b.traces.get(n.pre_trace);
      leaf_writes.push_back({t[1].base, t[1].base + t[1].bytes});
    }
    if (b.traces.has(n.post_trace)) {
      const auto& t = b.traces.get(n.post_trace);
      merge_by_level[n.level].push_back({t[0].base, t[0].base + t[0].bytes});
    }
  }
  EXPECT_EQ(union_bytes(leaf_writes), array);
  for (auto& [level, intervals] : merge_by_level) {
    EXPECT_EQ(union_bytes(intervals), array) << "merge level " << level;
  }
}

TEST(TraceModel, DeclaredInputBytesMatchTracedFootprint) {
  // Sd (what Eq. 4 sees) must equal the single-copy footprint the traces
  // actually touch.
  {
    HeatParams p;
    p.rows = 256;
    p.cols = 256;
    p.steps = 2;
    p.leaf_rows = 64;
    DagBundle b = build_heat_dag(p);
    Coverage c = collect(b);
    EXPECT_EQ(b.input_bytes, union_bytes(c.writes.begin()->second));
  }
  {
    SorParams p;
    p.rows = 256;
    p.cols = 256;
    p.iterations = 2;
    p.leaf_rows = 64;
    DagBundle b = build_sor_dag(p);
    Coverage c = collect(b);
    // SOR's Sd counts the whole grid; traces touch interior + halo reads
    // = whole grid as well.
    EXPECT_EQ(union_bytes(c.reads.begin()->second), b.input_bytes);
  }
}

}  // namespace
}  // namespace cab::apps
