// Observability-layer invariants: timeline spans nest, trace events agree
// with the scheduler's own counters, the Chrome-trace JSON round-trips,
// and tracing never perturbs what it observes.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <string>

#include "dag/generators.hpp"
#include "obs/attrib/attrib.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"
#include "runtime/graph_runner.hpp"
#include "runtime/runtime.hpp"

namespace cab::runtime {
namespace {

Options traced_options(int sockets, int cores, int bl) {
  Options o;
  o.topo = hw::Topology::synthetic(sockets, cores, 1ull << 20);
  o.kind = SchedulerKind::kCab;
  o.boundary_level = bl;
  o.trace = true;
  o.seed = 7;
  return o;
}

void spawn_tree(int depth, std::atomic<int>* leaves) {
  if (depth == 0) {
    volatile double x = 1.0;
    for (int i = 0; i < 15000; ++i) x = x * 1.0000001;
    leaves->fetch_add(1);
    return;
  }
  Runtime::spawn([depth, leaves] { spawn_tree(depth - 1, leaves); });
  Runtime::spawn([depth, leaves] { spawn_tree(depth - 1, leaves); });
  Runtime::sync();
}

obs::Trace traced_tree_run(Runtime& rt, int depth) {
  std::atomic<int> leaves{0};
  rt.run([&] { spawn_tree(depth, &leaves); });
  EXPECT_EQ(leaves.load(), 1 << depth);
  return rt.trace();
}

// Field-by-field equality of two traces (the export/parse exact-inverse
// property), with failures pointing at the first differing event.
void expect_traces_equal(const obs::Trace& t, const obs::Trace& back) {
  EXPECT_EQ(back.sockets, t.sockets);
  EXPECT_EQ(back.cores_per_socket, t.cores_per_socket);
  EXPECT_EQ(back.scheduler, t.scheduler);
  EXPECT_EQ(back.workload, t.workload);
  ASSERT_EQ(back.workers.size(), t.workers.size());
  for (std::size_t i = 0; i < t.workers.size(); ++i) {
    const obs::WorkerTimeline& a = t.workers[i];
    const obs::WorkerTimeline& b = back.workers[i];
    EXPECT_EQ(a.worker, b.worker);
    EXPECT_EQ(a.squad, b.squad);
    EXPECT_EQ(a.is_head, b.is_head);
    EXPECT_EQ(a.dropped, b.dropped);
    ASSERT_EQ(a.events.size(), b.events.size()) << "worker " << a.worker;
    for (std::size_t j = 0; j < a.events.size(); ++j) {
      EXPECT_EQ(a.events[j].kind, b.events[j].kind)
          << "worker " << a.worker << " event " << j;
      EXPECT_EQ(a.events[j].t0, b.events[j].t0);
      EXPECT_EQ(a.events[j].t1, b.events[j].t1);
      EXPECT_EQ(a.events[j].a, b.events[j].a);
      EXPECT_EQ(a.events[j].b, b.events[j].b);
    }
  }
}

TEST(Obs, TraceOffProducesNoEvents) {
  Options o = traced_options(2, 2, 2);
  o.trace = false;
  Runtime rt(o);
  std::atomic<int> leaves{0};
  rt.run([&] { spawn_tree(4, &leaves); });
  obs::Trace t = rt.trace();
  EXPECT_EQ(t.workers.size(), 4u);
  EXPECT_EQ(t.event_count(), 0u);
  EXPECT_EQ(t.dropped_count(), 0u);
}

TEST(Obs, EventTimesWellFormed) {
  Runtime rt(traced_options(2, 2, 2));
  obs::Trace t = traced_tree_run(rt, 5);
  ASSERT_GT(t.event_count(), 0u);
  for (const obs::WorkerTimeline& w : t.workers) {
    for (const obs::TraceEvent& e : w.events) {
      EXPECT_LE(e.t0, e.t1);
      if (!obs::is_span(e.kind)) {
        EXPECT_EQ(e.t0, e.t1);
      }
    }
  }
}

TEST(Obs, TaskSpansNestPerWorker) {
  Runtime rt(traced_options(2, 2, 2));
  obs::Trace t = traced_tree_run(rt, 6);
  // Task spans on one worker form a laminar family: a worker only starts
  // another task inside a task while *helping at a sync*, so any two of
  // its spans are either disjoint or nested — partial overlap would mean
  // the timeline lies about execution structure.
  std::size_t spans_checked = 0;
  for (const obs::WorkerTimeline& w : t.workers) {
    std::vector<const obs::TraceEvent*> spans;
    for (const obs::TraceEvent& e : w.events) {
      if (e.kind == obs::EventKind::kTaskExec) spans.push_back(&e);
    }
    for (std::size_t i = 0; i < spans.size(); ++i) {
      for (std::size_t j = i + 1; j < spans.size(); ++j) {
        const auto* a = spans[i];
        const auto* b = spans[j];
        const bool disjoint = a->t1 <= b->t0 || b->t1 <= a->t0;
        const bool a_in_b = b->t0 <= a->t0 && a->t1 <= b->t1;
        const bool b_in_a = a->t0 <= b->t0 && b->t1 <= a->t1;
        EXPECT_TRUE(disjoint || a_in_b || b_in_a)
            << "partial overlap on worker " << w.worker << ": [" << a->t0
            << "," << a->t1 << ") vs [" << b->t0 << "," << b->t1 << ")";
        ++spans_checked;
      }
    }
  }
  EXPECT_GT(spans_checked, 0u);
}

TEST(Obs, CountersMatchTraceEvents) {
  Runtime rt(traced_options(2, 2, 2));
  obs::Trace t = traced_tree_run(rt, 6);
  SchedulerStats s = rt.stats();
  ASSERT_EQ(t.workers.size(), s.per_worker.size());
  std::uint64_t inter_steal_events = 0;
  for (std::size_t i = 0; i < t.workers.size(); ++i) {
    const obs::WorkerTimeline& w = t.workers[i];
    ASSERT_EQ(w.dropped, 0u) << "grow the workload-independent capacity";
    std::uint64_t tasks = 0, spawns_intra = 0, spawns_inter = 0;
    std::uint64_t intra_hits = 0, inter_hits = 0, acquire_hits = 0;
    for (const obs::TraceEvent& e : w.events) {
      switch (e.kind) {
        case obs::EventKind::kTaskExec: ++tasks; break;
        case obs::EventKind::kSpawnIntra: ++spawns_intra; break;
        case obs::EventKind::kSpawnInter: ++spawns_inter; break;
        case obs::EventKind::kStealIntra: intra_hits += e.b != 0; break;
        case obs::EventKind::kStealInter: inter_hits += e.b != 0; break;
        case obs::EventKind::kInterAcquire: acquire_hits += e.b != 0; break;
        default: break;
      }
    }
    const WorkerStats& ws = s.per_worker[i];
    // Every counter increment has a matching timeline event (and vice
    // versa) — the trace and the cheap counters tell one story.
    EXPECT_EQ(tasks, ws.tasks_executed) << "worker " << w.worker;
    EXPECT_EQ(spawns_intra, ws.spawns_intra) << "worker " << w.worker;
    EXPECT_EQ(spawns_inter, ws.spawns_inter) << "worker " << w.worker;
    EXPECT_EQ(intra_hits, ws.intra_steals) << "worker " << w.worker;
    EXPECT_EQ(inter_hits, ws.inter_steals) << "worker " << w.worker;
    EXPECT_EQ(acquire_hits, ws.inter_acquires) << "worker " << w.worker;
    inter_steal_events += inter_hits;
  }
  EXPECT_EQ(inter_steal_events, s.total.inter_steals);
}

TEST(Obs, ChromeJsonParsesAndReferencesValidIds) {
  Runtime rt(traced_options(2, 2, 2));
  obs::Trace t = traced_tree_run(rt, 5);
  std::ostringstream out;
  obs::write_chrome_trace(t, out);
  const std::string text = out.str();

  // (a) It is valid JSON with the Chrome trace top-level shape.
  const obs::json::Value doc = obs::json::parse(text);
  ASSERT_TRUE(doc.is_object());
  ASSERT_TRUE(doc["traceEvents"].is_array());
  const int workers = 4, squads = 2;
  const std::set<std::string> known = {
      "task",        "steal:intra",  "steal:inter",
      "inter:acquire", "spawn:intra", "spawn:inter",
      "active_inter", "sync:wait",   "idle",       "task:node",
      "process_name", "thread_name", "cab_worker"};
  for (const obs::json::Value& ev : doc["traceEvents"].as_array()) {
    ASSERT_TRUE(ev.is_object());
    EXPECT_TRUE(known.count(ev.string_or("name", "?")))
        << ev.string_or("name", "?");
    const double pid = ev.number_or("pid", -1);
    EXPECT_GE(pid, 0);
    EXPECT_LT(pid, squads);
    if (ev.string_or("ph", "") != "M" || ev.string_or("name", "") != "process_name") {
      const double tid = ev.number_or("tid", -1);
      EXPECT_GE(tid, 0);
      EXPECT_LT(tid, workers);
    }
    if (ev.string_or("ph", "") == "X") {
      EXPECT_GE(ev.number_or("dur", -1), 0);
      EXPECT_GE(ev.number_or("ts", -1), 0);
    }
  }

  // (b) The parser reconstructs the identical trace (exact inverse).
  expect_traces_equal(t, obs::parse_chrome_trace(text));
}

TEST(Obs, CounterTracksAreSkippedOnParseRoundTrip) {
  // metric:* (from a metrics snapshot) and attrib:* (from an attribution)
  // counter tracks make the export richer for chrome://tracing, but they
  // are derived data: the parser must skip them and still reconstruct the
  // identical trace.
  Runtime rt(traced_options(2, 2, 2));
  obs::Trace t = traced_tree_run(rt, 5);
  t.workload = "unit-tree";
  const obs::metrics::Snapshot metrics = rt.metrics_snapshot();
  const obs::attrib::Attribution attribution = obs::attrib::attribute(t);

  std::ostringstream out;
  obs::write_chrome_trace(t, out, &metrics, &attribution);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"metric:"), std::string::npos);
  EXPECT_NE(text.find("\"attrib:exec_intra\""), std::string::npos);
  EXPECT_NE(text.find("\"attrib:untracked\""), std::string::npos);

  expect_traces_equal(t, obs::parse_chrome_trace(text));
}

TEST(Obs, TaskNodeEventsJoinGraphRunsAndRoundTrip) {
  // run_graph tags every task body with its dag::NodeId (kTaskNode
  // instant). With no drops there is exactly one tag per node, each id in
  // range, and the tags survive the Chrome-trace round trip.
  Runtime rt(traced_options(2, 2, 2));
  const dag::TaskGraph g = dag::make_recursive_dnc(2, 4, 2000, 100, 100);
  EXPECT_EQ(run_graph(rt, g), g.size());
  obs::Trace t = rt.trace();
  ASSERT_EQ(t.dropped_count(), 0u);

  std::vector<int> tags_per_node(g.size(), 0);
  for (const obs::WorkerTimeline& w : t.workers) {
    for (const obs::TraceEvent& e : w.events) {
      if (e.kind != obs::EventKind::kTaskNode) continue;
      EXPECT_EQ(e.t0, e.t1);
      ASSERT_GE(e.a, 0);
      ASSERT_LT(static_cast<std::size_t>(e.a), g.size());
      ++tags_per_node[static_cast<std::size_t>(e.a)];
    }
  }
  for (std::size_t n = 0; n < g.size(); ++n) {
    EXPECT_EQ(tags_per_node[n], 1) << "node " << n;
  }

  std::ostringstream out;
  obs::write_chrome_trace(t, out);
  expect_traces_equal(t, obs::parse_chrome_trace(out.str()));
}

TEST(Obs, ParserRejectsOutOfRangeIds) {
  const std::string bad =
      "{\"otherData\":{\"sockets\":2,\"cores_per_socket\":2,"
      "\"scheduler\":\"CAB\"},\"traceEvents\":[{\"name\":\"task\","
      "\"ph\":\"X\",\"pid\":0,\"tid\":99,\"ts\":0,\"dur\":1,"
      "\"args\":{\"level\":0,\"inter\":0}}]}";
  EXPECT_THROW(obs::parse_chrome_trace(bad), std::runtime_error);
  EXPECT_THROW(obs::parse_chrome_trace("{nonsense"), std::runtime_error);
}

TEST(Obs, PerWorkerStatsSumExactlyToTotal) {
  Runtime rt(traced_options(2, 2, 2));
  (void)traced_tree_run(rt, 6);
  SchedulerStats s = rt.stats();
  WorkerStats sum;
  for (const WorkerStats& w : s.per_worker) sum += w;
  EXPECT_EQ(sum.tasks_executed, s.total.tasks_executed);
  EXPECT_EQ(sum.spawns_intra, s.total.spawns_intra);
  EXPECT_EQ(sum.spawns_inter, s.total.spawns_inter);
  EXPECT_EQ(sum.intra_pop_hits, s.total.intra_pop_hits);
  EXPECT_EQ(sum.intra_steals, s.total.intra_steals);
  EXPECT_EQ(sum.inter_acquires, s.total.inter_acquires);
  EXPECT_EQ(sum.inter_steals, s.total.inter_steals);
  EXPECT_EQ(sum.failed_steal_attempts, s.total.failed_steal_attempts);
  EXPECT_EQ(sum.help_iterations, s.total.help_iterations);
}

TEST(Obs, TracingDoesNotChangeCountersOnDeterministicWorkload) {
  // One worker => one deterministic execution order; with tracing on and
  // off every counter must agree exactly (tracing observes, never
  // steers). On multi-worker machines only the scheduling-independent
  // counters are deterministic — checked below.
  auto run_once = [](bool trace) {
    Options o;
    o.topo = hw::Topology::synthetic(1, 1, 1ull << 20);
    o.kind = SchedulerKind::kCab;
    o.boundary_level = 2;
    o.trace = trace;
    Runtime rt(o);
    std::atomic<int> leaves{0};
    rt.run([&] { spawn_tree(6, &leaves); });
    return rt.stats();
  };
  SchedulerStats off = run_once(false);
  SchedulerStats on = run_once(true);
  EXPECT_EQ(on.total.tasks_executed, off.total.tasks_executed);
  EXPECT_EQ(on.total.spawns_intra, off.total.spawns_intra);
  EXPECT_EQ(on.total.spawns_inter, off.total.spawns_inter);
  EXPECT_EQ(on.total.intra_pop_hits, off.total.intra_pop_hits);
  EXPECT_EQ(on.total.intra_steals, off.total.intra_steals);
  EXPECT_EQ(on.total.inter_acquires, off.total.inter_acquires);
  EXPECT_EQ(on.total.inter_steals, off.total.inter_steals);
  EXPECT_EQ(on.total.help_iterations, off.total.help_iterations);

  auto multi = [](bool trace) {
    Options o = traced_options(2, 2, 2);
    o.trace = trace;
    Runtime rt(o);
    std::atomic<int> leaves{0};
    rt.run([&] { spawn_tree(6, &leaves); });
    return rt.stats();
  };
  SchedulerStats m_off = multi(false);
  SchedulerStats m_on = multi(true);
  EXPECT_EQ(m_on.total.tasks_executed, m_off.total.tasks_executed);
  EXPECT_EQ(m_on.total.spawns_intra + m_on.total.spawns_inter,
            m_off.total.spawns_intra + m_off.total.spawns_inter);
}

TEST(Obs, CapacityOverflowCountsDrops) {
  Options o = traced_options(2, 2, 2);
  o.trace_capacity = 8;
  Runtime rt(o);
  std::atomic<int> leaves{0};
  rt.run([&] { spawn_tree(6, &leaves); });
  obs::Trace t = rt.trace();
  EXPECT_GT(t.dropped_count(), 0u);
  for (const obs::WorkerTimeline& w : t.workers) {
    EXPECT_LE(w.events.size(), 8u);
  }
  // reset_stats clears timelines and drop counts.
  rt.reset_stats();
  obs::Trace cleared = rt.trace();
  EXPECT_EQ(cleared.event_count(), 0u);
  EXPECT_EQ(cleared.dropped_count(), 0u);
}

TEST(Obs, ReportsComputeSaneFractions) {
  Runtime rt(traced_options(2, 2, 2));
  obs::Trace t = traced_tree_run(rt, 6);

  obs::StealLatencyReport lat = obs::steal_latency(t);
  SchedulerStats s = rt.stats();
  EXPECT_EQ(lat.intra_hit.count, s.total.intra_steals);
  EXPECT_EQ(lat.inter_steal_hit.count, s.total.inter_steals);
  EXPECT_EQ(lat.inter_acquire_hit.count, s.total.inter_acquires);
  EXPECT_FALSE(lat.to_string().empty());

  obs::OccupancyReport occ = obs::squad_occupancy(t);
  EXPECT_GT(occ.wall_ns, 0u);
  ASSERT_EQ(occ.squads.size(), 2u);
  for (const obs::SquadOccupancy& sq : occ.squads) {
    EXPECT_GE(sq.busy_fraction, 0.0);
    EXPECT_LE(sq.busy_fraction, 1.0);
    EXPECT_GE(sq.max_active, 0);
  }
  ASSERT_EQ(occ.workers.size(), 4u);
  std::uint64_t tasks = 0;
  for (const obs::WorkerOccupancy& w : occ.workers) {
    EXPECT_GE(w.exec_fraction, 0.0);
    EXPECT_LE(w.exec_fraction, 1.0 + 1e-9);
    tasks += w.tasks;
  }
  EXPECT_EQ(tasks, s.total.tasks_executed);
  EXPECT_FALSE(occ.to_string().empty());
}

TEST(Obs, SummaryReportsAllCollectedCounters) {
  Runtime rt(traced_options(2, 2, 2));
  (void)traced_tree_run(rt, 5);
  const std::string s = rt.stats().summary();
  EXPECT_NE(s.find("failed-steals="), std::string::npos) << s;
  EXPECT_NE(s.find("help-iters="), std::string::npos) << s;
}

}  // namespace
}  // namespace cab::runtime
