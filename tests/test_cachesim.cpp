#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cachesim/cache.hpp"
#include "cachesim/hierarchy.hpp"
#include "cachesim/trace.hpp"
#include "hw/topology.hpp"

namespace cab::cachesim {
namespace {

hw::CacheSpec tiny_spec(std::uint64_t size, std::uint32_t assoc) {
  return hw::CacheSpec{size, 64, assoc};
}

TEST(Cache, ColdMissThenHit) {
  Cache c(tiny_spec(4096, 4));  // 16 sets x 4 ways
  EXPECT_FALSE(c.access_line(7));
  EXPECT_TRUE(c.access_line(7));
  EXPECT_EQ(c.accesses(), 2u);
  EXPECT_EQ(c.misses(), 1u);
  EXPECT_EQ(c.hits(), 1u);
}

TEST(Cache, LruEvictionOrder) {
  Cache c(tiny_spec(64 * 2, 2));  // 1 set, 2 ways
  c.access_line(1);               // miss, [1]
  c.access_line(2);               // miss, [2,1]
  c.access_line(1);               // hit,  [1,2]
  c.access_line(3);               // miss, evicts 2 (LRU), [3,1]
  EXPECT_TRUE(c.access_line(1));
  EXPECT_TRUE(c.access_line(3));
  EXPECT_FALSE(c.access_line(2));  // was evicted
}

TEST(Cache, SetIndexingSeparatesConflicts) {
  Cache c(tiny_spec(64 * 8, 2));  // 4 sets x 2 ways
  // Lines 0 and 4 map to set 0; lines 1 and 5 to set 1.
  c.access_line(0);
  c.access_line(4);
  c.access_line(1);
  EXPECT_TRUE(c.access_line(0));
  EXPECT_TRUE(c.access_line(4));
  EXPECT_TRUE(c.access_line(1));
  // A third set-0 line evicts the LRU of set 0 only.
  c.access_line(8);
  EXPECT_TRUE(c.access_line(1));  // other set untouched
}

TEST(Cache, CapacityWorkingSetLargerThanCacheAlwaysMisses) {
  Cache c(tiny_spec(64 * 16, 4));  // 16 lines total
  // Sweep 32 lines repeatedly: LRU + exact wrap = every access misses.
  for (int pass = 0; pass < 3; ++pass)
    for (std::uint64_t l = 0; l < 32; ++l) c.access_line(l);
  EXPECT_EQ(c.misses(), c.accesses());
}

TEST(Cache, InvalidateLineRemovesOnlyThatLine) {
  Cache c(tiny_spec(64 * 4, 4));  // 1 set x 4 ways
  for (std::uint64_t l = 0; l < 4; ++l) c.access_line(l);
  EXPECT_TRUE(c.invalidate_line(2));
  EXPECT_FALSE(c.invalidate_line(2));  // already gone
  EXPECT_TRUE(c.access_line(0));
  EXPECT_TRUE(c.access_line(1));
  EXPECT_TRUE(c.access_line(3));
  EXPECT_FALSE(c.access_line(2));  // must refill
}

TEST(Cache, InvalidateAllEmptiesCache) {
  Cache c(tiny_spec(4096, 4));
  for (std::uint64_t l = 0; l < 10; ++l) c.access_line(l);
  c.invalidate_all();
  EXPECT_FALSE(c.access_line(3));
}

TEST(Trace, LineCountCountsLinesTimesPasses) {
  Trace t;
  t.push_back({0, 128, 1, false});    // 2 lines
  t.push_back({64, 65, 3, false});    // spans 2 lines, 3 passes
  t.push_back({0, 0, 5, false});      // empty: ignored
  EXPECT_EQ(trace_line_count(t, 64), 2u + 6u);
  EXPECT_EQ(trace_bytes(t), 128u + 65u);
}

TEST(TraceStore, AddAndGet) {
  TraceStore s;
  EXPECT_FALSE(s.has(-1));
  EXPECT_FALSE(s.has(0));
  std::int32_t id = s.add({{0, 64, 1, false}});
  EXPECT_TRUE(s.has(id));
  EXPECT_EQ(s.get(id).size(), 1u);
}

TEST(Hierarchy, L2ThenL3ThenMemory) {
  hw::Topology topo = hw::Topology::synthetic(2, 2, /*l3=*/64 * 128,
                                              /*l2=*/64 * 16);
  CacheHierarchy h(topo);
  EXPECT_EQ(h.access_line(0, 5), HitLevel::kMemory);
  EXPECT_EQ(h.access_line(0, 5), HitLevel::kL2);
  // A different core of the same socket: misses its own L2, hits the
  // shared L3 — the constructive sharing CAB exploits.
  EXPECT_EQ(h.access_line(1, 5), HitLevel::kL3);
  // A core of the *other* socket gets no such benefit.
  EXPECT_EQ(h.access_line(2, 5), HitLevel::kMemory);
}

TEST(Hierarchy, WriteInvalidatesOtherSocketsOnly) {
  hw::Topology topo = hw::Topology::synthetic(2, 2, 64 * 128, 64 * 16);
  CacheHierarchy h(topo);
  h.access_line(0, 9);                  // socket 0 caches line 9
  h.access_line(2, 9);                  // socket 1 caches line 9
  h.access_line(3, 9);                  // core 3 L2 caches it too
  EXPECT_EQ(h.access_line(0, 9, /*write=*/true), HitLevel::kL2);
  // Socket 1 lost every copy.
  EXPECT_EQ(h.access_line(3, 9), HitLevel::kMemory);
  // Writer's socket keeps it: core 1 hits socket 0's L3.
  EXPECT_EQ(h.access_line(1, 9), HitLevel::kL3);
}

TEST(Hierarchy, StreamCostBuckets) {
  hw::Topology topo = hw::Topology::synthetic(1, 1, 64 * 128, 64 * 16);
  CacheHierarchy h(topo);
  Trace t{{0, 64 * 8, 2, false}};  // 8 lines, 2 passes
  StreamCost c = h.stream(0, t);
  EXPECT_EQ(c.total_accesses(), 16u);
  EXPECT_EQ(c.memory_fills, 8u);  // first pass cold
  EXPECT_EQ(c.l2_hits, 8u);       // second pass hits (8 lines < 16-line L2)
}

TEST(Hierarchy, SocketStatsPartitionTotals) {
  hw::Topology topo = hw::Topology::synthetic(2, 2, 64 * 128, 64 * 16);
  CacheHierarchy h(topo);
  for (std::uint64_t l = 0; l < 10; ++l) h.access_line(0, l);
  for (std::uint64_t l = 0; l < 4; ++l) h.access_line(2, 100 + l);
  LevelStats total = h.totals();
  LevelStats s0 = h.socket_stats(0);
  LevelStats s1 = h.socket_stats(1);
  EXPECT_EQ(s0.l2_accesses + s1.l2_accesses, total.l2_accesses);
  EXPECT_EQ(s0.l3_misses + s1.l3_misses, total.l3_misses);
  EXPECT_EQ(s0.l2_accesses, 10u);
  EXPECT_EQ(s1.l2_accesses, 4u);
}

TEST(Hierarchy, ResetStatsKeepsContents) {
  hw::Topology topo = hw::Topology::synthetic(1, 1, 64 * 128, 64 * 16);
  CacheHierarchy h(topo);
  h.access_line(0, 1);
  h.reset_stats();
  EXPECT_EQ(h.totals().l2_accesses, 0u);
  EXPECT_EQ(h.access_line(0, 1), HitLevel::kL2);  // still cached
}

TEST(Cache, RandomReplacementIsSeededAndInRange) {
  Cache a(tiny_spec(64 * 8, 4), Replacement::kRandom, 42);
  Cache b(tiny_spec(64 * 8, 4), Replacement::kRandom, 42);
  // Same seed => identical behaviour.
  for (std::uint64_t l = 0; l < 400; ++l) {
    EXPECT_EQ(a.access_line(l % 37), b.access_line(l % 37));
  }
  EXPECT_EQ(a.misses(), b.misses());
}

TEST(Cache, TreePlruHitsRecentlyUsedLines) {
  // 1 set x 4 ways: touching A,B,C,D then A again must keep A resident
  // through the next single eviction.
  Cache c(tiny_spec(64 * 4, 4), Replacement::kTreePlru);
  c.access_line(1);
  c.access_line(2);
  c.access_line(3);
  c.access_line(4);
  c.access_line(1);     // A most-recently-used
  c.access_line(5);     // evicts some non-A way
  EXPECT_TRUE(c.contains(1));
}

TEST(Cache, TreePlruRequiresPowerOfTwoAssoc) {
  // (Construction with assoc 48 would abort via CAB_CHECK; verified by
  // only constructing valid shapes here.)
  Cache c(tiny_spec(64 * 16, 16), Replacement::kTreePlru);
  for (std::uint64_t l = 0; l < 64; ++l) c.access_line(l);
  EXPECT_EQ(c.accesses(), 64u);
}

TEST(Cache, FillLineDoesNotCountAccesses) {
  Cache c(tiny_spec(64 * 8, 4));
  c.fill_line(7);
  EXPECT_EQ(c.accesses(), 0u);
  EXPECT_TRUE(c.access_line(7));  // prefetched line hits
}

TEST(Cache, InvalidationCounterTracksCoherenceTraffic) {
  Cache c(tiny_spec(64 * 8, 4));
  c.access_line(1);
  c.access_line(2);
  EXPECT_TRUE(c.invalidate_line(1));
  EXPECT_FALSE(c.invalidate_line(1));
  EXPECT_EQ(c.invalidations(), 1u);
  c.reset_stats();
  EXPECT_EQ(c.invalidations(), 0u);
}

/// Reference-model check: the LRU cache must agree, access for access,
/// with a brute-force list-based LRU simulation on a random access
/// stream (the gold standard for replacement correctness).
TEST(Cache, LruMatchesBruteForceReference) {
  constexpr std::uint64_t kSets = 4, kWays = 4;
  Cache c(tiny_spec(64 * kSets * kWays, kWays));
  std::vector<std::vector<std::uint64_t>> ref(kSets);  // MRU-first lists
  util::Xorshift64 rng(2026);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t line = rng.next_below(64);
    const std::size_t set = line % kSets;
    auto& lst = ref[set];
    auto it = std::find(lst.begin(), lst.end(), line);
    const bool ref_hit = it != lst.end();
    if (ref_hit) lst.erase(it);
    lst.insert(lst.begin(), line);
    if (lst.size() > kWays) lst.pop_back();
    ASSERT_EQ(c.access_line(line), ref_hit) << "access " << i;
  }
}

TEST(Hierarchy, L1FrontsTheL2) {
  hw::Topology topo = hw::Topology::synthetic(1, 2, 64 * 128, 64 * 16);
  HierarchyOptions o;
  o.with_l1 = true;
  o.l1 = hw::CacheSpec{64 * 4, 64, 4};
  CacheHierarchy h(topo, o);
  EXPECT_EQ(h.access_line(0, 9), HitLevel::kMemory);
  EXPECT_EQ(h.access_line(0, 9), HitLevel::kL1);  // filled on the way in
  LevelStats s = h.totals();
  EXPECT_EQ(s.l1_accesses, 2u);
  EXPECT_EQ(s.l1_misses, 1u);
}

TEST(Hierarchy, NextLinePrefetchTurnsSequentialMissesIntoHits) {
  hw::Topology topo = hw::Topology::synthetic(1, 1, 64 * 1024, 64 * 64);
  HierarchyOptions with;
  with.next_line_prefetch = true;
  CacheHierarchy pf(topo, with);
  CacheHierarchy nopf(topo);
  Trace t{{0, 64 * 512, 1, false}};
  StreamCost a = pf.stream(0, t);
  StreamCost b = nopf.stream(0, t);
  // Sequential sweep: every other fill is prefetched away.
  EXPECT_EQ(b.memory_fills, 512u);
  EXPECT_EQ(a.memory_fills, 256u);
  EXPECT_EQ(a.l2_hits, 256u);
}

TEST(Hierarchy, InvalidationsReportedInTotals) {
  hw::Topology topo = hw::Topology::synthetic(2, 1, 64 * 128, 64 * 16);
  CacheHierarchy h(topo);
  h.access_line(0, 5);
  h.access_line(1, 5);
  h.access_line(0, 5, /*write=*/true);  // kills socket 1's L2+L3 copies
  EXPECT_EQ(h.totals().invalidations, 2u);
}

/// Property: streaming a working set through one core, misses equal the
/// footprint when it fits, and accesses when it far exceeds the cache.
class FootprintProperty : public ::testing::TestWithParam<int> {};

TEST_P(FootprintProperty, MissesMatchFootprintRegime) {
  const int lines = GetParam();
  hw::Topology topo = hw::Topology::synthetic(1, 1, /*l3=*/64 * 1024,
                                              /*l2=*/64 * 64);
  CacheHierarchy h(topo);
  Trace t{{0, static_cast<std::uint64_t>(lines) * 64, 4, false}};
  h.stream(0, t);
  LevelStats s = h.totals();
  if (lines <= 1024) {
    // Fits in L3: only the first pass misses to memory.
    EXPECT_EQ(s.l3_misses, static_cast<std::uint64_t>(lines));
  } else {
    // Far larger than L3 with LRU + sequential sweep: near-zero reuse.
    EXPECT_EQ(s.l3_misses, s.l3_accesses);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FootprintProperty,
                         ::testing::Values(16, 64, 512, 1024, 2048, 8192));

}  // namespace
}  // namespace cab::cachesim
