#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cachesim/cache.hpp"
#include "cachesim/coherence.hpp"
#include "cachesim/hierarchy.hpp"
#include "cachesim/metrics.hpp"
#include "cachesim/trace.hpp"
#include "hw/topology.hpp"
#include "obs/metrics/registry.hpp"

namespace cab::cachesim {
namespace {

hw::CacheSpec tiny_spec(std::uint64_t size, std::uint32_t assoc) {
  return hw::CacheSpec{size, 64, assoc};
}

TEST(Cache, ColdMissThenHit) {
  Cache c(tiny_spec(4096, 4));  // 16 sets x 4 ways
  EXPECT_FALSE(c.access_line(7));
  EXPECT_TRUE(c.access_line(7));
  EXPECT_EQ(c.accesses(), 2u);
  EXPECT_EQ(c.misses(), 1u);
  EXPECT_EQ(c.hits(), 1u);
}

TEST(Cache, LruEvictionOrder) {
  Cache c(tiny_spec(64 * 2, 2));  // 1 set, 2 ways
  c.access_line(1);               // miss, [1]
  c.access_line(2);               // miss, [2,1]
  c.access_line(1);               // hit,  [1,2]
  c.access_line(3);               // miss, evicts 2 (LRU), [3,1]
  EXPECT_TRUE(c.access_line(1));
  EXPECT_TRUE(c.access_line(3));
  EXPECT_FALSE(c.access_line(2));  // was evicted
}

TEST(Cache, SetIndexingSeparatesConflicts) {
  Cache c(tiny_spec(64 * 8, 2));  // 4 sets x 2 ways
  // Lines 0 and 4 map to set 0; lines 1 and 5 to set 1.
  c.access_line(0);
  c.access_line(4);
  c.access_line(1);
  EXPECT_TRUE(c.access_line(0));
  EXPECT_TRUE(c.access_line(4));
  EXPECT_TRUE(c.access_line(1));
  // A third set-0 line evicts the LRU of set 0 only.
  c.access_line(8);
  EXPECT_TRUE(c.access_line(1));  // other set untouched
}

TEST(Cache, CapacityWorkingSetLargerThanCacheAlwaysMisses) {
  Cache c(tiny_spec(64 * 16, 4));  // 16 lines total
  // Sweep 32 lines repeatedly: LRU + exact wrap = every access misses.
  for (int pass = 0; pass < 3; ++pass)
    for (std::uint64_t l = 0; l < 32; ++l) c.access_line(l);
  EXPECT_EQ(c.misses(), c.accesses());
}

TEST(Cache, InvalidateLineRemovesOnlyThatLine) {
  Cache c(tiny_spec(64 * 4, 4));  // 1 set x 4 ways
  for (std::uint64_t l = 0; l < 4; ++l) c.access_line(l);
  EXPECT_TRUE(c.invalidate_line(2));
  EXPECT_FALSE(c.invalidate_line(2));  // already gone
  EXPECT_TRUE(c.access_line(0));
  EXPECT_TRUE(c.access_line(1));
  EXPECT_TRUE(c.access_line(3));
  EXPECT_FALSE(c.access_line(2));  // must refill
}

TEST(Cache, InvalidateAllEmptiesCache) {
  Cache c(tiny_spec(4096, 4));
  for (std::uint64_t l = 0; l < 10; ++l) c.access_line(l);
  c.invalidate_all();
  EXPECT_FALSE(c.access_line(3));
}

TEST(Trace, LineCountCountsLinesTimesPasses) {
  Trace t;
  t.push_back({0, 128, 1, false});    // 2 lines
  t.push_back({64, 65, 3, false});    // spans 2 lines, 3 passes
  t.push_back({0, 0, 5, false});      // empty: ignored
  EXPECT_EQ(trace_line_count(t, 64), 2u + 6u);
  EXPECT_EQ(trace_bytes(t), 128u + 65u);
}

TEST(TraceStore, AddAndGet) {
  TraceStore s;
  EXPECT_FALSE(s.has(-1));
  EXPECT_FALSE(s.has(0));
  std::int32_t id = s.add({{0, 64, 1, false}});
  EXPECT_TRUE(s.has(id));
  EXPECT_EQ(s.get(id).size(), 1u);
}

TEST(Hierarchy, L2ThenL3ThenMemory) {
  hw::Topology topo = hw::Topology::synthetic(2, 2, /*l3=*/64 * 128,
                                              /*l2=*/64 * 16);
  CacheHierarchy h(topo);
  EXPECT_EQ(h.access_line(0, 5), HitLevel::kMemory);
  EXPECT_EQ(h.access_line(0, 5), HitLevel::kL2);
  // A different core of the same socket: misses its own L2, hits the
  // shared L3 — the constructive sharing CAB exploits.
  EXPECT_EQ(h.access_line(1, 5), HitLevel::kL3);
  // A core of the *other* socket gets no such benefit.
  EXPECT_EQ(h.access_line(2, 5), HitLevel::kMemory);
}

TEST(Hierarchy, WriteInvalidatesOtherSocketsOnly) {
  hw::Topology topo = hw::Topology::synthetic(2, 2, 64 * 128, 64 * 16);
  CacheHierarchy h(topo);
  h.access_line(0, 9);                  // socket 0 caches line 9
  h.access_line(2, 9);                  // socket 1 caches line 9
  h.access_line(3, 9);                  // core 3 L2 caches it too
  EXPECT_EQ(h.access_line(0, 9, /*write=*/true), HitLevel::kL2);
  // Socket 1 lost every copy.
  EXPECT_EQ(h.access_line(3, 9), HitLevel::kMemory);
  // Writer's socket keeps it: core 1 hits socket 0's L3.
  EXPECT_EQ(h.access_line(1, 9), HitLevel::kL3);
}

TEST(Hierarchy, StreamCostBuckets) {
  hw::Topology topo = hw::Topology::synthetic(1, 1, 64 * 128, 64 * 16);
  CacheHierarchy h(topo);
  Trace t{{0, 64 * 8, 2, false}};  // 8 lines, 2 passes
  StreamCost c = h.stream(0, t);
  EXPECT_EQ(c.total_accesses(), 16u);
  EXPECT_EQ(c.memory_fills, 8u);  // first pass cold
  EXPECT_EQ(c.l2_hits, 8u);       // second pass hits (8 lines < 16-line L2)
}

TEST(Hierarchy, SocketStatsPartitionTotals) {
  hw::Topology topo = hw::Topology::synthetic(2, 2, 64 * 128, 64 * 16);
  CacheHierarchy h(topo);
  for (std::uint64_t l = 0; l < 10; ++l) h.access_line(0, l);
  for (std::uint64_t l = 0; l < 4; ++l) h.access_line(2, 100 + l);
  LevelStats total = h.totals();
  LevelStats s0 = h.socket_stats(0);
  LevelStats s1 = h.socket_stats(1);
  EXPECT_EQ(s0.l2_accesses + s1.l2_accesses, total.l2_accesses);
  EXPECT_EQ(s0.l3_misses + s1.l3_misses, total.l3_misses);
  EXPECT_EQ(s0.l2_accesses, 10u);
  EXPECT_EQ(s1.l2_accesses, 4u);
}

TEST(Hierarchy, ResetStatsKeepsContents) {
  hw::Topology topo = hw::Topology::synthetic(1, 1, 64 * 128, 64 * 16);
  CacheHierarchy h(topo);
  h.access_line(0, 1);
  h.reset_stats();
  EXPECT_EQ(h.totals().l2_accesses, 0u);
  EXPECT_EQ(h.access_line(0, 1), HitLevel::kL2);  // still cached
}

TEST(Cache, RandomReplacementIsSeededAndInRange) {
  Cache a(tiny_spec(64 * 8, 4), Replacement::kRandom, 42);
  Cache b(tiny_spec(64 * 8, 4), Replacement::kRandom, 42);
  // Same seed => identical behaviour.
  for (std::uint64_t l = 0; l < 400; ++l) {
    EXPECT_EQ(a.access_line(l % 37), b.access_line(l % 37));
  }
  EXPECT_EQ(a.misses(), b.misses());
}

TEST(Cache, TreePlruHitsRecentlyUsedLines) {
  // 1 set x 4 ways: touching A,B,C,D then A again must keep A resident
  // through the next single eviction.
  Cache c(tiny_spec(64 * 4, 4), Replacement::kTreePlru);
  c.access_line(1);
  c.access_line(2);
  c.access_line(3);
  c.access_line(4);
  c.access_line(1);     // A most-recently-used
  c.access_line(5);     // evicts some non-A way
  EXPECT_TRUE(c.contains(1));
}

TEST(Cache, TreePlruRequiresPowerOfTwoAssoc) {
  // (Construction with assoc 48 would abort via CAB_CHECK; verified by
  // only constructing valid shapes here.)
  Cache c(tiny_spec(64 * 16, 16), Replacement::kTreePlru);
  for (std::uint64_t l = 0; l < 64; ++l) c.access_line(l);
  EXPECT_EQ(c.accesses(), 64u);
}

TEST(Cache, FillLineDoesNotCountAccesses) {
  Cache c(tiny_spec(64 * 8, 4));
  c.fill_line(7);
  EXPECT_EQ(c.accesses(), 0u);
  EXPECT_TRUE(c.access_line(7));  // prefetched line hits
}

TEST(Cache, InvalidationCounterTracksCoherenceTraffic) {
  Cache c(tiny_spec(64 * 8, 4));
  c.access_line(1);
  c.access_line(2);
  EXPECT_TRUE(c.invalidate_line(1));
  EXPECT_FALSE(c.invalidate_line(1));
  EXPECT_EQ(c.invalidations(), 1u);
  c.reset_stats();
  EXPECT_EQ(c.invalidations(), 0u);
}

/// Reference-model check: the LRU cache must agree, access for access,
/// with a brute-force list-based LRU simulation on a random access
/// stream (the gold standard for replacement correctness).
TEST(Cache, LruMatchesBruteForceReference) {
  constexpr std::uint64_t kSets = 4, kWays = 4;
  Cache c(tiny_spec(64 * kSets * kWays, kWays));
  std::vector<std::vector<std::uint64_t>> ref(kSets);  // MRU-first lists
  util::Xorshift64 rng(2026);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t line = rng.next_below(64);
    const std::size_t set = line % kSets;
    auto& lst = ref[set];
    auto it = std::find(lst.begin(), lst.end(), line);
    const bool ref_hit = it != lst.end();
    if (ref_hit) lst.erase(it);
    lst.insert(lst.begin(), line);
    if (lst.size() > kWays) lst.pop_back();
    ASSERT_EQ(c.access_line(line), ref_hit) << "access " << i;
  }
}

TEST(Hierarchy, L1FrontsTheL2) {
  hw::Topology topo = hw::Topology::synthetic(1, 2, 64 * 128, 64 * 16);
  HierarchyOptions o;
  o.with_l1 = true;
  o.l1 = hw::CacheSpec{64 * 4, 64, 4};
  CacheHierarchy h(topo, o);
  EXPECT_EQ(h.access_line(0, 9), HitLevel::kMemory);
  EXPECT_EQ(h.access_line(0, 9), HitLevel::kL1);  // filled on the way in
  LevelStats s = h.totals();
  EXPECT_EQ(s.l1_accesses, 2u);
  EXPECT_EQ(s.l1_misses, 1u);
}

TEST(Hierarchy, NextLinePrefetchTurnsSequentialMissesIntoHits) {
  hw::Topology topo = hw::Topology::synthetic(1, 1, 64 * 1024, 64 * 64);
  HierarchyOptions with;
  with.next_line_prefetch = true;
  CacheHierarchy pf(topo, with);
  CacheHierarchy nopf(topo);
  Trace t{{0, 64 * 512, 1, false}};
  StreamCost a = pf.stream(0, t);
  StreamCost b = nopf.stream(0, t);
  // Sequential sweep: every other fill is prefetched away.
  EXPECT_EQ(b.memory_fills, 512u);
  EXPECT_EQ(a.memory_fills, 256u);
  EXPECT_EQ(a.l2_hits, 256u);
}

TEST(Hierarchy, InvalidationsReportedInTotals) {
  hw::Topology topo = hw::Topology::synthetic(2, 1, 64 * 128, 64 * 16);
  CacheHierarchy h(topo);
  h.access_line(0, 5);
  h.access_line(1, 5);
  h.access_line(0, 5, /*write=*/true);  // kills socket 1's L2+L3 copies
  EXPECT_EQ(h.totals().invalidations, 2u);
}

/// Property: streaming a working set through one core, misses equal the
/// footprint when it fits, and accesses when it far exceeds the cache.
class FootprintProperty : public ::testing::TestWithParam<int> {};

TEST_P(FootprintProperty, MissesMatchFootprintRegime) {
  const int lines = GetParam();
  hw::Topology topo = hw::Topology::synthetic(1, 1, /*l3=*/64 * 1024,
                                              /*l2=*/64 * 64);
  CacheHierarchy h(topo);
  Trace t{{0, static_cast<std::uint64_t>(lines) * 64, 4, false}};
  h.stream(0, t);
  LevelStats s = h.totals();
  if (lines <= 1024) {
    // Fits in L3: only the first pass misses to memory.
    EXPECT_EQ(s.l3_misses, static_cast<std::uint64_t>(lines));
  } else {
    // Far larger than L3 with LRU + sequential sweep: near-zero reuse.
    EXPECT_EQ(s.l3_misses, s.l3_accesses);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FootprintProperty,
                         ::testing::Values(16, 64, 512, 1024, 2048, 8192));

// ---- MESI-lite coherence (ownership directory + sharing classification).

TEST(Coherence, LineByteMaskCoversIntersectionOnly) {
  CoherenceDirectory d(4, 64);
  // [8, 16) of line 0: bits 8..15.
  EXPECT_EQ(d.line_byte_mask(8, 8, 0), 0xFF00ull);
  // Whole line.
  EXPECT_EQ(d.line_byte_mask(0, 64, 0), ~0ull);
  // Range [60, 72) straddles lines 0 and 1.
  EXPECT_EQ(d.line_byte_mask(60, 12, 0), 0xF000000000000000ull);
  EXPECT_EQ(d.line_byte_mask(60, 12, 1), 0xFFull);
  // Range that misses the line entirely.
  EXPECT_EQ(d.line_byte_mask(0, 64, 1), 0ull);
  EXPECT_EQ(d.line_byte_mask(128, 0, 2), 0ull);
}

TEST(Coherence, ReadMakesSharerWriteMakesOwner) {
  CoherenceDirectory d(4, 64);
  d.on_read(0, 7, 0xFFull);
  d.on_read(1, 7, 0xFF00ull);
  EXPECT_EQ(d.owner(7), -1);  // shared, no writer yet
  EXPECT_EQ(d.sharers(7), 0b11ull);
  d.on_write(2, 7, 0xF0000ull);
  EXPECT_EQ(d.owner(7), 2);
  EXPECT_EQ(d.sharers(7), 0b100ull);  // writer is sole sharer
  EXPECT_EQ(d.touched(0, 7), 0ull);   // histories restart at the write
  EXPECT_EQ(d.touched(2, 7), 0xF0000ull);
}

TEST(Coherence, ClassifyTrueVsFalseVsUntouched) {
  CoherenceDirectory d(4, 64);
  d.on_read(0, 3, 0xFFull);    // core 0 touched bytes 0..7
  d.on_read(1, 3, 0xFF00ull);  // core 1 touched bytes 8..15
  d.on_fill(2, 3);             // core 2 only prefetched
  // Core 3 writes bytes 0..7: overlaps core 0 (true), disjoint from
  // core 1 (false), core 2 never touched anything (untouched).
  EXPECT_EQ(d.classify_and_drop(0, 3, 0xFFull), Sharing::kTrue);
  EXPECT_EQ(d.classify_and_drop(1, 3, 0xFFull), Sharing::kFalse);
  EXPECT_EQ(d.classify_and_drop(2, 3, 0xFFull), Sharing::kUntouched);
  EXPECT_EQ(d.sharers(3), 0ull);
}

TEST(Coherence, FillGrantsNoOwnershipRegression) {
  // The fill-not-exclusive satellite: a prefetch fill must register a
  // sharer with no ownership and no touched bytes.
  CoherenceDirectory d(2, 64);
  d.on_fill(0, 11);
  EXPECT_EQ(d.owner(11), -1);
  EXPECT_EQ(d.sharers(11), 1ull);
  EXPECT_EQ(d.touched(0, 11), 0ull);
  // Even after a write elsewhere on the line, the filled copy is
  // untouched — never misclassified as a sharing conflict.
  EXPECT_EQ(d.classify_and_drop(0, 11, ~0ull), Sharing::kUntouched);
}

TEST(Coherence, DropForgetsStaleSharerWithoutClassifying) {
  CoherenceDirectory d(2, 64);
  d.on_read(0, 5, 0xFull);
  d.drop(0, 5);  // silently evicted before any remote write
  EXPECT_EQ(d.sharers(5), 0ull);
  EXPECT_EQ(d.touched(0, 5), 0ull);
}

TEST(Cache, CoherenceMissOnlyAfterInvalidation) {
  Cache c(tiny_spec(64 * 4, 4));  // 1 set x 4 ways
  c.access_line(1);
  c.invalidate_line(1);
  EXPECT_FALSE(c.access_line(1));  // miss caused by the invalidation
  EXPECT_EQ(c.coherence_misses(), 1u);
  // A capacity miss is not a coherence miss.
  for (std::uint64_t l = 10; l < 15; ++l) c.access_line(l);  // evicts 1
  c.access_line(1);
  EXPECT_EQ(c.coherence_misses(), 1u);
}

TEST(Cache, FillLineClearsCoherenceMarkerRegression) {
  // A prefetch fill restores the copy: the next miss (after an eviction)
  // is capacity again, not coherence.
  Cache c(tiny_spec(64 * 4, 4));
  c.access_line(1);
  c.invalidate_line(1);
  c.fill_line(1);                 // copy restored without an access
  EXPECT_TRUE(c.access_line(1));  // hit — no coherence miss
  c.invalidate_all();             // cold cache: compulsory, not coherence
  EXPECT_FALSE(c.access_line(1));
  EXPECT_EQ(c.coherence_misses(), 0u);
}

TEST(Hierarchy, CoherenceMissesCountedAcrossSockets) {
  hw::Topology topo = hw::Topology::synthetic(2, 1, 64 * 128, 64 * 16);
  CacheHierarchy h(topo);
  h.access_line(0, 9);
  h.access_line(1, 9);
  h.access_line(0, 9, /*write=*/true);  // invalidates socket 1's copies
  h.access_line(1, 9);                  // re-fetch: coherence miss (L2+L3)
  EXPECT_EQ(h.totals().coherence_misses, 2u);
  // Socket 1's share: core 1's L2 miss plus its own L3's miss.
  EXPECT_EQ(h.socket_stats(1).coherence_misses, 2u);
  EXPECT_EQ(h.socket_stats(0).coherence_misses, 0u);
}

TEST(Hierarchy, DisjointByteWritersClassifyAsFalseSharing) {
  hw::Topology topo = hw::Topology::synthetic(2, 2, 64 * 128, 64 * 16);
  CacheHierarchy h(topo);
  // Core 0 writes bytes 0..7 of line 0; core 2 (other socket) writes
  // bytes 8..15. Disjoint bytes, same line: false sharing both ways.
  h.access_line(0, 0, /*write=*/true, 0xFFull);
  h.access_line(2, 0, /*write=*/true, 0xFF00ull);  // kills core 0's copy
  LevelStats s = h.totals();
  EXPECT_EQ(s.false_sharing_invalidations, 1u);
  EXPECT_EQ(s.true_sharing_invalidations, 0u);
  EXPECT_EQ(h.core_false_sharing_invalidations(0), 1u);
  // Now core 0 writes the *same* bytes core 2 wrote: true sharing.
  h.access_line(0, 0, /*write=*/true, 0xFF00ull);
  s = h.totals();
  EXPECT_EQ(s.true_sharing_invalidations, 1u);
  EXPECT_EQ(h.core_true_sharing_invalidations(2), 1u);
}

TEST(Hierarchy, DefaultMaskKeepsWholeLineWritersTrueSharing) {
  // Back-compat: callers without byte masks see every conflict as true
  // sharing (whole-line masks always overlap).
  hw::Topology topo = hw::Topology::synthetic(2, 1, 64 * 128, 64 * 16);
  CacheHierarchy h(topo);
  h.access_line(0, 4, /*write=*/true);
  h.access_line(1, 4, /*write=*/true);
  LevelStats s = h.totals();
  EXPECT_EQ(s.true_sharing_invalidations, 1u);
  EXPECT_EQ(s.false_sharing_invalidations, 0u);
}

TEST(Hierarchy, PrefetchedCopyInvalidationIsUntouchedNotSharing) {
  // Fill-not-exclusive regression across the hierarchy: core 0's
  // prefetcher pulls line 1; core 1 then writes line 1. The invalidation
  // must not classify as true *or* false sharing.
  hw::Topology topo = hw::Topology::synthetic(2, 1, 64 * 1024, 64 * 64);
  HierarchyOptions o;
  o.next_line_prefetch = true;
  CacheHierarchy h(topo, o);
  h.access_line(0, 0);  // memory fill; prefetches line 1 for core 0
  ASSERT_EQ(h.directory()->owner(1), -1);
  ASSERT_EQ(h.directory()->sharers(1), 1ull);
  h.access_line(1, 1, /*write=*/true);
  LevelStats s = h.totals();
  EXPECT_GE(s.invalidations, 1u);  // the copy did die...
  EXPECT_EQ(s.true_sharing_invalidations, 0u);   // ...but blamelessly
  EXPECT_EQ(s.false_sharing_invalidations, 0u);
}

TEST(Hierarchy, StreamDerivesByteMasksFromRanges) {
  // The synthetic-workload acceptance shape: 8 writers, one 8-byte slot
  // each. Unpadded they cohabit one line -> false sharing; padded (one
  // line per slot) -> zero sharing invalidations.
  hw::Topology topo = hw::Topology::synthetic(2, 4, 64 * 128, 64 * 16);
  CacheHierarchy unpadded(topo);
  CacheHierarchy padded(topo);
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 8; ++i) {
      Trace tight{{static_cast<std::uint64_t>(i) * 8, 8, 1, true}};
      Trace spaced{{static_cast<std::uint64_t>(i) * 64, 8, 1, true}};
      unpadded.stream(i % topo.total_cores(), tight);
      padded.stream(i % topo.total_cores(), spaced);
    }
  }
  LevelStats u = unpadded.totals();
  LevelStats p = padded.totals();
  EXPECT_GT(u.false_sharing_invalidations, 0u);
  EXPECT_GT(u.coherence_misses, 0u);
  EXPECT_EQ(u.true_sharing_invalidations, 0u);  // slots are disjoint
  EXPECT_EQ(p.false_sharing_invalidations, 0u);
  EXPECT_EQ(p.true_sharing_invalidations, 0u);
  EXPECT_EQ(p.coherence_misses, 0u);
}

TEST(Hierarchy, ResetAndInvalidateAllClearCoherenceState) {
  hw::Topology topo = hw::Topology::synthetic(2, 1, 64 * 128, 64 * 16);
  CacheHierarchy h(topo);
  h.access_line(0, 2, /*write=*/true);
  h.access_line(1, 2, /*write=*/true);
  ASSERT_GT(h.totals().true_sharing_invalidations, 0u);
  h.reset_stats();
  EXPECT_EQ(h.totals().true_sharing_invalidations, 0u);
  h.invalidate_all();
  EXPECT_EQ(h.directory()->sharers(2), 0ull);  // directory went cold too
}

TEST(Metrics, FlushExportsCoherenceCounters) {
  hw::Topology topo = hw::Topology::synthetic(2, 1, 64 * 128, 64 * 16);
  CacheHierarchy h(topo);
  h.access_line(0, 6, /*write=*/true, 0xFFull);
  h.access_line(1, 6, /*write=*/true, 0xFF00ull);  // false sharing
  h.access_line(0, 6);                             // coherence miss

  obs::metrics::Registry reg(topo.total_cores());
  flush_metrics(h, reg);
  const obs::metrics::Snapshot snap = reg.snapshot();
  const auto* coh = snap.find("cachesim.coherence_misses");
  const auto* fs = snap.find("cachesim.false_sharing_invalidations");
  const auto* ts = snap.find("cachesim.true_sharing_invalidations");
  ASSERT_NE(coh, nullptr);
  ASSERT_NE(fs, nullptr);
  ASSERT_NE(ts, nullptr);
  EXPECT_EQ(coh->total, 1);
  EXPECT_EQ(fs->total, 1);
  EXPECT_EQ(ts->total, 0);
  // Per-writer attribution: the victim core owns the classification.
  EXPECT_EQ(fs->per_writer[0], 1);
  // Idempotent sync-point flush.
  flush_metrics(h, reg);
  EXPECT_EQ(reg.snapshot().find("cachesim.coherence_misses")->total, 1);
}

}  // namespace
}  // namespace cab::cachesim
