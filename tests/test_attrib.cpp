// Cycle-accounting attribution invariants: the bucket decomposition is
// exact on hand-built traces, sums to the wall on real runs, the
// cab-attrib-v1 record round-trips byte-stably, ring-buffer tracing keeps
// the newest events with an exact drop count, the realized critical path
// agrees with the DAG-computed bound on a deterministic run, and the
// what-if sweep moves in the causally right direction.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "cachesim/trace.hpp"
#include "dag/generators.hpp"
#include "obs/attrib/attrib.hpp"
#include "obs/attrib/critical_path.hpp"
#include "obs/attrib/whatif.hpp"
#include "obs/timeline.hpp"
#include "runtime/graph_runner.hpp"
#include "runtime/runtime.hpp"

namespace cab::runtime {
namespace {

namespace attrib = obs::attrib;

obs::TraceEvent span(obs::EventKind k, std::uint64_t t0, std::uint64_t t1,
                     std::int32_t a = 0, std::int32_t b = 0) {
  obs::TraceEvent e;
  e.kind = k;
  e.t0 = t0;
  e.t1 = t1;
  e.a = a;
  e.b = b;
  return e;
}

Options traced_options(int sockets, int cores) {
  Options o;
  o.topo = hw::Topology::synthetic(sockets, cores, 1ull << 20);
  o.kind = SchedulerKind::kCab;
  o.boundary_level = 2;
  o.trace = true;
  o.seed = 7;
  return o;
}

void spawn_tree(int depth, std::atomic<int>* leaves) {
  if (depth == 0) {
    volatile double x = 1.0;
    for (int i = 0; i < 15000; ++i) x = x * 1.0000001;
    leaves->fetch_add(1);
    return;
  }
  Runtime::spawn([depth, leaves] { spawn_tree(depth - 1, leaves); });
  Runtime::spawn([depth, leaves] { spawn_tree(depth - 1, leaves); });
  Runtime::sync();
}

void expect_buckets_sum_to_wall(const attrib::Buckets& b) {
  EXPECT_EQ(b.explained() + b.untracked, b.wall);
}

// Hand-built trace where every self-time is computable on paper. Worker 0:
//
//   kTaskExec   [0, 100)  intra task body
//     kSyncWait [40, 60)    blocked at its sync...
//       kStealIntra [45, 50)  ...stealing while blocked
//   kIdle       [100, 120) nothing to do
//     kStealInter [105, 111)  one failed inter round inside the streak
//
// Worker 1 runs a single stolen-from-inter task [10, 50). Events are
// listed in completion order, the order the runtime records them in.
TEST(Attrib, SyntheticTraceDecomposesExactly) {
  obs::Trace t;
  t.sockets = 1;
  t.cores_per_socket = 2;
  t.scheduler = "CAB";
  t.workload = "synthetic";
  t.workers.resize(2);
  t.workers[0].worker = 0;
  t.workers[0].squad = 0;
  t.workers[0].is_head = true;
  t.workers[0].events = {
      span(obs::EventKind::kStealIntra, 45, 50, 1, 0),
      span(obs::EventKind::kSyncWait, 40, 60, 1, 0),
      span(obs::EventKind::kTaskExec, 0, 100, 0, 0),
      span(obs::EventKind::kStealInter, 105, 111, 0, 0),
      span(obs::EventKind::kIdle, 100, 120, 1, 0),
  };
  t.workers[1].worker = 1;
  t.workers[1].squad = 0;
  t.workers[1].events = {
      span(obs::EventKind::kTaskExec, 10, 50, 1, /*inter=*/1),
  };

  const attrib::Attribution a = attrib::attribute(t);
  EXPECT_EQ(a.window_t0, 0u);
  EXPECT_EQ(a.window_t1, 120u);
  ASSERT_EQ(a.workers.size(), 2u);

  const attrib::Buckets& w0 = a.workers[0].b;
  EXPECT_EQ(w0.exec_intra, 80u);   // 100 − 20 (nested sync wait)
  EXPECT_EQ(w0.exec_inter, 0u);
  EXPECT_EQ(w0.steal_intra, 5u);
  EXPECT_EQ(w0.steal_inter, 6u);
  // sync-wait self (20 − 5) + idle self (20 − 6)
  EXPECT_EQ(w0.idle, 29u);
  EXPECT_EQ(w0.untracked, 0u);
  EXPECT_EQ(w0.wall, 120u);
  expect_buckets_sum_to_wall(w0);

  const attrib::Buckets& w1 = a.workers[1].b;
  EXPECT_EQ(w1.exec_inter, 40u);
  EXPECT_EQ(w1.exec_intra, 0u);
  EXPECT_EQ(w1.untracked, 80u);  // charged the same 120 ns window
  EXPECT_EQ(w1.wall, 120u);
  expect_buckets_sum_to_wall(w1);

  // Totals and the single squad are the sum of both workers.
  EXPECT_EQ(a.total.wall, 240u);
  EXPECT_EQ(a.total.exec_intra, 80u);
  EXPECT_EQ(a.total.exec_inter, 40u);
  EXPECT_EQ(a.total.untracked, 80u);
  expect_buckets_sum_to_wall(a.total);
  ASSERT_EQ(a.squads.size(), 1u);
  EXPECT_EQ(a.squads[0].b.wall, a.total.wall);
  EXPECT_EQ(a.squads[0].b.exec(), a.total.exec());
  EXPECT_NEAR(a.explained_share() + a.untracked_share(), 1.0, 1e-12);
}

TEST(Attrib, EmptyTraceYieldsZeroAttribution) {
  obs::Trace t;
  t.sockets = 2;
  t.cores_per_socket = 2;
  t.scheduler = "CAB";
  const attrib::Attribution a = attrib::attribute(t);
  EXPECT_EQ(a.total.wall, 0u);
  EXPECT_EQ(a.window_ns(), 0u);
  EXPECT_DOUBLE_EQ(a.explained_share(), 1.0);  // nothing unexplained
  EXPECT_DOUBLE_EQ(a.untracked_share(), 0.0);
  attrib::Attribution back;
  ASSERT_TRUE(attrib::parse_attrib_json(a.to_json(), back));
  EXPECT_EQ(back.to_json(), a.to_json());
}

TEST(Attrib, RealRunBucketsSumAndRecordRoundTripsByteStably) {
  Runtime rt(traced_options(2, 2));
  std::atomic<int> leaves{0};
  rt.run([&] { spawn_tree(6, &leaves); });
  ASSERT_EQ(leaves.load(), 64);
  obs::Trace t = rt.trace();
  t.workload = "unit-tree";
  ASSERT_GT(t.event_count(), 0u);

  // Runtime::attrib_report() is attribute(trace()) — same trace, same
  // breakdown (workload aside, which the caller stamps on the trace).
  const attrib::Attribution via_rt = rt.attrib_report();
  const attrib::Attribution a = attrib::attribute(t);
  EXPECT_EQ(via_rt.total.wall, a.total.wall);
  EXPECT_EQ(via_rt.total.exec(), a.total.exec());
  ASSERT_EQ(a.workers.size(), 4u);
  attrib::Buckets sum;
  for (const attrib::WorkerAttrib& w : a.workers) {
    expect_buckets_sum_to_wall(w.b);
    EXPECT_EQ(w.b.wall, a.window_ns());
    sum += w.b;
  }
  EXPECT_EQ(sum.wall, a.total.wall);
  EXPECT_EQ(sum.explained(), a.total.explained());
  attrib::Buckets squad_sum;
  for (const attrib::SquadAttrib& s : a.squads) squad_sum += s.b;
  EXPECT_EQ(squad_sum.wall, a.total.wall);
  EXPECT_EQ(squad_sum.untracked, a.total.untracked);

  // A real fork-join run on a working scheduler is mostly explained time;
  // the untracked remainder (spawn costs, clock reads, OS descheduling)
  // stays a minority share even on a loaded host.
  EXPECT_GT(a.explained_share(), 0.5) << a.to_string();

  // Byte-stable record: serialize -> parse -> serialize is the identity.
  const std::string j1 = a.to_json();
  attrib::Attribution back;
  ASSERT_TRUE(attrib::parse_attrib_json(j1, back));
  EXPECT_EQ(back.to_json(), j1);
  EXPECT_EQ(back.workers.size(), a.workers.size());
  EXPECT_EQ(back.total.wall, a.total.wall);
  EXPECT_EQ(back.workload, "unit-tree");

  // Garbage and schema mismatches are rejected, not misparsed.
  EXPECT_FALSE(attrib::parse_attrib_json("{nonsense", back));
  EXPECT_FALSE(attrib::parse_attrib_json("{\"schema\":\"other\"}", back));
}

TEST(Attrib, RingBufferKeepsNewestAndCountsDropsExactly) {
  obs::TimelineBuffer head;
  head.configure(true, 4, 0, /*ring=*/false);
  obs::TimelineBuffer ring;
  ring.configure(true, 4, 0, /*ring=*/true);
  for (std::uint64_t i = 0; i < 10; ++i) {
    head.record(obs::EventKind::kSpawnIntra, i * 10, i * 10,
                static_cast<std::int32_t>(i), 0);
    ring.record(obs::EventKind::kSpawnIntra, i * 10, i * 10,
                static_cast<std::int32_t>(i), 0);
  }
  // Head-keep: the first `capacity` events survive.
  EXPECT_EQ(head.dropped, 6u);
  std::vector<obs::TraceEvent> h = head.snapshot();
  ASSERT_EQ(h.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(h[static_cast<std::size_t>(i)].a, i);
  // Ring: the last `capacity` events survive, in chronological order.
  EXPECT_EQ(ring.dropped, 6u);
  std::vector<obs::TraceEvent> r = ring.snapshot();
  ASSERT_EQ(r.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(r[static_cast<std::size_t>(i)].a, 6 + i);
  }
  // An unwrapped ring snapshots as-is.
  obs::TimelineBuffer small;
  small.configure(true, 8, 0, /*ring=*/true);
  small.record(obs::EventKind::kSpawnIntra, 1, 1, 42, 0);
  EXPECT_EQ(small.dropped, 0u);
  ASSERT_EQ(small.snapshot().size(), 1u);
  EXPECT_EQ(small.snapshot()[0].a, 42);
}

TEST(Attrib, TraceRingOptionWrapsWithChronologicalSnapshot) {
  Options o = traced_options(1, 2);
  o.trace_capacity = 16;
  o.trace_ring = true;
  Runtime rt(o);
  std::atomic<int> leaves{0};
  rt.run([&] { spawn_tree(7, &leaves); });
  ASSERT_EQ(leaves.load(), 128);
  obs::Trace t = rt.trace();
  EXPECT_GT(t.dropped_count(), 0u);
  for (const obs::WorkerTimeline& w : t.workers) {
    EXPECT_LE(w.events.size(), 16u);
    // snapshot() must unroll the ring back to append (completion) order:
    // a worker records events as they finish, so t1 is non-decreasing.
    for (std::size_t i = 1; i < w.events.size(); ++i) {
      EXPECT_GE(w.events[i].t1, w.events[i - 1].t1)
          << "worker " << w.worker << " event " << i;
    }
  }
}

// One worker, uniform-rate arithmetic work: time per node is proportional
// to declared work, so the realized T1/T-inf bound must agree with the
// DAG-computed bound (the ISSUE acceptance asks for within 10%). The
// measurement is deterministic but the host is not — a preempted node
// skews a single run — so the check passes on the best of a few attempts.
TEST(Attrib, RealizedCriticalPathMatchesDagBoundDeterministically) {
  const dag::TaskGraph g =
      dag::make_recursive_dnc(2, 4, 300000, 300000, 300000);
  attrib::RealizedPath rp;
  for (int attempt = 0; attempt < 4; ++attempt) {
    Runtime rt(traced_options(1, 1));
    ASSERT_EQ(run_graph(rt, g), g.size());
    obs::Trace t = rt.trace();
    ASSERT_EQ(t.dropped_count(), 0u);
    rp = attrib::realized_critical_path(t, g);
    if (rp.bound_ratio > 0.9 && rp.bound_ratio < 1.1) break;
  }
  EXPECT_EQ(rp.joined_tasks, g.size());
  EXPECT_EQ(rp.estimated_tasks, 0u);
  EXPECT_GT(rp.realized_t1_ns, 0u);
  EXPECT_GE(rp.realized_t1_ns, rp.realized_tinf_ns);
  EXPECT_GE(rp.speedup_bound, 1.0);
  EXPECT_EQ(rp.dag_t1, g.total_work());
  EXPECT_EQ(rp.dag_tinf, g.critical_path());
  EXPECT_NEAR(rp.bound_ratio, 1.0, 0.1) << rp.to_string();

  // The per-level shares walk one root-to-leaf path: they sum to the
  // realized span and every task level is represented.
  ASSERT_FALSE(rp.levels.empty());
  double share_sum = 0.0;
  std::uint64_t ns_sum = 0;
  for (const attrib::LevelShare& l : rp.levels) {
    EXPECT_GE(l.share, 0.0);
    share_sum += l.share;
    ns_sum += l.ns;
  }
  EXPECT_EQ(ns_sum, rp.realized_tinf_ns);
  EXPECT_NEAR(share_sum, 1.0, 1e-9);
  EXPECT_EQ(rp.levels.size(), static_cast<std::size_t>(g.max_level() + 1));

  // cab-critpath-v1 serializes without throwing and mentions its schema.
  EXPECT_NE(rp.to_json().find("cab-critpath-v1"), std::string::npos);
  EXPECT_FALSE(rp.to_string().empty());
}

// COZ-style causality: virtually halving exec cost must project a faster
// epoch in roughly that proportion, while speeding up stealing on a
// single-worker run (which never steals) must project ~no change.
TEST(Attrib, WhatIfExecSpeedupIsDirectionallyConsistent) {
  Runtime rt(traced_options(1, 1));
  const dag::TaskGraph g =
      dag::make_recursive_dnc(2, 4, 300000, 300000, 300000);
  ASSERT_EQ(run_graph(rt, g), g.size());
  obs::Trace t = rt.trace();

  const attrib::Calibration cal = attrib::calibrate(t, g);
  EXPECT_GT(cal.ns_per_work, 0.0);
  EXPECT_GT(cal.cost.cycles_per_work, 0.0);

  cachesim::TraceStore store;
  const hw::Topology topo = hw::Topology::synthetic(1, 1, 1ull << 20);
  const attrib::WhatIfProfile p =
      attrib::what_if_sweep(g, store, topo, 2, cal, {0.5});
  ASSERT_GT(p.baseline_ns, 0u);
  ASSERT_FALSE(p.entries.empty());

  bool saw_exec = false;
  for (const attrib::WhatIfEntry& e : p.entries) {
    if (e.component == "exec" && e.factor == 0.5) {
      saw_exec = true;
      EXPECT_LT(e.delta, 0.0) << p.to_string();
      const double ratio = static_cast<double>(e.projected_ns) /
                           static_cast<double>(p.baseline_ns);
      // Exec dominates a one-worker replay: halving it lands near half.
      EXPECT_GT(ratio, 0.35) << p.to_string();
      EXPECT_LT(ratio, 0.80) << p.to_string();
    }
    if ((e.component == "steal_intra" || e.component == "steal_inter") &&
        e.factor == 0.5) {
      EXPECT_NEAR(e.delta, 0.0, 0.05) << p.to_string();
    }
  }
  EXPECT_TRUE(saw_exec);
  EXPECT_NE(p.to_json().find("cab-whatif-v1"), std::string::npos);
  EXPECT_FALSE(p.to_string().empty());
}

}  // namespace
}  // namespace cab::runtime
