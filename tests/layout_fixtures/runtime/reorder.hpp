// Fixture: reorder-waste. Alternating char/uint64 members open a 7-byte
// hole behind every char — 70 bytes of padding that a descending-
// alignment repack reclaims (>= one full cache line). The twin carries
// the justification on the struct head.
#pragma once

#include <atomic>
#include <cstdint>

namespace fixture {

struct ReorderWaste {
  std::atomic<std::uint64_t> flag;
  char c0;
  std::uint64_t q0;
  char c1;
  std::uint64_t q1;
  char c2;
  std::uint64_t q2;
  char c3;
  std::uint64_t q3;
  char c4;
  std::uint64_t q4;
  char c5;
  std::uint64_t q5;
  char c6;
  std::uint64_t q6;
  char c7;
  std::uint64_t q7;
  char c8;
  std::uint64_t q8;
  char c9;
  std::uint64_t q9;
};

// order-ok: fixture twin — declaration order mirrors the serialization
// format this struct is memcpy'd from; the padding is the price.
struct ReorderJustified {
  std::atomic<std::uint64_t> flag;
  char c0;
  std::uint64_t q0;
  char c1;
  std::uint64_t q1;
  char c2;
  std::uint64_t q2;
  char c3;
  std::uint64_t q3;
  char c4;
  std::uint64_t q4;
  char c5;
  std::uint64_t q5;
  char c6;
  std::uint64_t q6;
  char c7;
  std::uint64_t q7;
  char c8;
  std::uint64_t q8;
  char c9;
  std::uint64_t q9;
};

}  // namespace fixture
