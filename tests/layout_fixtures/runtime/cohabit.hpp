// Fixture: hot-cohabit. Two independently written atomics on one line —
// the textbook false-sharing layout the cachesim directory classifies
// dynamically (false_sharing_invalidations). The twin justifies the
// sharing on one of the two fields (either side suppresses).
#pragma once

#include <atomic>

namespace fixture {

struct CohabitHot {
  std::atomic<int> a;
  std::atomic<int> b;
};

struct CohabitJustified {
  std::atomic<int> a;
  // share-ok: fixture twin — both counters are written by the same
  // owner thread, so cohabiting costs nothing.
  std::atomic<int> b;
};

}  // namespace fixture
