// Fixture: tail-shared. `head` buys a whole line with alignas(64), then
// `cap` moves onto that very line — the isolation leaks out the back.
// The twin justifies the tail share on the trailing field.
#pragma once

#include <atomic>
#include <cstdint>

namespace fixture {

struct TailShared {
  alignas(64) std::atomic<std::uint32_t> head;
  std::uint32_t cap;
};

struct TailJustified {
  alignas(64) std::atomic<std::uint32_t> head;
  // tail-ok: fixture twin — cap is written once at construction and
  // read-only afterwards, so it cannot invalidate head's line.
  std::uint32_t cap;
};

}  // namespace fixture
