// Fixture: hot-straddle. `mu` starts at offset 32 and is 40 bytes wide
// (modeled libstdc++ std::mutex), so bytes 32..72 cross the line-64
// boundary — every lock/unlock dirties two lines. The twin below carries
// the justification escape and must NOT be reported.
#pragma once

#include <cstdint>
#include <mutex>

namespace fixture {

struct StraddleHot {
  std::uint64_t warm[4];
  std::mutex mu;
};

struct StraddleJustified {
  std::uint64_t warm[4];
  // straddle-ok: fixture twin — proves the attached-comment escape
  // hatch suppresses the finding.
  std::mutex mu;
};

}  // namespace fixture
