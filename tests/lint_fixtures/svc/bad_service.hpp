// Fixture: service-layer violations of the hot-path rules, now that
// svc/ is in cab_lint's hot set. Expected findings:
//   - hot-field-padding at inflight_ (unpadded atomic admission counter)
//   - seq-cst-justify   at the fetch_add in submit()
#pragma once

#include <atomic>
#include <cstdint>

namespace fixture {

class BadService {
 public:
  std::uint64_t submit() {
    return inflight_.fetch_add(1, std::memory_order_seq_cst);
  }
  void finish() { inflight_.fetch_sub(1, std::memory_order_acq_rel); }

 private:
  std::atomic<std::uint64_t> inflight_{0};
};

}  // namespace fixture
