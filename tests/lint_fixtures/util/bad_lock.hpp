// Fixture: unpadded atomic member in a util header, plus a seq_cst
// exchange with no written-down ordering argument. Expected findings:
//   - hot-field-padding at flag_
//   - seq-cst-justify   at the exchange in lock()
#pragma once

#include <atomic>

namespace fixture {

class BadLock {
 public:
  void lock() {
    while (flag_.exchange(true, std::memory_order_seq_cst)) {
    }
  }
  void unlock() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

}  // namespace fixture
