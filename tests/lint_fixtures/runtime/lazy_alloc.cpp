// Fixture: lazy-spawn fast-path allocations in a runtime translation
// unit. Expected findings:
//   - no-hot-path-alloc at the naked `new LazyFrame` (no `alloc-ok:`)
//   - no-hot-path-alloc at the raw `::operator new` (no `alloc-ok:`)

namespace fixture {

struct LazyFrame {
  int state = 0;
};

LazyFrame* spawn_without_a_slot() {
  return new LazyFrame();
}

void* carve_without_justification(unsigned long bytes) {
  return ::operator new(bytes);
}

void* carve_like_the_lazy_stack_does(unsigned long bytes) {
  // alloc-ok: one-time slot-array carve, amortized over every lazy
  // spawn; this one must NOT be flagged.
  return ::operator new(bytes);
}

LazyFrame* boxed_fallback() {
  // alloc-ok: boxed oversize callable twin; this one must NOT be flagged.
  return new LazyFrame();
}

}  // namespace fixture
