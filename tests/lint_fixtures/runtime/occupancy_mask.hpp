// Fixture: occupancy-mask-style structs pinning the hot-field-padding
// matcher's alignas placements. Expected findings (2):
//   - hot-field-padding at bare_bits_ (no alignas anywhere, no `pad-ok:`)
//   - hot-field-padding at also_bare_ (sibling of a padded member in an
//     unpadded struct — the neighbour's alignas must not leak onto it)
#pragma once

#include <atomic>
#include <cstdint>

namespace fixture {

struct BadMask {
  std::atomic<std::uint64_t> bare_bits_{0};
};

// Struct-level alignas pads the whole aggregate (the occupancy-mask
// shape: one hot word per instance) — this one must NOT be flagged.
struct alignas(64) StructAlignedMask {
  std::atomic<std::uint64_t> bits_{0};
};

struct SplitDeclMask {
  // Declaration spans two lines, alignas on the first — the member line
  // itself has no `alignas` token but must NOT be flagged.
  alignas(64)
      std::atomic<std::uint64_t> bits_{0};

  std::atomic<std::uint64_t> also_bare_{0};
};

}  // namespace fixture
