// Fixture: blocking calls in a worker-loop translation unit. Expected
// findings:
//   - worker-blocking at the sleep_for (no `blocking-ok:` comment)
//   - worker-blocking at the cv.wait
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace fixture {

std::mutex mu;
std::condition_variable cv;
bool ready = false;

void drain_loop() {
  while (!ready) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::unique_lock<std::mutex> lk(mu);
  cv.wait(lk, [] { return ready; });
}

void park_between_epochs() {
  std::unique_lock<std::mutex> lk(mu);
  // blocking-ok: parked outside the drain loop waiting for the next
  // epoch; this one must NOT be flagged.
  cv.wait(lk, [] { return ready; });
}

}  // namespace fixture
