// Fixture: frame allocation outside the pool in a runtime translation
// unit. Expected findings:
//   - no-hot-path-alloc at the naked `new TaskFrame` (no `alloc-ok:`)
//   - no-hot-path-alloc at the naked `delete` (no `alloc-ok:`)

namespace fixture {

struct TaskFrame {
  TaskFrame* parent = nullptr;
};

TaskFrame* spawn_like_the_seed_did() {
  return new TaskFrame();
}

void finish_like_the_seed_did(TaskFrame* t) {
  delete t;
}

void ablation_path(bool frame_pool, TaskFrame* t) {
  if (!frame_pool) {
    // alloc-ok: --frame-pool=off ablation; this one must NOT be flagged.
    delete t;
  }
}

// Deleted functions and allocation-function names are structure, not
// deallocation — none of these may be flagged.
struct NotAFrame {
  NotAFrame(const NotAFrame&) = delete;
  NotAFrame& operator=(const NotAFrame&) = delete;
  static void operator delete(void* p) noexcept;
};

}  // namespace fixture
