// Fixture: hot-path header with unjustified orderings and unpadded
// atomic members. Expected findings:
//   - seq-cst-justify   at the fence below (no `seq_cst:` comment)
//   - hot-field-padding at top_ (no alignas, no `pad-ok:` comment)
#pragma once

#include <atomic>

namespace fixture {

struct BadDeque {
  void fence_without_reason() {
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }

  void fence_with_reason() {
    // seq_cst: justified — this one must NOT be flagged.
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }

  std::atomic<long> top_{0};

  // pad-ok: single-writer field, false sharing is impossible here; this
  // one must NOT be flagged.
  std::atomic<long> bottom_{0};
};

}  // namespace fixture
