#include <gtest/gtest.h>

#include <initializer_list>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "util/args.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"
#include "util/spin_lock.hpp"

namespace cab::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Xorshift64 a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xorshift64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowStaysInRange) {
  Xorshift64 rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 7ull, 100ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Xorshift64 rng(99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Xorshift64 rng(3);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, SplitmixAdvancesState) {
  std::uint64_t s = 0;
  std::uint64_t a = splitmix64(s);
  std::uint64_t b = splitmix64(s);
  EXPECT_NE(a, b);
  EXPECT_NE(s, 0u);
}

TEST(Format, HumanBytes) {
  EXPECT_EQ(human_bytes(17), "17 B");
  EXPECT_EQ(human_bytes(512ull << 10), "512.0 KiB");
  EXPECT_EQ(human_bytes(6ull << 20), "6.0 MiB");
  EXPECT_EQ(human_bytes(3ull << 30), "3.0 GiB");
}

TEST(Format, HumanCount) {
  EXPECT_EQ(human_count(0), "0");
  EXPECT_EQ(human_count(999), "999");
  EXPECT_EQ(human_count(1000), "1,000");
  EXPECT_EQ(human_count(1234567), "1,234,567");
  EXPECT_EQ(human_count(12345678), "12,345,678");
}

TEST(Format, FormatFixed) {
  EXPECT_EQ(format_fixed(0.6875, 3), "0.688");
  EXPECT_EQ(format_fixed(68.7, 1), "68.7");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
}

TEST(Format, TablePrinterAlignsColumns) {
  TablePrinter t({"name", "Cilk", "CAB"});
  t.add_row({"GE", "4203604", "2617207"});
  t.add_row({"SOR", "14134418", "10863876"});
  std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("GE"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("-+-"), std::string::npos);
  // All lines equal length (alignment).
  std::size_t first_nl = s.find('\n');
  ASSERT_NE(first_nl, std::string::npos);
}

TEST(Format, TablePrinterPadsShortRows) {
  TablePrinter t({"a", "b"});
  t.add_row({"only-one"});
  EXPECT_NE(t.to_string().find("only-one"), std::string::npos);
}

TEST(Format, HumanBytesBoundaries) {
  EXPECT_EQ(human_bytes(0), "0 B");
  EXPECT_EQ(human_bytes(1023), "1023 B");
  EXPECT_EQ(human_bytes(1024), "1.0 KiB");
  EXPECT_EQ(human_bytes((1ull << 20) + (1ull << 19)), "1.5 MiB");
}

TEST(Format, FormatFixedNegativeAndZero) {
  EXPECT_EQ(format_fixed(-1.25, 2), "-1.25");
  EXPECT_EQ(format_fixed(0.0, 1), "0.0");
}

/// Owning fake argv for the args:: helpers (argv[0] is the program name).
struct Argv {
  std::vector<std::string> store;
  std::vector<char*> ptrs;
  Argv(std::initializer_list<std::string> a) : store(a) {
    for (std::string& s : store) ptrs.push_back(s.data());
  }
  int argc() { return static_cast<int>(ptrs.size()); }
  char** argv() { return ptrs.data(); }
};

TEST(Args, ValueAcceptsBothFormsFirstWins) {
  Argv v{"prog", "--trace=a.json", "--trace", "b.json", "--seed", "9"};
  EXPECT_EQ(args::value(v.argc(), v.argv(), "trace"), "a.json");
  EXPECT_EQ(args::value(v.argc(), v.argv(), "seed"), "9");
  EXPECT_EQ(args::value(v.argc(), v.argv(), "absent"), "");
}

TEST(Args, ValuesCollectsEveryOccurrenceInOrder) {
  Argv v{"prog", "--threshold=5", "--threshold", "mean=2", "--threshold=p95=9"};
  const std::vector<std::string> got =
      args::values(v.argc(), v.argv(), "threshold");
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], "5");
  EXPECT_EQ(got[1], "mean=2");
  EXPECT_EQ(got[2], "p95=9");
}

TEST(Args, EqValueIgnoresBareAndSpaceForms) {
  // --attrib is meaningful bare; the space form must NOT swallow the next
  // flag as its value (the hazard eq_value exists to avoid).
  Argv bare{"prog", "--attrib", "--json=x"};
  EXPECT_EQ(args::eq_value(bare.argc(), bare.argv(), "attrib"), "");
  EXPECT_TRUE(args::has_flag(bare.argc(), bare.argv(), "attrib"));
  Argv eq{"prog", "--attrib=out.json"};
  EXPECT_EQ(args::eq_value(eq.argc(), eq.argv(), "attrib"), "out.json");
  EXPECT_TRUE(args::has_flag(eq.argc(), eq.argv(), "attrib"));
}

TEST(Args, PositionalsSkipValuesOfKnownFlags) {
  const std::vector<args::FlagSpec> known = {{"trace", true},
                                             {"verbose", false}};
  Argv v{"prog", "in.json", "--trace", "t.json", "--verbose", "out.json"};
  const std::vector<std::string> pos =
      args::positionals(v.argc(), v.argv(), known);
  ASSERT_EQ(pos.size(), 2u);
  EXPECT_EQ(pos[0], "in.json");
  EXPECT_EQ(pos[1], "out.json");
}

TEST(Args, FirstUnknownCatchesTyposButSkipsKnownValues) {
  const std::vector<args::FlagSpec> known = {{"json", true}, {"warn", false}};
  Argv ok{"prog", "--json", "out", "--warn", "positional"};
  EXPECT_EQ(args::first_unknown(ok.argc(), ok.argv(), known), "");
  Argv typo{"prog", "--json=x", "--wran"};
  EXPECT_EQ(args::first_unknown(typo.argc(), typo.argv(), known), "--wran");
  // "--jsonx" is not "--json": prefix matching must not accept it.
  Argv prefix{"prog", "--jsonx=y"};
  EXPECT_EQ(args::first_unknown(prefix.argc(), prefix.argv(), known),
            "--jsonx=y");
}

TEST(Args, ParseDurationAcceptsEveryUnit) {
  std::uint64_t ns = 0;
  EXPECT_TRUE(args::parse_duration("250ns", ns));
  EXPECT_EQ(ns, 250u);
  EXPECT_TRUE(args::parse_duration("10us", ns));
  EXPECT_EQ(ns, 10'000u);
  EXPECT_TRUE(args::parse_duration("5ms", ns));
  EXPECT_EQ(ns, 5'000'000u);
  EXPECT_TRUE(args::parse_duration("10s", ns));
  EXPECT_EQ(ns, 10'000'000'000u);
  EXPECT_TRUE(args::parse_duration("2m", ns));
  EXPECT_EQ(ns, 120'000'000'000u);
  EXPECT_TRUE(args::parse_duration("1.5s", ns));
  EXPECT_EQ(ns, 1'500'000'000u);
  EXPECT_TRUE(args::parse_duration("0s", ns));
  EXPECT_EQ(ns, 0u);
}

TEST(Args, ParseDurationRejectsBareNumbersAndUnknownSuffixes) {
  std::uint64_t ns = 777;
  // The unit is load-bearing: a bare number hides a 1000x ambiguity.
  EXPECT_FALSE(args::parse_duration("10", ns));
  EXPECT_FALSE(args::parse_duration("10sec", ns));
  EXPECT_FALSE(args::parse_duration("10 s", ns));
  EXPECT_FALSE(args::parse_duration("10h", ns));   // not a supported unit
  EXPECT_FALSE(args::parse_duration("-5ms", ns));  // negative
  EXPECT_FALSE(args::parse_duration("ms", ns));    // no number
  EXPECT_FALSE(args::parse_duration("", ns));
  EXPECT_EQ(ns, 777u);  // rejected parses leave the output untouched
}

TEST(Args, ParseRateAcceptsBareAndCountedDenominators) {
  double r = 0;
  EXPECT_TRUE(args::parse_rate("5000/s", r));
  EXPECT_DOUBLE_EQ(r, 5000.0);
  EXPECT_TRUE(args::parse_rate("300/m", r));
  EXPECT_DOUBLE_EQ(r, 5.0);
  EXPECT_TRUE(args::parse_rate("2.5/ms", r));
  EXPECT_DOUBLE_EQ(r, 2500.0);
  EXPECT_TRUE(args::parse_rate("10/10s", r));  // counted denominator
  EXPECT_DOUBLE_EQ(r, 1.0);
}

TEST(Args, ParseRateRejectsMalformedSpecs) {
  double r = 99.0;
  EXPECT_FALSE(args::parse_rate("5000", r));    // no denominator
  EXPECT_FALSE(args::parse_rate("/s", r));      // no numerator
  EXPECT_FALSE(args::parse_rate("5000/", r));   // empty denominator
  EXPECT_FALSE(args::parse_rate("5000/sec", r));  // unknown unit
  EXPECT_FALSE(args::parse_rate("5000/0s", r));   // zero denominator
  EXPECT_FALSE(args::parse_rate("-1/s", r));      // negative rate
  EXPECT_FALSE(args::parse_rate("5x/s", r));      // junk after number
  EXPECT_DOUBLE_EQ(r, 99.0);  // untouched on rejection
}

TEST(SpinLock, MutualExclusionUnderContention) {
  SpinLock lock;
  std::int64_t counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        std::lock_guard<SpinLock> g(lock);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<std::int64_t>(kThreads) * kIters);
}

TEST(SpinLock, TryLockReflectsState) {
  SpinLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

}  // namespace
}  // namespace cab::util
