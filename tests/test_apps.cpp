#include <gtest/gtest.h>

#include <cstdlib>

#include "apps/ck.hpp"
#include "apps/cholesky.hpp"
#include "apps/fft.hpp"
#include "apps/ge.hpp"
#include "apps/heat.hpp"
#include "apps/mergesort.hpp"
#include "apps/queens.hpp"
#include "apps/registry.hpp"
#include "apps/sor.hpp"

namespace cab::apps {
namespace {

runtime::Options small_cab() {
  runtime::Options o;
  o.topo = hw::Topology::synthetic(2, 2, 1ull << 20);
  o.kind = runtime::SchedulerKind::kCab;
  o.boundary_level = 2;
  return o;
}

runtime::Options small_random() {
  runtime::Options o = small_cab();
  o.kind = runtime::SchedulerKind::kRandomStealing;
  o.boundary_level = 0;
  return o;
}

// ---------------------------------------------------------------------------
// Correctness: parallel == serial on the threaded runtime.

TEST(Heat, ParallelMatchesSerial) {
  HeatParams p;
  p.rows = 96;
  p.cols = 64;
  p.steps = 4;
  p.leaf_rows = 16;
  const double expected = run_heat_serial(p);
  runtime::Runtime cab_rt(small_cab());
  EXPECT_DOUBLE_EQ(run_heat(cab_rt, p), expected);
  runtime::Runtime rnd_rt(small_random());
  EXPECT_DOUBLE_EQ(run_heat(rnd_rt, p), expected);
}

TEST(Sor, ParallelMatchesSerial) {
  SorParams p;
  p.rows = 80;
  p.cols = 64;
  p.iterations = 3;
  p.leaf_rows = 16;
  const double expected = run_sor_serial(p);
  runtime::Runtime rt(small_cab());
  // Red-black half-sweeps only read/write disjoint colors, so the parallel
  // row partition is race-free and bitwise deterministic.
  EXPECT_DOUBLE_EQ(run_sor(rt, p), expected);
}

TEST(Ge, ParallelMatchesSerial) {
  GeParams p;
  p.n = 96;
  p.leaf_rows = 16;
  const double expected = run_ge_serial(p);
  runtime::Runtime rt(small_cab());
  EXPECT_DOUBLE_EQ(run_ge(rt, p), expected);
}

TEST(Mergesort, SortsCorrectly) {
  MergesortParams p;
  p.n = 40000;
  p.leaf_elems = 1024;
  runtime::Runtime rt(small_cab());
  EXPECT_TRUE(run_mergesort(rt, p));
  runtime::Runtime rnd(small_random());
  EXPECT_TRUE(run_mergesort(rnd, p));
}

TEST(Queens, CountsMatchKnownValuesAndSerial) {
  // Known N-queens counts: 8 -> 92, 9 -> 352, 10 -> 724.
  QueensParams p;
  p.n = 8;
  p.spawn_depth = 3;
  EXPECT_EQ(run_queens_serial(p), 92u);
  runtime::Runtime rt(small_cab());
  EXPECT_EQ(run_queens(rt, p), 92u);
  p.n = 10;
  EXPECT_EQ(run_queens_serial(p), 724u);
  runtime::Runtime rt2(small_cab());
  EXPECT_EQ(run_queens(rt2, p), 724u);
}

TEST(Queens, FirstSolutionIsValid) {
  QueensParams p;
  p.n = 20;  // Table III's "Queens(20)" — feasible as first-solution search
  p.spawn_depth = 3;
  runtime::Runtime rt(small_cab());
  std::vector<std::int32_t> sol = run_queens_first(rt, p);
  ASSERT_EQ(sol.size(), 20u);
  for (std::size_t i = 0; i < sol.size(); ++i) {
    for (std::size_t j = i + 1; j < sol.size(); ++j) {
      EXPECT_NE(sol[i], sol[j]);  // distinct columns
      EXPECT_NE(std::abs(sol[i] - sol[j]),
                static_cast<std::int32_t>(j - i));  // no diagonal attacks
    }
  }
}

TEST(Queens, FirstSolutionEmptyWhenNoneExists) {
  QueensParams p;
  p.n = 3;  // 3-queens has no solution
  p.spawn_depth = 2;
  runtime::Runtime rt(small_cab());
  EXPECT_TRUE(run_queens_first(rt, p).empty());
}

TEST(Fft, RoundTripErrorTiny) {
  FftParams p;
  p.n = 1 << 12;
  p.leaf_elems = 256;
  EXPECT_LT(run_fft_roundtrip_serial(p), 1e-9);
  runtime::Runtime rt(small_cab());
  EXPECT_LT(run_fft_roundtrip(rt, p), 1e-9);
}

TEST(Cholesky, FactorizationReconstructsA) {
  CholeskyParams p;
  p.n = 128;
  p.tile = 32;
  EXPECT_LT(run_cholesky_serial(p), 1e-8);
  runtime::Runtime rt(small_cab());
  EXPECT_LT(run_cholesky(rt, p), 1e-8);
}

TEST(Ck, ParallelMatchesSerialMinimax) {
  CkParams p;
  p.depth = 6;
  p.spawn_depth = 2;
  const std::int32_t expected = run_ck_serial(p);
  runtime::Runtime rt(small_cab());
  EXPECT_EQ(run_ck(rt, p), expected);
  runtime::Runtime rnd(small_random());
  EXPECT_EQ(run_ck(rnd, p), expected);
}

// ---------------------------------------------------------------------------
// Simulator models: structure and bookkeeping.

TEST(HeatDag, ShapeMatchesPaperExample) {
  // Fig. 1 scale-up: one step, 8 leaves -> levels 0..4.
  HeatParams p;
  p.rows = 1024;
  p.cols = 512;
  p.steps = 1;
  p.leaf_rows = 128;
  DagBundle b = build_heat_dag(p);
  EXPECT_TRUE(b.graph.validate());
  EXPECT_EQ(b.graph.max_level(), 4);
  EXPECT_EQ(b.graph.count_at_level(4), 8u);
  EXPECT_EQ(b.branching, 2);
  EXPECT_EQ(b.input_bytes, 1024ull * 512 * 8);
  EXPECT_EQ(b.graph.node(b.graph.root()).sequential, true);
}

TEST(HeatDag, StepsAddSequentialPhases) {
  HeatParams p;
  p.rows = 256;
  p.cols = 64;
  p.steps = 5;
  p.leaf_rows = 64;
  DagBundle b = build_heat_dag(p);
  EXPECT_EQ(b.graph.node(b.graph.root()).children.size(), 5u);
}

TEST(SorDag, TwoPhasesPerIteration) {
  SorParams p;
  p.rows = 130;
  p.cols = 64;
  p.iterations = 3;
  p.leaf_rows = 32;
  DagBundle b = build_sor_dag(p);
  EXPECT_TRUE(b.graph.validate());
  EXPECT_EQ(b.graph.node(b.graph.root()).children.size(), 6u);
}

TEST(GeDag, PanelsCoverAllPivots) {
  GeParams p;
  p.n = 64;
  p.leaf_rows = 8;
  DagBundle b = build_ge_dag(p, /*pivots_per_phase=*/8);
  EXPECT_TRUE(b.graph.validate());
  // ceil(63 / 8) = 8 panel phases.
  EXPECT_EQ(b.graph.node(b.graph.root()).children.size(), 8u);
  EXPECT_GT(b.graph.total_work(), 0u);
}

TEST(MergesortDag, TreeWithMergePosts) {
  MergesortParams p;
  p.n = 1 << 16;
  p.leaf_elems = 1 << 12;
  DagBundle b = build_mergesort_dag(p);
  EXPECT_TRUE(b.graph.validate());
  // 16 leaves + 15 internal merge nodes + root.
  EXPECT_EQ(b.graph.size(), 32u);
  std::size_t with_post = 0;
  for (std::size_t i = 0; i < b.graph.size(); ++i)
    if (b.graph.node(static_cast<dag::NodeId>(i)).post_trace >= 0)
      ++with_post;
  EXPECT_EQ(with_post, 15u);
}

TEST(QueensDag, LeafWorkReflectsSubtreeSizes) {
  QueensParams p;
  p.n = 8;
  p.spawn_depth = 2;
  DagBundle b = build_queens_dag(p);
  EXPECT_TRUE(b.graph.validate());
  EXPECT_GT(b.graph.size(), 8u);
  // Total leaf work must dominate divide work (CPU-bound leaves).
  std::uint64_t leaf_work = 0, divide_work = 0;
  for (std::size_t i = 0; i < b.graph.size(); ++i) {
    const auto& n = b.graph.node(static_cast<dag::NodeId>(i));
    if (n.children.empty()) leaf_work += n.pre_work;
    else divide_work += n.pre_work;
  }
  EXPECT_GT(leaf_work, 20 * divide_work);
}

TEST(FftDag, PowerOfTwoTree) {
  FftParams p;
  p.n = 1 << 14;
  p.leaf_elems = 1 << 11;
  DagBundle b = build_fft_dag(p);
  EXPECT_TRUE(b.graph.validate());
  EXPECT_EQ(b.graph.count_at_level(b.graph.max_level()), 8u);
}

TEST(CholeskyDag, SequentialPhasesPerTileColumn) {
  CholeskyParams p;
  p.n = 256;
  p.tile = 64;
  DagBundle b = build_cholesky_dag(p);
  EXPECT_TRUE(b.graph.validate());
  EXPECT_EQ(b.graph.node(b.graph.root()).children.size(), 4u);  // 4 phases
}

TEST(CkDag, IrregularGameTree) {
  CkParams p;
  p.depth = 5;
  p.spawn_depth = 2;
  DagBundle b = build_ck_dag(p);
  EXPECT_TRUE(b.graph.validate());
  EXPECT_GT(b.graph.size(), 10u);
}

// ---------------------------------------------------------------------------
// Full matrix: every Table III benchmark, on every scheduler, verified.

struct MatrixCase {
  std::string app;
  runtime::SchedulerKind kind;
};

void PrintTo(const MatrixCase& c, std::ostream* os) {
  *os << c.app << "/" << to_string(c.kind);
}

class AppSchedulerMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(AppSchedulerMatrix, SmallConfigProducesCorrectResult) {
  const MatrixCase& c = GetParam();
  runtime::Options o;
  o.topo = hw::Topology::synthetic(2, 2, 1ull << 20);
  o.kind = c.kind;
  o.boundary_level = c.kind == runtime::SchedulerKind::kCab ? 2 : 0;
  runtime::Runtime rt(o);

  if (c.app == "heat") {
    HeatParams p;
    p.rows = 64;
    p.cols = 64;
    p.steps = 3;
    p.leaf_rows = 16;
    EXPECT_DOUBLE_EQ(run_heat(rt, p), run_heat_serial(p));
  } else if (c.app == "sor") {
    SorParams p;
    p.rows = 64;
    p.cols = 64;
    p.iterations = 2;
    p.leaf_rows = 16;
    EXPECT_DOUBLE_EQ(run_sor(rt, p), run_sor_serial(p));
  } else if (c.app == "ge") {
    GeParams p;
    p.n = 64;
    p.leaf_rows = 16;
    EXPECT_DOUBLE_EQ(run_ge(rt, p), run_ge_serial(p));
  } else if (c.app == "mergesort") {
    MergesortParams p;
    p.n = 10000;
    p.leaf_elems = 512;
    EXPECT_TRUE(run_mergesort(rt, p));
  } else if (c.app == "queens") {
    QueensParams p;
    p.n = 9;
    p.spawn_depth = 3;
    EXPECT_EQ(run_queens(rt, p), 352u);  // known count for n=9
  } else if (c.app == "fft") {
    FftParams p;
    p.n = 1 << 10;
    p.leaf_elems = 128;
    EXPECT_LT(run_fft_roundtrip(rt, p), 1e-10);
  } else if (c.app == "cholesky") {
    CholeskyParams p;
    p.n = 64;
    p.tile = 16;
    EXPECT_LT(run_cholesky(rt, p), 1e-9);
  } else if (c.app == "ck") {
    CkParams p;
    p.depth = 5;
    p.spawn_depth = 2;
    EXPECT_EQ(run_ck(rt, p), run_ck_serial(p));
  } else {
    FAIL() << "unknown app " << c.app;
  }
}

std::vector<MatrixCase> matrix_cases() {
  std::vector<MatrixCase> cases;
  for (const auto& e : app_registry()) {
    for (auto kind : {runtime::SchedulerKind::kCab,
                      runtime::SchedulerKind::kRandomStealing,
                      runtime::SchedulerKind::kTaskSharing}) {
      cases.push_back({e.name, kind});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllAppsAllSchedulers, AppSchedulerMatrix,
                         ::testing::ValuesIn(matrix_cases()));

TEST(Registry, AllEightBenchmarksPresent) {
  const auto& reg = app_registry();
  ASSERT_EQ(reg.size(), 8u);
  int memory_bound = 0;
  for (const auto& e : reg)
    if (e.memory_bound) ++memory_bound;
  EXPECT_EQ(memory_bound, 4);  // heat, mergesort, sor, ge (Table III)
}

TEST(Registry, BuildAppByName) {
  DagBundle b = build_app("mergesort");
  EXPECT_EQ(b.name, "mergesort");
  EXPECT_TRUE(b.graph.validate());
}

}  // namespace
}  // namespace cab::apps
