#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/timeline.hpp"
#include "runtime/runtime.hpp"
#include "svc/service.hpp"

namespace cab::svc {
namespace {

ServiceOptions make_opts(int sockets, int cores, std::size_t queue,
                         Backpressure bp = Backpressure::kReject) {
  ServiceOptions o;
  o.runtime.topo = hw::Topology::synthetic(sockets, cores, 1ull << 20);
  o.runtime.seed = 7;
  o.queue_capacity = queue;
  o.backpressure = bp;
  return o;
}

/// A gate jobs can block on, to hold executors busy deterministically.
struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  std::atomic<int> waiting{0};

  // blocking-ok in a job body: jobs may block, workers do not.
  void wait_open() {
    ++waiting;
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return open; });
  }
  void open_up() {
    std::lock_guard<std::mutex> lk(mu);
    open = true;
    cv.notify_all();
  }
  void wait_waiters(int n) {
    while (waiting.load() < n) std::this_thread::yield();
  }
};

JobDesc job(std::function<void()> body, int squads = 1, int tier = 0) {
  JobDesc d;
  d.body = std::move(body);
  d.squads = squads;
  d.tier = tier;
  return d;
}

// ---------------------------------------------------------------------
// TieredQueue (deterministic unit tests; the clock is an argument).

std::shared_ptr<detail::JobRecord> rec(int tier, std::uint64_t seq,
                                       std::uint64_t submit_ns) {
  auto r = std::make_shared<detail::JobRecord>();
  r->tier = tier;
  r->seq = seq;
  r->submit_ns = submit_ns;
  return r;
}

TEST(TieredQueue, PopsLowestTierThenFifo) {
  TieredQueue q(8, /*cooldown=*/0);  // cooldown 0: declared tiers ignored
  q.push(rec(3, 0, 0));
  q.push(rec(0, 1, 0));
  q.push(rec(1, 2, 0));
  // FIFO when tiering is disabled.
  EXPECT_EQ(q.pop_best(10)->seq, 0u);
  EXPECT_EQ(q.pop_best(10)->seq, 1u);
  EXPECT_EQ(q.pop_best(10)->seq, 2u);
  EXPECT_EQ(q.pop_best(10), nullptr);
}

TEST(TieredQueue, StrictPriorityBetweenTiers) {
  TieredQueue q(8, /*cooldown=*/1'000'000);
  q.push(rec(2, 0, 0));
  q.push(rec(0, 1, 0));
  q.push(rec(0, 2, 0));
  q.push(rec(1, 3, 0));
  // At now=0 nothing has aged: tier 0 jobs first (FIFO), then 1, then 2.
  EXPECT_EQ(q.pop_best(0)->seq, 1u);
  EXPECT_EQ(q.pop_best(0)->seq, 2u);
  EXPECT_EQ(q.pop_best(0)->seq, 3u);
  EXPECT_EQ(q.pop_best(0)->seq, 0u);
}

TEST(TieredQueue, CooldownPromotesAgedJobs) {
  const std::uint64_t kCooldown = 1'000'000;
  TieredQueue q(8, kCooldown);
  auto old_low = rec(2, 0, 0);          // tier 2, submitted at t=0
  auto fresh_high = rec(0, 1, kCooldown * 2);  // tier 0, submitted later
  q.push(old_low);
  q.push(fresh_high);
  // After 2 cooldowns the tier-2 job is effective tier 0 and wins on seq.
  const std::uint64_t now = kCooldown * 2;
  EXPECT_EQ(q.effective_tier(*old_low, now), 0);
  EXPECT_EQ(q.effective_tier(*fresh_high, now), 0);
  EXPECT_EQ(q.pop_best(now)->seq, 0u);
  // Promotion floors at 0, never goes negative.
  EXPECT_EQ(q.effective_tier(*fresh_high, kCooldown * 100), 0);
}

TEST(TieredQueue, RemoveOnlyFindsQueuedRecords) {
  TieredQueue q(4, 0);
  auto a = rec(0, 0, 0);
  q.push(a);
  EXPECT_TRUE(q.remove(a.get()));
  EXPECT_FALSE(q.remove(a.get()));  // already gone
  EXPECT_TRUE(q.empty());
}

// ---------------------------------------------------------------------
// SquadAllocator.

TEST(SquadAllocator, GrantsLowestFreeIdsAndShrinksUnderPressure) {
  SquadAllocator a(4);
  EXPECT_EQ(a.free_count(), 4);
  const std::vector<int> p1 = a.acquire(2);
  EXPECT_EQ(p1, (std::vector<int>{0, 1}));
  // want=4 but only 2 free: degrade, don't wait.
  const std::vector<int> p2 = a.acquire(4);
  EXPECT_EQ(p2, (std::vector<int>{2, 3}));
  // Exhausted: empty grant.
  EXPECT_TRUE(a.acquire(1).empty());
  a.release(p1);
  EXPECT_EQ(a.free_count(), 2);
  // want<1 is treated as 1.
  EXPECT_EQ(a.acquire(0), (std::vector<int>{0}));
}

// ---------------------------------------------------------------------
// JobService end-to-end.

TEST(JobService, SingleJobRunsAndCompletes) {
  JobService svc(make_opts(2, 2, 8));
  std::atomic<int> ran{0};
  JobTicket t = svc.submit(job([&] {
    runtime::Runtime::spawn([&] { ++ran; });
    runtime::Runtime::spawn([&] { ++ran; });
    runtime::Runtime::sync();
    ++ran;
  }));
  EXPECT_EQ(t.wait(), JobState::kDone);
  EXPECT_EQ(ran.load(), 3);
  EXPECT_GE(t.granted_squads(), 1);
  EXPECT_GT(t.finish_ns(), t.submit_ns());
  const ServiceCounters c = svc.counters();
  EXPECT_EQ(c.submitted, 1u);
  EXPECT_EQ(c.admitted, 1u);
  EXPECT_EQ(c.completed, 1u);
  EXPECT_EQ(c.rejected, 0u);
}

TEST(JobService, ConcurrentJobsOnDisjointPartitionsConserveTasks) {
  // 4 squads, every job wants 2: at least two jobs run concurrently on
  // disjoint partitions. Each job spawns a known task count; nothing may
  // be lost or run twice.
  JobService svc(make_opts(4, 2, 64));
  constexpr int kJobs = 12;
  constexpr int kSpawnsPerJob = 64;
  std::atomic<long> leaves{0};
  std::vector<JobTicket> tickets;
  for (int j = 0; j < kJobs; ++j) {
    tickets.push_back(svc.submit(job(
        [&] {
          for (int i = 0; i < kSpawnsPerJob; ++i) {
            runtime::Runtime::spawn([&] { ++leaves; });
          }
          runtime::Runtime::sync();
        },
        /*squads=*/2)));
  }
  svc.drain();
  for (const JobTicket& t : tickets) EXPECT_EQ(t.state(), JobState::kDone);
  EXPECT_EQ(leaves.load(), static_cast<long>(kJobs) * kSpawnsPerJob);
  // Scheduler-level conservation across all partitions: every executed
  // task is either one of the kJobs roots or was spawned exactly once.
  const runtime::WorkerStats tot = svc.rt().stats().total;
  EXPECT_EQ(tot.tasks_executed, tot.spawns_intra + tot.spawns_inter + kJobs);
  const ServiceCounters c = svc.counters();
  EXPECT_EQ(c.completed, static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(c.running_jobs, 0);
  EXPECT_EQ(c.queue_depth, 0);
}

TEST(JobService, MultiSquadJobsSeeTheirGrantedPartitionWidth) {
  JobService svc(make_opts(4, 2, 8));
  JobTicket t = svc.submit(job([] {}, /*squads=*/3));
  EXPECT_EQ(t.wait(), JobState::kDone);
  EXPECT_EQ(t.granted_squads(), 3);  // idle service: full width granted
}

TEST(JobService, FullQueueRejectsUnderRejectPolicy) {
  // One squad -> one executor. Hold it, fill the 2-slot queue, overflow.
  Gate gate;
  JobService svc(make_opts(1, 2, 2, Backpressure::kReject));
  JobTicket running = svc.submit(job([&] { gate.wait_open(); }));
  gate.wait_waiters(1);  // executor is now busy, queue is empty
  JobTicket q1 = svc.submit(job([] {}));
  JobTicket q2 = svc.submit(job([] {}));
  JobTicket overflow = svc.submit(job([] {}));
  EXPECT_EQ(overflow.state(), JobState::kRejected);
  EXPECT_EQ(overflow.wait(), JobState::kRejected);  // terminal immediately
  gate.open_up();
  svc.drain();
  EXPECT_EQ(running.state(), JobState::kDone);
  EXPECT_EQ(q1.state(), JobState::kDone);
  EXPECT_EQ(q2.state(), JobState::kDone);
  const ServiceCounters c = svc.counters();
  EXPECT_EQ(c.submitted, 4u);
  EXPECT_EQ(c.admitted, 3u);
  EXPECT_EQ(c.rejected, 1u);
}

TEST(JobService, FullQueueBlocksUnderBlockPolicy) {
  Gate gate;
  JobService svc(make_opts(1, 2, 1, Backpressure::kBlock));
  JobTicket running = svc.submit(job([&] { gate.wait_open(); }));
  gate.wait_waiters(1);
  JobTicket queued = svc.submit(job([] {}));  // fills the queue
  std::atomic<bool> submitted{false};
  std::thread blocked([&] {
    JobTicket t = svc.submit(job([] {}));  // must block, then admit
    submitted = true;
    EXPECT_EQ(t.wait(), JobState::kDone);
  });
  // The submitter stays blocked while the queue is full.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(submitted.load());
  gate.open_up();  // executor frees, queue drains, space appears
  blocked.join();
  EXPECT_TRUE(submitted.load());
  svc.drain();
  EXPECT_EQ(running.state(), JobState::kDone);
  EXPECT_EQ(queued.state(), JobState::kDone);
  EXPECT_EQ(svc.counters().rejected, 0u);
}

TEST(JobService, ZeroCapacityQueueRejectsEverySubmit) {
  // The degenerate admission config on the smallest topology: every
  // submit hits the backpressure policy, nothing ever runs.
  JobService svc(make_opts(1, 1, 0, Backpressure::kReject));
  for (int i = 0; i < 3; ++i) {
    JobTicket t = svc.submit(job([] { ADD_FAILURE() << "must not run"; }));
    EXPECT_EQ(t.state(), JobState::kRejected);
  }
  svc.drain();  // trivially idle
  const ServiceCounters c = svc.counters();
  EXPECT_EQ(c.submitted, 3u);
  EXPECT_EQ(c.rejected, 3u);
  EXPECT_EQ(c.admitted, 0u);
}

TEST(JobService, SubmitAfterShutdownIsRejectedNotCrashed) {
  JobService svc(make_opts(2, 1, 8));
  JobTicket before = svc.submit(job([] {}));
  svc.shutdown();
  EXPECT_EQ(before.state(), JobState::kDone);  // shutdown drains
  JobTicket after = svc.submit(job([] { ADD_FAILURE() << "must not run"; }));
  EXPECT_EQ(after.state(), JobState::kRejected);
  EXPECT_EQ(svc.counters().rejected, 1u);
  svc.shutdown();  // idempotent
}

TEST(JobService, ShutdownUnblocksBlockedSubmitters) {
  // Capacity 0 under kBlock: every submit blocks until shutdown cuts the
  // wait short with a rejection (never a hang, never a crash).
  JobService svc(make_opts(1, 1, 0, Backpressure::kBlock));
  std::atomic<bool> done{false};
  std::thread blocked([&] {
    JobTicket t = svc.submit(job([] { ADD_FAILURE() << "must not run"; }));
    EXPECT_EQ(t.state(), JobState::kRejected);  // cut short by shutdown
    done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(done.load());
  svc.shutdown();
  blocked.join();
  EXPECT_TRUE(done.load());
}

TEST(JobService, CancelQueuedJobButNotRunningJob) {
  Gate gate;
  JobService svc(make_opts(1, 2, 4));
  JobTicket running = svc.submit(job([&] { gate.wait_open(); }));
  gate.wait_waiters(1);
  JobTicket queued = svc.submit(job([] { ADD_FAILURE() << "cancelled"; }));
  EXPECT_FALSE(svc.cancel(running));  // already dispatched
  EXPECT_TRUE(svc.cancel(queued));
  EXPECT_EQ(queued.state(), JobState::kCancelled);
  EXPECT_FALSE(svc.cancel(queued));  // terminal: no-op
  gate.open_up();
  svc.drain();
  EXPECT_EQ(running.state(), JobState::kDone);
  EXPECT_EQ(svc.counters().cancelled, 1u);
}

TEST(JobService, FailedJobCarriesItsException) {
  JobService svc(make_opts(2, 2, 8));
  JobTicket ok = svc.submit(job([] {}));
  JobTicket bad =
      svc.submit(job([] { throw std::runtime_error("job exploded"); }));
  EXPECT_EQ(bad.wait(), JobState::kFailed);
  ASSERT_NE(bad.error(), nullptr);
  try {
    std::rethrow_exception(bad.error());
    FAIL() << "expected a rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "job exploded");
  }
  // A failed job never poisons the service or later jobs.
  EXPECT_EQ(ok.wait(), JobState::kDone);
  JobTicket later = svc.submit(job([] {}));
  EXPECT_EQ(later.wait(), JobState::kDone);
  const ServiceCounters c = svc.counters();
  EXPECT_EQ(c.failed, 1u);
  EXPECT_EQ(c.completed, 2u);
}

TEST(JobService, TiersDispatchInPriorityOrderWhenQueued) {
  // Hold the single executor, queue jobs in mixed tier order with an
  // effectively infinite cooldown, and check dispatch follows tier.
  Gate gate;
  ServiceOptions o = make_opts(1, 2, 8);
  o.promote_cooldown_ns = std::uint64_t{1} << 60;  // no promotion
  JobService svc(o);
  JobTicket running = svc.submit(job([&] { gate.wait_open(); }));
  gate.wait_waiters(1);
  std::mutex order_mu;
  std::vector<int> order;
  auto mark = [&](int id) {
    return job(
        [&order_mu, &order, id] {
          std::lock_guard<std::mutex> lk(order_mu);
          order.push_back(id);
        },
        1, /*tier=*/id % 4);
  };
  // tiers: 3, 1, 0, 2 -> dispatch 0, 1, 2, 3.
  for (int id : {3, 1, 0, 2}) (void)svc.submit(mark(id));
  gate.open_up();
  svc.drain();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(running.state(), JobState::kDone);
}

TEST(JobService, CooldownPromotionIsCountedEndToEnd) {
  // Tiny cooldown: a held tier-3 job ages to effective tier 0 before
  // dispatch, which shows up in the promoted counter.
  Gate gate;
  ServiceOptions o = make_opts(1, 1, 8);
  o.promote_cooldown_ns = 1;  // promote ~immediately
  JobService svc(o);
  JobTicket running = svc.submit(job([&] { gate.wait_open(); }));
  gate.wait_waiters(1);
  JobTicket low = svc.submit(job([] {}, 1, /*tier=*/3));
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  gate.open_up();
  svc.drain();
  EXPECT_EQ(low.state(), JobState::kDone);
  EXPECT_GE(svc.counters().promoted, 1u);
  (void)running;
}

TEST(JobService, MetricsSnapshotCarriesServiceCounters) {
  JobService svc(make_opts(2, 2, 8));
  for (int i = 0; i < 5; ++i) (void)svc.submit(job([] {}));
  svc.drain();
  const obs::metrics::Snapshot snap = svc.metrics_snapshot();
  const obs::metrics::MetricSnapshot* admitted = snap.find("svc.admitted");
  ASSERT_NE(admitted, nullptr);
  EXPECT_EQ(admitted->total, 5);
  const obs::metrics::MetricSnapshot* completed = snap.find("svc.completed");
  ASSERT_NE(completed, nullptr);
  EXPECT_EQ(completed->total, 5);
  const obs::metrics::MetricSnapshot* running = snap.find("svc.running_jobs");
  ASSERT_NE(running, nullptr);
  EXPECT_EQ(running->total, 0);
  // Scheduler metrics share the same registry/snapshot.
  EXPECT_NE(snap.find("scheduler.tasks_executed"), nullptr);
}

TEST(JobService, QueuedTimeIsMeasuredForDispatchedJobs) {
  Gate gate;
  JobService svc(make_opts(1, 1, 4));
  JobTicket running = svc.submit(job([&] { gate.wait_open(); }));
  gate.wait_waiters(1);
  JobTicket waiter = svc.submit(job([] {}));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  gate.open_up();
  svc.drain();
  EXPECT_EQ(waiter.state(), JobState::kDone);
  // Waited >= the 5ms the executor was held (minus scheduling slop).
  EXPECT_GE(waiter.queued_ns(), 1'000'000u);
  EXPECT_GE(svc.counters().queued_ns, waiter.queued_ns());
  (void)running;
}

TEST(JobService, BackpressureParsing) {
  Backpressure b = Backpressure::kBlock;
  EXPECT_TRUE(parse_backpressure("reject", b));
  EXPECT_EQ(b, Backpressure::kReject);
  EXPECT_TRUE(parse_backpressure("block", b));
  EXPECT_EQ(b, Backpressure::kBlock);
  EXPECT_FALSE(parse_backpressure("drop", b));
  EXPECT_STREQ(to_string(Backpressure::kReject), "reject");
  EXPECT_STREQ(to_string(Backpressure::kBlock), "block");
}

}  // namespace
}  // namespace cab::svc
