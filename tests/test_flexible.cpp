// The future-work extension (Section VII): footprint-driven per-node tier
// assignment, replacing the single boundary level.

#include <gtest/gtest.h>

#include "apps/heat.hpp"
#include "core/cab.hpp"
#include "dag/flexible.hpp"
#include "dag/generators.hpp"

namespace cab::dag {
namespace {

/// bytes(trace_id) for graphs whose leaves all touch `leaf_bytes`.
TraceBytesFn uniform_bytes(std::uint64_t leaf_bytes) {
  return [leaf_bytes](std::int32_t id) -> std::uint64_t {
    return id >= 0 ? leaf_bytes : 0;
  };
}

TEST(FootprintPartition, UniformTreeCutsWhereSubtreesFit) {
  // Depth-4 B=2 tree: 8 leaves (level 4) of 1 MiB; subtree footprints by
  // level are 8, 4, 2, 1 MiB. Sc = 4 MiB: phase 1 cuts at level 2 (the
  // highest fitting nodes, 2 of them); Eq. 1 then splits both to reach
  // 4 cuts — final cuts are the four level-3 nodes.
  TaskGraph g2 = make_recursive_dnc(2, 4, 100, 1);
  for (std::size_t i = 0; i < g2.size(); ++i) {
    if (g2.node(static_cast<NodeId>(i)).children.empty())
      g2.set_traces(static_cast<NodeId>(i), static_cast<std::int32_t>(i), -1);
  }
  NodeTiers t = footprint_partition(g2, uniform_bytes(1ull << 20),
                                    /*sc=*/4ull << 20, /*sockets=*/4);
  EXPECT_EQ(t.cut_count(), 4u);
  for (std::size_t i = 0; i < g2.size(); ++i) {
    const auto& n = g2.node(static_cast<NodeId>(i));
    if (t.leaf_inter(static_cast<NodeId>(i))) {
      EXPECT_EQ(n.level, 3);
      EXPECT_TRUE(t.inter(static_cast<NodeId>(i)));
    } else if (n.level < 3) {
      EXPECT_TRUE(t.inter(static_cast<NodeId>(i)));
    } else if (n.level > 3) {
      EXPECT_FALSE(t.inter(static_cast<NodeId>(i)));
    }
  }
}

TEST(FootprintPartition, SplitsLargestCutUntilEnoughForSockets) {
  // Everything fits Sc at the root => one cut; Eq. 1 forces splitting
  // down to >= 4 cuts.
  TaskGraph g = make_recursive_dnc(2, 3, 10, 1);
  NodeTiers t = footprint_partition(g, uniform_bytes(64), 1ull << 30, 4);
  EXPECT_GE(t.cut_count(), 4u);
}

TEST(FootprintPartition, ImbalancedTreeCutsAtDifferentDepths) {
  // Left subtree heavy (8 MiB), right subtree light (1 MiB), Sc = 2 MiB:
  // the left side must be cut deeper than the right.
  TaskGraph g;
  NodeId root = g.add_root(1);
  NodeId top = g.add_child(root, 1);
  NodeId heavy = g.add_child(top, 1);
  NodeId light = g.add_child(top, 1);
  std::vector<std::uint64_t> bytes_by_trace;
  auto add_leaf = [&](NodeId parent, std::uint64_t mib) {
    NodeId l = g.add_child(parent, 10);
    g.set_traces(l, static_cast<std::int32_t>(bytes_by_trace.size()), -1);
    bytes_by_trace.push_back(mib << 20);
    return l;
  };
  // Heavy: 2 children with two 2-MiB leaves each (8 MiB total).
  NodeId h1 = g.add_child(heavy, 1);
  NodeId h2 = g.add_child(heavy, 1);
  add_leaf(h1, 2);
  add_leaf(h1, 2);
  add_leaf(h2, 2);
  add_leaf(h2, 2);
  // Light: two half-MiB leaves.
  add_leaf(light, 1);

  NodeTiers t = footprint_partition(
      g,
      [&](std::int32_t id) -> std::uint64_t {
        return id >= 0 ? bytes_by_trace[static_cast<std::size_t>(id)] : 0;
      },
      /*sc=*/2ull << 20, /*sockets=*/2);
  // Light subtree fits whole (1 MiB <= 2 MiB) => cut at `light`.
  EXPECT_TRUE(t.leaf_inter(light));
  // Heavy side: neither `heavy` (8 MiB) nor h1/h2 (4 MiB each) fit; cuts
  // land on the 2 MiB leaves.
  EXPECT_FALSE(t.leaf_inter(heavy));
  EXPECT_FALSE(t.leaf_inter(h1));
  EXPECT_TRUE(t.inter(h1));
}

TEST(FootprintPartition, FromBoundaryLevelMatchesUniformAssignment) {
  TaskGraph g = make_recursive_dnc(2, 4, 100, 1);
  TierAssignment tier{2};
  NodeTiers t = NodeTiers::from_boundary_level(g, tier);
  for (std::size_t i = 0; i < g.size(); ++i) {
    const auto& n = g.node(static_cast<NodeId>(i));
    EXPECT_EQ(t.inter(static_cast<NodeId>(i)), tier.is_inter(n.level));
    EXPECT_EQ(t.leaf_inter(static_cast<NodeId>(i)),
              tier.is_leaf_inter(n.level));
  }
}

TEST(FlexibleSim, EquivalentToUniformBlOnRegularTree) {
  // On heat's regular DAG the footprint cuts coincide with a uniform
  // level, so both partitioners must produce the same schedule.
  apps::HeatParams p;
  p.rows = 512;
  p.cols = 256;
  p.steps = 3;
  p.leaf_rows = 64;
  apps::DagBundle b = apps::build_heat_dag(p);
  const hw::Topology topo = hw::Topology::opteron_8380();

  simsched::SimOptions o;
  o.topo = topo;
  o.policy = simsched::SimPolicy::kCab;
  o.boundary_level = bundle_boundary_level(b, topo);
  simsched::SimResult uniform =
      simsched::Simulator(o).run(b.graph, b.traces);

  NodeTiers flex = NodeTiers::from_boundary_level(
      b.graph, TierAssignment{o.boundary_level});
  o.flexible_tiers = &flex;
  simsched::SimResult flexible =
      simsched::Simulator(o).run(b.graph, b.traces);
  EXPECT_DOUBLE_EQ(uniform.makespan, flexible.makespan);
  EXPECT_EQ(uniform.cache.l3_misses, flexible.cache.l3_misses);
}

TEST(FlexibleSim, RunsFootprintTiersEndToEnd) {
  apps::HeatParams p;
  p.rows = 512;
  p.cols = 512;
  p.steps = 4;
  p.leaf_rows = 64;
  apps::DagBundle b = apps::build_heat_dag(p);
  const hw::Topology topo = hw::Topology::opteron_8380();
  NodeTiers flex = footprint_partition(
      b.graph,
      [&](std::int32_t id) -> std::uint64_t {
        return id >= 0 ? cachesim::trace_bytes(
                             b.traces.get(id))
                       : 0;
      },
      topo.shared_cache_bytes(), topo.sockets());
  EXPECT_GE(flex.cut_count(), static_cast<std::size_t>(topo.sockets()));

  simsched::SimOptions o;
  o.topo = topo;
  o.policy = simsched::SimPolicy::kCab;
  o.flexible_tiers = &flex;
  simsched::SimResult r = simsched::Simulator(o).run(b.graph, b.traces);
  EXPECT_GT(r.makespan, 0.0);
}

}  // namespace
}  // namespace cab::dag
