// Reproduces Fig. 6: normalized execution time of heat (a) and SOR (b)
// in CAB vs Cilk as the input grows from 512x512 to 4k x 4k.
//
// Paper's shape: the CAB gain is largest at small inputs (heat 54.6%,
// SOR 68.7% at 512x512) and shrinks as the per-socket slice outgrows the
// shared cache (heat 14%, SOR 13.6% at 4k x 4k).

#include <vector>

#include "apps/heat.hpp"
#include "apps/sor.hpp"
#include "bench_common.hpp"
#include "util/format.hpp"

namespace cab::bench {
namespace {

struct SizeCase {
  const char* label;
  std::int64_t rows, cols;
};

const std::vector<SizeCase>& sizes() {
  static const std::vector<SizeCase> s = {
      {"512x512", 512, 512}, {"1kx1k", 1024, 1024},  {"2kx2k", 2048, 2048},
      {"3kx2k", 3072, 2048}, {"3kx3k", 3072, 3072},  {"4kx4k", 4096, 4096}};
  return s;
}

void run_app(const char* app) {
  util::TablePrinter table(
      {"input", "BL", "Cilk", "CAB", "normalized(CAB)", "gain %"});
  double first_gain = 0, last_gain = 0;
  for (const SizeCase& sc : sizes()) {
    apps::DagBundle bundle = [&] {
      if (std::string(app) == "heat") {
        apps::HeatParams p;
        p.rows = scaled(sc.rows);
        p.cols = scaled(sc.cols);
        p.steps = 6;
        return apps::build_heat_dag(p);
      }
      apps::SorParams p;
      p.rows = scaled(sc.rows);
      p.cols = scaled(sc.cols);
      p.iterations = 3;
      return apps::build_sor_dag(p);
    }();
    Comparison c = compare_and_record(std::string(app) + "/" + sc.label,
                                      bundle, paper_topology());
    if (sc.rows == 512) first_gain = c.gain_percent();
    last_gain = c.gain_percent();
    table.add_row({sc.label, std::to_string(c.boundary_level),
                   util::format_fixed(c.cilk.makespan, 0),
                   util::format_fixed(c.cab.makespan, 0),
                   util::format_fixed(c.normalized_time(), 3),
                   util::format_fixed(c.gain_percent(), 1)});
  }
  std::printf("%s:\n%s", app, table.to_string().c_str());
  std::printf("shape check: gain shrinks with size (%.1f%% at 512^2 -> "
              "%.1f%% at 4k); paper: heat 54.6%%->14%%, SOR 68.7%%->13.6%%\n\n",
              first_gain, last_gain);
}

void run() {
  print_header("Fig. 6 — scalability of CAB with input size (heat, SOR)",
               "Figure 6 (Section V-C): diminishing gains at large inputs");
  run_app("heat");
  run_app("sor");
}

}  // namespace
}  // namespace cab::bench

int main(int argc, char** argv) {
  if (int rc = cab::bench::parse_args(argc, argv)) return rc;
  cab::bench::run();
  // --trace/--json replay: the 1k x 1k heat case on the real runtime.
  return cab::bench::finish("fig6_scalability", [] {
    cab::apps::HeatParams p;
    p.rows = cab::bench::scaled(1024);
    p.cols = cab::bench::scaled(1024);
    p.steps = 6;
    return cab::apps::build_heat_dag(p);
  });
}
