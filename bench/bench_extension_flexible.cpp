// Extension bench (the paper's future work, Section VII): footprint-
// driven flexible partitioning vs the single boundary level of Eq. 4, on
// an *imbalanced* workload — an adaptively refined heat grid where one
// half of the rows carries 4x the data of the other.
//
// Uniform BL must compromise: a level deep enough to fit the refined
// half's slices into the shared cache leaves the coarse half's tasks too
// small (squad imbalance); a shallow level overflows the cache on the
// refined half. The footprint partitioner cuts each side at its own depth.

#include "bench_common.hpp"
#include "dag/flexible.hpp"
#include "util/format.hpp"

namespace cab::bench {
namespace {

/// Adaptive-mesh heat: rows [0, rows/2) have `fine_cols` columns, rows
/// [rows/2, rows) have fine_cols/16 — one sequential phase per step, each
/// a binary row split down to leaf_rows.
apps::DagBundle build_amr_heat(std::int64_t rows, std::int64_t fine_cols,
                               int steps, std::int64_t leaf_rows) {
  apps::DagBundle b;
  b.name = "amr-heat";
  b.branching = 2;
  dag::TaskGraph& g = b.graph;
  cachesim::TraceStore& store = b.traces;

  auto cols_of = [&](std::int64_t row) {
    return row < rows / 2 ? fine_cols : fine_cols / 16;
  };
  std::uint64_t total = 0;
  for (std::int64_t r = 0; r < rows; ++r)
    total += static_cast<std::uint64_t>(cols_of(r)) * sizeof(double);
  b.input_bytes = total;

  dag::NodeId root = g.add_root(1);
  g.set_sequential(root, true);

  struct Builder {
    dag::TaskGraph& g;
    cachesim::TraceStore& store;
    std::int64_t rows, fine_cols, leaf_rows;
    std::uint64_t src, dst;

    std::uint64_t row_bytes(std::int64_t r) const {
      return static_cast<std::uint64_t>(r < rows / 2 ? fine_cols
                                                     : fine_cols / 16) *
             sizeof(double);
    }
    std::uint64_t offset(std::int64_t r) const {
      // Row-major with per-row widths; precomputing would be nicer but
      // rows are few enough that O(r) here is irrelevant (build time).
      std::uint64_t o = 0;
      for (std::int64_t i = 0; i < r; ++i) o += row_bytes(i);
      return o;
    }
    void split(dag::NodeId parent, std::int64_t r0, std::int64_t r1) {
      if (r1 - r0 <= leaf_rows) {
        std::uint64_t bytes = 0;
        for (std::int64_t r = r0; r < r1; ++r) bytes += row_bytes(r);
        cachesim::Trace t;
        t.push_back({src + offset(r0), bytes, 1, false});
        t.push_back({dst + offset(r0), bytes, 1, true});
        dag::NodeId leaf = g.add_child(parent, bytes / 2);
        g.set_traces(leaf, store.add(std::move(t)), -1);
        return;
      }
      dag::NodeId n = g.add_child(parent, 8);
      const std::int64_t mid = r0 + (r1 - r0) / 2;
      split(n, r0, mid);
      split(n, mid, r1);
    }
  };

  for (int step = 0; step < steps; ++step) {
    Builder builder{g,
                    store,
                    rows,
                    fine_cols,
                    leaf_rows,
                    apps::array_base(step % 2),
                    apps::array_base((step + 1) % 2)};
    builder.split(root, 0, rows);
  }
  return b;
}

void run() {
  print_header("Extension — flexible (footprint) partitioning vs Eq. 4",
               "Section VII future work: per-node cuts on an imbalanced "
               "(adaptively refined) heat grid");

  // 16x refinement: the fine half holds 12 MiB, the coarse half 0.8 MiB.
  // Eq. 4's global level (3) makes each fine cut carry a 12 MiB
  // footprint — double the shared cache, so the fine squads thrash —
  // while the footprint partitioner cuts the fine half one level deeper
  // (6 MiB per cut, resident) and the coarse half shallower.
  apps::DagBundle b = build_amr_heat(scaled(1024), scaled(3072), 8, 32);
  const hw::Topology topo = paper_topology();
  const std::int32_t bl = bundle_boundary_level(b, topo);

  dag::NodeTiers flex = dag::footprint_partition(
      b.graph,
      [&](std::int32_t id) -> std::uint64_t {
        return id >= 0 ? cachesim::trace_bytes(b.traces.get(id)) : 0;
      },
      topo.shared_cache_bytes(), topo.sockets());

  util::TablePrinter table(
      {"partitioner", "cuts", "makespan", "L3 misses", "util %"});

  auto run_one = [&](const char* name, const dag::NodeTiers* tiers,
                     std::int32_t level) {
    simsched::SimOptions o;
    o.topo = topo;
    o.policy = simsched::SimPolicy::kCab;
    o.boundary_level = level;
    o.flexible_tiers = tiers;
    simsched::SimResult r = simsched::Simulator(o).run(b.graph, b.traces);
    std::size_t cuts = tiers ? tiers->cut_count()
                             : dag::leaf_inter_task_count(2, level);
    JsonRecorder::instance().add_values(
        name, {{"cuts", static_cast<double>(cuts)},
               {"makespan", r.makespan},
               {"l3_misses", static_cast<double>(r.cache.l3_misses)},
               {"utilization", r.utilization()}});
    table.add_row({name, std::to_string(cuts),
                   util::format_fixed(r.makespan, 0),
                   util::human_count(r.cache.l3_misses),
                   util::format_fixed(r.utilization() * 100, 1)});
  };

  run_one("uniform BL (Eq.4 + clamp)", nullptr, bl);
  run_one("footprint (flexible)", &flex, 0);

  // Baseline for reference.
  simsched::SimOptions cilk;
  cilk.topo = topo;
  cilk.policy = simsched::SimPolicy::kRandomStealing;
  cilk.victims = simsched::VictimSelection::kUniformRandom;
  cilk.cost.duration_jitter = simsched::CostModel::kScrambleJitter;
  simsched::SimResult rr = simsched::Simulator(cilk).run(b.graph, b.traces);
  JsonRecorder::instance().add_values(
      "random stealing",
      {{"makespan", rr.makespan},
       {"l3_misses", static_cast<double>(rr.cache.l3_misses)},
       {"utilization", rr.utilization()}});
  table.add_row({"random stealing", "-", util::format_fixed(rr.makespan, 0),
                 util::human_count(rr.cache.l3_misses),
                 util::format_fixed(rr.utilization() * 100, 1)});

  std::printf("Eq.4 BL for the imbalanced grid: %d\n%s\n", bl,
              table.to_string().c_str());
}

}  // namespace
}  // namespace cab::bench

int main(int argc, char** argv) {
  if (int rc = cab::bench::parse_args(argc, argv)) return rc;
  cab::bench::run();
  // --trace/--json replay: the imbalanced AMR heat grid on the real
  // runtime (uniform Eq. 4 cut — the runtime has no flexible tiers yet).
  return cab::bench::finish("extension_flexible", [] {
    return cab::bench::build_amr_heat(cab::bench::scaled(1024),
                                      cab::bench::scaled(3072), 8, 32);
  });
}
