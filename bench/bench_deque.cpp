// Micro-benchmarks of the task-pool substrates (google-benchmark):
// Chase-Lev lock-free deque vs the locked deque, single-owner throughput
// and under thief contention. Context for the paper's Section III-A
// argument that funneling inter-socket traffic through head workers keeps
// a locked inter-socket pool cheap.

#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>

#include "deque/chase_lev_deque.hpp"
#include "deque/locked_deque.hpp"

namespace {

int* tok(std::intptr_t v) { return reinterpret_cast<int*>(v); }

void BM_ChaseLev_PushPop(benchmark::State& state) {
  cab::deque::ChaseLevDeque<int*> d;
  for (auto _ : state) {
    for (int i = 1; i <= 64; ++i) d.push_bottom(tok(i));
    for (int i = 0; i < 64; ++i) benchmark::DoNotOptimize(d.pop_bottom());
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_ChaseLev_PushPop);

void BM_LockedDeque_PushPop(benchmark::State& state) {
  cab::deque::LockedDeque<int*> d;
  for (auto _ : state) {
    for (int i = 1; i <= 64; ++i) d.push_bottom(tok(i));
    for (int i = 0; i < 64; ++i) benchmark::DoNotOptimize(d.pop_bottom());
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_LockedDeque_PushPop);

/// Owner push/pop with `range(0)` thieves hammering steal_top.
template <typename Deque>
void contended_benchmark(benchmark::State& state) {
  const int thieves = static_cast<int>(state.range(0));
  Deque d;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < thieves; ++t) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire))
        benchmark::DoNotOptimize(d.steal_top());
    });
  }
  for (auto _ : state) {
    for (int i = 1; i <= 64; ++i) d.push_bottom(tok(i));
    for (int i = 0; i < 64; ++i) benchmark::DoNotOptimize(d.pop_bottom());
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  state.SetItemsProcessed(state.iterations() * 128);
}

void BM_ChaseLev_Contended(benchmark::State& state) {
  contended_benchmark<cab::deque::ChaseLevDeque<int*>>(state);
}
BENCHMARK(BM_ChaseLev_Contended)->Arg(1)->Arg(2);

void BM_LockedDeque_Contended(benchmark::State& state) {
  contended_benchmark<cab::deque::LockedDeque<int*>>(state);
}
BENCHMARK(BM_LockedDeque_Contended)->Arg(1)->Arg(2);

}  // namespace

BENCHMARK_MAIN();
