// bench_service — open-loop tail-latency bench for the job service.
//
// Replays an arrival-time trace (Poisson or bursty) against a
// svc::JobService and reports throughput plus p50/p99/p999 job latency.
// Open-loop means the arrival schedule is fixed *before* the run and
// never waits on the service: when the service falls behind, submits
// happen late but each job's latency is still measured from its
// SCHEDULED arrival, so queueing delay the service caused is charged to
// it. A closed-loop driver (submit, wait, submit) would silently stop
// offering load exactly when the service is slow — the coordinated
// omission trap — and report flat percentiles through an overload
// collapse. See EXPERIMENTS.md "Open-loop service benchmarking".
//
// Emits a `cab-svc-v1` JSON record (same envelope as cab-bench-v1, so
// cab_bench_report merges and diffs it; the percentile metrics are
// lower-is-better).
//
// Usage:
//   bench_service [--rate=500/s] [--duration=2s] [--burst=1.8]
//                 [--burst-period=250ms] [--queue=256]
//                 [--backpressure=reject|block] [--cooldown=1ms]
//                 [--sockets=2] [--cores=2] [--max-squads=2]
//                 [--tiers=2] [--depth=5] [--leaf-iters=400]
//                 [--seed=42] [--only=poisson|bursty] [--json=FILE]

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "obs/timeline.hpp"
#include "runtime/runtime.hpp"
#include "svc/service.hpp"
#include "util/args.hpp"

namespace {

using cab::bench::detail::append_escaped;

struct Args {
  double rate_per_sec = 500.0;
  std::uint64_t duration_ns = 2'000'000'000;  // 2s
  double burst = 1.8;  ///< peak-window rate multiplier, in [1, 2]
  std::uint64_t burst_period_ns = 250'000'000;  // 250ms on/off window
  std::size_t queue = 256;
  cab::svc::Backpressure backpressure = cab::svc::Backpressure::kReject;
  std::uint64_t cooldown_ns = 1'000'000;  // 1ms per tier promotion
  int sockets = 2;
  int cores = 2;
  int max_squads = 2;
  int tiers = 2;
  int depth = 5;
  int leaf_iters = 400;
  std::uint64_t seed = 42;
  std::string only;  ///< "" = both traces
  std::string json_path;
};

[[noreturn]] void usage_and_exit(const std::string& why) {
  std::fprintf(stderr, "bench_service: %s\n", why.c_str());
  std::fprintf(
      stderr,
      "usage: bench_service [--rate=R] [--duration=D] [--burst=F]\n"
      "  [--burst-period=D] [--queue=N] [--backpressure=reject|block]\n"
      "  [--cooldown=D] [--sockets=N] [--cores=N] [--max-squads=N]\n"
      "  [--tiers=N] [--depth=N] [--leaf-iters=N] [--seed=N]\n"
      "  [--only=poisson|bursty] [--json=FILE]\n"
      "  (rates like 500/s; durations like 250ms, 2s)\n");
  std::exit(2);
}

Args parse(int argc, char** argv) {
  namespace args = cab::util::args;
  static const std::vector<args::FlagSpec> kKnown = {
      {"rate", true},       {"duration", true},  {"burst", true},
      {"burst-period", true}, {"queue", true},   {"backpressure", true},
      {"cooldown", true},   {"sockets", true},   {"cores", true},
      {"max-squads", true}, {"tiers", true},     {"depth", true},
      {"leaf-iters", true}, {"seed", true},      {"only", true},
      {"json", true},
  };
  const std::string unknown = args::first_unknown(argc, argv, kKnown);
  if (!unknown.empty()) usage_and_exit("unknown flag " + unknown);

  Args a;
  std::string v;
  if (!(v = args::value(argc, argv, "rate")).empty() &&
      !args::parse_rate(v, a.rate_per_sec)) {
    usage_and_exit("bad --rate '" + v + "' (want e.g. 500/s)");
  }
  if (!(v = args::value(argc, argv, "duration")).empty() &&
      !args::parse_duration(v, a.duration_ns)) {
    usage_and_exit("bad --duration '" + v + "' (want e.g. 2s)");
  }
  if (!(v = args::value(argc, argv, "burst-period")).empty() &&
      !args::parse_duration(v, a.burst_period_ns)) {
    usage_and_exit("bad --burst-period '" + v + "'");
  }
  if (!(v = args::value(argc, argv, "cooldown")).empty() &&
      !args::parse_duration(v, a.cooldown_ns)) {
    usage_and_exit("bad --cooldown '" + v + "'");
  }
  if (!(v = args::value(argc, argv, "backpressure")).empty() &&
      !cab::svc::parse_backpressure(v, a.backpressure)) {
    usage_and_exit("bad --backpressure '" + v + "' (reject|block)");
  }
  if (!(v = args::value(argc, argv, "burst")).empty()) a.burst = std::stod(v);
  if (a.burst < 1.0 || a.burst > 2.0) usage_and_exit("--burst must be in [1,2]");
  if (!(v = args::value(argc, argv, "queue")).empty())
    a.queue = static_cast<std::size_t>(std::stoul(v));
  if (!(v = args::value(argc, argv, "sockets")).empty()) a.sockets = std::stoi(v);
  if (!(v = args::value(argc, argv, "cores")).empty()) a.cores = std::stoi(v);
  if (!(v = args::value(argc, argv, "max-squads")).empty())
    a.max_squads = std::stoi(v);
  if (!(v = args::value(argc, argv, "tiers")).empty()) a.tiers = std::stoi(v);
  if (!(v = args::value(argc, argv, "depth")).empty()) a.depth = std::stoi(v);
  if (!(v = args::value(argc, argv, "leaf-iters")).empty())
    a.leaf_iters = std::stoi(v);
  if (!(v = args::value(argc, argv, "seed")).empty())
    a.seed = std::stoull(v);
  if (!(v = args::value(argc, argv, "only")).empty()) {
    if (v != "poisson" && v != "bursty")
      usage_and_exit("bad --only '" + v + "' (poisson|bursty)");
    a.only = v;
  }
  a.json_path = args::value(argc, argv, "json");
  if (a.rate_per_sec <= 0) usage_and_exit("--rate must be positive");
  if (a.max_squads < 1) usage_and_exit("--max-squads must be >= 1");
  if (a.tiers < 1) usage_and_exit("--tiers must be >= 1");
  return a;
}

void burn(int iters) {
  volatile std::uint64_t acc = 0;
  for (int i = 0; i < iters; ++i)
    acc = acc + static_cast<std::uint64_t>(i) * 2654435761u;
}

// The per-job workload: a binary spawn tree with busy leaves — enough
// real spawn/sync/steal traffic to exercise the partition's bi-tier
// protocol without dominating the run with compute.
void tree(int depth, int iters) {
  if (depth <= 0) {
    burn(iters);
    return;
  }
  cab::runtime::Runtime::spawn([=] { tree(depth - 1, iters); });
  cab::runtime::Runtime::spawn([=] { tree(depth - 1, iters); });
  cab::runtime::Runtime::sync();
}

/// Arrival offsets (ns from trace start) for a Poisson process of the
/// given mean rate over [0, duration).
std::vector<std::uint64_t> poisson_trace(double rate_per_sec,
                                         std::uint64_t duration_ns,
                                         std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::exponential_distribution<double> gap(rate_per_sec / 1e9);  // per ns
  std::vector<std::uint64_t> out;
  double t = gap(rng);
  while (t < static_cast<double>(duration_ns)) {
    out.push_back(static_cast<std::uint64_t>(t));
    t += gap(rng);
  }
  return out;
}

/// Bursty trace: same mean rate, but alternating windows of
/// burst-period length run at burst*rate then (2-burst)*rate — a square
/// wave of offered load that stresses the admission queue and the tail.
std::vector<std::uint64_t> bursty_trace(double rate_per_sec, double burst,
                                        std::uint64_t period_ns,
                                        std::uint64_t duration_ns,
                                        std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::uint64_t> out;
  double t = 0;
  while (t < static_cast<double>(duration_ns)) {
    const std::uint64_t window =
        static_cast<std::uint64_t>(t) / period_ns;
    const double mult = (window % 2 == 0) ? burst : (2.0 - burst);
    const double r = rate_per_sec * mult / 1e9;  // per ns
    if (r <= 0) {  // degenerate burst=2: silent window, jump to the next
      t = static_cast<double>((window + 1) * period_ns);
      continue;
    }
    std::exponential_distribution<double> gap(r);
    t += gap(rng);
    if (t < static_cast<double>(duration_ns))
      out.push_back(static_cast<std::uint64_t>(t));
  }
  return out;
}

struct ConfigResult {
  std::string name;
  std::size_t jobs = 0;       ///< trace length (offered)
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t failed = 0;
  std::uint64_t promoted = 0;
  double jobs_per_s = 0;
  double p50_ms = 0, p99_ms = 0, p999_ms = 0;
  double mean_queued_ms = 0;
  double wall_s = 0;
  cab::svc::ServiceCounters counters;
};

double pct(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

ConfigResult run_trace(const Args& a, const std::string& name,
                       const std::vector<std::uint64_t>& offsets) {
  cab::svc::ServiceOptions opts;
  opts.runtime.topo = cab::hw::Topology::synthetic(a.sockets, a.cores);
  opts.runtime.pin_threads = false;
  opts.queue_capacity = a.queue;
  opts.backpressure = a.backpressure;
  opts.promote_cooldown_ns = a.cooldown_ns;
  opts.max_tier = a.tiers - 1;
  cab::svc::JobService svc(opts);

  const int depth = a.depth;
  const int leaf_iters = a.leaf_iters;
  std::vector<cab::svc::JobTicket> tickets;
  tickets.reserve(offsets.size());

  // Replay: pace on the same clock the tickets are stamped with, so
  // scheduled-arrival latency needs no cross-clock conversion.
  const std::uint64_t base = cab::obs::now_ns();
  for (std::size_t i = 0; i < offsets.size(); ++i) {
    const std::uint64_t target = base + offsets[i];
    const std::uint64_t now = cab::obs::now_ns();
    if (target > now) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(target - now));
    }
    cab::svc::JobDesc d;
    d.body = [=] { tree(depth, leaf_iters); };
    d.squads = 1 + static_cast<int>(i % static_cast<std::size_t>(a.max_squads));
    d.tier = static_cast<int>(i % static_cast<std::size_t>(a.tiers));
    d.input_bytes = 1u << 20;
    tickets.push_back(svc.submit(std::move(d)));
  }
  svc.drain();
  const std::uint64_t end = cab::obs::now_ns();

  ConfigResult r;
  r.name = name;
  r.jobs = offsets.size();
  r.wall_s = static_cast<double>(end - base) / 1e9;

  std::vector<double> lat_ms;
  lat_ms.reserve(tickets.size());
  double queued_ms = 0;
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    const cab::svc::JobTicket& t = tickets[i];
    const cab::svc::JobState s = t.state();
    if (s != cab::svc::JobState::kDone) continue;
    // Latency from the SCHEDULED arrival, not the (possibly late)
    // actual submit — the open-loop/coordinated-omission correction.
    const std::uint64_t scheduled = base + offsets[i];
    const std::uint64_t fin = t.finish_ns();
    lat_ms.push_back(fin > scheduled
                         ? static_cast<double>(fin - scheduled) / 1e6
                         : 0.0);
    queued_ms += static_cast<double>(t.queued_ns()) / 1e6;
  }
  std::sort(lat_ms.begin(), lat_ms.end());
  r.counters = svc.counters();
  r.completed = r.counters.completed;
  r.rejected = r.counters.rejected;
  r.failed = r.counters.failed;
  r.promoted = r.counters.promoted;
  r.jobs_per_s = r.wall_s > 0 ? static_cast<double>(r.completed) / r.wall_s : 0;
  r.p50_ms = pct(lat_ms, 0.50);
  r.p99_ms = pct(lat_ms, 0.99);
  r.p999_ms = pct(lat_ms, 0.999);
  r.mean_queued_ms = lat_ms.empty() ? 0 : queued_ms / static_cast<double>(lat_ms.size());
  svc.shutdown();
  return r;
}

void append_counters(std::string& out, const cab::svc::ServiceCounters& c) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\"svc.submitted\": %llu, \"svc.admitted\": %llu, "
                "\"svc.rejected\": %llu, \"svc.completed\": %llu, "
                "\"svc.failed\": %llu, \"svc.cancelled\": %llu, "
                "\"svc.promoted\": %llu, \"svc.queued_ns\": %llu}",
                static_cast<unsigned long long>(c.submitted),
                static_cast<unsigned long long>(c.admitted),
                static_cast<unsigned long long>(c.rejected),
                static_cast<unsigned long long>(c.completed),
                static_cast<unsigned long long>(c.failed),
                static_cast<unsigned long long>(c.cancelled),
                static_cast<unsigned long long>(c.promoted),
                static_cast<unsigned long long>(c.queued_ns));
  out += buf;
}

std::string to_json(const Args& a, const std::vector<ConfigResult>& results) {
  const cab::hw::Topology topo =
      cab::hw::Topology::synthetic(a.sockets, a.cores);
  std::string out = "{\n  \"schema\": \"cab-svc-v1\",\n";
  out += "  \"bench\": \"service\",\n";
  out += "  \"git_rev\": ";
  append_escaped(out, cab::bench::detail::git_rev());
  out += ",\n";
  char buf[512];
  std::snprintf(buf, sizeof(buf), "  \"generated_unix\": %lld,\n",
                static_cast<long long>(std::time(nullptr)));
  out += buf;
  std::snprintf(
      buf, sizeof(buf),
      "  \"topology\": {\"sockets\": %d, \"cores_per_socket\": %d, "
      "\"shared_cache_bytes\": %llu, \"describe\": ",
      topo.sockets(), topo.cores_per_socket(),
      static_cast<unsigned long long>(topo.shared_cache_bytes()));
  out += buf;
  append_escaped(out, topo.describe());
  out += "},\n";
  std::snprintf(
      buf, sizeof(buf),
      "  \"service\": {\"queue_capacity\": %llu, \"backpressure\": \"%s\", "
      "\"promote_cooldown_ns\": %llu, \"tiers\": %d, \"rate_per_s\": %.3f, "
      "\"duration_s\": %.3f, \"burst\": %.3f, \"seed\": %llu},\n",
      static_cast<unsigned long long>(a.queue),
      cab::svc::to_string(a.backpressure),
      static_cast<unsigned long long>(a.cooldown_ns), a.tiers, a.rate_per_sec,
      static_cast<double>(a.duration_ns) / 1e9, a.burst,
      static_cast<unsigned long long>(a.seed));
  out += buf;
  out += "  \"configs\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    out += "    {\"name\": ";
    append_escaped(out, r.name);
    out += ", ";
    std::snprintf(
        buf, sizeof(buf),
        "\"jobs\": %llu, \"completed\": %llu, \"rejected\": %llu, "
        "\"failed\": %llu, \"promoted\": %llu, \"jobs_per_s\": %.3f, "
        "\"job_p50_latency_ms\": %.4f, \"job_p99_latency_ms\": %.4f, "
        "\"job_p999_latency_ms\": %.4f, \"mean_queued_ms\": %.4f, "
        "\"wall_s\": %.4f, \"counters\": ",
        static_cast<unsigned long long>(r.jobs),
        static_cast<unsigned long long>(r.completed),
        static_cast<unsigned long long>(r.rejected),
        static_cast<unsigned long long>(r.failed),
        static_cast<unsigned long long>(r.promoted), r.jobs_per_s, r.p50_ms,
        r.p99_ms, r.p999_ms, r.mean_queued_ms, r.wall_s);
    out += buf;
    append_counters(out, r.counters);
    out += i + 1 < results.size() ? "},\n" : "}\n";
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);

  std::vector<ConfigResult> results;
  if (a.only.empty() || a.only == "poisson") {
    results.push_back(run_trace(
        a, "poisson", poisson_trace(a.rate_per_sec, a.duration_ns, a.seed)));
  }
  if (a.only.empty() || a.only == "bursty") {
    results.push_back(run_trace(
        a, "bursty",
        bursty_trace(a.rate_per_sec, a.burst, a.burst_period_ns, a.duration_ns,
                     a.seed + 1)));
  }

  std::printf("%-8s %8s %9s %8s %10s %10s %10s %10s\n", "trace", "jobs",
              "completed", "rejected", "jobs/s", "p50(ms)", "p99(ms)",
              "p999(ms)");
  for (const ConfigResult& r : results) {
    std::printf("%-8s %8llu %9llu %8llu %10.1f %10.3f %10.3f %10.3f\n",
                r.name.c_str(), static_cast<unsigned long long>(r.jobs),
                static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(r.rejected), r.jobs_per_s,
                r.p50_ms, r.p99_ms, r.p999_ms);
  }

  if (!a.json_path.empty()) {
    const std::string text = to_json(a, results);
    std::FILE* f = std::fopen(a.json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "bench_service: cannot write %s\n",
                   a.json_path.c_str());
      return 1;
    }
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", a.json_path.c_str());
  }
  return 0;
}
