// Reproduces Fig. 4: normalized execution time of the four memory-bound
// applications (GE, mergesort, heat, SOR) with a 1k x 1k input, CAB vs
// classic random task-stealing ("Cilk"), on the 4x4 Opteron model.
//
// Paper's result: CAB gains 10%-55% (normalized time 0.45-0.90).

#include "apps/ge.hpp"
#include "apps/heat.hpp"
#include "apps/mergesort.hpp"
#include "apps/sor.hpp"
#include "bench_common.hpp"
#include "util/format.hpp"

namespace cab::bench {
namespace {

apps::DagBundle build(const std::string& name) {
  if (name == "heat") {
    apps::HeatParams p;
    p.rows = scaled(1024);
    p.cols = scaled(1024);
    p.steps = 10;
    return apps::build_heat_dag(p);
  }
  if (name == "sor") {
    apps::SorParams p;
    p.rows = scaled(1024);
    p.cols = scaled(1024);
    p.iterations = 10;
    return apps::build_sor_dag(p);
  }
  if (name == "ge") {
    apps::GeParams p;
    p.n = scaled(1024);
    return apps::build_ge_dag(p);
  }
  apps::MergesortParams p;
  p.n = scaled(1024) * scaled(1024);
  return apps::build_mergesort_dag(p);
}

void run() {
  print_header("Fig. 4 — memory-bound applications, 1k x 1k input",
               "Figure 4 (Section V-A): normalized execution time, CAB vs "
               "Cilk; paper gains 10-55%");

  util::TablePrinter table({"benchmark", "BL(Eq.4)", "Cilk makespan",
                            "CAB makespan", "normalized(CAB)", "gain %"});
  for (const char* name : {"ge", "mergesort", "heat", "sor"}) {
    Comparison c = compare_and_record(name, build(name), paper_topology());
    table.add_row({name, std::to_string(c.boundary_level),
                   util::format_fixed(c.cilk.makespan, 0),
                   util::format_fixed(c.cab.makespan, 0),
                   util::format_fixed(c.normalized_time(), 3),
                   util::format_fixed(c.gain_percent(), 1)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("shape check: every normalized(CAB) < 1.0; paper reports "
              "0.45-0.90 at this size.\n");
}

}  // namespace
}  // namespace cab::bench

int main(int argc, char** argv) {
  if (int rc = cab::bench::parse_args(argc, argv)) return rc;
  cab::bench::run();
  // --trace/--json replay: the heat workload on the real runtime.
  return cab::bench::finish("fig4_memory_bound",
                            [] { return cab::bench::build("heat"); });
}
