// Ablation: static Eq. 4 BL vs adaptive feedback-tuned BL vs the
// fixed-BL oracle, over the eight Table III applications.
//
// The oracle sweeps every legal BL through the deterministic simulator
// and keeps the best makespan — the number a clairvoyant tuner would
// reach. "static" is Eq. 4 + clamp (the paper's semi-automatic method).
// "adaptive" seeds the hill-climb controller at the static BL and lets
// it retune across epochs, scoring each epoch with the same simulator
// (memoized per BL, so a revisited BL reproduces its score exactly).
//
// Expected direction (EXPERIMENTS.md): the controller converges within
// 8 epochs to a BL whose makespan is within 10% of the oracle on the
// regular divide-and-conquer apps; the paper concedes Eq. 4 mispredicts
// the irregular DAGs (queens, ck), which is exactly where the feedback
// loop has room to beat the static choice.

#include <cstdio>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "bench_common.hpp"
#include "util/format.hpp"

namespace cab::bench {
namespace {

constexpr int kEpochs = 8;
constexpr double kOracleBand = 0.10;  ///< acceptance: within 10% of oracle

/// First epoch (1-based) from which the trajectory never leaves its
/// final BL; trajectory length + 1 when the last epoch still moved.
int converge_epoch(const std::vector<std::int32_t>& bls,
                   std::int32_t final_bl) {
  int ep = static_cast<int>(bls.size()) + 1;
  for (int i = static_cast<int>(bls.size()); i >= 1; --i) {
    if (bls[static_cast<std::size_t>(i - 1)] != final_bl) break;
    ep = i;
  }
  return ep;
}

void run() {
  print_header(
      "Ablation — static Eq.4 vs adaptive vs oracle boundary level",
      "Section V-B Fig. 5 (BL sensitivity) + Section VI (Eq. 4 limits on "
      "irregular DAGs)");

  const hw::Topology topo = paper_topology();
  util::TablePrinter table({"app", "static BL", "adaptive BL", "oracle BL",
                            "adapt/oracle", "converged@", "in 10%?"});
  int within = 0, total = 0;

  for (const apps::AppEntry& entry : apps::app_registry()) {
    const apps::DagBundle bundle = entry.build_default();
    const std::int32_t static_bl = bundle_boundary_level(bundle, topo);
    const std::int32_t max_bl = bundle.graph.max_level();

    // Oracle: best makespan over every fixed BL (what the adaptive
    // controller is graded against).
    double oracle_makespan = 1e300;
    std::int32_t oracle_bl = 1;
    for (std::int32_t bl = 1; bl <= max_bl; ++bl) {
      const double t = simulate_cab_bl(bundle, topo, bl);
      if (t < oracle_makespan) {
        oracle_makespan = t;
        oracle_bl = bl;
      }
    }
    const double static_makespan = simulate_cab_bl(bundle, topo, static_bl);

    // Adaptive, seeded where the runtime would start: the Eq. 4 level.
    const AdaptiveSimResult adaptive =
        run_adaptive_sim(bundle, topo, static_bl, kEpochs);
    // Cold start: a BL-0 seed must bootstrap to the profiled Eq. 4 level
    // (the controller's fallback path), not stay degenerate.
    const AdaptiveSimResult cold =
        run_adaptive_sim(bundle, topo, /*seed_bl=*/0, kEpochs);

    const double vs_oracle = adaptive.final_makespan / oracle_makespan;
    const bool in_band = vs_oracle <= 1.0 + kOracleBand;
    const int conv = converge_epoch(adaptive.bls, adaptive.final_bl);
    ++total;
    if (in_band) ++within;

    JsonRecorder::instance().add_values(
        entry.name,
        {{"static_bl", static_cast<double>(static_bl)},
         {"static_makespan", static_makespan},
         {"oracle_bl", static_cast<double>(oracle_bl)},
         {"oracle_makespan", oracle_makespan},
         {"adaptive_final_bl", static_cast<double>(adaptive.final_bl)},
         {"adaptive_final_makespan", adaptive.final_makespan},
         {"adaptive_vs_oracle_ratio", vs_oracle},
         {"adaptive_converge_epoch", static_cast<double>(conv)},
         {"adaptive_within_band", in_band ? 1.0 : 0.0},
         {"bootstrap_final_bl", static_cast<double>(cold.final_bl)},
         {"epochs", static_cast<double>(kEpochs)}});

    std::string traj;
    for (std::size_t i = 0; i < adaptive.bls.size(); ++i) {
      if (i) traj += ">";
      traj += std::to_string(adaptive.bls[i]);
    }
    table.add_row({entry.name, std::to_string(static_bl),
                   std::to_string(adaptive.final_bl),
                   std::to_string(oracle_bl),
                   util::format_fixed(vs_oracle, 3), std::to_string(conv),
                   in_band ? "yes" : "NO"});
    std::printf("%-10s BL trajectory: %s (bootstrap from 0 -> %d)\n",
                entry.name.c_str(), traj.c_str(), cold.final_bl);
  }

  std::printf("\n%s", table.to_string().c_str());
  std::printf(
      "adaptive within %.0f%% of the fixed-BL oracle on %d/%d apps "
      "(acceptance: >= 3)\n",
      kOracleBand * 100.0, within, total);
}

}  // namespace
}  // namespace cab::bench

int main(int argc, char** argv) {
  if (int rc = cab::bench::parse_args(argc, argv)) return rc;
  cab::bench::run();
  // --trace/--json/--adapt replay: heat's paper-default model on the real
  // runtime (with --adapt=adaptive the replay itself retunes BL across
  // epochs and records every decision in the cab-adapt-v1 report).
  return cab::bench::finish("ablation_adaptive_bl",
                            [] { return cab::apps::build_app("heat"); });
}
