// Reproduces Fig. 7: L2 and L3 cache misses of heat (a) and SOR (b) in
// CAB vs Cilk across input sizes.
//
// Paper's shape: at small inputs CAB removes ~68% of L3 misses and ~43%
// of L2 misses; at 4k x 4k the reductions collapse to a few percent.

#include <vector>

#include "apps/heat.hpp"
#include "apps/sor.hpp"
#include "bench_common.hpp"
#include "util/format.hpp"

namespace cab::bench {
namespace {

struct SizeCase {
  const char* label;
  std::int64_t rows, cols;
};

void run_app(const char* app) {
  const std::vector<SizeCase> sizes = {
      {"512x512", 512, 512}, {"1kx1k", 1024, 1024},  {"2kx2k", 2048, 2048},
      {"3kx2k", 3072, 2048}, {"3kx3k", 3072, 3072},  {"4kx4k", 4096, 4096}};
  util::TablePrinter table({"input", "L2 Cilk", "L2 CAB", "L3 Cilk",
                            "L3 CAB", "L3 red. %"});
  double first_red = 0, last_red = 0;
  for (const SizeCase& sc : sizes) {
    apps::DagBundle bundle = [&] {
      if (std::string(app) == "heat") {
        apps::HeatParams p;
        p.rows = scaled(sc.rows);
        p.cols = scaled(sc.cols);
        p.steps = 6;
        return apps::build_heat_dag(p);
      }
      apps::SorParams p;
      p.rows = scaled(sc.rows);
      p.cols = scaled(sc.cols);
      p.iterations = 3;
      return apps::build_sor_dag(p);
    }();
    Comparison c = compare_and_record(std::string(app) + "/" + sc.label,
                                      bundle, paper_topology());
    const double red =
        c.cilk.cache.l3_misses > 0
            ? 100.0 * (1.0 - static_cast<double>(c.cab.cache.l3_misses) /
                                 static_cast<double>(c.cilk.cache.l3_misses))
            : 0.0;
    if (sc.rows == 512) first_red = red;
    last_red = red;
    table.add_row({sc.label, util::human_count(c.cilk.cache.l2_misses),
                   util::human_count(c.cab.cache.l2_misses),
                   util::human_count(c.cilk.cache.l3_misses),
                   util::human_count(c.cab.cache.l3_misses),
                   util::format_fixed(red, 1)});
  }
  std::printf("%s:\n%s", app, table.to_string().c_str());
  std::printf("shape check: L3 reduction shrinks with size (%.1f%% -> "
              "%.1f%%); paper: ~68%% at 512^2 -> ~4%% at 4k.\n\n",
              first_red, last_red);
}

void run() {
  print_header("Fig. 7 — cache misses vs input size (heat, SOR)",
               "Figure 7 (Section V-C): miss reductions collapse at large "
               "inputs");
  run_app("heat");
  run_app("sor");
}

}  // namespace
}  // namespace cab::bench

int main(int argc, char** argv) {
  if (int rc = cab::bench::parse_args(argc, argv)) return rc;
  cab::bench::run();
  // --trace/--json replay: the 1k x 1k SOR case on the real runtime.
  return cab::bench::finish("fig7_cache_scaling", [] {
    cab::apps::SorParams p;
    p.rows = cab::bench::scaled(1024);
    p.cols = cab::bench::scaled(1024);
    p.iterations = 3;
    return cab::apps::build_sor_dag(p);
  });
}
