#pragma once

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/cab.hpp"
#include "obs/attrib/critical_path.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics/perf_source.hpp"
#include "runtime/graph_runner.hpp"
#include "util/args.hpp"
#include "util/format.hpp"

namespace cab::bench {

/// All figure/table benches run on the paper's testbed model.
inline hw::Topology paper_topology() { return hw::Topology::opteron_8380(); }

/// Scale factor for input sizes: CAB_BENCH_SCALE=0.5 halves matrix rows/
/// cols (quarter data) for quick runs; default 1.0 = the paper's sizes.
inline double bench_scale() {
  if (const char* s = std::getenv("CAB_BENCH_SCALE")) {
    double v = std::atof(s);
    if (v > 0.01 && v <= 4.0) return v;
  }
  return 1.0;
}

inline std::int64_t scaled(std::int64_t v) {
  return static_cast<std::int64_t>(static_cast<double>(v) * bench_scale());
}

/// Flags shared by every figure/table/ablation bench, validated up front.
struct BenchArgs {
  std::string trace_path;  ///< --trace=<file>: Chrome-trace replay dump
  std::string json_path;   ///< --json=<file>: machine-readable record
  /// --attrib (bare) enables cycle-accounting attribution of the runtime
  /// replay: the breakdown + realized-critical-path summary print on
  /// stdout and merge into the --json record; --attrib=<file> also writes
  /// the standalone cab-attrib-v1 record there.
  bool attrib = false;
  std::string attrib_path;
  /// --adapt=static|adaptive|fixed:<bl>: BL policy for the --trace/--json
  /// runtime replay. Adaptive replays run several epochs so the
  /// controller has decisions to record; the cab-adapt-v1 report is
  /// embedded in the cab-bench-v1 record either way.
  adapt::Policy adapt;
  /// --steal=uniform|weighted|weighted+half: in-squad victim selection for
  /// the runtime replay (ablation axis; default = the runtime's default).
  runtime::StealPolicy steal = runtime::Options{}.steal;
  /// --lazy-spawn=on|off: stack-slot lazy task creation with steal-time
  /// promotion vs the eager pooled path (ablation axis; default = the
  /// runtime's default, on).
  bool lazy_spawn = runtime::Options{}.lazy_spawn;
};

inline BenchArgs& bench_args() {
  static BenchArgs a;
  return a;
}

/// Parses and validates argv before the bench runs. Unknown `--` flags
/// are rejected with a usage message (exit code 2) instead of being
/// silently ignored — a misspelled --json must not discard an hour-long
/// run's record. Returns 0 to proceed.
inline int parse_args(int argc, char** argv) {
  bench_args().trace_path = util::args::value(argc, argv, "trace");
  bench_args().json_path = util::args::value(argc, argv, "json");
  bench_args().attrib = util::args::has_flag(argc, argv, "attrib");
  bench_args().attrib_path = util::args::eq_value(argc, argv, "attrib");
  const std::string adapt_spec = util::args::value(argc, argv, "adapt");
  if (!adapt_spec.empty() &&
      !adapt::parse_policy(adapt_spec, bench_args().adapt)) {
    std::fprintf(stderr,
                 "%s: bad --adapt policy \"%s\" "
                 "(expected static|adaptive|fixed:<bl>)\n",
                 argv[0], adapt_spec.c_str());
    return 2;
  }
  const std::string steal_spec = util::args::value(argc, argv, "steal");
  if (!steal_spec.empty() &&
      !runtime::parse_steal_policy(steal_spec, bench_args().steal)) {
    std::fprintf(stderr,
                 "%s: bad --steal policy \"%s\" "
                 "(expected uniform|weighted|weighted+half)\n",
                 argv[0], steal_spec.c_str());
    return 2;
  }
  const std::string lazy_spec = util::args::value(argc, argv, "lazy-spawn");
  if (!lazy_spec.empty()) {
    if (lazy_spec == "on") {
      bench_args().lazy_spawn = true;
    } else if (lazy_spec == "off") {
      bench_args().lazy_spawn = false;
    } else {
      std::fprintf(stderr,
                   "%s: bad --lazy-spawn value \"%s\" (expected on|off)\n",
                   argv[0], lazy_spec.c_str());
      return 2;
    }
  }
  // Unknown `--` flags are rejected (exit 2) instead of being silently
  // ignored — a misspelled --json must not discard an hour-long run's
  // record. `--attrib` takes no space-separated value: only the `=` form
  // carries the record path.
  static const std::vector<util::args::FlagSpec> kKnown = {
      {"trace", true},  {"json", true},       {"adapt", true},
      {"steal", true},  {"lazy-spawn", true}, {"attrib", false},
  };
  const std::string unknown = util::args::first_unknown(argc, argv, kKnown);
  if (!unknown.empty()) {
    std::fprintf(stderr,
                 "%s: unknown flag: %s\n"
                 "usage: %s [--trace=<chrome_trace.json>] "
                 "[--json=<record.json>] [--attrib[=<attrib.json>]] "
                 "[--adapt=<policy>]\n"
                 "  --trace  replay the bench's representative workload on "
                 "the threaded\n"
                 "           runtime and dump a Chrome-trace timeline "
                 "(view: chrome://tracing,\n"
                 "           summarize: tools/cab_trace)\n"
                 "  --json   write a schema-versioned machine-readable "
                 "record of every\n"
                 "           configuration this bench ran (merge/diff: "
                 "tools/cab_bench_report)\n"
                 "  --attrib cycle-accounting attribution of the replay: "
                 "where the epoch's\n"
                 "           time went plus the realized critical path and "
                 "achievable-speedup\n"
                 "           bound; merged into --json, standalone record "
                 "via --attrib=<file>\n"
                 "  --adapt  BL policy for the runtime replay: static "
                 "(default), adaptive\n"
                 "           (multi-epoch feedback retuning), or "
                 "fixed:<bl>; the cab-adapt-v1\n"
                 "           decision record lands in the --json output\n"
                 "  --steal  in-squad victim selection for the runtime "
                 "replay: uniform\n"
                 "           (the paper's Algorithm I), weighted, or "
                 "weighted+half (default)\n"
                 "  --lazy-spawn  on (default) runs spawns on stack-slot "
                 "lazy frames with\n"
                 "           steal-time promotion; off replays the eager "
                 "pooled path\n",
                 argv[0], unknown.c_str(), argv[0]);
    return 2;
  }
  return 0;
}

/// Collects per-configuration results while a bench runs; written out by
/// finish() when --json was requested. Entries are prebuilt JSON objects.
class JsonRecorder {
 public:
  static JsonRecorder& instance() {
    static JsonRecorder r;
    return r;
  }

  /// Records one CAB-vs-baseline comparison under a config name unique
  /// within the bench (e.g. "heat/1kx1k").
  void add_comparison(const std::string& config, const Comparison& c,
                      double wall_s) {
    std::string j = "{\"name\":\"" + config + "\"";
    j += ",\"wall_s\":" + util::format_fixed(wall_s, 6);
    j += ",\"boundary_level\":" + std::to_string(c.boundary_level);
    j += ",\"normalized_time\":" + util::format_fixed(c.normalized_time(), 4);
    j += ",\"gain_percent\":" + util::format_fixed(c.gain_percent(), 2);
    j += ",\"cab\":" + c.cab.to_json();
    j += ",\"cilk\":" + c.cilk.to_json();
    j += "}";
    entries_.push_back(std::move(j));
  }

  /// Records free-form numeric results for benches whose unit of work is
  /// not a Comparison (BL sweeps, ablations, flexible partitioning).
  void add_values(
      const std::string& config,
      const std::vector<std::pair<std::string, double>>& values,
      double wall_s = -1.0) {
    std::string j = "{\"name\":\"" + config + "\"";
    if (wall_s >= 0) j += ",\"wall_s\":" + util::format_fixed(wall_s, 6);
    for (const auto& [k, v] : values) {
      j += ",\"" + k + "\":" + util::format_fixed(v, 6);
    }
    j += "}";
    entries_.push_back(std::move(j));
  }

  const std::vector<std::string>& entries() const { return entries_; }

 private:
  std::vector<std::string> entries_;
};

/// compare_schedulers plus wall-clock timing and JSON recording — the
/// drop-in the figure/table benches use so every printed row also lands
/// in the --json record.
inline Comparison compare_and_record(const std::string& config,
                                     const apps::DagBundle& bundle,
                                     const hw::Topology& topo,
                                     std::int32_t bl = -1,
                                     std::uint64_t seed = 1,
                                     const simsched::CostModel& cost = {}) {
  const auto t0 = std::chrono::steady_clock::now();
  Comparison c = compare_schedulers(bundle, topo, bl, seed, cost);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  JsonRecorder::instance().add_comparison(config, c, wall_s);
  return c;
}

/// One deterministic CAB simulation of a bundle at a fixed BL (the
/// round-robin victim configuration every figure bench uses), full
/// result — cache/coherence stats included.
inline simsched::SimResult simulate_cab_result(const apps::DagBundle& bundle,
                                               const hw::Topology& topo,
                                               std::int32_t bl,
                                               std::uint64_t seed = 1) {
  simsched::SimOptions o;
  o.topo = topo;
  o.policy = simsched::SimPolicy::kCab;
  o.boundary_level = bl;
  o.victims = simsched::VictimSelection::kRoundRobin;
  o.seed = seed;
  return simsched::Simulator(o).run(bundle.graph, bundle.traces);
}

inline double simulate_cab_bl(const apps::DagBundle& bundle,
                              const hw::Topology& topo, std::int32_t bl,
                              std::uint64_t seed = 1) {
  return simulate_cab_result(bundle, topo, bl, seed).makespan;
}

/// Trajectory of an adaptive-BL episode driven by simulator makespans.
struct AdaptiveSimResult {
  std::vector<std::int32_t> bls;  ///< BL each epoch executed under
  std::vector<double> makespans;  ///< simulated makespan per epoch
  std::int32_t final_bl = 0;      ///< BL in force after the last epoch
  double final_makespan = 0.0;    ///< makespan at final_bl
  adapt::Report report;           ///< every controller decision
};

/// Drives an adapt::Controller for `epochs` epochs, scoring each epoch
/// with the deterministic simulator (memoized per BL — revisiting a BL
/// reproduces its score exactly, so trajectories are reproducible and
/// comparable against a fixed-BL oracle sweep of the same bundle). The
/// epoch samples carry the DAG's true shape counters, exactly what the
/// threaded runtime's profiler would accumulate.
inline AdaptiveSimResult run_adaptive_sim(const apps::DagBundle& bundle,
                                          const hw::Topology& topo,
                                          std::int32_t seed_bl, int epochs,
                                          std::uint64_t seed = 1) {
  std::uint64_t spawning = 0;
  for (std::size_t i = 0; i < bundle.graph.size(); ++i) {
    if (!bundle.graph.node(static_cast<dag::NodeId>(i)).children.empty()) {
      ++spawning;
    }
  }
  adapt::Policy pol;
  pol.mode = adapt::Mode::kAdaptive;
  pol.input_bytes_hint = bundle.input_bytes;
  adapt::Controller ctl(pol, topo);

  std::map<std::int32_t, simsched::SimResult> memo;
  AdaptiveSimResult r;
  std::int32_t bl = seed_bl;
  for (int ep = 1; ep <= epochs; ++ep) {
    auto it = memo.find(bl);
    if (it == memo.end()) {
      it = memo.emplace(bl, simulate_cab_result(bundle, topo, bl, seed)).first;
    }
    const simsched::SimResult& sim = it->second;
    const double makespan = sim.makespan;
    r.bls.push_back(bl);
    r.makespans.push_back(makespan);

    adapt::EpochSample s;
    s.epoch = static_cast<std::uint64_t>(ep);
    s.bl = bl;
    s.wall_ns = static_cast<std::uint64_t>(std::llround(makespan));
    s.tasks = bundle.graph.size();
    s.spawns = bundle.graph.size() - 1;  // every non-root node was spawned
    s.spawning_tasks = spawning;
    s.max_level = bundle.graph.max_level();
    s.working_set_hint = bundle.input_bytes;
    // The simulated epoch carries the hierarchy's coherence picture —
    // the signal the threaded runtime can't measure (hardware gives no
    // per-epoch sharing classification), so the profiler only sees it
    // on simulator-driven episodes.
    s.coh_valid = true;
    s.cache_accesses = sim.cache.l2_accesses;
    s.coherence_misses = sim.cache.coherence_misses;
    s.true_sharing_invalidations = sim.cache.true_sharing_invalidations;
    s.false_sharing_invalidations = sim.cache.false_sharing_invalidations;
    bl = ctl.on_epoch_end(s);
  }
  r.final_bl = bl;
  r.final_makespan = memo.count(bl) != 0
                         ? memo[bl].makespan
                         : simulate_cab_bl(bundle, topo, bl, seed);
  r.report = ctl.report();
  return r;
}

namespace detail {

inline void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
}

/// Best-effort build identity: CAB_GIT_REV env (CI sets it), else a
/// `git rev-parse` of the working tree, else "unknown".
inline std::string git_rev() {
  if (const char* v = std::getenv("CAB_GIT_REV"); v != nullptr && *v) {
    return v;
  }
#if defined(__unix__) || defined(__APPLE__)
  if (FILE* p = ::popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
    char buf[64] = {0};
    const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, p);
    ::pclose(p);
    std::string rev(buf, n);
    while (!rev.empty() && (rev.back() == '\n' || rev.back() == '\r')) {
      rev.pop_back();
    }
    if (!rev.empty()) return rev;
  }
#endif
  return "unknown";
}

}  // namespace detail

/// Handles the post-run side of --trace and --json: replays the bench's
/// representative workload (built lazily by `make_bundle`) once on the
/// *real threaded runtime* — paper topology, Eq. 4 boundary level,
/// timeline tracing and hardware counters on — then writes whichever
/// outputs were requested:
///   --trace  Chrome-trace JSON with the metrics registry merged in as
///            counter tracks,
///   --json   a schema-versioned `cab-bench-v1` record: bench id, scale,
///            git rev, topology, every recorded per-config result
///            (wall time + simulator cache stats), and the runtime
///            replay's metrics snapshot incl. HW counters (marked
///            unavailable when perf is not permitted).
/// Returns the bench's exit code (0 when neither flag is present).
inline int finish(const char* bench_id,
                  const std::function<apps::DagBundle()>& make_bundle) {
  const std::string trace_path = bench_args().trace_path;
  const std::string json_path = bench_args().json_path;
  const bool want_attrib = bench_args().attrib;
  // --adapt or --attrib alone still runs the replay (the printed
  // trajectory/breakdown is the output); without any of the flags there
  // is nothing to do.
  if (trace_path.empty() && json_path.empty() && !want_attrib &&
      bench_args().adapt.mode == adapt::Mode::kStatic) {
    return 0;
  }

  apps::DagBundle bundle = make_bundle();
  runtime::Options o;
  o.topo = paper_topology();
  o.kind = runtime::SchedulerKind::kCab;
  o.boundary_level = bundle_boundary_level(bundle, o.topo);
  o.trace = !trace_path.empty() || want_attrib;
  o.metrics = true;
  o.hw_counters = true;
  o.adapt = bench_args().adapt;
  o.steal = bench_args().steal;
  o.lazy_spawn = bench_args().lazy_spawn;
  if (o.adapt.input_bytes_hint == 0) {
    o.adapt.input_bytes_hint = bundle.input_bytes;
  }
  // One epoch suffices for a static/pinned replay; an adaptive replay
  // runs several so the controller has something to climb on (BL only
  // ever changes between run() epochs).
  const int epochs = o.adapt.mode == adapt::Mode::kAdaptive ? 6 : 1;
  const auto t0 = std::chrono::steady_clock::now();
  runtime::Runtime rt(o);
  for (int ep = 0; ep < epochs; ++ep) {
    runtime::run_graph(rt, bundle.graph);
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const obs::metrics::Snapshot metrics = rt.metrics_snapshot();
  const adapt::Report adapt_report = rt.adapt_report();
  if (o.adapt.mode != adapt::Mode::kStatic) {
    std::printf("adapt replay: policy %s, %d epoch(s), BL %d -> %d (%zu "
                "decisions)\n",
                adapt::to_string(o.adapt).c_str(), epochs, o.boundary_level,
                rt.current_boundary_level(), adapt_report.decisions.size());
  }

  // Attribution first: the Chrome trace embeds it as counter tracks.
  obs::attrib::Attribution attribution;
  obs::attrib::RealizedPath realized;
  std::string attrib_json, critpath_json;
  if (want_attrib || !trace_path.empty()) {
    obs::Trace t = rt.trace();
    t.workload = bundle.name;
    if (want_attrib) {
      attribution = obs::attrib::attribute(t);
      realized = obs::attrib::realized_critical_path(t, bundle.graph);
      attrib_json = attribution.to_json();
      critpath_json = realized.to_json();
      std::printf("%s%s", attribution.to_string().c_str(),
                  realized.to_string().c_str());
      // The bound next to what the replay actually achieved: realized T1
      // over the attribution window is the measured speedup.
      const double measured =
          attribution.window_ns() > 0
              ? static_cast<double>(realized.realized_t1_ns) /
                    static_cast<double>(attribution.window_ns())
              : 0.0;
      std::printf("  measured speedup %.2fx of achievable bound %.2fx\n",
                  measured, realized.speedup_bound);
      if (!bench_args().attrib_path.empty()) {
        if (std::FILE* f = std::fopen(bench_args().attrib_path.c_str(),
                                      "w")) {
          std::fwrite(attrib_json.data(), 1, attrib_json.size(), f);
          std::fputc('\n', f);
          std::fclose(f);
          std::printf("attrib record: %s\n",
                      bench_args().attrib_path.c_str());
        } else {
          std::fprintf(stderr, "cannot write attrib record: %s\n",
                       bench_args().attrib_path.c_str());
          return 1;
        }
      }
    }
    if (!trace_path.empty()) {
      if (!obs::write_chrome_trace_file(t, trace_path, &metrics,
                                        want_attrib ? &attribution
                                                    : nullptr)) {
        std::fprintf(stderr, "cannot write trace file: %s\n",
                     trace_path.c_str());
        return 1;
      }
      std::printf(
          "trace: %s on %s (BL=%d) -> %s (%zu events, %llu dropped)\n"
          "view in chrome://tracing or summarize with: cab_trace %s\n",
          bundle.name.c_str(), to_string(o.kind), o.boundary_level,
          trace_path.c_str(), t.event_count(),
          static_cast<unsigned long long>(t.dropped_count()),
          trace_path.c_str());
    }
  }

  if (!json_path.empty()) {
    std::string j = "{\"schema\":\"cab-bench-v1\"";
    j += ",\"bench\":";
    detail::append_escaped(j, bench_id);
    j += ",\"scale\":" + util::format_fixed(bench_scale(), 2);
    j += ",\"git_rev\":";
    detail::append_escaped(j, detail::git_rev());
    j += ",\"generated_unix\":" +
         std::to_string(static_cast<long long>(std::time(nullptr)));
    const hw::Topology& topo = o.topo;
    j += ",\"topology\":{\"sockets\":" + std::to_string(topo.sockets());
    j += ",\"cores_per_socket\":" + std::to_string(topo.cores_per_socket());
    j += ",\"shared_cache_bytes\":" +
         std::to_string(topo.shared_cache_bytes());
    j += ",\"describe\":";
    detail::append_escaped(j, topo.describe());
    j += "},\"configs\":[";
    const auto& entries = JsonRecorder::instance().entries();
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (i) j += ',';
      j += '\n';
      j += entries[i];
    }
    j += "],\"runtime\":{\"workload\":";
    detail::append_escaped(j, bundle.name);
    j += ",\"boundary_level\":" + std::to_string(o.boundary_level);
    j += ",\"steal\":";
    detail::append_escaped(j, to_string(o.steal));
    j += ",\"final_boundary_level\":" +
         std::to_string(rt.current_boundary_level());
    j += ",\"epochs\":" + std::to_string(epochs);
    j += ",\"wall_s\":" + util::format_fixed(wall_s, 6);
    if (!attrib_json.empty()) {
      j += ",\"attrib\":" + attrib_json;
      j += ",\"critical_path\":" + critpath_json;
    }
    j += ",\"adapt\":" + adapt_report.to_json();
    j += ",\"hw_available\":";
    j += metrics.hw_available ? "true" : "false";
    j += ",\"hw_reason\":";
    detail::append_escaped(j, metrics.hw_reason);
    j += ",\"metrics\":" + metrics.to_json();
    j += "}}\n";
    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
      std::fwrite(j.data(), 1, j.size(), f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "cannot write json record: %s\n",
                   json_path.c_str());
      return 1;
    }
    std::printf("json record: %s (%zu configs, hw counters %s)\n",
                json_path.c_str(), entries.size(),
                metrics.hw_available ? "available" : "unavailable");
  }
  return 0;
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("machine model: %s\n", paper_topology().describe().c_str());
  if (bench_scale() != 1.0)
    std::printf("NOTE: CAB_BENCH_SCALE=%.2f (inputs scaled)\n", bench_scale());
  std::printf("================================================================\n");
}

}  // namespace cab::bench
