#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/cab.hpp"

namespace cab::bench {

/// All figure/table benches run on the paper's testbed model.
inline hw::Topology paper_topology() { return hw::Topology::opteron_8380(); }

/// Scale factor for input sizes: CAB_BENCH_SCALE=0.5 halves matrix rows/
/// cols (quarter data) for quick runs; default 1.0 = the paper's sizes.
inline double bench_scale() {
  if (const char* s = std::getenv("CAB_BENCH_SCALE")) {
    double v = std::atof(s);
    if (v > 0.01 && v <= 4.0) return v;
  }
  return 1.0;
}

inline std::int64_t scaled(std::int64_t v) {
  return static_cast<std::int64_t>(static_cast<double>(v) * bench_scale());
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("machine model: %s\n", paper_topology().describe().c_str());
  if (bench_scale() != 1.0)
    std::printf("NOTE: CAB_BENCH_SCALE=%.2f (inputs scaled)\n", bench_scale());
  std::printf("================================================================\n");
}

}  // namespace cab::bench
