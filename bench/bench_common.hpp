#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>

#include "core/cab.hpp"
#include "obs/chrome_trace.hpp"
#include "runtime/graph_runner.hpp"

namespace cab::bench {

/// All figure/table benches run on the paper's testbed model.
inline hw::Topology paper_topology() { return hw::Topology::opteron_8380(); }

/// Scale factor for input sizes: CAB_BENCH_SCALE=0.5 halves matrix rows/
/// cols (quarter data) for quick runs; default 1.0 = the paper's sizes.
inline double bench_scale() {
  if (const char* s = std::getenv("CAB_BENCH_SCALE")) {
    double v = std::atof(s);
    if (v > 0.01 && v <= 4.0) return v;
  }
  return 1.0;
}

inline std::int64_t scaled(std::int64_t v) {
  return static_cast<std::int64_t>(static_cast<double>(v) * bench_scale());
}

/// Value of `--trace=<file>` (or `--trace <file>`) in argv, else "".
inline std::string trace_path_from_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--trace=", 0) == 0) return a.substr(8);
    if (a == "--trace" && i + 1 < argc) return argv[i + 1];
  }
  return "";
}

/// `--trace=<file>` support for the figure benches: when the flag is
/// present, replays the bench's representative workload (built lazily by
/// `make_bundle`) on the *real threaded runtime* — paper topology, Eq. 4
/// boundary level, timeline tracing on — and writes a Chrome-trace JSON
/// dump. View it in chrome://tracing / Perfetto, or summarize
/// steal-latency percentiles and squad occupancy with `tools/cab_trace`.
/// Returns the bench's exit code (0 when the flag is absent).
inline int dump_trace_if_requested(
    int argc, char** argv,
    const std::function<apps::DagBundle()>& make_bundle) {
  const std::string path = trace_path_from_args(argc, argv);
  if (path.empty()) return 0;
  apps::DagBundle bundle = make_bundle();
  runtime::Options o;
  o.topo = paper_topology();
  o.kind = runtime::SchedulerKind::kCab;
  o.boundary_level = bundle_boundary_level(bundle, o.topo);
  o.trace = true;
  runtime::Runtime rt(o);
  runtime::run_graph(rt, bundle.graph);
  const obs::Trace t = rt.trace();
  if (!obs::write_chrome_trace_file(t, path)) {
    std::fprintf(stderr, "cannot write trace file: %s\n", path.c_str());
    return 1;
  }
  std::printf(
      "trace: %s on %s (BL=%d) -> %s (%zu events, %llu dropped)\n"
      "view in chrome://tracing or summarize with: cab_trace %s\n",
      bundle.name.c_str(), to_string(o.kind), o.boundary_level, path.c_str(),
      t.event_count(), static_cast<unsigned long long>(t.dropped_count()),
      path.c_str());
  return 0;
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("machine model: %s\n", paper_topology().describe().c_str());
  if (bench_scale() != 1.0)
    std::printf("NOTE: CAB_BENCH_SCALE=%.2f (inputs scaled)\n", bench_scale());
  std::printf("================================================================\n");
}

}  // namespace cab::bench
